// Command tracegen generates block-level workload traces in the text
// format understood by cmd/ssdsim and ossd/internal/trace.
//
//	tracegen -workload postmark -transactions 5000 -capacity 64MiB -o pm.trace
//	tracegen -workload synthetic -ops 10000 -seq 0.4 -readfrac 0.66
//	tracegen -workload iozone -file 16MiB
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ossd/internal/sim"
	"ossd/internal/trace"
	"ossd/internal/workload"
)

// parseSize accepts 4096, 64KiB, 8MiB, 2GiB.
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "GiB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GiB")
	case strings.HasSuffix(s, "MiB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MiB")
	case strings.HasSuffix(s, "KiB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KiB")
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %v", s, err)
	}
	return v * mult, nil
}

func main() {
	var (
		kind     = flag.String("workload", "synthetic", "synthetic|postmark|tpcc|exchange|iozone")
		ops      = flag.Int("ops", 10000, "operation count (synthetic/tpcc/exchange)")
		tx       = flag.Int("transactions", 5000, "transactions (postmark)")
		capacity = flag.String("capacity", "64MiB", "address space / fs capacity")
		file     = flag.String("file", "16MiB", "file size (iozone)")
		record   = flag.String("record", "128KiB", "record size (iozone)")
		reqSize  = flag.String("req", "4096", "request size (synthetic)")
		readFrac = flag.Float64("readfrac", 0.5, "read fraction (synthetic)")
		seqProb  = flag.Float64("seq", 0.0, "sequentiality probability (synthetic)")
		priFrac  = flag.Float64("priority", 0.0, "priority request fraction (synthetic)")
		iaUs     = flag.Int64("ia", 100, "mean inter-arrival in microseconds")
		seed     = flag.Int64("seed", 1, "random seed")
		outPath  = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	cap, err := parseSize(*capacity)
	if err != nil {
		fail(err)
	}
	ia := sim.Time(*iaUs) * sim.Microsecond

	var opsOut []trace.Op
	switch *kind {
	case "synthetic":
		req, err := parseSize(*reqSize)
		if err != nil {
			fail(err)
		}
		opsOut, err = workload.Synthetic(workload.SyntheticConfig{
			Ops:            *ops,
			AddressSpace:   cap,
			ReadFrac:       *readFrac,
			SeqProb:        *seqProb,
			ReqSize:        req,
			InterarrivalLo: 0,
			InterarrivalHi: 2 * ia,
			PriorityFrac:   *priFrac,
			Seed:           *seed,
		})
		if err != nil {
			fail(err)
		}
	case "postmark":
		opsOut, err = workload.Postmark(workload.PostmarkConfig{
			Transactions:     *tx,
			CapacityBytes:    cap,
			MeanInterarrival: ia,
			Seed:             *seed,
		})
		if err != nil {
			fail(err)
		}
	case "tpcc":
		opsOut, err = workload.TPCC(workload.OLTPConfig{
			Ops:              *ops,
			CapacityBytes:    cap,
			MeanInterarrival: ia,
			Seed:             *seed,
		})
		if err != nil {
			fail(err)
		}
	case "exchange":
		opsOut, err = workload.Exchange(workload.ExchangeConfig{
			Ops:              *ops,
			CapacityBytes:    cap,
			MeanInterarrival: ia,
			Seed:             *seed,
		})
		if err != nil {
			fail(err)
		}
	case "iozone":
		fileBytes, err := parseSize(*file)
		if err != nil {
			fail(err)
		}
		rec, err := parseSize(*record)
		if err != nil {
			fail(err)
		}
		opsOut, err = workload.IOzone(workload.IOzoneConfig{
			FileBytes:        fileBytes,
			RecordBytes:      rec,
			MeanInterarrival: ia,
			Seed:             *seed,
		})
		if err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown workload %q", *kind))
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		out = f
	}
	st := trace.Summarize(opsOut)
	fmt.Fprintf(out, "# workload=%s ops=%d reads=%d writes=%d frees=%d maxOffset=%d\n",
		*kind, st.Ops, st.Reads, st.Writes, st.Frees, st.MaxOffset)
	if err := trace.Encode(out, opsOut); err != nil {
		fail(err)
	}
}
