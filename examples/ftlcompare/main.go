// Ftlcompare: the three classic FTL mapping schemes on the same flash,
// same workload. Page mapping (the paper's FTL) keeps random writes
// cheap; block mapping pays a full-block read-merge-write per random
// page; the FAST-style hybrid log-block design sits between — the design
// space behind the spread of devices in the paper's Table 2.
package main

import (
	"fmt"
	"log"

	"ossd/internal/experiments"
)

func main() {
	r, err := experiments.Schemes(1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r.String())
}
