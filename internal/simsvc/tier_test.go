package simsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fleetNode is one peered manager with its HTTP server — the in-test
// equivalent of one simd process. The servers listen on real TCP ports
// (allocated before the managers exist, because every manager's ring
// needs every member's final URL), so peer fetches travel the same
// HTTP path production does.
type fleetNode struct {
	mgr *Manager
	srv *httptest.Server
	url string
}

// startFleet brings up n mutually peered nodes. optsFn may tune each
// node's Options (the Tier field is already populated).
func startFleet(t *testing.T, n int, optsFn func(i int, o *Options)) []*fleetNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	nodes := make([]*fleetNode, n)
	for i := range nodes {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		opts := Options{
			Workers: 2,
			Tier: &TierConfig{
				Self:            urls[i],
				Peers:           peers,
				FetchTimeout:    30 * time.Second,
				BreakerCooldown: 100 * time.Millisecond,
			},
		}
		if optsFn != nil {
			optsFn(i, &opts)
		}
		m := New(opts)
		srv := &httptest.Server{Listener: listeners[i], Config: &http.Server{Handler: m.Handler()}}
		srv.Start()
		nodes[i] = &fleetNode{mgr: m, srv: srv, url: urls[i]}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.mgr.CancelAll() // unblock any /cache wait=1 handlers first
			nd.srv.Close()
			nd.mgr.Close()
		}
	})
	return nodes
}

// ownerOf splits a fleet into (owner, others) for a spec's cache key.
func ownerOf(t *testing.T, nodes []*fleetNode, spec JobSpec) (*fleetNode, []*fleetNode) {
	t.Helper()
	owner := nodes[0].mgr.tier.ring.Owner(spec.Key())
	var own *fleetNode
	var rest []*fleetNode
	for _, nd := range nodes {
		if nd.url == owner {
			own = nd
		} else {
			rest = append(rest, nd)
		}
	}
	if own == nil {
		t.Fatalf("no node owns %q", owner)
	}
	return own, rest
}

// waitRunning polls until the job's worker has actually picked it up,
// closing submit-vs-dispatch races in tests that need a job in flight.
func waitRunning(t *testing.T, job *Job) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		switch job.View().Status {
		case StatusRunning:
			return
		case StatusDone, StatusFailed:
			t.Fatalf("job settled as %s before it could be raced", job.View().Status)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("job never started running")
}

// fleetRuns totals completed simulations (not cached completions)
// across the fleet.
func fleetRuns(nodes []*fleetNode) uint64 {
	var runs uint64
	for _, nd := range nodes {
		runs += nd.mgr.Stats().Run.N
	}
	return runs
}

// TestFleetSingleFlight is the tentpole acceptance test: one identical
// spec submitted concurrently to two peered instances simulates exactly
// once fleet-wide, both responses are byte-identical, and the counters
// (runs, peer hits, coalesced waiters) pin where the work happened.
func TestFleetSingleFlight(t *testing.T) {
	nodes := startFleet(t, 2, nil)
	spec := smallSpec(500_000, 42)
	owner, others := ownerOf(t, nodes, spec)
	nonOwner := others[0]

	// Submit on the owner and wait until its simulation is genuinely in
	// flight, then submit the identical spec on the non-owner: its
	// worker's ?wait=1 fetch must coalesce onto the owner's run rather
	// than start a second simulation anywhere.
	ownerJob, err := owner.mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, ownerJob)
	peerJob, err := nonOwner.mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	var views [2]JobView
	var wg sync.WaitGroup
	for i, job := range []*Job{ownerJob, peerJob} {
		wg.Add(1)
		go func(i int, job *Job) {
			defer wg.Done()
			views[i], _ = job.Wait(context.Background())
		}(i, job)
	}
	wg.Wait()
	for i := range views {
		if views[i].Status != StatusDone {
			t.Fatalf("job %d: status %s (error %q)", i, views[i].Status, views[i].Error)
		}
	}
	if len(views[0].Result) == 0 || !bytes.Equal(views[0].Result, views[1].Result) {
		t.Fatalf("payloads differ across nodes: %d vs %d bytes", len(views[0].Result), len(views[1].Result))
	}

	// Exactly one simulation fleet-wide, and it ran on the key's owner:
	// the non-owner's worker fetched with ?wait=1, and on the owner that
	// fetch's recompute attempt coalesced onto the in-flight run.
	if got := fleetRuns(nodes); got != 1 {
		t.Fatalf("fleet ran %d simulations, want exactly 1", got)
	}
	if got := owner.mgr.Stats().Run.N; got != 1 {
		t.Fatalf("owner ran %d simulations, want 1", got)
	}
	if got := owner.mgr.Stats().Coalesced; got != 1 {
		t.Fatalf("owner coalesced %d waiters, want 1", got)
	}
	st := nonOwner.mgr.Stats()
	if st.Tier == nil || st.Tier.PeerHits != 1 {
		t.Fatalf("non-owner tier stats %+v, want 1 peer hit", st.Tier)
	}
	if ost := owner.mgr.Stats(); ost.Tier == nil || ost.Tier.PeerServes != 1 {
		t.Fatalf("owner tier stats %+v, want 1 peer serve", ost.Tier)
	}
}

// TestFleetRemoteHit pins the steady-state shape: once any node has
// computed a spec, submitting it anywhere in the fleet is a cached
// completion with the byte-identical payload — no second simulation.
func TestFleetRemoteHit(t *testing.T) {
	nodes := startFleet(t, 2, nil)
	spec := smallSpec(20_000, 7)

	first, err := nodes[0].mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := first.Wait(context.Background())
	if err != nil || v1.Status != StatusDone {
		t.Fatalf("first submit: %v %+v", err, v1)
	}
	if got := fleetRuns(nodes); got != 1 {
		t.Fatalf("fleet ran %d simulations after first submit, want 1", got)
	}

	second, err := nodes[1].mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := second.Wait(context.Background())
	if err != nil || v2.Status != StatusDone {
		t.Fatalf("second submit: %v %+v", err, v2)
	}
	if !v2.Cached {
		t.Fatalf("second submit was not served from the tier: %+v", v2)
	}
	if v2.CacheSource != "local" && v2.CacheSource != "peer" {
		t.Fatalf("cache source %q, want local or peer", v2.CacheSource)
	}
	if !bytes.Equal(v1.Result, v2.Result) {
		t.Fatal("payloads differ between nodes")
	}
	if got := fleetRuns(nodes); got != 1 {
		t.Fatalf("fleet ran %d simulations after both submits, want 1", got)
	}
}

// TestFleetEvictionRecompute pins the satellite: an owner that evicted
// an entry recomputes it for a ?wait=1 fetch instead of 404-looping,
// and the recomputed payload is byte-identical to the evicted one.
func TestFleetEvictionRecompute(t *testing.T) {
	nodes := startFleet(t, 2, func(i int, o *Options) { o.CacheEntries = 1 })
	spec := smallSpec(20_000, 3)
	owner, others := ownerOf(t, nodes, spec)
	nonOwner := others[0]

	// Compute spec on the owner, then push it out of the 1-entry cache
	// with a different spec. Both via SubmitLocal so neither consults
	// the tier.
	j1, err := owner.mgr.SubmitLocal(spec)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := j1.Wait(context.Background())
	if err != nil || v1.Status != StatusDone {
		t.Fatalf("owner compute: %v %+v", err, v1)
	}
	j2, err := owner.mgr.SubmitLocal(smallSpec(20_000, 4))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := j2.Wait(context.Background()); err != nil || v.Status != StatusDone {
		t.Fatalf("evictor compute: %v %+v", err, v)
	}
	if st := owner.mgr.Stats().Cache; st.Evicted != 1 || st.Entries != 1 {
		t.Fatalf("owner cache %+v, want the first entry evicted", st)
	}

	// The non-owner now asks for the evicted spec: the owner must
	// recompute on the wait=1 fetch, not 404 it into local compute.
	j3, err := nonOwner.mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := j3.Wait(context.Background())
	if err != nil || v3.Status != StatusDone {
		t.Fatalf("non-owner submit: %v %+v", err, v3)
	}
	if !v3.Cached || v3.CacheSource != "peer" {
		t.Fatalf("non-owner view %+v, want a peer-sourced cached completion", v3)
	}
	if !bytes.Equal(v1.Result, v3.Result) {
		t.Fatal("recomputed payload differs from the evicted one")
	}
	if got := nonOwner.mgr.Stats().Run.N; got != 0 {
		t.Fatalf("non-owner simulated %d times, want 0 (owner recomputes)", got)
	}
	if got := owner.mgr.Stats().Run.N; got != 3 {
		t.Fatalf("owner simulated %d times, want 3 (spec, evictor, recompute)", got)
	}
}

// TestFleetDeadPeerDegrades pins the failure semantics: with every peer
// dead, a submit for a peer-owned key degrades to local compute —
// never an error — and the breaker makes repeats cheap.
func TestFleetDeadPeerDegrades(t *testing.T) {
	nodes := startFleet(t, 2, nil)
	spec := smallSpec(20_000, 11)
	owner, others := ownerOf(t, nodes, spec)
	nonOwner := others[0]

	// Kill the owner before anyone computed the spec.
	owner.mgr.CancelAll()
	owner.srv.Close()

	job, err := nonOwner.mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	view, err := job.Wait(context.Background())
	if err != nil || view.Status != StatusDone {
		t.Fatalf("submit with dead owner: %v %+v", err, view)
	}
	if view.Cached {
		t.Fatalf("view %+v, want a locally computed (non-cached) completion", view)
	}
	st := nonOwner.mgr.Stats()
	if st.Run.N != 1 {
		t.Fatalf("non-owner ran %d simulations, want 1 (local degrade)", st.Run.N)
	}
	if st.Tier.PeerErrors == 0 {
		t.Fatal("dead-owner fetch was not counted as a peer error")
	}

	// Repeats are local hits; after enough failures the breaker opens
	// and stops even probing the dead peer.
	for seed := int64(100); seed < 104; seed++ {
		j, err := nonOwner.mgr.Submit(smallSpec(5_000, seed))
		if err != nil {
			t.Fatal(err)
		}
		if v, err := j.Wait(context.Background()); err != nil || v.Status != StatusDone {
			t.Fatalf("seed %d with dead peer: %v %+v", seed, err, v)
		}
	}
}

// TestCacheEndpoint exercises the internal fleet API directly: exact
// payload for a verified identity, 409 on a key/identity mismatch, 404
// without wait, recompute with wait, and PUT push convergence.
func TestCacheEndpoint(t *testing.T) {
	m := New(Options{Workers: 2, Tier: &TierConfig{Self: "http://self:0"}})
	defer m.Close()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	spec := smallSpec(20_000, 5)
	identity := spec.Canonical()
	key := spec.Key()
	job, err := m.SubmitLocal(spec)
	if err != nil {
		t.Fatal(err)
	}
	view, err := job.Wait(context.Background())
	if err != nil || view.Status != StatusDone {
		t.Fatalf("compute: %v %+v", err, view)
	}

	fetchCache := func(key uint64, identity []byte, wait string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/cache/%016x%s", srv.URL, key, wait), bytes.NewReader(identity))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	// Verified hit: the exact payload bytes.
	resp, body := fetchCache(key, identity, "")
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, []byte(view.Result)) {
		t.Fatalf("cache fetch: %d, %d bytes (want %d)", resp.StatusCode, len(body), len(view.Result))
	}
	// A key that does not hash the identity is refused, not served.
	if resp, _ := fetchCache(key+1, identity, ""); resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched key: %d, want 409", resp.StatusCode)
	}
	// Unknown entry without wait: an honest 404.
	miss := smallSpec(20_000, 6)
	if resp, _ := fetchCache(miss.Key(), miss.Canonical(), ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing entry: %d, want 404", resp.StatusCode)
	}
	// With wait=1 the owner recomputes the spec instead of 404ing.
	runsBefore := m.Stats().Run.N
	resp, body = fetchCache(miss.Key(), miss.Canonical(), "?wait=1")
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("recompute fetch: %d, %d bytes", resp.StatusCode, len(body))
	}
	if got := m.Stats().Run.N; got != runsBefore+1 {
		t.Fatalf("recompute ran %d simulations, want 1", got-runsBefore)
	}
	// And the recomputed entry now hits without wait.
	if resp, _ := fetchCache(miss.Key(), miss.Canonical(), ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recompute fetch: %d, want 200", resp.StatusCode)
	}

	// PUT push: a non-owner's computed entry lands verified.
	pushed := smallSpec(20_000, 8)
	env := fmt.Sprintf(`{"identity":%s,"payload":{"fake":"payload"}}`, pushed.Canonical())
	req, _ := http.NewRequest(http.MethodPut, fmt.Sprintf("%s/cache/%016x", srv.URL, pushed.Key()), bytes.NewReader([]byte(env)))
	presp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusNoContent {
		t.Fatalf("push: %d, want 204", presp.StatusCode)
	}
	if resp, body := fetchCache(pushed.Key(), pushed.Canonical(), ""); resp.StatusCode != http.StatusOK || string(body) != `{"fake":"payload"}` {
		t.Fatalf("pushed entry fetch: %d %q", resp.StatusCode, body)
	}
	// A push whose identity does not hash to the key is refused.
	req, _ = http.NewRequest(http.MethodPut, fmt.Sprintf("%s/cache/%016x", srv.URL, pushed.Key()+1), bytes.NewReader([]byte(env)))
	presp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched push: %d, want 409", presp.StatusCode)
	}
}

// TestSingleFlightCoalesce pins node-local single-flight: identical
// specs submitted while the primary is still queued collapse onto one
// simulation and settle as byte-identical cached completions.
func TestSingleFlightCoalesce(t *testing.T) {
	m := New(Options{Workers: 1})
	defer m.Close()

	// One worker, occupied: the primary below cannot start (let alone
	// finish) until the blocker completes, so every duplicate submit
	// deterministically coalesces instead of racing a cache hit.
	blocker, err := m.Submit(smallSpec(200_000, 99))
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec(30_000, 1)
	const dups = 8
	jobs := make([]*Job, 0, dups)
	for i := 0; i < dups; i++ {
		j, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	var primaryPayload []byte
	for i, j := range jobs {
		v, err := j.Wait(context.Background())
		if err != nil || v.Status != StatusDone {
			t.Fatalf("dup %d: %v %+v", i, err, v)
		}
		if i == 0 {
			if v.Cached {
				t.Fatalf("primary reported cached: %+v", v)
			}
			primaryPayload = []byte(v.Result)
			continue
		}
		if !v.Cached || v.CacheSource != "coalesced" {
			t.Fatalf("dup %d not coalesced: cached=%v source=%q", i, v.Cached, v.CacheSource)
		}
		if !bytes.Equal(primaryPayload, []byte(v.Result)) {
			t.Fatalf("dup %d payload differs from primary", i)
		}
	}
	st := m.Stats()
	if st.Run.N != 2 { // blocker + primary
		t.Fatalf("ran %d simulations, want 2", st.Run.N)
	}
	if st.Coalesced != dups-1 {
		t.Fatalf("coalesced %d, want %d", st.Coalesced, dups-1)
	}
}

// TestShedMode pins the shed satellite: with Options.Shed, a full
// backlog rejects with a counted ErrShed (HTTP 429) instead of 503.
func TestShedMode(t *testing.T) {
	m := New(Options{Workers: 1, Backlog: 1, Shed: true})
	defer m.Close()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	// Occupy the worker and the single backlog slot with long distinct
	// specs; the third submit must shed. Distinct seeds so none
	// coalesce, and the first must be running (drained from the backlog
	// channel) before the second fills the only slot.
	first, err := m.Submit(smallSpec(300_000, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, first)
	second, err := m.Submit(smallSpec(300_000, 2))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*Job{first, second}
	body, _ := json.Marshal(smallSpec(300_000, 3))
	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("saturated submit in shed mode: %d %s, want 429", resp.StatusCode, b)
	}
	if got := m.Stats().JobsShed; got != 1 {
		t.Fatalf("jobs_shed = %d, want 1", got)
	}
	for _, j := range jobs {
		if v, err := j.Wait(context.Background()); err != nil || v.Status != StatusDone {
			t.Fatalf("accepted job: %v %+v", err, v)
		}
	}
}
