package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"testing"

	"ossd/internal/core"
	"ossd/internal/experiments"
	"ossd/internal/runner"
)

// reportGoldens pins the SHA-256 of the full text report for fixed
// seeds. They must survive any refactor that claims behavioral
// equivalence; a PR that deliberately changes simulated behavior or
// report formatting updates them alongside the change (last updated
// when the interference experiment joined the catalog — the tenancy
// refactor itself left the previous goldens byte-identical, verified
// before the catalog grew).
var reportGoldens = map[int64]string{
	1: "3cde8864c72567141ecd5f3e8052e714a1b126ec3e4ad34c44c9650d2160bca5",
	7: "16f2bac08afd8f9b731ca1586bc194159ead731cb5a993ed96e6bf9796b568c9",
}

// reportBytes regenerates the full text report exactly as `repro -seed
// N` writes it to its output, with each experiment's internal fan-out
// running on `workers` workers.
func reportBytes(t *testing.T, seed int64, workers int) []byte {
	t.Helper()
	selected := experiments.Catalog()
	specs := make([]runner.Spec[experiments.Result], len(selected))
	for i, e := range selected {
		e := e
		specs[i] = runner.Spec[experiments.Result]{
			Name: e.ID,
			Seed: seed,
			Run:  func() (experiments.Result, error) { return e.Run(seed, workers) },
		}
	}
	outcomes := runner.RunAll(specs, runner.Options{Workers: runner.DefaultWorkers()})
	var buf bytes.Buffer
	if failed := writeText(&buf, seed, selected, outcomes); failed {
		t.Fatalf("seed %d: an experiment failed:\n%s", seed, buf.String())
	}
	return buf.Bytes()
}

// TestReportByteIdentity regenerates the whole evaluation for seeds 1
// and 7 and requires the report bytes to hash to the recorded goldens.
// The full suite takes about a minute per seed, so the test only runs
// when REPRO_GOLDEN is set (CI sets it; see .github/workflows/ci.yml).
// It runs the suite across (shards, workers) pairs against the same
// pinned hashes: neither the parallel dataplane nor the worker pools may
// ever change a report byte.
func TestReportByteIdentity(t *testing.T) {
	if os.Getenv("REPRO_GOLDEN") == "" {
		t.Skip("set REPRO_GOLDEN=1 to run the full-report byte-identity check (~2 min)")
	}
	for _, c := range []struct{ shards, workers int }{{1, 4}, {2, 1}, {4, 4}} {
		prev := core.SetDefaultShards(c.shards)
		for seed, want := range reportGoldens {
			sum := sha256.Sum256(reportBytes(t, seed, c.workers))
			if got := hex.EncodeToString(sum[:]); got != want {
				t.Errorf("seed %d shards %d workers %d: report sha256 = %s, want %s (the simulation's observable behavior changed)", seed, c.shards, c.workers, got, want)
			}
		}
		core.SetDefaultShards(prev)
	}
}
