// Package osd implements the paper's proposal (§3.7): an object-based
// storage interface in front of the SSD, so the device — not the file
// system — performs block management. Objects are byte-addressable,
// carry attributes (priority, read-only/cold), and are backed by
// stripe-aligned extents allocated inside the device:
//
//   - Allocation granularity is the device's logical page (the full
//     stripe on FullStripe layouts), so object writes are naturally
//     stripe-aligned and avoid read-modify-write (§3.4).
//   - Deleting an object releases its pages to the FTL as free
//     notifications, enabling informed cleaning (§3.5).
//   - Requests against priority objects are tagged so priority-aware
//     cleaning can defer background work (§3.6).
package osd

import (
	"errors"
	"fmt"

	"ossd/internal/fsmodel"
	"ossd/internal/ssd"
	"ossd/internal/trace"
)

// ObjectID names an object.
type ObjectID uint64

// Attributes carry per-object hints the device exploits.
type Attributes struct {
	// Priority marks the object's I/O as foreground (§3.6).
	Priority bool
	// Tenant is the owning tenant class (0 = untagged): device I/O issued
	// for this object is tagged with it, so per-tenant accounting and
	// fair-share dispatch see object traffic attributed to its owner. The
	// block-compatible volume front overrides it per op via the *As
	// variants, since one shared volume carries every tenant's I/O.
	Tenant uint8
	// ReadOnly marks the object immutable: writes are rejected, and the
	// device may treat its data as cold during wear-leveling.
	ReadOnly bool
}

// Errors returned by the store.
var (
	ErrNotFound = errors.New("osd: no such object")
	ErrReadOnly = errors.New("osd: object is read-only")
	ErrNoSpace  = errors.New("osd: out of space")
	ErrBadRange = errors.New("osd: invalid range")
)

type object struct {
	id    ObjectID
	attrs Attributes
	size  int64 // logical byte size (highest byte written + 1)
	// region indexes the store's allocation regions (0 = SLC / only
	// region; 1 = MLC on heterogeneous devices).
	region int
	fsid   fsmodel.FileID
	// extents caches the allocation, in object-logical order; extent i
	// covers object bytes [starts[i], starts[i]+extents[i].Count*unit).
	extents []fsmodel.Extent
	starts  []int64
}

// Stats summarizes store activity.
type Stats struct {
	Objects        int
	Created        int64
	Deleted        int64
	BytesWritten   int64
	BytesRead      int64
	AllocatedBytes int64
	FreedBytes     int64
}

// region is one allocation domain: a byte range of the device with its
// own allocator. Homogeneous devices have one; heterogeneous devices
// (§3.3) have an SLC region and an MLC region, so the store can
// "co-locate all the data belonging to a root object in SLC memory for
// faster access".
type region struct {
	base int64
	fs   *fsmodel.FS
}

// Store is the object store. Like the device it fronts, it is
// single-threaded and driven by the device's simulation engine.
type Store struct {
	dev     *ssd.Device
	regions []*region
	unit    int64 // allocation unit in bytes (stripe or page)
	objs    map[ObjectID]*object
	next    ObjectID
	stats   Stats
}

// New builds a store over a device. The allocation unit is the device's
// logical page: the stripe for FullStripe layouts, the flash page for
// Interleaved. On heterogeneous devices the store manages the SLC and
// MLC regions separately.
func New(dev *ssd.Device) (*Store, error) {
	cfg := dev.Config()
	unit := int64(cfg.Geom.PageSize)
	if cfg.Layout == ssd.FullStripe {
		unit = cfg.StripeBytes
	}
	s := &Store{
		dev:  dev,
		unit: unit,
		objs: make(map[ObjectID]*object),
	}
	bounds := []int64{0, dev.LogicalBytes()}
	if b := dev.RegionBoundary(); b > 0 {
		bounds = []int64{0, b, dev.LogicalBytes()}
	}
	for i := 0; i+1 < len(bounds); i++ {
		fs, err := fsmodel.New(bounds[i+1]-bounds[i], unit)
		if err != nil {
			return nil, err
		}
		s.regions = append(s.regions, &region{base: bounds[i], fs: fs})
	}
	return s, nil
}

// Heterogeneous reports whether the store manages SLC and MLC regions.
func (s *Store) Heterogeneous() bool { return len(s.regions) > 1 }

// Device exposes the underlying device.
func (s *Store) Device() *ssd.Device { return s.dev }

// AllocationUnit reports the allocation granularity in bytes.
func (s *Store) AllocationUnit() int64 { return s.unit }

// Stats returns a snapshot.
func (s *Store) Stats() Stats {
	st := s.stats
	st.Objects = len(s.objs)
	return st
}

// Create registers an empty object. On heterogeneous media, priority
// (hot) objects are placed in the SLC region and everything else in MLC.
func (s *Store) Create(attrs Attributes) ObjectID {
	s.next++
	id := s.next
	reg := 0
	if s.Heterogeneous() && !attrs.Priority {
		reg = 1
	}
	s.objs[id] = &object{id: id, attrs: attrs, region: reg, fsid: s.regions[reg].fs.Create()}
	s.stats.Created++
	return id
}

// Region reports which allocation region an object lives in (0 = SLC or
// the only region, 1 = MLC).
func (s *Store) Region(id ObjectID) (int, error) {
	o, ok := s.objs[id]
	if !ok {
		return 0, ErrNotFound
	}
	return o.region, nil
}

// Info is the OSD attribute page of one object: its identity, logical
// and allocated sizes, placement, and attributes.
type Info struct {
	ID             ObjectID
	Size           int64
	AllocatedBytes int64
	Extents        int
	Region         int
	Attrs          Attributes
}

// Stat returns the object's attribute page.
func (s *Store) Stat(id ObjectID) (Info, error) {
	o, ok := s.objs[id]
	if !ok {
		return Info{}, ErrNotFound
	}
	return Info{
		ID:             o.id,
		Size:           o.size,
		AllocatedBytes: o.allocatedBytes(s.unit),
		Extents:        len(o.extents),
		Region:         o.region,
		Attrs:          o.attrs,
	}, nil
}

// Attributes returns an object's attributes.
func (s *Store) Attributes(id ObjectID) (Attributes, error) {
	o, ok := s.objs[id]
	if !ok {
		return Attributes{}, ErrNotFound
	}
	return o.attrs, nil
}

// SetAttributes replaces an object's attributes.
func (s *Store) SetAttributes(id ObjectID, attrs Attributes) error {
	o, ok := s.objs[id]
	if !ok {
		return ErrNotFound
	}
	o.attrs = attrs
	return nil
}

// Size returns the object's logical size in bytes.
func (s *Store) Size(id ObjectID) (int64, error) {
	o, ok := s.objs[id]
	if !ok {
		return 0, ErrNotFound
	}
	return o.size, nil
}

// List returns all live object IDs (unordered).
func (s *Store) List() []ObjectID {
	out := make([]ObjectID, 0, len(s.objs))
	for id := range s.objs {
		out = append(out, id)
	}
	return out
}

// allocatedBytes returns the object's allocated capacity.
func (o *object) allocatedBytes(unit int64) int64 {
	var n int64
	for _, e := range o.extents {
		n += e.Count
	}
	return n * unit
}

// ensure grows the object's allocation to cover [0, end) bytes.
func (s *Store) ensure(o *object, end int64) error {
	have := o.allocatedBytes(s.unit)
	if end <= have {
		return nil
	}
	need := (end - have + s.unit - 1) / s.unit
	got, err := s.regions[o.region].fs.Append(o.fsid, need)
	if err != nil {
		if errors.Is(err, fsmodel.ErrNoSpace) {
			return ErrNoSpace
		}
		return err
	}
	for _, e := range got {
		o.starts = append(o.starts, have)
		o.extents = append(o.extents, e)
		have += e.Count * s.unit
		s.stats.AllocatedBytes += e.Count * s.unit
	}
	return nil
}

// ranges maps an object byte range to device byte ranges, in order.
func (o *object) ranges(base, unit, off, size int64) ([][2]int64, error) {
	end := off + size
	var out [][2]int64
	for i, e := range o.extents {
		eStart := o.starts[i]
		eLen := e.Count * unit
		eEnd := eStart + eLen
		if eEnd <= off || eStart >= end {
			continue
		}
		lo, hi := off, end
		if lo < eStart {
			lo = eStart
		}
		if hi > eEnd {
			hi = eEnd
		}
		devOff := base + e.Start*unit + (lo - eStart)
		out = append(out, [2]int64{devOff, hi - lo})
	}
	var covered int64
	for _, r := range out {
		covered += r[1]
	}
	if covered != size {
		return nil, fmt.Errorf("%w: [%d, +%d) not fully allocated", ErrBadRange, off, size)
	}
	return out, nil
}

// submitRanges issues one device op per contiguous device range and
// calls done with the first error once all complete.
func (s *Store) submitRanges(kind trace.Kind, ranges [][2]int64, pri bool, tenant uint8, done func(error)) {
	if len(ranges) == 0 {
		if done != nil {
			done(nil)
		}
		return
	}
	left := len(ranges)
	var firstErr error
	for _, r := range ranges {
		op := trace.Op{Kind: kind, Offset: r[0], Size: r[1], Priority: pri, Tenant: tenant}
		err := s.dev.Submit(op, func(req *ssd.Request) {
			if req.Err != nil && firstErr == nil {
				firstErr = req.Err
			}
			left--
			if left == 0 && done != nil {
				done(firstErr)
			}
		})
		if err != nil {
			left--
			if firstErr == nil {
				firstErr = err
			}
			if left == 0 && done != nil {
				done(firstErr)
			}
		}
	}
}

// Reserve grows an object's allocation and logical size to cover
// [0, size) bytes without issuing device I/O — the OSD analogue of
// truncate/fallocate. A block-compatible volume front uses it to claim
// the device's whole address space up front so reads of not-yet-written
// offsets stay in range.
func (s *Store) Reserve(id ObjectID, size int64) error {
	o, ok := s.objs[id]
	if !ok {
		return ErrNotFound
	}
	if o.attrs.ReadOnly {
		return ErrReadOnly
	}
	if size < 0 {
		return fmt.Errorf("%w: reserve %d bytes", ErrBadRange, size)
	}
	if err := s.ensure(o, size); err != nil {
		return err
	}
	if size > o.size {
		o.size = size
	}
	return nil
}

// Write stores size bytes at object offset off, growing the object as
// needed. done (optional) fires when the device completes all parts; run
// the device's engine to make progress.
func (s *Store) Write(id ObjectID, off, size int64, done func(error)) error {
	o, ok := s.objs[id]
	if !ok {
		return ErrNotFound
	}
	return s.WriteAs(id, off, size, o.attrs.Tenant, done)
}

// WriteAs is Write with the device I/O tagged for an explicit tenant
// instead of the object's owner — the block volume front's hook, where
// one shared volume carries every tenant's I/O.
func (s *Store) WriteAs(id ObjectID, off, size int64, tenant uint8, done func(error)) error {
	o, ok := s.objs[id]
	if !ok {
		return ErrNotFound
	}
	if o.attrs.ReadOnly {
		return ErrReadOnly
	}
	if off < 0 || size <= 0 {
		return fmt.Errorf("%w: write [%d, +%d)", ErrBadRange, off, size)
	}
	if err := s.ensure(o, off+size); err != nil {
		return err
	}
	ranges, err := o.ranges(s.regions[o.region].base, s.unit, off, size)
	if err != nil {
		return err
	}
	if off+size > o.size {
		o.size = off + size
	}
	s.stats.BytesWritten += size
	s.submitRanges(trace.Write, ranges, o.attrs.Priority, tenant, done)
	return nil
}

// Read fetches size bytes at object offset off.
func (s *Store) Read(id ObjectID, off, size int64, done func(error)) error {
	o, ok := s.objs[id]
	if !ok {
		return ErrNotFound
	}
	return s.ReadAs(id, off, size, o.attrs.Tenant, done)
}

// ReadAs is Read with the device I/O tagged for an explicit tenant (see
// WriteAs).
func (s *Store) ReadAs(id ObjectID, off, size int64, tenant uint8, done func(error)) error {
	o, ok := s.objs[id]
	if !ok {
		return ErrNotFound
	}
	if off < 0 || size <= 0 || off+size > o.size {
		return fmt.Errorf("%w: read [%d, +%d) of %d-byte object", ErrBadRange, off, size, o.size)
	}
	ranges, err := o.ranges(s.regions[o.region].base, s.unit, off, size)
	if err != nil {
		return err
	}
	s.stats.BytesRead += size
	s.submitRanges(trace.Read, ranges, o.attrs.Priority, tenant, done)
	return nil
}

// FreeRange tells the device a byte range of the object no longer holds
// live data, without deallocating the extents — TRIM within an object.
// The range is translated through the object's extent map, so the
// notifications land on exactly the device pages backing those bytes.
// done (optional) fires when the device completes all parts.
func (s *Store) FreeRange(id ObjectID, off, size int64, done func(error)) error {
	o, ok := s.objs[id]
	if !ok {
		return ErrNotFound
	}
	if off < 0 || size <= 0 || off+size > o.size {
		return fmt.Errorf("%w: free [%d, +%d) of %d-byte object", ErrBadRange, off, size, o.size)
	}
	ranges, err := o.ranges(s.regions[o.region].base, s.unit, off, size)
	if err != nil {
		return err
	}
	s.stats.FreedBytes += size
	s.submitRanges(trace.Free, ranges, o.attrs.Priority, o.attrs.Tenant, done)
	return nil
}

// Delete removes an object and releases its pages to the device as free
// notifications — the §3.5 informed-cleaning signal.
func (s *Store) Delete(id ObjectID) error {
	o, ok := s.objs[id]
	if !ok {
		return ErrNotFound
	}
	delete(s.objs, id)
	reg := s.regions[o.region]
	freed, err := reg.fs.Delete(o.fsid)
	if err != nil {
		return err
	}
	s.stats.Deleted++
	for _, e := range freed {
		off, size := e.Bytes(s.unit)
		s.stats.FreedBytes += size
		if err := s.dev.Submit(trace.Op{Kind: trace.Free, Offset: reg.base + off, Size: size}, nil); err != nil {
			return err
		}
	}
	return nil
}
