package sim

import (
	"testing"
)

// shardModel is a tiny per-shard workload: each delivered message
// schedules a chain of follow-up events inside its own shard, recording
// the (time, shard) sequence it observes.
type shardModel struct {
	eng   *Engine
	log   []Time
	hops  int
	delay Time
}

func hopEvent(a any) {
	m := a.(*shardModel)
	m.log = append(m.log, m.eng.Now())
	if m.hops > 0 {
		m.hops--
		m.eng.Call(m.delay, hopEvent, m)
	}
}

// TestShardGroupDeterminism runs the same posting sequence through a
// parallel group and an inline group and requires identical per-shard
// event logs and clocks.
func TestShardGroupDeterminism(t *testing.T) {
	run := func(parallel bool) ([][]Time, Time) {
		g := NewShardGroup(4, 64)
		if parallel {
			g.Start()
			defer g.Stop()
		}
		models := make([]*shardModel, g.N())
		for i := range models {
			models[i] = &shardModel{eng: g.Engine(i), hops: 3 + i, delay: Time(7 + i)}
		}
		rng := NewRNG(42)
		at := Time(0)
		for k := 0; k < 200; k++ {
			at += Time(rng.Int63n(50))
			shard := int(rng.Int63n(int64(g.N())))
			if !g.Post(shard, at, hopEvent, models[shard]) {
				t.Fatal("inbox overflow")
			}
			if k%20 == 19 {
				g.RunWindow(at) // next posting is at >= at: a valid lookahead bound
			}
		}
		g.RunWindow(MaxTime)
		logs := make([][]Time, len(models))
		for i, m := range models {
			logs[i] = m.log
		}
		return logs, g.MaxNow()
	}

	inlineLogs, inlineNow := run(false)
	parLogs, parNow := run(true)
	if inlineNow != parNow {
		t.Fatalf("final clock: inline %v parallel %v", inlineNow, parNow)
	}
	for i := range inlineLogs {
		if len(inlineLogs[i]) != len(parLogs[i]) {
			t.Fatalf("shard %d: %d events inline, %d parallel", i, len(inlineLogs[i]), len(parLogs[i]))
		}
		for k := range inlineLogs[i] {
			if inlineLogs[i][k] != parLogs[i][k] {
				t.Fatalf("shard %d event %d: inline at %v, parallel at %v", i, k, inlineLogs[i][k], parLogs[i][k])
			}
		}
	}
}

// TestShardGroupTransfer moves pending events onto a fresh engine and
// checks the merged execution preserves per-shard order and rewrites
// payloads.
func TestShardGroupTransfer(t *testing.T) {
	g := NewShardGroup(3, 16)
	type probe struct{ shard int }
	var order []int
	record := func(a any) { order = append(order, a.(*probe).shard) }
	// Same-timestamp events across shards must merge in shard order;
	// within a shard, scheduling order.
	for i := 0; i < g.N(); i++ {
		p := &probe{shard: i}
		g.Engine(i).CallAt(100, record, p)
		g.Engine(i).CallAt(50+Time(i), record, p)
	}
	dst := NewEngine()
	rewrote := 0
	n := g.Transfer(dst, func(arg any) any { rewrote++; return arg })
	if n != 6 || rewrote != 6 {
		t.Fatalf("transferred %d events, rewrote %d, want 6/6", n, rewrote)
	}
	if g.Pending() != 0 {
		t.Fatalf("shards still hold %d events after transfer", g.Pending())
	}
	dst.Run()
	want := []int{0, 1, 2, 0, 1, 2} // times 50,51,52 then the 100s in shard order
	if len(order) != len(want) {
		t.Fatalf("ran %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("event %d ran on shard %d, want %d (order %v)", i, order[i], want[i], order)
		}
	}
}

// TestShardGroupInboxBound checks Post reports a full inbox instead of
// growing without bound.
func TestShardGroupInboxBound(t *testing.T) {
	g := NewShardGroup(1, 4)
	for i := 0; i < 4; i++ {
		if !g.Post(0, Time(i), func(any) {}, nil) {
			t.Fatalf("post %d rejected below the bound", i)
		}
	}
	if g.Post(0, 4, func(any) {}, nil) {
		t.Fatal("post accepted beyond the bound")
	}
	if free := g.InboxFree(0); free != 0 {
		t.Fatalf("inbox free = %d, want 0", free)
	}
	g.RunWindow(MaxTime)
	if free := g.InboxFree(0); free != 4 {
		t.Fatalf("inbox free after window = %d, want 4", free)
	}
}
