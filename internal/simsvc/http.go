package simsvc

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"ossd/internal/core"
	"ossd/internal/experiments"
	"ossd/internal/runner"
	"ossd/internal/workload"
)

// writeJSON serves v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError serves an error as {"error": ...}.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// profileInfo is one GET /profiles row.
type profileInfo struct {
	Name        string `json:"name"`
	Kind        string `json:"kind"`
	Description string `json:"description"`
}

// experimentInfo is one GET /experiments row.
type experimentInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// experimentRequest is the optional POST /experiments/{name} body. Seed
// is a pointer so an explicit {"seed": 0} is distinguishable from an
// omitted field (which defaults to 1).
type experimentRequest struct {
	Seed    *int64 `json:"seed,omitempty"`
	Workers int    `json:"workers,omitempty"`
}

// expIdentity is the experiment result cache's identity bytes (hash it
// with identityKey for the cache key). Workers is deliberately
// excluded: experiment results are byte-identical for a fixed seed
// regardless of worker count (the determinism tests pin this), so it
// is not part of the result's identity.
func expIdentity(name string, seed int64) []byte {
	return fmt.Appendf(nil, "experiment|%s|%d", name, seed)
}

// Handler returns the service's HTTP API:
//
//	POST   /jobs                submit a JobSpec, get {id, status, cached}
//	GET    /jobs/{id}           job state (+ ?wait=1 to block until terminal)
//	DELETE /jobs/{id}           cancel a queued or running job
//	GET    /jobs/{id}/stream    NDJSON telemetry samples until the job ends
//	GET    /profiles            registered device profiles
//	GET    /workloads           registered workload generators
//	GET    /experiments         the paper's experiment catalog
//	POST   /experiments/{name}  run one experiment (body: {seed, workers})
//	GET    /cache/{key}         internal fleet fetch (+ ?wait=1 coalesce/recompute)
//	PUT    /cache/{key}         internal fleet push from a non-owner
//	GET    /healthz             liveness
//	GET    /statsz              job/cache/tier counters
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("simsvc: bad job spec: %w", err))
			return
		}
		job, err := m.Submit(spec)
		if err != nil {
			status := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrShed), errors.Is(err, ErrTenantQuota):
				// Shed mode and tenant quotas: an explicit "go away"
				// beats queueing the caller behind the overload.
				status = http.StatusTooManyRequests
			case errors.Is(err, runner.ErrPoolSaturated), errors.Is(err, runner.ErrPoolClosed):
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.View())
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if r.URL.Query().Get("wait") != "" {
			view, err := m.Wait(r.Context(), id)
			if err != nil {
				writeError(w, http.StatusNotFound, err)
				return
			}
			writeJSON(w, http.StatusOK, view)
			return
		}
		job, ok := m.Job(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("simsvc: no job %q", id))
			return
		}
		writeJSON(w, http.StatusOK, job.View())
	})

	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		cancelled, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"cancelled": cancelled})
	})

	mux.HandleFunc("GET /jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		err := m.StreamSamples(r.Context(), r.PathValue("id"), func(s Sample) error {
			if err := enc.Encode(s); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})
		if err != nil && r.Context().Err() == nil && !errors.Is(err, ErrJobEvicted) {
			// Nothing streamed yet iff the job ID was unknown; headers may
			// already be out otherwise, so only the lookup error is usable.
			// An eviction mid-tail just ends the NDJSON stream: samples may
			// already be on the wire, and the terminated connection is the
			// signal.
			writeError(w, http.StatusNotFound, err)
		}
	})

	mux.HandleFunc("GET /profiles", func(w http.ResponseWriter, r *http.Request) {
		var infos []profileInfo
		for _, name := range core.ProfileNames() {
			p, err := core.ProfileByName(name)
			if err != nil {
				continue // racing an unregister is impossible; be safe anyway
			}
			infos = append(infos, profileInfo{Name: p.Name, Kind: p.Kind.String(), Description: p.Description})
		}
		writeJSON(w, http.StatusOK, infos)
	})

	mux.HandleFunc("GET /workloads", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, workload.Generators())
	})

	mux.HandleFunc("GET /experiments", func(w http.ResponseWriter, r *http.Request) {
		var infos []experimentInfo
		for _, e := range experiments.Catalog() {
			infos = append(infos, experimentInfo{Name: e.ID, Description: e.Description})
		}
		writeJSON(w, http.StatusOK, infos)
	})

	mux.HandleFunc("POST /experiments/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		entry, ok := experiments.CatalogEntryByID(name)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("simsvc: unknown experiment %q", name))
			return
		}
		var req experimentRequest
		if r.ContentLength != 0 {
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("simsvc: bad experiment request: %w", err))
				return
			}
		}
		seed := int64(1)
		if req.Seed != nil {
			seed = *req.Seed
		}

		// Experiment runs are deterministic from (name, seed), so they
		// share the content-addressed cache with jobs.
		identity := expIdentity(entry.ID, seed)
		key := identityKey(identity)
		if payload, ok := m.cache.get(key, identity); ok {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(payload)
			return
		}

		// Experiments fan out internally and run for seconds; bound
		// their concurrency and shed the overflow instead of stacking
		// unmanaged runs on handler goroutines.
		select {
		case m.expSem <- struct{}{}:
			defer func() { <-m.expSem }()
		default:
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("simsvc: an experiment is already running; retry later"))
			return
		}

		res := ExperimentResult{Name: entry.ID, Description: entry.Description, Seed: seed}
		value, err := entry.Run(seed, req.Workers)
		if err != nil {
			res.Error = err.Error()
			writeJSON(w, http.StatusInternalServerError, res)
			return
		}
		res.Report = value.String()
		payload, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		payload = append(payload, '\n')
		m.cache.put(key, identity, payload)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(payload)
	})

	// GET /cache/{key} is the fleet's internal fetch path: a peer that
	// missed locally on a key this node owns asks here. The body is the
	// entry's identity bytes (the canonical spec JSON), verified against
	// both the path key and the stored entry — a colliding key answers
	// 409, never another spec's payload. With ?wait=1 a miss does not
	// 404-loop: the request coalesces onto this node's in-flight
	// computation of the same identity, or — if the entry was evicted or
	// never computed — recomputes it locally, so the requester always
	// gets the byte-identical payload one simulation produces.
	mux.HandleFunc("GET /cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		key, err := strconv.ParseUint(r.PathValue("key"), 16, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("simsvc: bad cache key: %w", err))
			return
		}
		identity, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil || len(identity) == 0 {
			writeError(w, http.StatusBadRequest, errors.New("simsvc: cache fetch needs identity bytes in the body"))
			return
		}
		if identityKey(identity) != key {
			writeError(w, http.StatusConflict, errors.New("simsvc: identity does not hash to the requested key"))
			return
		}
		if payload, ok := m.cache.get(key, identity); ok {
			if m.tier != nil {
				m.tier.peerServes.Add(1)
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(payload)
			return
		}
		if r.URL.Query().Get("wait") == "" {
			writeError(w, http.StatusNotFound, errors.New("simsvc: no cache entry"))
			return
		}
		var spec JobSpec
		dec := json.NewDecoder(bytes.NewReader(identity))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			// Not a job-spec identity (e.g. an experiment entry):
			// nothing to recompute from.
			writeError(w, http.StatusNotFound, errors.New("simsvc: no cache entry and identity is not a job spec"))
			return
		}
		// SubmitLocal rides the normal single-flight path: an in-flight
		// identical spec absorbs this request as a waiter; otherwise the
		// owner recomputes. Shed/saturation answer 429/503 and the
		// requester computes locally.
		job, err := m.SubmitLocal(spec)
		if err != nil {
			status := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrShed), errors.Is(err, ErrTenantQuota):
				status = http.StatusTooManyRequests
			case errors.Is(err, runner.ErrPoolSaturated), errors.Is(err, runner.ErrPoolClosed):
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, err)
			return
		}
		view, err := job.Wait(r.Context())
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		if view.Status != StatusDone {
			// The recompute failed (cancelled at shutdown, bad device
			// state): an alive 404 lets the requester run — and observe
			// the failure — itself, without tripping its breaker.
			writeError(w, http.StatusNotFound, fmt.Errorf("simsvc: recompute failed: %s", view.Error))
			return
		}
		if m.tier != nil {
			m.tier.peerServes.Add(1)
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(view.Result))
	})

	// PUT /cache/{key} accepts an entry from a non-owner that had to
	// compute locally (this node was shedding or briefly unreachable),
	// so the tier converges back to owner-holds-the-entry.
	mux.HandleFunc("PUT /cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		key, err := strconv.ParseUint(r.PathValue("key"), 16, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("simsvc: bad cache key: %w", err))
			return
		}
		var env pushEnvelope
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&env); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("simsvc: bad cache push: %w", err))
			return
		}
		if len(env.Identity) == 0 || len(env.Payload) == 0 {
			writeError(w, http.StatusBadRequest, errors.New("simsvc: cache push needs identity and payload"))
			return
		}
		if identityKey(env.Identity) != key {
			writeError(w, http.StatusConflict, errors.New("simsvc: identity does not hash to the pushed key"))
			return
		}
		m.cache.put(key, env.Identity, env.Payload)
		if m.tier != nil {
			m.tier.peerStores.Add(1)
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.HandleFunc("GET /statsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Stats())
	})

	return mux
}
