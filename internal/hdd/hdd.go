// Package hdd models a 7200 RPM hard disk for the paper's Table 2
// baseline: a seek-time curve, rotational position tracking, zoned
// recording (outer tracks transfer faster), and a write-back cache that
// drains in CLOOK (elevator) order — the mechanism behind the Barracuda's
// random-write bandwidth exceeding its random-read bandwidth.
package hdd

import (
	"fmt"
	"math"
	"sort"

	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/stats"
	"ossd/internal/trace"
)

// Config describes the disk.
type Config struct {
	// CapacityBytes is the formatted capacity.
	CapacityBytes int64
	// Cylinders is the number of seek positions.
	Cylinders int
	// Zones is the number of recording zones; zone 0 is outermost and
	// fastest.
	Zones int
	// RPM is the spindle speed.
	RPM int
	// MaxTransferMBps is the outer-zone media rate in MB/s; the inner
	// zone runs at roughly 55% of it, matching typical 3.5" drives.
	MaxTransferMBps float64
	// TrackToTrack, FullStroke are seek-curve anchors.
	TrackToTrack, FullStroke sim.Time
	// CacheBytes is the write-back cache size (0 disables write caching).
	CacheBytes int64
	// CacheLatency is the host-visible latency of a cache-absorbed write.
	CacheLatency sim.Time
}

// Barracuda7200 returns parameters approximating the Seagate Barracuda
// 7200.11 used in the paper's Table 2.
func Barracuda7200() Config {
	return Config{
		CapacityBytes:   500e9,
		Cylinders:       150_000,
		Zones:           16,
		RPM:             7200,
		MaxTransferMBps: 87,
		TrackToTrack:    800 * sim.Microsecond,
		FullStroke:      18 * sim.Millisecond,
		CacheBytes:      16 << 20,
		CacheLatency:    100 * sim.Microsecond,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.CapacityBytes <= 0 || c.Cylinders <= 0 || c.RPM <= 0 || c.MaxTransferMBps <= 0 {
		return fmt.Errorf("hdd: invalid config %+v", *c)
	}
	if c.Zones <= 0 {
		c.Zones = 1
	}
	return nil
}

// Metrics accumulates disk measurements.
type Metrics struct {
	Completed               int64
	ReadResp, WriteResp     stats.Histogram // milliseconds
	BytesRead, BytesWritten int64
	CacheHits               int64
	Seeks                   int64
	// Tenants breaks completed host transfers down per tenant class.
	Tenants stats.TenantSet
}

// cacheEntry is one dirty range in the write-back cache.
type cacheEntry struct {
	off, size int64
}

// Disk is the simulated drive. Like ssd.Device it is driven entirely by a
// sim.Engine and is single-threaded.
type Disk struct {
	cfg Config
	eng *sim.Engine

	revTime     sim.Time
	bytesPerCyl float64 // average, used for LBA->cylinder mapping per zone
	zoneRate    []float64
	zoneStart   []int64 // starting byte of each zone
	zoneCyls    int

	headCyl int
	lastEnd int64 // end offset of the previous media access (for sequential detection)
	// q holds media accesses awaiting the (single) actuator in FCFS
	// order; drv is the shared dispatch loop, with the write-cache drain
	// as its post hook.
	q         *sched.Queue
	drv       *sched.Driver
	cache     []cacheEntry // sorted by offset
	cacheUsed int64
	waitWr    []*Request // writes blocked on cache space
	// draining carries in-flight cache flushes to their pooled
	// completion events, in start order. Drains are serialized by the
	// busy actuator, but at the exact tick one ends an earlier-scheduled
	// arrival can pump the driver and start the next flush before the
	// first drainDoneEvent runs — so this is a (tiny) FIFO, not a single
	// slot. Steady state reuses the slice's capacity.
	draining []cacheEntry

	met Metrics
}

// Request mirrors the ssd request lifecycle for the disk.
type Request struct {
	Op                  trace.Op
	Arrive, Start, Done sim.Time
	onDone              func(*Request)
	// disk lets the pooled engine callbacks reach the model without a
	// closure per event.
	disk *Disk
}

// Response returns completion minus arrival.
func (r *Request) Response() sim.Time { return r.Done - r.Arrive }

// New builds a disk on the engine.
func New(eng *sim.Engine, cfg Config) (*Disk, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Disk{cfg: cfg, eng: eng}
	// One parallel element — the actuator — dispatched FCFS through the
	// same indexed queue the SSD gang uses.
	d.q = sched.NewQueue(sched.FCFS, 1)
	d.drv = sched.NewDriver(eng, d.q, d.serve)
	d.drv.SetHooks(nil, d.drain)
	d.revTime = sim.Time(60e9 / float64(cfg.RPM))
	d.zoneCyls = cfg.Cylinders / cfg.Zones
	// Zone media rates fall linearly from max (outer) to 55% (inner).
	d.zoneRate = make([]float64, cfg.Zones)
	total := 0.0
	for z := 0; z < cfg.Zones; z++ {
		frac := 1 - 0.45*float64(z)/float64(max(cfg.Zones-1, 1))
		d.zoneRate[z] = cfg.MaxTransferMBps * 1e6 * frac
		total += frac
	}
	// Bytes per zone proportional to its rate (same cylinders per zone,
	// density ∝ rate).
	d.zoneStart = make([]int64, cfg.Zones+1)
	var acc float64
	for z := 0; z < cfg.Zones; z++ {
		d.zoneStart[z] = int64(acc / total * float64(cfg.CapacityBytes))
		acc += 1 - 0.45*float64(z)/float64(max(cfg.Zones-1, 1))
	}
	d.zoneStart[cfg.Zones] = cfg.CapacityBytes
	return d, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Engine returns the driving engine.
func (d *Disk) Engine() *sim.Engine { return d.eng }

// LogicalBytes reports the capacity.
func (d *Disk) LogicalBytes() int64 { return d.cfg.CapacityBytes }

// Metrics returns a snapshot.
func (d *Disk) Metrics() Metrics { return d.met }

// QueueDepth reports host requests waiting for the actuator: queued
// media accesses plus writes blocked on cache space.
func (d *Disk) QueueDepth() int { return d.q.Len() + len(d.waitWr) }

// zoneOf maps a byte offset to its zone.
func (d *Disk) zoneOf(off int64) int {
	z := sort.Search(d.cfg.Zones, func(i int) bool { return d.zoneStart[i+1] > off })
	if z >= d.cfg.Zones {
		z = d.cfg.Zones - 1
	}
	return z
}

// cylOf maps a byte offset to a cylinder.
func (d *Disk) cylOf(off int64) int {
	z := d.zoneOf(off)
	zBytes := d.zoneStart[z+1] - d.zoneStart[z]
	within := float64(off-d.zoneStart[z]) / float64(zBytes)
	return z*d.zoneCyls + int(within*float64(d.zoneCyls))
}

// seekTime models the seek curve through the two anchor points: a
// sqrt-dominated short-seek region and a linear long-seek region.
func (d *Disk) seekTime(fromCyl, toCyl int) sim.Time {
	dist := fromCyl - toCyl
	if dist < 0 {
		dist = -dist
	}
	if dist == 0 {
		return 0
	}
	frac := float64(dist) / float64(d.cfg.Cylinders)
	t := float64(d.cfg.TrackToTrack) +
		0.25*float64(d.cfg.FullStroke)*math.Sqrt(frac) +
		0.70*float64(d.cfg.FullStroke)*frac
	return sim.Time(t)
}

// rotTime returns the rotational delay to reach the target offset's
// angular position given the current time.
func (d *Disk) rotTime(off int64, at sim.Time) sim.Time {
	// Angular position of the target sector: proportional to its byte
	// position within its (approximate) track.
	z := d.zoneOf(off)
	trackBytes := d.zoneRate[z] * d.revTime.Seconds()
	target := math.Mod(float64(off), trackBytes) / trackBytes
	head := math.Mod(float64(at), float64(d.revTime)) / float64(d.revTime)
	delta := target - head
	if delta < 0 {
		delta++
	}
	return sim.Time(delta * float64(d.revTime))
}

// xferTime is the media transfer time for size bytes at the offset's zone
// rate.
func (d *Disk) xferTime(off, size int64) sim.Time {
	return sim.Time(float64(size) / d.zoneRate[d.zoneOf(off)] * 1e9)
}

// serviceTime computes one media access: sequential continuation skips
// the mechanical delays entirely.
func (d *Disk) serviceTime(off, size int64) sim.Time {
	if off == d.lastEnd {
		d.lastEnd = off + size
		d.headCyl = d.cylOf(off + size)
		return d.xferTime(off, size)
	}
	seek := d.seekTime(d.headCyl, d.cylOf(off))
	d.met.Seeks++
	rot := d.rotTime(off, d.eng.Now()+seek)
	d.headCyl = d.cylOf(off)
	d.lastEnd = off + size
	return seek + rot + d.xferTime(off, size)
}

// Submit enqueues an operation at the current simulated time. Frees are
// ignored by disks (no TRIM on this model) but complete successfully.
func (d *Disk) Submit(op trace.Op, onDone func(*Request)) error {
	if err := op.Validate(); err != nil {
		return err
	}
	if op.End() > d.cfg.CapacityBytes {
		return fmt.Errorf("hdd: request [%d, +%d) beyond capacity", op.Offset, op.Size)
	}
	req := &Request{Op: op, Arrive: d.eng.Now(), onDone: onDone, disk: d}
	switch op.Kind {
	case trace.Free:
		d.finish(req)
	case trace.Read:
		if d.cacheCovers(op.Offset, op.Size) {
			d.met.CacheHits++
			d.eng.Call(d.cfg.CacheLatency, finishEvent, req)
			break
		}
		d.q.PushT(actuator, req, op.Tenant, op.Size)
		d.drv.Pump()
	case trace.Write:
		if d.cfg.CacheBytes == 0 {
			// Write-through: treat like a read-path media access.
			d.q.PushT(actuator, req, op.Tenant, op.Size)
			d.drv.Pump()
			break
		}
		if d.cacheUsed+op.Size <= d.cfg.CacheBytes {
			d.cacheInsert(op.Offset, op.Size)
			d.eng.Call(d.cfg.CacheLatency, finishEvent, req)
			d.drv.Pump()
		} else {
			d.waitWr = append(d.waitWr, req)
			d.drv.Pump()
		}
	}
	return nil
}

// actuator is the element set of every disk access: the one arm.
var actuator = []int{0}

// Play replays a timestamped trace to completion.
func (d *Disk) Play(ops []trace.Op) error {
	var firstErr error
	for _, op := range ops {
		op := op
		d.eng.At(op.At, func() {
			if err := d.Submit(op, nil); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	d.eng.Run()
	return firstErr
}

// ClosedLoop keeps depth requests outstanding from gen.
func (d *Disk) ClosedLoop(depth int, gen func(i int) (trace.Op, bool)) error {
	if depth <= 0 {
		depth = 1
	}
	var firstErr error
	i := 0
	var issue func()
	// One completion callback for the whole loop, not one per op.
	reissue := func(*Request) { issue() }
	issue = func() {
		op, ok := gen(i)
		if !ok {
			return
		}
		i++
		if err := d.Submit(op, reissue); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for k := 0; k < depth; k++ {
		issue()
	}
	d.eng.Run()
	return firstErr
}

// finishEvent is the pooled engine callback completing a request with no
// further media work (cache hits and cache-absorbed writes).
func finishEvent(a any) {
	req := a.(*Request)
	req.disk.finish(req)
}

// servedEvent is the pooled engine callback for a finished media access:
// complete the request and pump the dispatch loop.
func servedEvent(a any) {
	req := a.(*Request)
	req.disk.finish(req)
	req.disk.drv.Pump()
}

// drainDoneEvent is the pooled engine callback for a finished cache
// flush; arg is the *Disk since drain victims are cache ranges, not
// requests. Completion events fire in start order (flushes never
// overlap), so the oldest in-flight entry is always the one finishing.
func drainDoneEvent(a any) {
	d := a.(*Disk)
	e := d.draining[0]
	d.draining = d.draining[:copy(d.draining, d.draining[1:])]
	d.drained(e)
	d.drv.Pump()
}

func (d *Disk) finish(req *Request) {
	req.Done = d.eng.Now()
	d.met.Completed++
	ms := req.Response().Millis()
	switch req.Op.Kind {
	case trace.Read:
		d.met.ReadResp.Add(ms)
		d.met.BytesRead += req.Op.Size
		d.met.Tenants.Record(req.Op.Tenant, false, req.Op.Size, ms)
	case trace.Write:
		d.met.WriteResp.Add(ms)
		d.met.BytesWritten += req.Op.Size
		d.met.Tenants.Record(req.Op.Tenant, true, req.Op.Size, ms)
	}
	if req.onDone != nil {
		req.onDone(req)
	}
}

// serve starts one queued media access (the driver dispatches reads and
// write-through writes ahead of the drain hook, preserving read
// priority over background cache flushes).
func (d *Disk) serve(data any, now sim.Time) {
	req := data.(*Request)
	req.Start = now
	dur := d.serviceTime(req.Op.Offset, req.Op.Size)
	d.q.SetBusy(0, now+dur)
	d.eng.Call(dur, servedEvent, req)
}

// drain is the driver's post-dispatch hook: when the actuator is idle
// and dirty cache entries exist, flush the CLOOK victim.
func (d *Disk) drain(now sim.Time) bool {
	if !d.q.Idle(0, now) || len(d.cache) == 0 {
		return false
	}
	e := d.nextDrain()
	dur := d.serviceTime(e.off, e.size)
	d.q.SetBusy(0, now+dur)
	d.draining = append(d.draining, e)
	d.eng.Call(dur, drainDoneEvent, d)
	return true
}

// cacheCovers reports whether a read range is entirely dirty in cache.
func (d *Disk) cacheCovers(off, size int64) bool {
	i := sort.Search(len(d.cache), func(i int) bool { return d.cache[i].off+d.cache[i].size > off })
	return i < len(d.cache) && d.cache[i].off <= off && off+size <= d.cache[i].off+d.cache[i].size
}

// cacheInsert adds a dirty range, kept sorted by offset. Overlaps merge.
func (d *Disk) cacheInsert(off, size int64) {
	d.cacheUsed += size
	i := sort.Search(len(d.cache), func(i int) bool { return d.cache[i].off >= off })
	d.cache = append(d.cache, cacheEntry{})
	copy(d.cache[i+1:], d.cache[i:])
	d.cache[i] = cacheEntry{off: off, size: size}
}

// nextDrain picks the CLOOK victim: the first dirty entry at or beyond
// the head's cylinder, wrapping to the lowest offset.
func (d *Disk) nextDrain() cacheEntry {
	headOff := d.lastEnd
	i := sort.Search(len(d.cache), func(i int) bool { return d.cache[i].off >= headOff })
	if i == len(d.cache) {
		i = 0
	}
	return d.cache[i]
}

// drained removes a flushed entry and admits waiting writes.
func (d *Disk) drained(e cacheEntry) {
	for i := range d.cache {
		if d.cache[i] == e {
			d.cache = append(d.cache[:i], d.cache[i+1:]...)
			break
		}
	}
	d.cacheUsed -= e.size
	for len(d.waitWr) > 0 {
		req := d.waitWr[0]
		if d.cacheUsed+req.Op.Size > d.cfg.CacheBytes {
			break
		}
		// Nil the vacated slot so the advancing slice window does not pin
		// the admitted request for the collector.
		d.waitWr[0] = nil
		d.waitWr = d.waitWr[1:]
		d.cacheInsert(req.Op.Offset, req.Op.Size)
		d.finish(req)
	}
}
