// Tracereplay: generate a macro workload trace, transform it with the
// write merge-and-align pass (§3.4), and replay both versions on the
// paper's striped device to see the alignment win end to end. This is the
// pipeline behind Tables 3 and 4, in ~80 lines.
package main

import (
	"fmt"
	"log"

	"ossd/internal/core"
	"ossd/internal/flash"
	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/ssd"
	"ossd/internal/trace"
	"ossd/internal/workload"
)

const stripeBytes = 32 << 10

func device() *core.SSD {
	dev, err := core.NewSSD(ssd.Config{
		Elements:      8,
		Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 64, BlocksPerPackage: 64},
		Overprovision: 0.10,
		Layout:        ssd.FullStripe,
		StripeBytes:   stripeBytes,
		Scheduler:     sched.SWTF,
		CtrlOverhead:  20 * sim.Microsecond,
		GCLow:         0.05,
		GCCritical:    0.02,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := core.PreconditionFrac(dev, 1<<20, 0.6); err != nil {
		log.Fatal(err)
	}
	return dev
}

func replay(ops []trace.Op) (meanWriteMs float64, rmwReads int64) {
	dev := device()
	base := dev.Engine().Now()
	shifted := make([]trace.Op, len(ops))
	copy(shifted, ops)
	for i := range shifted {
		shifted[i].At += base
	}
	before := dev.Raw.GCStats()
	wBefore := dev.Raw.Metrics().WriteResp
	if err := dev.Play(shifted); err != nil {
		log.Fatal(err)
	}
	after := dev.Raw.GCStats()
	w := dev.Raw.Metrics().WriteResp
	n := w.N() - wBefore.N()
	if n > 0 {
		meanWriteMs = (w.Mean()*float64(w.N()) - wBefore.Mean()*float64(wBefore.N())) / float64(n)
	}
	return meanWriteMs, after.HostPageReads - before.HostPageReads
}

func main() {
	dev := device()
	space := int64(float64(dev.LogicalBytes()) * 0.6)
	ops, err := workload.IOzone(workload.IOzoneConfig{
		FileBytes:        space / 2,
		RecordBytes:      128 << 10,
		MeanInterarrival: 3 * sim.Millisecond,
		Seed:             7,
	})
	if err != nil {
		log.Fatal(err)
	}
	aligned, err := trace.AlignWith(ops, stripeBytes, trace.AlignOptions{
		MaxGap:      6 * sim.Millisecond,
		ReadBarrier: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IOzone trace: %d ops; aligned form: %d ops\n", len(ops), len(aligned))

	uMs, uRMW := replay(ops)
	aMs, aRMW := replay(aligned)
	fmt.Printf("unaligned: mean write %.3f ms, %d read-modify-write page reads\n", uMs, uRMW)
	fmt.Printf("aligned:   mean write %.3f ms, %d read-modify-write page reads\n", aMs, aRMW)
	if uMs > 0 {
		fmt.Printf("improvement: %.1f%% — the paper's Table 4 effect (IOzone row)\n", (uMs-aMs)/uMs*100)
	}
}
