package sched

import (
	"math/rand"
	"testing"

	"ossd/internal/sim"
)

// TestQueueFairSingleTenantEquivalence is the tenancy refactor's
// determinism contract: with exactly one tenant class in play, weighted
// DRR degenerates to the base policy, so an engaged fair-share layer
// must reproduce the legacy dispatch sequence op-for-op — both
// policies, randomized workloads, whether the traffic is tagged or
// rides the tenant-0 default.
func TestQueueFairSingleTenantEquivalence(t *testing.T) {
	const elements = 4
	for _, policy := range []Policy{FCFS, SWTF} {
		for _, tenant := range []uint8{0, 5} {
			t.Run(policy.String(), func(t *testing.T) {
				for trial := 0; trial < 10; trial++ {
					rng := rand.New(rand.NewSource(int64(trial)*100 + int64(policy) + int64(tenant)))
					fair := NewQueue(policy, elements)
					fair.SetTenantWeight(tenant, 2.5)
					plain := NewQueue(policy, elements)
					elemsOf := map[int][]int{}
					now := sim.Time(0)
					id := 0
					for step := 0; step < 300; step++ {
						for n := rng.Intn(4); n > 0; n-- {
							k := 1 + rng.Intn(3)
							perm := rng.Perm(elements)[:k]
							elemsOf[id] = perm
							fair.PushT(perm, id, tenant, int64(4096*(1+id%8)))
							plain.Push(perm, id)
							id++
						}
						for {
							got, ok := fair.Pop(now)
							want, wok := plain.Pop(now)
							if ok != wok {
								t.Fatalf("trial %d step %d: fair ok=%v plain ok=%v", trial, step, ok, wok)
							}
							if !ok {
								break
							}
							if got.(int) != want.(int) {
								t.Fatalf("trial %d step %d: fair dispatched %v, plain %v", trial, step, got, want)
							}
							for _, e := range elemsOf[got.(int)] {
								until := now + serviceTime(got.(int), e)
								fair.SetBusy(e, until)
								plain.SetBusy(e, until)
							}
						}
						now += sim.Time(1 + rng.Intn(20))
					}
					if fair.Len() != plain.Len() {
						t.Fatalf("trial %d: fair len %d, plain %d", trial, fair.Len(), plain.Len())
					}
				}
			})
		}
	}
}

// TestQueueFairShareBytes pins the DRR arithmetic: two tenants with a
// continuously backlogged single element and weights 1:3 split the
// dispatched bytes 1:3 (within one quantum of slack).
func TestQueueFairShareBytes(t *testing.T) {
	for _, policy := range []Policy{FCFS, SWTF} {
		t.Run(policy.String(), func(t *testing.T) {
			q := NewQueue(policy, 1)
			q.SetTenantWeight(1, 1)
			q.SetTenantWeight(2, 3)
			const opBytes = 8 << 10
			elems := []int{0}
			backlog := func(tenant uint8, n int) {
				for i := 0; i < n; i++ {
					q.PushT(elems, int(tenant), tenant, opBytes)
				}
			}
			backlog(1, 4096)
			backlog(2, 4096)
			bytesOf := map[int]int64{}
			now := sim.Time(0)
			for i := 0; i < 4000; i++ {
				data, ok := q.Pop(now)
				if !ok {
					t.Fatalf("pop %d: backlogged queue stalled", i)
				}
				bytesOf[data.(int)] += opBytes
				q.SetBusy(0, now+1)
				now++
			}
			ratio := float64(bytesOf[2]) / float64(bytesOf[1])
			if ratio < 2.8 || ratio > 3.2 {
				t.Fatalf("dispatched bytes tenant2/tenant1 = %.2f (t1=%d t2=%d), want ~3",
					ratio, bytesOf[1], bytesOf[2])
			}
		})
	}
}

// TestQueueFairWorkConserving: fair-share never idles the device to
// honor a share — when one tenant's head is blocked on a busy element,
// another tenant's dispatchable work proceeds regardless of deficits.
func TestQueueFairWorkConserving(t *testing.T) {
	q := NewQueue(SWTF, 2)
	q.SetTenantWeight(1, 100) // heavy tenant, but blocked below
	q.SetTenantWeight(2, 1)
	q.SetBusy(0, 1000)
	q.PushT([]int{0}, "heavy", 1, 4096)
	q.PushT([]int{1}, "light", 2, 4096)
	if data, ok := q.Pop(0); !ok || data != "light" {
		t.Fatalf("Pop = %v, %v, want light (work conservation)", data, ok)
	}
	if _, ok := q.Pop(0); ok {
		t.Fatal("dispatched onto a busy element")
	}
	if data, ok := q.Pop(1000); !ok || data != "heavy" {
		t.Fatalf("Pop = %v, %v, want heavy after horizon", data, ok)
	}
}

// TestQueueFairDrain: Drain visits fair-mode sub-queues too, in global
// arrival order, and the queue stays usable.
func TestQueueFairDrain(t *testing.T) {
	for _, policy := range []Policy{FCFS, SWTF} {
		t.Run(policy.String(), func(t *testing.T) {
			q := NewQueue(policy, 2)
			q.SetTenantWeight(1, 1)
			q.SetTenantWeight(2, 2)
			q.SetBusy(1, 100)
			for i := 0; i < 8; i++ {
				q.PushT([]int{i % 2}, i, uint8(1+i%2), 4096)
			}
			if policy == SWTF {
				q.Pop(0) // move some items through the ready/parked indexes
			}
			for q.Len() < 8 {
				q.PushT([]int{1}, 100+q.Len(), 1, 4096)
			}
			var seqs []uint64
			q.Drain(func(seq uint64, elems []int, data any) { seqs = append(seqs, seq) })
			if q.Len() != 0 {
				t.Fatalf("queue holds %d items after Drain", q.Len())
			}
			if len(seqs) != 8 {
				t.Fatalf("Drain visited %d items, want 8", len(seqs))
			}
			for i := 1; i < len(seqs); i++ {
				if seqs[i] <= seqs[i-1] {
					t.Fatalf("Drain out of order: %v", seqs)
				}
			}
			q.PushT([]int{0}, "post", 1, 4096)
			if data, ok := q.Pop(1000); !ok || data != "post" {
				t.Fatal("post-drain push/pop broken")
			}
		})
	}
}

// TestQueuePopAllocFreeFair extends the allocation contract to the
// weighted pick path: a warm fair-share dispatch cycle across several
// tenants allocates nothing.
func TestQueuePopAllocFreeFair(t *testing.T) {
	const elements = 8
	type req struct{ elem int }
	q := NewQueue(SWTF, elements)
	q.SetTenantWeight(1, 1)
	q.SetTenantWeight(2, 4)
	q.SetTenantWeight(3, 2)
	elems := make([][]int, elements)
	reqs := make([]*req, elements)
	for e := 0; e < elements; e++ {
		elems[e] = []int{e}
		reqs[e] = &req{elem: e}
	}
	for i := 0; i < 1024; i++ {
		q.PushT(elems[i%elements], reqs[i%elements], uint8(1+i%3), 4096)
	}
	now := sim.Time(0)
	i := 1024
	allocs := testing.AllocsPerRun(10000, func() {
		data, ok := q.Pop(now)
		if !ok {
			t.Fatal("steady-state pop failed")
		}
		e := data.(*req).elem
		q.SetBusy(e, now+1)
		q.PushT(elems[i%elements], reqs[i%elements], uint8(1+i%3), 4096)
		i++
		now++
	})
	if allocs > 0 {
		t.Fatalf("fair dispatch cycle allocates %.1f times per op, want 0", allocs)
	}
}
