package core

import (
	"fmt"

	"ossd/internal/fault"
	"ossd/internal/sim"
	"ossd/internal/stats"
	"ossd/internal/trace"
)

// FaultDevice is the generic per-op fault injector: it wraps any Device
// whose medium has no native fault hooks (disk, MEMS, RAID) and applies
// a fault.Plan at the submission boundary. The wrapped device is treated
// as one element — element 0 of the plan — with a sequence number that
// advances once per read or write submitted, so injections are a pure
// function of (plan seed, op sequence) and replay identically for a
// given workload regardless of wall clock or completion interleaving.
// Flash devices do not use this wrapper: the SSD injects per-element
// faults inside its dispatch path instead.
type FaultDevice struct {
	inner Device
	plan  *fault.Plan
	driveConfig

	seq      int64 // read/write ops submitted (the fault clock)
	injected int64
	retried  int64
	deadOps  int64
	// Bytes double-counted by retry resubmissions, subtracted from the
	// snapshot so host byte counters keep their meaning.
	retryBytesRead    int64
	retryBytesWritten int64
	// The wrapper keeps its own response histograms: a retried op's true
	// response spans both services plus the pause, which the inner
	// device's histograms record as two separate ordinary ops.
	readResp  stats.Histogram
	writeResp stats.Histogram
	// tenants is the wrapper-eye per-tenant view, kept for the same
	// reason: the inner device's per-tenant accumulators double-count a
	// retried op (two services, two records) and never see dead ops. The
	// wrapper records each host op exactly once, so its set replaces the
	// inner one in the snapshot and per-tenant entries always sum to the
	// reconciled host totals.
	tenants stats.TenantSet
}

// record logs one host-visible completion (a failed op completes with
// zero response, like an errored flash request). serviced is false for
// dead ops, which moved no media bytes: the op still counts for its
// tenant, but contributes zero bytes, matching the top-level counters.
func (f *FaultDevice) record(op trace.Op, resp sim.Time, serviced bool) {
	ms := resp.Millis()
	if op.Kind == trace.Read {
		f.readResp.Add(ms)
	} else {
		f.writeResp.Add(ms)
	}
	size := op.Size
	if !serviced {
		size = 0
	}
	f.tenants.Record(op.Tenant, op.Kind != trace.Read, size, ms)
}

// WrapFault applies a fault plan to an existing device. The plan must
// already be validated; a nil or inert plan returns the device unwrapped.
func WrapFault(d Device, plan *fault.Plan) Device {
	if !plan.Injects() {
		return d
	}
	return &FaultDevice{inner: d, plan: plan}
}

// Submit implements Device. Frees pass through untouched (they are
// mapping metadata, matching the flash path). A dead device fails the
// op immediately — no media time — while a transient fault services the
// op, waits out the retry cost, and services it again, so the retry is
// visible as both latency and extra media traffic.
func (f *FaultDevice) Submit(op trace.Op, onDone func(sim.Time, error)) error {
	if op.Kind == trace.Free {
		return f.inner.Submit(op, onDone)
	}
	seq := f.seq
	f.seq++
	if f.plan.DeadAt(0, seq) {
		f.injected++
		f.deadOps++
		// Complete as an event, not synchronously: callers (closedLoop,
		// driveBounded) resubmit from their completion callbacks.
		f.inner.Engine().At(f.inner.Engine().Now(), func() {
			f.record(op, 0, false)
			if onDone != nil {
				onDone(0, fault.ErrElementDead)
			}
		})
		return nil
	}
	if f.plan.TransientAt(0, seq, op.Kind == trace.Write) {
		f.injected++
		f.retried++
		switch op.Kind {
		case trace.Read:
			f.retryBytesRead += op.Size
		case trace.Write:
			f.retryBytesWritten += op.Size
		}
		eng := f.inner.Engine()
		start := eng.Now()
		return f.inner.Submit(op, func(sim.Time, error) {
			// First service hit the fault: pause for the retry window,
			// then reissue. The caller sees one completion spanning both
			// services plus the pause.
			eng.At(eng.Now()+f.plan.RetryCost(), func() {
				err := f.inner.Submit(op, func(sim.Time, error) {
					f.record(op, eng.Now()-start, true)
					if onDone != nil {
						onDone(eng.Now()-start, nil)
					}
				})
				if err != nil && onDone != nil {
					onDone(eng.Now()-start, err)
				}
			})
		})
	}
	return f.inner.Submit(op, func(resp sim.Time, err error) {
		f.record(op, resp, true)
		if onDone != nil {
			onDone(resp, err)
		}
	})
}

// SubmitBatch implements Device (per-op fallback, so every op passes
// through the injector).
func (f *FaultDevice) SubmitBatch(ops []trace.Op, onDone func(sim.Time, error)) error {
	return submitEach(f, ops, onDone)
}

// Free implements Device.
func (f *FaultDevice) Free(off, size int64) error { return f.inner.Free(off, size) }

// Drive implements Device.
func (f *FaultDevice) Drive(st trace.Stream) error { return drive(f, st, f.MaxPending) }

// Play implements Device.
func (f *FaultDevice) Play(ops []trace.Op) error {
	return drive(f, trace.FromSlice(ops), f.MaxPending)
}

// ClosedLoop implements Device.
func (f *FaultDevice) ClosedLoop(depth int, gen func(int) (trace.Op, bool)) error {
	return closedLoop(f, depth, gen)
}

// Engine implements Device.
func (f *FaultDevice) Engine() *sim.Engine { return f.inner.Engine() }

// LogicalBytes implements Device.
func (f *FaultDevice) LogicalBytes() int64 { return f.inner.LogicalBytes() }

// QueueDepth implements Device.
func (f *FaultDevice) QueueDepth() int { return f.inner.QueueDepth() }

// Metrics implements Device: the inner snapshot plus the injector's
// counters. Dead ops completed as errors without reaching the medium, so
// they are added to Completed and Errors here (matching the flash
// semantics: an errored request still counts as completed). Retries
// doubled the inner device's per-op accounting; the duplicate completion
// and bytes are subtracted so host-facing counters stay host-facing.
func (f *FaultDevice) Metrics() Snapshot {
	s := f.inner.Metrics()
	s.Completed += f.deadOps - f.retried
	s.Errors += f.deadOps
	s.BytesRead -= f.retryBytesRead
	s.BytesWritten -= f.retryBytesWritten
	s.FaultsInjected = f.injected
	s.FaultRetries = f.retried
	// Latency comes from the wrapper's histograms, which see each op's
	// true host-visible response (retry spans included). The per-tenant
	// view is replaced wholesale for the same reason: the inner set
	// counted every retry twice and never saw dead ops, while the
	// wrapper's set records each host op exactly once, so per-tenant
	// entries sum to the reconciled totals above.
	s.Tenants = tenantSnapshots(f.tenants)
	s.fillLatency(f.readResp, f.writeResp)
	return s
}

// ReplayRecovery models the post-power-loss mount: a sequential
// closed-loop read pass over the first frac of the address space — the
// log scan that rebuilds mapping state after an unclean shutdown. frac
// <= 0 defaults to 0.25; frac is clamped to 1. The reads land on the
// device's own metrics, so a truncated-and-recovered run is directly
// comparable to an uninterrupted one.
func ReplayRecovery(d Device, frac float64) error {
	if frac <= 0 {
		frac = 0.25
	}
	if frac > 1 {
		frac = 1
	}
	space := int64(float64(d.LogicalBytes()) * frac)
	if space <= 0 {
		return fmt.Errorf("core: recovery scan window empty")
	}
	const chunk = int64(1 << 20)
	var off int64
	return d.ClosedLoop(1, func(int) (trace.Op, bool) {
		if off >= space {
			return trace.Op{}, false
		}
		size := chunk
		if off+size > space {
			size = space - off
		}
		op := trace.Op{Kind: trace.Read, Offset: off, Size: size}
		off += size
		return op, true
	})
}

// Compile-time interface check.
var _ Device = (*FaultDevice)(nil)
