package ftl

import (
	"fmt"

	"ossd/internal/flash"
	"ossd/internal/sim"
)

// Backend is the interface the device layer drives. Three schemes
// implement it:
//
//   - Element (page-mapped, log-structured): the paper's FTL.
//   - Block (block-mapped): the cheapest mapping table; partial-block
//     writes pay a full-block read-merge-write, the behaviour the paper's
//     §3.4 "read-modify-erase-write cycle" describes.
//   - Hybrid (log-block, FAST-style): block-mapped data blocks plus a
//     small pool of page-mapped log blocks absorbing out-of-place
//     writes, merged on eviction.
//
// The scheme comparison is itself a reproduction target: the three
// designs bracket the random-write behaviours seen across the paper's
// engineering samples.
type Backend interface {
	// WritePage services a host write of one logical page.
	WritePage(lpn int) (sim.Time, error)
	// ReadPage services a host read of one logical page.
	ReadPage(lpn int) (sim.Time, error)
	// Free is the deallocation notification for one logical page.
	Free(lpn int) error
	// Mapped reports whether the logical page has live data.
	Mapped(lpn int) bool
	// LogicalPages is the exported capacity in pages.
	LogicalPages() int
	// PageSize is the page size in bytes.
	PageSize() int
	// FreeFraction reports erased, writable pages / physical pages.
	FreeFraction() float64
	// CanClean reports whether a cleaning pass could reclaim space.
	CanClean() bool
	// CleanOnce performs one cleaning pass.
	CleanOnce() (sim.Time, error)
	// Stats returns the accumulated counters.
	Stats() Stats
	// Wear returns the wear summary.
	Wear() flash.WearStats
	// CheckInvariants validates internal consistency (for tests).
	CheckInvariants() error
}

// Scheme names a mapping scheme.
type Scheme int

const (
	// PageMapped is the log-structured page-mapping FTL (Element).
	PageMapped Scheme = iota
	// BlockMapped is the coarse block-mapping FTL.
	BlockMapped
	// HybridLog is the FAST-style log-block FTL.
	HybridLog
)

func (s Scheme) String() string {
	switch s {
	case BlockMapped:
		return "block-mapped"
	case HybridLog:
		return "hybrid-log"
	default:
		return "page-mapped"
	}
}

// NewBackend builds the requested scheme over the given configuration.
func NewBackend(scheme Scheme, cfg Config) (Backend, error) {
	switch scheme {
	case PageMapped:
		return NewElement(cfg)
	case BlockMapped:
		return NewBlock(cfg)
	case HybridLog:
		return NewHybrid(cfg)
	default:
		return nil, fmt.Errorf("ftl: unknown scheme %d", scheme)
	}
}

// Compile-time interface checks.
var (
	_ Backend = (*Element)(nil)
	_ Backend = (*Block)(nil)
	_ Backend = (*Hybrid)(nil)
)
