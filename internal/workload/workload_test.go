package workload

import (
	"fmt"
	"reflect"
	"testing"

	"ossd/internal/sim"
	"ossd/internal/trace"
)

func TestSyntheticValidation(t *testing.T) {
	bad := []SyntheticConfig{
		{Ops: 0, AddressSpace: 1 << 20, ReqSize: 4096},
		{Ops: 10, AddressSpace: 1024, ReqSize: 4096},
		{Ops: 10, AddressSpace: 1 << 20, ReqSize: 4096, ReadFrac: 1.5},
		{Ops: 10, AddressSpace: 1 << 20, ReqSize: 4096, SeqProb: -0.1},
		{Ops: 10, AddressSpace: 1 << 20, ReqSize: 4096, InterarrivalLo: 10, InterarrivalHi: 5},
	}
	for i, c := range bad {
		if _, err := SyntheticOps(c); err == nil {
			t.Errorf("case %d: accepted %+v", i, c)
		}
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	cfg := SyntheticConfig{Ops: 100, AddressSpace: 1 << 20, ReqSize: 4096, ReadFrac: 0.5, SeqProb: 0.3, Seed: 42}
	a, err := SyntheticOps(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := SyntheticOps(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	cfg.Seed = 43
	c, _ := SyntheticOps(cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestSyntheticShape(t *testing.T) {
	cfg := SyntheticConfig{
		Ops: 5000, AddressSpace: 1 << 24, ReqSize: 4096,
		ReadFrac: 0.66, SeqProb: 0, PriorityFrac: 0.1,
		InterarrivalLo: 0, InterarrivalHi: 100 * sim.Microsecond, Seed: 1,
	}
	ops, err := SyntheticOps(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Summarize(ops)
	if s.Ops != 5000 {
		t.Fatalf("ops = %d", s.Ops)
	}
	rf := float64(s.Reads) / float64(s.Ops)
	if rf < 0.62 || rf > 0.70 {
		t.Fatalf("read fraction = %v, want ~0.66", rf)
	}
	pf := float64(s.PriorityOps) / float64(s.Ops)
	if pf < 0.07 || pf > 0.13 {
		t.Fatalf("priority fraction = %v, want ~0.1", pf)
	}
	for _, o := range ops {
		if o.Size != 4096 || o.Offset%4096 != 0 {
			t.Fatalf("bad op %+v", o)
		}
		if o.End() > cfg.AddressSpace {
			t.Fatalf("op beyond space: %+v", o)
		}
	}
	// Timestamps non-decreasing.
	for i := 1; i < len(ops); i++ {
		if ops[i].At < ops[i-1].At {
			t.Fatal("timestamps decrease")
		}
	}
}

func TestSyntheticSequentiality(t *testing.T) {
	count := func(p float64) int {
		cfg := SyntheticConfig{Ops: 2000, AddressSpace: 1 << 26, ReqSize: 4096, SeqProb: p, Seed: 5}
		ops, err := SyntheticOps(cfg)
		if err != nil {
			t.Fatal(err)
		}
		seq := 0
		for i := 1; i < len(ops); i++ {
			if ops[i].Offset == ops[i-1].End() {
				seq++
			}
		}
		return seq
	}
	lo, hi := count(0.0), count(0.8)
	if hi <= lo*4 {
		t.Fatalf("sequential continuation counts: p=0 %d, p=0.8 %d", lo, hi)
	}
}

func TestSequentialWrites(t *testing.T) {
	ops := SequentialWritesOps(10, 1<<20, 4<<20)
	if len(ops) != 10 {
		t.Fatalf("len = %d", len(ops))
	}
	// Walks sequentially, wrapping at the space boundary.
	if ops[1].Offset != 1<<20 || ops[4].Offset != 0 {
		t.Fatalf("offsets: %v %v", ops[1].Offset, ops[4].Offset)
	}
	for _, o := range ops {
		if o.End() > 4<<20 {
			t.Fatalf("op beyond space: %+v", o)
		}
	}
}

func TestPostmarkTrace(t *testing.T) {
	cfg := PostmarkConfig{
		Transactions:  2000,
		InitialFiles:  50,
		CapacityBytes: 64 << 20,
		Seed:          7,
	}
	ops, err := PostmarkOps(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Summarize(ops)
	if s.Writes == 0 || s.Reads == 0 {
		t.Fatalf("missing op kinds: %+v", s)
	}
	if s.Frees == 0 {
		t.Fatal("postmark trace has no free notifications — deletions missing")
	}
	if s.MaxOffset > cfg.CapacityBytes {
		t.Fatalf("ops beyond capacity: %d", s.MaxOffset)
	}
	// Every op block-aligned.
	for _, o := range ops {
		if o.Offset%4096 != 0 || o.Size%4096 != 0 {
			t.Fatalf("unaligned postmark op: %+v", o)
		}
	}
	// Determinism.
	again, _ := PostmarkOps(cfg)
	if !reflect.DeepEqual(ops, again) {
		t.Fatal("postmark not deterministic")
	}
}

func TestPostmarkFreesMatchWrites(t *testing.T) {
	// Freed ranges must previously have been written (the fs only frees
	// allocated blocks).
	cfg := PostmarkConfig{Transactions: 1000, InitialFiles: 20, CapacityBytes: 32 << 20, Seed: 11}
	ops, err := PostmarkOps(cfg)
	if err != nil {
		t.Fatal(err)
	}
	written := map[int64]bool{}
	for _, o := range ops {
		switch o.Kind {
		case trace.Write:
			for b := o.Offset; b < o.End(); b += 4096 {
				written[b] = true
			}
		case trace.Free:
			for b := o.Offset; b < o.End(); b += 4096 {
				if !written[b] {
					t.Fatalf("free of never-written block %d", b)
				}
			}
		}
	}
}

func TestPostmarkValidation(t *testing.T) {
	if _, err := PostmarkOps(PostmarkConfig{}); err == nil {
		t.Error("accepted empty config")
	}
	if _, err := PostmarkOps(PostmarkConfig{Transactions: 10}); err == nil {
		t.Error("accepted zero capacity")
	}
	if _, err := PostmarkOps(PostmarkConfig{Transactions: 10, CapacityBytes: 1 << 20, FileSizeMin: 4096, FileSizeMax: 512}); err == nil {
		t.Error("accepted max < min")
	}
}

func TestTPCCTrace(t *testing.T) {
	cfg := OLTPConfig{Ops: 3000, CapacityBytes: 256 << 20, Seed: 13, MeanInterarrival: 50 * sim.Microsecond}
	ops, err := TPCCOps(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Summarize(ops)
	if s.Ops < 3000 {
		t.Fatalf("ops = %d, want >= 3000 (data + log)", s.Ops)
	}
	var dataOps, logOps int
	logRegion := cfg.CapacityBytes / 16
	for _, o := range ops {
		if o.Offset < logRegion {
			logOps++
			if o.Kind != trace.Write {
				t.Fatal("log region op is not a write")
			}
		} else {
			dataOps++
			if o.Size != 8192 {
				t.Fatalf("data op size = %d", o.Size)
			}
		}
	}
	if logOps == 0 {
		t.Fatal("no log writes")
	}
	// Zipf locality: hottest data page should recur.
	counts := map[int64]int{}
	for _, o := range ops {
		if o.Offset >= logRegion {
			counts[o.Offset]++
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 5 {
		t.Fatalf("no hot pages (max repeat %d); zipf skew missing", max)
	}
}

func TestTPCCValidation(t *testing.T) {
	if _, err := TPCCOps(OLTPConfig{}); err == nil {
		t.Error("accepted empty config")
	}
	if _, err := TPCCOps(OLTPConfig{Ops: 10, CapacityBytes: 8192}); err == nil {
		t.Error("accepted tiny capacity")
	}
}

func TestExchangeTrace(t *testing.T) {
	ops, err := ExchangeOps(ExchangeConfig{Ops: 2000, CapacityBytes: 128 << 20, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Summarize(ops)
	if s.Reads == 0 || s.Writes == 0 {
		t.Fatal("missing kinds")
	}
	// Must include some sequential 8 KB write bursts (mergeable runs).
	runs := 0
	for i := 1; i < len(ops); i++ {
		if ops[i].Kind == trace.Write && ops[i-1].Kind == trace.Write && ops[i].Offset == ops[i-1].End() {
			runs++
		}
	}
	if runs == 0 {
		t.Fatal("no sequential write runs in exchange trace")
	}
}

func TestExchangeValidation(t *testing.T) {
	if _, err := ExchangeOps(ExchangeConfig{}); err == nil {
		t.Error("accepted empty config")
	}
	if _, err := ExchangeOps(ExchangeConfig{Ops: 10, CapacityBytes: 1024}); err == nil {
		t.Error("accepted tiny capacity")
	}
}

func TestIOzoneTrace(t *testing.T) {
	cfg := IOzoneConfig{FileBytes: 4 << 20, RecordBytes: 128 << 10, Seed: 19}
	ops, err := IOzoneOps(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Four phases: write, rewrite, read, reread.
	recs := int((cfg.FileBytes + cfg.RecordBytes - 1) / cfg.RecordBytes)
	if len(ops) != 4*recs {
		t.Fatalf("ops = %d, want %d", len(ops), 4*recs)
	}
	s := trace.Summarize(ops)
	if s.Writes != 2*recs || s.Reads != 2*recs {
		t.Fatalf("phase mix: %+v", s)
	}
	// File starts unaligned (allocator placement).
	if ops[0].Offset%(32<<10) == 0 {
		t.Fatal("iozone file unexpectedly stripe-aligned; the experiment depends on misalignment")
	}
	// Records within a phase are contiguous.
	if ops[1].Offset != ops[0].End() {
		t.Fatal("records not contiguous")
	}
}

func TestIOzoneValidation(t *testing.T) {
	if _, err := IOzoneOps(IOzoneConfig{}); err == nil {
		t.Error("accepted empty config")
	}
}

func TestMacroGeneratorsDeterministic(t *testing.T) {
	// Identical seeds must reproduce identical traces for every macro
	// generator — the property every experiment depends on.
	p1, _ := PostmarkOps(PostmarkConfig{Transactions: 500, InitialFiles: 20, CapacityBytes: 16 << 20, Seed: 5})
	p2, _ := PostmarkOps(PostmarkConfig{Transactions: 500, InitialFiles: 20, CapacityBytes: 16 << 20, Seed: 5})
	if !reflect.DeepEqual(p1, p2) {
		t.Error("postmark not deterministic")
	}
	t1, _ := TPCCOps(OLTPConfig{Ops: 500, CapacityBytes: 64 << 20, Seed: 5})
	t2, _ := TPCCOps(OLTPConfig{Ops: 500, CapacityBytes: 64 << 20, Seed: 5})
	if !reflect.DeepEqual(t1, t2) {
		t.Error("tpcc not deterministic")
	}
	e1, _ := ExchangeOps(ExchangeConfig{Ops: 500, CapacityBytes: 64 << 20, Seed: 5})
	e2, _ := ExchangeOps(ExchangeConfig{Ops: 500, CapacityBytes: 64 << 20, Seed: 5})
	if !reflect.DeepEqual(e1, e2) {
		t.Error("exchange not deterministic")
	}
	i1, _ := IOzoneOps(IOzoneConfig{FileBytes: 1 << 20, Seed: 5})
	i2, _ := IOzoneOps(IOzoneConfig{FileBytes: 1 << 20, Seed: 5})
	if !reflect.DeepEqual(i1, i2) {
		t.Error("iozone not deterministic")
	}
}

func TestPostmarkMetadataStream(t *testing.T) {
	with, err := PostmarkOps(PostmarkConfig{Transactions: 500, InitialFiles: 20, CapacityBytes: 16 << 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	without, err := PostmarkOps(PostmarkConfig{Transactions: 500, InitialFiles: 20, CapacityBytes: 16 << 20, Seed: 5, NoMetadata: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(with) <= len(without) {
		t.Fatalf("metadata stream missing: %d vs %d ops", len(with), len(without))
	}
	// Metadata writes land in the reserved tail region.
	metaBase := int64(16<<20) - int64(16<<20)/32
	sawMeta := false
	for _, o := range with {
		if o.Kind == trace.Write && o.Offset >= metaBase {
			sawMeta = true
			break
		}
	}
	if !sawMeta {
		t.Fatal("no metadata-region writes")
	}
	for _, o := range without {
		if o.Offset >= int64(16<<20) {
			t.Fatal("NoMetadata trace exceeded capacity")
		}
	}
}

// The name->constructor registry must cover every generator and produce
// exactly what the direct constructors produce for equivalent configs.
func TestGeneratorRegistry(t *testing.T) {
	want := []string{"exchange", "iozone", "postmark", "seqwrites", "synthetic", "tpcc"}
	if got := fmt.Sprint(Generators()); got != fmt.Sprint(want) {
		t.Fatalf("Generators() = %v, want %v", Generators(), want)
	}

	if _, err := NewStream("nope", GenParams{}); err == nil {
		t.Fatal("unknown generator accepted")
	}

	// Registry synthetic == direct Synthetic with the uniform [0, 2*mean]
	// inter-arrival tracegen always used.
	direct, err := Synthetic(SyntheticConfig{
		Ops: 500, AddressSpace: 1 << 22, ReqSize: 4096, ReadFrac: 0.5,
		InterarrivalLo: 0, InterarrivalHi: 200 * sim.Microsecond, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	viaName, err := NewStream("synthetic", GenParams{
		Ops: 500, CapacityBytes: 1 << 22, ReadFrac: 0.5,
		MeanInterarrivalUs: 100, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trace.Collect(direct), trace.Collect(viaName)) {
		t.Fatal("registry synthetic diverged from direct constructor")
	}

	// Registry postmark == direct Postmark.
	dpm, err := Postmark(PostmarkConfig{
		Transactions: 400, CapacityBytes: 16 << 20,
		MeanInterarrival: 100 * sim.Microsecond, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	npm, err := NewStream("postmark", GenParams{
		Transactions: 400, CapacityBytes: 16 << 20,
		MeanInterarrivalUs: 100, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trace.Collect(dpm), trace.Collect(npm)) {
		t.Fatal("registry postmark diverged from direct constructor")
	}
}
