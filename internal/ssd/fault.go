package ssd

import (
	"ossd/internal/fault"
	"ossd/internal/sim"
	"ossd/internal/trace"
)

// faultState is the device's per-element fault clock: seq[e] counts the
// read/write dispatches that touched element e, and the plan's keyed
// hash over (seed, element, seq) decides every injection. The arrays are
// shared between a sharded gang and its sub-devices — each element is
// touched only by its owning shard, and a shard's dispatch order for its
// own elements is exactly the single-engine order, so the sequence
// numbers (and therefore the injections) are shard-invariant.
type faultState struct {
	plan     *fault.Plan
	seq      []int64
	injected []int64
	retried  []int64
}

func newFaultState(plan *fault.Plan, elements int) *faultState {
	return &faultState{
		plan:     plan,
		seq:      make([]int64, elements),
		injected: make([]int64, elements),
		retried:  make([]int64, elements),
	}
}

// injectFaults advances the fault clocks of the elements a dispatched
// request touches and applies the plan: any dead element fails the whole
// request with no media work; a transient fault charges the element an
// in-device retry. Reports whether the request failed.
func (d *Device) injectFaults(req *Request, durs []sim.Time) bool {
	f := d.flt
	elems := d.elemsFor(req.Op)
	failed := false
	for _, e := range elems {
		if f.plan.DeadAt(e, f.seq[e]) {
			failed = true
			break
		}
	}
	write := req.Op.Kind == trace.Write
	for _, e := range elems {
		seq := f.seq[e]
		f.seq[e]++
		if failed {
			if f.plan.DeadAt(e, seq) {
				f.injected[e]++
			}
			continue
		}
		if f.plan.TransientAt(e, seq, write) {
			f.injected[e]++
			f.retried[e]++
			durs[e] += f.plan.RetryCost()
		}
	}
	if failed {
		req.Err = fault.ErrElementDead
	}
	return failed
}

// faultDead reports whether element e is past its death point; the
// cleaning hooks skip dead elements (their media is gone).
func (d *Device) faultDead(e int) bool {
	return d.flt != nil && d.flt.plan.DeadAt(e, d.flt.seq[e])
}
