package core

import (
	"ossd/internal/hdd"
	"ossd/internal/mems"
	"ossd/internal/raid"
	"ossd/internal/sim"
	"ossd/internal/trace"
)

// RAID wraps the RAID-5 array model as a core.Device (Table 1's RAID
// column).
type RAID struct {
	Raw *raid.Array
	driveConfig
	// frees counts completed free notifications (the array has no TRIM;
	// the wrapper keeps the Snapshot field uniform).
	frees int64
}

// NewRAID builds an array on a fresh engine. Prefer Open or Build; this
// remains for callers holding a raw raid.Config.
func NewRAID(cfg raid.Config) (*RAID, error) {
	a, err := raid.New(sim.NewEngine(), cfg)
	if err != nil {
		return nil, err
	}
	return &RAID{Raw: a}, nil
}

// Submit implements Device.
func (r *RAID) Submit(op trace.Op, onDone func(sim.Time, error)) error {
	var cb func(*raid.Request)
	if isFree := op.Kind == trace.Free; isFree || onDone != nil {
		cb = func(q *raid.Request) {
			if isFree {
				r.frees++
			}
			if onDone != nil {
				onDone(q.Response(), nil)
			}
		}
	}
	return r.Raw.Submit(op, cb)
}

// SubmitBatch implements Device (per-op fallback).
func (r *RAID) SubmitBatch(ops []trace.Op, onDone func(sim.Time, error)) error {
	return submitEach(r, ops, onDone)
}

// Free implements Device: the array has no TRIM; the request completes as
// a metadata no-op (and is counted in Snapshot.Frees).
func (r *RAID) Free(off, size int64) error { return r.Submit(freeOp(off, size), nil) }

// Drive implements Device.
func (r *RAID) Drive(st trace.Stream) error { return drive(r, st, r.MaxPending) }

// Play implements Device.
func (r *RAID) Play(ops []trace.Op) error { return drive(r, trace.FromSlice(ops), r.MaxPending) }

// ClosedLoop implements Device.
func (r *RAID) ClosedLoop(depth int, gen func(int) (trace.Op, bool)) error {
	return closedLoop(r, depth, gen)
}

// Engine implements Device.
func (r *RAID) Engine() *sim.Engine { return r.Raw.Engine() }

// LogicalBytes implements Device.
func (r *RAID) LogicalBytes() int64 { return r.Raw.LogicalBytes() }

// QueueDepth implements Device.
func (r *RAID) QueueDepth() int { return r.Raw.QueueDepth() }

// Metrics implements Device.
func (r *RAID) Metrics() Snapshot {
	m := r.Raw.Metrics()
	s := Snapshot{
		Completed:    m.Completed,
		BytesRead:    m.BytesRead,
		BytesWritten: m.BytesWritten,
		Frees:        r.frees,
		Tenants:      tenantSnapshots(m.Tenants),
	}
	s.fillLatency(m.ReadResp, m.WriteResp)
	return s
}

// MEMS wraps the MEMS-storage model as a core.Device (Table 1's MEMS
// column).
type MEMS struct {
	Raw *mems.Device
	driveConfig
	// frees counts completed free notifications (MEMS media writes in
	// place; the wrapper keeps the Snapshot field uniform).
	frees int64
}

// NewMEMS builds a device on a fresh engine. Prefer Open or Build; this
// remains for callers holding a raw mems.Config.
func NewMEMS(cfg mems.Config) (*MEMS, error) {
	d, err := mems.New(sim.NewEngine(), cfg)
	if err != nil {
		return nil, err
	}
	return &MEMS{Raw: d}, nil
}

// Submit implements Device.
func (m *MEMS) Submit(op trace.Op, onDone func(sim.Time, error)) error {
	var cb func(*mems.Request)
	if isFree := op.Kind == trace.Free; isFree || onDone != nil {
		cb = func(q *mems.Request) {
			if isFree {
				m.frees++
			}
			if onDone != nil {
				onDone(q.Response(), nil)
			}
		}
	}
	return m.Raw.Submit(op, cb)
}

// SubmitBatch implements Device (per-op fallback).
func (m *MEMS) SubmitBatch(ops []trace.Op, onDone func(sim.Time, error)) error {
	return submitEach(m, ops, onDone)
}

// Free implements Device: MEMS media writes in place; the request
// completes as a metadata no-op (and is counted in Snapshot.Frees).
func (m *MEMS) Free(off, size int64) error { return m.Submit(freeOp(off, size), nil) }

// Drive implements Device.
func (m *MEMS) Drive(st trace.Stream) error { return drive(m, st, m.MaxPending) }

// Play implements Device.
func (m *MEMS) Play(ops []trace.Op) error { return drive(m, trace.FromSlice(ops), m.MaxPending) }

// ClosedLoop implements Device.
func (m *MEMS) ClosedLoop(depth int, gen func(int) (trace.Op, bool)) error {
	return closedLoop(m, depth, gen)
}

// Engine implements Device.
func (m *MEMS) Engine() *sim.Engine { return m.Raw.Engine() }

// LogicalBytes implements Device.
func (m *MEMS) LogicalBytes() int64 { return m.Raw.LogicalBytes() }

// QueueDepth implements Device.
func (m *MEMS) QueueDepth() int { return m.Raw.QueueDepth() }

// Metrics implements Device.
func (m *MEMS) Metrics() Snapshot {
	mm := m.Raw.Metrics()
	s := Snapshot{
		Completed:    mm.Completed,
		BytesRead:    mm.BytesRead,
		BytesWritten: mm.BytesWritten,
		Frees:        m.frees,
		Tenants:      tenantSnapshots(mm.Tenants),
	}
	s.fillLatency(mm.ReadResp, mm.WriteResp)
	return s
}

// DefaultRAID is the Table 1 array: five Barracuda-class spindles,
// 64 KiB stripe units.
func DefaultRAID() raid.Config {
	return raid.Config{Disks: 5, Disk: hdd.Barracuda7200(), StripeUnitBytes: 64 << 10}
}

// DefaultMEMS is the Table 1 MEMS device (Schlosser & Ganger's G2).
func DefaultMEMS() mems.Config { return mems.G2() }

// Compile-time interface checks.
var (
	_ Device = (*RAID)(nil)
	_ Device = (*MEMS)(nil)
)
