package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"ossd/internal/sim"
)

func TestKindString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" || Free.String() != "F" || Kind(9).String() != "?" {
		t.Fatal("kind strings wrong")
	}
}

func TestOpValidate(t *testing.T) {
	good := Op{At: 5, Kind: Write, Offset: 0, Size: 4096}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Op{
		{Kind: Write, Offset: -1, Size: 10},
		{Kind: Write, Offset: 0, Size: 0},
		{At: -1, Kind: Write, Offset: 0, Size: 1},
		{Kind: Kind(9), Offset: 0, Size: 1},
	}
	for i, o := range bad {
		if o.Validate() == nil {
			t.Errorf("case %d: accepted %+v", i, o)
		}
	}
}

func TestSummarize(t *testing.T) {
	ops := []Op{
		{At: 10, Kind: Read, Offset: 0, Size: 100},
		{At: 20, Kind: Write, Offset: 100, Size: 200, Priority: true},
		{At: 5, Kind: Free, Offset: 1000, Size: 50},
	}
	s := Summarize(ops)
	if s.Ops != 3 || s.Reads != 1 || s.Writes != 1 || s.Frees != 1 {
		t.Fatalf("counts: %+v", s)
	}
	if s.ReadBytes != 100 || s.WriteBytes != 200 || s.FreedBytes != 50 {
		t.Fatalf("bytes: %+v", s)
	}
	if s.Duration != 20 || s.MaxOffset != 1050 || s.PriorityOps != 1 {
		t.Fatalf("derived: %+v", s)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ops := []Op{
		{At: 0, Kind: Write, Offset: 4096, Size: 8192},
		{At: 1500, Kind: Read, Offset: 0, Size: 512, Priority: true},
		{At: 2000, Kind: Free, Offset: 12288, Size: 4096},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ops, got) {
		t.Fatalf("round trip mismatch:\n%v\n%v", ops, got)
	}
}

func TestDecodeCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n100 W 0 4096\n"
	got, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Kind != Write {
		t.Fatalf("got %v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"1 W 0",           // too few fields
		"1 W 0 1 P extra", // too many
		"x W 0 4096",      // bad time
		"1 Q 0 4096",      // bad kind
		"1 W y 4096",      // bad offset
		"1 W 0 z",         // bad size
		"1 W 0 4096 X",    // bad flag
		"1 W 0 0",         // zero size fails validation
	}
	for _, c := range cases {
		if _, err := Decode(strings.NewReader(c)); err == nil {
			t.Errorf("decoded invalid line %q", c)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, []Op{{Kind: Write, Offset: 0, Size: 0}}); err == nil {
		t.Fatal("encoded invalid op")
	}
}

// Property: encode/decode is the identity on valid ops.
func TestCodecProperty(t *testing.T) {
	prop := func(raw []struct {
		At   uint32
		Kind uint8
		Off  uint16
		Sz   uint16
		Pri  bool
	}) bool {
		var ops []Op
		for _, r := range raw {
			ops = append(ops, Op{
				At:       sim.Time(r.At),
				Kind:     Kind(r.Kind % 3),
				Offset:   int64(r.Off),
				Size:     int64(r.Sz) + 1,
				Priority: r.Pri,
			})
		}
		var buf bytes.Buffer
		if err := Encode(&buf, ops); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		if len(ops) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(ops, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Fatal(err)
	}
}

// ---- Aligner tests ----

const stripe = 32 * 1024

func alignOps(t *testing.T, ops []Op) []Op {
	t.Helper()
	out, err := Align(ops, stripe)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAlignSingleAlignedWrite(t *testing.T) {
	in := []Op{{At: 1, Kind: Write, Offset: 0, Size: stripe}}
	out := alignOps(t, in)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("aligned write modified: %v", out)
	}
}

func TestAlignMergesSequentialRun(t *testing.T) {
	// Eight contiguous 4 KB writes covering exactly one stripe must merge
	// into one aligned stripe write.
	var in []Op
	for i := int64(0); i < 8; i++ {
		in = append(in, Op{At: sim.Time(i), Kind: Write, Offset: i * 4096, Size: 4096})
	}
	out := alignOps(t, in)
	if len(out) != 1 {
		t.Fatalf("got %d ops, want 1: %v", len(out), out)
	}
	if out[0].Offset != 0 || out[0].Size != stripe {
		t.Fatalf("merged op = %+v", out[0])
	}
	if out[0].At != 7 {
		t.Fatalf("merged op time = %v, want last-contributor 7", out[0].At)
	}
}

func TestAlignSplitsMisalignedRun(t *testing.T) {
	// A 64 KB run starting 4 KB into a stripe: head partial, one full
	// stripe, tail partial.
	in := []Op{{At: 9, Kind: Write, Offset: 4096, Size: 2 * stripe}}
	out := alignOps(t, in)
	if len(out) != 3 {
		t.Fatalf("got %d ops: %v", len(out), out)
	}
	if out[0].Offset != 4096 || out[0].Size != stripe-4096 {
		t.Fatalf("head = %+v", out[0])
	}
	if out[1].Offset != stripe || out[1].Size != stripe {
		t.Fatalf("body = %+v", out[1])
	}
	if out[2].Offset != 2*stripe || out[2].Size != 4096 {
		t.Fatalf("tail = %+v", out[2])
	}
}

func TestAlignRandomWritesPassThrough(t *testing.T) {
	// Discontiguous small writes cannot merge; each flushes the previous.
	in := []Op{
		{At: 1, Kind: Write, Offset: 0, Size: 4096},
		{At: 2, Kind: Write, Offset: 10 * stripe, Size: 4096},
		{At: 3, Kind: Write, Offset: 5 * stripe, Size: 4096},
	}
	out := alignOps(t, in)
	if len(out) != 3 {
		t.Fatalf("got %d ops: %v", len(out), out)
	}
	for i := range in {
		if out[i].Offset != in[i].Offset || out[i].Size != in[i].Size {
			t.Fatalf("op %d changed: %+v", i, out[i])
		}
	}
}

func TestAlignReadFlushesOverlap(t *testing.T) {
	in := []Op{
		{At: 1, Kind: Write, Offset: 0, Size: 4096},
		{At: 2, Kind: Read, Offset: 0, Size: 4096},
	}
	out := alignOps(t, in)
	if len(out) != 2 || out[0].Kind != Write || out[1].Kind != Read {
		t.Fatalf("read ordering broken: %v", out)
	}
}

func TestAlignReadNoOverlapDoesNotFlush(t *testing.T) {
	in := []Op{
		{At: 1, Kind: Write, Offset: 0, Size: 4096},
		{At: 2, Kind: Read, Offset: 10 * stripe, Size: 4096},
		{At: 3, Kind: Write, Offset: 4096, Size: 4096},
	}
	out := alignOps(t, in)
	// Read passes first; the two writes merge into one op at Finish.
	if len(out) != 2 {
		t.Fatalf("got %d ops: %v", len(out), out)
	}
	if out[0].Kind != Read {
		t.Fatalf("first op = %+v, want the read", out[0])
	}
	if out[1].Kind != Write || out[1].Size != 8192 {
		t.Fatalf("merged write = %+v", out[1])
	}
}

func TestAlignOverlappingRewrite(t *testing.T) {
	in := []Op{
		{At: 1, Kind: Write, Offset: 0, Size: 8192},
		{At: 2, Kind: Write, Offset: 4096, Size: 8192}, // overlaps buffered
	}
	out := alignOps(t, in)
	if len(out) != 2 {
		t.Fatalf("got %d ops: %v", len(out), out)
	}
	// Both issued in order; no merging of overlapping data.
	if out[0].Offset != 0 || out[0].Size != 8192 || out[1].Offset != 4096 {
		t.Fatalf("rewrite handling: %v", out)
	}
}

func TestAlignPriorityBoundary(t *testing.T) {
	// A priority write must not merge into a non-priority run.
	in := []Op{
		{At: 1, Kind: Write, Offset: 0, Size: 4096},
		{At: 2, Kind: Write, Offset: 4096, Size: 4096, Priority: true},
	}
	out := alignOps(t, in)
	if len(out) != 2 {
		t.Fatalf("priority write merged: %v", out)
	}
	if out[0].Priority || !out[1].Priority {
		t.Fatalf("priority flags lost: %v", out)
	}
}

func TestAlignRejectsBadStripe(t *testing.T) {
	if _, err := Align(nil, 0); err == nil {
		t.Fatal("accepted zero stripe")
	}
}

// Property: alignment preserves the exact set of written bytes (same
// coverage, in order within overlapping regions), never emits a write
// crossing a stripe boundary, and leaves reads/frees untouched.
func TestAlignCoverageProperty(t *testing.T) {
	const space = 16 * 4096
	prop := func(raw []struct {
		Off  uint16
		Sz   uint8
		Kind uint8
	}) bool {
		var in []Op
		at := sim.Time(0)
		for _, r := range raw {
			at++
			in = append(in, Op{
				At:     at,
				Kind:   Kind(r.Kind % 3),
				Offset: (int64(r.Off) % space) / 512 * 512,
				Size:   (int64(r.Sz)%16 + 1) * 512,
			})
		}
		const st = 8192
		out, err := Align(in, st)
		if err != nil {
			return false
		}
		// Merging and splitting must conserve the written byte ranges: the
		// set of covered 512-byte sectors is identical and the total
		// volume of write traffic is unchanged (merging only coalesces
		// contiguous, non-overlapping runs).
		coverage := func(ops []Op) (map[int64]bool, int64) {
			cov := make(map[int64]bool)
			var bytes int64
			for _, o := range ops {
				if o.Kind != Write {
					continue
				}
				bytes += o.Size
				for b := o.Offset; b < o.End(); b += 512 {
					cov[b] = true
				}
			}
			return cov, bytes
		}
		inCov, inBytes := coverage(in)
		outCov, outBytes := coverage(out)
		if inBytes != outBytes || len(inCov) != len(outCov) {
			return false
		}
		for k := range inCov {
			if !outCov[k] {
				return false
			}
		}
		// No emitted write may cross a stripe boundary.
		for _, o := range out {
			if o.Kind == Write && o.Offset/st != (o.End()-1)/st {
				return false
			}
		}
		// Reads and frees survive unchanged and in order.
		var inRF, outRF []Op
		for _, o := range in {
			if o.Kind != Write {
				inRF = append(inRF, o)
			}
		}
		for _, o := range out {
			if o.Kind != Write {
				outRF = append(outRF, o)
			}
		}
		return reflect.DeepEqual(inRF, outRF)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(19))}); err != nil {
		t.Fatal(err)
	}
}
