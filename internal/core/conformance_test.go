package core

import (
	"strings"
	"testing"

	"ossd/internal/flash"
	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/ssd"
	"ossd/internal/trace"
)

// smallSSDConfig is a tiny flash geometry shared by the SSD and OSD
// conformance devices.
func smallSSDConfig() ssd.Config {
	return ssd.Config{
		Elements:      2,
		Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 8, BlocksPerPackage: 32},
		Overprovision: 0.15,
		Layout:        ssd.Interleaved,
		Scheduler:     sched.SWTF,
		Informed:      true,
	}
}

// TestDeviceConformance runs the same read/write/free/replay/closed-loop
// checks against every Device implementation. Any new medium added to
// the facade must join this table.
func TestDeviceConformance(t *testing.T) {
	devices := []struct {
		name string
		mk   func() (Device, error)
	}{
		{"SSD", func() (Device, error) { return NewSSD(smallSSDConfig()) }},
		{"SSD-sharded", func() (Device, error) {
			s, err := NewSSD(smallSSDConfig())
			if err != nil {
				return nil, err
			}
			if err := s.Raw.EnableSharding(2); err != nil {
				return nil, err
			}
			return s, nil
		}},
		{"HDD", func() (Device, error) {
			p, err := ProfileByName("HDD")
			if err != nil {
				return nil, err
			}
			return p.NewDevice()
		}},
		{"MEMS", func() (Device, error) { return NewMEMS(DefaultMEMS()) }},
		{"RAID", func() (Device, error) { return NewRAID(DefaultRAID()) }},
		{"OSD", func() (Device, error) { return NewOSD(smallSSDConfig()) }},
	}
	for _, tc := range devices {
		t.Run(tc.name, func(t *testing.T) {
			// Submit: a write then a read complete with positive response
			// times and no error.
			d, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			if d.LogicalBytes() <= 0 {
				t.Fatal("no capacity")
			}
			var wResp, rResp sim.Time
			var wErr, rErr error
			if err := d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 8192},
				func(r sim.Time, err error) { wResp, wErr = r, err }); err != nil {
				t.Fatal(err)
			}
			d.Engine().Run()
			if wErr != nil || wResp <= 0 {
				t.Fatalf("write: resp %v err %v", wResp, wErr)
			}
			if err := d.Submit(trace.Op{Kind: trace.Read, Offset: 0, Size: 8192},
				func(r sim.Time, err error) { rResp, rErr = r, err }); err != nil {
				t.Fatal(err)
			}
			d.Engine().Run()
			if rErr != nil || rResp <= 0 {
				t.Fatalf("read: resp %v err %v", rResp, rErr)
			}

			// Metrics: the snapshot reflects both transfers.
			m := d.Metrics()
			if m.Completed < 2 {
				t.Fatalf("completed %d, want >= 2", m.Completed)
			}
			if m.BytesWritten != 8192 || m.BytesRead != 8192 {
				t.Fatalf("bytes: read %d written %d, want 8192 each", m.BytesRead, m.BytesWritten)
			}
			if m.MeanWriteMs <= 0 || m.MeanReadMs <= 0 {
				t.Fatalf("means: read %v write %v", m.MeanReadMs, m.MeanWriteMs)
			}
			if m.Errors != 0 {
				t.Fatalf("errors: %d", m.Errors)
			}

			// Free: every device accepts the notification, completes it,
			// and counts it — Snapshot.Frees is uniform across media,
			// whether or not the substrate acts on the free.
			before := d.Metrics().Completed
			if err := d.Free(0, 4096); err != nil {
				t.Fatal(err)
			}
			d.Engine().Run()
			if d.Metrics().Completed <= before {
				t.Fatal("free never completed")
			}
			if got := d.Metrics().Frees; got != 1 {
				t.Fatalf("frees = %d, want 1 (uniform counting)", got)
			}

			// Play: a timestamped trace (including a free) drains fully.
			d2, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			ops := []trace.Op{
				{At: 0, Kind: trace.Write, Offset: 0, Size: 4096},
				{At: 1 * sim.Millisecond, Kind: trace.Write, Offset: 4096, Size: 4096},
				{At: 2 * sim.Millisecond, Kind: trace.Read, Offset: 0, Size: 4096},
				{At: 3 * sim.Millisecond, Kind: trace.Free, Offset: 4096, Size: 4096},
			}
			if err := d2.Play(ops); err != nil {
				t.Fatal(err)
			}
			if m := d2.Metrics(); m.BytesWritten != 8192 || m.BytesRead != 4096 {
				t.Fatalf("play moved read %d written %d", m.BytesRead, m.BytesWritten)
			}
			if d2.Engine().Pending() != 0 {
				t.Fatalf("play left %d events pending", d2.Engine().Pending())
			}

			// Drive: the same trace as a stream produces the same motion,
			// pulled one op at a time.
			d2b, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			if err := d2b.Drive(trace.FromSlice(ops)); err != nil {
				t.Fatal(err)
			}
			if m := d2b.Metrics(); m.BytesWritten != 8192 || m.BytesRead != 4096 || m.Frees != 1 {
				t.Fatalf("drive moved read %d written %d frees %d", m.BytesRead, m.BytesWritten, m.Frees)
			}
			if d2b.Engine().Pending() != 0 {
				t.Fatalf("drive left %d events pending", d2b.Engine().Pending())
			}

			// SubmitBatch: a same-instant run moves the same bytes as
			// per-op submission and fires the shared callback per op.
			d2d, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			fired := 0
			batch := []trace.Op{
				{Kind: trace.Write, Offset: 0, Size: 4096},
				{Kind: trace.Write, Offset: 4096, Size: 4096},
				{Kind: trace.Read, Offset: 0, Size: 4096},
			}
			if err := d2d.SubmitBatch(batch, func(r sim.Time, err error) {
				if err == nil && r > 0 {
					fired++
				}
			}); err != nil {
				t.Fatal(err)
			}
			d2d.Engine().Run()
			if fired != len(batch) {
				t.Fatalf("batch callbacks fired %d, want %d", fired, len(batch))
			}
			if m := d2d.Metrics(); m.BytesWritten != 8192 || m.BytesRead != 4096 {
				t.Fatalf("batch moved read %d written %d", m.BytesRead, m.BytesWritten)
			}

			// Drive surfaces a decoder error from the stream.
			d2c, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			if err := d2c.Drive(trace.NewDecoder(strings.NewReader("0 W 0 4096\nbroken\n"))); err == nil {
				t.Fatal("drive swallowed stream error")
			}

			// ClosedLoop: exactly n generated ops complete.
			d3, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			const n = 16
			i := 0
			if err := d3.ClosedLoop(4, func(int) (trace.Op, bool) {
				if i >= n {
					return trace.Op{}, false
				}
				op := trace.Op{Kind: trace.Write, Offset: int64(i) * 4096, Size: 4096}
				i++
				return op, true
			}); err != nil {
				t.Fatal(err)
			}
			if m := d3.Metrics(); m.BytesWritten != n*4096 {
				t.Fatalf("closed loop wrote %d, want %d", m.BytesWritten, n*4096)
			}

			// Out-of-range submissions are rejected up front.
			if err := d.Submit(trace.Op{Kind: trace.Read, Offset: d.LogicalBytes(), Size: 4096}, nil); err == nil {
				t.Fatal("accepted read beyond capacity")
			}
		})
	}
}

// TestOSDDeviceObjectPath checks the OSD-specific plumbing: block ops
// land in the store's volume object and frees reach the informed FTL.
func TestOSDDeviceObjectPath(t *testing.T) {
	d, err := NewOSD(smallSSDConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 32 << 10}, nil); err != nil {
		t.Fatal(err)
	}
	d.Engine().Run()
	st := d.Store.Stats()
	if st.BytesWritten != 32<<10 {
		t.Fatalf("store saw %d bytes, want %d", st.BytesWritten, 32<<10)
	}
	info, err := d.Store.Stat(d.Volume())
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != d.LogicalBytes() {
		t.Fatalf("volume spans %d, want %d", info.Size, d.LogicalBytes())
	}
	if err := d.Free(0, 16<<10); err != nil {
		t.Fatal(err)
	}
	d.Engine().Run()
	if m := d.Metrics(); m.Frees != 1 {
		t.Fatalf("frees %d, want 1", m.Frees)
	}
}
