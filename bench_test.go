// Package ossd's root benchmarks regenerate each table and figure of the
// paper at reduced scale, one benchmark per artifact, and report the
// headline number of each result as a custom metric. Run everything with:
//
//	go test -bench=. -benchmem
//
// cmd/repro produces the full-size report; these benches exist so the
// whole evaluation is reachable through the standard Go tooling and so
// regressions in the reproduced shapes show up as metric drift.
package ossd

import (
	"fmt"
	"testing"

	"ossd/internal/core"
	"ossd/internal/experiments"
	"ossd/internal/flash"
	"ossd/internal/ftl"
	"ossd/internal/runner"
	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/ssd"
	"ossd/internal/trace"
	"ossd/internal/workload"
)

// BenchmarkTable1Contract probes the six unwritten-contract terms.
func BenchmarkTable1Contract(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Contract(1, 0)
		if err != nil {
			b.Fatal(err)
		}
		violated := 0
		for _, row := range r.Rows {
			if !row.SSD {
				violated++
			}
		}
		b.ReportMetric(float64(violated), "ssd-terms-violated")
	}
}

// BenchmarkTable2SeqRand regenerates the bandwidth table.
func BenchmarkTable2SeqRand(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(experiments.Table2Options{
			BytesPerTest:     8 << 20,
			RandBytesPerTest: 2 << 20,
			Seed:             1,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Device == "HDD" {
				b.ReportMetric(row.ReadRatio, "hdd-read-ratio")
			}
			if row.Device == "S4slc_sim" {
				b.ReportMetric(row.ReadRatio, "s4-read-ratio")
			}
		}
	}
}

// BenchmarkSWTFvsFCFS regenerates the §3.2 scheduling comparison.
func BenchmarkSWTFvsFCFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.SWTF(experiments.SWTFOptions{Ops: 15000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ImprovementPct, "improvement-%")
	}
}

// BenchmarkFigure2WriteAmplification regenerates the saw-tooth sweep.
func BenchmarkFigure2WriteAmplification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure2(experiments.Figure2Options{
			MaxBytes: 3 << 20, StepBytes: 256 << 10, BytesPerPoint: 8 << 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PeakMBps, "peak-MBps")
		b.ReportMetric(r.TroughMBps, "trough-MBps")
	}
}

// BenchmarkTable3Alignment regenerates the alignment-vs-sequentiality table.
func BenchmarkTable3Alignment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3(experiments.Table3Options{Ops: 6000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		last := len(r.Aligned) - 1
		imp := (r.Unaligned[last] - r.Aligned[last]) / r.Unaligned[last] * 100
		b.ReportMetric(imp, "p0.8-improvement-%")
	}
}

// BenchmarkTable4Macro regenerates the macro-benchmark table.
func BenchmarkTable4Macro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4(experiments.Table4Options{Scale: 0.4, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		for j, w := range r.Workloads {
			if w == "IOzone" {
				b.ReportMetric(r.ImprovementPct[j], "iozone-improvement-%")
			}
		}
	}
}

// BenchmarkTable5InformedCleaning regenerates the informed-cleaning table.
func BenchmarkTable5InformedCleaning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table5(experiments.Table5Options{Transactions: []int{4000}, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RelPagesMoved[0], "rel-pages-moved")
		b.ReportMetric(r.RelCleanTime[0], "rel-clean-time")
	}
}

// BenchmarkFigure3PriorityCleaning regenerates the priority-aware sweep
// (and Table 6, which is derived from the same run).
func BenchmarkFigure3PriorityCleaning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure3(experiments.Figure3Options{
			Ops: 60000, Seed: 1, WritePcts: []int{50, 80},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ImprovementPct[0], "fg-improvement-50w-%")
	}
}

// ---- ablation benches: the design choices DESIGN.md calls out ----

// benchDevice builds a small interleaved device for ablations.
func benchDevice(b *testing.B, mutate func(*ssd.Config)) *core.SSD {
	b.Helper()
	cfg := ssd.Config{
		Elements:      8,
		Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 64, BlocksPerPackage: 64},
		Overprovision: 0.10,
		Layout:        ssd.Interleaved,
		Scheduler:     sched.SWTF,
		CtrlOverhead:  10 * sim.Microsecond,
		GCLow:         0.05, GCCritical: 0.02,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := core.NewSSD(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// churn drives a device through skewed random overwrites and returns the
// aggregated wear spread and cleaning stats.
func churn(b *testing.B, d *core.SSD, seed int64) (spread int, moved int64) {
	b.Helper()
	if err := core.PreconditionFrac(d, 1<<20, 0.8); err != nil {
		b.Fatal(err)
	}
	space := int64(float64(d.LogicalBytes()) * 0.8)
	hot := space / 10
	rng := sim.NewRNG(seed)
	n := int(space / 4096 * 10)
	i := 0
	err := d.Raw.ClosedLoop(4, func(int) (trace.Op, bool) {
		if i >= n {
			return trace.Op{}, false
		}
		i++
		region := hot
		if rng.Bool(0.1) {
			region = space
		}
		return trace.Op{Kind: trace.Write, Offset: rng.Int63n(region/4096) * 4096, Size: 4096}, true
	})
	if err != nil {
		b.Fatal(err)
	}
	min, max := 1<<30, 0
	for _, el := range d.Raw.Elements() {
		w := el.Wear()
		if w.Min < min {
			min = w.Min
		}
		if w.Max > max {
			max = w.Max
		}
	}
	return max - min, d.Raw.GCStats().PagesMoved
}

// BenchmarkAblationWearLeveling compares wear spread with and without the
// dual-pool cold-data migration under a skewed workload.
func BenchmarkAblationWearLeveling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plain := benchDevice(b, nil)
		spreadOff, _ := churn(b, plain, 7)
		aware := benchDevice(b, func(c *ssd.Config) { c.WearAware = true; c.WearDelta = 16 })
		spreadOn, _ := churn(b, aware, 7)
		b.ReportMetric(float64(spreadOff), "spread-greedy")
		b.ReportMetric(float64(spreadOn), "spread-wear-aware")
	}
}

// BenchmarkAblationOverprovision sweeps spare capacity and reports the
// cleaning relocation volume: more spare area, fewer pages moved.
func BenchmarkAblationOverprovision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var movedLow, movedHigh int64
		d := benchDevice(b, func(c *ssd.Config) { c.Overprovision = 0.07 })
		_, movedLow = churn(b, d, 9)
		d = benchDevice(b, func(c *ssd.Config) { c.Overprovision = 0.25 })
		_, movedHigh = churn(b, d, 9)
		b.ReportMetric(float64(movedLow), "moved-op7%")
		b.ReportMetric(float64(movedHigh), "moved-op25%")
	}
}

// BenchmarkAblationInformedFreeRatio measures informed cleaning's
// sensitivity to how much of the written data is freed.
func BenchmarkAblationInformedFreeRatio(b *testing.B) {
	run := func(freeFrac float64) int64 {
		d := benchDevice(b, func(c *ssd.Config) { c.Informed = true })
		if err := core.PreconditionFrac(d, 1<<20, 0.8); err != nil {
			b.Fatal(err)
		}
		space := int64(float64(d.LogicalBytes()) * 0.8)
		rng := sim.NewRNG(11)
		n := int(space / 4096 * 3)
		i := 0
		err := d.Raw.ClosedLoop(2, func(int) (trace.Op, bool) {
			if i >= n {
				return trace.Op{}, false
			}
			i++
			off := rng.Int63n(space/4096) * 4096
			if rng.Bool(freeFrac) {
				return trace.Op{Kind: trace.Free, Offset: off, Size: 4096}, true
			}
			return trace.Op{Kind: trace.Write, Offset: off, Size: 4096}, true
		})
		if err != nil {
			b.Fatal(err)
		}
		return d.Raw.GCStats().PagesMoved
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(run(0.0)), "moved-free0%")
		b.ReportMetric(float64(run(0.3)), "moved-free30%")
	}
}

// BenchmarkAblationWriteBuffer shows the S3 observation: a write buffer
// masks single-write latency but not sustained random-write bandwidth.
func BenchmarkAblationWriteBuffer(b *testing.B) {
	run := func(buf int64) (latencyMs, mbps float64) {
		// Full-stripe layout: every write occupies the whole gang, so a
		// deeper drain queue cannot add parallelism — the regime where
		// the paper observed the cache was "ineffective".
		d := benchDevice(b, func(c *ssd.Config) {
			c.WriteBufferBytes = buf
			c.Layout = ssd.FullStripe
			c.StripeBytes = 32 << 10
		})
		if err := core.PreconditionFrac(d, 1<<20, 0.6); err != nil {
			b.Fatal(err)
		}
		// Single isolated write: latency.
		var resp sim.Time
		d.Raw.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 4096},
			func(r *ssd.Request) { resp = r.Response() })
		d.Engine().Run()
		// Sustained random writes: bandwidth.
		bw, err := core.MeasureBandwidth(d, core.BWOptions{
			Kind: trace.Write, Pattern: core.Random,
			ReqBytes: 4096, TotalBytes: 8 << 20, Depth: 8, Seed: 9,
		})
		if err != nil {
			b.Fatal(err)
		}
		return resp.Millis(), bw
	}
	for i := 0; i < b.N; i++ {
		latNo, bwNo := run(0)
		latYes, bwYes := run(16 << 20)
		b.ReportMetric(latNo, "latency-ms-nobuf")
		b.ReportMetric(latYes, "latency-ms-buf")
		b.ReportMetric(bwNo, "MBps-nobuf")
		b.ReportMetric(bwYes, "MBps-buf")
	}
}

// BenchmarkAblationGCPolicy compares greedy vs cost-benefit victim
// selection on a hot/cold workload.
func BenchmarkAblationGCPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		greedy := benchDevice(b, nil)
		_, movedGreedy := churn(b, greedy, 13)
		cb := benchDevice(b, func(c *ssd.Config) { c.CostBenefit = true })
		_, movedCB := churn(b, cb, 13)
		b.ReportMetric(float64(movedGreedy), "moved-greedy")
		b.ReportMetric(float64(movedCB), "moved-costbenefit")
	}
}

// BenchmarkRunnerSerial and BenchmarkRunnerParallel run the same reduced
// Table 2 through the experiment runner at one worker and at the
// GOMAXPROCS default; their ratio is the evaluation's fan-out speedup on
// this machine (1.0 on a single-core host).
func benchTable2(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(experiments.Table2Options{
			BytesPerTest:     4 << 20,
			RandBytesPerTest: 1 << 20,
			Seed:             1,
			Workers:          workers,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunnerSerial(b *testing.B)   { benchTable2(b, 1) }
func BenchmarkRunnerParallel(b *testing.B) { benchTable2(b, runner.DefaultWorkers()) }

// BenchmarkOSDDeviceWritePath measures block writes traveling the object
// path (extent lookup + store bookkeeping) against the raw device.
func BenchmarkOSDDeviceWritePath(b *testing.B) {
	d, err := core.NewOSD(ssd.Config{
		Elements:      8,
		Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 64, BlocksPerPackage: 64},
		Overprovision: 0.10,
		Layout:        ssd.Interleaved,
		Scheduler:     sched.SWTF,
		CtrlOverhead:  10 * sim.Microsecond,
		GCLow:         0.05, GCCritical: 0.02,
	})
	if err != nil {
		b.Fatal(err)
	}
	space := d.LogicalBytes()
	rng := sim.NewRNG(5)
	b.ResetTimer()
	i := 0
	err = d.ClosedLoop(4, func(int) (trace.Op, bool) {
		if i >= b.N {
			return trace.Op{}, false
		}
		i++
		return trace.Op{Kind: trace.Write, Offset: rng.Int63n(space/4096) * 4096, Size: 4096}, true
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineThroughput measures the raw event engine through the
// legacy closure API (After); the pooled path is BenchmarkEngineChurn.
func BenchmarkEngineThroughput(b *testing.B) {
	eng := sim.NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(1, func() {})
		eng.Step()
	}
}

// BenchmarkEngineSchedule measures one schedule+fire cycle against a
// deep heap: 4096 events stay pending, so every push sifts through a
// realistically tall four-ary tree. The pooled Call path must not
// allocate in steady state.
func BenchmarkEngineSchedule(b *testing.B) {
	eng := sim.NewEngine()
	nop := func(any) {}
	rng := sim.NewRNG(1)
	const depth = 4096
	for i := 0; i < depth; i++ {
		eng.Call(sim.Time(rng.Intn(1000)+1), nop, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Call(sim.Time(rng.Intn(1000)+1), nop, nil)
		eng.Step()
	}
}

// churnState carries a self-rescheduling timer for BenchmarkEngineChurn;
// the pointer rides through the event's any slot without boxing.
type churnState struct {
	eng  *sim.Engine
	left int
}

// churnEvent fires and reschedules itself until the countdown drains —
// the steady-state motion of every device completion in a simulation.
func churnEvent(a any) {
	s := a.(*churnState)
	if s.left > 0 {
		s.left--
		s.eng.Call(1, churnEvent, s)
	}
}

// BenchmarkEngineChurn is the zero-allocation contract of the pooled
// event engine: 256 concurrent self-rescheduling timers (a gang of
// in-flight requests) burn through b.N events total. CI gates this
// benchmark at exactly 0 allocs/op — the event heap is flat event
// values, the callbacks are package functions, and the payloads are
// pointers, so nothing escapes per event.
func BenchmarkEngineChurn(b *testing.B) {
	eng := sim.NewEngine()
	const timers = 256
	share := b.N / timers
	states := make([]*churnState, timers)
	for i := range states {
		states[i] = &churnState{eng: eng, left: share}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for _, s := range states {
		eng.Call(1, churnEvent, s)
	}
	eng.Run()
}

// BenchmarkFTLWritePath measures the per-page write cost of the FTL under
// steady-state cleaning.
func BenchmarkFTLWritePath(b *testing.B) {
	el, err := ftl.NewElement(ftl.Config{
		Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 64, BlocksPerPackage: 256},
		Timing:        flash.TimingFor(flash.SLC),
		Overprovision: 0.10,
	})
	if err != nil {
		b.Fatal(err)
	}
	n := el.LogicalPages()
	for lpn := 0; lpn < n; lpn++ {
		if _, err := el.WritePage(lpn); err != nil {
			b.Fatal(err)
		}
	}
	rng := sim.NewRNG(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := el.WritePage(rng.Intn(n)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceRandomWrites measures end-to-end simulated random writes
// per wall-clock second (events through the full device stack).
func BenchmarkDeviceRandomWrites(b *testing.B) {
	d := benchDevice(b, nil)
	if err := core.PreconditionFrac(d, 1<<20, 0.6); err != nil {
		b.Fatal(err)
	}
	space := int64(float64(d.LogicalBytes()) * 0.6)
	rng := sim.NewRNG(5)
	b.ResetTimer()
	i := 0
	err := d.Raw.ClosedLoop(4, func(int) (trace.Op, bool) {
		if i >= b.N {
			return trace.Op{}, false
		}
		i++
		return trace.Op{Kind: trace.Write, Offset: rng.Int63n(space/4096) * 4096, Size: 4096}, true
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAlignerThroughput measures the merge/align pass itself.
func BenchmarkAlignerThroughput(b *testing.B) {
	ops, err := workload.SyntheticOps(workload.SyntheticConfig{
		Ops: 10000, AddressSpace: 1 << 28, ReqSize: 4096, SeqProb: 0.6, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Align(ops, 32<<10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDriveStream1M drives a one-million-op synthetic stream
// through Device.Drive on the base SSD profile. The point is the memory
// shape, not the speed: b.ReportAllocs shows constant allocations per
// op (a few small closures), and the benchmark fails outright if the
// event heap ever holds more than a bounded number of pending events —
// a Drive that materialized the stream would schedule a million
// arrivals up front. O(1) memory in the stream's length, where the
// slice-era Play was O(n).
func BenchmarkDriveStream1M(b *testing.B) {
	const million = 1_000_000
	for i := 0; i < b.N; i++ {
		d, err := core.Open("ssd")
		if err != nil {
			b.Fatal(err)
		}
		// Reads over a preconditioned region at a gentle open-loop rate:
		// the device keeps up, so queues (and memory) stay flat.
		if err := core.PreconditionFrac(d, 1<<20, 0.5); err != nil {
			b.Fatal(err)
		}
		space := int64(float64(d.LogicalBytes()) * 0.5)
		stream, err := workload.Synthetic(workload.SyntheticConfig{
			Ops:            million,
			AddressSpace:   space,
			ReadFrac:       1.0,
			ReqSize:        4096,
			InterarrivalLo: 90 * sim.Microsecond,
			InterarrivalHi: 110 * sim.Microsecond,
			Seed:           3,
		})
		if err != nil {
			b.Fatal(err)
		}
		// Sample the event heap on every pull: the O(1) guard.
		maxPending := 0
		probed := trace.Func(func() (trace.Op, bool) {
			if p := d.Engine().Pending(); p > maxPending {
				maxPending = p
			}
			return stream.Next()
		})
		b.ReportAllocs()
		if err := d.Drive(trace.Shift(probed, d.Engine().Now())); err != nil {
			b.Fatal(err)
		}
		if got := d.Metrics().Completed; got < million {
			b.Fatalf("completed %d of %d", got, million)
		}
		if maxPending > 1024 {
			b.Fatalf("event heap peaked at %d pending events — the stream is being materialized", maxPending)
		}
		b.ReportMetric(float64(maxPending), "max-pending-events")
	}
}

// ---- dispatch-path benchmarks: the indexed scheduler vs the scan ----

// dispatchPayload stands in for the *ssd.Request payload a real queue
// carries; pointers avoid interface boxing in the benchmark loop.
type dispatchPayload struct{ elem int }

// BenchmarkDispatchSWTF measures one steady-state SWTF dispatch decision
// on the indexed sched.Queue — pop the winner, mark its element busy,
// push a replacement — at fixed pending depths. The depth barely moves
// the cost (heap operations are O(log n)) and the pick path must not
// allocate: this is the tentpole contract of the indexed scheduler.
func BenchmarkDispatchSWTF(b *testing.B) {
	for _, depth := range []int{1024, 16384, 65536} {
		name := map[int]string{1024: "1k", 16384: "16k", 65536: "64k"}[depth]
		b.Run(name, func(b *testing.B) {
			const elements = 64
			q := sched.NewQueue(sched.SWTF, elements)
			elems := make([][]int, elements)
			payloads := make([]*dispatchPayload, elements)
			for e := 0; e < elements; e++ {
				elems[e] = []int{e}
				payloads[e] = &dispatchPayload{elem: e}
			}
			for i := 0; i < depth; i++ {
				q.Push(elems[i%elements], payloads[i%elements])
			}
			now := sim.Time(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data, ok := q.Pop(now)
				if !ok {
					b.Fatal("steady-state pop failed")
				}
				e := data.(*dispatchPayload).elem
				q.SetBusy(e, now+1)
				q.Push(elems[i%elements], payloads[i%elements])
				now++
			}
		})
	}
}

// BenchmarkDispatchSWTFScan replays the pre-refactor dispatch machinery
// at the same depths: rebuild the entries slice (the per-pick allocation
// the old device paid), scan it with sched.Pick, and compact the pending
// slice by index. Its ratio to BenchmarkDispatchSWTF is the refactor's
// speedup; the acceptance floor is 10x at 64k.
func BenchmarkDispatchSWTFScan(b *testing.B) {
	for _, depth := range []int{1024, 16384, 65536} {
		name := map[int]string{1024: "1k", 16384: "16k", 65536: "64k"}[depth]
		b.Run(name, func(b *testing.B) {
			const elements = 64
			busy := make([]sim.Time, elements)
			pending := make([]*sched.Entry, 0, depth)
			seq := uint64(0)
			for i := 0; i < depth; i++ {
				seq++
				pending = append(pending, &sched.Entry{Elems: []int{i % elements}, Seq: seq})
			}
			now := sim.Time(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// The scan-era device copied its pending jobs into a fresh
				// entries slice on every pick.
				entries := make([]*sched.Entry, len(pending))
				copy(entries, pending)
				idx := sched.Pick(sched.SWTF, entries, busy, now)
				if idx < 0 {
					b.Fatal("steady-state pick failed")
				}
				// Elements stay idle so every pick dispatches, matching the
				// indexed benchmark's steady state.
				pending = append(pending[:idx], pending[idx+1:]...)
				seq++
				pending = append(pending, &sched.Entry{Elems: []int{i % elements}, Seq: seq})
				now++
			}
		})
	}
}

// BenchmarkDispatchSWTFTenants is BenchmarkDispatchSWTF with the
// weighted fair-share layer engaged: four tenant classes at unequal
// weights, every push tagged and costed. The DRR pick path must hold
// the same contract as the single-tenant one — no allocations at any
// depth — so tenancy is free for runs that don't use it and O(tenants)
// for runs that do.
func BenchmarkDispatchSWTFTenants(b *testing.B) {
	for _, depth := range []int{1024, 16384, 65536} {
		name := map[int]string{1024: "1k", 16384: "16k", 65536: "64k"}[depth]
		b.Run(name, func(b *testing.B) {
			const elements = 64
			q := sched.NewQueue(sched.SWTF, elements)
			q.SetTenantWeight(1, 1)
			q.SetTenantWeight(2, 4)
			q.SetTenantWeight(3, 2)
			q.SetTenantWeight(4, 8)
			elems := make([][]int, elements)
			payloads := make([]*dispatchPayload, elements)
			for e := 0; e < elements; e++ {
				elems[e] = []int{e}
				payloads[e] = &dispatchPayload{elem: e}
			}
			for i := 0; i < depth; i++ {
				q.PushT(elems[i%elements], payloads[i%elements], uint8(1+i%4), 4096)
			}
			now := sim.Time(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data, ok := q.Pop(now)
				if !ok {
					b.Fatal("steady-state pop failed")
				}
				e := data.(*dispatchPayload).elem
				q.SetBusy(e, now+1)
				q.PushT(elems[i%elements], payloads[i%elements], uint8(1+i%4), 4096)
				now++
			}
		})
	}
}

// BenchmarkExtensionSchemes regenerates the FTL-scheme comparison.
func BenchmarkExtensionSchemes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Schemes(1, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RandWrite[0], "page-randwrite-MBps")
		b.ReportMetric(r.RandWrite[2], "block-randwrite-MBps")
	}
}

// BenchmarkExtensionLifetime regenerates the endurance comparison.
func BenchmarkExtensionLifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Lifetime(1, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.HostMB[0], "greedy-hostMB")
		b.ReportMetric(r.HostMB[1], "leveled-hostMB")
	}
}

// ---- sharded-dataplane benchmarks: the parallel gang vs one engine ----

// gangBenchConfig is the 32-element interleaved SWTF gang the bench-shard
// CI job measures: large enough that four shards each own a real
// workload, small enough that a full replay fits in a CI minute.
func gangBenchConfig() ssd.Config {
	return ssd.Config{
		Elements:      32,
		Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 64, BlocksPerPackage: 32},
		Overprovision: 0.10,
		Layout:        ssd.Interleaved,
		Scheduler:     sched.SWTF,
		CtrlOverhead:  10 * sim.Microsecond,
		GCLow:         0.05, GCCritical: 0.02,
	}
}

// BenchmarkGangShards replays the same saturating 200k-op random
// workload on the 32-element gang at 1, 2, and 4 shards; one benchmark
// iteration is one full replay, so ns/op is the wall clock of the whole
// run and the CI gate compares shards=4 directly against shards=1
// (>= 2x). Every replay also re-checks the determinism contract cheaply:
// the completed-op count and final simulated clock must not depend on
// the shard count.
func BenchmarkGangShards(b *testing.B) {
	const ops = 150_000
	var wantDone int64
	var wantClock sim.Time
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d, err := core.NewSSD(gangBenchConfig())
				if err != nil {
					b.Fatal(err)
				}
				if shards > 1 {
					if err := d.Raw.EnableSharding(shards); err != nil {
						b.Fatal(err)
					}
				}
				if err := core.PreconditionFrac(d, 1<<20, 0.5); err != nil {
					b.Fatal(err)
				}
				space := int64(float64(d.LogicalBytes()) * 0.5)
				rng := sim.NewRNG(11)
				n := 0
				at := d.Engine().Now()
				stream := trace.Func(func() (trace.Op, bool) {
					if n >= ops {
						return trace.Op{}, false
					}
					n++
					at += 2 * sim.Microsecond
					op := trace.Op{At: at, Kind: trace.Write, Offset: rng.Int63n(space/4096) * 4096, Size: 4096}
					if rng.Int63n(4) == 0 {
						op.Kind = trace.Read
					}
					return op, true
				})
				b.StartTimer()
				if err := d.Drive(stream); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				done, clock := d.Metrics().Completed, d.Engine().Now()
				if done < ops {
					b.Fatalf("completed %d of %d", done, ops)
				}
				if wantDone == 0 {
					wantDone, wantClock = done, clock
				} else if done != wantDone || clock != wantClock {
					b.Fatalf("shards=%d diverged: %d ops at %v, want %d at %v", shards, done, clock, wantDone, wantClock)
				}
			}
		})
	}
}

// BenchmarkShardCrossPost measures the steady-state cross-shard posting
// path in isolation: one pooled (func(any), arg) message into a bounded
// inbox, delivered onto the shard's private engine at the window
// barrier. Once the inboxes and heaps are warm this path must not
// allocate — the CI bench-shard job gates allocs/op at 0.
func BenchmarkShardCrossPost(b *testing.B) {
	const shards = 4
	g := sim.NewShardGroup(shards, 1024)
	g.Start()
	defer g.Stop()
	nop := func(any) {}
	var at sim.Time
	// Warm the inbox backing arrays and the event heaps.
	for i := 0; i < shards*2048; i++ {
		at += 2 * sim.Microsecond
		if !g.Post(i%shards, at, nop, nil) {
			g.RunWindow(at)
		}
	}
	g.RunWindow(sim.MaxTime)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += 2 * sim.Microsecond
		k := i % shards
		if g.InboxFree(k) == 0 {
			g.RunWindow(at)
		}
		if !g.Post(k, at, nop, nil) {
			b.Fatal("post failed with free inbox")
		}
	}
	b.StopTimer()
	g.RunWindow(sim.MaxTime)
}
