// Command uflip runs a uFLIP-style microbenchmark battery (Bouganim,
// Jónsson, Bonnet — CIDR '09, the paper's reference [4]) against a device
// profile: request-size sweeps, alignment sweeps, working-set locality,
// and read/write mixes. Each probe isolates one flash-behaviour pattern —
// granularity effects, stripe alignment, garbage-collection pressure.
//
//	uflip -profile S2slc
//	uflip -profile S4slc_sim -probe locality
package main

import (
	"flag"
	"fmt"
	"os"

	"ossd/internal/core"
	"ossd/internal/sim"
	"ossd/internal/stats"
	"ossd/internal/trace"
)

func main() {
	var (
		profile = flag.String("profile", "S4slc_sim", "device profile (see ssdsim -list)")
		probe   = flag.String("probe", "all", "granularity|alignment|locality|mix|all")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "uflip:", err)
		os.Exit(1)
	}
	p, err := core.ProfileByName(*profile)
	if err != nil {
		fail(err)
	}
	fmt.Printf("uFLIP-style probes on %s (%s)\n\n", p.Name, p.Description)

	probes := map[string]func(core.Profile, int64) error{
		"granularity": granularity,
		"alignment":   alignment,
		"locality":    locality,
		"mix":         mix,
	}
	order := []string{"granularity", "alignment", "locality", "mix"}
	if *probe != "all" {
		if _, ok := probes[*probe]; !ok {
			fail(fmt.Errorf("unknown probe %q", *probe))
		}
		order = []string{*probe}
	}
	for _, name := range order {
		if err := probes[name](p, *seed); err != nil {
			fail(fmt.Errorf("%s: %w", name, err))
		}
	}
}

// fresh builds a preconditioned device through the registry.
func fresh(p core.Profile) (core.Device, error) {
	d, err := core.Open(p.Name)
	if err != nil {
		return nil, err
	}
	return d, core.PreconditionFrac(d, 1<<20, 0.7)
}

// granularity sweeps request sizes for all four pattern/kind combinations.
func granularity(p core.Profile, seed int64) error {
	t := stats.NewTable("Probe: granularity (MB/s by request size)",
		"Size", "SeqRead", "RandRead", "SeqWrite", "RandWrite")
	for _, size := range []int64{4096, 16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		row := []any{fmt.Sprintf("%dKiB", size>>10)}
		for _, tc := range []struct {
			kind    trace.Kind
			pattern core.Pattern
		}{
			{trace.Read, core.Sequential}, {trace.Read, core.Random},
			{trace.Write, core.Sequential}, {trace.Write, core.Random},
		} {
			d, err := fresh(p)
			if err != nil {
				return err
			}
			bw, err := core.MeasureBandwidth(d, core.BWOptions{
				Kind: tc.kind, Pattern: tc.pattern,
				ReqBytes: size, TotalBytes: 8 << 20, Depth: 1, Seed: seed,
			})
			if err != nil {
				return err
			}
			row = append(row, bw)
		}
		t.AddRow(row...)
	}
	fmt.Println(t.String())
	return nil
}

// alignment writes one logical page (the device's stripe) at shifted
// offsets: aligned writes replace the stripe in place; shifted ones
// straddle two stripes and pay read-modify-write on both.
func alignment(p core.Profile, seed int64) error {
	if p.Kind != core.KindSSD {
		return fmt.Errorf("alignment probe needs an SSD profile")
	}
	stripe := p.SSD.StripeBytes
	if stripe == 0 {
		stripe = int64(p.SSD.Geom.PageSize) // interleaved: page granularity
	}
	t := stats.NewTable(
		fmt.Sprintf("Probe: alignment (stripe-sized %d KiB writes, mean ms by shift)", stripe>>10),
		"Shift", "Mean(ms)")
	for _, frac := range []int64{0, 8, 4, 2} {
		shift := int64(0)
		if frac > 0 {
			shift = stripe / frac
		}
		d, err := fresh(p)
		if err != nil {
			return err
		}
		sd := d.(*core.SSD)
		n := 128
		period := 2 * stripe
		slots := d.LogicalBytes()/period - 1
		rng := sim.NewRNG(seed)
		i := 0
		if err := sd.Raw.ClosedLoop(1, func(int) (trace.Op, bool) {
			if i >= n {
				return trace.Op{}, false
			}
			i++
			base := rng.Int63n(slots) * period
			return trace.Op{Kind: trace.Write, Offset: base + shift, Size: stripe}, true
		}); err != nil {
			return err
		}
		m := sd.Raw.Metrics()
		t.AddRow(fmt.Sprintf("+%d/%dKiB", shift>>10, stripe>>10), m.WriteResp.Mean())
	}
	fmt.Println(t.String())
	return nil
}

// locality confines random writes to shrinking working sets: small hot
// sets recycle blocks quickly (cheap cleaning), whole-device churn
// scatters invalidations (expensive cleaning).
func locality(p core.Profile, seed int64) error {
	t := stats.NewTable("Probe: locality (random-write MB/s by working-set fraction)",
		"WorkingSet", "MB/s", "PagesMoved")
	for _, frac := range []float64{0.05, 0.25, 0.50, 1.0} {
		d, err := core.Open(p.Name)
		if err != nil {
			return err
		}
		// Two passes to 90%: cleaning is active from the start, so the
		// locality effect on garbage collection is visible.
		for pass := 0; pass < 2; pass++ {
			if err := core.PreconditionFrac(d, 1<<20, 0.9); err != nil {
				return err
			}
		}
		space := int64(float64(d.LogicalBytes()) * 0.9 * frac)
		if space < 1<<20 {
			space = 1 << 20
		}
		rng := sim.NewRNG(seed)
		// Enough churn to reach the random-overwrite steady state, where
		// the working-set size governs how full GC victims are.
		total := int64(64 << 20)
		n := int(total / 4096)
		i := 0
		start := d.Engine().Now()
		if err := d.ClosedLoop(4, func(int) (trace.Op, bool) {
			if i >= n {
				return trace.Op{}, false
			}
			i++
			return trace.Op{Kind: trace.Write, Offset: rng.Int63n(space/4096) * 4096, Size: 4096}, true
		}); err != nil {
			return err
		}
		bw := stats.Bandwidth(total, (d.Engine().Now() - start).Seconds())
		moved := int64(0)
		if sd, ok := d.(*core.SSD); ok {
			moved = sd.Raw.GCStats().PagesMoved
		}
		t.AddRow(fmt.Sprintf("%.0f%%", frac*100), bw, moved)
	}
	fmt.Println(t.String())
	return nil
}

// mix sweeps the read fraction of a random 4 KB workload, measuring the
// per-class response (writes slow down as their share — and cleaning
// pressure — grows).
func mix(p core.Profile, seed int64) error {
	t := stats.NewTable("Probe: read/write mix (random 4 KiB, per-class mean ms)",
		"Reads", "Read(ms)", "Write(ms)")
	for _, rf := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		d, err := fresh(p)
		if err != nil {
			return err
		}
		rng := sim.NewRNG(seed)
		space := int64(float64(d.LogicalBytes()) * 0.7)
		n := 2000
		i := 0
		if err := d.ClosedLoop(1, func(int) (trace.Op, bool) {
			if i >= n {
				return trace.Op{}, false
			}
			i++
			kind := trace.Write
			if rng.Bool(rf) {
				kind = trace.Read
			}
			op := trace.Op{Kind: kind, Offset: rng.Int63n(space/4096) * 4096, Size: 4096}
			return op, true
		}); err != nil {
			return err
		}
		// Per-class means over the probe window only, via SSD metrics
		// when available (HDD profiles report cumulative means).
		if sd, ok := d.(*core.SSD); ok {
			m := sd.Raw.Metrics()
			t.AddRow(fmt.Sprintf("%.0f%%", rf*100), m.ReadResp.Mean(), m.WriteResp.Mean())
		} else {
			m := d.Metrics()
			rms, wms := m.MeanReadMs, m.MeanWriteMs
			t.AddRow(fmt.Sprintf("%.0f%%", rf*100), rms, wms)
		}
	}
	fmt.Println(t.String())
	return nil
}
