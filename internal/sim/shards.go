package sim

import (
	"fmt"
	"sort"
)

// MaxTime is the largest representable simulated time. As a window
// horizon it means "run until the shard's heap is empty".
const MaxTime = Time(1<<63 - 1)

// Message is one cross-shard posting: the pooled (func(any), arg)
// callback form of Engine.CallAt plus its delivery time. Messages are
// value slots in a bounded per-shard inbox, so posting work into a shard
// allocates nothing once the inbox has reached its steady-state size.
type Message struct {
	At  Time
	Fn  func(any)
	Arg any
}

// ShardGroup runs N private Engines under conservative parallel
// discrete-event simulation. Each shard owns its engine (its own
// four-ary heap) and whatever model state the caller partitions onto it;
// the group only synchronizes at window barriers.
//
// The execution contract is the conservative-PDES one:
//
//   - Between windows the coordinator goroutine owns everything: it may
//     Post messages into shard inboxes, read shard clocks, or Transfer
//     pending events elsewhere.
//   - RunWindow(h) delivers each shard's inbox in posting order and runs
//     every shard concurrently up to and including horizon h, then
//     barriers. The caller must choose h so that no future posting will
//     target a time <= h — with open-loop arrivals the next arrival's
//     timestamp is exactly that lookahead bound.
//   - Shards never touch each other's state; cross-shard work travels
//     only through Post, which is delivered at a barrier. Posting into a
//     shard's past panics inside the shard, exactly like Engine.CallAt.
//
// Determinism: a shard's event order is (at, seq) exactly as in a single
// Engine, and inbox delivery order is posting order, so for a fixed
// posting sequence the execution is bit-for-bit reproducible regardless
// of how the OS schedules the workers.
type ShardGroup struct {
	engines  []*Engine
	inbox    [][]Message
	inboxCap int

	cmd  []chan Time
	done chan struct{}
	open bool
}

// NewShardGroup builds a group of n empty engines with bounded inboxes.
func NewShardGroup(n, inboxCap int) *ShardGroup {
	if n <= 0 {
		panic(fmt.Sprintf("sim: shard group needs at least one shard, got %d", n))
	}
	if inboxCap <= 0 {
		inboxCap = 1024
	}
	g := &ShardGroup{
		engines:  make([]*Engine, n),
		inbox:    make([][]Message, n),
		inboxCap: inboxCap,
		done:     make(chan struct{}, n),
	}
	for i := range g.engines {
		g.engines[i] = NewEngine()
		g.inbox[i] = make([]Message, 0, inboxCap)
	}
	return g
}

// N reports the number of shards.
func (g *ShardGroup) N() int { return len(g.engines) }

// Engine returns shard i's engine. Outside a window the coordinator may
// use it freely; during a window it belongs to the shard's worker.
func (g *ShardGroup) Engine(i int) *Engine { return g.engines[i] }

// Post appends a message to shard i's inbox for delivery at the next
// window. It reports false when the inbox is full (the caller should run
// a window to drain it); it never blocks and never allocates once the
// inbox backing array has grown to its bound.
func (g *ShardGroup) Post(i int, at Time, fn func(any), arg any) bool {
	if len(g.inbox[i]) >= g.inboxCap {
		return false
	}
	g.inbox[i] = append(g.inbox[i], Message{At: at, Fn: fn, Arg: arg})
	return true
}

// InboxFree reports how many more messages shard i's inbox accepts
// before the next window must run.
func (g *ShardGroup) InboxFree(i int) int { return g.inboxCap - len(g.inbox[i]) }

// Start spawns one worker goroutine per shard. Workers park between
// windows; Stop joins them. Start/Stop pairs may repeat, so callers can
// scope the goroutines to one parallel phase and leak nothing.
func (g *ShardGroup) Start() {
	if g.open {
		return
	}
	g.cmd = make([]chan Time, len(g.engines))
	for i := range g.engines {
		g.cmd[i] = make(chan Time)
		go g.worker(i)
	}
	g.open = true
}

// Stop joins the workers started by Start. Idempotent.
func (g *ShardGroup) Stop() {
	if !g.open {
		return
	}
	for _, c := range g.cmd {
		close(c)
	}
	g.cmd = nil
	g.open = false
}

func (g *ShardGroup) worker(i int) {
	for h := range g.cmd[i] {
		g.runShard(i, h)
		g.done <- struct{}{}
	}
}

// runShard delivers shard i's inbox and advances its engine to h.
func (g *ShardGroup) runShard(i int, h Time) {
	eng := g.engines[i]
	box := g.inbox[i]
	for k := range box {
		m := &box[k]
		eng.CallAt(m.At, m.Fn, m.Arg)
		*m = Message{}
	}
	g.inbox[i] = box[:0]
	if h == MaxTime {
		eng.Run()
	} else {
		eng.RunUntil(h)
	}
}

// RunWindow delivers every inbox and advances every shard up to and
// including horizon h (MaxTime drains the heaps), then barriers. With
// Start active the shards run concurrently; otherwise they run inline on
// the calling goroutine — same semantics, useful for tests and for
// machines where the parallel session is not worth spawning.
func (g *ShardGroup) RunWindow(h Time) {
	if !g.open {
		for i := range g.engines {
			g.runShard(i, h)
		}
		return
	}
	for _, c := range g.cmd {
		c <- h
	}
	for range g.engines {
		<-g.done
	}
}

// SyncTo advances every shard clock to at least t, processing any
// events at or before it. Coordinator-side (inline).
func (g *ShardGroup) SyncTo(t Time) {
	for _, eng := range g.engines {
		if t > eng.now {
			eng.RunUntil(t)
		}
	}
}

// MaxNow reports the latest shard clock.
func (g *ShardGroup) MaxNow() Time {
	var max Time
	for _, eng := range g.engines {
		if eng.now > max {
			max = eng.now
		}
	}
	return max
}

// Pending reports the total number of events still scheduled across the
// shards (inboxes not included).
func (g *ShardGroup) Pending() int {
	n := 0
	for _, eng := range g.engines {
		n += eng.Pending()
	}
	return n
}

// transferEv is one event pulled off a shard heap during Transfer.
type transferEv struct {
	at   Time
	fn   func()
	call func(any)
	arg  any
}

// Transfer drains every pending event from every shard, in (at, shard,
// scheduling-order) order, and reschedules them onto dst, preserving
// that order. rewrite (optional) maps each pooled-callback payload to
// its replacement, which is how a caller retargets per-shard state
// pointers at the merge. Returns the number of events moved.
//
// Within a shard the original relative order is kept exactly; events in
// different shards carrying the same timestamp merge in shard order. The
// caller must have advanced dst's clock no later than the earliest
// pending event. Transfer is the one-way door from parallel windows back
// to single-engine execution: after it the shard heaps are empty.
func (g *ShardGroup) Transfer(dst *Engine, rewrite func(arg any) any) int {
	var evs []transferEv
	for _, eng := range g.engines {
		for len(eng.events) > 0 {
			ev := eng.pop()
			evs = append(evs, transferEv{at: ev.at, fn: ev.fn, call: ev.call, arg: ev.arg})
		}
	}
	// Shard-major concatenation + stable sort by time = (at, shard,
	// original order) merge order.
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	for _, ev := range evs {
		if ev.call != nil {
			arg := ev.arg
			if rewrite != nil {
				arg = rewrite(arg)
			}
			dst.CallAt(ev.at, ev.call, arg)
		} else {
			dst.At(ev.at, ev.fn)
		}
	}
	return len(evs)
}
