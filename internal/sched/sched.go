// Package sched implements the device-level I/O dispatch policies compared
// in §3.2 of the paper: FCFS, which dispatches strictly in arrival order
// and therefore suffers head-of-line blocking when the next request's
// target element is busy, and SWTF (shortest-wait-time-first), which
// dispatches the queued request whose target parallel elements have the
// shortest aggregate wait.
package sched

import "ossd/internal/sim"

// Policy selects a dispatch discipline.
type Policy int

const (
	// FCFS dispatches requests in strict arrival order.
	FCFS Policy = iota
	// SWTF dispatches the request with the shortest wait time over its
	// target elements.
	SWTF
)

func (p Policy) String() string {
	if p == SWTF {
		return "SWTF"
	}
	return "FCFS"
}

// Entry is one queued request from the scheduler's point of view: the set
// of parallel elements it must occupy and its arrival order.
type Entry struct {
	// Elems are the indices of the elements the request occupies.
	Elems []int
	// Seq is the arrival sequence number; lower is earlier.
	Seq uint64
}

// Wait computes the wait time of an entry: the latest time at which all of
// its target elements become available, relative to now. An idle element
// contributes zero.
func (e *Entry) Wait(busyUntil []sim.Time, now sim.Time) sim.Time {
	var w sim.Time
	for _, el := range e.Elems {
		if b := busyUntil[el] - now; b > w {
			w = b
		}
	}
	return w
}

// ready reports whether all target elements are idle at now.
func (e *Entry) ready(busyUntil []sim.Time, now sim.Time) bool {
	return e.Wait(busyUntil, now) == 0
}

// Pick returns the index into pending of the next request to dispatch, or
// -1 if nothing may be dispatched now. Only requests whose elements are
// all idle are dispatchable (the device model serializes each element).
//
// FCFS: the earliest-arrived request, and only that one — if its elements
// are busy nothing dispatches, even if later requests could proceed.
//
// SWTF: among all pending requests, the one with the shortest wait; it
// dispatches only if that wait is zero, otherwise the scheduler retries
// when an element completes. Ties break by arrival order, keeping the
// policy deterministic and starvation-resistant for equal waits.
func Pick(policy Policy, pending []*Entry, busyUntil []sim.Time, now sim.Time) int {
	if len(pending) == 0 {
		return -1
	}
	switch policy {
	case SWTF:
		best, bestWait := -1, sim.Time(-1)
		for i, e := range pending {
			w := e.Wait(busyUntil, now)
			if best == -1 || w < bestWait || (w == bestWait && e.Seq < pending[best].Seq) {
				best, bestWait = i, w
			}
		}
		if bestWait == 0 {
			return best
		}
		return -1
	default: // FCFS
		head := 0
		for i, e := range pending {
			if e.Seq < pending[head].Seq {
				head = i
			}
		}
		if pending[head].ready(busyUntil, now) {
			return head
		}
		return -1
	}
}
