module ossd

go 1.24
