package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanBasics(t *testing.T) {
	var m Mean
	if m.Mean() != 0 || m.N() != 0 || m.Std() != 0 {
		t.Fatal("zero Mean not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.N() != 8 {
		t.Fatalf("N = %d, want 8", m.N())
	}
	if got := m.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := m.Std(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Std = %v, want %v", got, want)
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want 2/9", m.Min(), m.Max())
	}
}

func TestMeanSingleSample(t *testing.T) {
	var m Mean
	m.Add(3.5)
	if m.Mean() != 3.5 || m.Var() != 0 || m.Min() != 3.5 || m.Max() != 3.5 {
		t.Fatalf("single-sample stats wrong: %+v", m)
	}
}

// Property: streaming mean matches the direct sum for arbitrary inputs.
func TestMeanMatchesDirect(t *testing.T) {
	prop := func(xs []float64) bool {
		var m Mean
		var sum float64
		ok := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			m.Add(x)
			sum += x
			ok++
		}
		if ok == 0 {
			return m.N() == 0
		}
		direct := sum / float64(ok)
		return math.Abs(m.Mean()-direct) < 1e-6*(1+math.Abs(direct))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i))
	}
	med := h.Median()
	if med < 450 || med > 560 {
		t.Fatalf("median = %v, want ~500 (within bucket error)", med)
	}
	p99 := h.Percentile(99)
	if p99 < 900 || p99 > 1000 {
		t.Fatalf("p99 = %v, want ~990", p99)
	}
	if h.Percentile(0) != 1 {
		t.Fatalf("p0 = %v, want min 1", h.Percentile(0))
	}
	if h.Percentile(100) != 1000 {
		t.Fatalf("p100 = %v, want max 1000", h.Percentile(100))
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 {
		t.Fatal("empty histogram percentile not 0")
	}
	h.Add(0.5)  // below bucket 0 resolution
	h.Add(1e40) // above bucket range: clamps, must not panic
	if h.N() != 2 {
		t.Fatalf("N = %d", h.N())
	}
	if p := h.Percentile(100); p != 1e40 {
		t.Fatalf("max clamp = %v", p)
	}
}

// Property: percentile estimates stay within the sample min/max and are
// monotone in p.
func TestHistogramMonotoneProperty(t *testing.T) {
	prop := func(raw []uint32) bool {
		var h Histogram
		for _, r := range raw {
			h.Add(float64(r%1000000) + 1)
		}
		if h.N() == 0 {
			return true
		}
		prev := 0.0
		for p := 0.0; p <= 100; p += 5 {
			v := h.Percentile(p)
			if v < h.Min() || v > h.Max() || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidth(t *testing.T) {
	if bw := Bandwidth(100e6, 2); bw != 50 {
		t.Fatalf("Bandwidth = %v, want 50", bw)
	}
	if bw := Bandwidth(100, 0); bw != 0 {
		t.Fatalf("zero-duration bandwidth = %v, want 0", bw)
	}
}

func TestRatio(t *testing.T) {
	if r := Ratio(10, 2); r != 5 {
		t.Fatalf("Ratio = %v", r)
	}
	if r := Ratio(10, 0); !math.IsInf(r, 1) {
		t.Fatalf("Ratio with zero denominator = %v, want +Inf", r)
	}
	if r := Ratio(0, 0); r != 0 {
		t.Fatalf("Ratio(0,0) = %v, want 0", r)
	}
}

func TestImprovement(t *testing.T) {
	if imp := Improvement(10, 9); math.Abs(imp-10) > 1e-12 {
		t.Fatalf("Improvement = %v, want 10", imp)
	}
	if imp := Improvement(0, 5); imp != 0 {
		t.Fatalf("Improvement from zero = %v, want 0", imp)
	}
	if imp := Improvement(10, 12); imp != -20 {
		t.Fatalf("regression = %v, want -20", imp)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X", "Device", "Seq", "Rand", "Ratio")
	tb.AddRow("HDD", 86.2, 0.6, 143.7)
	tb.AddRow("S1slc", 205.6, 18.7, 11.0)
	tb.AddNote("bandwidths in MB/s")
	s := tb.String()
	if !strings.Contains(s, "Table X") {
		t.Fatal("missing title")
	}
	if !strings.Contains(s, "HDD") || !strings.Contains(s, "205.6") {
		t.Fatalf("missing cells:\n%s", s)
	}
	if !strings.Contains(s, "note: bandwidths") {
		t.Fatal("missing note")
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, 2 rows, note
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	for _, l := range lines {
		if strings.HasSuffix(l, " ") {
			t.Fatalf("trailing space in %q", l)
		}
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(0.001234)
	tb.AddRow(3.14159)
	tb.AddRow(42.71828)
	tb.AddRow(12345.6)
	tb.AddRow(math.Inf(1))
	s := tb.String()
	for _, want := range []string{"0.0012", "3.14", "42.7", "12346", "inf"} {
		if !strings.Contains(s, want) {
			t.Errorf("formatted table missing %q:\n%s", want, s)
		}
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "bw"
	s.Add(1, 10)
	s.Add(2, 20)
	out := s.String()
	if !strings.Contains(out, "# bw") || !strings.Contains(out, "20.0000") {
		t.Fatalf("series render:\n%s", out)
	}
	if len(s.X) != 2 || s.Y[1] != 20 {
		t.Fatal("series points wrong")
	}
}

func TestSummarize(t *testing.T) {
	min, med, max := Summarize([]float64{5, 1, 9, 3, 7})
	if min != 1 || med != 5 || max != 9 {
		t.Fatalf("Summarize = %v %v %v", min, med, max)
	}
	if a, b, c := Summarize(nil); a != 0 || b != 0 || c != 0 {
		t.Fatal("empty Summarize not zero")
	}
	// Must not mutate input.
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestGrid(t *testing.T) {
	g := NewGrid("t", "dev \\ wl")
	g.Add("ssd", "seq", 10)
	g.Add("ssd", "rand", 2)
	g.Add("hdd", "seq", 8)
	// Duplicate samples average.
	g.Add("hdd", "seq", 4)
	if g.MaxN() != 2 {
		t.Fatalf("MaxN = %d", g.MaxN())
	}
	g.AddNote("a note")
	out := g.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	// Rows and columns keep first-insertion order.
	seqAt, randAt := strings.Index(lines[1], "seq"), strings.Index(lines[1], "rand")
	if !strings.HasPrefix(lines[1], "dev \\ wl") || seqAt < 0 || randAt < seqAt {
		t.Fatalf("header: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "ssd") || !strings.HasPrefix(lines[3], "hdd") {
		t.Fatalf("row order:\n%s", out)
	}
	// hdd/rand was never set: rendered as "-". hdd/seq averaged to 6.
	if !strings.Contains(lines[3], "6.00") || !strings.Contains(lines[3], "-") {
		t.Fatalf("hdd row: %q", lines[3])
	}
	if !strings.Contains(lines[4], "a note") {
		t.Fatalf("note: %q", lines[4])
	}
}
