package core

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"ossd/internal/fault"
	"ossd/internal/sim"
	"ossd/internal/trace"
)

// Snapshot is the service serialization: every field must marshal on
// every device kind, faulted or not, so reports and campaign cells stay
// column-stable. omitempty on any field would drop zero-valued keys from
// fault-free runs and fork the schema.
func TestSnapshotNoOmitempty(t *testing.T) {
	typ := reflect.TypeOf(Snapshot{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		tag := f.Tag.Get("json")
		if tag == "" || tag == "-" {
			t.Errorf("Snapshot.%s has no json tag", f.Name)
			continue
		}
		if strings.Contains(tag, ",") {
			t.Errorf("Snapshot.%s tag %q has options; fields must serialize unconditionally", f.Name, tag)
		}
	}
	raw, err := json.Marshal(Snapshot{})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if len(m) != typ.NumField() {
		t.Fatalf("zero Snapshot marshals %d keys, struct has %d fields", len(m), typ.NumField())
	}
}

// Every device kind serializes the identical Snapshot key set — the
// fault counters included — whether or not a plan is attached.
func TestSnapshotUniformAcrossKinds(t *testing.T) {
	want := reflect.TypeOf(Snapshot{}).NumField()
	plan := &fault.Plan{Seed: 3, Transient: &fault.Transient{Rate: 0.01}}
	for _, name := range []string{"ssd", "hdd", "mems", "raid", "osd"} {
		for _, opts := range [][]Option{nil, {WithFault(plan)}} {
			d, err := Open(name, opts...)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			raw, err := json.Marshal(d.Metrics())
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			var m map[string]any
			if err := json.Unmarshal(raw, &m); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(m) != want {
				t.Errorf("%s (opts %d): snapshot marshals %d keys, want %d", name, len(opts), len(m), want)
			}
		}
	}
}

// faultLoopWrites drives n sequential 4 KB writes, closed loop.
func faultLoopWrites(t *testing.T, d Device, n int) {
	t.Helper()
	i := 0
	err := d.ClosedLoop(2, func(int) (trace.Op, bool) {
		if i >= n {
			return trace.Op{}, false
		}
		op := trace.Op{Kind: trace.Write, Offset: int64(i%256) * 4096, Size: 4096}
		i++
		return op, true
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The generic injector gives non-flash media transient faults: ops slow
// down by a full retry (pause plus second service) but never fail, and
// the host-facing counters stay host-facing.
func TestFaultDeviceTransient(t *testing.T) {
	const n = 400
	clean, err := Open("hdd")
	if err != nil {
		t.Fatal(err)
	}
	faultLoopWrites(t, clean, n)
	plan := &fault.Plan{Seed: 11, Transient: &fault.Transient{Rate: 0.05, RetryUs: 20000}}
	faulty, err := Open("hdd", WithFault(plan))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := faulty.(*FaultDevice); !ok {
		t.Fatalf("faulted hdd is %T, want *FaultDevice", faulty)
	}
	faultLoopWrites(t, faulty, n)
	cm, fm := clean.Metrics(), faulty.Metrics()
	if fm.FaultsInjected == 0 {
		t.Fatal("no faults injected at 5% rate")
	}
	if fm.Errors != 0 {
		t.Fatalf("transient faults produced %d hard errors", fm.Errors)
	}
	if fm.FaultRetries != fm.FaultsInjected {
		t.Fatalf("retries %d != injected %d", fm.FaultRetries, fm.FaultsInjected)
	}
	if fm.Completed != cm.Completed || fm.BytesWritten != cm.BytesWritten {
		t.Fatalf("host counters drifted: faulty %d/%d clean %d/%d",
			fm.Completed, fm.BytesWritten, cm.Completed, cm.BytesWritten)
	}
	if fm.MeanWriteMs <= cm.MeanWriteMs {
		t.Fatalf("retry cost invisible: faulty mean %v <= clean %v", fm.MeanWriteMs, cm.MeanWriteMs)
	}
}

// An inert plan (no transients, no deaths) leaves the device unwrapped:
// wear ceilings mean nothing to media without an FTL.
func TestFaultDeviceInertPlanUnwrapped(t *testing.T) {
	d, err := Open("hdd", WithFault(&fault.Plan{WearCeiling: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(*FaultDevice); ok {
		t.Fatal("inert plan still wrapped the device")
	}
}

// Past its death point the wrapped device fails every read and write
// deterministically — and keeps failing them without media time.
func TestFaultDeviceDeath(t *testing.T) {
	plan := &fault.Plan{Deaths: []fault.Death{{Element: 0, AfterOps: 10}}}
	d, err := Open("mems", WithFault(plan))
	if err != nil {
		t.Fatal(err)
	}
	var failed int
	for i := 0; i < 25; i++ {
		op := trace.Op{Kind: trace.Write, Offset: int64(i) * 4096, Size: 4096}
		err := d.Submit(op, func(_ sim.Time, err error) {
			if err != nil {
				if !errors.Is(err, fault.ErrElementDead) {
					t.Fatalf("op %d failed with %v", i, err)
				}
				failed++
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		d.Engine().Run()
	}
	if failed != 15 {
		t.Fatalf("%d ops failed, want 15 (ops 10..24)", failed)
	}
	m := d.Metrics()
	if m.Completed != 25 || m.Errors != 15 || m.FaultsInjected != 15 {
		t.Fatalf("completed %d errors %d injected %d, want 25/15/15", m.Completed, m.Errors, m.FaultsInjected)
	}
}

// Same plan, same workload, same metrics: the injector draws from the
// keyed hash, never from shared RNG state or wall clock.
func TestFaultDeviceDeterminism(t *testing.T) {
	run := func() Snapshot {
		plan := &fault.Plan{
			Seed:      42,
			Transient: &fault.Transient{Rate: 0.03, Burst: 2, RetryUs: 15000},
			Deaths:    []fault.Death{{Element: 0, AfterOps: 350}},
		}
		d, err := Open("raid", WithFault(plan))
		if err != nil {
			t.Fatal(err)
		}
		faultLoopWrites(t, d, 400)
		return d.Metrics()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay diverged:\n%+v\n%+v", a, b)
	}
	if a.FaultsInjected == 0 || a.Errors == 0 {
		t.Fatalf("plan was inert: %+v", a)
	}
}

// The recovery scan is real device traffic: its reads land on the same
// metrics as the truncated run it follows.
func TestReplayRecovery(t *testing.T) {
	d, err := Open("hdd")
	if err != nil {
		t.Fatal(err)
	}
	if err := ReplayRecovery(d, 0.01); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	want := int64(float64(d.LogicalBytes()) * 0.01)
	if m.BytesRead != want {
		t.Fatalf("recovery read %d bytes, want %d", m.BytesRead, want)
	}
	if m.MeanReadMs <= 0 {
		t.Fatal("recovery reads took no simulated time")
	}
}
