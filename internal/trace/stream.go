package trace

import (
	"container/heap"

	"ossd/internal/sim"
)

// Stream is a pull-based iterator over trace operations: the canonical
// workload currency. Generators produce Streams, devices consume them
// (core.Device.Drive), and combinators compose them — so a million-op
// workload flows through the system one Op at a time instead of as a
// materialized slice.
//
// Next returns the next operation and true, or a zero Op and false once
// the stream is exhausted. After false, further calls keep returning
// false. Streams are single-use and not safe for concurrent use.
//
// A stream that can fail mid-iteration (a decoder reading a file, a
// validating transform) additionally implements ErrStream; consumers that
// drain a stream should check Err afterwards.
type Stream interface {
	Next() (Op, bool)
}

// ErrStream is implemented by streams whose iteration can fail. Next
// returning false may mean exhaustion or error; Err distinguishes the
// two. Err is meaningful once Next has returned false.
type ErrStream interface {
	Stream
	// Err returns the first error the stream hit, or nil.
	Err() error
}

// Err returns s's iteration error, if s tracks one (see ErrStream), and
// nil otherwise. Combinators propagate Err from their sources, so
// checking the outermost stream is sufficient.
func Err(s Stream) error {
	if es, ok := s.(ErrStream); ok {
		return es.Err()
	}
	return nil
}

// Func adapts a closure to a Stream.
type Func func() (Op, bool)

// Next implements Stream.
func (f Func) Next() (Op, bool) { return f() }

// sliceStream iterates over a materialized trace.
type sliceStream struct {
	ops []Op
	i   int
}

func (s *sliceStream) Next() (Op, bool) {
	if s.i >= len(s.ops) {
		return Op{}, false
	}
	op := s.ops[s.i]
	s.i++
	return op, true
}

// FromSlice returns a Stream over ops. The slice is not copied; it must
// not be mutated while the stream is live.
func FromSlice(ops []Op) Stream { return &sliceStream{ops: ops} }

// Collect drains a stream into a slice: the bridge back to the legacy
// slice-based API. It materializes the whole stream — use it only where
// the trace is known to be small or a slice is genuinely required.
func Collect(s Stream) []Op {
	var ops []Op
	for {
		op, ok := s.Next()
		if !ok {
			return ops
		}
		ops = append(ops, op)
	}
}

// limitStream caps a stream at n operations.
type limitStream struct {
	src  Stream
	left int
}

func (l *limitStream) Next() (Op, bool) {
	if l.left <= 0 {
		return Op{}, false
	}
	op, ok := l.src.Next()
	if !ok {
		l.left = 0
		return Op{}, false
	}
	l.left--
	return op, true
}

func (l *limitStream) Err() error { return Err(l.src) }

// Limit returns a stream that yields at most n operations from s.
func Limit(s Stream, n int) Stream { return &limitStream{src: s, left: n} }

// shiftStream offsets every timestamp by a fixed delta.
type shiftStream struct {
	src   Stream
	delta sim.Time
}

func (s *shiftStream) Next() (Op, bool) {
	op, ok := s.src.Next()
	if !ok {
		return Op{}, false
	}
	op.At += s.delta
	return op, true
}

func (s *shiftStream) Err() error { return Err(s.src) }

// Shift returns a stream whose timestamps are offset by delta — the
// streaming form of "shift the trace past the preconditioning window".
func Shift(s Stream, delta sim.Time) Stream { return &shiftStream{src: s, delta: delta} }

// mergeHead is one source's buffered head in a merge.
type mergeHead struct {
	op  Op
	src int // index into merge.srcs; breaks timestamp ties stably
}

type mergeHeap []mergeHead

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].op.At != h[j].op.At {
		return h[i].op.At < h[j].op.At
	}
	return h[i].src < h[j].src
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeHead)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// mergeStream interleaves timestamp-ordered sources into one
// timestamp-ordered stream, holding one buffered op per source.
type mergeStream struct {
	srcs  []Stream
	heads mergeHeap
	init  bool
}

func (m *mergeStream) Next() (Op, bool) {
	if !m.init {
		m.init = true
		for i, s := range m.srcs {
			if op, ok := s.Next(); ok {
				m.heads = append(m.heads, mergeHead{op: op, src: i})
			}
		}
		heap.Init(&m.heads)
	}
	if len(m.heads) == 0 {
		return Op{}, false
	}
	head := m.heads[0]
	if op, ok := m.srcs[head.src].Next(); ok {
		m.heads[0] = mergeHead{op: op, src: head.src}
		heap.Fix(&m.heads, 0)
	} else {
		heap.Pop(&m.heads)
	}
	return head.op, true
}

func (m *mergeStream) Err() error {
	for _, s := range m.srcs {
		if err := Err(s); err != nil {
			return err
		}
	}
	return nil
}

// Merge interleaves timestamp-ordered streams into one timestamp-ordered
// stream (ties go to the earlier argument). It buffers one operation per
// source — O(len(streams)) memory regardless of stream length. Use it to
// compose concurrent workloads, e.g. a foreground stream merged with a
// background scan.
func Merge(streams ...Stream) Stream { return &mergeStream{srcs: streams} }

// tallyStream accumulates Stats as operations pass through.
type tallyStream struct {
	src Stream
	st  *Stats
}

func (t *tallyStream) Next() (Op, bool) {
	op, ok := t.src.Next()
	if ok {
		t.st.add(op)
	}
	return op, ok
}

func (t *tallyStream) Err() error { return Err(t.src) }

// Tally returns a pass-through stream that accumulates summary statistics
// into st as operations flow by — Summarize for pipelines that never
// materialize the trace. st is complete once the stream is drained.
func Tally(s Stream, st *Stats) Stream { return &tallyStream{src: s, st: st} }
