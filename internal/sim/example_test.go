package sim_test

import (
	"fmt"

	"ossd/internal/sim"
)

// ExampleEngine shows the discrete-event pattern every device model in
// this repository uses: schedule, run, observe the virtual clock.
func ExampleEngine() {
	eng := sim.NewEngine()
	eng.After(2*sim.Millisecond, func() {
		fmt.Println("erase done at", eng.Now())
	})
	eng.After(200*sim.Microsecond, func() {
		fmt.Println("program done at", eng.Now())
	})
	eng.Run()
	fmt.Println("clock:", eng.Now())
	// Output:
	// program done at 200.000us
	// erase done at 2.000ms
	// clock: 2.000ms
}
