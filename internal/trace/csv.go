package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ossd/internal/sim"
)

// CSVLayout maps the columns of an MSR-Cambridge/SNIA-style CSV block
// trace onto Op fields. The zero value selects the MSR-Cambridge layout
// (see MSRLayout); set fields explicitly for other published formats.
type CSVLayout struct {
	// Timestamp, Type, Offset, and Size are column indices (0-based).
	Timestamp int
	Type      int
	Offset    int
	Size      int
	// Host is the column whose distinct values become tenant IDs in
	// first-seen order (1, 2, …), or -1 for no tenant tagging.
	Host int
	// TimestampUnit is the duration of one timestamp tick. MSR traces
	// use Windows filetime: 100 ns ticks.
	TimestampUnit sim.Time
}

// MSRLayout is the MSR-Cambridge column layout:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// with filetime (100 ns) timestamps.
func MSRLayout() CSVLayout {
	return CSVLayout{Timestamp: 0, Host: 1, Type: 3, Offset: 4, Size: 5, TimestampUnit: 100}
}

// csvDecoder streams Ops out of a CSV block trace.
type csvDecoder struct {
	sc     *bufio.Scanner
	layout CSVLayout
	line   int
	err    error
	done   bool
	first  bool // next data row is the first: anchors the time base
	base   int64
	prevAt sim.Time
	// tenants maps host column values to tenant IDs in first-seen order.
	tenants map[string]uint8
}

// DecodeCSV returns a Stream over an MSR-Cambridge/SNIA-style CSV block
// trace: one op per row, timestamps rebased so the first record arrives
// at 0, read/write parsed case-insensitively, and (when the layout has a
// host column) hostnames mapped to tenant IDs in first-seen order so a
// multi-host trace replays as a multi-tenant workload. A header row is
// skipped automatically; timestamps are clamped monotone so slightly
// out-of-order rows still replay. The zero layout selects MSRLayout.
func DecodeCSV(r io.Reader, layout CSVLayout) Stream {
	if layout == (CSVLayout{}) {
		layout = MSRLayout()
	}
	if layout.TimestampUnit <= 0 {
		layout.TimestampUnit = 1
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	return &csvDecoder{sc: sc, layout: layout, first: true, tenants: map[string]uint8{}}
}

// Err implements ErrStream.
func (d *csvDecoder) Err() error { return d.err }

// Next implements Stream.
func (d *csvDecoder) Next() (Op, bool) {
	if d.done {
		return Op{}, false
	}
	for d.sc.Scan() {
		d.line++
		text := strings.TrimSpace(d.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		op, ok, err := d.parse(text)
		if err != nil {
			d.err = err
			d.done = true
			return Op{}, false
		}
		if !ok { // header row
			continue
		}
		return op, true
	}
	d.err = d.sc.Err()
	d.done = true
	return Op{}, false
}

// parse decodes one row. ok is false for a tolerated header row.
func (d *csvDecoder) parse(text string) (Op, bool, error) {
	f := strings.Split(text, ",")
	max := d.layout.Timestamp
	for _, c := range []int{d.layout.Type, d.layout.Offset, d.layout.Size, d.layout.Host} {
		if c > max {
			max = c
		}
	}
	if len(f) <= max {
		return Op{}, false, fmt.Errorf("trace: csv line %d: want at least %d columns, got %d", d.line, max+1, len(f))
	}
	ts, err := strconv.ParseInt(strings.TrimSpace(f[d.layout.Timestamp]), 10, 64)
	if err != nil {
		if d.first && d.line == 1 {
			return Op{}, false, nil // header row
		}
		return Op{}, false, fmt.Errorf("trace: csv line %d: bad timestamp: %v", d.line, err)
	}
	var op Op
	switch t := strings.TrimSpace(f[d.layout.Type]); {
	case strings.EqualFold(t, "Read") || strings.EqualFold(t, "R"):
		op.Kind = Read
	case strings.EqualFold(t, "Write") || strings.EqualFold(t, "W"):
		op.Kind = Write
	default:
		return Op{}, false, fmt.Errorf("trace: csv line %d: bad type %q", d.line, t)
	}
	if op.Offset, err = strconv.ParseInt(strings.TrimSpace(f[d.layout.Offset]), 10, 64); err != nil {
		return Op{}, false, fmt.Errorf("trace: csv line %d: bad offset: %v", d.line, err)
	}
	if op.Size, err = strconv.ParseInt(strings.TrimSpace(f[d.layout.Size]), 10, 64); err != nil {
		return Op{}, false, fmt.Errorf("trace: csv line %d: bad size: %v", d.line, err)
	}
	if d.layout.Host >= 0 {
		host := strings.TrimSpace(f[d.layout.Host])
		t, ok := d.tenants[host]
		if !ok {
			if len(d.tenants) >= 255 {
				return Op{}, false, fmt.Errorf("trace: csv line %d: more than 255 distinct hosts", d.line)
			}
			t = uint8(len(d.tenants) + 1)
			d.tenants[host] = t
		}
		op.Tenant = t
	}
	if d.first {
		d.first = false
		d.base = ts
	}
	op.At = sim.Time(ts-d.base) * d.layout.TimestampUnit
	if op.At < d.prevAt {
		op.At = d.prevAt
	}
	d.prevAt = op.At
	if err := op.Validate(); err != nil {
		return Op{}, false, fmt.Errorf("trace: csv line %d: %v", d.line, err)
	}
	return op, true, nil
}
