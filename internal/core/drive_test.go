package core

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"ossd/internal/sim"
	"ossd/internal/trace"
)

// stormStream emits n writes all timestamped zero: the open-loop arrival
// storm admission control exists to absorb.
func stormStream(n int, size int64, space int64) trace.Stream {
	i := 0
	return trace.Func(func() (trace.Op, bool) {
		if i >= n {
			return trace.Op{}, false
		}
		off := (int64(i) * size) % space
		i++
		return trace.Op{Kind: trace.Write, Offset: off, Size: size}, true
	})
}

// TestDriveMaxPendingBoundsBacklog pins the WithMaxPending contract: a
// storm the device cannot absorb keeps at most maxPending requests
// outstanding (so the device queue never grows past the bound), every
// operation still completes, and the run remains deterministic.
func TestDriveMaxPendingBoundsBacklog(t *testing.T) {
	const (
		ops   = 2000
		bound = 16
	)
	d, err := Open("ssd", WithMaxPending(bound))
	if err != nil {
		t.Fatal(err)
	}
	space := d.LogicalBytes()
	maxDepth := 0
	inner := stormStream(ops, 4096, space)
	depthProbe := trace.Func(func() (trace.Op, bool) {
		if q := d.QueueDepth(); q > maxDepth {
			maxDepth = q
		}
		return inner.Next()
	})
	if err := d.Drive(depthProbe); err != nil {
		t.Fatal(err)
	}
	if got := d.Metrics().Completed; got < ops {
		t.Fatalf("completed %d of %d: admission control shed work", got, ops)
	}
	if maxDepth > bound {
		t.Fatalf("queue depth peaked at %d, bound %d", maxDepth, bound)
	}
	if maxDepth == 0 {
		t.Fatal("storm never queued: the probe is not observing anything")
	}

	// Determinism: a second identical run finishes at the identical
	// simulated time with identical metrics.
	d2, err := Open("ssd", WithMaxPending(bound))
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Drive(stormStream(ops, 4096, d2.LogicalBytes())); err != nil {
		t.Fatal(err)
	}
	if d.Engine().Now() != d2.Engine().Now() {
		t.Fatalf("paced runs diverged: %v vs %v", d.Engine().Now(), d2.Engine().Now())
	}
	if !reflect.DeepEqual(d.Metrics(), d2.Metrics()) {
		t.Fatalf("paced runs diverged: %+v vs %+v", d.Metrics(), d2.Metrics())
	}
}

// TestDriveMaxPendingAllKinds drives a short storm against every media
// kind with a bound, checking completion and the bound on each.
func TestDriveMaxPendingAllKinds(t *testing.T) {
	for _, name := range []string{"ssd", "hdd", "mems", "raid", "osd"} {
		t.Run(name, func(t *testing.T) {
			d, err := Open(name, WithMaxPending(4))
			if err != nil {
				t.Fatal(err)
			}
			const ops = 64
			maxDepth := 0
			inner := stormStream(ops, 4096, 1<<20)
			probe := trace.Func(func() (trace.Op, bool) {
				if q := d.QueueDepth(); q > maxDepth {
					maxDepth = q
				}
				return inner.Next()
			})
			if err := d.Drive(probe); err != nil {
				t.Fatal(err)
			}
			if got := d.Metrics().Completed; got < ops {
				t.Fatalf("completed %d of %d", got, ops)
			}
			// RAID decomposes each host op into several spindle sub-ops,
			// so its media-level depth may exceed the host-level bound by
			// the per-op fan-out; every other kind queues host requests.
			if name != "raid" && maxDepth > 4 {
				t.Fatalf("queue depth peaked at %d, bound 4", maxDepth)
			}
		})
	}
}

// TestDriveStopsOnSubmitErrorAndDrains pins the mid-stream error
// contract: a failing Submit stops the replay (ops after the bad one
// are never pulled), but Drive drains the device before returning, so
// every completion callback for work already in flight has fired — a
// callback must never run against a caller that has moved on.
func TestDriveStopsOnSubmitErrorAndDrains(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"unbounded", nil},
		{"bounded", []Option{WithMaxPending(2)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Open("ssd", tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			space := d.LogicalBytes()
			// Three good writes, a doomed op beyond capacity, then a tail
			// that a stopped replay must never reach.
			ops := []trace.Op{
				{Kind: trace.Write, Offset: 0, Size: 4096},
				{Kind: trace.Write, Offset: 4096, Size: 4096},
				{Kind: trace.Write, Offset: 8192, Size: 4096},
				{Kind: trace.Write, Offset: space, Size: 4096}, // Submit fails
				{Kind: trace.Write, Offset: 12288, Size: 4096},
				{Kind: trace.Write, Offset: 16384, Size: 4096},
			}
			pulled := 0
			inner := trace.FromSlice(ops)
			probe := trace.Func(func() (trace.Op, bool) {
				op, ok := inner.Next()
				if ok {
					pulled++
				}
				return op, ok
			})
			err = d.Drive(probe)
			if err == nil {
				t.Fatal("Drive swallowed the Submit error")
			}
			if pulled != 4 {
				t.Fatalf("pulled %d ops, want 4: the stream must stop at the failing op", pulled)
			}
			if pending := d.Engine().Pending(); pending != 0 {
				t.Fatalf("%d events still pending after Drive returned: not drained", pending)
			}
			if q := d.QueueDepth(); q != 0 {
				t.Fatalf("%d requests still queued after Drive returned", q)
			}
			if got := d.Metrics().Completed; got != 3 {
				t.Fatalf("completed %d, want the 3 in-flight ops drained", got)
			}
		})
	}
}

// TestDriveErrorCompletionsFireBeforeReturn is the callback-lifetime
// regression for the bounded loop, where every op carries a completion
// callback: at the moment Drive returns with a mid-stream error, the
// callbacks of all previously submitted ops have already run.
func TestDriveErrorCompletionsFireBeforeReturn(t *testing.T) {
	d, err := Open("ssd", WithMaxPending(8))
	if err != nil {
		t.Fatal(err)
	}
	space := d.LogicalBytes()
	i := 0
	stream := trace.Func(func() (trace.Op, bool) {
		i++
		switch {
		case i <= 5: // a burst at t=0 so several ops are in flight at once
			return trace.Op{Kind: trace.Write, Offset: int64(i-1) * 4096, Size: 4096}, true
		case i == 6:
			return trace.Op{Kind: trace.Write, Offset: space, Size: 4096}, true
		default:
			t.Fatal("stream pulled past the failing op")
			return trace.Op{}, false
		}
	})
	if err := d.Drive(stream); err == nil {
		t.Fatal("Drive swallowed the Submit error")
	}
	// The snapshot is read the instant Drive returns: the bounded loop
	// attaches a completion callback to every op, so Completed counts
	// exactly the callbacks that have already fired.
	if done := int(d.Metrics().Completed); done != 5 {
		t.Fatalf("completed %d at return, want all 5 in-flight ops", done)
	}
	if pending := d.Engine().Pending(); pending != 0 {
		t.Fatalf("%d events still pending at return", pending)
	}
}

// TestSnapshotReadOnlyWorkloadJSON pins the empty-histogram guard: a
// device that never saw a write must report 0 (not NaN or ±Inf) for the
// write latency fields, and the snapshot must survive JSON marshaling —
// one non-finite field fails an entire simsvc payload.
func TestSnapshotReadOnlyWorkloadJSON(t *testing.T) {
	for _, name := range []string{"ssd", "hdd", "mems", "raid", "osd"} {
		t.Run(name, func(t *testing.T) {
			d, err := Open(name)
			if err != nil {
				t.Fatal(err)
			}
			var ops []trace.Op
			for i := 0; i < 32; i++ {
				ops = append(ops, trace.Op{Kind: trace.Read, Offset: int64(i) * 4096, Size: 4096})
			}
			if err := d.Play(ops); err != nil {
				t.Fatal(err)
			}
			snap := d.Metrics()
			for field, v := range map[string]float64{
				"mean_write_ms": snap.MeanWriteMs,
				"p50_write_ms":  snap.P50WriteMs,
				"p95_write_ms":  snap.P95WriteMs,
				"p99_write_ms":  snap.P99WriteMs,
			} {
				if v != 0 {
					t.Errorf("%s = %v on a read-only workload, want 0", field, v)
				}
			}
			if snap.MeanReadMs <= 0 || snap.P50ReadMs <= 0 {
				t.Fatalf("read latency missing: %+v", snap)
			}
			if _, err := json.Marshal(snap); err != nil {
				t.Fatalf("snapshot does not marshal: %v", err)
			}
			// The zero-op snapshot must marshal too.
			fresh, err := Open(name)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := json.Marshal(fresh.Metrics()); err != nil {
				t.Fatalf("zero-op snapshot does not marshal: %v", err)
			}
		})
	}
}

// TestLatencyMsGuards pins the sanitizer itself.
func TestLatencyMsGuards(t *testing.T) {
	if v := latencyMs(math.NaN()); v != 0 {
		t.Fatalf("latencyMs(NaN) = %v, want 0", v)
	}
	if v := latencyMs(math.Inf(1)); v != 0 {
		t.Fatalf("latencyMs(+Inf) = %v, want 0", v)
	}
	if v := latencyMs(math.Inf(-1)); v != 0 {
		t.Fatalf("latencyMs(-Inf) = %v, want 0", v)
	}
	if v := latencyMs(1.5); v != 1.5 {
		t.Fatalf("latencyMs(1.5) = %v, want 1.5", v)
	}
}

// TestDriveUnboundedUnchanged guards the legacy open-loop path: without
// a bound, a paced workload completes with timestamps honored (the same
// motion as before the admission-control refactor).
func TestDriveUnboundedUnchanged(t *testing.T) {
	d, err := Open("ssd")
	if err != nil {
		t.Fatal(err)
	}
	ops := []trace.Op{
		{At: 0, Kind: trace.Write, Offset: 0, Size: 4096},
		{At: 5 * sim.Millisecond, Kind: trace.Read, Offset: 0, Size: 4096},
	}
	if err := d.Drive(trace.FromSlice(ops)); err != nil {
		t.Fatal(err)
	}
	if got := d.Metrics().Completed; got != 2 {
		t.Fatalf("completed %d, want 2", got)
	}
	if now := d.Engine().Now(); now < 5*sim.Millisecond {
		t.Fatalf("engine finished at %v, before the last arrival", now)
	}
}
