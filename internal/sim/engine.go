// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event heap, and seeded random distributions. All
// device models in this repository (SSD, HDD) advance time exclusively
// through an Engine, which makes every experiment reproducible from a
// seed and independent of wall-clock time.
package sim

import (
	"fmt"
)

// Time is a point on the simulated clock, in nanoseconds since the start
// of the simulation. Durations are also expressed as Time.
type Time int64

// Convenient duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a simulated time or duration to float seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts a simulated time or duration to float milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros converts a simulated time or duration to float microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// event is a scheduled callback. seq breaks ties so that events scheduled
// earlier run earlier, giving a stable, deterministic order. An event
// carries either a plain closure (fn) or a pooled (call, arg) pair; the
// latter lets hot paths schedule package-level functions with a pointer
// payload and pay zero allocations per event.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	call func(any)
	arg  any
}

// before is the heap order: earliest time first, scheduling order within
// a timestamp.
func (e event) before(o event) bool {
	return e.at < o.at || (e.at == o.at && e.seq < o.seq)
}

// Engine is a discrete-event simulator. The zero value is ready to use.
// Engines are not safe for concurrent use; a simulation is a single
// logical thread of control.
//
// The pending set is a four-ary min-heap laid flat in a slice of event
// values keyed on (at, seq) — no heap.Interface, no per-event boxing.
// Four-way fan-out halves the tree depth of a binary heap, and the
// shallower sift-down touches cache lines that are adjacent anyway
// because the children are contiguous. Popped slots are zeroed so the
// heap never pins dead callbacks or payloads for the collector, and the
// slice's capacity is reused across events: steady-state scheduling does
// not allocate.
type Engine struct {
	now    Time
	seq    uint64
	events []event
	ran    uint64
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled, not-yet-run events.
func (e *Engine) Pending() int { return len(e.events) }

// Processed reports the total number of events run so far.
func (e *Engine) Processed() uint64 { return e.ran }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it indicates a model bug, and silently reordering time would
// corrupt every statistic downstream.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// CallAt schedules fn(arg) at absolute time t. Unlike At, the callback
// and its payload travel as plain values in the event node, so a caller
// passing a package-level function and a pointer payload schedules with
// zero allocations — the form every hot scheduler in this repository
// uses. Scheduling in the past panics, as with At.
func (e *Engine) CallAt(t Time, fn func(any), arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, call: fn, arg: arg})
}

// Call schedules fn(arg) to run d after the current time. It is the
// pooled, allocation-free analogue of After; see CallAt.
func (e *Engine) Call(d Time, fn func(any), arg any) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.CallAt(e.now+d, fn, arg)
}

// Step runs the single next event, advancing the clock to its timestamp.
// It reports whether an event was available.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.ran++
	if ev.call != nil {
		ev.call(ev.arg)
	} else {
		ev.fn()
	}
	return true
}

// Run processes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil processes events with timestamps <= t, then advances the clock
// to exactly t. Events scheduled after t remain pending.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor processes events within the next d of simulated time and leaves
// the clock exactly d past where it started. Events scheduled later
// remain pending.
func (e *Engine) RunFor(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative duration %v", d))
	}
	e.RunUntil(e.now + d)
}

// ---- four-ary event heap ----

// arity is the heap fan-out. Four keeps siblings in one or two cache
// lines (an event is 48 bytes) and halves the depth of a binary heap.
const arity = 4

// push appends ev and restores the heap order with a hole-based sift-up:
// the new event is written once, into its final slot.
func (e *Engine) push(ev event) {
	i := len(e.events)
	e.events = append(e.events, event{})
	for i > 0 {
		p := (i - 1) / arity
		if !ev.before(e.events[p]) {
			break
		}
		e.events[i] = e.events[p]
		i = p
	}
	e.events[i] = ev
}

// pop removes and returns the minimum event. The vacated tail slot is
// zeroed so the heap drops its references to the callback and payload.
func (e *Engine) pop() event {
	top := e.events[0]
	n := len(e.events) - 1
	last := e.events[n]
	e.events[n] = event{}
	e.events = e.events[:n]
	if n > 0 {
		e.siftDown(last)
	}
	return top
}

// siftDown re-inserts ev (the former tail) starting from the root,
// walking hole-first: each level moves one event up instead of swapping.
func (e *Engine) siftDown(ev event) {
	n := len(e.events)
	i := 0
	for {
		first := arity*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + arity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.events[c].before(e.events[min]) {
				min = c
			}
		}
		if !e.events[min].before(ev) {
			break
		}
		e.events[i] = e.events[min]
		i = min
	}
	e.events[i] = ev
}
