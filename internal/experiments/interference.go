package experiments

import (
	"ossd/internal/core"
	"ossd/internal/flash"
	"ossd/internal/runner"
	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/ssd"
	"ossd/internal/stats"
	"ossd/internal/trace"
)

// Interference is the tenancy extension experiment: a latency-sensitive
// victim tenant (paced 4 KiB reads) shares one flash device with a
// bursty aggressor tenant (saturating 16 KiB writes), and the sweep
// walks the victim's fair-share weight from "no isolation" through
// increasingly strong shares. Without fair-share the aggressor's bursts
// queue ahead of the victim and its read tail collapses; weighted
// deficit-round-robin dispatch restores it, bounded below by the
// victim's solo tail. Every configuration is deterministic for a fixed
// seed at any worker or shard count — the unweighted mix runs on the
// sharded dataplane, the weighted ones single-engine, and both report
// identical bytes either way.

// InterferenceRow is one fairness configuration's outcome.
type InterferenceRow struct {
	Config string
	// Victim read latency (the isolation signal).
	VictimP99ReadMs  float64
	VictimMeanReadMs float64
	// Aggressor progress (the price of isolation).
	AggressorWriteMBps float64
}

// InterferenceResult is the sweep across fairness weights.
type InterferenceResult struct {
	Rows []InterferenceRow
}

// ID implements Result.
func (InterferenceResult) ID() string { return "interference" }

func (r InterferenceResult) String() string {
	t := stats.NewTable("Extension: multi-tenant interference and fair-share isolation",
		"Config", "VictimP99Read(ms)", "VictimMeanRead(ms)", "AggrWrite(MB/s)")
	for _, row := range r.Rows {
		t.AddRow(row.Config, row.VictimP99ReadMs, row.VictimMeanReadMs, row.AggressorWriteMBps)
	}
	t.AddNote("victim: paced 4 KiB reads (tenant 1); aggressor: bursty 16 KiB writes")
	t.AddNote("(tenant 2). weights are victim:aggressor; unfair = no fair-share layer.")
	return t.String()
}

// interferenceDevice builds the shared device: the faultlife geometry
// (small, interleaved, shard-decomposable) minus the fault plan, with
// the configuration's fair-share weights engaged when present.
func interferenceDevice(weights map[uint8]float64) (core.Device, error) {
	cfg := ssd.Config{
		Elements:      4,
		Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 32, BlocksPerPackage: 64},
		Overprovision: 0.25,
		Layout:        ssd.Interleaved,
		Scheduler:     sched.SWTF,
		CtrlOverhead:  5 * sim.Microsecond,
		GCLow:         0.06, GCCritical: 0.03,
	}
	opts := []core.Option{core.WithSSD(cfg)}
	if weights != nil {
		opts = append(opts, core.WithTenantWeights(weights))
	}
	return core.Open("ssd", opts...)
}

// interferenceStream builds the two-tenant mix: the victim's reads are
// paced well under the device's capacity, the aggressor's writes arrive
// far over it in 10 ms on / 30 ms off bursts, so every victim op issued
// during a burst contends with a deep aggressor backlog.
func interferenceStream(seed int64, space int64) (trace.Stream, error) {
	const (
		victimOps    = 1536
		aggressorOps = 5120
	)
	rngV := sim.NewRNG(seed)
	victim := make([]trace.Op, victimOps)
	var at sim.Time
	for i := range victim {
		at += sim.Time(100+rngV.Int63n(100)) * sim.Microsecond
		victim[i] = trace.Op{At: at, Kind: trace.Read, Offset: rngV.Int63n(space/4096) * 4096, Size: 4096}
	}
	rngA := sim.NewRNG(seed + 1)
	aggressor := make([]trace.Op, aggressorOps)
	at = 0
	for i := range aggressor {
		at += sim.Time(5+rngA.Int63n(10)) * sim.Microsecond
		aggressor[i] = trace.Op{Kind: trace.Write, At: at, Offset: rngA.Int63n(space/16384) * 16384, Size: 16384}
	}
	return trace.MergeTenants([]trace.TenantStream{
		{Tenant: 1, Stream: trace.FromSlice(victim)},
		{Tenant: 2, Stream: trace.FromSlice(aggressor),
			Mod: trace.Modulation{Kind: "bursty", Period: 40 * sim.Millisecond, Duty: 0.25}},
	})
}

// interferenceRun preconditions, drives the mix, and reads the victim's
// tail and the aggressor's throughput out of the per-tenant snapshot.
func interferenceRun(seed int64, weights map[uint8]float64) (InterferenceRow, error) {
	d, err := interferenceDevice(weights)
	if err != nil {
		return InterferenceRow{}, err
	}
	if err := core.PreconditionFrac(d, 1<<20, 0.6); err != nil {
		return InterferenceRow{}, err
	}
	space := int64(float64(d.LogicalBytes()) * 0.6)
	mix, err := interferenceStream(seed, space)
	if err != nil {
		return InterferenceRow{}, err
	}
	start := d.Engine().Now()
	if err := d.Drive(trace.Shift(mix, start)); err != nil {
		return InterferenceRow{}, err
	}
	elapsed := (d.Engine().Now() - start).Seconds()
	var row InterferenceRow
	for _, ts := range d.Metrics().Tenants {
		switch ts.Tenant {
		case 1:
			row.VictimP99ReadMs = ts.P99ReadMs
			row.VictimMeanReadMs = ts.MeanReadMs
		case 2:
			row.AggressorWriteMBps = stats.Bandwidth(ts.BytesWritten, elapsed)
		}
	}
	return row, nil
}

// InterferenceOptions sizes the sweep.
type InterferenceOptions struct {
	// Seed keys both tenants' workloads.
	Seed int64
	// Workers caps the pool (0 = runner default).
	Workers int
}

// Interference runs the fairness sweep, one spec per configuration.
func Interference(o InterferenceOptions) (InterferenceResult, error) {
	configs := []struct {
		name    string
		weights map[uint8]float64
	}{
		{"unfair", nil},
		{"fair 1:1", map[uint8]float64{1: 1, 2: 1}},
		{"fair 4:1", map[uint8]float64{1: 4, 2: 1}},
		{"fair 16:1", map[uint8]float64{1: 16, 2: 1}},
	}
	var res InterferenceResult
	specs := make([]runner.Spec[InterferenceRow], len(configs))
	for i, c := range configs {
		c := c
		specs[i] = runner.Spec[InterferenceRow]{
			Name: "interference/" + c.name,
			Seed: o.Seed,
			Run:  func() (InterferenceRow, error) { return interferenceRun(o.Seed, c.weights) },
		}
	}
	rows, err := runner.Run(specs, runner.Options{Workers: o.Workers})
	if err != nil {
		return res, err
	}
	for i, row := range rows {
		row.Config = configs[i].name
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
