package sim

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineZeroValue(t *testing.T) {
	var e Engine
	if e.Now() != 0 {
		t.Fatalf("zero engine Now = %v, want 0", e.Now())
	}
	if e.Step() {
		t.Fatal("Step on empty engine reported an event")
	}
}

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events ran out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v after run, want 30", e.Now())
	}
}

func TestEngineStableTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not in scheduling order: %v", got)
		}
	}
}

func TestEngineAfterNesting(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.After(10, func() {
		times = append(times, e.Now())
		e.After(5, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("nested After produced %v, want [10 15]", times)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	e.At(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Fatalf("RunUntil(20) ran %d events, want 2", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	// RunUntil past the end advances the clock even with no events.
	e.RunUntil(100)
	if e.Now() != 100 || e.Pending() != 0 {
		t.Fatalf("after RunUntil(100): now=%v pending=%d", e.Now(), e.Pending())
	}
}

func TestEnginePanicsOnPastSchedule(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineProcessedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 17; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Processed() != 17 {
		t.Fatalf("Processed = %d, want 17", e.Processed())
	}
}

// Property: for any set of scheduled times, events fire in sorted order
// and the clock is monotone.
func TestEngineSortedProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		want := make([]Time, len(raw))
		for i, r := range raw {
			want[i] = Time(r)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// refEvent and refHeap are a reference implementation of the event queue
// — the pre-refactor container/heap binary heap of boxed values — used
// to pin the four-ary heap's order, including same-timestamp seq
// ordering, against an independent structure.
type refEvent struct {
	at  Time
	seq uint64
	id  int
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestEngineEquivalenceWithBinaryHeap drives 10k randomized events —
// timestamps drawn from a small range so duplicates are common — through
// both the engine's four-ary heap and the reference binary heap, with
// pushes interleaved into the drain, and requires the identical fire
// order. Events alternate between the closure (At) and pooled (CallAt)
// scheduling forms so both paths are pinned.
func TestEngineEquivalenceWithBinaryHeap(t *testing.T) {
	for _, seed := range []int64{1, 2, 7} {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		ref := &refHeap{}
		var seq uint64
		var fired, want []int
		const total = 10_000
		id := 0
		schedule := func() {
			// A narrow window above now forces heavy timestamp collision.
			at := e.Now() + Time(rng.Intn(50))
			seq++
			heap.Push(ref, refEvent{at: at, seq: seq, id: id})
			this := id
			if id%2 == 0 {
				e.At(at, func() { fired = append(fired, this) })
			} else {
				e.CallAt(at, func(a any) { fired = append(fired, a.(int)) }, this)
			}
			id++
		}
		for id < total {
			// Random bursts of pushes interleaved with partial drains.
			for burst := rng.Intn(40); burst >= 0 && id < total; burst-- {
				schedule()
			}
			for steps := rng.Intn(30); steps >= 0; steps-- {
				if !e.Step() {
					break
				}
				want = append(want, heap.Pop(ref).(refEvent).id)
			}
		}
		for e.Step() {
			want = append(want, heap.Pop(ref).(refEvent).id)
		}
		if ref.Len() != 0 {
			t.Fatalf("seed %d: reference heap still holds %d events", seed, ref.Len())
		}
		if len(fired) != total || len(want) != total {
			t.Fatalf("seed %d: fired %d, reference %d, want %d", seed, len(fired), len(want), total)
		}
		for i := range fired {
			if fired[i] != want[i] {
				t.Fatalf("seed %d: fire order diverged from binary-heap reference at %d: got id %d, want %d",
					seed, i, fired[i], want[i])
			}
		}
	}
}

// TestEngineEdgeCases covers the boundary behaviors of the run loop:
// RunUntil at the current time, events scheduled exactly at the
// boundary, and scheduling in the past through both APIs.
func TestEngineEdgeCases(t *testing.T) {
	t.Run("RunUntilNow", func(t *testing.T) {
		e := NewEngine()
		e.At(10, func() {})
		e.Run()
		ran := 0
		e.At(e.Now(), func() { ran++ }) // scheduling at now is legal
		e.RunUntil(e.Now())             // a zero-width window still runs due events
		if ran != 1 {
			t.Fatalf("RunUntil(Now()) ran %d events, want 1", ran)
		}
		if e.Now() != 10 {
			t.Fatalf("clock moved to %v, want 10", e.Now())
		}
	})
	t.Run("BoundaryInclusive", func(t *testing.T) {
		e := NewEngine()
		var fired []Time
		for _, at := range []Time{19, 20, 20, 21} {
			at := at
			e.At(at, func() { fired = append(fired, at) })
		}
		e.RunUntil(20)
		if len(fired) != 3 || fired[0] != 19 || fired[1] != 20 || fired[2] != 20 {
			t.Fatalf("RunUntil(20) fired %v, want [19 20 20]", fired)
		}
		if e.Pending() != 1 {
			t.Fatalf("pending %d, want the event past the boundary", e.Pending())
		}
	})
	t.Run("AtPanicsOnPast", func(t *testing.T) {
		e := NewEngine()
		e.At(10, func() {})
		e.Run()
		defer func() {
			if recover() == nil {
				t.Fatal("At in the past did not panic")
			}
		}()
		e.At(9, func() {})
	})
	t.Run("CallAtPanicsOnPast", func(t *testing.T) {
		e := NewEngine()
		e.At(10, func() {})
		e.Run()
		defer func() {
			if recover() == nil {
				t.Fatal("CallAt in the past did not panic")
			}
		}()
		e.CallAt(9, func(any) {}, nil)
	})
	t.Run("CallPanicsOnNegativeDelay", func(t *testing.T) {
		e := NewEngine()
		defer func() {
			if recover() == nil {
				t.Fatal("negative Call delay did not panic")
			}
		}()
		e.Call(-1, func(any) {}, nil)
	})
}

// TestEngineCallDeliversArg pins the pooled form's payload plumbing and
// its interleaving with closure events at one timestamp.
func TestEngineCallDeliversArg(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Call(5, func(a any) { got = append(got, a.(int)) }, 1)
	e.After(5, func() { got = append(got, 2) })
	e.Call(5, func(a any) { got = append(got, a.(int)) }, 3)
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("mixed-form events fired %v, want [1 2 3]", got)
	}
}

// TestEngineCallSteadyStateAllocs is the pooled path's contract: once
// the heap slice has grown, a schedule-fire cycle allocates nothing.
func TestEngineCallSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	fn := func(any) {}
	arg := e // any pointer payload
	if allocs := testing.AllocsPerRun(10_000, func() {
		e.Call(1, fn, arg)
		e.Step()
	}); allocs != 0 {
		t.Fatalf("steady-state Call+Step allocates %.1f/op, want 0", allocs)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{4 * Second, "4.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if s := (2 * Second).Seconds(); s != 2 {
		t.Errorf("Seconds = %v, want 2", s)
	}
	if ms := (Millisecond + 500*Microsecond).Millis(); ms != 1.5 {
		t.Errorf("Millis = %v, want 1.5", ms)
	}
	if us := (3 * Microsecond).Micros(); us != 3 {
		t.Errorf("Micros = %v, want 3", us)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	// Forking with different keys must give distinct streams; forking must
	// not depend on consumption interleaving of the child.
	g := NewRNG(7)
	c1 := g.Fork(1)
	c2 := g.Fork(2)
	same := 0
	for i := 0; i < 50; i++ {
		if c1.Intn(1000) == c2.Intn(1000) {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("forked streams look identical: %d/50 collisions", same)
	}
}

func TestRNGUniformDuration(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		d := g.UniformDuration(10, 20)
		if d < 10 || d >= 20 {
			t.Fatalf("UniformDuration out of range: %v", d)
		}
	}
	if d := g.UniformDuration(5, 5); d != 5 {
		t.Fatalf("degenerate UniformDuration = %v, want 5", d)
	}
}

func TestRNGExponentialMean(t *testing.T) {
	g := NewRNG(2)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(g.Exponential(1000))
	}
	mean := sum / n
	if mean < 900 || mean > 1100 {
		t.Fatalf("exponential mean = %v, want ~1000", mean)
	}
}

func TestRNGBoolProbability(t *testing.T) {
	g := NewRNG(3)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("Bool(0.3) hit rate = %v", frac)
	}
}

func TestRNGZipfSkew(t *testing.T) {
	g := NewRNG(4)
	z := g.Zipf(1.2, 1000)
	counts := make(map[uint64]int)
	for i := 0; i < 10000; i++ {
		counts[z.Uint64()]++
	}
	// Rank 0 must dominate a mid-rank value under Zipf.
	if counts[0] <= counts[100] {
		t.Fatalf("zipf not skewed: rank0=%d rank100=%d", counts[0], counts[100])
	}
}

func TestEngineRunFor(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10, func() { ran++ })
	e.At(25, func() { ran++ })
	e.RunFor(15)
	if ran != 1 {
		t.Fatalf("RunFor(15) ran %d events, want 1", ran)
	}
	if e.Now() != 15 {
		t.Fatalf("Now = %v, want 15", e.Now())
	}
	// A second slice picks up where the first left off.
	e.RunFor(15)
	if ran != 2 || e.Now() != 30 {
		t.Fatalf("after second RunFor: ran=%d now=%v", ran, e.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative RunFor did not panic")
		}
	}()
	e.RunFor(-1)
}
