package ftl

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ossd/internal/flash"
)

func smallConfig() Config {
	return Config{
		Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 8, BlocksPerPackage: 16},
		Timing:        flash.TimingFor(flash.SLC),
		Overprovision: 0.15,
	}
}

func newElement(t *testing.T, cfg Config) *Element {
	t.Helper()
	el, err := NewElement(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return el
}

func TestNewElementValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Overprovision = -0.1
	if _, err := NewElement(cfg); err == nil {
		t.Error("accepted negative overprovision")
	}
	cfg = smallConfig()
	cfg.Overprovision = 0.95
	if _, err := NewElement(cfg); err == nil {
		t.Error("accepted 95% overprovision")
	}
	cfg = smallConfig()
	cfg.Geom.BlocksPerPackage = 2
	if _, err := NewElement(cfg); err == nil {
		t.Error("accepted 2-block package")
	}
	cfg = smallConfig()
	cfg.Geom.PageSize = 0
	if _, err := NewElement(cfg); err == nil {
		t.Error("accepted invalid geometry")
	}
}

func TestLogicalCapacity(t *testing.T) {
	el := newElement(t, smallConfig())
	phys := 8 * 16
	want := int(float64(phys) * 0.85)
	if el.LogicalPages() != want {
		t.Fatalf("LogicalPages = %d, want %d", el.LogicalPages(), want)
	}
	if el.PhysicalPages() != phys {
		t.Fatalf("PhysicalPages = %d, want %d", el.PhysicalPages(), phys)
	}
	if el.FreeFraction() != 1.0 {
		t.Fatalf("fresh element FreeFraction = %v, want 1", el.FreeFraction())
	}
}

func TestLogicalCapacityClamped(t *testing.T) {
	// With tiny overprovision the logical space must still leave two
	// blocks of slack.
	cfg := smallConfig()
	cfg.Overprovision = 0
	el := newElement(t, cfg)
	if el.LogicalPages() > el.PhysicalPages()-2*8 {
		t.Fatalf("LogicalPages = %d leaves less than 2 blocks slack", el.LogicalPages())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	el := newElement(t, smallConfig())
	if _, err := el.WritePage(5); err != nil {
		t.Fatal(err)
	}
	if !el.Mapped(5) {
		t.Fatal("lpn 5 not mapped after write")
	}
	d, err := el.ReadPage(5)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("read cost not positive")
	}
	if err := el.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadUnmappedIsCheap(t *testing.T) {
	el := newElement(t, smallConfig())
	dUnmapped, err := el.ReadPage(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := el.WritePage(3); err != nil {
		t.Fatal(err)
	}
	dMapped, err := el.ReadPage(3)
	if err != nil {
		t.Fatal(err)
	}
	if dUnmapped >= dMapped {
		t.Fatalf("unmapped read (%v) should be cheaper than mapped read (%v)", dUnmapped, dMapped)
	}
}

func TestOutOfRange(t *testing.T) {
	el := newElement(t, smallConfig())
	if _, err := el.WritePage(el.LogicalPages()); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("write: %v", err)
	}
	if _, err := el.ReadPage(-1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read: %v", err)
	}
	if err := el.Free(el.LogicalPages() + 3); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("free: %v", err)
	}
}

func TestOverwriteInvalidatesOldCopy(t *testing.T) {
	el := newElement(t, smallConfig())
	for i := 0; i < 4; i++ {
		if _, err := el.WritePage(7); err != nil {
			t.Fatal(err)
		}
	}
	st := el.Stats()
	if st.HostWrites != 4 {
		t.Fatalf("HostWrites = %d", st.HostWrites)
	}
	// One valid copy, three invalid.
	valid := 0
	for _, s := range el.pageState {
		if s == pageValid {
			valid++
		}
	}
	if valid != 1 {
		t.Fatalf("valid pages = %d, want 1", valid)
	}
	if err := el.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// fill writes every logical page once.
func fill(t *testing.T, el *Element) {
	t.Helper()
	for lpn := 0; lpn < el.LogicalPages(); lpn++ {
		if _, err := el.WritePage(lpn); err != nil {
			t.Fatalf("fill lpn %d: %v", lpn, err)
		}
	}
}

func TestSustainedOverwriteTriggersCleaning(t *testing.T) {
	el := newElement(t, smallConfig())
	fill(t, el)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4*el.LogicalPages(); i++ {
		if _, err := el.WritePage(rng.Intn(el.LogicalPages())); err != nil {
			t.Fatalf("overwrite %d: %v", i, err)
		}
	}
	st := el.Stats()
	if st.Cleans == 0 || st.GCErases == 0 {
		t.Fatalf("no cleaning under sustained overwrite: %+v", st)
	}
	if st.CleanTime <= 0 {
		t.Fatal("cleaning consumed no time")
	}
	if err := el.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The element must never run below its two-block slack after a write.
	if el.FreePages() < 0 {
		t.Fatal("negative free pages")
	}
}

func TestInformedFreeInvalidates(t *testing.T) {
	cfg := smallConfig()
	cfg.Informed = true
	el := newElement(t, cfg)
	if _, err := el.WritePage(2); err != nil {
		t.Fatal(err)
	}
	if err := el.Free(2); err != nil {
		t.Fatal(err)
	}
	if el.Mapped(2) {
		t.Fatal("lpn still mapped after informed free")
	}
	st := el.Stats()
	if st.FreesSeen != 1 || st.FreesApplied != 1 {
		t.Fatalf("free counters: %+v", st)
	}
	// Freeing an unmapped page is harmless.
	if err := el.Free(2); err != nil {
		t.Fatal(err)
	}
	if el.Stats().FreesApplied != 1 {
		t.Fatal("second free applied to unmapped page")
	}
	if err := el.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultIgnoresFrees(t *testing.T) {
	el := newElement(t, smallConfig())
	if _, err := el.WritePage(2); err != nil {
		t.Fatal(err)
	}
	if err := el.Free(2); err != nil {
		t.Fatal(err)
	}
	if !el.Mapped(2) {
		t.Fatal("default FTL dropped a mapping on free")
	}
	st := el.Stats()
	if st.FreesSeen != 1 || st.FreesApplied != 0 {
		t.Fatalf("free counters: %+v", st)
	}
}

// TestInformedCleaningMovesFewerPages is the heart of Table 5: with the
// same workload, the informed FTL must copy strictly fewer pages during
// cleaning than the default FTL.
func TestInformedCleaningMovesFewerPages(t *testing.T) {
	run := func(informed bool) Stats {
		cfg := smallConfig()
		cfg.Geom.BlocksPerPackage = 64
		cfg.Informed = informed
		el, err := NewElement(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		n := el.LogicalPages()
		live := make([]bool, n)
		// Churn: write, and free half of what we wrote shortly after,
		// like a file system creating and deleting temporary files.
		for i := 0; i < 12*n; i++ {
			lpn := rng.Intn(n)
			if live[lpn] && rng.Intn(2) == 0 {
				if err := el.Free(lpn); err != nil {
					t.Fatal(err)
				}
				live[lpn] = false
				continue
			}
			if _, err := el.WritePage(lpn); err != nil {
				t.Fatal(err)
			}
			live[lpn] = true
		}
		if err := el.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return el.Stats()
	}
	def := run(false)
	inf := run(true)
	if def.Cleans == 0 {
		t.Fatal("default run never cleaned; workload too small")
	}
	if inf.PagesMoved >= def.PagesMoved {
		t.Fatalf("informed moved %d pages, default %d — want strictly fewer", inf.PagesMoved, def.PagesMoved)
	}
	if inf.CleanTime >= def.CleanTime {
		t.Fatalf("informed clean time %v, default %v — want less", inf.CleanTime, def.CleanTime)
	}
}

func TestWearLevelingBoundsSpread(t *testing.T) {
	cfg := smallConfig()
	cfg.Geom.BlocksPerPackage = 32
	cfg.WearAware = true
	cfg.WearDelta = 8
	el := newElement(t, cfg)
	fill(t, el)
	rng := rand.New(rand.NewSource(9))
	// Skewed workload: hammer 10% of the address space. Without
	// migration, blocks holding the cold 90% would never be erased.
	hot := el.LogicalPages() / 10
	if hot == 0 {
		hot = 1
	}
	for i := 0; i < 40*el.LogicalPages(); i++ {
		if _, err := el.WritePage(rng.Intn(hot)); err != nil {
			t.Fatal(err)
		}
	}
	ws := el.Wear()
	if ws.Max-ws.Min > 3*cfg.WearDelta {
		t.Fatalf("wear spread %d exceeds 3x delta %d", ws.Max-ws.Min, cfg.WearDelta)
	}
	if el.Stats().Migrations == 0 {
		t.Fatal("no cold-data migrations under skewed workload")
	}
	if err := el.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWearSpreadWithoutLeveling(t *testing.T) {
	// Control for the test above: with wear-leveling off, the same skewed
	// workload must produce a larger spread.
	cfg := smallConfig()
	cfg.Geom.BlocksPerPackage = 32
	cfg.WearAware = false
	el := newElement(t, cfg)
	fill(t, el)
	rng := rand.New(rand.NewSource(9))
	hot := el.LogicalPages() / 10
	if hot == 0 {
		hot = 1
	}
	for i := 0; i < 40*el.LogicalPages(); i++ {
		if _, err := el.WritePage(rng.Intn(hot)); err != nil {
			t.Fatal(err)
		}
	}
	ws := el.Wear()
	if ws.Max-ws.Min <= 8 {
		t.Fatalf("expected large wear spread without leveling, got %d", ws.Max-ws.Min)
	}
}

func TestCleanOnceOnCleanDevice(t *testing.T) {
	el := newElement(t, smallConfig())
	if _, err := el.CleanOnce(); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("CleanOnce on empty device: %v, want ErrNoSpace", err)
	}
}

func TestFreeFractionDecreasesWithWrites(t *testing.T) {
	el := newElement(t, smallConfig())
	before := el.FreeFraction()
	for i := 0; i < 10; i++ {
		if _, err := el.WritePage(i); err != nil {
			t.Fatal(err)
		}
	}
	if el.FreeFraction() >= before {
		t.Fatal("FreeFraction did not decrease")
	}
}

// Property test: arbitrary interleavings of writes, frees, and cleans
// preserve all structural invariants, in both informed and default modes.
func TestElementInvariantProperty(t *testing.T) {
	for _, informed := range []bool{false, true} {
		informed := informed
		prop := func(ops []uint16) bool {
			cfg := smallConfig()
			cfg.Informed = informed
			cfg.WearAware = true
			cfg.WearDelta = 4
			el, err := NewElement(cfg)
			if err != nil {
				return false
			}
			n := el.LogicalPages()
			for _, op := range ops {
				lpn := int(op>>2) % n
				switch op % 4 {
				case 0, 1:
					if _, err := el.WritePage(lpn); err != nil {
						return false
					}
				case 2:
					if err := el.Free(lpn); err != nil {
						return false
					}
				case 3:
					if _, err := el.ReadPage(lpn); err != nil {
						return false
					}
				}
			}
			return el.CheckInvariants() == nil
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(11))}); err != nil {
			t.Fatalf("informed=%v: %v", informed, err)
		}
	}
}

// Property: the logical view behaves like a map — after any operation
// sequence, a mapped lpn was written and not subsequently freed (informed
// mode).
func TestLogicalViewProperty(t *testing.T) {
	prop := func(ops []uint16) bool {
		cfg := smallConfig()
		cfg.Informed = true
		el, err := NewElement(cfg)
		if err != nil {
			return false
		}
		n := el.LogicalPages()
		model := make(map[int]bool)
		for _, op := range ops {
			lpn := int(op>>1) % n
			if op%2 == 0 {
				if _, err := el.WritePage(lpn); err != nil {
					return false
				}
				model[lpn] = true
			} else {
				if err := el.Free(lpn); err != nil {
					return false
				}
				delete(model, lpn)
			}
		}
		for lpn := 0; lpn < n; lpn++ {
			if el.Mapped(lpn) != model[lpn] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}

func TestWearOutSurfacesError(t *testing.T) {
	cfg := smallConfig()
	cfg.EraseBudget = 4
	el := newElement(t, cfg)
	fill(t, el)
	rng := rand.New(rand.NewSource(3))
	var sawWearOut bool
	for i := 0; i < 100*el.LogicalPages(); i++ {
		if _, err := el.WritePage(rng.Intn(el.LogicalPages())); err != nil {
			if errors.Is(err, flash.ErrWornOut) {
				sawWearOut = true
				break
			}
			t.Fatalf("unexpected error class: %v", err)
		}
	}
	if !sawWearOut {
		t.Fatal("device with 4-cycle endurance never wore out")
	}
}

func TestStatsAccumulate(t *testing.T) {
	el := newElement(t, smallConfig())
	for i := 0; i < 5; i++ {
		if _, err := el.WritePage(i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := el.ReadPage(0); err != nil {
		t.Fatal(err)
	}
	st := el.Stats()
	if st.HostWrites != 5 || st.HostReads != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCostBenefitBeatsGreedyOnSkew is the classic LFS result: with hot
// and cold data mixed, cost-benefit victim selection moves fewer pages
// than greedy because it waits for hot blocks to fill with garbage.
func TestCostBenefitBeatsGreedyOnSkew(t *testing.T) {
	run := func(costBenefit bool) Stats {
		cfg := smallConfig()
		cfg.Geom.BlocksPerPackage = 64
		cfg.CostBenefit = costBenefit
		el, err := NewElement(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for lpn := 0; lpn < el.LogicalPages(); lpn++ {
			if _, err := el.WritePage(lpn); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(99))
		hot := el.LogicalPages() / 10
		for i := 0; i < 20*el.LogicalPages(); i++ {
			lpn := rng.Intn(hot)
			if rng.Intn(10) == 0 {
				lpn = rng.Intn(el.LogicalPages())
			}
			if _, err := el.WritePage(lpn); err != nil {
				t.Fatal(err)
			}
		}
		if err := el.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return el.Stats()
	}
	greedy := run(false)
	cb := run(true)
	if greedy.Cleans == 0 || cb.Cleans == 0 {
		t.Fatal("no cleaning; workload too small")
	}
	// Cost-benefit should not do significantly more relocation work than
	// greedy on this skewed workload (classically it does less; allow a
	// small margin for the small geometry).
	if float64(cb.PagesMoved) > 1.05*float64(greedy.PagesMoved) {
		t.Fatalf("cost-benefit moved %d pages vs greedy %d", cb.PagesMoved, greedy.PagesMoved)
	}
	t.Logf("pages moved: greedy=%d cost-benefit=%d", greedy.PagesMoved, cb.PagesMoved)
}
