package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ossd/internal/sim"
)

func entry(seq uint64, elems ...int) *Entry {
	return &Entry{Elems: elems, Seq: seq}
}

func TestPolicyString(t *testing.T) {
	if FCFS.String() != "FCFS" || SWTF.String() != "SWTF" {
		t.Fatal("policy strings wrong")
	}
}

func TestWait(t *testing.T) {
	busy := []sim.Time{100, 0, 50}
	e := entry(1, 0, 2)
	if w := e.Wait(busy, 40); w != 60 {
		t.Fatalf("Wait = %v, want 60 (max over elements)", w)
	}
	if w := entry(1, 1).Wait(busy, 40); w != 0 {
		t.Fatalf("idle element wait = %v, want 0", w)
	}
	// busyUntil in the past contributes zero, not negative.
	if w := entry(1, 0).Wait(busy, 200); w != 0 {
		t.Fatalf("past-busy wait = %v, want 0", w)
	}
}

func TestPickEmpty(t *testing.T) {
	if Pick(FCFS, nil, []sim.Time{0}, 0) != -1 {
		t.Fatal("empty FCFS pick")
	}
	if Pick(SWTF, nil, []sim.Time{0}, 0) != -1 {
		t.Fatal("empty SWTF pick")
	}
}

func TestFCFSHeadOfLineBlocking(t *testing.T) {
	busy := []sim.Time{100, 0} // element 0 busy, element 1 idle
	pending := []*Entry{entry(1, 0), entry(2, 1)}
	// Head targets the busy element: FCFS must stall even though the
	// second request could run.
	if got := Pick(FCFS, pending, busy, 10); got != -1 {
		t.Fatalf("FCFS picked %d, want -1 (head blocked)", got)
	}
	// SWTF bypasses to the idle element.
	if got := Pick(SWTF, pending, busy, 10); got != 1 {
		t.Fatalf("SWTF picked %d, want 1", got)
	}
}

func TestFCFSInOrder(t *testing.T) {
	busy := []sim.Time{0, 0}
	pending := []*Entry{entry(5, 1), entry(2, 0)}
	if got := Pick(FCFS, pending, busy, 0); got != 1 {
		t.Fatalf("FCFS picked index %d, want 1 (lowest seq)", got)
	}
}

func TestSWTFTieBreaksBySeq(t *testing.T) {
	busy := []sim.Time{0, 0}
	pending := []*Entry{entry(9, 0), entry(3, 1)}
	if got := Pick(SWTF, pending, busy, 0); got != 1 {
		t.Fatalf("SWTF tie pick = %d, want 1 (earlier seq)", got)
	}
}

func TestSWTFAllBusy(t *testing.T) {
	busy := []sim.Time{50, 80}
	pending := []*Entry{entry(1, 0), entry(2, 1)}
	if got := Pick(SWTF, pending, busy, 0); got != -1 {
		t.Fatalf("SWTF dispatched onto busy element: %d", got)
	}
}

func TestMultiElementRequest(t *testing.T) {
	busy := []sim.Time{0, 30, 0}
	all := entry(1, 0, 1, 2)
	single := entry(2, 2)
	pending := []*Entry{all, single}
	// FCFS: head (striped over all) blocked by element 1.
	if got := Pick(FCFS, pending, busy, 0); got != -1 {
		t.Fatalf("FCFS = %d, want -1", got)
	}
	// SWTF: single-element request to idle element 2 wins.
	if got := Pick(SWTF, pending, busy, 0); got != 1 {
		t.Fatalf("SWTF = %d, want 1", got)
	}
	// Once element 1 frees, the striped request (earlier seq, equal wait)
	// wins the tie.
	busy[1] = 0
	if got := Pick(SWTF, pending, busy, 30); got != 0 {
		t.Fatalf("SWTF after drain = %d, want 0", got)
	}
}

// Property: Pick never returns a request whose elements are busy, and
// FCFS only ever returns the minimum-seq entry.
func TestPickProperty(t *testing.T) {
	prop := func(seqs []uint16, busyRaw [4]uint8, nowRaw uint8) bool {
		if len(seqs) == 0 {
			return true
		}
		busy := make([]sim.Time, 4)
		for i, b := range busyRaw {
			busy[i] = sim.Time(b)
		}
		now := sim.Time(nowRaw)
		var pending []*Entry
		seen := map[uint16]bool{}
		for i, s := range seqs {
			if seen[s] {
				continue
			}
			seen[s] = true
			pending = append(pending, entry(uint64(s), i%4))
		}
		if len(pending) == 0 {
			return true
		}
		for _, pol := range []Policy{FCFS, SWTF} {
			got := Pick(pol, pending, busy, now)
			if got == -1 {
				continue
			}
			e := pending[got]
			if e.Wait(busy, now) != 0 {
				return false
			}
			if pol == FCFS {
				for _, o := range pending {
					if o.Seq < e.Seq {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}
