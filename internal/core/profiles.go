package core

import (
	"fmt"

	"ossd/internal/flash"
	"ossd/internal/hdd"
	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/ssd"
)

// Profile is a named device configuration plus the measurement settings
// (request sizes, queue depths) its class of device would be benchmarked
// with. The paper anonymizes its engineering samples as S1slc..S5mlc and
// characterizes them only through Table 2; each profile here is a
// simulator parameterization chosen to reproduce that characterization's
// shape.
type Profile struct {
	// Name matches the paper's device label.
	Name string
	// Description summarizes the device class.
	Description string
	// IsHDD selects the disk model instead of the SSD model.
	IsHDD bool
	// HDD and SSD hold the respective configurations.
	HDD hdd.Config
	SSD ssd.Config
	// SeqReqBytes/RandReqBytes are the benchmark request sizes.
	SeqReqBytes, RandReqBytes int64
	// Per-test queue depths: real devices are benchmarked at the depth
	// their firmware is designed for (e.g. deep NCQ write queues on
	// high-end parts).
	SeqReadDepth, RandReadDepth, SeqWriteDepth, RandWriteDepth int
}

// NewDevice instantiates the profile's device on a fresh engine.
func (p *Profile) NewDevice() (Device, error) {
	if p.IsHDD {
		return NewHDD(p.HDD)
	}
	return NewSSD(p.SSD)
}

// geometry helper: pageSize 4 KB, 64 pages/block.
func geom(blocksPerPackage int) flash.Geometry {
	return flash.Geometry{PageSize: 4096, PagesPerBlock: 64, BlocksPerPackage: blocksPerPackage}
}

// Profiles returns the Table 2 device set. SSD capacities are scaled to
// ~256 MB per device (geometry ratios preserved) so the full suite runs
// in seconds; bandwidth depends on timing and layout, not capacity.
func Profiles() []Profile {
	slc := flash.TimingFor(flash.SLC)
	mlc := flash.TimingFor(flash.MLC)
	return []Profile{
		{
			Name:        "HDD",
			Description: "Seagate Barracuda 7200.11 class disk",
			IsHDD:       true,
			HDD:         hdd.Barracuda7200(),
			SeqReqBytes: 1 << 20, RandReqBytes: 4096,
			SeqReadDepth: 1, RandReadDepth: 1, SeqWriteDepth: 1, RandWriteDepth: 1,
		},
		{
			Name:        "S1slc",
			Description: "high-end SLC: wide interleaving, deep write queues",
			SSD: ssd.Config{
				Elements:      16,
				Geom:          geom(64),
				Timing:        flash.Timing{PageRead: slc.PageRead, PageProgram: slc.PageProgram, BlockErase: slc.BlockErase, BusPerByte: 60 * sim.Nanosecond},
				Overprovision: 0.10,
				Layout:        ssd.Interleaved,
				Scheduler:     sched.SWTF,
				CtrlOverhead:  25 * sim.Microsecond,
				InterfaceMBps: 210,
				GCLow:         0.05, GCCritical: 0.02,
			},
			SeqReqBytes: 1 << 20, RandReqBytes: 4096,
			SeqReadDepth: 1, RandReadDepth: 2, SeqWriteDepth: 1, RandWriteDepth: 8,
		},
		{
			Name:        "S2slc",
			Description: "low-end SLC: 1 MB stripe, no write merging",
			SSD: ssd.Config{
				Elements:      8,
				Geom:          geom(128),
				Timing:        flash.Timing{PageRead: slc.PageRead, PageProgram: slc.PageProgram, BlockErase: slc.BlockErase, BusPerByte: 200 * sim.Nanosecond},
				Overprovision: 0.10,
				Layout:        ssd.FullStripe,
				Scheduler:     sched.SWTF,
				StripeBytes:   1 << 20,
				CtrlOverhead:  100 * sim.Microsecond,
				GCLow:         0.05, GCCritical: 0.02,
			},
			SeqReqBytes: 1 << 20, RandReqBytes: 4096,
			SeqReadDepth: 1, RandReadDepth: 1, SeqWriteDepth: 1, RandWriteDepth: 1,
		},
		{
			Name:        "S3slc",
			Description: "mid-range SLC: 256 KB stripe, fast reads, interface-capped",
			SSD: ssd.Config{
				Elements:      8,
				Geom:          geom(128),
				Timing:        flash.Timing{PageRead: slc.PageRead, PageProgram: slc.PageProgram, BlockErase: slc.BlockErase, BusPerByte: 60 * sim.Nanosecond},
				Overprovision: 0.10,
				Layout:        ssd.FullStripe,
				Scheduler:     sched.SWTF,
				StripeBytes:   256 << 10,
				CtrlOverhead:  15 * sim.Microsecond,
				InterfaceMBps: 76,
				// The real S3 had a 16 MB write cache the paper found
				// "ineffective in masking the write amplifications".
				WriteBufferBytes: 16 << 20,
				GCLow:            0.05, GCCritical: 0.02,
			},
			SeqReqBytes: 256 << 10, RandReqBytes: 4096,
			SeqReadDepth: 1, RandReadDepth: 2, SeqWriteDepth: 1, RandWriteDepth: 1,
		},
		{
			Name:        "S4slc_sim",
			Description: "the paper's simulated SSD: page mapping, seq/rand ratio near 1",
			SSD: ssd.Config{
				Elements:      8,
				Geom:          geom(128),
				Timing:        flash.Timing{PageRead: slc.PageRead, PageProgram: slc.PageProgram, BlockErase: slc.BlockErase, BusPerByte: 25 * sim.Nanosecond},
				Overprovision: 0.10,
				Layout:        ssd.Interleaved,
				Scheduler:     sched.SWTF,
				CtrlOverhead:  10 * sim.Microsecond,
				GCLow:         0.05, GCCritical: 0.02,
			},
			SeqReqBytes: 4096, RandReqBytes: 4096,
			SeqReadDepth: 1, RandReadDepth: 1, SeqWriteDepth: 2, RandWriteDepth: 2,
		},
		{
			Name:        "S5mlc",
			Description: "MLC device: slower writes, modest parallelism",
			SSD: ssd.Config{
				Elements:      8,
				Geom:          geom(128),
				Timing:        flash.Timing{PageRead: mlc.PageRead, PageProgram: mlc.PageProgram, BlockErase: mlc.BlockErase, BusPerByte: 80 * sim.Nanosecond},
				EraseBudget:   flash.EraseBudgetFor(flash.MLC),
				Overprovision: 0.10,
				Layout:        ssd.Interleaved,
				Scheduler:     sched.SWTF,
				CtrlOverhead:  20 * sim.Microsecond,
				InterfaceMBps: 68,
				GCLow:         0.05, GCCritical: 0.02,
			},
			SeqReqBytes: 256 << 10, RandReqBytes: 4096,
			SeqReadDepth: 1, RandReadDepth: 2, SeqWriteDepth: 1, RandWriteDepth: 4,
		},
	}
}

// ProfileByName looks a profile up.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("core: unknown profile %q", name)
}
