// Command ssdsim runs a workload against a simulated device and prints
// performance and cleaning statistics. Devices come from the registry's
// named profiles (see -list); the workload is a trace file (from
// tracegen, streamed from disk — never loaded whole) or a built-in
// synthetic stream.
//
//	ssdsim -profile S4slc_sim -trace pm.trace -limit 100000
//	ssdsim -profile S2slc -ops 20000 -readfrac 0.5 -align
//	ssdsim -profile hdd -workload postmark -tx 5000
//	ssdsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ossd/internal/core"
	"ossd/internal/fault"
	"ossd/internal/ftl"
	"ossd/internal/sim"
	"ossd/internal/ssd"
	"ossd/internal/stats"
	"ossd/internal/trace"
	"ossd/internal/workload"
)

func main() {
	var (
		profile  = flag.String("profile", "S4slc_sim", "device profile name")
		list     = flag.Bool("list", false, "list device profiles and exit")
		traceIn  = flag.String("trace", "", "trace file to replay (default: generated workload)")
		wl       = flag.String("workload", "synthetic", strings.Join(workload.Generators(), "|"))
		ops      = flag.Int("ops", 20000, "generated op count")
		tx       = flag.Int("tx", 5000, "transactions (postmark)")
		readFrac = flag.Float64("readfrac", 0.5, "synthetic read fraction")
		seqProb  = flag.Float64("seq", 0.0, "synthetic sequentiality")
		iaUs     = flag.Int64("ia", 100, "generated mean inter-arrival (us)")
		precond  = flag.Float64("precondition", 0.6, "fraction of the device to fill before the run (0 disables)")
		align    = flag.Bool("align", false, "apply the write merge+align pass before replay")
		stripeKB = flag.Int64("stripe", 32, "alignment stripe in KiB (with -align)")
		informed = flag.Bool("informed", false, "enable informed cleaning (free-page knowledge)")
		scheme   = flag.String("scheme", "", "FTL scheme override: page|block|hybrid")
		limit    = flag.Int("limit", 0, "replay at most this many ops (0 = no cap)")
		seed     = flag.Int64("seed", 1, "random seed")
		shards   = flag.Int("shards", 0, "run shardable flash profiles across this many engines (same results; 0 = single-engine)")
		faultIn  = flag.String("fault", "", "apply a fault plan (JSON file) to the device")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "ssdsim:", err)
		os.Exit(1)
	}

	if *list {
		for _, p := range core.ExtendedProfiles() {
			fmt.Printf("%-10s %-4s %s\n", p.Name, p.Kind, p.Description)
		}
		return
	}

	p, err := core.ProfileByName(*profile)
	if err != nil {
		fail(err)
	}
	var opts []core.Option
	if *informed {
		opts = append(opts, core.WithInformed(true))
	}
	if *shards > 0 {
		opts = append(opts, core.WithShards(*shards))
	} else if *shards < 0 {
		fail(fmt.Errorf("invalid -shards %d", *shards))
	}
	if *faultIn != "" {
		plan, err := fault.Load(*faultIn)
		if err != nil {
			fail(err)
		}
		opts = append(opts, core.WithFault(plan))
	}
	switch *scheme {
	case "":
	case "page":
		opts = append(opts, core.WithScheme(ftl.PageMapped))
	case "block":
		opts = append(opts, core.WithScheme(ftl.BlockMapped))
	case "hybrid":
		opts = append(opts, core.WithScheme(ftl.HybridLog))
	default:
		fail(fmt.Errorf("unknown scheme %q", *scheme))
	}
	dev, err := core.Open(*profile, opts...)
	if err != nil {
		fail(err)
	}

	if *precond > 0 {
		fmt.Fprintf(os.Stderr, "preconditioning %.0f%% of %d MB...\n", *precond*100, dev.LogicalBytes()>>20)
		if err := core.PreconditionFrac(dev, 1<<20, *precond); err != nil {
			fail(err)
		}
	}

	// The workload is a stream end to end: decoded from disk or pulled
	// from the generator, optionally aligned, capped, and time-shifted —
	// replay memory is constant no matter how long the trace is.
	var stream trace.Stream
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if strings.HasSuffix(strings.ToLower(*traceIn), ".csv") {
			// Published block traces (MSR-Cambridge/SNIA CSV) replay
			// directly; distinct hostnames become tenant classes, so the
			// per-tenant breakdown below shows each server's share.
			stream = trace.DecodeCSV(f, trace.MSRLayout())
		} else {
			stream = trace.NewDecoder(f)
		}
	} else {
		// Any registered generator, targeted at 60% of the device's
		// address space (the iozone file defaults to a quarter of it).
		space := int64(float64(dev.LogicalBytes()) * 0.6)
		// ReqBytes stays unset so each generator keeps its own default
		// (4 KiB synthetic ops, 1 MiB seqwrites units).
		stream, err = workload.NewStream(*wl, workload.GenParams{
			Ops:                *ops,
			Transactions:       *tx,
			CapacityBytes:      space,
			ReadFrac:           *readFrac,
			SeqProb:            *seqProb,
			FileBytes:          space / 4,
			MeanInterarrivalUs: *iaUs,
			Seed:               *seed,
		})
		if err != nil {
			fail(err)
		}
	}
	if *align {
		stream, err = trace.AlignStream(stream, *stripeKB<<10, trace.AlignOptions{
			MaxGap:      6 * sim.Millisecond,
			ReadBarrier: true,
		})
		if err != nil {
			fail(err)
		}
	}
	if *limit > 0 {
		stream = trace.Limit(stream, *limit)
	}
	// Shift trace timestamps past the preconditioning window.
	stream = trace.Shift(stream, dev.Engine().Now())

	start := dev.Engine().Now()
	before := dev.Metrics()
	if err := dev.Drive(stream); err != nil {
		fail(err)
	}
	elapsed := (dev.Engine().Now() - start).Seconds()
	after := dev.Metrics()

	fmt.Printf("device        %s (%s)\n", p.Name, p.Description)
	fmt.Printf("ops           %d completed in %.3fs simulated\n", after.Completed-before.Completed, elapsed)
	fmt.Printf("read          %.1f MB at %.1f MB/s\n",
		float64(after.BytesRead-before.BytesRead)/1e6, stats.Bandwidth(after.BytesRead-before.BytesRead, elapsed))
	fmt.Printf("write         %.1f MB at %.1f MB/s\n",
		float64(after.BytesWritten-before.BytesWritten)/1e6, stats.Bandwidth(after.BytesWritten-before.BytesWritten, elapsed))
	fmt.Printf("mean response read %.3f ms, write %.3f ms (cumulative incl. precondition)\n", after.MeanReadMs, after.MeanWriteMs)
	fmt.Printf("latency       read p50/p95/p99 %.3f/%.3f/%.3f ms, write p50/p95/p99 %.3f/%.3f/%.3f ms\n",
		after.P50ReadMs, after.P95ReadMs, after.P99ReadMs, after.P50WriteMs, after.P95WriteMs, after.P99WriteMs)
	for _, ts := range after.Tenants {
		fmt.Printf("tenant %-6d %d reads / %d writes, %.1f MB read / %.1f MB written, p99 read %.3f ms, write %.3f ms\n",
			ts.Tenant, ts.Reads, ts.Writes,
			float64(ts.BytesRead)/1e6, float64(ts.BytesWritten)/1e6,
			ts.P99ReadMs, ts.P99WriteMs)
	}
	if after.FaultsInjected > 0 || after.RetiredBlocks > 0 {
		fmt.Printf("faults        %d injected, %d retried; %d blocks retired, %d pages remapped, %d failed ops\n",
			after.FaultsInjected, after.FaultRetries, after.RetiredBlocks, after.RemappedPages, after.Errors)
	}

	var raw *ssd.Device
	if s, ok := dev.(*core.SSD); ok {
		raw = s.Raw
	} else if o, ok := dev.(*core.OSD); ok {
		raw = o.Raw
		st := o.Store.Stats()
		fmt.Printf("object store  %.1f MB written, %.1f MB read, %.1f MB freed through extents\n",
			float64(st.BytesWritten)/1e6, float64(st.BytesRead)/1e6, float64(st.FreedBytes)/1e6)
	}
	if raw != nil {
		g := raw.GCStats()
		m := raw.Metrics()
		fmt.Printf("cleaning      %d passes, %d pages moved, %v total, %d erases\n",
			g.Cleans, g.PagesMoved, g.CleanTime, g.GCErases)
		fmt.Printf("frees         %d seen, %d applied\n", g.FreesSeen, g.FreesApplied)
		fmt.Printf("write amp     %.2fx\n", raw.WriteAmplification())
		fmt.Printf("bg cleans     %d (device-initiated)\n", m.BackgroundCleans)
		var wmin, wmax int
		for i, el := range raw.Elements() {
			w := el.Wear()
			if i == 0 || w.Min < wmin {
				wmin = w.Min
			}
			if w.Max > wmax {
				wmax = w.Max
			}
		}
		fmt.Printf("wear          erase counts %d..%d across blocks\n", wmin, wmax)
	}
	if h, ok := dev.(*core.HDD); ok {
		m := h.Raw.Metrics()
		fmt.Printf("seeks         %d, cache hits %d\n", m.Seeks, m.CacheHits)
	}
}
