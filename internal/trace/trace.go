// Package trace defines the block-level trace representation shared by
// the workload generators, the devices, and the experiment harness: timed
// read, write, and free (deallocation) operations over a byte address
// space. It also implements the paper's §3.4 write merging-and-alignment
// pass and a plain-text codec so traces can be saved and replayed with
// cmd/tracegen and cmd/ssdsim.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ossd/internal/sim"
)

// Kind is the operation type.
type Kind uint8

const (
	// Read transfers data from the device.
	Read Kind = iota
	// Write transfers data to the device.
	Write
	// Free tells the device a range no longer holds live data (a file
	// deletion, the TRIM/OSD-delete signal of §3.5).
	Free
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "R"
	case Write:
		return "W"
	case Free:
		return "F"
	default:
		return "?"
	}
}

// Op is one trace record.
type Op struct {
	// At is the arrival time.
	At sim.Time
	// Kind is the operation type.
	Kind Kind
	// Offset and Size delimit the byte range.
	Offset, Size int64
	// Priority marks a foreground (high-priority) request (§3.6).
	Priority bool
}

// End returns the first byte past the operation's range.
func (o Op) End() int64 { return o.Offset + o.Size }

// overlaps reports whether two byte ranges intersect.
func (o Op) overlaps(off, size int64) bool {
	return o.Offset < off+size && off < o.End()
}

// Validate reports structural problems with an op.
func (o Op) Validate() error {
	if o.Offset < 0 || o.Size <= 0 {
		return fmt.Errorf("trace: bad range [%d, +%d)", o.Offset, o.Size)
	}
	if o.At < 0 {
		return fmt.Errorf("trace: negative timestamp %d", o.At)
	}
	if o.Kind > Free {
		return fmt.Errorf("trace: unknown kind %d", o.Kind)
	}
	return nil
}

// Stats summarizes a trace.
type Stats struct {
	Ops         int
	Reads       int
	Writes      int
	Frees       int
	ReadBytes   int64
	WriteBytes  int64
	FreedBytes  int64
	Duration    sim.Time
	MaxOffset   int64
	PriorityOps int
}

// Summarize scans a trace.
func Summarize(ops []Op) Stats {
	var s Stats
	s.Ops = len(ops)
	for _, o := range ops {
		switch o.Kind {
		case Read:
			s.Reads++
			s.ReadBytes += o.Size
		case Write:
			s.Writes++
			s.WriteBytes += o.Size
		case Free:
			s.Frees++
			s.FreedBytes += o.Size
		}
		if o.Priority {
			s.PriorityOps++
		}
		if o.At > s.Duration {
			s.Duration = o.At
		}
		if o.End() > s.MaxOffset {
			s.MaxOffset = o.End()
		}
	}
	return s
}

// Encode writes ops in the text format, one per line:
//
//	<at_ns> <R|W|F> <offset> <size> [P]
func Encode(w io.Writer, ops []Op) error {
	bw := bufio.NewWriter(w)
	for _, o := range ops {
		if err := o.Validate(); err != nil {
			return err
		}
		pri := ""
		if o.Priority {
			pri = " P"
		}
		if _, err := fmt.Fprintf(bw, "%d %s %d %d%s\n", int64(o.At), o.Kind, o.Offset, o.Size, pri); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode parses the text format produced by Encode. Blank lines and lines
// starting with '#' are skipped.
func Decode(r io.Reader) ([]Op, error) {
	var ops []Op
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		if len(f) < 4 || len(f) > 5 {
			return nil, fmt.Errorf("trace: line %d: want 4 or 5 fields, got %d", line, len(f))
		}
		at, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad timestamp: %v", line, err)
		}
		var kind Kind
		switch f[1] {
		case "R":
			kind = Read
		case "W":
			kind = Write
		case "F":
			kind = Free
		default:
			return nil, fmt.Errorf("trace: line %d: bad kind %q", line, f[1])
		}
		off, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad offset: %v", line, err)
		}
		size, err := strconv.ParseInt(f[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad size: %v", line, err)
		}
		op := Op{At: sim.Time(at), Kind: kind, Offset: off, Size: size}
		if len(f) == 5 {
			if f[4] != "P" {
				return nil, fmt.Errorf("trace: line %d: bad flag %q", line, f[4])
			}
			op.Priority = true
		}
		if err := op.Validate(); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}
