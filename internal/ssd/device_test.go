package ssd

import (
	"math/rand"
	"testing"

	"ossd/internal/flash"
	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/trace"
)

// testConfig builds a small interleaved device: 4 elements, 8 pages per
// block, 32 blocks per element (4 MB raw).
func testConfig() Config {
	return Config{
		Elements:      4,
		Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 8, BlocksPerPackage: 32},
		Overprovision: 0.15,
		Layout:        Interleaved,
		// The tiny test geometry (8 pages/block, 32 blocks) makes the
		// FTL's 2-block forced-clean slack 6.25% of capacity, so the
		// watermarks sit above it; production geometries use the paper's
		// 5%/2%.
		GCLow:      0.12,
		GCCritical: 0.03,
	}
}

// stripeConfig builds a small full-stripe device: 4 elements, 16 KB
// stripe (one page per element per stripe).
func stripeConfig() Config {
	c := testConfig()
	c.Layout = FullStripe
	c.StripeBytes = 4 * 4096
	return c
}

func newDevice(t *testing.T, cfg Config) (*sim.Engine, *Device) {
	t.Helper()
	eng := sim.NewEngine()
	d, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, d
}

func TestConfigValidate(t *testing.T) {
	c := testConfig()
	c.Elements = 0
	if _, err := New(sim.NewEngine(), c); err == nil {
		t.Error("accepted zero elements")
	}
	c = stripeConfig()
	c.StripeBytes = 4096 // not a multiple of elements*page
	if _, err := New(sim.NewEngine(), c); err == nil {
		t.Error("accepted bad stripe size")
	}
	c = testConfig()
	c.GCCritical = 0.5
	c.GCLow = 0.1
	if _, err := New(sim.NewEngine(), c); err == nil {
		t.Error("accepted critical above low")
	}
	c = testConfig()
	c.GCLow = 1.5
	if _, err := New(sim.NewEngine(), c); err == nil {
		t.Error("accepted watermark above 1")
	}
}

func TestLayoutString(t *testing.T) {
	if FullStripe.String() != "full-stripe" || Interleaved.String() != "interleaved" {
		t.Fatal("layout strings")
	}
}

func TestLogicalBytes(t *testing.T) {
	_, d := newDevice(t, testConfig())
	// 4 elements * 217 logical pages * 4096.
	want := int64(4) * 217 * 4096
	if d.LogicalBytes() != want {
		t.Fatalf("LogicalBytes = %d, want %d", d.LogicalBytes(), want)
	}
	_, ds := newDevice(t, stripeConfig())
	// Stripes per element: 217 pages / 1 page-per-chunk = 217 stripes.
	if ds.LogicalBytes() != 217*4*4096 {
		t.Fatalf("stripe LogicalBytes = %d", ds.LogicalBytes())
	}
}

func TestSubmitValidation(t *testing.T) {
	_, d := newDevice(t, testConfig())
	if err := d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 0}, nil); err == nil {
		t.Error("accepted zero-size op")
	}
	if err := d.Submit(trace.Op{Kind: trace.Write, Offset: d.LogicalBytes(), Size: 4096}, nil); err == nil {
		t.Error("accepted op beyond capacity")
	}
}

func TestSingleWriteCompletes(t *testing.T) {
	eng, d := newDevice(t, testConfig())
	var done *Request
	if err := d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 4096}, func(r *Request) { done = r }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if done == nil {
		t.Fatal("write never completed")
	}
	if done.Err != nil {
		t.Fatal(done.Err)
	}
	// One page program: 200us + 102.4us bus.
	want := 200*sim.Microsecond + 4096*25*sim.Nanosecond
	if done.Response() != want {
		t.Fatalf("response = %v, want %v", done.Response(), want)
	}
	m := d.Metrics()
	if m.Completed != 1 || m.BytesWritten != 4096 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestParallelElementsOverlap(t *testing.T) {
	// Two single-page writes to different elements must overlap in time;
	// two writes to the same element must serialize.
	eng, d := newDevice(t, testConfig())
	var r1, r2, r3 *Request
	// Pages 0 and 1 land on elements 0 and 1 (interleaved).
	d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 4096}, func(r *Request) { r1 = r })
	d.Submit(trace.Op{Kind: trace.Write, Offset: 4096, Size: 4096}, func(r *Request) { r2 = r })
	// Page 4 is element 0 again.
	d.Submit(trace.Op{Kind: trace.Write, Offset: 4 * 4096, Size: 4096}, func(r *Request) { r3 = r })
	eng.Run()
	if r1.Done != r2.Done {
		t.Fatalf("parallel writes did not overlap: %v vs %v", r1.Done, r2.Done)
	}
	if r3.Done <= r1.Done {
		t.Fatalf("same-element write did not serialize: %v vs %v", r3.Done, r1.Done)
	}
}

func TestMultiPageRequestSpansElements(t *testing.T) {
	// A 16 KB write over 4 elements takes one page time (plus overhead),
	// not four.
	eng, d := newDevice(t, testConfig())
	var r *Request
	d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 4 * 4096}, func(x *Request) { r = x })
	eng.Run()
	onePage := 200*sim.Microsecond + 4096*25*sim.Nanosecond
	if r.Response() != onePage {
		t.Fatalf("striped write response = %v, want %v", r.Response(), onePage)
	}
}

func TestReadAfterWrite(t *testing.T) {
	eng, d := newDevice(t, testConfig())
	d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 8192}, nil)
	var rd *Request
	d.Submit(trace.Op{Kind: trace.Read, Offset: 0, Size: 8192}, func(r *Request) { rd = r })
	eng.Run()
	if rd == nil || rd.Err != nil {
		t.Fatalf("read failed: %+v", rd)
	}
	m := d.Metrics()
	if m.BytesRead != 8192 || m.ReadResp.N() != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestFullStripeWriteAmplification(t *testing.T) {
	// On a full-stripe device, a 4 KB write must rewrite the whole 16 KB
	// stripe (4 pages), and after the stripe is mapped, also read back
	// the 3 uncovered pages.
	eng, d := newDevice(t, stripeConfig())
	d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 4 * 4096}, nil) // precondition stripe 0
	d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 4096}, nil)     // partial write
	eng.Run()
	g := d.GCStats()
	// 4 pages precondition + 4 pages RMW = 8 page writes for 20 KB host.
	if g.HostPageWrites != 8 {
		t.Fatalf("page writes = %d, want 8", g.HostPageWrites)
	}
	// RMW read the 3 uncovered mapped pages.
	if g.HostPageReads != 3 {
		t.Fatalf("page reads = %d, want 3", g.HostPageReads)
	}
	if wa := d.WriteAmplification(); wa <= 1 {
		t.Fatalf("write amplification = %v, want > 1", wa)
	}
}

func TestFullStripeAlignedWriteNoRMW(t *testing.T) {
	eng, d := newDevice(t, stripeConfig())
	d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 4 * 4096}, nil)
	d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 4 * 4096}, nil) // aligned overwrite
	eng.Run()
	if g := d.GCStats(); g.HostPageReads != 0 {
		t.Fatalf("aligned overwrite read %d pages, want 0", g.HostPageReads)
	}
}

func TestSubPageWriteRMWInterleaved(t *testing.T) {
	eng, d := newDevice(t, testConfig())
	d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 4096}, nil)
	d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 512}, nil) // sub-page rewrite
	eng.Run()
	g := d.GCStats()
	if g.HostPageReads != 1 {
		t.Fatalf("sub-page RMW reads = %d, want 1", g.HostPageReads)
	}
	if g.HostPageWrites != 2 {
		t.Fatalf("page writes = %d, want 2", g.HostPageWrites)
	}
}

func TestFreeAppliesImmediately(t *testing.T) {
	cfg := testConfig()
	cfg.Informed = true
	eng, d := newDevice(t, cfg)
	d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 16 * 4096}, nil)
	eng.Run()
	var fr *Request
	d.Submit(trace.Op{Kind: trace.Free, Offset: 0, Size: 16 * 4096}, func(r *Request) { fr = r })
	if fr == nil || fr.Response() != 0 {
		t.Fatal("free not applied immediately")
	}
	g := d.GCStats()
	if g.FreesApplied != 16 {
		t.Fatalf("frees applied = %d, want 16", g.FreesApplied)
	}
}

func TestFreePartialUnitIgnored(t *testing.T) {
	cfg := testConfig()
	cfg.Informed = true
	eng, d := newDevice(t, cfg)
	d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 8192}, nil)
	eng.Run()
	// Free covering half of page 0 and half of page 1: no full page.
	d.Submit(trace.Op{Kind: trace.Free, Offset: 2048, Size: 4096}, nil)
	if g := d.GCStats(); g.FreesApplied != 0 {
		t.Fatalf("partial free applied %d pages", g.FreesApplied)
	}
}

func TestSustainedLoadTriggersDeviceCleaning(t *testing.T) {
	cfg := testConfig()
	eng, d := newDevice(t, cfg)
	rng := rand.New(rand.NewSource(21))
	cap := d.LogicalBytes()
	n := int(cap / 4096)
	// Fill once, then overwrite randomly 4x capacity.
	i := 0
	gen := func(k int) (trace.Op, bool) {
		if i >= 5*n {
			return trace.Op{}, false
		}
		var off int64
		if i < n {
			off = int64(i) * 4096
		} else {
			off = int64(rng.Intn(n)) * 4096
		}
		i++
		return trace.Op{Kind: trace.Write, Offset: off, Size: 4096}, true
	}
	if err := d.ClosedLoop(1, gen); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	m := d.Metrics()
	if m.Completed != int64(5*n) {
		t.Fatalf("completed %d of %d", m.Completed, 5*n)
	}
	if m.BackgroundCleans == 0 {
		t.Fatal("device never initiated cleaning under sustained load")
	}
	for _, el := range d.Elements() {
		if err := el.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPlayRespectsTimestamps(t *testing.T) {
	eng, d := newDevice(t, testConfig())
	ops := []trace.Op{
		{At: 0, Kind: trace.Write, Offset: 0, Size: 4096},
		{At: 10 * sim.Millisecond, Kind: trace.Write, Offset: 4096, Size: 4096},
	}
	if err := d.Play(ops); err != nil {
		t.Fatal(err)
	}
	if eng.Now() < 10*sim.Millisecond {
		t.Fatalf("engine time %v, want >= 10ms", eng.Now())
	}
	if d.Metrics().Completed != 2 {
		t.Fatal("not all ops completed")
	}
}

func TestFCFSHeadOfLineVsSWTF(t *testing.T) {
	// Construct the §3.2 scenario: element 0 busy with a long run of
	// requests while element 1 sits idle; a request to element 1 arrives
	// behind them. SWTF must finish it sooner than FCFS.
	run := func(policy sched.Policy) sim.Time {
		cfg := testConfig()
		cfg.Scheduler = policy
		eng, d := newDevice(t, cfg)
		// Requests to pages 0, 4, 8 (all element 0), then page 1
		// (element 1).
		for _, p := range []int64{0, 4, 8} {
			d.Submit(trace.Op{Kind: trace.Write, Offset: p * 4096, Size: 4096}, nil)
		}
		var last *Request
		d.Submit(trace.Op{Kind: trace.Write, Offset: 1 * 4096, Size: 4096}, func(r *Request) { last = r })
		eng.Run()
		return last.Response()
	}
	fcfs := run(sched.FCFS)
	swtf := run(sched.SWTF)
	if swtf >= fcfs {
		t.Fatalf("SWTF response %v not better than FCFS %v", swtf, fcfs)
	}
}

func TestPriorityMetricsSplit(t *testing.T) {
	eng, d := newDevice(t, testConfig())
	d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 4096, Priority: true}, nil)
	d.Submit(trace.Op{Kind: trace.Write, Offset: 4096, Size: 4096}, nil)
	eng.Run()
	m := d.Metrics()
	if m.PriResp.N() != 1 || m.BgResp.N() != 1 {
		t.Fatalf("priority split: pri=%d bg=%d", m.PriResp.N(), m.BgResp.N())
	}
}

func TestQueueDepth(t *testing.T) {
	eng, d := newDevice(t, testConfig())
	// Saturate element 0 so later same-element requests queue.
	for i := 0; i < 3; i++ {
		d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 4096}, nil)
	}
	if d.QueueDepth() == 0 {
		t.Fatal("queue empty while element busy")
	}
	eng.Run()
	if d.QueueDepth() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestWearOutSurfacesAsRequestError(t *testing.T) {
	cfg := testConfig()
	cfg.EraseBudget = 2
	eng, d := newDevice(t, cfg)
	rng := rand.New(rand.NewSource(5))
	n := int(d.LogicalBytes() / 4096)
	sawErr := false
	i := 0
	gen := func(int) (trace.Op, bool) {
		if i >= 50*n || sawErr {
			return trace.Op{}, false
		}
		i++
		return trace.Op{Kind: trace.Write, Offset: int64(rng.Intn(n)) * 4096, Size: 4096}, true
	}
	d.ClosedLoop(1, func(k int) (trace.Op, bool) {
		op, ok := gen(k)
		return op, ok
	})
	eng.Run()
	if d.Metrics().Errors == 0 {
		t.Skip("workload did not exhaust 2-cycle budget; acceptable for tiny device")
	}
}
