package ftl

import (
	"fmt"
	"sort"

	"ossd/internal/flash"
	"ossd/internal/sim"
)

// Hybrid is a FAST-style log-block FTL: data blocks are block-mapped (so
// the mapping table stays small), and a small pool of page-mapped log
// blocks absorbs writes that cannot extend a data block in place. When
// the pool fills, the oldest log block is merged: every logical block
// with copies in it is rebuilt into a fresh physical block. Hybrid FTLs
// sit between the page-mapped and block-mapped extremes on random-write
// cost, which is exactly where most 2009-era consumer SSDs lived.
type Hybrid struct {
	cfg Config
	pkg *flash.Package

	ppb     int
	logical int

	dataMap []int32 // lbn -> physical data block, -1
	// logMap holds the newest out-of-place copy per lpn.
	logMap map[int]logLoc
	// logBlocks is the allocation order of live log blocks (oldest
	// first); owners[i][page] records which lpn each slot holds.
	logBlocks []int
	owners    map[int][]int32

	// written marks host-stored logical pages (merge padding must not
	// read back as data); dead marks informed-freed pages.
	written, dead []bool

	maxLog     int
	freeBlocks []int
	stats      Stats
}

type logLoc struct {
	block int
	page  int
}

// NewHybrid builds a hybrid log-block FTL. The log pool is the
// over-provisioned share of blocks (minimum 2, plus one merge spare).
func NewHybrid(cfg Config) (*Hybrid, error) {
	if err := cfg.Geom.Validate(); err != nil {
		return nil, err
	}
	if cfg.EraseBudget == 0 {
		cfg.EraseBudget = flash.EraseBudgetFor(flash.SLC)
	}
	if cfg.Geom.BlocksPerPackage < 6 {
		return nil, fmt.Errorf("ftl: hybrid needs at least 6 blocks, got %d", cfg.Geom.BlocksPerPackage)
	}
	pkg, err := flash.NewPackage(cfg.Geom, cfg.Timing, cfg.EraseBudget)
	if err != nil {
		return nil, err
	}
	maxLog := int(float64(cfg.Geom.BlocksPerPackage) * cfg.Overprovision)
	if maxLog < 2 {
		maxLog = 2
	}
	logicalBlocks := cfg.Geom.BlocksPerPackage - maxLog - 1 // one merge spare
	if logicalBlocks < 1 {
		return nil, fmt.Errorf("ftl: hybrid geometry too small")
	}
	h := &Hybrid{
		cfg:     cfg,
		pkg:     pkg,
		ppb:     cfg.Geom.PagesPerBlock,
		logical: logicalBlocks * cfg.Geom.PagesPerBlock,
		dataMap: make([]int32, logicalBlocks),
		logMap:  make(map[int]logLoc),
		owners:  make(map[int][]int32),
		written: make([]bool, logicalBlocks*cfg.Geom.PagesPerBlock),
		dead:    make([]bool, logicalBlocks*cfg.Geom.PagesPerBlock),
		maxLog:  maxLog,
	}
	for i := range h.dataMap {
		h.dataMap[i] = -1
	}
	for pb := cfg.Geom.BlocksPerPackage - 1; pb >= 0; pb-- {
		h.freeBlocks = append(h.freeBlocks, pb)
	}
	return h, nil
}

// LogicalPages implements Backend.
func (h *Hybrid) LogicalPages() int { return h.logical }

// PageSize implements Backend.
func (h *Hybrid) PageSize() int { return h.cfg.Geom.PageSize }

// FreeFraction implements Backend.
func (h *Hybrid) FreeFraction() float64 {
	free := len(h.freeBlocks) * h.ppb
	if n := len(h.logBlocks); n > 0 {
		cur := h.logBlocks[n-1]
		free += h.ppb - h.pkg.WritePointer(cur)
	}
	return float64(free) / float64(h.cfg.Geom.Pages())
}

// Mapped implements Backend.
func (h *Hybrid) Mapped(lpn int) bool {
	return lpn >= 0 && lpn < h.logical && h.written[lpn] && !h.dead[lpn]
}

// Stats implements Backend.
func (h *Hybrid) Stats() Stats { return h.stats }

// Wear implements Backend.
func (h *Hybrid) Wear() flash.WearStats { return h.pkg.Wear() }

// CanClean reports whether evicting a log block could reclaim space.
func (h *Hybrid) CanClean() bool { return len(h.logBlocks) > 1 }

// CleanOnce evicts the oldest log block.
func (h *Hybrid) CleanOnce() (sim.Time, error) {
	if len(h.logBlocks) == 0 {
		return 0, ErrNoSpace
	}
	return h.evictOldest()
}

func (h *Hybrid) checkLPN(lpn int) error {
	if lpn < 0 || lpn >= h.logical {
		return fmt.Errorf("%w: lpn %d of %d", ErrOutOfRange, lpn, h.logical)
	}
	return nil
}

func (h *Hybrid) allocBlock() (int, error) {
	if len(h.freeBlocks) == 0 {
		return 0, ErrNoSpace
	}
	pb := h.freeBlocks[0]
	h.freeBlocks = h.freeBlocks[1:]
	return pb, nil
}

// ReadPage implements Backend: the newest copy wins (log over data).
func (h *Hybrid) ReadPage(lpn int) (sim.Time, error) {
	if err := h.checkLPN(lpn); err != nil {
		return 0, err
	}
	h.stats.HostReads++
	if !h.Mapped(lpn) {
		return sim.Time(h.cfg.Geom.PageSize) * h.cfg.Timing.BusPerByte, nil
	}
	if loc, ok := h.logMap[lpn]; ok {
		return h.pkg.ReadPage(loc.block, loc.page)
	}
	lbn, off := lpn/h.ppb, lpn%h.ppb
	pb := h.dataMap[lbn]
	if pb == -1 || off >= h.pkg.WritePointer(int(pb)) {
		return sim.Time(h.cfg.Geom.PageSize) * h.cfg.Timing.BusPerByte, nil
	}
	return h.pkg.ReadPage(int(pb), off)
}

// WritePage implements Backend.
func (h *Hybrid) WritePage(lpn int) (sim.Time, error) {
	if err := h.checkLPN(lpn); err != nil {
		return 0, err
	}
	h.stats.HostWrites++
	h.written[lpn] = true
	h.dead[lpn] = false
	lbn, off := lpn/h.ppb, lpn%h.ppb
	pb := h.dataMap[lbn]
	// In-place sequential extension of the data block, but only when no
	// newer log copy would be shadowed.
	if _, logged := h.logMap[lpn]; !logged {
		if pb != -1 && h.pkg.WritePointer(int(pb)) == off {
			return h.pkg.ProgramPage(int(pb), off)
		}
		if pb == -1 && off == 0 {
			npb, err := h.allocBlock()
			if err != nil {
				return 0, err
			}
			d, err := h.pkg.ProgramPage(npb, 0)
			if err != nil {
				return d, err
			}
			h.dataMap[lbn] = int32(npb)
			return d, nil
		}
	}
	return h.logWrite(lpn)
}

// logWrite appends the page to the current log block, evicting the
// oldest log block first if the pool is exhausted.
func (h *Hybrid) logWrite(lpn int) (sim.Time, error) {
	var total sim.Time
	cur := -1
	if n := len(h.logBlocks); n > 0 {
		if c := h.logBlocks[n-1]; h.pkg.WritePointer(c) < h.ppb {
			cur = c
		}
	}
	if cur == -1 {
		if len(h.logBlocks) >= h.maxLog {
			d, err := h.evictOldest()
			total += d
			if err != nil {
				return total, err
			}
		}
		npb, err := h.allocBlock()
		if err != nil {
			return total, err
		}
		h.logBlocks = append(h.logBlocks, npb)
		own := make([]int32, h.ppb)
		for i := range own {
			own[i] = -1
		}
		h.owners[npb] = own
		cur = npb
	}
	page := h.pkg.WritePointer(cur)
	d, err := h.pkg.ProgramPage(cur, page)
	total += d
	if err != nil {
		return total, err
	}
	// Supersede any older log copy.
	h.logMap[lpn] = logLoc{block: cur, page: page}
	h.owners[cur][page] = int32(lpn)
	return total, nil
}

// evictOldest merges the oldest log block: every logical block with a
// copy in it is rebuilt (full merge), consuming all log copies of those
// blocks wherever they live. All work is charged as cleaning.
func (h *Hybrid) evictOldest() (sim.Time, error) {
	victim := h.logBlocks[0]
	var total sim.Time
	lbns := map[int]bool{}
	for page, lpn := range h.owners[victim] {
		if lpn == -1 {
			continue
		}
		// Only pages whose mapping still points here are live.
		if loc, ok := h.logMap[int(lpn)]; ok && loc.block == victim && loc.page == page {
			lbns[int(lpn)/h.ppb] = true
		}
	}
	// Deterministic merge order: map iteration order would make physical
	// block placement (and therefore long-run wear) vary between runs.
	order := make([]int, 0, len(lbns))
	for lbn := range lbns {
		order = append(order, lbn)
	}
	sort.Ints(order)
	for _, lbn := range order {
		d, err := h.mergeLBN(lbn)
		total += d
		if err != nil {
			return total, err
		}
	}
	d, err := h.pkg.EraseBlock(victim)
	total += d
	if err != nil {
		return total, err
	}
	delete(h.owners, victim)
	h.logBlocks = h.logBlocks[1:]
	h.freeBlocks = append(h.freeBlocks, victim)
	h.stats.Cleans++
	h.stats.GCErases++
	h.stats.CleanTime += total
	return total, nil
}

// mergeLBN rebuilds one logical block from its data block and all log
// copies into a fresh physical block.
func (h *Hybrid) mergeLBN(lbn int) (sim.Time, error) {
	var total sim.Time
	old := h.dataMap[lbn]
	oldWP := 0
	if old != -1 {
		oldWP = h.pkg.WritePointer(int(old))
	}
	// Highest page that holds data from either source.
	top := oldWP
	for k := 0; k < h.ppb; k++ {
		if _, ok := h.logMap[lbn*h.ppb+k]; ok && k+1 > top {
			top = k + 1
		}
	}
	if top == 0 {
		return 0, nil
	}
	npb, err := h.allocBlock()
	if err != nil {
		return 0, err
	}
	for k := 0; k < top; k++ {
		lpn := lbn*h.ppb + k
		src := logLoc{block: -1}
		if loc, ok := h.logMap[lpn]; ok {
			src = loc
		} else if old != -1 && k < oldWP {
			src = logLoc{block: int(old), page: k}
		}
		if src.block != -1 && h.written[lpn] && !h.dead[lpn] {
			d, err := h.pkg.ReadPage(src.block, src.page)
			total += d
			if err != nil {
				return total, err
			}
			h.stats.PagesMoved++
		}
		d, err := h.pkg.ProgramPage(npb, k)
		total += d
		if err != nil {
			return total, err
		}
		delete(h.logMap, lpn)
	}
	if old != -1 {
		d, err := h.pkg.EraseBlock(int(old))
		total += d
		if err != nil {
			return total, err
		}
		h.freeBlocks = append(h.freeBlocks, int(old))
		h.stats.GCErases++
	}
	h.dataMap[lbn] = int32(npb)
	return total, nil
}

// Free implements Backend: informed mode drops log copies and marks data
// pages dead so merges skip them.
func (h *Hybrid) Free(lpn int) error {
	if err := h.checkLPN(lpn); err != nil {
		return err
	}
	h.stats.FreesSeen++
	if !h.cfg.Informed {
		return nil
	}
	if !h.Mapped(lpn) {
		return nil
	}
	h.dead[lpn] = true
	delete(h.logMap, lpn)
	h.stats.FreesApplied++
	return nil
}

// CheckInvariants implements Backend.
func (h *Hybrid) CheckInvariants() error {
	used := map[int]string{}
	claim := func(pb int, role string) error {
		if prev, ok := used[pb]; ok {
			return fmt.Errorf("block %d is both %s and %s", pb, prev, role)
		}
		used[pb] = role
		return nil
	}
	for lbn, pb := range h.dataMap {
		if pb == -1 {
			continue
		}
		if err := claim(int(pb), fmt.Sprintf("data(%d)", lbn)); err != nil {
			return err
		}
	}
	for _, pb := range h.logBlocks {
		if err := claim(pb, "log"); err != nil {
			return err
		}
		if h.owners[pb] == nil {
			return fmt.Errorf("log block %d has no owner table", pb)
		}
	}
	for _, pb := range h.freeBlocks {
		if err := claim(pb, "free"); err != nil {
			return err
		}
		if h.pkg.WritePointer(pb) != 0 {
			return fmt.Errorf("free block %d not erased", pb)
		}
	}
	if len(h.logBlocks) > h.maxLog {
		return fmt.Errorf("log pool %d exceeds limit %d", len(h.logBlocks), h.maxLog)
	}
	for lpn, loc := range h.logMap {
		own := h.owners[loc.block]
		if own == nil {
			return fmt.Errorf("lpn %d maps to non-log block %d", lpn, loc.block)
		}
		if own[loc.page] != int32(lpn) {
			return fmt.Errorf("lpn %d log slot owned by %d", lpn, own[loc.page])
		}
		if loc.page >= h.pkg.WritePointer(loc.block) {
			return fmt.Errorf("lpn %d log copy beyond write pointer", lpn)
		}
	}
	return nil
}
