package simsvc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ossd/internal/core"
	"ossd/internal/experiments"
	"ossd/internal/workload"
)

// smallSpec is a job small enough for unit tests but large enough to
// cross several telemetry sample boundaries. Arrivals are paced at a
// rate the base SSD sustains (50 µs mean); storms beyond that rate are
// exercised separately via Options.MaxPending (see TestMaxPendingJob).
func smallSpec(ops int, seed int64) JobSpec {
	return JobSpec{
		Profile:  "ssd",
		Workload: "synthetic",
		Params: workload.GenParams{
			Ops:                ops,
			CapacityBytes:      4 << 20,
			ReadFrac:           0.5,
			MeanInterarrivalUs: 50,
			Seed:               seed,
		},
	}
}

func postJob(t *testing.T, srv *httptest.Server, spec JobSpec) JobView {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /jobs: %d: %s", resp.StatusCode, b)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

func waitJob(t *testing.T, srv *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(srv.URL + "/jobs/" + id + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /jobs/%s?wait=1: %d: %s", id, resp.StatusCode, b)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

// TestEndToEnd is the acceptance path: submit → poll → stream → verify
// the final snapshot, all over HTTP.
func TestEndToEnd(t *testing.T) {
	m := New(Options{Workers: 2, SampleEvery: 1000})
	defer m.Close()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	const ops = 100_000
	submitted := postJob(t, srv, smallSpec(ops, 1))
	if submitted.ID == "" || submitted.Cached {
		t.Fatalf("bad submit view: %+v", submitted)
	}

	view := waitJob(t, srv, submitted.ID)
	if view.Status != StatusDone {
		t.Fatalf("status %s (error %q), want done", view.Status, view.Error)
	}
	var res Result
	if err := json.Unmarshal(view.Result, &res); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	if res.Workload.Ops != ops {
		t.Fatalf("workload drove %d ops, want %d", res.Workload.Ops, ops)
	}
	if res.Snapshot.Completed != ops {
		t.Fatalf("snapshot completed %d, want %d", res.Snapshot.Completed, ops)
	}
	if res.Snapshot.P99ReadMs < res.Snapshot.P50ReadMs || res.Snapshot.P50ReadMs <= 0 {
		t.Fatalf("implausible read percentiles: %+v", res.Snapshot)
	}
	if res.SimulatedSeconds <= 0 || res.WriteMBps <= 0 {
		t.Fatalf("implausible rates: sim %vs write %v MB/s", res.SimulatedSeconds, res.WriteMBps)
	}

	// Stream after completion: the retained telemetry replays in full.
	resp, err := http.Get(srv.URL + "/jobs/" + submitted.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var samples []Sample
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var s Sample
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(samples) < 2 {
		t.Fatalf("stream yielded %d samples for a %d-op job, want >= 2", len(samples), ops)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Ops < samples[i-1].Ops || samples[i].Snapshot.Completed < samples[i-1].Snapshot.Completed {
			t.Fatalf("samples regressed: %+v then %+v", samples[i-1], samples[i])
		}
	}
	if last := samples[len(samples)-1]; last.Ops != ops {
		t.Fatalf("final sample at %d ops, want %d", last.Ops, ops)
	}
}

// TestCacheHit pins the content-addressed cache contract: the second
// identical submission is served from memory with a byte-identical
// result payload.
func TestCacheHit(t *testing.T) {
	m := New(Options{Workers: 1})
	defer m.Close()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	spec := smallSpec(20_000, 7)
	first := postJob(t, srv, spec)
	firstDone := waitJob(t, srv, first.ID)
	if firstDone.Status != StatusDone || firstDone.Cached {
		t.Fatalf("first run: %+v", firstDone)
	}

	second := postJob(t, srv, spec)
	if !second.Cached {
		t.Fatalf("second identical submission not served from cache: %+v", second)
	}
	if second.Status != StatusDone {
		t.Fatalf("cached job status %s, want done", second.Status)
	}
	if !bytes.Equal(firstDone.Result, second.Result) {
		t.Fatalf("cached payload differs:\n%s\nvs\n%s", firstDone.Result, second.Result)
	}

	// A different seed is a different content address.
	third := postJob(t, srv, smallSpec(20_000, 8))
	if third.Cached {
		t.Fatal("distinct spec hit the cache")
	}
	if waitJob(t, srv, third.ID).Status != StatusDone {
		t.Fatal("third job failed")
	}

	resp, err := http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits != 1 {
		t.Fatalf("cache hits %d, want 1 (stats %+v)", st.Cache.Hits, st)
	}
	if st.JobsSubmitted != 3 || st.JobsCompleted != 3 {
		t.Fatalf("job counters off: %+v", st)
	}
}

// TestCancel kills an in-flight job and checks it lands in failed with
// the cancellation cause, promptly.
func TestCancel(t *testing.T) {
	m := New(Options{Workers: 1, SampleEvery: 200})
	defer m.Close()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	// Big enough that it cannot finish before the cancel lands.
	view := postJob(t, srv, smallSpec(5_000_000, 3))

	// Wait until it is demonstrably in flight: at least one sample.
	job, ok := m.Job(view.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if v := job.View(); v.Samples > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job produced no samples")
		}
		time.Sleep(5 * time.Millisecond)
	}

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+view.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cancelResp map[string]bool
	if err := json.NewDecoder(resp.Body).Decode(&cancelResp); err != nil {
		t.Fatal(err)
	}
	if !cancelResp["cancelled"] {
		t.Fatalf("cancel refused: %+v", cancelResp)
	}

	done := waitJob(t, srv, view.ID)
	if done.Status != StatusFailed {
		t.Fatalf("cancelled job status %s, want failed", done.Status)
	}
	if !strings.Contains(done.Error, context.Canceled.Error()) {
		t.Fatalf("cancelled job error %q, want %q", done.Error, context.Canceled)
	}
	if len(done.Result) != 0 {
		t.Fatal("cancelled job has a result")
	}
}

// TestStreamLiveTail subscribes before the job finishes and still sees
// the whole sample sequence.
func TestStreamLiveTail(t *testing.T) {
	m := New(Options{Workers: 1, SampleEvery: 500})
	defer m.Close()

	job, err := m.Submit(smallSpec(50_000, 11))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var got []Sample
	if err := m.StreamSamples(ctx, job.ID, func(s Sample) error {
		got = append(got, s)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// 50k ops / 500 per sample + the final one.
	if len(got) != 101 {
		t.Fatalf("tailed %d samples, want 101", len(got))
	}
}

// TestStreamTerminatesOnEviction holds a stream tail open on a finished
// job (the delivery callback blocks, as a slow client would) while new
// submissions evict that job under RetainJobs. The tail must terminate
// promptly — delivering every retained sample and then returning —
// instead of outliving the handle indefinitely.
func TestStreamTerminatesOnEviction(t *testing.T) {
	m := New(Options{Workers: 1, RetainJobs: 1, SampleEvery: 500})
	defer m.Close()

	job, err := m.Submit(smallSpec(2_000, 201))
	if err != nil {
		t.Fatal(err)
	}
	view, err := m.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	first := make(chan struct{})
	streamErr := make(chan error, 1)
	delivered := 0
	go func() {
		streamErr <- m.StreamSamples(context.Background(), job.ID, func(Sample) error {
			if delivered == 0 {
				close(first)
				<-gate // hold the tail open mid-delivery
			}
			delivered++
			return nil
		})
	}()
	<-first

	// A new submission pushes the table past RetainJobs and evicts the
	// finished job while its tail is still attached.
	next, err := m.Submit(smallSpec(2_000, 202))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Job(job.ID); ok {
		t.Fatal("job survived eviction; the test is not exercising the tail")
	}
	close(gate)

	select {
	case err := <-streamErr:
		// Eviction never discards retained telemetry: a tail on a
		// finished job delivers everything and completes cleanly; only
		// a tail that would otherwise wait forever errors out.
		if err != nil && !errors.Is(err, ErrJobEvicted) {
			t.Fatalf("evicted tail returned %v, want nil or ErrJobEvicted", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream tail leaked past its job's eviction")
	}
	if delivered != view.Samples {
		t.Fatalf("tail delivered %d of %d retained samples across the eviction", delivered, view.Samples)
	}
	if _, err := m.Wait(context.Background(), next.ID); err != nil {
		t.Fatal(err)
	}
}

// TestStreamEvictionReleasesWaiter pins the wake-up half of the
// eviction contract at the lowest level: a tail blocked in the sample
// wait loop must be released when the job is marked evicted, not sleep
// until a broadcast that will never come. The job is driven through the
// internal states directly so the tail is genuinely parked on the cond
// when the eviction lands.
func TestStreamEvictionReleasesWaiter(t *testing.T) {
	m := New(Options{Workers: 1, RetainJobs: 1})
	defer m.Close()
	job := &Job{ID: "job-x", status: StatusRunning}
	job.cond = sync.NewCond(&job.mu)
	// A second live job keeps the table over RetainJobs so evictLocked
	// has an excess to shed.
	other := &Job{ID: "job-y", status: StatusRunning}
	other.cond = sync.NewCond(&other.mu)
	m.mu.Lock()
	m.jobs[job.ID] = job
	m.jobs[other.ID] = other
	m.order = append(m.order, job.ID, other.ID)
	m.mu.Unlock()

	streamErr := make(chan error, 1)
	go func() {
		streamErr <- m.StreamSamples(context.Background(), job.ID, func(Sample) error { return nil })
	}()
	// Let the tail reach the wait loop (no samples, job not terminal).
	time.Sleep(20 * time.Millisecond)

	job.mu.Lock()
	job.status = StatusFailed // terminal, so eviction may take it
	job.mu.Unlock()
	m.mu.Lock()
	m.evictLocked()
	m.mu.Unlock()
	if _, ok := m.Job(job.ID); ok {
		t.Fatal("job not evicted")
	}

	select {
	case err := <-streamErr:
		// Terminal + zero samples completes cleanly; the point is that
		// the waiter woke at all.
		if err != nil && !errors.Is(err, ErrJobEvicted) {
			t.Fatalf("released tail returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("tail still parked on the cond after eviction")
	}
}

// TestCancelQueuedJobFailsImmediately pins the backlog-cancellation
// path: deleting a job that is still waiting for a worker fails it (and
// releases its waiters and stream tails) right away, not whenever a
// worker finally picks up the dead context — behind a long-running job
// that could be arbitrarily far in the future.
func TestCancelQueuedJobFailsImmediately(t *testing.T) {
	m := New(Options{Workers: 1, SampleEvery: 200})
	defer m.Close()

	// Occupy the only worker with a job too big to finish during the test.
	big, err := m.Submit(smallSpec(5_000_000, 210))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if v := big.View(); v.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("big job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	queued, err := m.Submit(smallSpec(2_000, 211))
	if err != nil {
		t.Fatal(err)
	}
	if v := queued.View(); v.Status != StatusQueued {
		t.Fatalf("second job is %s with one busy worker, want queued", v.Status)
	}

	tailErr := make(chan error, 1)
	go func() {
		tailErr <- m.StreamSamples(context.Background(), queued.ID, func(Sample) error { return nil })
	}()

	cancelled, err := m.Cancel(queued.ID)
	if err != nil || !cancelled {
		t.Fatalf("Cancel(queued) = %v, %v; want true, nil", cancelled, err)
	}
	if v := queued.View(); v.Status != StatusFailed {
		t.Fatalf("cancelled queued job is %s, want failed immediately", v.Status)
	}
	select {
	case err := <-tailErr:
		if err != nil {
			t.Fatalf("tail of cancelled queued job returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("tail still blocked: cancellation did not release it")
	}

	// The worker that eventually drains the backlog must not resurrect
	// the failed job or double-count it.
	if _, err := m.Cancel(big.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), big.ID); err != nil {
		t.Fatal(err)
	}
	if v := queued.View(); v.Status != StatusFailed {
		t.Fatalf("queued job resurrected to %s after worker drain", v.Status)
	}
	if got := m.Stats().JobsFailed; got != 2 {
		t.Fatalf("failed counter %d, want 2 (one cancel each)", got)
	}
}

// TestReadOnlyJobJSON submits a pure-read workload: the write-side
// histograms stay empty and the result payload must still marshal and
// report zeroed write latency — the guard against non-finite JSON.
func TestReadOnlyJobJSON(t *testing.T) {
	m := New(Options{Workers: 1, SampleEvery: 500})
	defer m.Close()

	spec := smallSpec(2_000, 220)
	spec.Params.ReadFrac = 1.0
	job, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	view, err := m.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusDone {
		t.Fatalf("read-only job %s (error %q), want done", view.Status, view.Error)
	}
	var res Result
	if err := json.Unmarshal(view.Result, &res); err != nil {
		t.Fatalf("read-only payload does not parse: %v", err)
	}
	if res.Workload.Writes != 0 || res.Snapshot.BytesWritten != 0 {
		t.Fatalf("read-only job wrote: %+v", res.Workload)
	}
	s := res.Snapshot
	if s.MeanWriteMs != 0 || s.P50WriteMs != 0 || s.P95WriteMs != 0 || s.P99WriteMs != 0 {
		t.Fatalf("write latency nonzero on read-only job: %+v", s)
	}
	if s.MeanReadMs <= 0 || s.P99ReadMs <= 0 {
		t.Fatalf("read latency missing: %+v", s)
	}
}

// TestJobRetention pins the job-table bound: terminal jobs past
// RetainJobs are evicted oldest-first, live ones survive.
func TestJobRetention(t *testing.T) {
	m := New(Options{Workers: 1, RetainJobs: 2})
	defer m.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		// Distinct seeds so no submission is served from the cache.
		job, err := m.Submit(smallSpec(2_000, int64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Wait(context.Background(), job.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	if _, ok := m.Job(ids[0]); ok {
		t.Fatalf("oldest job %s survived past RetainJobs=2", ids[0])
	}
	for _, id := range ids[1:] {
		if _, ok := m.Job(id); !ok {
			t.Fatalf("recent job %s evicted", id)
		}
	}

	m.mu.Lock()
	n, o := len(m.jobs), len(m.order)
	m.mu.Unlock()
	if n != 2 || o != 2 {
		t.Fatalf("job table %d entries, order %d, want 2", n, o)
	}
}

// TestSubmitValidation rejects unknown names at submit time.
func TestSubmitValidation(t *testing.T) {
	m := New(Options{Workers: 1})
	defer m.Close()
	if _, err := m.Submit(JobSpec{Profile: "nope", Workload: "synthetic"}); err == nil {
		t.Fatal("unknown profile accepted")
	}
	spec := smallSpec(10, 1)
	spec.Workload = "nope"
	if _, err := m.Submit(spec); err == nil {
		t.Fatal("unknown workload accepted")
	}
	spec = smallSpec(10, 1)
	spec.Options.Scheme = "quantum"
	if _, err := m.Submit(spec); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	spec = smallSpec(10, 1)
	spec.Options.MaxPending = -1
	if _, err := m.Submit(spec); err == nil {
		t.Fatal("negative max_pending accepted")
	}
}

// TestMaxPendingJob runs an open-loop arrival storm — interarrival far
// below what the device sustains — under the max_pending admission
// bound: the job must complete every op (paced, not shed) and stay
// deterministic, which is exactly the regime that used to be flagged as
// a caveat ("pace arrivals in big jobs") before admission control.
func TestMaxPendingJob(t *testing.T) {
	m := New(Options{Workers: 1, SampleEvery: 5000})
	defer m.Close()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	const ops = 20_000
	spec := smallSpec(ops, 3)
	spec.Params.MeanInterarrivalUs = 1 // storm: ~50x the sustainable rate
	spec.Options.MaxPending = 32

	done := waitJob(t, srv, postJob(t, srv, spec).ID)
	if done.Status != StatusDone {
		t.Fatalf("status %s (error %q), want done", done.Status, done.Error)
	}
	var res Result
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.Completed != ops {
		t.Fatalf("completed %d of %d: the bound shed work", res.Snapshot.Completed, ops)
	}
	// The spec (including the bound) is the cache identity: the same
	// storm resubmitted is served from cache byte-identically.
	again := postJob(t, srv, spec)
	if !again.Cached {
		t.Fatal("identical bounded job missed the cache")
	}
}

// TestSpecKey pins that the content address tracks spec content.
func TestSpecKey(t *testing.T) {
	a, b := smallSpec(100, 1), smallSpec(100, 1)
	if a.Key() != b.Key() {
		t.Fatal("equal specs hash differently")
	}
	b.Params.Seed = 2
	if a.Key() == b.Key() {
		t.Fatal("different seeds hash equally")
	}
}

// TestCacheLRU pins the eviction bound.
func TestCacheLRU(t *testing.T) {
	c := newCache(2)
	id1, id2, id3 := []byte("id-1"), []byte("id-2"), []byte("id-3")
	c.put(1, id1, []byte("a"))
	c.put(2, id2, []byte("b"))
	if _, ok := c.get(1, id1); !ok { // refresh 1; 2 becomes LRU
		t.Fatal("missing entry 1")
	}
	c.put(3, id3, []byte("c"))
	if _, ok := c.get(2, id2); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	if _, ok := c.get(1, id1); !ok {
		t.Fatal("recently used entry 1 evicted")
	}
	st := c.stats()
	if st.Evicted != 1 || st.Entries != 2 {
		t.Fatalf("cache stats %+v", st)
	}
}

// TestCacheKeyCollision forces two identities onto one 64-bit key: the
// cache must never serve one identity's payload for the other — a
// collision is a counted miss — and a colliding store replaces the
// incumbent rather than poisoning it.
func TestCacheKeyCollision(t *testing.T) {
	c := newCache(4)
	specA, specB := []byte(`{"spec":"a"}`), []byte(`{"spec":"b"}`)
	const key = 42 // same key for both: a forced FNV collision
	c.put(key, specA, []byte("payload-a"))
	if _, ok := c.get(key, specB); ok {
		t.Fatal("colliding key served another identity's payload")
	}
	if st := c.stats(); st.KeyCollisions != 1 || st.Hits != 0 {
		t.Fatalf("after colliding get: stats %+v, want 1 collision, 0 hits", st)
	}
	if got, ok := c.get(key, specA); !ok || string(got) != "payload-a" {
		t.Fatalf("original identity no longer hits: %q %v", got, ok)
	}
	// A colliding put replaces the entry; each spec then sees its own
	// payload or a miss, never the other's bytes.
	c.put(key, specB, []byte("payload-b"))
	if st := c.stats(); st.KeyCollisions != 2 {
		t.Fatalf("colliding put not counted: stats %+v", st)
	}
	if _, ok := c.get(key, specA); ok {
		t.Fatal("replaced identity still hits")
	}
	if got, ok := c.get(key, specB); !ok || string(got) != "payload-b" {
		t.Fatalf("new identity misses: %q %v", got, ok)
	}
}

// TestDiscoveryEndpoints spot-checks /profiles, /workloads,
// /experiments, and /healthz.
func TestDiscoveryEndpoints(t *testing.T) {
	m := New(Options{Workers: 1})
	defer m.Close()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	getJSON := func(path string, v any) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}

	var profiles []profileInfo
	getJSON("/profiles", &profiles)
	if len(profiles) != len(core.ProfileNames()) {
		t.Fatalf("profiles: got %d, registry has %d", len(profiles), len(core.ProfileNames()))
	}

	var workloads []string
	getJSON("/workloads", &workloads)
	if fmt.Sprint(workloads) != fmt.Sprint(workload.Generators()) {
		t.Fatalf("workloads %v != generators %v", workloads, workload.Generators())
	}

	var exps []experimentInfo
	getJSON("/experiments", &exps)
	if len(exps) != len(experiments.Catalog()) {
		t.Fatalf("experiments: got %d, catalog has %d", len(exps), len(experiments.Catalog()))
	}

	var health map[string]string
	getJSON("/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz %v", health)
	}
}

// TestShardsCacheIdentity pins the satellite contract for the shards
// option: it is an execution knob, not a simulation parameter. A spec
// differing only in Options.Shards shares the cache entry, and a
// sharded run produces the same result fields as the single-engine run.
func TestShardsCacheIdentity(t *testing.T) {
	spec := smallSpec(20_000, 3)
	shardedSpec := spec
	shardedSpec.Options.Shards = 2
	if spec.Key() != shardedSpec.Key() {
		t.Fatal("specs differing only in shards must share a content address")
	}

	m := New(Options{Workers: 1})
	defer m.Close()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	first := postJob(t, srv, shardedSpec)
	firstDone := waitJob(t, srv, first.ID)
	if firstDone.Status != StatusDone {
		t.Fatalf("sharded run: %+v", firstDone)
	}
	// The single-engine resubmission is served from the sharded run's
	// cache entry.
	second := postJob(t, srv, spec)
	if !second.Cached {
		t.Fatal("single-engine spec missed the sharded run's cache entry")
	}

	// And the cached claim is honest: a single-engine run on a fresh
	// service produces the same result, field for field, once the
	// execution knob itself is masked out of the payload.
	m2 := New(Options{Workers: 1})
	defer m2.Close()
	srv2 := httptest.NewServer(m2.Handler())
	defer srv2.Close()
	soloDone := waitJob(t, srv2, postJob(t, srv2, spec).ID)
	if soloDone.Status != StatusDone {
		t.Fatalf("single-engine run: %+v", soloDone)
	}
	var sharded, solo Result
	if err := json.Unmarshal(firstDone.Result, &sharded); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(soloDone.Result, &solo); err != nil {
		t.Fatal(err)
	}
	sharded.Spec.Options.Shards = 0
	a, _ := json.Marshal(sharded)
	b, _ := json.Marshal(solo)
	if !bytes.Equal(a, b) {
		t.Fatalf("sharded result diverges from single-engine:\n%s\nvs\n%s", a, b)
	}
}

// TestJobTimestampsAndAggregates pins the lifecycle timestamps on
// JobView and the queue-wait / run-duration aggregates in Stats: a
// simulated job orders submitted <= started <= finished and feeds both
// aggregates; a cache hit finishes without ever starting and feeds
// neither.
func TestJobTimestampsAndAggregates(t *testing.T) {
	m := New(Options{Workers: 1})
	defer m.Close()

	job, err := m.Submit(smallSpec(20000, 1))
	if err != nil {
		t.Fatal(err)
	}
	view, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusDone {
		t.Fatalf("job: %+v", view)
	}
	if view.SubmittedAt.IsZero() || view.StartedAt.IsZero() || view.FinishedAt.IsZero() {
		t.Fatalf("missing timestamps: %+v", view)
	}
	if view.StartedAt.Before(view.SubmittedAt) || view.FinishedAt.Before(view.StartedAt) {
		t.Fatalf("timestamps out of order: %+v", view)
	}
	if view.QueueWaitMs < 0 || view.RunMs <= 0 {
		t.Fatalf("derived durations: wait=%v run=%v", view.QueueWaitMs, view.RunMs)
	}
	s := m.Stats()
	if s.QueueWait.N != 1 || s.Run.N != 1 {
		t.Fatalf("aggregates after one run: %+v", s)
	}
	if s.Run.MeanMs <= 0 || s.Run.MinMs > s.Run.MaxMs {
		t.Fatalf("run aggregate: %+v", s.Run)
	}

	// The cache hit: finished but never started, aggregates untouched.
	hit, err := m.Submit(smallSpec(20000, 1))
	if err != nil {
		t.Fatal(err)
	}
	hv, err := hit.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !hv.Cached || hv.FinishedAt.IsZero() || !hv.StartedAt.IsZero() || hv.RunMs != 0 {
		t.Fatalf("cache-hit view: %+v", hv)
	}
	if s := m.Stats(); s.QueueWait.N != 1 || s.Run.N != 1 {
		t.Fatalf("cache hit moved the aggregates: %+v", s)
	}
}
