// Quickstart: open a simulated SSD from the device registry, drive a
// stream of block I/O against it, and read back the device statistics.
// This is the smallest useful program against the library's block-level
// API.
package main

import (
	"fmt"
	"log"

	"ossd/internal/core"
	"ossd/internal/sim"
	"ossd/internal/trace"
)

func main() {
	// Open the generic small SSD from the registry — 8 flash packages,
	// 4 KB pages, page-interleaved mapping, cleaning watermarks at
	// 5%/2% — with informed cleaning switched on. Any registered profile
	// (see `ssdsim -list`) opens the same way; functional options tweak
	// capacity, FTL scheme, stripe, scheduler, and more.
	dev, err := core.Open("ssd", core.WithInformed(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device capacity: %d MB\n", dev.LogicalBytes()>>20)

	// Write 4 MB sequentially, then read it back, then free a dead
	// range. The workload is a trace.Stream — pulled one op at a time —
	// and Drive replays it open loop at its timestamps.
	var ops []trace.Op
	var at sim.Time
	for off := int64(0); off < 4<<20; off += 64 << 10 {
		ops = append(ops, trace.Op{At: at, Kind: trace.Write, Offset: off, Size: 64 << 10})
		at += 500 * sim.Microsecond
	}
	for off := int64(0); off < 4<<20; off += 64 << 10 {
		ops = append(ops, trace.Op{At: at, Kind: trace.Read, Offset: off, Size: 64 << 10})
		at += 500 * sim.Microsecond
	}
	// Tell the device a range is dead (the TRIM/OSD-delete signal); the
	// informed FTL drops the mapping so cleaning never copies it.
	ops = append(ops, trace.Op{At: at, Kind: trace.Free, Offset: 1 << 20, Size: 1 << 20})

	if err := dev.Drive(trace.FromSlice(ops)); err != nil {
		log.Fatal(err)
	}

	m := dev.Metrics()
	fmt.Printf("completed:       %d requests in %v simulated\n", m.Completed, dev.Engine().Now())
	fmt.Printf("moved:           %d MB written, %d MB read\n", m.BytesWritten>>20, m.BytesRead>>20)
	fmt.Printf("free notices:    %d counted by the device\n", m.Frees)
	fmt.Printf("mean response:   read %.3f ms, write %.3f ms\n", m.MeanReadMs, m.MeanWriteMs)

	ssd := dev.(*core.SSD)
	g := ssd.Raw.GCStats()
	fmt.Printf("frees applied:   %d pages dropped from the FTL\n", g.FreesApplied)
	fmt.Printf("write amp:       %.2fx\n", ssd.Raw.WriteAmplification())
}
