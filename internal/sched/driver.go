package sched

import "ossd/internal/sim"

// Driver is the dispatch engine shared by the media models: one pump loop
// over an indexed Queue, with hooks for the work a substrate does around
// dispatch. The SSD hangs garbage collection on the hooks (mandatory
// cleaning before dispatch, opportunistic cleaning after), the disk hangs
// its write-cache drain on the post hook, and MEMS uses the bare loop —
// so all substrates queue and dispatch through this one code path.
//
// Serve is called once per dispatched request with its payload and the
// current simulated time; it must start service (marking elements busy
// via Queue.SetBusy) and arrange for Pump to run again on completion.
// Pre and Post run before and after the dispatch pass of each round and
// report whether they made progress; the loop repeats until a full round
// makes none.
type Driver struct {
	eng   *sim.Engine
	q     *Queue
	serve func(data any, now sim.Time)
	pre   func(now sim.Time) bool
	post  func(now sim.Time) bool
}

// NewDriver builds a driver pumping q on eng, dispatching through serve.
func NewDriver(eng *sim.Engine, q *Queue, serve func(data any, now sim.Time)) *Driver {
	return &Driver{eng: eng, q: q, serve: serve}
}

// SetHooks installs the pre- and post-dispatch hooks (either may be nil).
func (d *Driver) SetHooks(pre, post func(now sim.Time) bool) {
	d.pre, d.post = pre, post
}

// pumpEvent is the engine callback form of Pump: arg is the *Driver.
// Keeping it a package-level function lets PumpAfter schedule through
// the engine's pooled event path without allocating a closure (or a
// method value) per completion.
func pumpEvent(a any) { a.(*Driver).Pump() }

// PumpAfter schedules a Pump d from now through the engine's pooled
// event path. Media models use it wherever device-initiated work (a
// cleaning pass, a cache drain) ends at a known future time; it is the
// allocation-free replacement for eng.After(d, drv.Pump).
func (d *Driver) PumpAfter(delay sim.Time) {
	d.eng.Call(delay, pumpEvent, d)
}

// Pump advances the device state machine: pre-dispatch work, then as many
// dispatches as the queue allows, then post-dispatch work, repeating
// until a whole round makes no progress. Call it on every arrival and on
// every completion.
func (d *Driver) Pump() {
	now := d.eng.Now()
	for {
		progress := false
		if d.pre != nil && d.pre(now) {
			progress = true
		}
		for {
			data, ok := d.q.Pop(now)
			if !ok {
				break
			}
			d.serve(data, now)
			progress = true
		}
		if d.post != nil && d.post(now) {
			progress = true
		}
		if !progress {
			return
		}
	}
}
