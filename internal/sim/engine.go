// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event heap, and seeded random distributions. All
// device models in this repository (SSD, HDD) advance time exclusively
// through an Engine, which makes every experiment reproducible from a
// seed and independent of wall-clock time.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point on the simulated clock, in nanoseconds since the start
// of the simulation. Durations are also expressed as Time.
type Time int64

// Convenient duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a simulated time or duration to float seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts a simulated time or duration to float milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros converts a simulated time or duration to float microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// event is a scheduled callback. seq breaks ties so that events scheduled
// earlier run earlier, giving a stable, deterministic order.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use.
// Engines are not safe for concurrent use; a simulation is a single
// logical thread of control.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	ran    uint64
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled, not-yet-run events.
func (e *Engine) Pending() int { return len(e.events) }

// Processed reports the total number of events run so far.
func (e *Engine) Processed() uint64 { return e.ran }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it indicates a model bug, and silently reordering time would
// corrupt every statistic downstream.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// Step runs the single next event, advancing the clock to its timestamp.
// It reports whether an event was available.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.ran++
	ev.fn()
	return true
}

// Run processes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil processes events with timestamps <= t, then advances the clock
// to exactly t. Events scheduled after t remain pending.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor processes events within the next d of simulated time and leaves
// the clock exactly d past where it started. Events scheduled later
// remain pending.
func (e *Engine) RunFor(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative duration %v", d))
	}
	e.RunUntil(e.now + d)
}
