package ssd

import (
	"ossd/internal/sim"
	"ossd/internal/trace"
)

// This file maps byte-range operations onto per-element page operations
// for the two layouts. All write amplification in the simulator arises
// here: FullStripe writes rewrite every page of each touched stripe (the
// mapping granularity is the stripe), reading back old data for the
// pages the host did not cover.

// elemsFor computes the set of elements a queued operation will occupy,
// used by the dispatch scheduler. It is conservative with respect to
// mapping state (which may change while the request queues): it depends
// only on the byte range. The returned slice is device-owned scratch,
// valid until the next call — sched.Queue.Push copies it.
func (d *Device) elemsFor(op trace.Op) []int {
	touched := d.touched
	for e := range touched {
		touched[e] = false
	}
	switch d.cfg.Layout {
	case FullStripe:
		if op.Kind == trace.Write {
			// Whole stripes are rewritten: every element participates.
			for e := range touched {
				touched[e] = true
			}
		} else {
			d.forEachStripePage(op.Offset, op.Size, func(e, elpn int, covered bool) {
				if covered {
					touched[e] = true
				}
			})
		}
	case Interleaved:
		d.forEachPage(op.Offset, op.Size, func(e, elpn int, full bool) {
			touched[e] = true
		})
	}
	out := d.elemScratch[:0]
	for e, t := range touched {
		if t {
			out = append(out, e)
		}
	}
	d.elemScratch = out
	return out
}

// pageHome maps a flash-page-sized logical page to its element and
// element-local page. Homogeneous devices round-robin over the whole
// gang; heterogeneous ones (§3.3) split the space into an SLC region
// interleaved over the SLC elements followed by an MLC region over the
// MLC elements.
func (d *Device) pageHome(l int64) (e, elpn int) {
	if d.cfg.MLCElements == 0 {
		return int(l) % d.cfg.Elements, int(l) / d.cfg.Elements
	}
	slcElems := int64(d.cfg.Elements - d.cfg.MLCElements)
	slcPages := int64(d.elems[0].LogicalPages()) * slcElems
	if l < slcPages {
		return int(l % slcElems), int(l / slcElems)
	}
	m := l - slcPages
	mlc := int64(d.cfg.MLCElements)
	return int(slcElems) + int(m%mlc), int(m / mlc)
}

// forEachPage visits every flash-page-sized logical page intersecting
// [off, off+size) under the Interleaved layout. full reports whether the
// operation covers the page completely.
func (d *Device) forEachPage(off, size int64, fn func(e, elpn int, full bool)) {
	ps := int64(d.cfg.Geom.PageSize)
	end := off + size
	for l := off / ps; l*ps < end; l++ {
		pStart, pEnd := l*ps, (l+1)*ps
		full := off <= pStart && pEnd <= end
		e, elpn := d.pageHome(l)
		fn(e, elpn, full)
	}
}

// forEachStripePage visits every page of every stripe intersecting
// [off, off+size) under the FullStripe layout. covered reports whether
// the operation's byte range intersects that page at all; the write path
// visits all pages of touched stripes, the read path only covered ones.
func (d *Device) forEachStripePage(off, size int64, fn func(e, elpn int, covered bool)) {
	ps := int64(d.cfg.Geom.PageSize)
	stripe := d.cfg.StripeBytes
	end := off + size
	for s := off / stripe; s*stripe < end; s++ {
		sBase := s * stripe
		for e := 0; e < d.cfg.Elements; e++ {
			chunkBase := sBase + int64(e)*d.chunkBytes
			for k := 0; k < d.pagesPerChunk; k++ {
				pStart := chunkBase + int64(k)*ps
				pEnd := pStart + ps
				covered := pStart < end && off < pEnd
				elpn := int(s)*d.pagesPerChunk + k
				fn(e, elpn, covered)
			}
		}
	}
}

// exec executes a dispatched request against the FTLs, mutating mapping
// state, and returns the per-element service durations. Elements with a
// zero duration were not touched. The returned slice is device-owned
// scratch, valid until the next dispatch — serve consumes it before any
// reentrant dispatch can run.
func (d *Device) exec(req *Request) []sim.Time {
	durs := d.durScratch
	for e := range durs {
		durs[e] = 0
	}
	op := req.Op
	if op.Kind == trace.Free {
		// Deallocation is a mapping-table update: zero medium time.
		d.applyFree(op)
		return durs
	}
	// Fault injection: a dead element fails the request outright (zero
	// durations, so it completes immediately as an error); transient
	// faults add their retry cost to the element durations below.
	if d.flt != nil && d.injectFaults(req, durs) {
		return durs
	}
	fail := func(err error) { req.Err = err }
	switch d.cfg.Layout {
	case FullStripe:
		d.execFullStripe(op, durs, fail)
	case Interleaved:
		d.execInterleaved(op, durs, fail)
	}
	return durs
}

func (d *Device) execFullStripe(op trace.Op, durs []sim.Time, fail func(error)) {
	ps := int64(d.cfg.Geom.PageSize)
	stripe := d.cfg.StripeBytes
	end := op.End()
	for s := op.Offset / stripe; s*stripe < end; s++ {
		sBase := s * stripe
		fullStripe := op.Offset <= sBase && sBase+stripe <= end
		for e := 0; e < d.cfg.Elements; e++ {
			el := d.elems[e]
			chunkBase := sBase + int64(e)*d.chunkBytes
			for k := 0; k < d.pagesPerChunk; k++ {
				pStart := chunkBase + int64(k)*ps
				pEnd := pStart + ps
				covered := pStart < end && op.Offset < pEnd
				elpn := int(s)*d.pagesPerChunk + k
				switch op.Kind {
				case trace.Read:
					if !covered {
						continue
					}
					dur, err := el.ReadPage(elpn)
					durs[e] += dur
					if err != nil {
						fail(err)
						return
					}
				case trace.Write:
					// Partial stripe: read back every page the host did
					// not fully overwrite (read-modify-write, §3.4).
					fullPage := op.Offset <= pStart && pEnd <= end
					if !fullStripe && !fullPage && el.Mapped(elpn) {
						dur, err := el.ReadPage(elpn)
						durs[e] += dur
						if err != nil {
							fail(err)
							return
						}
					}
					// The stripe is the mapping unit: rewrite every page.
					dur, err := el.WritePage(elpn)
					durs[e] += dur
					if err != nil {
						fail(err)
						return
					}
				}
			}
		}
	}
}

func (d *Device) execInterleaved(op trace.Op, durs []sim.Time, fail func(error)) {
	ps := int64(d.cfg.Geom.PageSize)
	end := op.End()
	for l := op.Offset / ps; l*ps < end; l++ {
		e, elpn := d.pageHome(l)
		el := d.elems[e]
		pStart, pEnd := l*ps, (l+1)*ps
		switch op.Kind {
		case trace.Read:
			dur, err := el.ReadPage(elpn)
			durs[e] += dur
			if err != nil {
				fail(err)
				return
			}
		case trace.Write:
			full := op.Offset <= pStart && pEnd <= end
			if !full && el.Mapped(elpn) {
				// Sub-page write: read-modify-write of the single page.
				dur, err := el.ReadPage(elpn)
				durs[e] += dur
				if err != nil {
					fail(err)
					return
				}
			}
			dur, err := el.WritePage(elpn)
			durs[e] += dur
			if err != nil {
				fail(err)
				return
			}
		}
	}
}

// applyFree processes a deallocation notification: every logical mapping
// unit (page or stripe) fully covered by the range is freed. Partially
// covered units stay live — the device cannot know the rest is dead.
func (d *Device) applyFree(op trace.Op) {
	end := op.End()
	switch d.cfg.Layout {
	case FullStripe:
		stripe := d.cfg.StripeBytes
		first := (op.Offset + stripe - 1) / stripe
		last := end/stripe - 1
		for s := first; s <= last; s++ {
			for e := 0; e < d.cfg.Elements; e++ {
				for k := 0; k < d.pagesPerChunk; k++ {
					// Free errors cannot happen for in-range stripes.
					_ = d.elems[e].Free(int(s)*d.pagesPerChunk + k)
				}
			}
		}
	case Interleaved:
		ps := int64(d.cfg.Geom.PageSize)
		first := (op.Offset + ps - 1) / ps
		last := end/ps - 1
		for l := first; l <= last; l++ {
			e, elpn := d.pageHome(l)
			_ = d.elems[e].Free(elpn)
		}
	}
}
