// Package ssd assembles the full solid-state device from its substrates:
// a gang of flash packages each running a log-structured FTL
// (ossd/internal/ftl), a logical page layout that stripes or interleaves
// the address space across the gang, a device-level dispatch queue with
// FCFS or SWTF scheduling (§3.2), and cleaning control with low/critical
// watermarks and optional priority awareness (§3.6). Write amplification
// (§3.4) is emergent: a write that partially covers a logical page
// triggers read-modify-write of the whole stripe.
package ssd

import (
	"fmt"

	"ossd/internal/fault"
	"ossd/internal/flash"
	"ossd/internal/ftl"
	"ossd/internal/sched"
	"ossd/internal/sim"
)

// Layout selects how the logical byte address space maps onto the gang.
type Layout int

const (
	// FullStripe makes the logical page a full stripe spanning every
	// element (the paper's Table 3 configuration: "a single 32 KB logical
	// page spanned over all the packages"). Writes smaller than the
	// stripe are amplified to the whole stripe.
	FullStripe Layout = iota
	// Interleaved maps each flash-page-sized logical page to one element
	// round-robin. Requests touch only the elements their range covers,
	// which is the configuration that gives schedulers freedom (§3.2).
	Interleaved
)

func (l Layout) String() string {
	if l == Interleaved {
		return "interleaved"
	}
	return "full-stripe"
}

// Config describes a device.
type Config struct {
	// Elements is the number of parallel flash packages in the gang.
	Elements int
	// MLCElements makes the last N elements MLC parts (§3.3's future
	// heterogeneous device): their pages are slower and less durable, and
	// the logical address space splits into an SLC region followed by an
	// MLC region, so the space is no longer interchangeable. Requires the
	// Interleaved layout.
	MLCElements int
	// Geom is the per-package geometry.
	Geom flash.Geometry
	// Timing is the per-package timing; zero value selects SLC defaults.
	Timing flash.Timing
	// EraseBudget per block; zero selects the SLC default.
	EraseBudget int
	// Overprovision is the spare-capacity fraction per element.
	Overprovision float64

	// Layout selects full-stripe or interleaved mapping.
	Layout Layout
	// StripeBytes is the logical page size for FullStripe layout. It must
	// be a multiple of Elements*Geom.PageSize. Ignored for Interleaved.
	StripeBytes int64

	// Scheduler selects the dispatch policy.
	Scheduler sched.Policy
	// TenantWeights, when non-empty, engages weighted fair-share
	// dispatch: the queue deficit-round-robins across tenant classes
	// with these scheduler weights (tenants absent from the map weigh
	// 1). Empty leaves the queue in legacy single-tenant mode, where
	// tenant tags affect only the per-tenant metrics. Tenant-weighted
	// devices are not shardable (see ShardableConfig): cross-tenant
	// arbitration is global by nature.
	TenantWeights map[uint8]float64
	// CtrlOverhead is the per-element command overhead charged to every
	// element task of a request (interface decode, ECC, firmware).
	CtrlOverhead sim.Time
	// InterfaceMBps caps host-link throughput (SATA/firmware limit). The
	// link is a serial resource that overlaps with flash operations (DMA),
	// so it bounds sustained bandwidth without serializing the elements.
	// Zero means unlimited.
	InterfaceMBps float64

	// WriteBufferBytes enables a volatile write-back buffer: writes that
	// fit complete at RAM speed while an internal request does the flash
	// work in the background. A full buffer bypasses to the normal path,
	// which is why such caches mask latency but not sustained random-write
	// bandwidth — the paper's observation about S3slc's 16 MB cache
	// (§3.4). Zero disables the buffer.
	WriteBufferBytes int64

	// GCLow and GCCritical are the cleaning watermarks as free-page
	// fractions (paper defaults: 0.05 and 0.02). Zero disables the
	// corresponding trigger.
	GCLow, GCCritical float64
	// PriorityAware postpones low-watermark cleaning while priority
	// requests are outstanding (§3.6). Without it the device is
	// priority-agnostic: it cleans at the low watermark regardless.
	PriorityAware bool

	// Scheme selects the FTL mapping scheme per element (page-mapped
	// log-structured by default; block-mapped and hybrid log-block are
	// the classic cheaper alternatives).
	Scheme ftl.Scheme
	// Informed enables free-page-aware cleaning in the FTLs (§3.5).
	Informed bool
	// WearAware enables wear-leveling in the FTLs.
	WearAware bool
	// CostBenefit selects cost-benefit GC victim selection instead of
	// greedy in the page-mapped FTL.
	CostBenefit bool
	// WearDelta is the tolerated erase-count spread (0 = FTL default).
	WearDelta int

	// Fault attaches a deterministic failure-injection plan: transient
	// per-op errors and element deaths inject at dispatch, and the
	// plan's wear ceiling and remap cost flow into every element's FTL.
	Fault *fault.Plan
}

// Validate checks the configuration and fills derived defaults.
func (c *Config) Validate() error {
	if c.Elements <= 0 {
		return fmt.Errorf("ssd: need at least one element, got %d", c.Elements)
	}
	if err := c.Geom.Validate(); err != nil {
		return err
	}
	if c.Timing == (flash.Timing{}) {
		c.Timing = flash.TimingFor(flash.SLC)
	}
	if c.Layout == FullStripe {
		min := int64(c.Elements) * int64(c.Geom.PageSize)
		if c.StripeBytes == 0 {
			c.StripeBytes = min
		}
		if c.StripeBytes%min != 0 {
			return fmt.Errorf("ssd: stripe %d not a multiple of elements*page %d", c.StripeBytes, min)
		}
	}
	if c.MLCElements < 0 || c.MLCElements >= c.Elements {
		if c.MLCElements != 0 {
			return fmt.Errorf("ssd: MLCElements %d out of range [0, %d)", c.MLCElements, c.Elements)
		}
	}
	if c.MLCElements > 0 && c.Layout != Interleaved {
		return fmt.Errorf("ssd: heterogeneous media requires the Interleaved layout")
	}
	if c.GCLow < 0 || c.GCLow >= 1 || c.GCCritical < 0 || c.GCCritical >= 1 {
		return fmt.Errorf("ssd: watermarks out of range: low %v critical %v", c.GCLow, c.GCCritical)
	}
	if c.GCCritical > c.GCLow {
		return fmt.Errorf("ssd: critical watermark %v above low %v", c.GCCritical, c.GCLow)
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	return nil
}

// ftlConfig derives the FTL configuration for element e, selecting MLC
// timing and endurance for the MLC tail of a heterogeneous gang.
func (c *Config) ftlConfig(e int) ftl.Config {
	cfg := ftl.Config{
		Geom:          c.Geom,
		Timing:        c.Timing,
		EraseBudget:   c.EraseBudget,
		Overprovision: c.Overprovision,
		Informed:      c.Informed,
		WearAware:     c.WearAware,
		WearDelta:     c.WearDelta,
		CostBenefit:   c.CostBenefit,
	}
	if c.MLCElements > 0 && e >= c.Elements-c.MLCElements {
		cfg.Timing = flash.TimingFor(flash.MLC)
		cfg.EraseBudget = flash.EraseBudgetFor(flash.MLC)
	}
	if f := c.Fault; f != nil && f.WearCeiling > 0 {
		cfg.WearCeiling = f.WearCeiling
		cfg.RemapCost = f.RemapCost()
	}
	return cfg
}

// LogicalBytes returns the exported capacity of a device built from this
// configuration.
func (c *Config) LogicalBytes() int64 {
	el, err := ftl.NewBackend(c.Scheme, c.ftlConfig(0))
	if err != nil {
		return 0
	}
	perElem := int64(el.LogicalPages()) * int64(c.Geom.PageSize)
	total := perElem * int64(c.Elements)
	if c.Layout == FullStripe {
		// Round down to whole stripes.
		total = total / c.StripeBytes * c.StripeBytes
	}
	return total
}
