package campaign

import (
	"encoding/json"
	"fmt"
	"strings"

	"ossd/internal/simsvc"
	"ossd/internal/stats"
)

// metricValue resolves a dotted path ("write_mbps",
// "snapshot.read_p99_ms", …) in a cell's result payload to a number.
func metricValue(result []byte, path string) (float64, error) {
	var tree map[string]any
	if err := json.Unmarshal(result, &tree); err != nil {
		return 0, fmt.Errorf("campaign: decode result: %w", err)
	}
	segs := strings.Split(path, ".")
	var cur any = tree
	for _, seg := range segs {
		obj, ok := cur.(map[string]any)
		if !ok {
			return 0, fmt.Errorf("campaign: metric %q: %q is not an object", path, seg)
		}
		cur, ok = obj[seg]
		if !ok {
			return 0, fmt.Errorf("campaign: metric %q: no field %q", path, seg)
		}
	}
	v, ok := cur.(float64)
	if !ok {
		return 0, fmt.Errorf("campaign: metric %q is not a number", path)
	}
	return v, nil
}

// coord returns the cell's value on the named axis.
func coord(cr CellResult, axis string) (string, bool) {
	for _, c := range cr.Coords {
		if c.Name == axis {
			return c.Value, true
		}
	}
	return "", false
}

// Table renders a comparison of metric across two axes as a stats.Grid:
// rows axis values down, cols axis values across, each cell the metric
// of the done cells at that coordinate pair (averaged when further axes
// leave more than one cell per pair). Row and column labels appear in
// first-seen order over cells in deterministic cell order, which is
// exactly the axes' declared value order. The same function backs
// GET /campaigns/{id}/table and cmd/repro's client-side rendering, so
// both surfaces share one implementation.
func Table(title string, cells []CellResult, rows, cols, metric string) (*stats.Grid, error) {
	if rows == "" || cols == "" {
		return nil, fmt.Errorf("campaign: table needs rows and cols axes")
	}
	if rows == cols {
		return nil, fmt.Errorf("campaign: rows and cols are both %q", rows)
	}
	if metric == "" {
		metric = "write_mbps"
	}
	g := stats.NewGrid(title, rows+` \ `+cols)
	var pending, failed int
	var metricErr error
	for _, cr := range cells {
		r, okR := coord(cr, rows)
		c, okC := coord(cr, cols)
		if !okR || !okC {
			missing := rows
			if okR {
				missing = cols
			}
			return nil, fmt.Errorf("campaign: no axis %q (have %s)", missing, coordString(cr.Coords))
		}
		switch {
		case cr.Status == simsvc.StatusDone && len(cr.Result) > 0:
			v, err := metricValue(cr.Result, metric)
			if err != nil {
				// A metric that resolves on no cell is a caller error;
				// report the first instance instead of an empty grid.
				if metricErr == nil {
					metricErr = err
				}
				continue
			}
			g.Add(r, c, v)
		case cr.Status == simsvc.StatusFailed:
			failed++
		default:
			pending++
		}
	}
	if g.MaxN() == 0 && metricErr != nil {
		return nil, metricErr
	}
	if n := g.MaxN(); n > 1 {
		g.AddNote("cells average up to %d runs across the remaining axes", n)
	}
	if pending > 0 {
		g.AddNote("%d cells still pending", pending)
	}
	if failed > 0 {
		g.AddNote("%d cells failed", failed)
	}
	return g, nil
}
