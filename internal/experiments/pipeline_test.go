package experiments

import (
	"testing"

	"ossd/internal/core"
	"ossd/internal/flash"
	"ossd/internal/ftl"
	"ossd/internal/osd"
	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/ssd"
	"ossd/internal/trace"
	"ossd/internal/workload"
)

// Integration tests exercising whole pipelines across modules, the way a
// downstream user would compose them.

// TestPipelinePostmarkInformedDevice replays a Postmark trace (with its
// free notifications) end to end through the aligner and an informed
// device, checking that every moving part engaged.
func TestPipelinePostmarkInformedDevice(t *testing.T) {
	if testing.Short() {
		t.Skip("integration suite skipped in -short mode")
	}
	dev, err := core.NewSSD(ssd.Config{
		Elements:      4,
		Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 64, BlocksPerPackage: 64},
		Overprovision: 0.12,
		// Interleaved: the mapping unit is one page, so Postmark's small
		// file deletions translate into applicable frees. (On a 32 KB
		// full-stripe device the same frees are sub-unit and the FTL must
		// conservatively keep the stripes live.)
		Layout:       ssd.Interleaved,
		Scheduler:    sched.SWTF,
		CtrlOverhead: 10 * sim.Microsecond,
		GCLow:        0.05, GCCritical: 0.02,
		Informed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.Postmark(workload.PostmarkConfig{
		Transactions:     3000,
		InitialFiles:     200,
		CapacityBytes:    dev.LogicalBytes() / 2,
		MeanInterarrival: 300 * sim.Microsecond,
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	aligned, err := trace.AlignStream(stream, 32<<10, trace.AlignOptions{
		MaxGap: 5 * sim.Millisecond, ReadBarrier: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Drive(aligned); err != nil {
		t.Fatal(err)
	}
	m := dev.Raw.Metrics()
	g := dev.Raw.GCStats()
	if m.Completed == 0 || m.Errors != 0 {
		t.Fatalf("replay: %+v", m)
	}
	if g.FreesApplied == 0 {
		t.Fatal("informed device never applied a free")
	}
	for _, el := range dev.Raw.Elements() {
		if err := el.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPipelineOSDChurnAllSchemes drives object churn through the OSD on
// each FTL scheme; the store semantics must be identical.
func TestPipelineOSDChurnAllSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration suite skipped in -short mode")
	}
	for _, scheme := range []struct {
		name string
		s    int
	}{{"page", 0}, {"block", 1}, {"hybrid", 2}} {
		t.Run(scheme.name, func(t *testing.T) {
			eng := sim.NewEngine()
			dev, err := ssd.New(eng, ssd.Config{
				Elements:      2,
				Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 16, BlocksPerPackage: 64},
				Overprovision: 0.15,
				Layout:        ssd.Interleaved,
				Scheduler:     sched.SWTF,
				Informed:      true,
				Scheme:        schemeOf(scheme.s),
			})
			if err != nil {
				t.Fatal(err)
			}
			st, err := osd.New(dev)
			if err != nil {
				t.Fatal(err)
			}
			rng := sim.NewRNG(7)
			var live []osd.ObjectID
			for i := 0; i < 300; i++ {
				switch {
				case len(live) < 5 || rng.Bool(0.4):
					id := st.Create(osd.Attributes{})
					size := (rng.Int63n(8) + 1) * 4096
					if err := st.Write(id, 0, size, nil); err != nil {
						t.Fatal(err)
					}
					live = append(live, id)
				case rng.Bool(0.5):
					id := live[rng.Intn(len(live))]
					sz, _ := st.Size(id)
					if sz > 0 {
						if err := st.Read(id, 0, sz, nil); err != nil {
							t.Fatal(err)
						}
					}
				default:
					k := rng.Intn(len(live))
					if err := st.Delete(live[k]); err != nil {
						t.Fatal(err)
					}
					live = append(live[:k], live[k+1:]...)
				}
				eng.Run()
			}
			if got := len(st.List()); got != len(live) {
				t.Fatalf("store has %d objects, model %d", got, len(live))
			}
			for _, el := range dev.Elements() {
				if err := el.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func schemeOf(i int) ftl.Scheme {
	switch i {
	case 1:
		return ftl.BlockMapped
	case 2:
		return ftl.HybridLog
	default:
		return ftl.PageMapped
	}
}
