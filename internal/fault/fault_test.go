package fault

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"ossd/internal/sim"
)

// Draws must be a pure function of (seed, element, seq): evaluating in
// any order, any number of times, yields the same outcomes.
func TestTransientDeterminism(t *testing.T) {
	p := &Plan{Seed: 42, Transient: &Transient{Rate: 0.01, Burst: 4}}
	forward := make([]bool, 10000)
	for s := range forward {
		forward[s] = p.TransientAt(3, int64(s), true)
	}
	for s := len(forward) - 1; s >= 0; s-- {
		if got := p.TransientAt(3, int64(s), true); got != forward[s] {
			t.Fatalf("seq %d: reverse-order draw %v != forward %v", s, got, forward[s])
		}
	}
	q := &Plan{Seed: 43, Transient: &Transient{Rate: 0.01, Burst: 4}}
	same := 0
	for s := 0; s < 10000; s++ {
		if q.TransientAt(3, int64(s), true) == forward[s] {
			same++
		}
	}
	if same == 10000 {
		t.Fatalf("changing the seed did not change the injection schedule")
	}
}

// One draw decides a whole burst window, and the long-run per-op rate
// stays close to Rate.
func TestTransientBurstAndRate(t *testing.T) {
	const rate, burst, n = 0.02, 8, 400000
	p := &Plan{Seed: 7, Transient: &Transient{Rate: rate, Burst: burst}}
	faults := 0
	for s := int64(0); s < n; s++ {
		hit := p.TransientAt(0, s, false)
		if hit {
			faults++
		}
		if want := p.TransientAt(0, (s/burst)*burst, false); hit != want {
			t.Fatalf("seq %d disagrees with its window head", s)
		}
	}
	got := float64(faults) / n
	if math.Abs(got-rate) > rate/2 {
		t.Fatalf("observed rate %g, want ~%g", got, rate)
	}
}

func TestTransientKinds(t *testing.T) {
	p := &Plan{Seed: 1, Transient: &Transient{Rate: 0.5, Kinds: "w"}}
	for s := int64(0); s < 1000; s++ {
		if p.TransientAt(0, s, false) {
			t.Fatalf("kinds=w faulted a read at seq %d", s)
		}
	}
	writes := 0
	for s := int64(0); s < 1000; s++ {
		if p.TransientAt(0, s, true) {
			writes++
		}
	}
	if writes == 0 {
		t.Fatalf("kinds=w never faulted a write")
	}
}

func TestDeadAt(t *testing.T) {
	p := &Plan{Deaths: []Death{{Element: 2, AfterOps: 100}}}
	if p.DeadAt(2, 99) {
		t.Fatalf("element dead before its death point")
	}
	if !p.DeadAt(2, 100) {
		t.Fatalf("element alive at its death point")
	}
	if p.DeadAt(1, 1000) {
		t.Fatalf("unlisted element died")
	}
}

func TestCosts(t *testing.T) {
	p := &Plan{}
	if got := p.RetryCost(); got != 500*sim.Microsecond {
		t.Fatalf("default retry cost %v", got)
	}
	if got := p.RemapCost(); got != 200*sim.Microsecond {
		t.Fatalf("default remap cost %v", got)
	}
	q := &Plan{RemapCostUs: 300, Transient: &Transient{Rate: 0.1, RetryUs: 400}}
	if got := q.RetryCost(); got != 400*sim.Microsecond {
		t.Fatalf("retry cost %v, want 400us", got)
	}
	if got := q.RemapCost(); got != 300*sim.Microsecond {
		t.Fatalf("remap cost %v, want 300us", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []*Plan{
		{Transient: &Transient{Rate: 1.5}},
		{Transient: &Transient{Rate: -0.1}},
		{Transient: &Transient{Rate: 0.1, Kinds: "x"}},
		{Deaths: []Death{{Element: -1}}},
		{WearCeiling: -1},
		{RemapCostUs: -1},
		{PowerLoss: &PowerLoss{AtOps: 0}},
		{PowerLoss: &PowerLoss{AtOps: 10, ReplayFrac: 2}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad plan %d validated", i)
		}
	}
	good := &Plan{
		Seed:        9,
		Transient:   &Transient{Rate: 0.01, Burst: 4, RetryUs: 400, Kinds: "rw"},
		Deaths:      []Death{{Element: 1, AfterOps: 500}},
		WearCeiling: 16,
		RemapCostUs: 300,
		PowerLoss:   &PowerLoss{AtOps: 1000, ReplayFrac: 0.5},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
	if (*Plan)(nil).Validate() != nil {
		t.Fatalf("nil plan should validate")
	}
}

func TestInjects(t *testing.T) {
	if (&Plan{WearCeiling: 8}).Injects() {
		t.Fatalf("wear-only plan should not wrap non-flash devices")
	}
	if !(&Plan{Transient: &Transient{Rate: 0.01}}).Injects() {
		t.Fatalf("transient plan should inject")
	}
	if !(&Plan{Deaths: []Death{{Element: 0, AfterOps: 1}}}).Injects() {
		t.Fatalf("death plan should inject")
	}
}

func TestParseAndLoad(t *testing.T) {
	if _, err := Parse([]byte(`{"seed":1,"bogus":2}`)); err == nil {
		t.Fatalf("unknown field accepted")
	}
	if _, err := Parse([]byte(`{"transient":{"rate":2}}`)); err == nil {
		t.Fatalf("invalid plan accepted")
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	body := []byte(`{"seed":9,"wear_ceiling":8,"transient":{"rate":0.002,"burst":4,"retry_us":400}}`)
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 9 || p.WearCeiling != 8 || p.Transient.Rate != 0.002 {
		t.Fatalf("loaded plan %+v", p)
	}
}
