package trace

import (
	"bytes"
	"math/rand"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"

	"ossd/internal/sim"
)

// TestCodecTenantRoundTrip: v2 flags (P, T<n>) round-trip in every
// combination, and tenant-0 ops encode byte-identically to the v1
// format — the compatibility contract that keeps old goldens valid.
func TestCodecTenantRoundTrip(t *testing.T) {
	ops := []Op{
		{At: 0, Kind: Write, Offset: 0, Size: 4096},
		{At: 10, Kind: Read, Offset: 4096, Size: 4096, Tenant: 1},
		{At: 20, Kind: Write, Offset: 8192, Size: 4096, Tenant: 255, Priority: true},
		{At: 30, Kind: Free, Offset: 0, Size: 4096, Tenant: 7},
		{At: 40, Kind: Read, Offset: 0, Size: 512, Priority: true},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ops) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, ops)
	}

	// Tenant-0, non-priority ops emit no flags: the encoding is the v1
	// line format byte for byte.
	buf.Reset()
	if err := Encode(&buf, []Op{{At: 5, Kind: Write, Offset: 0, Size: 4096}}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "5 W 0 4096\n" {
		t.Fatalf("tenant-0 encoding %q is not v1", buf.String())
	}
}

// TestDecodeTenantFlagErrors: malformed tenant flags fail loudly.
func TestDecodeTenantFlagErrors(t *testing.T) {
	for _, line := range []string{
		"0 W 0 4096 T0",     // tenant 0 may not be tagged explicitly
		"0 W 0 4096 Tx",     // non-numeric
		"0 W 0 4096 T256",   // out of uint8 range
		"0 W 0 4096 T1 T2",  // duplicate flag
		"0 W 0 4096 T1 P Q", // too many fields
	} {
		if _, err := Decode(strings.NewReader(line)); err == nil {
			t.Errorf("line %q decoded without error", line)
		}
	}
}

// TestMergeTenantsDeterministic: the merged mix is a pure function of
// its sources — same generators, same tags, same interleave, every run
// — and its timestamps are monotone even under bursty warps.
func TestMergeTenantsDeterministic(t *testing.T) {
	build := func() []TenantStream {
		mk := func(seed int64) Stream {
			rng := rand.New(rand.NewSource(seed))
			i := 0
			var at sim.Time
			return Func(func() (Op, bool) {
				if i >= 200 {
					return Op{}, false
				}
				i++
				at += sim.Time(rng.Intn(50_000))
				return Op{At: at, Kind: Write, Offset: int64(rng.Intn(1<<20)) * 4096, Size: 4096}, true
			})
		}
		return []TenantStream{
			{Tenant: 1, Stream: mk(1)},
			{Tenant: 2, Stream: mk(2), Mod: Modulation{Kind: "bursty", Rate: 2, Period: 5 * sim.Millisecond, Duty: 0.5}},
			{Tenant: 9, Stream: mk(3), Mod: Modulation{Kind: "diurnal", Period: 20 * sim.Millisecond, Phase: 0.5}},
		}
	}
	drain := func() []Op {
		s, err := MergeTenants(build())
		if err != nil {
			t.Fatal(err)
		}
		ops := Collect(s)
		if err := Err(s); err != nil {
			t.Fatal(err)
		}
		return ops
	}
	a, b := drain(), drain()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("merged tenant mix differs between identical runs")
	}
	if len(a) != 600 {
		t.Fatalf("merged %d ops, want 600", len(a))
	}
	seen := map[uint8]int{}
	for i, op := range a {
		seen[op.Tenant]++
		if i > 0 && op.At < a[i-1].At {
			t.Fatalf("op %d: timestamp %d before predecessor %d", i, op.At, a[i-1].At)
		}
	}
	if seen[1] != 200 || seen[2] != 200 || seen[9] != 200 {
		t.Fatalf("tenant op counts: %v", seen)
	}

	// Tenant 0 sources are rejected: the untagged default cannot join a
	// mix, or its ops would be indistinguishable from legacy traffic.
	if _, err := MergeTenants([]TenantStream{{Tenant: 0, Stream: FromSlice(nil)}}); err == nil {
		t.Fatal("tenant 0 source accepted")
	}
}

// TestModulationWarpMonotone: the arrival warp preserves source order
// for every profile, so a sorted stream stays sorted after shaping.
func TestModulationWarpMonotone(t *testing.T) {
	mods := []Modulation{
		{},
		{Kind: "steady", Rate: 3},
		{Kind: "bursty", Rate: 0.5, Period: sim.Millisecond, Duty: 0.125},
		{Kind: "bursty", Duty: 0.9, Floor: 0.2},
		{Kind: "diurnal", Period: 10 * sim.Millisecond, Floor: 0.05, Phase: 0.25},
	}
	rng := rand.New(rand.NewSource(42))
	times := make([]sim.Time, 500)
	var at sim.Time
	for i := range times {
		at += sim.Time(rng.Intn(2_000_000))
		times[i] = at
	}
	for _, m := range mods {
		if err := m.Validate(); err != nil {
			t.Fatalf("%+v: %v", m, err)
		}
		w := newWarp(m)
		warped := make([]sim.Time, len(times))
		for i, ts := range times {
			warped[i] = w.apply(ts)
		}
		if !sort.SliceIsSorted(warped, func(i, j int) bool { return warped[i] < warped[j] }) {
			t.Errorf("%+v: warp broke monotonicity", m)
		}
	}
	// The zero modulation is the identity: legacy timing passes through.
	w := newWarp(Modulation{})
	for _, ts := range times[:10] {
		if w.apply(ts) != ts {
			t.Fatalf("zero modulation warped %d to %d", ts, w.apply(ts))
		}
	}
}

// TestDecodeCSVGolden replays the checked-in MSR-Cambridge sample and
// pins the exact decoded trace: timestamps rebased to 0 in 100 ns
// ticks and clamped monotone, hostnames mapped to tenants in
// first-seen order, types parsed case-insensitively, header skipped.
func TestDecodeCSVGolden(t *testing.T) {
	f, err := os.Open("testdata/msr_sample.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	src := DecodeCSV(f, MSRLayout())
	ops := Collect(src)
	if err := Err(src); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, ops); err != nil {
		t.Fatal(err)
	}
	want := "" +
		"0 R 7014609920 24576 T1\n" +
		"1332052600 W 7014609920 8192 T1\n" +
		"2332052600 R 1048576 4096 T2\n" +
		"2332052600 W 2097152 4096 T1\n"
	if buf.String() != want {
		t.Fatalf("decoded trace:\n%swant:\n%s", buf.String(), want)
	}
}

// TestDecodeCSVErrors: malformed rows fail with the line number; only
// the first row may be a header.
func TestDecodeCSVErrors(t *testing.T) {
	for _, src := range []string{
		"1000,h,0,Read,0\n",              // too few columns
		"1000,h,0,Trim,0,4096,1\n",       // unknown type
		"1000,h,0,Read,x,4096,1\n",       // bad offset
		"1000,h,0,Read,0,4096,1\nnope\n", // non-header bad row later
		"1000,h,0,Read,0,-4096,1\n",      // invalid op (negative size)
	} {
		st := DecodeCSV(strings.NewReader(src), MSRLayout())
		Collect(st)
		if Err(st) == nil {
			t.Errorf("source %q decoded without error", src)
		}
	}
}
