// Command simd serves the simulator as an HTTP service: submit
// simulation jobs (any registered device profile driven by any named
// workload generator), watch their telemetry stream live, sweep whole
// parameter grids as campaigns, and rerun any of the paper's
// experiments remotely. Identical jobs are served from a
// content-addressed result cache — sound because every simulation is
// deterministic from its spec. Peered instances (-self/-peers) share
// one logical cache: keys are consistent-hashed across the fleet,
// misses fetch from (and coalesce on) the key's owner, and identical
// concurrent requests collapse to one simulation fleet-wide.
//
//	simd -addr :8080
//	simd -addr :8080 -self http://a:8080 -peers http://b:8080,http://c:8080
//	curl -s localhost:8080/profiles
//	curl -s -X POST -d '{"profile":"ssd","workload":"synthetic",
//	    "params":{"ops":100000,"capacity_bytes":8388608,"seed":1}}' localhost:8080/jobs
//	curl -s 'localhost:8080/jobs/job-1?wait=1'
//	curl -sN localhost:8080/jobs/job-1/stream
//	curl -s -X POST -d '{"template":{...},"axes":[{"name":"params.seed",
//	    "range":{"from":1,"to":10}}]}' localhost:8080/campaigns
//	curl -s 'localhost:8080/campaigns/campaign-1/table?rows=params.seed&cols=options.scheduler'
//	curl -s -X POST localhost:8080/experiments/table2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ossd/internal/campaign"
	"ossd/internal/simsvc"
)

// parseTenantQuotas turns "-tenant-quota 7=2,9=1" into the manager's
// quota map. Tenant 0 is the untenanted class and cannot be capped.
func parseTenantQuotas(s string) (map[uint8]int, error) {
	if s == "" {
		return nil, nil
	}
	out := map[uint8]int{}
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		var tenant, max int
		if _, err := fmt.Sscanf(pair, "%d=%d", &tenant, &max); err != nil {
			return nil, fmt.Errorf("-tenant-quota: %q is not tenant=max", pair)
		}
		if tenant < 1 || tenant > 255 {
			return nil, fmt.Errorf("-tenant-quota: tenant %d outside 1-255", tenant)
		}
		if max < 1 {
			return nil, fmt.Errorf("-tenant-quota: cap %d for tenant %d must be >= 1", max, tenant)
		}
		out[uint8(tenant)] = max
	}
	return out, nil
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		backlog  = flag.Int("backlog", 0, "queued-job bound before load shedding (0 = 256)")
		cacheN   = flag.Int("cache", 0, "result-cache entries (0 = 1024)")
		sample   = flag.Int("sample", 0, "telemetry sample cadence in ops (0 = 1000)")
		maxCells = flag.Int("max-cells", 0, "campaign expansion guard in cells (0 = 4096)")
		shed     = flag.Bool("shed", false, "reject full-backlog submits with HTTP 429 (counted in /statsz) instead of 503")
		quotas   = flag.String("tenant-quota", "", "per-tenant in-flight job caps as tenant=max pairs, e.g. 7=2,9=1 (unlisted tenants are uncapped)")
		self     = flag.String("self", "", "this instance's base URL in the fleet (e.g. http://a:8080); required with -peers")
		peers    = flag.String("peers", "", "comma-separated peer base URLs forming the cache tier's consistent-hash ring")
		peerWait = flag.Duration("peer-timeout", 0, "bound on one owner fetch, including coalescing behind the owner's in-flight run (0 = 2m)")
	)
	flag.Parse()

	tenantQuotas, err := parseTenantQuotas(*quotas)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(2)
	}

	var tierCfg *simsvc.TierConfig
	if *peers != "" {
		if *self == "" {
			fmt.Fprintln(os.Stderr, "simd: -peers requires -self (every instance must know its own ring address)")
			os.Exit(2)
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		tierCfg = &simsvc.TierConfig{Self: *self, Peers: peerList, FetchTimeout: *peerWait}
		fmt.Fprintf(os.Stderr, "simd: cache tier: self=%s peers=%s\n", *self, strings.Join(peerList, ","))
	}

	mgr := simsvc.New(simsvc.Options{
		Workers:      *workers,
		Backlog:      *backlog,
		CacheEntries: *cacheN,
		SampleEvery:  *sample,
		Shed:         *shed,
		Tier:         tierCfg,
		TenantQuotas: tenantQuotas,
	})
	camp := campaign.New(mgr, campaign.Options{MaxCells: *maxCells})
	mux := http.NewServeMux()
	camp.Register(mux)
	mux.Handle("/", mgr.Handler())
	srv := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "simd: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful shutdown: cancel in-flight jobs first so handlers blocked
	// on ?wait=1 or /stream complete with responses, then stop accepting
	// requests and drain the pool.
	fmt.Fprintln(os.Stderr, "simd: shutting down")
	camp.CancelAll()
	mgr.CancelAll()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "simd:", err)
	}
	mgr.Close()
}
