package experiments

import (
	"fmt"

	"ossd/internal/core"
	"ossd/internal/runner"
	"ossd/internal/stats"
	"ossd/internal/trace"
)

// Figure2Result reproduces Figure 2: write bandwidth vs. write size on
// the S2slc-class device (1 MB stripe). Bandwidth peaks when the write
// size is a multiple of the stripe and drops when a trailing partial
// stripe forces read-modify-write — the saw-tooth.
type Figure2Result struct {
	// Series maps write size (MB) to bandwidth (MB/s).
	Series stats.Series
	// PeakMBps and TroughMBps summarize the saw-tooth amplitude over the
	// sizes past the first stripe.
	PeakMBps, TroughMBps float64
}

// ID implements Result.
func (Figure2Result) ID() string { return "figure2" }

func (r Figure2Result) String() string {
	out := "Figure 2: Write Amplification (bandwidth vs write size, 1 MB stripe)\n"
	out += r.Series.String()
	t := stats.NewTable("", "", "")
	t.AddRow("peak MB/s (stripe-aligned sizes)", r.PeakMBps)
	t.AddRow("trough MB/s (stripe+partial sizes)", r.TroughMBps)
	return out + t.String()
}

// Figure2Options tunes the sweep.
type Figure2Options struct {
	// MaxBytes is the largest write size (default 4 MB; the paper sweeps
	// to 9 MB — pass 9<<20 for the full axis).
	MaxBytes int64
	// StepBytes is the sweep step (default 256 KB).
	StepBytes int64
	// BytesPerPoint bounds each measurement (default 24 MB).
	BytesPerPoint int64
	// Workers caps the worker pool (0 = runner default).
	Workers int
}

func (o *Figure2Options) defaults() {
	if o.MaxBytes == 0 {
		o.MaxBytes = 4 << 20
	}
	if o.StepBytes == 0 {
		o.StepBytes = 256 << 10
	}
	if o.BytesPerPoint == 0 {
		o.BytesPerPoint = 24 << 20
	}
}

// Figure2 runs the sweep, measuring sustained sequential-write bandwidth
// at each request size. Every point is one spec on its own fresh,
// preconditioned S2slc device, so all points start from the identical
// fully-mapped steady state and sweep order cannot leak between them.
func Figure2(opts Figure2Options) (Figure2Result, error) {
	opts.defaults()
	var res Figure2Result
	res.Series.Name = "write-size(MB) bandwidth(MB/s)"
	p, err := core.ProfileByName("S2slc")
	if err != nil {
		return res, err
	}
	stripe := p.SSD.StripeBytes
	var sizes []int64
	var specs []runner.Spec[float64]
	for size := opts.StepBytes; size <= opts.MaxBytes; size += opts.StepBytes {
		size := size
		sizes = append(sizes, size)
		specs = append(specs, runner.Spec[float64]{
			Name:    fmt.Sprintf("figure2/%dKiB", size>>10),
			Profile: p.Name,
			Run: func() (float64, error) {
				d, err := preconditioned(p)
				if err != nil {
					return 0, err
				}
				return core.MeasureBandwidth(d, core.BWOptions{
					Kind:       trace.Write,
					Pattern:    core.Sequential,
					ReqBytes:   size,
					TotalBytes: opts.BytesPerPoint,
					Depth:      1,
				})
			},
		})
	}
	bws, err := runner.Run(specs, runner.Options{Workers: opts.Workers})
	if err != nil {
		return res, err
	}
	var peaks, troughs []float64
	for i, size := range sizes {
		bw := bws[i]
		res.Series.Add(float64(size)/1e6, bw)
		if size >= stripe {
			if size%stripe == 0 {
				peaks = append(peaks, bw)
			} else {
				troughs = append(troughs, bw)
			}
		}
	}
	_, res.PeakMBps, _ = stats.Summarize(peaks)
	_, res.TroughMBps, _ = stats.Summarize(troughs)
	return res, nil
}
