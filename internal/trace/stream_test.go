package trace

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"ossd/internal/sim"
)

func sampleOps() []Op {
	return []Op{
		{At: 0, Kind: Write, Offset: 0, Size: 4096},
		{At: 10, Kind: Read, Offset: 4096, Size: 4096, Priority: true},
		{At: 20, Kind: Free, Offset: 0, Size: 4096},
		{At: 30, Kind: Write, Offset: 8192, Size: 8192},
	}
}

func TestFromSliceCollectRoundTrip(t *testing.T) {
	ops := sampleOps()
	got := Collect(FromSlice(ops))
	if !reflect.DeepEqual(ops, got) {
		t.Fatalf("round trip mismatch:\n%v\n%v", ops, got)
	}
	// Exhausted streams keep reporting false.
	s := FromSlice(ops)
	Collect(s)
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted stream yielded an op")
	}
	if got := Collect(FromSlice(nil)); len(got) != 0 {
		t.Fatalf("empty stream collected %v", got)
	}
}

func TestFuncStream(t *testing.T) {
	i := 0
	s := Func(func() (Op, bool) {
		if i >= 3 {
			return Op{}, false
		}
		i++
		return Op{Kind: Write, Offset: int64(i) * 4096, Size: 4096}, true
	})
	if got := Collect(s); len(got) != 3 || got[2].Offset != 3*4096 {
		t.Fatalf("func stream: %v", got)
	}
}

func TestLimit(t *testing.T) {
	ops := sampleOps()
	if got := Collect(Limit(FromSlice(ops), 2)); !reflect.DeepEqual(got, ops[:2]) {
		t.Fatalf("limit 2: %v", got)
	}
	if got := Collect(Limit(FromSlice(ops), 0)); len(got) != 0 {
		t.Fatalf("limit 0: %v", got)
	}
	// Limit beyond length is the identity.
	if got := Collect(Limit(FromSlice(ops), 100)); !reflect.DeepEqual(got, ops) {
		t.Fatalf("limit 100: %v", got)
	}
}

func TestShift(t *testing.T) {
	got := Collect(Shift(FromSlice(sampleOps()), 5*sim.Millisecond))
	for i, o := range got {
		if want := sampleOps()[i].At + 5*sim.Millisecond; o.At != want {
			t.Fatalf("op %d at %v, want %v", i, o.At, want)
		}
	}
}

func TestMergeOrdersByTimestamp(t *testing.T) {
	a := []Op{
		{At: 0, Kind: Write, Offset: 0, Size: 512},
		{At: 20, Kind: Write, Offset: 512, Size: 512},
	}
	b := []Op{
		{At: 10, Kind: Read, Offset: 0, Size: 512},
		{At: 30, Kind: Read, Offset: 512, Size: 512},
	}
	got := Collect(Merge(FromSlice(a), FromSlice(b)))
	var ats []sim.Time
	for _, o := range got {
		ats = append(ats, o.At)
	}
	if !reflect.DeepEqual(ats, []sim.Time{0, 10, 20, 30}) {
		t.Fatalf("merge order: %v", ats)
	}
}

func TestMergeTieBreaksByArgumentOrder(t *testing.T) {
	a := []Op{{At: 5, Kind: Write, Offset: 0, Size: 512}}
	b := []Op{{At: 5, Kind: Read, Offset: 0, Size: 512}}
	got := Collect(Merge(FromSlice(a), FromSlice(b)))
	if len(got) != 2 || got[0].Kind != Write || got[1].Kind != Read {
		t.Fatalf("tie break: %v", got)
	}
	// Empty and single-source merges degenerate cleanly.
	if got := Collect(Merge()); len(got) != 0 {
		t.Fatalf("empty merge: %v", got)
	}
	if got := Collect(Merge(FromSlice(a))); len(got) != 1 {
		t.Fatalf("single merge: %v", got)
	}
}

func TestTallyMatchesSummarize(t *testing.T) {
	ops := sampleOps()
	var st Stats
	got := Collect(Tally(FromSlice(ops), &st))
	if !reflect.DeepEqual(ops, got) {
		t.Fatal("tally altered the stream")
	}
	if want := Summarize(ops); !reflect.DeepEqual(st, want) {
		t.Fatalf("tally stats %+v, want %+v", st, want)
	}
}

func TestErrPropagation(t *testing.T) {
	// A plain stream has no error.
	if err := Err(FromSlice(sampleOps())); err != nil {
		t.Fatal(err)
	}
	// A decoder error surfaces through wrapping combinators.
	d := NewDecoder(strings.NewReader("1 W 0 4096\nbogus line\n"))
	s := Limit(Shift(d, 5), 10)
	got := Collect(s)
	if len(got) != 1 {
		t.Fatalf("collected %d ops before error", len(got))
	}
	if Err(s) == nil {
		t.Fatal("decoder error lost through combinators")
	}
}

func TestDecoderStreamRoundTrip(t *testing.T) {
	ops := sampleOps()
	var buf bytes.Buffer
	n, err := Copy(&buf, FromSlice(ops))
	if err != nil || n != len(ops) {
		t.Fatalf("copy: n=%d err=%v", n, err)
	}
	d := NewDecoder(&buf)
	got := Collect(d)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ops, got) {
		t.Fatalf("stream codec round trip:\n%v\n%v", ops, got)
	}
}

// The codec must round-trip every op kind and flag — including Free and
// Priority, which the experiments depend on (§3.5, §3.6).
func TestCodecRoundTripFreeAndPriority(t *testing.T) {
	ops := []Op{
		{At: 100, Kind: Free, Offset: 1 << 20, Size: 64 << 10},
		{At: 200, Kind: Write, Offset: 0, Size: 4096, Priority: true},
		{At: 300, Kind: Read, Offset: 4096, Size: 4096, Priority: true},
		{At: 400, Kind: Free, Offset: 2 << 20, Size: 4096},
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Comment("header survives"); err != nil {
		t.Fatal(err)
	}
	for _, o := range ops {
		if err := enc.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ops, got) {
		t.Fatalf("free/priority round trip:\n%v\n%v", ops, got)
	}
}

func TestCopyReportsStreamError(t *testing.T) {
	d := NewDecoder(strings.NewReader("1 W 0 4096\nnot an op\n"))
	var buf bytes.Buffer
	if _, err := Copy(&buf, d); err == nil {
		t.Fatal("copy swallowed decoder error")
	}
}

func TestCopyRejectsInvalidOp(t *testing.T) {
	var buf bytes.Buffer
	bad := FromSlice([]Op{{Kind: Write, Offset: 0, Size: 0}})
	if _, err := Copy(&buf, bad); err == nil {
		t.Fatal("encoded invalid op")
	}
}

func TestAlignStreamMatchesAlignWith(t *testing.T) {
	// Streaming and batch alignment must produce the same trace.
	var in []Op
	at := sim.Time(0)
	for i := 0; i < 200; i++ {
		at += sim.Time(i%7) * sim.Microsecond
		kind := Write
		if i%11 == 0 {
			kind = Read
		}
		in = append(in, Op{
			At:     at,
			Kind:   kind,
			Offset: int64(i%13) * 4096,
			Size:   4096 * int64(i%3+1),
		})
	}
	opts := AlignOptions{MaxGap: 10 * sim.Microsecond, ReadBarrier: true}
	want, err := AlignWith(in, 32<<10, opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := AlignStream(FromSlice(in), 32<<10, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(s)
	if err := Err(s); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("stream align diverged: %d vs %d ops", len(want), len(got))
	}
}

func TestAlignStreamRejectsBadStripe(t *testing.T) {
	if _, err := AlignStream(FromSlice(nil), 0, AlignOptions{}); err == nil {
		t.Fatal("accepted zero stripe")
	}
}

func TestAlignStreamSurfacesPushError(t *testing.T) {
	s, err := AlignStream(FromSlice([]Op{{Kind: Write, Offset: 0, Size: 0}}), 4096, AlignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := Collect(s); len(got) != 0 {
		t.Fatalf("emitted ops from invalid input: %v", got)
	}
	if Err(s) == nil {
		t.Fatal("validation error lost")
	}
}

func TestAlignStreamDiscardsBufferOnSourceError(t *testing.T) {
	// A sub-stripe write sits in the aligner's buffer when the source
	// fails; it must be discarded, not emitted as a clean flush.
	d := NewDecoder(strings.NewReader("0 W 0 4096\nbroken line\n"))
	s, err := AlignStream(d, 32<<10, AlignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := Collect(s); len(got) != 0 {
		t.Fatalf("emitted %d ops after source error", len(got))
	}
	if Err(s) == nil {
		t.Fatal("source error lost")
	}
}

func TestDecoderIOErr(t *testing.T) {
	d := NewDecoder(errReader{})
	if _, ok := d.Next(); ok {
		t.Fatal("read from broken reader")
	}
	if !errors.Is(d.Err(), errBroken) {
		t.Fatalf("err = %v", d.Err())
	}
}

var errBroken = errors.New("broken")

type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, errBroken }
