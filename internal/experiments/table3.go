package experiments

import (
	"fmt"

	"ossd/internal/core"
	"ossd/internal/flash"
	"ossd/internal/runner"
	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/ssd"
	"ossd/internal/stats"
	"ossd/internal/trace"
	"ossd/internal/workload"
)

// Table3Result reproduces Table 3: average response time of 4 KB writes,
// unaligned vs. merged-and-aligned, across degrees of sequentiality, on
// the paper's configuration (one gang of eight packages, 32 KB logical
// page spanning all of them).
type Table3Result struct {
	SeqProbs  []float64
	Unaligned []float64 // mean response ms
	Aligned   []float64
}

// ID implements Result.
func (Table3Result) ID() string { return "table3" }

func (r Table3Result) String() string {
	t := stats.NewTable("Table 3: Improved Response Time with Write Alignment (ms)",
		"Scheme", "p=0", "p=0.2", "p=0.4", "p=0.6", "p=0.8")
	row := func(name string, xs []float64) {
		cells := []any{name}
		for _, x := range xs {
			cells = append(cells, x)
		}
		t.AddRow(cells...)
	}
	row("Unaligned", r.Unaligned)
	row("Aligned", r.Aligned)
	t.AddNote("unaligned is flat (every 4 KB write pays a full-stripe RMW);")
	t.AddNote("aligned improves with sequentiality as runs merge into full stripes.")
	return t.String()
}

// table3Device builds the scaled Table 3 configuration: 8 packages,
// 32 KB logical page striped across the gang.
func table3Device() (*core.SSD, error) {
	d, err := core.Open("ssd", core.WithSSD(ssd.Config{
		Elements:      8,
		Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 64, BlocksPerPackage: 128},
		Overprovision: 0.10,
		Layout:        ssd.FullStripe,
		Scheduler:     sched.SWTF,
		StripeBytes:   32 << 10,
		CtrlOverhead:  20 * sim.Microsecond,
		GCLow:         0.05, GCCritical: 0.02,
	}))
	if err != nil {
		return nil, err
	}
	return d.(*core.SSD), nil
}

// Table3Options tunes the experiment.
type Table3Options struct {
	// Ops is the write count per point (default 12000).
	Ops int
	// MeanInterarrival controls load (default 900 us — high utilization,
	// the regime where alignment shows its full effect without queue
	// blow-up).
	MeanInterarrival sim.Time
	// Seed drives the workloads.
	Seed int64
	// Workers caps the worker pool (0 = runner default).
	Workers int
}

func (o *Table3Options) defaults() {
	if o.Ops == 0 {
		o.Ops = 12000
	}
	if o.MeanInterarrival == 0 {
		o.MeanInterarrival = 900 * sim.Microsecond
	}
}

// table3Run replays one write stream on a fresh 60%-preconditioned
// device and returns the mean write response over the replayed window
// only (moderate utilization, so cleaning cost reflects a working
// device, not a pathological full one). mk builds the stream after
// preconditioning, so the whole pipeline — generation, alignment,
// replay — runs at constant memory.
func table3Run(mk func() (trace.Stream, error)) (float64, error) {
	d, err := table3Device()
	if err != nil {
		return 0, err
	}
	if err := core.PreconditionFrac(d, 1<<20, 0.6); err != nil {
		return 0, err
	}
	stream, err := mk()
	if err != nil {
		return 0, err
	}
	// Measure only the trace's writes: snapshot before.
	before := d.Raw.Metrics().WriteResp
	if err := d.Drive(trace.Shift(stream, d.Engine().Now())); err != nil {
		return 0, err
	}
	after := d.Raw.Metrics().WriteResp
	// Means over the delta window.
	n := after.N() - before.N()
	if n == 0 {
		return 0, nil
	}
	total := after.Mean()*float64(after.N()) - before.Mean()*float64(before.N())
	return total / float64(n), nil
}

// Table3 runs both schemes at each sequentiality. Each spec regenerates
// its own workload stream from the seed (streams are single-use), so the
// two replays of a point stay byte-equal without sharing a slice.
func Table3(opts Table3Options) (Table3Result, error) {
	opts.defaults()
	res := Table3Result{SeqProbs: []float64{0, 0.2, 0.4, 0.6, 0.8}}
	probe, err := table3Device()
	if err != nil {
		return res, err
	}
	space := int64(float64(probe.LogicalBytes()) * 0.6)
	var specs []runner.Spec[float64]
	for _, p := range res.SeqProbs {
		cfg := workload.SyntheticConfig{
			Ops:            opts.Ops,
			AddressSpace:   space,
			ReadFrac:       0,
			SeqProb:        p,
			ReqSize:        4096,
			InterarrivalLo: 0,
			InterarrivalHi: 2 * opts.MeanInterarrival,
			Seed:           opts.Seed + int64(p*100),
		}
		for _, v := range []struct {
			label string
			mk    func() (trace.Stream, error)
		}{
			{"unaligned", func() (trace.Stream, error) { return workload.Synthetic(cfg) }},
			{"aligned", func() (trace.Stream, error) {
				s, err := workload.Synthetic(cfg)
				if err != nil {
					return nil, err
				}
				return trace.AlignStream(s, 32<<10, trace.AlignOptions{})
			}},
		} {
			v := v
			specs = append(specs, runner.Spec[float64]{
				Name:     fmt.Sprintf("table3/p%.1f/%s", p, v.label),
				Workload: v.label,
				Seed:     opts.Seed,
				Run:      func() (float64, error) { return table3Run(v.mk) },
			})
		}
	}
	means, err := runner.Run(specs, runner.Options{Workers: opts.Workers})
	if err != nil {
		return res, err
	}
	for i := range res.SeqProbs {
		res.Unaligned = append(res.Unaligned, means[i*2])
		res.Aligned = append(res.Aligned, means[i*2+1])
	}
	return res, nil
}
