package core

import (
	"strings"
	"testing"

	"ossd/internal/ftl"
	"ossd/internal/sched"
	"ossd/internal/trace"
)

func TestOpenResolvesEveryRegisteredProfile(t *testing.T) {
	for _, p := range ExtendedProfiles() {
		d, err := Open(p.Name)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if d.LogicalBytes() <= 0 {
			t.Fatalf("%s: no capacity", p.Name)
		}
	}
}

func TestOpenUnknownProfile(t *testing.T) {
	_, err := Open("no-such-device")
	if err == nil || !strings.Contains(err.Error(), "no-such-device") {
		t.Fatalf("err = %v", err)
	}
}

func TestOpenKindBases(t *testing.T) {
	wantKind := map[string]Kind{
		"ssd": KindSSD, "hdd": KindHDD, "mems": KindMEMS, "raid": KindRAID, "osd": KindOSD,
	}
	for name, kind := range wantKind {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Kind != kind {
			t.Fatalf("%s resolved to kind %s", name, p.Kind)
		}
		d, err := Open(name)
		if err != nil {
			t.Fatal(err)
		}
		switch name {
		case "ssd":
			if _, ok := d.(*SSD); !ok {
				t.Fatalf("ssd built %T", d)
			}
		case "hdd":
			if _, ok := d.(*HDD); !ok {
				t.Fatalf("hdd built %T", d)
			}
		case "mems":
			if _, ok := d.(*MEMS); !ok {
				t.Fatalf("mems built %T", d)
			}
		case "raid":
			if _, ok := d.(*RAID); !ok {
				t.Fatalf("raid built %T", d)
			}
		case "osd":
			if _, ok := d.(*OSD); !ok {
				t.Fatalf("osd built %T", d)
			}
		}
	}
}

func TestRegisterRejectsDuplicatesAndAnonymous(t *testing.T) {
	if err := Register(Profile{}); err == nil {
		t.Fatal("registered a nameless profile")
	}
	if err := Register(Profile{Name: "ssd"}); err == nil {
		t.Fatal("registered a duplicate name")
	}
}

func TestRegisterCustomProfile(t *testing.T) {
	cfg := BaseSSDConfig()
	cfg.Elements = 2
	p := Profile{
		Name:        "test-custom-ssd",
		Description: "registered by the test suite",
		Kind:        KindSSD,
		SSD:         cfg,
		SeqReqBytes: 4096, RandReqBytes: 4096,
		SeqReadDepth: 1, RandReadDepth: 1, SeqWriteDepth: 1, RandWriteDepth: 1,
	}
	if err := Register(p); err != nil {
		t.Fatal(err)
	}
	d, err := Open("test-custom-ssd")
	if err != nil {
		t.Fatal(err)
	}
	if sd, ok := d.(*SSD); !ok || sd.Raw.Config().Elements != 2 {
		t.Fatalf("custom profile built %T", d)
	}
	// And the registry lists it.
	found := false
	for _, q := range ExtendedProfiles() {
		if q.Name == p.Name {
			found = true
		}
	}
	if !found {
		t.Fatal("registered profile missing from listing")
	}
}

func TestOptionsApply(t *testing.T) {
	d, err := Open("ssd",
		WithScheme(ftl.BlockMapped),
		WithScheduler(sched.FCFS),
		WithStripe(32<<10),
		WithInformed(true),
		WithPriorityAware(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := d.(*SSD).Raw.Config()
	if cfg.Scheme != ftl.BlockMapped || cfg.Scheduler != sched.FCFS {
		t.Fatalf("scheme/scheduler: %+v", cfg)
	}
	if cfg.StripeBytes != 32<<10 || !cfg.Informed || !cfg.PriorityAware {
		t.Fatalf("stripe/informed/aware: %+v", cfg)
	}
}

func TestOptionsDoNotMutateRegistry(t *testing.T) {
	if _, err := Open("ssd", WithScheme(ftl.BlockMapped)); err != nil {
		t.Fatal(err)
	}
	p, err := ProfileByName("ssd")
	if err != nil {
		t.Fatal(err)
	}
	if p.SSD.Scheme == ftl.BlockMapped {
		t.Fatal("option leaked into the registry")
	}
}

func TestWithCapacity(t *testing.T) {
	small, err := Open("ssd", WithCapacity(32<<20))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Open("ssd", WithCapacity(256<<20))
	if err != nil {
		t.Fatal(err)
	}
	if small.LogicalBytes() >= big.LogicalBytes() {
		t.Fatalf("capacity option ignored: %d vs %d", small.LogicalBytes(), big.LogicalBytes())
	}
	// Within geometry rounding of the request.
	if got := small.LogicalBytes(); got < 24<<20 || got > 48<<20 {
		t.Fatalf("32 MiB request built %d bytes", got)
	}
	h, err := Open("hdd", WithCapacity(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	if h.LogicalBytes() != 1<<30 {
		t.Fatalf("hdd capacity %d", h.LogicalBytes())
	}
}

func TestOptionsRejectWrongKind(t *testing.T) {
	if _, err := Open("hdd", WithScheme(ftl.PageMapped)); err == nil {
		t.Fatal("hdd accepted an FTL scheme")
	}
	if _, err := Open("mems", WithStripe(64<<10)); err == nil {
		t.Fatal("mems accepted a stripe")
	}
	if _, err := Open("raid", WithInformed(true)); err == nil {
		t.Fatal("raid accepted informed cleaning")
	}
}

func TestWithQueueDepthAndSeed(t *testing.T) {
	p, err := ProfileByName("ssd")
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []Option{WithQueueDepth(8), WithSeed(99)} {
		if err := opt(&p); err != nil {
			t.Fatal(err)
		}
	}
	if p.SeqReadDepth != 8 || p.RandWriteDepth != 8 || p.Seed != 99 {
		t.Fatalf("depth/seed options: %+v", p)
	}
}

// Drive on a registry-built device honors timestamps and leaves the
// device drained — the stream path end to end.
func TestOpenThenDrive(t *testing.T) {
	d, err := Open("ssd")
	if err != nil {
		t.Fatal(err)
	}
	var st trace.Stats
	s := trace.Tally(trace.FromSlice([]trace.Op{
		{At: 0, Kind: trace.Write, Offset: 0, Size: 4096},
		{At: 1000, Kind: trace.Write, Offset: 4096, Size: 4096},
		{At: 2000, Kind: trace.Read, Offset: 0, Size: 4096},
		{At: 3000, Kind: trace.Free, Offset: 4096, Size: 4096},
	}), &st)
	if err := d.Drive(s); err != nil {
		t.Fatal(err)
	}
	if st.Ops != 4 || st.Frees != 1 {
		t.Fatalf("tally: %+v", st)
	}
	m := d.Metrics()
	if m.BytesWritten != 8192 || m.BytesRead != 4096 || m.Frees != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	if d.Engine().Pending() != 0 {
		t.Fatal("drive left events pending")
	}
}

// TestWithShards pins the suite-wide shard option contract: shardable
// flash profiles gain the parallel dataplane, everything else — coupled
// SSD configurations and non-flash kinds alike — silently stays
// single-engine, and the process default fills in when the profile does
// not choose.
func TestWithShards(t *testing.T) {
	d, err := Open("ssd", WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if s := d.(*SSD); !s.Raw.Sharded() || s.Raw.Shards() != 2 {
		t.Fatalf("ssd not sharded: sharded=%v shards=%d", s.Raw.Sharded(), s.Raw.Shards())
	}

	// S1slc models its host link, which serializes all elements: the
	// gate refuses and the build falls back silently.
	d, err = Open("S1slc", WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if d.(*SSD).Raw.Sharded() {
		t.Fatal("link-limited profile must stay single-engine")
	}

	// Non-flash kinds accept the option as a no-op, so one -shards flag
	// can cover a whole suite.
	for _, name := range []string{"hdd", "mems", "raid", "osd"} {
		if _, err := Open(name, WithShards(4)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}

	if _, err := Open("ssd", WithShards(-1)); err == nil {
		t.Fatal("negative shard count accepted")
	}

	// The process default applies when the profile leaves Shards zero,
	// and an explicit WithShards(1) overrides it back to single-engine.
	prev := SetDefaultShards(2)
	defer SetDefaultShards(prev)
	d, err = Open("ssd")
	if err != nil {
		t.Fatal(err)
	}
	if !d.(*SSD).Raw.Sharded() {
		t.Fatal("process default did not shard")
	}
	d, err = Open("ssd", WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if d.(*SSD).Raw.Sharded() {
		t.Fatal("WithShards(1) must force single-engine")
	}
}
