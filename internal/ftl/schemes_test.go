package ftl

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ossd/internal/flash"
	"ossd/internal/sim"
)

func schemeConfig() Config {
	return Config{
		Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 8, BlocksPerPackage: 32},
		Timing:        flash.TimingFor(flash.SLC),
		Overprovision: 0.15,
	}
}

func allSchemes() []Scheme { return []Scheme{PageMapped, BlockMapped, HybridLog} }

func TestSchemeStrings(t *testing.T) {
	if PageMapped.String() != "page-mapped" || BlockMapped.String() != "block-mapped" || HybridLog.String() != "hybrid-log" {
		t.Fatal("scheme strings wrong")
	}
}

func TestNewBackendUnknown(t *testing.T) {
	if _, err := NewBackend(Scheme(99), schemeConfig()); err == nil {
		t.Fatal("accepted unknown scheme")
	}
}

func TestBackendConstruction(t *testing.T) {
	for _, s := range allSchemes() {
		b, err := NewBackend(s, schemeConfig())
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if b.LogicalPages() <= 0 {
			t.Fatalf("%v: no capacity", s)
		}
		if b.PageSize() != 4096 {
			t.Fatalf("%v: page size %d", s, b.PageSize())
		}
		if b.FreeFraction() <= 0 || b.FreeFraction() > 1 {
			t.Fatalf("%v: free fraction %v", s, b.FreeFraction())
		}
	}
}

func TestBackendValidationErrors(t *testing.T) {
	bad := schemeConfig()
	bad.Geom.BlocksPerPackage = 2
	for _, s := range allSchemes() {
		if _, err := NewBackend(s, bad); err == nil {
			t.Errorf("%v accepted 2-block package", s)
		}
	}
	for _, s := range allSchemes() {
		b, err := NewBackend(s, schemeConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.WritePage(-1); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("%v write -1: %v", s, err)
		}
		if _, err := b.ReadPage(b.LogicalPages()); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("%v read beyond: %v", s, err)
		}
		if err := b.Free(-5); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("%v free -5: %v", s, err)
		}
	}
}

// Every scheme must present the same logical semantics: written pages are
// mapped, informed frees unmap, reads always succeed.
func TestBackendSemanticsUniform(t *testing.T) {
	for _, s := range allSchemes() {
		cfg := schemeConfig()
		cfg.Informed = true
		b, err := NewBackend(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if b.Mapped(3) {
			t.Errorf("%v: fresh page mapped", s)
		}
		if _, err := b.WritePage(3); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !b.Mapped(3) {
			t.Errorf("%v: written page not mapped", s)
		}
		if d, err := b.ReadPage(3); err != nil || d <= 0 {
			t.Errorf("%v: read %v %v", s, d, err)
		}
		if err := b.Free(3); err != nil {
			t.Fatal(err)
		}
		if b.Mapped(3) {
			t.Errorf("%v: freed page still mapped", s)
		}
		st := b.Stats()
		if st.HostWrites != 1 || st.HostReads != 1 || st.FreesApplied != 1 {
			t.Errorf("%v: stats %+v", s, st)
		}
		if err := b.CheckInvariants(); err != nil {
			t.Errorf("%v: %v", s, err)
		}
	}
}

// Sequential whole-device writes must succeed on every scheme without
// exploding into merges.
func TestBackendSequentialFill(t *testing.T) {
	for _, s := range allSchemes() {
		b, err := NewBackend(s, schemeConfig())
		if err != nil {
			t.Fatal(err)
		}
		for lpn := 0; lpn < b.LogicalPages(); lpn++ {
			if _, err := b.WritePage(lpn); err != nil {
				t.Fatalf("%v: fill lpn %d: %v", s, lpn, err)
			}
		}
		st := b.Stats()
		if st.PagesMoved != 0 {
			t.Errorf("%v: sequential fill moved %d pages", s, st.PagesMoved)
		}
		if err := b.CheckInvariants(); err != nil {
			t.Errorf("%v: %v", s, err)
		}
	}
}

// Random overwrites after a fill must keep working on every scheme; the
// relocation cost ordering is the classic FTL result:
// page-mapped < hybrid < block-mapped.
func TestBackendRandomOverwriteCostOrdering(t *testing.T) {
	cost := map[Scheme]sim.Time{}
	for _, s := range allSchemes() {
		b, err := NewBackend(s, schemeConfig())
		if err != nil {
			t.Fatal(err)
		}
		for lpn := 0; lpn < b.LogicalPages(); lpn++ {
			if _, err := b.WritePage(lpn); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(77))
		var total sim.Time
		for i := 0; i < 3*b.LogicalPages(); i++ {
			d, err := b.WritePage(rng.Intn(b.LogicalPages()))
			if err != nil {
				t.Fatalf("%v: overwrite %d: %v", s, i, err)
			}
			total += d
		}
		// Drain any deferred cleaning so the comparison is fair.
		for b.CanClean() && b.FreeFraction() < 0.1 {
			d, err := b.CleanOnce()
			if err != nil {
				break
			}
			total += d
		}
		cost[s] = total
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
	}
	if !(cost[PageMapped] < cost[HybridLog] && cost[HybridLog] < cost[BlockMapped]) {
		t.Fatalf("random overwrite cost ordering wrong: page=%v hybrid=%v block=%v",
			cost[PageMapped], cost[HybridLog], cost[BlockMapped])
	}
}

func TestBlockMergeCounts(t *testing.T) {
	b, err := NewBlock(schemeConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Fill one logical block, then rewrite a middle page: the merge
	// copies the other 7 pages.
	for k := 0; k < 8; k++ {
		if _, err := b.WritePage(k); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.WritePage(3); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.PagesMoved != 7 {
		t.Fatalf("merge moved %d pages, want 7", st.PagesMoved)
	}
	if st.Cleans != 1 || st.GCErases != 1 {
		t.Fatalf("merge stats: %+v", st)
	}
}

func TestBlockSwitchMerge(t *testing.T) {
	// A full sequential rewrite of a block goes through a replacement
	// block and costs zero page copies (switch merge).
	b, err := NewBlock(schemeConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		if _, err := b.WritePage(k); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 8; k++ {
		if _, err := b.WritePage(k); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Stats()
	if st.PagesMoved != 0 {
		t.Fatalf("switch merge moved %d pages, want 0", st.PagesMoved)
	}
	if st.GCErases != 1 {
		t.Fatalf("switch merge erases = %d, want 1 (the old block)", st.GCErases)
	}
	for k := 0; k < 8; k++ {
		if !b.Mapped(k) {
			t.Fatalf("page %d lost after switch merge", k)
		}
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockReplacementOutOfOrderCloses(t *testing.T) {
	// Open a replacement with a rewrite at page 0, then jump to page 5:
	// the replacement closes (partial merge) and the write proceeds.
	b, err := NewBlock(schemeConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		b.WritePage(k)
	}
	b.WritePage(0) // opens replacement
	if len(b.repl) != 1 {
		t.Fatal("replacement not opened")
	}
	if _, err := b.WritePage(5); err != nil {
		t.Fatal(err)
	}
	if len(b.repl) != 0 {
		t.Fatal("replacement not closed by out-of-order write")
	}
	for k := 0; k < 8; k++ {
		if !b.Mapped(k) {
			t.Fatalf("page %d lost", k)
		}
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockMidBlockFirstWrite(t *testing.T) {
	b, err := NewBlock(schemeConfig())
	if err != nil {
		t.Fatal(err)
	}
	// First write to page 5 of an unmapped block pads pages 0..5.
	if _, err := b.WritePage(5); err != nil {
		t.Fatal(err)
	}
	if !b.Mapped(5) {
		t.Fatal("page 5 unmapped")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockInformedWholeBlockFree(t *testing.T) {
	cfg := schemeConfig()
	cfg.Informed = true
	b, err := NewBlock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		if _, err := b.WritePage(k); err != nil {
			t.Fatal(err)
		}
	}
	before := b.FreeFraction()
	for k := 0; k < 8; k++ {
		if err := b.Free(k); err != nil {
			t.Fatal(err)
		}
	}
	if b.FreeFraction() <= before {
		t.Fatal("whole-block free did not reclaim the block")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHybridLogAbsorbsRandomWrites(t *testing.T) {
	h, err := NewHybrid(schemeConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		if _, err := h.WritePage(k); err != nil {
			t.Fatal(err)
		}
	}
	// A few random overwrites go to the log without any merge.
	for _, lpn := range []int{0, 3, 0, 5} {
		if _, err := h.WritePage(lpn); err != nil {
			t.Fatal(err)
		}
	}
	if st := h.Stats(); st.Cleans != 0 {
		t.Fatalf("log writes triggered %d merges", st.Cleans)
	}
	// Reads see the newest copy (from the log).
	if !h.Mapped(0) || !h.Mapped(3) {
		t.Fatal("log copies not visible")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHybridEvictionMerges(t *testing.T) {
	h, err := NewHybrid(schemeConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := h.LogicalPages()
	for lpn := 0; lpn < n; lpn++ {
		if _, err := h.WritePage(lpn); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 4*n; i++ {
		if _, err := h.WritePage(rng.Intn(n)); err != nil {
			t.Fatalf("overwrite %d: %v", i, err)
		}
	}
	st := h.Stats()
	if st.Cleans == 0 || st.PagesMoved == 0 {
		t.Fatalf("sustained overwrites never merged: %+v", st)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHybridCleanOnce(t *testing.T) {
	h, err := NewHybrid(schemeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.CleanOnce(); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("CleanOnce on empty: %v", err)
	}
	// Create log content, then clean explicitly.
	for k := 0; k < 8; k++ {
		h.WritePage(k)
	}
	h.WritePage(0) // log copy
	if _, err := h.CleanOnce(); err != nil {
		t.Fatal(err)
	}
	if len(h.logBlocks) != 0 {
		t.Fatal("log block not evicted")
	}
	if !h.Mapped(0) {
		t.Fatal("merged page lost")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: every scheme keeps a correct logical view (model-checked map)
// under random write/free interleavings, with invariants intact.
func TestSchemeModelProperty(t *testing.T) {
	for _, s := range allSchemes() {
		s := s
		prop := func(ops []uint16) bool {
			cfg := schemeConfig()
			cfg.Informed = true
			b, err := NewBackend(s, cfg)
			if err != nil {
				return false
			}
			n := b.LogicalPages()
			model := map[int]bool{}
			for _, op := range ops {
				lpn := int(op>>1) % n
				if op%2 == 0 {
					if _, err := b.WritePage(lpn); err != nil {
						return false
					}
					model[lpn] = true
				} else {
					if err := b.Free(lpn); err != nil {
						return false
					}
					delete(model, lpn)
				}
			}
			for lpn := 0; lpn < n; lpn++ {
				if b.Mapped(lpn) != model[lpn] {
					return false
				}
			}
			return b.CheckInvariants() == nil
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(41))}); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
	}
}

// Property: interleaving writes, frees, reads, and explicit cleans keeps
// invariants on the hybrid scheme (its merge logic is the most intricate).
func TestHybridInvariantProperty(t *testing.T) {
	prop := func(ops []uint16) bool {
		cfg := schemeConfig()
		cfg.Informed = true
		h, err := NewHybrid(cfg)
		if err != nil {
			return false
		}
		n := h.LogicalPages()
		for _, op := range ops {
			lpn := int(op>>2) % n
			switch op % 4 {
			case 0, 1:
				if _, err := h.WritePage(lpn); err != nil {
					return false
				}
			case 2:
				if _, err := h.ReadPage(lpn); err != nil {
					return false
				}
			case 3:
				if h.CanClean() {
					if _, err := h.CleanOnce(); err != nil {
						return false
					}
				}
			}
		}
		return h.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(43))}); err != nil {
		t.Fatal(err)
	}
}
