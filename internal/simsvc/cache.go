package simsvc

import (
	"container/list"
	"sync"
)

// cache is the content-addressed result cache: completed result payloads
// keyed by JobSpec.Key, bounded by LRU eviction. Payloads are stored as
// the exact marshaled bytes served to clients, so a hit is byte-identical
// to the run that populated it.
type cache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	byKey   map[uint64]*list.Element
	hits    uint64
	misses  uint64
	evicted uint64
}

// cacheEntry is one memoized payload.
type cacheEntry struct {
	key     uint64
	payload []byte
}

func newCache(capacity int) *cache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &cache{cap: capacity, ll: list.New(), byKey: map[uint64]*list.Element{}}
}

// get returns the payload for key, refreshing its recency. The returned
// slice must not be mutated.
func (c *cache) get(key uint64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).payload, true
}

// put memoizes a payload, evicting the least recently used entry past
// capacity. Concurrent identical jobs may both put; last write wins with
// an identical payload, so the race is benign.
func (c *cache) put(key uint64, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).payload = payload
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, payload: payload})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.evicted++
	}
}

// CacheStats is the cache's observable state (GET /statsz).
type CacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Evicted  uint64 `json:"evicted"`
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
}

func (c *cache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evicted: c.evicted, Entries: c.ll.Len(), Capacity: c.cap}
}
