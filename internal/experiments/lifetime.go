package experiments

import (
	"errors"

	"ossd/internal/core"
	"ossd/internal/flash"
	"ossd/internal/runner"
	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/ssd"
	"ossd/internal/stats"
	"ossd/internal/trace"
)

// LifetimeResult is an extension experiment quantifying §3.5: flash wears
// out, and how the device manages blocks decides how much host data fits
// into the media's erase budget. It drives skewed random writes into
// devices with a tiny per-block erase budget until the first block dies,
// and reports the host volume each configuration survived.
type LifetimeResult struct {
	Configs    []string
	HostMB     []float64 // host data written before first wear-out
	WearSpread []int     // max-min erase count at death
}

// ID implements Result.
func (LifetimeResult) ID() string { return "lifetime" }

func (r LifetimeResult) String() string {
	t := stats.NewTable("Extension: lifetime under skewed writes (erase budget 64 cycles/block)",
		"Config", "HostMB-until-wearout", "WearSpread")
	for i := range r.Configs {
		t.AddRow(r.Configs[i], r.HostMB[i], r.WearSpread[i])
	}
	t.AddNote("wear-leveling converts the media's erase budget into host capacity;")
	t.AddNote("SLC vs MLC shows the 10x endurance gap the paper cites (100K vs 10K cycles).")
	return t.String()
}

// lifetimeDevice builds a small device with an artificially small erase
// budget so wear-out happens in simulable time.
func lifetimeDevice(budget int, wearAware bool, mlc bool) (*core.SSD, error) {
	cfg := ssd.Config{
		Elements:      4,
		Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 32, BlocksPerPackage: 64},
		EraseBudget:   budget,
		Overprovision: 0.12,
		Layout:        ssd.Interleaved,
		Scheduler:     sched.SWTF,
		CtrlOverhead:  5 * sim.Microsecond,
		GCLow:         0.06, GCCritical: 0.03,
		WearAware: wearAware,
		WearDelta: 8,
	}
	if mlc {
		cfg.Timing = flash.TimingFor(flash.MLC)
	}
	d, err := core.Open("ssd", core.WithSSD(cfg))
	if err != nil {
		return nil, err
	}
	return d.(*core.SSD), nil
}

// writeUntilWearOut drives 90/10-skewed random writes and returns host MB
// absorbed before the first wear-out error.
func writeUntilWearOut(d *core.SSD, seed int64) (float64, int, error) {
	if err := core.PreconditionFrac(d, 1<<20, 0.8); err != nil {
		return 0, 0, err
	}
	space := int64(float64(d.LogicalBytes()) * 0.8)
	hot := space / 10
	rng := sim.NewRNG(seed)
	var hostBytes int64
	dead := false
	var issue func()
	eng := d.Engine()
	issue = func() {
		if dead {
			return
		}
		region := hot
		if rng.Bool(0.1) {
			region = space
		}
		op := trace.Op{Kind: trace.Write, Offset: rng.Int63n(region/4096) * 4096, Size: 4096}
		err := d.Raw.Submit(op, func(r *ssd.Request) {
			if r.Err != nil {
				if errors.Is(r.Err, flash.ErrWornOut) {
					dead = true
					return
				}
				dead = true
				return
			}
			hostBytes += 4096
			issue()
		})
		if err != nil {
			dead = true
		}
	}
	for i := 0; i < 4; i++ {
		issue()
	}
	eng.Run()
	min, max := 1<<30, 0
	for _, el := range d.Raw.Elements() {
		w := el.Wear()
		if w.Min < min {
			min = w.Min
		}
		if w.Max > max {
			max = w.Max
		}
	}
	return float64(hostBytes) / 1e6, max - min, nil
}

// lifetimePoint is one configuration's run-to-wear-out outcome.
type lifetimePoint struct {
	mb     float64
	spread int
}

// Lifetime runs the endurance comparison, one spec per configuration.
// workers caps the pool (0 = runner default).
func Lifetime(seed int64, workers int) (LifetimeResult, error) {
	var res LifetimeResult
	const budget = 64
	cases := []struct {
		name      string
		wearAware bool
		mlc       bool
		budget    int
	}{
		{"SLC greedy-only", false, false, budget},
		{"SLC wear-leveled", true, false, budget},
		{"MLC wear-leveled (1/10 budget)", true, true, budget / 10},
	}
	specs := make([]runner.Spec[lifetimePoint], len(cases))
	for i, c := range cases {
		c := c
		specs[i] = runner.Spec[lifetimePoint]{
			Name: "lifetime/" + c.name,
			Seed: seed,
			Run: func() (lifetimePoint, error) {
				d, err := lifetimeDevice(c.budget, c.wearAware, c.mlc)
				if err != nil {
					return lifetimePoint{}, err
				}
				mb, spread, err := writeUntilWearOut(d, seed)
				return lifetimePoint{mb: mb, spread: spread}, err
			},
		}
	}
	pts, err := runner.Run(specs, runner.Options{Workers: workers})
	if err != nil {
		return res, err
	}
	for i, c := range cases {
		res.Configs = append(res.Configs, c.name)
		res.HostMB = append(res.HostMB, pts[i].mb)
		res.WearSpread = append(res.WearSpread, pts[i].spread)
	}
	return res, nil
}
