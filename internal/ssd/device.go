package ssd

import (
	"fmt"

	"ossd/internal/ftl"
	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/stats"
	"ossd/internal/trace"
)

// Request is one I/O in flight through the device, with its lifecycle
// timestamps filled in as it progresses.
//
// Lifetime contract: requests are pooled. A *Request handed to an onDone
// callback is valid only until that callback returns; afterwards the
// device may recycle it for a later submission. Callers that need any
// field past completion must copy it inside the callback.
type Request struct {
	// Op is the originating trace operation.
	Op trace.Op
	// Arrive, Start, Done are the queue-entry, dispatch, and completion
	// times on the simulated clock.
	Arrive, Start, Done sim.Time
	// Err records a device error (wear-out, capacity); nil on success.
	Err error

	// internal marks buffer-drain requests: they do the media work for an
	// already-acknowledged buffered write and stay out of host metrics.
	internal bool
	onDone   func(*Request)
	// dev and remaining carry the completion state through the engine's
	// pooled events: remaining counts the busy elements (plus the host
	// link) still owed to this request, and dev lets the package-level
	// event callbacks reach the device without a closure per event.
	dev       *Device
	remaining int
	// gseq is the request's index in the global arrival stream, stamped
	// by the sharded router so that a merge transition can re-interleave
	// shard queues in arrival order. Zero on unsharded devices.
	gseq uint64
	// nextFree links the device freelist.
	nextFree *Request
}

// Response returns the request's response time (completion - arrival).
func (r *Request) Response() sim.Time { return r.Done - r.Arrive }

// Metrics accumulates device-level measurements.
type Metrics struct {
	// Requests counts arrivals; Completed counts finished requests.
	Requests, Completed int64
	// ReadResp and WriteResp are response-time histograms in
	// milliseconds, by operation type.
	ReadResp, WriteResp stats.Histogram
	// PriResp and BgResp are response-time histograms in milliseconds for
	// priority (foreground) and normal (background) requests (§3.6).
	PriResp, BgResp stats.Histogram
	// BytesRead and BytesWritten count host data moved.
	BytesRead, BytesWritten int64
	// Frees counts free (deallocation) notifications processed.
	Frees int64
	// Errors counts failed requests.
	Errors int64
	// BackgroundCleans counts cleaning passes initiated by the device
	// (watermark-driven), as opposed to the FTL's internal safety valve.
	BackgroundCleans int64
	// BufferedWrites counts writes absorbed by the write buffer;
	// BufferBypass counts writes that found it full.
	BufferedWrites, BufferBypass int64
	// FaultsInjected counts faults injected by the device's fault plan;
	// FaultRetries counts those recovered by an in-device retry.
	// RetiredBlocks and RemappedPages aggregate the FTLs' wear-ceiling
	// retirement activity. All four are computed fresh by Metrics().
	FaultsInjected, FaultRetries int64
	RetiredBlocks, RemappedPages int64
	// Tenants breaks completed host transfers down per tenant class.
	Tenants stats.TenantSet
}

// GCStats aggregates FTL cleaning counters across the gang.
type GCStats struct {
	HostPageReads, HostPageWrites int64
	PagesMoved                    int64
	Cleans, GCErases, Migrations  int64
	CleanTime                     sim.Time
	FreesSeen, FreesApplied       int64
	RetiredBlocks, RemappedPages  int64
}

// Device is the simulated SSD.
type Device struct {
	cfg   Config
	eng   *sim.Engine
	elems []ftl.Backend

	// Derived layout parameters.
	chunkBytes    int64 // FullStripe: contiguous bytes per element per stripe
	pagesPerChunk int
	logicalBytes  int64

	// q indexes the pending requests and owns the per-element busy
	// horizons; drv runs the shared dispatch loop with the cleaning
	// passes as its pre/post hooks.
	q        *sched.Queue
	drv      *sched.Driver
	linkBusy sim.Time // host-interface link occupancy (InterfaceMBps)
	// touched/elemScratch are reused by elemsFor, and durScratch by
	// exec, so neither enqueueing nor dispatching allocates per request.
	touched     []bool
	elemScratch []int
	durScratch  []sim.Time
	// outstandingPri counts priority requests queued or in service; the
	// priority-aware cleaner consults it (§3.6).
	outstandingPri int
	// bufOccupancy tracks undrained bytes in the write buffer.
	bufOccupancy int64

	// freeReq heads the request freelist; see the Request lifetime
	// contract. Steady-state submission reuses completed requests, so the
	// host path allocates nothing.
	freeReq *Request

	// elemLo/elemHi bound the elements this device instance cleans. A
	// standalone device owns [0, Elements); a shard sub-device owns only
	// its element group, so concurrent shards never clean each other's
	// backends. The dispatch path needs no such bound: requests are
	// routed to shards by element group before submission.
	elemLo, elemHi int

	// recording diverts response-time samples into samples[] instead of
	// the metric histograms. Shard sub-devices record; the gang merges
	// the logs in global completion order at window barriers so the
	// histograms see samples in the same order a single engine would.
	recording bool
	samples   []completionSample
	// nextGseq stamps Request.gseq at submission; the sharded router
	// sets it per arrival.
	nextGseq uint64

	// shard, when non-nil, is the parallel dataplane: per-element-group
	// sub-devices on private engines, driven by DriveStream. See gang.go.
	shard *gang

	// flt, when non-nil, injects the config's fault plan at dispatch.
	// Shard sub-devices alias the gang's state; see faultState.
	flt *faultState

	met Metrics
}

// completionSample is one recorded host completion: enough to replay the
// histogram updates of complete() in globally merged order.
type completionSample struct {
	done, start sim.Time
	ms          float64
	size        int64
	kind        trace.Kind
	pri         bool
	tenant      uint8
}

// New builds a device on the given engine.
func New(eng *sim.Engine, cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var elems []ftl.Backend
	for i := 0; i < cfg.Elements; i++ {
		el, err := ftl.NewBackend(cfg.Scheme, cfg.ftlConfig(i))
		if err != nil {
			return nil, err
		}
		elems = append(elems, el)
	}
	d, err := newWithBackends(eng, cfg, elems, 0, cfg.Elements)
	if err != nil {
		return nil, err
	}
	if cfg.Fault.Injects() {
		d.flt = newFaultState(cfg.Fault, cfg.Elements)
	}
	return d, nil
}

// newWithBackends builds a device over existing FTL backends, cleaning
// only elements in [lo, hi). It is how shard sub-devices alias the gang's
// backends while owning a private engine, queue, and metrics.
func newWithBackends(eng *sim.Engine, cfg Config, elems []ftl.Backend, lo, hi int) (*Device, error) {
	d := &Device{
		cfg:        cfg,
		eng:        eng,
		elems:      elems,
		touched:    make([]bool, cfg.Elements),
		durScratch: make([]sim.Time, cfg.Elements),
		elemLo:     lo,
		elemHi:     hi,
	}
	d.q = sched.NewQueue(cfg.Scheduler, cfg.Elements)
	// Map iteration order is irrelevant here: the queue keeps its tenant
	// ring sorted by ID, so any insertion order yields the same ring.
	for t, w := range cfg.TenantWeights {
		d.q.SetTenantWeight(t, w)
	}
	d.drv = sched.NewDriver(eng, d.q, d.serve)
	d.drv.SetHooks(d.mandatoryClean, d.opportunisticClean)
	perElemPages := d.elems[0].LogicalPages()
	pageSize := int64(cfg.Geom.PageSize)
	switch cfg.Layout {
	case FullStripe:
		d.chunkBytes = cfg.StripeBytes / int64(cfg.Elements)
		d.pagesPerChunk = int(d.chunkBytes / pageSize)
		stripes := perElemPages / d.pagesPerChunk
		d.logicalBytes = int64(stripes) * cfg.StripeBytes
	case Interleaved:
		d.logicalBytes = int64(perElemPages) * pageSize * int64(cfg.Elements)
	}
	if d.logicalBytes <= 0 {
		return nil, fmt.Errorf("ssd: configuration exports no capacity")
	}
	return d, nil
}

// Engine returns the simulation engine driving the device.
func (d *Device) Engine() *sim.Engine { return d.eng }

// LogicalBytes reports the exported capacity.
func (d *Device) LogicalBytes() int64 { return d.logicalBytes }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Metrics returns a snapshot of the accumulated metrics. The fault and
// retirement counters are computed fresh from the fault state and the
// per-element FTL stats, which a sharded gang shares with its
// sub-devices, so they need no folding at window barriers.
func (d *Device) Metrics() Metrics {
	m := d.met
	if d.flt != nil {
		for e := range d.flt.seq {
			m.FaultsInjected += d.flt.injected[e]
			m.FaultRetries += d.flt.retried[e]
		}
	}
	for _, el := range d.elems {
		s := el.Stats()
		m.RetiredBlocks += s.RetiredBlocks
		m.RemappedPages += s.RemappedPages
	}
	return m
}

// QueueDepth reports the number of requests waiting for dispatch.
func (d *Device) QueueDepth() int { return d.q.Len() }

// RegionBoundary reports the byte offset where the MLC region begins on
// a heterogeneous device, or 0 when the media is homogeneous. Bytes in
// [0, boundary) live on SLC elements, [boundary, LogicalBytes()) on MLC.
func (d *Device) RegionBoundary() int64 {
	if d.cfg.MLCElements == 0 {
		return 0
	}
	slcElems := d.cfg.Elements - d.cfg.MLCElements
	perElem := int64(d.elems[0].LogicalPages()) * int64(d.cfg.Geom.PageSize)
	return perElem * int64(slcElems)
}

// Elements exposes the per-element FTLs for inspection.
func (d *Device) Elements() []ftl.Backend { return d.elems }

// GCStats aggregates cleaning statistics across the gang.
func (d *Device) GCStats() GCStats {
	var g GCStats
	for _, el := range d.elems {
		s := el.Stats()
		g.HostPageReads += s.HostReads
		g.HostPageWrites += s.HostWrites
		g.PagesMoved += s.PagesMoved
		g.Cleans += s.Cleans
		g.GCErases += s.GCErases
		g.Migrations += s.Migrations
		g.CleanTime += s.CleanTime
		g.FreesSeen += s.FreesSeen
		g.FreesApplied += s.FreesApplied
		g.RetiredBlocks += s.RetiredBlocks
		g.RemappedPages += s.RemappedPages
	}
	return g
}

// WriteAmplification reports media page writes (stripe rewrites plus GC
// relocation) divided by the pages the host actually sent: the §3.4
// amplification factor.
func (d *Device) WriteAmplification() float64 {
	if d.met.BytesWritten == 0 {
		return 0
	}
	g := d.GCStats()
	hostPages := float64(d.met.BytesWritten) / float64(d.cfg.Geom.PageSize)
	return float64(g.HostPageWrites+g.PagesMoved) / hostPages
}

// admit validates an operation against the device without mutating any
// state. It is the complete set of Submit's error paths, which lets the
// sharded router pre-validate a batch and inject it knowing no mid-batch
// submission can fail.
func (d *Device) admit(op trace.Op) error {
	if err := op.Validate(); err != nil {
		return err
	}
	if op.End() > d.logicalBytes {
		return fmt.Errorf("ssd: request [%d, +%d) beyond capacity %d", op.Offset, op.Size, d.logicalBytes)
	}
	return nil
}

// takeReq pops a pooled request (or allocates the pool's next one) and
// resets it.
func (d *Device) takeReq() *Request {
	if r := d.freeReq; r != nil {
		d.freeReq = r.nextFree
		*r = Request{}
		return r
	}
	return &Request{}
}

// putReq recycles a completed request. Only the callback reference is
// dropped eagerly (for the collector); the remaining fields are cleared
// on take, which keeps stale pointers readable for debugging.
func (d *Device) putReq(r *Request) {
	r.onDone = nil
	r.nextFree = d.freeReq
	d.freeReq = r
}

// Submit enqueues an operation at the current simulated time. onDone, if
// non-nil, runs at completion. Frees are metadata-only (zero service
// time) but still flow through the dispatch queue so they order behind
// earlier writes to the same elements.
//
// The *Request passed to onDone is pooled: it must not be retained after
// the callback returns.
func (d *Device) Submit(op trace.Op, onDone func(*Request)) error {
	return d.submit(op, onDone, true)
}

// SubmitBatch enqueues a run of operations all arriving now, pumping the
// dispatch loop once at the end instead of per operation. Because the
// batch is same-instant, deferring the pump reaches the identical
// dispatch fixpoint the per-op pumps would: each pump dispatches the
// lowest-eligible request and marks elements busy, and no simulated time
// passes between the enqueues either way. It stops at the first
// submission error.
func (d *Device) SubmitBatch(ops []trace.Op, onDone func(*Request)) error {
	for _, op := range ops {
		if err := d.submit(op, onDone, false); err != nil {
			d.drv.Pump()
			return err
		}
	}
	d.drv.Pump()
	return nil
}

func (d *Device) submit(op trace.Op, onDone func(*Request), pump bool) error {
	if err := d.admit(op); err != nil {
		return err
	}
	now := d.eng.Now()
	req := d.takeReq()
	req.Op = op
	req.Arrive = now
	req.onDone = onDone
	req.dev = d
	req.gseq = d.nextGseq
	d.met.Requests++
	// Write-back buffer: absorb the write at RAM speed and let an
	// internal request do the media work. A full buffer bypasses.
	if d.cfg.WriteBufferBytes > 0 && op.Kind == trace.Write {
		if d.bufOccupancy+op.Size <= d.cfg.WriteBufferBytes {
			d.bufOccupancy += op.Size
			d.met.BufferedWrites++
			if op.Priority {
				d.outstandingPri++ // complete() balances this
			}
			// The drain request does the media work without priority (the
			// host has already been acknowledged).
			drain := d.takeReq()
			drain.Op = op
			drain.Op.Priority = false
			drain.Arrive = now
			drain.internal = true
			drain.dev = d
			d.enqueue(drain)
			// The host sees the buffer-insert latency only.
			req.Start = req.Arrive
			d.eng.Call(d.cfg.CtrlOverhead, completeEvent, req)
			if pump {
				d.drv.Pump()
			}
			return nil
		}
		d.met.BufferBypass++
	}
	d.enqueue(req)
	if pump {
		d.drv.Pump()
	}
	return nil
}

// enqueue adds a request to the dispatch queue, carrying the op's tenant
// class and byte cost for the fair-share layer (ignored — and the push
// byte-identical to the legacy one — unless tenant weights are set).
func (d *Device) enqueue(req *Request) {
	if req.Op.Priority {
		d.outstandingPri++
	}
	d.q.PushT(d.elemsFor(req.Op), req, req.Op.Tenant, req.Op.Size)
}

// Play schedules every operation at its trace timestamp and runs the
// engine until the device drains. It returns the first submission error.
func (d *Device) Play(ops []trace.Op) error {
	var firstErr error
	for _, op := range ops {
		op := op
		d.eng.At(op.At, func() {
			if err := d.Submit(op, nil); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	d.eng.Run()
	return firstErr
}

// ClosedLoop keeps depth requests outstanding, drawing operations from
// gen until it returns false. Each op's At field is ignored; arrivals
// happen on completion. Returns the first submission error.
func (d *Device) ClosedLoop(depth int, gen func(i int) (trace.Op, bool)) error {
	if depth <= 0 {
		depth = 1
	}
	var firstErr error
	i := 0
	var issue func()
	// One completion callback for the whole loop: reissuing through a
	// shared func value keeps the closed loop from allocating a closure
	// per operation.
	reissue := func(*Request) { issue() }
	issue = func() {
		op, ok := gen(i)
		if !ok {
			return
		}
		i++
		if err := d.Submit(op, reissue); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for k := 0; k < depth; k++ {
		issue()
	}
	d.eng.Run()
	return firstErr
}

// ---- internal machinery ----
//
// The dispatch loop itself lives in sched.Driver (shared with the other
// media models); the device contributes its cleaning passes as the
// driver's hooks and its media execution as serve.

// mandatoryClean is the driver's pre-dispatch hook: below the critical
// watermark always; below the low watermark too when the device is
// priority-agnostic ("cleaning starts at the low threshold irrespective
// of the outstanding requests").
func (d *Device) mandatoryClean(now sim.Time) bool {
	progress := false
	for e := d.elemLo; e < d.elemHi; e++ {
		if d.q.Busy(e) > now || d.faultDead(e) {
			continue
		}
		if d.mustClean(e) && d.startClean(e) {
			progress = true
		}
	}
	return progress
}

// opportunisticClean is the driver's post-dispatch hook (priority-aware
// only): clean at the low watermark when no priority request is
// outstanding.
func (d *Device) opportunisticClean(now sim.Time) bool {
	progress := false
	for e := d.elemLo; e < d.elemHi; e++ {
		if d.q.Busy(e) > now || d.faultDead(e) {
			continue
		}
		if d.wantClean(e) && d.startClean(e) {
			progress = true
		}
	}
	return progress
}

func (d *Device) mustClean(e int) bool {
	el := d.elems[e]
	if !el.CanClean() {
		return false
	}
	f := el.FreeFraction()
	if d.cfg.GCCritical > 0 && f < d.cfg.GCCritical {
		return true
	}
	if !d.cfg.PriorityAware && d.cfg.GCLow > 0 && f < d.cfg.GCLow {
		return true
	}
	return false
}

func (d *Device) wantClean(e int) bool {
	if !d.cfg.PriorityAware || d.cfg.GCLow == 0 {
		return false
	}
	el := d.elems[e]
	return el.CanClean() && el.FreeFraction() < d.cfg.GCLow && d.outstandingPri == 0
}

func (d *Device) startClean(e int) bool {
	dur, err := d.elems[e].CleanOnce()
	if err != nil {
		return false
	}
	d.met.BackgroundCleans++
	d.q.SetBusy(e, d.eng.Now()+dur)
	d.drv.PumpAfter(dur)
	return true
}

// partDoneEvent is the pooled completion callback for one part (an
// element's media work or the host link) of a request: the last part to
// finish completes the request, and every finish frees capacity, so the
// dispatch loop pumps either way.
func partDoneEvent(a any) {
	req := a.(*Request)
	d := req.dev
	req.remaining--
	if req.remaining == 0 {
		d.complete(req)
	}
	d.drv.Pump()
}

// completeEvent is the pooled callback for completions with no media
// part, e.g. the host-visible acknowledgement of a buffered write.
func completeEvent(a any) {
	req := a.(*Request)
	req.dev.complete(req)
}

// serve starts media service for a dispatched request: it executes the
// request against the FTLs, marks the touched elements busy, models the
// host link, and schedules the completion events — all through the
// engine's pooled event path, so dispatching allocates nothing.
func (d *Device) serve(data any, now sim.Time) {
	req := data.(*Request)
	req.Start = now
	durs := d.exec(req)
	req.remaining = 0
	for e, dur := range durs {
		if dur == 0 {
			continue
		}
		req.remaining++
		d.q.SetBusy(e, now+dur+d.cfg.CtrlOverhead)
	}
	// The host link moves the request's data serially (but overlapped
	// with flash work via DMA): it is one more completion constraint.
	if d.cfg.InterfaceMBps > 0 {
		linkTime := sim.Time(float64(req.Op.Size) / (d.cfg.InterfaceMBps * 1e6) * 1e9)
		start := now
		if d.linkBusy > start {
			start = d.linkBusy
		}
		d.linkBusy = start + linkTime
		req.remaining++
		d.eng.Call(d.linkBusy-now, partDoneEvent, req)
	}
	if req.remaining == 0 {
		d.complete(req)
		return
	}
	for _, dur := range durs {
		if dur == 0 {
			continue
		}
		d.eng.Call(dur+d.cfg.CtrlOverhead, partDoneEvent, req)
	}
}

func (d *Device) addClassResp(req *Request, ms float64) {
	if req.Op.Priority {
		d.met.PriResp.Add(ms)
	} else {
		d.met.BgResp.Add(ms)
	}
}

func (d *Device) complete(req *Request) {
	req.Done = d.eng.Now()
	if req.internal {
		// A buffered write finished its media work: release the buffer
		// space; the host already saw its completion.
		d.bufOccupancy -= req.Op.Size
		d.putReq(req)
		return
	}
	d.met.Completed++
	if req.Op.Priority {
		d.outstandingPri--
	}
	if req.Err != nil {
		d.met.Errors++
	} else {
		ms := req.Response().Millis()
		switch req.Op.Kind {
		case trace.Read:
			d.met.BytesRead += req.Op.Size
			d.recordResp(req, ms)
		case trace.Write:
			d.met.BytesWritten += req.Op.Size
			d.recordResp(req, ms)
		case trace.Free:
			d.met.Frees++
		}
	}
	if req.onDone != nil {
		req.onDone(req)
	}
	d.putReq(req)
}

// recordResp folds a host completion into the response-time histograms —
// or, on a recording shard sub-device, into the sample log the gang
// replays in global completion order (Welford accumulation is
// order-sensitive, so shards must not fold their own).
func (d *Device) recordResp(req *Request, ms float64) {
	if d.recording {
		d.samples = append(d.samples, completionSample{
			done:   req.Done,
			start:  req.Start,
			ms:     ms,
			size:   req.Op.Size,
			kind:   req.Op.Kind,
			pri:    req.Op.Priority,
			tenant: req.Op.Tenant,
		})
		return
	}
	switch req.Op.Kind {
	case trace.Read:
		d.met.ReadResp.Add(ms)
	case trace.Write:
		d.met.WriteResp.Add(ms)
	}
	d.addClassResp(req, ms)
	d.met.Tenants.Record(req.Op.Tenant, req.Op.Kind == trace.Write, req.Op.Size, ms)
}
