package workload

import "ossd/internal/trace"

// stepStream adapts a step-at-a-time generator to a trace.Stream. Each
// call to step runs one unit of generation (one synthetic op, one
// Postmark transaction, one OLTP iteration), emitting zero or more
// operations; it returns false when the workload is exhausted. The
// stream buffers only one step's output, so memory is bounded by the
// largest single step, not the workload length.
type stepStream struct {
	buf  []trace.Op
	pos  int
	step func(emit func(trace.Op)) bool
}

func (s *stepStream) Next() (trace.Op, bool) {
	for s.pos >= len(s.buf) {
		if s.step == nil {
			return trace.Op{}, false
		}
		s.buf = s.buf[:0]
		s.pos = 0
		if !s.step(func(o trace.Op) { s.buf = append(s.buf, o) }) {
			s.step = nil
		}
	}
	op := s.buf[s.pos]
	s.pos++
	return op, true
}
