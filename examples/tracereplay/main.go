// Tracereplay: stream a macro workload through the write merge-and-align
// pass (§3.4) and replay both versions on the paper's striped device to
// see the alignment win end to end. This is the pipeline behind Tables 3
// and 4, in ~80 lines — and because the workload is a trace.Stream, the
// trace is never materialized: generation, alignment, and replay all run
// at constant memory.
package main

import (
	"fmt"
	"log"

	"ossd/internal/core"
	"ossd/internal/sim"
	"ossd/internal/trace"
	"ossd/internal/workload"
)

const stripeBytes = 32 << 10

func device() *core.SSD {
	// The base SSD restriped so one 32 KB logical page spans the whole
	// gang — the layout behind the paper's alignment results (the
	// paper-exact Table 3 parameterization lives in
	// internal/experiments/table3.go).
	dev, err := core.Open("ssd", core.WithStripe(stripeBytes))
	if err != nil {
		log.Fatal(err)
	}
	d := dev.(*core.SSD)
	if err := core.PreconditionFrac(d, 1<<20, 0.6); err != nil {
		log.Fatal(err)
	}
	return d
}

// iozone regenerates the workload stream from its seed; each replay
// pulls its own copy, so the two replays stay identical without a shared
// slice.
func iozone(space int64) trace.Stream {
	s, err := workload.IOzone(workload.IOzoneConfig{
		FileBytes:        space / 2,
		RecordBytes:      128 << 10,
		MeanInterarrival: 3 * sim.Millisecond,
		Seed:             7,
	})
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func replay(stream trace.Stream) (meanWriteMs float64, rmwReads int64, ops int) {
	dev := device()
	var st trace.Stats
	shifted := trace.Tally(trace.Shift(stream, dev.Engine().Now()), &st)
	before := dev.Raw.GCStats()
	wBefore := dev.Raw.Metrics().WriteResp
	if err := dev.Drive(shifted); err != nil {
		log.Fatal(err)
	}
	after := dev.Raw.GCStats()
	w := dev.Raw.Metrics().WriteResp
	n := w.N() - wBefore.N()
	if n > 0 {
		meanWriteMs = (w.Mean()*float64(w.N()) - wBefore.Mean()*float64(wBefore.N())) / float64(n)
	}
	return meanWriteMs, after.HostPageReads - before.HostPageReads, st.Ops
}

func main() {
	probe := device()
	space := int64(float64(probe.LogicalBytes()) * 0.6)

	align := func(s trace.Stream) trace.Stream {
		a, err := trace.AlignStream(s, stripeBytes, trace.AlignOptions{
			MaxGap:      6 * sim.Millisecond,
			ReadBarrier: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return a
	}

	uMs, uRMW, uOps := replay(iozone(space))
	aMs, aRMW, aOps := replay(align(iozone(space)))
	fmt.Printf("IOzone trace: %d ops; aligned form: %d ops\n", uOps, aOps)
	fmt.Printf("unaligned: mean write %.3f ms, %d read-modify-write page reads\n", uMs, uRMW)
	fmt.Printf("aligned:   mean write %.3f ms, %d read-modify-write page reads\n", aMs, aRMW)
	if uMs > 0 {
		fmt.Printf("improvement: %.1f%% — the paper's Table 4 effect (IOzone row)\n", (uMs-aMs)/uMs*100)
	}
}
