package campaign

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ossd/internal/simsvc"
)

// newService builds a job manager + campaign manager pair for tests.
func newService(t *testing.T, workers int, copts Options) (*simsvc.Manager, *Manager) {
	t.Helper()
	jobs := simsvc.New(simsvc.Options{Workers: workers, SampleEvery: 1000})
	t.Cleanup(jobs.Close)
	return jobs, New(jobs, copts)
}

// sweep is the canonical small test campaign: seeds × schedulers.
func sweep(ops int, seeds ...string) Spec {
	return Spec{
		Template: template(ops),
		Axes: []Axis{
			{Name: "params.seed", Values: vals(seeds...)},
			{Name: "options.scheduler", Values: vals(`"fcfs"`, `"swtf"`)},
		},
	}
}

// waitDone submits and waits for the campaign, asserting full success.
func waitDone(t *testing.T, m *Manager, spec Spec) (*Campaign, Progress) {
	t.Helper()
	c, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	p, err := m.Wait(ctx, c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.Status != "done" || p.Failed != 0 || p.Done != p.Total {
		t.Fatalf("campaign did not fully succeed: %+v", p)
	}
	return c, p
}

// TestCampaignByteIdentity is the acceptance pin: a campaign's per-cell
// results are byte-identical to individually submitted jobs with the
// same specs, regardless of worker count — the campaign ran on 4
// workers, the individual jobs run on 1.
func TestCampaignByteIdentity(t *testing.T) {
	_, m := newService(t, 4, Options{})
	spec := sweep(20000, "1", "2")
	c, p := waitDone(t, m, spec)
	if p.Total != 4 {
		t.Fatalf("total %d, want 4", p.Total)
	}

	// Stream delivers every cell in deterministic cell order.
	var streamed []CellResult
	err := m.StreamResults(context.Background(), c.ID, func(r CellResult) error {
		streamed = append(streamed, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != 4 {
		t.Fatalf("streamed %d cells", len(streamed))
	}
	cells, err := Expand(spec, 4096)
	if err != nil {
		t.Fatal(err)
	}
	single := simsvc.New(simsvc.Options{Workers: 1})
	defer single.Close()
	for i, r := range streamed {
		if r.Index != i {
			t.Fatalf("stream out of order: got index %d at position %d", r.Index, i)
		}
		if r.Status != simsvc.StatusDone || len(r.Result) == 0 {
			t.Fatalf("cell %d: %+v", i, r)
		}
		job, err := single.Submit(cells[i].Spec)
		if err != nil {
			t.Fatal(err)
		}
		view, err := job.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if view.Status != simsvc.StatusDone {
			t.Fatalf("individual job %d failed: %s", i, view.Error)
		}
		if !bytes.Equal(view.Result, r.Result) {
			t.Fatalf("cell %d payload differs from individual job:\ncampaign: %s\njob: %s",
				i, r.Result, view.Result)
		}
	}
}

// TestCampaignIncrementalRerun pins the design's whole point: re-running
// a campaign after adding one value to one axis only simulates the new
// cells. Pinned via the job manager's cache-hit / jobs-submitted /
// simulations-run counters.
func TestCampaignIncrementalRerun(t *testing.T) {
	jobs, m := newService(t, 2, Options{})
	waitDone(t, m, sweep(20000, "1", "2")) // 4 cells, all simulated

	s0 := jobs.Stats()
	if s0.JobsSubmitted != 4 || s0.Cache.Hits != 0 || s0.Run.N != 4 {
		t.Fatalf("first run: %+v", s0)
	}

	// One more value on the seed axis: 6 cells, of which 4 are the old
	// grid and must be served from the cache.
	_, p := waitDone(t, m, sweep(20000, "1", "2", "3"))
	if p.CacheHits != 4 {
		t.Fatalf("second run cache hits = %d, want 4", p.CacheHits)
	}
	s1 := jobs.Stats()
	if s1.JobsSubmitted != 10 {
		t.Fatalf("jobs submitted = %d, want 10", s1.JobsSubmitted)
	}
	if s1.Cache.Hits != 4 {
		t.Fatalf("cache hits = %d, want 4", s1.Cache.Hits)
	}
	if s1.Run.N != 6 {
		t.Fatalf("simulations run = %d, want 6 (only the new cells)", s1.Run.N)
	}
}

// TestCampaignShardsDedup: a campaign sweeping options.shards dedups to
// ONE simulation — shards are an execution knob excluded from the cache
// key, so the shard-differing cells must cache-hit — and every cell
// returns a byte-identical payload.
func TestCampaignShardsDedup(t *testing.T) {
	jobs, m := newService(t, 4, Options{})
	spec := Spec{
		Template: template(20000),
		Axes:     []Axis{{Name: "options.shards", Values: vals("1", "2", "4")}},
	}
	c, p := waitDone(t, m, spec)
	if p.Total != 3 || p.CacheHits != 2 {
		t.Fatalf("progress %+v, want 3 cells with 2 cache hits", p)
	}
	s := jobs.Stats()
	if s.Run.N != 1 {
		t.Fatalf("simulations run = %d, want 1", s.Run.N)
	}
	results := c.Results()
	if len(results) != 3 {
		t.Fatalf("results: %d", len(results))
	}
	for i := 1; i < len(results); i++ {
		if !bytes.Equal(results[i].Result, results[0].Result) {
			t.Fatalf("cell %d payload differs from cell 0", i)
		}
		if !results[i].Cached {
			t.Fatalf("cell %d should be a cache hit", i)
		}
	}
}

// TestCampaignStatsInStatsz: campaign counters surface through the job
// service's /statsz hook.
func TestCampaignStatsInStatsz(t *testing.T) {
	jobs, m := newService(t, 2, Options{})
	waitDone(t, m, sweep(5000, "1"))
	s := jobs.Stats()
	cs, ok := s.Campaigns.(Stats)
	if !ok {
		t.Fatalf("statsz campaigns: %T", s.Campaigns)
	}
	if cs.Submitted != 1 || cs.Completed != 1 || cs.CellsTotal != 2 || cs.CellsDone != 2 {
		t.Fatalf("campaign stats: %+v", cs)
	}
	if m.Stats() != cs {
		t.Fatalf("hook and direct stats differ")
	}
}

// TestCampaignCancel: DELETE stops the remainder — every cell settles,
// none are left queued, and the campaign reports cancelled.
func TestCampaignCancel(t *testing.T) {
	_, m := newService(t, 1, Options{MaxInFlight: 1})
	// Enough slow cells that cancellation lands mid-campaign.
	spec := Spec{
		Template: template(200000),
		Axes:     []Axis{{Name: "params.seed", Range: &Range{From: 1, To: 8}}},
	}
	c, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(c.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	p, err := m.Wait(ctx, c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.Status != "cancelled" {
		t.Fatalf("status %q, want cancelled", p.Status)
	}
	if p.Done+p.Failed != p.Total || p.Queued != 0 || p.Running != 0 {
		t.Fatalf("unsettled cells after cancel: %+v", p)
	}
	if p.Failed == 0 {
		t.Fatalf("cancellation failed no cells: %+v", p)
	}
	// Cancelling a terminal campaign is a no-op.
	if again, err := m.Cancel(c.ID); err != nil || again {
		t.Fatalf("second cancel: %v %v", again, err)
	}
}

// serveHTTP mounts the composed simd surface (jobs + campaigns).
func serveHTTP(t *testing.T, jobs *simsvc.Manager, m *Manager) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	m.Register(mux)
	mux.Handle("/", jobs.Handler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// postCampaign POSTs a campaign spec and decodes its progress view.
func postCampaign(t *testing.T, srv *httptest.Server, spec Spec) Progress {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /campaigns: %d: %s", resp.StatusCode, b)
	}
	var p Progress
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCampaignHTTP is the end-to-end HTTP path: POST a grid, block on
// ?wait=1, tail the NDJSON stream, render the table, re-POST and watch
// it complete from cache, then DELETE a fresh campaign.
func TestCampaignHTTP(t *testing.T) {
	jobs, m := newService(t, 2, Options{})
	srv := serveHTTP(t, jobs, m)

	p := postCampaign(t, srv, sweep(20000, "1", "2"))
	if p.Total != 4 || p.ID == "" {
		t.Fatalf("submit view: %+v", p)
	}

	resp, err := http.Get(srv.URL + "/campaigns/" + p.ID + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if p.Status != "done" || p.Done != 4 {
		t.Fatalf("wait view: %+v", p)
	}

	// Stream: four NDJSON cells in deterministic order.
	sresp, err := http.Get(srv.URL + "/campaigns/" + p.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var n int
	for sc.Scan() {
		var cr CellResult
		if err := json.Unmarshal(sc.Bytes(), &cr); err != nil {
			t.Fatal(err)
		}
		if cr.Index != n || cr.Status != simsvc.StatusDone {
			t.Fatalf("stream line %d: %+v", n, cr)
		}
		n++
	}
	if n != 4 {
		t.Fatalf("streamed %d lines", n)
	}

	// Table: defaults to the first two axes and write_mbps.
	tresp, err := http.Get(srv.URL + "/campaigns/" + p.ID + "/table")
	if err != nil {
		t.Fatal(err)
	}
	table, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("table: %d: %s", tresp.StatusCode, table)
	}
	for _, want := range []string{"fcfs", "swtf", "1", "2", "write_mbps"} {
		if !strings.Contains(string(table), want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}

	// Unknown metric is a client error, not an empty grid.
	tresp, err = http.Get(srv.URL + "/campaigns/" + p.ID + "/table?metric=bogus")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus metric: %d", tresp.StatusCode)
	}

	// Re-POST of the identical grid completes entirely from cache.
	p2 := postCampaign(t, srv, sweep(20000, "1", "2"))
	resp, err = http.Get(srv.URL + "/campaigns/" + p2.ID + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&p2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if p2.Status != "done" || p2.CacheHits != 4 {
		t.Fatalf("re-POST should be fully cached: %+v", p2)
	}

	// DELETE cancels.
	p3 := postCampaign(t, srv, sweep(20000, "3", "4"))
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/campaigns/"+p3.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d", dresp.StatusCode)
	}
}

// TestCampaignConcurrentPosts hammers POST /campaigns from several
// goroutines — the satellite's -race target: the feeder, watchers,
// stream tails, and progress polls all interleave across campaigns
// sharing one job manager and cache.
func TestCampaignConcurrentPosts(t *testing.T) {
	jobs, m := newService(t, 4, Options{})
	srv := serveHTTP(t, jobs, m)

	const posters = 4
	var wg sync.WaitGroup
	errs := make(chan error, posters)
	for g := 0; g < posters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Overlapping grids: every poster shares seed "1" with the
			// others, so cache hits and simulations race deliberately.
			p := postCampaign(t, srv, sweep(5000, "1", fmt.Sprint(g+2)))
			resp, err := http.Get(srv.URL + "/campaigns/" + p.ID + "?wait=1")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
				errs <- err
				return
			}
			if p.Status != "done" || p.Done != p.Total {
				errs <- fmt.Errorf("poster %d: %+v", g, p)
				return
			}
			// And the stream replays cleanly after completion.
			sresp, err := http.Get(srv.URL + "/campaigns/" + p.ID + "/stream")
			if err != nil {
				errs <- err
				return
			}
			defer sresp.Body.Close()
			n := 0
			sc := bufio.NewScanner(sresp.Body)
			sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
			for sc.Scan() {
				n++
			}
			if n != p.Total {
				errs <- fmt.Errorf("poster %d streamed %d/%d", g, n, p.Total)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCampaignRetention: terminal campaigns are evicted oldest-first
// once the table exceeds its bound, and an attached stream tail
// terminates with ErrCampaignEvicted instead of hanging.
func TestCampaignRetention(t *testing.T) {
	_, m := newService(t, 2, Options{Retain: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		c, _ := waitDone(t, m, Spec{Template: template(5000 + i)})
		ids = append(ids, c.ID)
	}
	// Submitting the third evicted the first (bound 2).
	if _, ok := m.Campaign(ids[0]); ok {
		t.Fatalf("campaign %s should be evicted", ids[0])
	}
	if _, ok := m.Campaign(ids[2]); !ok {
		t.Fatalf("campaign %s should be retained", ids[2])
	}
	if got := m.Stats().Retained; got != 2 {
		t.Fatalf("retained %d, want 2", got)
	}
}

// TestCampaignETA: once a simulated cell completes mid-campaign, the
// progress view extrapolates a nonzero ETA for the remainder.
func TestCampaignETA(t *testing.T) {
	_, m := newService(t, 1, Options{MaxInFlight: 1})
	spec := Spec{
		Template: template(100000),
		Axes:     []Axis{{Name: "params.seed", Range: &Range{From: 1, To: 6}}},
	}
	c, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Poll until at least one cell is done but the campaign is not.
	deadline := time.Now().Add(time.Minute)
	for {
		p := m.Progress(c)
		if p.Status == "done" {
			t.Skip("campaign finished before a mid-flight progress view; nothing to assert")
		}
		if p.Done > 0 {
			if p.ETASeconds <= 0 {
				t.Fatalf("done=%d but no ETA: %+v", p.Done, p)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no cell completed within a minute")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if _, err := m.Wait(ctx, c.ID); err != nil {
		t.Fatal(err)
	}
}
