package experiments

import (
	"reflect"
	"testing"

	"ossd/internal/core"
)

// TestInterferenceIsolation runs the sweep once and checks the claims
// the table makes: the aggressor collapses the victim's read tail when
// no fair-share layer is present, and any weighted configuration
// restores it by an order of magnitude while costing the aggressor
// little throughput.
func TestInterferenceIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	r, err := Interference(InterferenceOptions{Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 || r.Rows[0].Config != "unfair" {
		t.Fatalf("rows: %+v", r.Rows)
	}
	unfair := r.Rows[0]
	if unfair.VictimP99ReadMs <= 0 || unfair.AggressorWriteMBps <= 0 {
		t.Fatalf("implausible unfair row: %+v", unfair)
	}
	for _, fair := range r.Rows[1:] {
		if fair.VictimP99ReadMs*10 > unfair.VictimP99ReadMs {
			t.Errorf("%s: victim p99 %.2f ms not >=10x better than unfair %.2f ms",
				fair.Config, fair.VictimP99ReadMs, unfair.VictimP99ReadMs)
		}
		if fair.AggressorWriteMBps < unfair.AggressorWriteMBps*0.8 {
			t.Errorf("%s: aggressor throughput %.1f MB/s collapsed (unfair %.1f)",
				fair.Config, fair.AggressorWriteMBps, unfair.AggressorWriteMBps)
		}
	}
}

// TestInterferenceDeterministic pins the experiment's reproducibility
// contract: identical results at any worker count and any default
// shard count — the property the repro goldens sweep relies on.
func TestInterferenceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	serial, err := Interference(InterferenceOptions{Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Interference(InterferenceOptions{Seed: 5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("worker count changed the result:\n%+v\n%+v", serial, parallel)
	}
	prev := core.SetDefaultShards(4)
	defer core.SetDefaultShards(prev)
	sharded, err := Interference(InterferenceOptions{Seed: 5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, sharded) {
		t.Fatalf("shard count changed the result:\n%+v\n%+v", serial, sharded)
	}
}
