// Command tracegen generates block-level workload traces in the text
// format understood by cmd/ssdsim and ossd/internal/trace. Traces are
// streamed to the output as they are generated — a hundred-million-op
// trace needs no more memory than a hundred-op one.
//
//	tracegen -workload postmark -transactions 5000 -capacity 64MiB -o pm.trace
//	tracegen -workload synthetic -ops 10000 -seq 0.4 -readfrac 0.66
//	tracegen -workload iozone -file 16MiB
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ossd/internal/trace"
	"ossd/internal/workload"
)

// parseSize accepts 4096, 64KiB, 8MiB, 2GiB.
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "GiB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GiB")
	case strings.HasSuffix(s, "MiB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MiB")
	case strings.HasSuffix(s, "KiB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KiB")
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %v", s, err)
	}
	return v * mult, nil
}

func main() {
	var (
		kind     = flag.String("workload", "synthetic", strings.Join(workload.Generators(), "|"))
		ops      = flag.Int("ops", 10000, "operation count (synthetic/tpcc/exchange)")
		tx       = flag.Int("transactions", 5000, "transactions (postmark)")
		capacity = flag.String("capacity", "64MiB", "address space / fs capacity")
		file     = flag.String("file", "16MiB", "file size (iozone)")
		record   = flag.String("record", "128KiB", "record size (iozone)")
		reqSize  = flag.String("req", "4096", "request size (synthetic)")
		readFrac = flag.Float64("readfrac", 0.5, "read fraction (synthetic)")
		seqProb  = flag.Float64("seq", 0.0, "sequentiality probability (synthetic)")
		priFrac  = flag.Float64("priority", 0.0, "priority request fraction (synthetic)")
		iaUs     = flag.Int64("ia", 100, "mean inter-arrival in microseconds")
		seed     = flag.Int64("seed", 1, "random seed")
		limit    = flag.Int("limit", 0, "emit at most this many ops (0 = no cap)")
		outPath  = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	cap, err := parseSize(*capacity)
	if err != nil {
		fail(err)
	}
	req, err := parseSize(*reqSize)
	if err != nil {
		fail(err)
	}
	fileBytes, err := parseSize(*file)
	if err != nil {
		fail(err)
	}
	rec, err := parseSize(*record)
	if err != nil {
		fail(err)
	}

	// Every generator is reached through the registry's unified
	// parameter block; each reads the fields that apply to it.
	stream, err := workload.NewStream(*kind, workload.GenParams{
		Ops:                *ops,
		Transactions:       *tx,
		CapacityBytes:      cap,
		ReqBytes:           req,
		ReadFrac:           *readFrac,
		SeqProb:            *seqProb,
		PriorityFrac:       *priFrac,
		FileBytes:          fileBytes,
		RecordBytes:        rec,
		MeanInterarrivalUs: *iaUs,
		Seed:               *seed,
	})
	if err != nil {
		fail(err)
	}
	if *limit > 0 {
		stream = trace.Limit(stream, *limit)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		out = f
	}
	// Stream ops through the encoder while tallying; the summary goes at
	// the end as a comment (the decoder skips comments anywhere), so the
	// trace never lives in memory.
	var st trace.Stats
	enc := trace.NewEncoder(out)
	if err := enc.Comment("workload=%s seed=%d", *kind, *seed); err != nil {
		fail(err)
	}
	if _, err := enc.Copy(trace.Tally(stream, &st)); err != nil {
		fail(err)
	}
	if err := enc.Comment("ops=%d reads=%d writes=%d frees=%d maxOffset=%d",
		st.Ops, st.Reads, st.Writes, st.Frees, st.MaxOffset); err != nil {
		fail(err)
	}
	if err := enc.Flush(); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d ops (%d reads, %d writes, %d frees)\n",
		st.Ops, st.Reads, st.Writes, st.Frees)
}
