package raid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ossd/internal/hdd"
	"ossd/internal/sim"
	"ossd/internal/trace"
)

func testConfig() Config {
	return Config{Disks: 5, Disk: hdd.Barracuda7200(), StripeUnitBytes: 64 << 10}
}

func newArray(t *testing.T) (*sim.Engine, *Array) {
	t.Helper()
	eng := sim.NewEngine()
	a, err := New(eng, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return eng, a
}

func TestConfigValidate(t *testing.T) {
	c := testConfig()
	c.Disks = 2
	if _, err := New(sim.NewEngine(), c); err == nil {
		t.Error("accepted 2-disk RAID-5")
	}
	c = testConfig()
	c.StripeUnitBytes = -1
	if _, err := New(sim.NewEngine(), c); err == nil {
		t.Error("accepted negative stripe unit")
	}
	c = testConfig()
	c.Disk.CapacityBytes = 0
	if _, err := New(sim.NewEngine(), c); err == nil {
		t.Error("accepted bad disk config")
	}
}

func TestLogicalBytes(t *testing.T) {
	_, a := newArray(t)
	want := a.cfg.Disk.CapacityBytes / a.cfg.StripeUnitBytes * a.cfg.StripeUnitBytes * 4
	if a.LogicalBytes() != want {
		t.Fatalf("LogicalBytes = %d, want %d (4/5 of raw)", a.LogicalBytes(), want)
	}
}

func TestLocateRotatesParity(t *testing.T) {
	_, a := newArray(t)
	n := int64(a.cfg.Disks)
	// Parity disk rotates across rows; data disks skip the parity slot.
	seen := map[int]bool{}
	for row := int64(0); row < n; row++ {
		_, _, parity := a.locate(row * (n - 1))
		seen[parity] = true
		for col := int64(0); col < n-1; col++ {
			d, off, p := a.locate(row*(n-1) + col)
			if d == p {
				t.Fatalf("row %d col %d: data on parity disk", row, col)
			}
			if off != row*a.cfg.StripeUnitBytes {
				t.Fatalf("row %d: disk offset %d", row, off)
			}
			if d < 0 || d >= a.cfg.Disks {
				t.Fatalf("disk %d out of range", d)
			}
		}
	}
	if len(seen) != a.cfg.Disks {
		t.Fatalf("parity visited %d disks, want %d", len(seen), a.cfg.Disks)
	}
}

func TestSmallWriteParityRMW(t *testing.T) {
	eng, a := newArray(t)
	if err := a.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 4096}, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	m := a.Metrics()
	// Read old data + old parity, write new data + new parity.
	if m.DiskBytesRead != 2*4096 {
		t.Fatalf("disk reads = %d, want %d", m.DiskBytesRead, 2*4096)
	}
	if m.DiskBytesWritten != 2*4096 {
		t.Fatalf("disk writes = %d, want %d", m.DiskBytesWritten, 2*4096)
	}
	if wa := a.WriteAmplification(); wa != 2 {
		t.Fatalf("write amplification = %v, want 2", wa)
	}
}

func TestFullRowWriteSkipsRMW(t *testing.T) {
	eng, a := newArray(t)
	rowBytes := a.cfg.StripeUnitBytes * int64(a.cfg.Disks-1)
	if err := a.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: rowBytes}, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	m := a.Metrics()
	if m.DiskBytesRead != 0 {
		t.Fatalf("full-row write read %d bytes", m.DiskBytesRead)
	}
	// N-1 data units + 1 parity unit.
	if m.DiskBytesWritten != rowBytes+a.cfg.StripeUnitBytes {
		t.Fatalf("disk writes = %d, want %d", m.DiskBytesWritten, rowBytes+a.cfg.StripeUnitBytes)
	}
}

func TestReadTouchesOnlyDataDisks(t *testing.T) {
	eng, a := newArray(t)
	if err := a.Submit(trace.Op{Kind: trace.Read, Offset: 0, Size: 4096}, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	m := a.Metrics()
	if m.DiskBytesRead != 4096 || m.DiskBytesWritten != 0 {
		t.Fatalf("read traffic: %d read, %d written", m.DiskBytesRead, m.DiskBytesWritten)
	}
	if m.BytesRead != 4096 || m.Completed != 1 {
		t.Fatalf("host metrics: %+v", m)
	}
}

func TestStripingSpreadsSequentialLoad(t *testing.T) {
	eng, a := newArray(t)
	// A sequential scan of 8 stripe units must hit multiple disks.
	var done int
	for i := int64(0); i < 8; i++ {
		a.Submit(trace.Op{Kind: trace.Read, Offset: i * a.cfg.StripeUnitBytes, Size: a.cfg.StripeUnitBytes},
			func(*Request) { done++ })
	}
	eng.Run()
	if done != 8 {
		t.Fatalf("completed %d of 8", done)
	}
	busy := 0
	for _, d := range a.disks {
		if d.Metrics().BytesRead > 0 {
			busy++
		}
	}
	if busy < 4 {
		t.Fatalf("sequential scan used only %d disks", busy)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, a := newArray(t)
	if err := a.Submit(trace.Op{Kind: trace.Read, Offset: -1, Size: 4096}, nil); err == nil {
		t.Error("accepted negative offset")
	}
	if err := a.Submit(trace.Op{Kind: trace.Read, Offset: a.LogicalBytes(), Size: 4096}, nil); err == nil {
		t.Error("accepted op beyond capacity")
	}
}

func TestFreeIsNoop(t *testing.T) {
	_, a := newArray(t)
	var r *Request
	if err := a.Submit(trace.Op{Kind: trace.Free, Offset: 0, Size: 4096}, func(x *Request) { r = x }); err != nil {
		t.Fatal(err)
	}
	if r == nil || r.Response() != 0 {
		t.Fatal("free not immediate")
	}
}

func TestPlayAndClosedLoop(t *testing.T) {
	_, a := newArray(t)
	if err := a.Play([]trace.Op{
		{At: 0, Kind: trace.Write, Offset: 0, Size: 8192},
		{At: sim.Millisecond, Kind: trace.Read, Offset: 0, Size: 8192},
	}); err != nil {
		t.Fatal(err)
	}
	if a.Metrics().Completed != 2 {
		t.Fatalf("completed = %d", a.Metrics().Completed)
	}
	eng2 := sim.NewEngine()
	a2, _ := New(eng2, testConfig())
	i := 0
	if err := a2.ClosedLoop(2, func(int) (trace.Op, bool) {
		if i >= 10 {
			return trace.Op{}, false
		}
		i++
		return trace.Op{Kind: trace.Read, Offset: int64(i) * 4096, Size: 4096}, true
	}); err != nil {
		t.Fatal(err)
	}
	if a2.Metrics().Completed != 10 {
		t.Fatalf("closed loop completed %d", a2.Metrics().Completed)
	}
}

// Property: the plan conserves host bytes (data reads/writes at spindle
// level cover exactly the host range) and never places data on the
// row's parity disk.
func TestPlanProperty(t *testing.T) {
	_, a := newArray(t)
	u := a.cfg.StripeUnitBytes
	prop := func(offRaw, sizeRaw uint32, isWrite bool) bool {
		off := int64(offRaw) % (a.LogicalBytes() - int64(u))
		size := int64(sizeRaw)%(4*u) + 512
		if off+size > a.LogicalBytes() {
			size = a.LogicalBytes() - off
		}
		kind := trace.Read
		if isWrite {
			kind = trace.Write
		}
		subs := a.plan(trace.Op{Kind: kind, Offset: off, Size: size})
		var dataBytes int64
		for _, s := range subs {
			if s.op.End() > a.cfg.Disk.CapacityBytes {
				return false
			}
			// Identify parity traffic: it targets the row's parity disk.
			unit := (off + 1) / u
			_ = unit
			if kind == trace.Read {
				dataBytes += s.op.Size
			}
		}
		if kind == trace.Read && dataBytes != size {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(51))}); err != nil {
		t.Fatal(err)
	}
}
