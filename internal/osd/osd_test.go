package osd

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ossd/internal/flash"
	"ossd/internal/sim"
	"ossd/internal/ssd"
)

func newStore(t *testing.T, layout ssd.Layout, informed bool) (*sim.Engine, *Store) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := ssd.Config{
		Elements:      4,
		Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 8, BlocksPerPackage: 64},
		Overprovision: 0.15,
		Layout:        layout,
		GCLow:         0.12,
		GCCritical:    0.03,
		Informed:      informed,
	}
	if layout == ssd.FullStripe {
		cfg.StripeBytes = 4 * 4096
	}
	dev, err := ssd.New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	return eng, st
}

func TestAllocationUnitFollowsLayout(t *testing.T) {
	_, interleaved := newStore(t, ssd.Interleaved, false)
	if interleaved.AllocationUnit() != 4096 {
		t.Fatalf("interleaved unit = %d", interleaved.AllocationUnit())
	}
	_, striped := newStore(t, ssd.FullStripe, false)
	if striped.AllocationUnit() != 4*4096 {
		t.Fatalf("striped unit = %d", striped.AllocationUnit())
	}
}

func TestCreateWriteReadDelete(t *testing.T) {
	eng, st := newStore(t, ssd.Interleaved, true)
	id := st.Create(Attributes{})
	var werr, rerr error
	wdone, rdone := false, false
	if err := st.Write(id, 0, 10000, func(e error) { werr, wdone = e, true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !wdone || werr != nil {
		t.Fatalf("write: done=%v err=%v", wdone, werr)
	}
	sz, err := st.Size(id)
	if err != nil || sz != 10000 {
		t.Fatalf("size = %d, %v", sz, err)
	}
	if err := st.Read(id, 0, 10000, func(e error) { rerr, rdone = e, true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !rdone || rerr != nil {
		t.Fatalf("read: done=%v err=%v", rdone, rerr)
	}
	if err := st.Delete(id); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if _, err := st.Size(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted object still present: %v", err)
	}
}

func TestDeleteReleasesPagesToFTL(t *testing.T) {
	eng, st := newStore(t, ssd.Interleaved, true)
	id := st.Create(Attributes{})
	if err := st.Write(id, 0, 64*4096, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if err := st.Delete(id); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	g := st.Device().GCStats()
	if g.FreesApplied == 0 {
		t.Fatal("delete did not reach the FTL as free notifications")
	}
	if g.FreesApplied != 64 {
		t.Fatalf("frees applied = %d, want 64", g.FreesApplied)
	}
}

func TestObjectWritesAreStripeAligned(t *testing.T) {
	// On a FullStripe device, object allocation must never trigger RMW
	// reads for whole-unit writes: that is the §3.4 payoff.
	eng, st := newStore(t, ssd.FullStripe, false)
	for i := 0; i < 8; i++ {
		id := st.Create(Attributes{})
		if err := st.Write(id, 0, st.AllocationUnit(), nil); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	}
	if g := st.Device().GCStats(); g.HostPageReads != 0 {
		t.Fatalf("aligned object writes caused %d RMW reads", g.HostPageReads)
	}
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	eng, st := newStore(t, ssd.Interleaved, false)
	id := st.Create(Attributes{})
	if err := st.Write(id, 0, 4096, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if err := st.SetAttributes(id, Attributes{ReadOnly: true}); err != nil {
		t.Fatal(err)
	}
	if err := st.Write(id, 0, 4096, nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write to read-only object: %v", err)
	}
	// Reads still fine.
	if err := st.Read(id, 0, 4096, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
}

func TestAttributesRoundTrip(t *testing.T) {
	_, st := newStore(t, ssd.Interleaved, false)
	id := st.Create(Attributes{Priority: true})
	a, err := st.Attributes(id)
	if err != nil || !a.Priority {
		t.Fatalf("attrs = %+v, %v", a, err)
	}
	if _, err := st.Attributes(999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing object attrs: %v", err)
	}
	if err := st.SetAttributes(999, Attributes{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing object setattrs: %v", err)
	}
}

func TestPriorityObjectTagsRequests(t *testing.T) {
	eng, st := newStore(t, ssd.Interleaved, false)
	hi := st.Create(Attributes{Priority: true})
	lo := st.Create(Attributes{})
	st.Write(hi, 0, 4096, nil)
	st.Write(lo, 0, 4096, nil)
	eng.Run()
	m := st.Device().Metrics()
	if m.PriResp.N() != 1 || m.BgResp.N() != 1 {
		t.Fatalf("priority tagging: pri=%d bg=%d", m.PriResp.N(), m.BgResp.N())
	}
}

func TestRangeValidation(t *testing.T) {
	eng, st := newStore(t, ssd.Interleaved, false)
	id := st.Create(Attributes{})
	if err := st.Write(id, -1, 10, nil); !errors.Is(err, ErrBadRange) {
		t.Errorf("negative offset: %v", err)
	}
	if err := st.Write(id, 0, 0, nil); !errors.Is(err, ErrBadRange) {
		t.Errorf("zero size: %v", err)
	}
	if err := st.Write(999, 0, 10, nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing object: %v", err)
	}
	st.Write(id, 0, 100, nil)
	eng.Run()
	if err := st.Read(id, 50, 100, nil); !errors.Is(err, ErrBadRange) {
		t.Errorf("read past size: %v", err)
	}
	if err := st.Read(999, 0, 10, nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("read missing object: %v", err)
	}
	if err := st.Delete(999); !errors.Is(err, ErrNotFound) {
		t.Errorf("delete missing: %v", err)
	}
}

func TestSparseExtension(t *testing.T) {
	eng, st := newStore(t, ssd.Interleaved, false)
	id := st.Create(Attributes{})
	// Write far past the start: allocation covers [0, end).
	if err := st.Write(id, 20*4096, 4096, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	sz, _ := st.Size(id)
	if sz != 21*4096 {
		t.Fatalf("size = %d", sz)
	}
	// The earlier region is allocated and readable.
	if err := st.Read(id, 0, 4096, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
}

func TestOutOfSpace(t *testing.T) {
	_, st := newStore(t, ssd.Interleaved, false)
	id := st.Create(Attributes{})
	cap := st.Device().LogicalBytes()
	if err := st.Write(id, 0, cap+4096, nil); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("oversize write: %v", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	eng, st := newStore(t, ssd.Interleaved, false)
	a := st.Create(Attributes{})
	b := st.Create(Attributes{})
	st.Write(a, 0, 8192, nil)
	st.Read(a, 0, 4096, nil)
	eng.Run()
	st.Delete(b)
	s := st.Stats()
	if s.Created != 2 || s.Deleted != 1 || s.Objects != 1 {
		t.Fatalf("object counts: %+v", s)
	}
	if s.BytesWritten != 8192 || s.BytesRead != 4096 {
		t.Fatalf("byte counts: %+v", s)
	}
	if s.AllocatedBytes < 8192 {
		t.Fatalf("allocated: %+v", s)
	}
}

func TestList(t *testing.T) {
	_, st := newStore(t, ssd.Interleaved, false)
	ids := map[ObjectID]bool{}
	for i := 0; i < 5; i++ {
		ids[st.Create(Attributes{})] = true
	}
	got := st.List()
	if len(got) != 5 {
		t.Fatalf("List len = %d", len(got))
	}
	for _, id := range got {
		if !ids[id] {
			t.Fatalf("unknown id %d", id)
		}
	}
}

// Property: a model map of object sizes agrees with the store through
// arbitrary create/write/delete interleavings, and device invariants
// survive.
func TestStoreModelProperty(t *testing.T) {
	prop := func(ops []uint16) bool {
		eng, st := func() (*sim.Engine, *Store) {
			eng := sim.NewEngine()
			cfg := ssd.Config{
				Elements:      2,
				Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 8, BlocksPerPackage: 64},
				Overprovision: 0.15,
				Layout:        ssd.Interleaved,
				Informed:      true,
				GCLow:         0.12,
				GCCritical:    0.03,
			}
			dev, err := ssd.New(eng, cfg)
			if err != nil {
				return nil, nil
			}
			s, err := New(dev)
			if err != nil {
				return nil, nil
			}
			return eng, s
		}()
		if st == nil {
			return false
		}
		model := map[ObjectID]int64{}
		var ids []ObjectID
		for _, op := range ops {
			switch op % 3 {
			case 0:
				id := st.Create(Attributes{})
				model[id] = 0
				ids = append(ids, id)
			case 1:
				if len(ids) == 0 {
					continue
				}
				id := ids[int(op>>2)%len(ids)]
				if _, live := model[id]; !live {
					continue
				}
				off := int64(op>>4) % 16 * 4096
				size := int64(op>>8)%4*4096 + 4096
				if err := st.Write(id, off, size, nil); err != nil {
					if errors.Is(err, ErrNoSpace) {
						continue
					}
					return false
				}
				if off+size > model[id] {
					model[id] = off + size
				}
			case 2:
				if len(ids) == 0 {
					continue
				}
				i := int(op>>2) % len(ids)
				id := ids[i]
				if _, live := model[id]; !live {
					continue
				}
				if err := st.Delete(id); err != nil {
					return false
				}
				delete(model, id)
			}
		}
		eng.Run()
		for id, want := range model {
			got, err := st.Size(id)
			if err != nil || got != want {
				return false
			}
		}
		for _, el := range st.Device().Elements() {
			if el.CheckInvariants() != nil {
				return false
			}
		}
		return len(st.List()) == len(model)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}

func TestHeterogeneousPlacement(t *testing.T) {
	eng := sim.NewEngine()
	dev, err := ssd.New(eng, ssd.Config{
		Elements:      4,
		MLCElements:   2,
		Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 8, BlocksPerPackage: 64},
		Overprovision: 0.15,
		Layout:        ssd.Interleaved,
		GCLow:         0.12, GCCritical: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Heterogeneous() {
		t.Fatal("store does not see the heterogeneous media")
	}
	hot := st.Create(Attributes{Priority: true})
	cold := st.Create(Attributes{})
	if r, _ := st.Region(hot); r != 0 {
		t.Fatalf("hot object in region %d, want SLC (0)", r)
	}
	if r, _ := st.Region(cold); r != 1 {
		t.Fatalf("cold object in region %d, want MLC (1)", r)
	}
	if _, err := st.Region(999); err == nil {
		t.Error("missing object region lookup succeeded")
	}
	// Writes to the hot object land below the boundary; cold above.
	if err := st.Write(hot, 0, 8192, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Write(cold, 0, 8192, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	boundary := dev.RegionBoundary()
	// Verify via element traffic: SLC elements (0,1) got the hot writes.
	slcWrites := dev.Elements()[0].Stats().HostWrites + dev.Elements()[1].Stats().HostWrites
	mlcWrites := dev.Elements()[2].Stats().HostWrites + dev.Elements()[3].Stats().HostWrites
	if slcWrites != 2 || mlcWrites != 2 {
		t.Fatalf("write placement: slc=%d mlc=%d, want 2/2 (boundary %d)", slcWrites, mlcWrites, boundary)
	}
	// Deleting the cold object frees into the MLC region.
	if err := st.Delete(cold); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	mlcFrees := dev.Elements()[2].Stats().FreesSeen + dev.Elements()[3].Stats().FreesSeen
	if mlcFrees != 2 {
		t.Fatalf("cold delete freed %d MLC pages, want 2", mlcFrees)
	}
}

func TestHomogeneousSingleRegion(t *testing.T) {
	_, st := newStore(t, ssd.Interleaved, false)
	if st.Heterogeneous() {
		t.Fatal("homogeneous store claims regions")
	}
	id := st.Create(Attributes{})
	if r, _ := st.Region(id); r != 0 {
		t.Fatalf("region = %d", r)
	}
}

func TestStat(t *testing.T) {
	eng, st := newStore(t, ssd.Interleaved, false)
	id := st.Create(Attributes{Priority: true})
	if err := st.Write(id, 0, 10000, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	info, err := st.Stat(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != id || info.Size != 10000 {
		t.Fatalf("info identity: %+v", info)
	}
	if info.AllocatedBytes < 10000 || info.AllocatedBytes%st.AllocationUnit() != 0 {
		t.Fatalf("allocated = %d", info.AllocatedBytes)
	}
	if info.Extents < 1 || !info.Attrs.Priority || info.Region != 0 {
		t.Fatalf("info details: %+v", info)
	}
	if _, err := st.Stat(999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing object stat: %v", err)
	}
}

func TestReserveAllocatesWithoutIO(t *testing.T) {
	eng, st := newStore(t, ssd.Interleaved, true)
	id := st.Create(Attributes{})
	if err := st.Reserve(id, 64<<10); err != nil {
		t.Fatal(err)
	}
	if eng.Pending() != 0 {
		t.Fatalf("reserve scheduled %d device events", eng.Pending())
	}
	if sz, _ := st.Size(id); sz != 64<<10 {
		t.Fatalf("size = %d, want %d", sz, 64<<10)
	}
	info, err := st.Stat(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.AllocatedBytes < 64<<10 {
		t.Fatalf("allocated %d, want >= %d", info.AllocatedBytes, 64<<10)
	}
	// Reserved ranges are immediately readable, and a smaller reserve
	// never shrinks the object.
	if err := st.Read(id, 0, 64<<10, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if err := st.Reserve(id, 4096); err != nil {
		t.Fatal(err)
	}
	if sz, _ := st.Size(id); sz != 64<<10 {
		t.Fatalf("shrunk to %d", sz)
	}
	// Validation: negative sizes, read-only and missing objects fail.
	if err := st.Reserve(id, -1); !errors.Is(err, ErrBadRange) {
		t.Fatalf("negative reserve: %v", err)
	}
	if err := st.SetAttributes(id, Attributes{ReadOnly: true}); err != nil {
		t.Fatal(err)
	}
	if err := st.Reserve(id, 128<<10); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only reserve: %v", err)
	}
	if err := st.Reserve(ObjectID(9999), 4096); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing object reserve: %v", err)
	}
}

func TestFreeRangeTrimsThroughExtents(t *testing.T) {
	eng, st := newStore(t, ssd.Interleaved, true)
	id := st.Create(Attributes{})
	if err := st.Write(id, 0, 32<<10, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	before := st.Device().Metrics().Frees
	var freeErr error
	fired := false
	if err := st.FreeRange(id, 4096, 8192, func(err error) { fired, freeErr = true, err }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !fired || freeErr != nil {
		t.Fatalf("free completion: fired=%v err=%v", fired, freeErr)
	}
	if got := st.Device().Metrics().Frees - before; got == 0 {
		t.Fatal("no free notifications reached the device")
	}
	// Ranges past the object's size are rejected.
	if err := st.FreeRange(id, 30<<10, 8192, nil); !errors.Is(err, ErrBadRange) {
		t.Fatalf("out-of-range free: %v", err)
	}
	if err := st.FreeRange(ObjectID(777), 0, 4096, nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing object free: %v", err)
	}
}
