package trace

import (
	"container/heap"
	"fmt"
	"math"

	"ossd/internal/sim"
)

// Stream is a pull-based iterator over trace operations: the canonical
// workload currency. Generators produce Streams, devices consume them
// (core.Device.Drive), and combinators compose them — so a million-op
// workload flows through the system one Op at a time instead of as a
// materialized slice.
//
// Next returns the next operation and true, or a zero Op and false once
// the stream is exhausted. After false, further calls keep returning
// false. Streams are single-use and not safe for concurrent use.
//
// A stream that can fail mid-iteration (a decoder reading a file, a
// validating transform) additionally implements ErrStream; consumers that
// drain a stream should check Err afterwards.
type Stream interface {
	Next() (Op, bool)
}

// ErrStream is implemented by streams whose iteration can fail. Next
// returning false may mean exhaustion or error; Err distinguishes the
// two. Err is meaningful once Next has returned false.
type ErrStream interface {
	Stream
	// Err returns the first error the stream hit, or nil.
	Err() error
}

// Err returns s's iteration error, if s tracks one (see ErrStream), and
// nil otherwise. Combinators propagate Err from their sources, so
// checking the outermost stream is sufficient.
func Err(s Stream) error {
	if es, ok := s.(ErrStream); ok {
		return es.Err()
	}
	return nil
}

// Func adapts a closure to a Stream.
type Func func() (Op, bool)

// Next implements Stream.
func (f Func) Next() (Op, bool) { return f() }

// sliceStream iterates over a materialized trace.
type sliceStream struct {
	ops []Op
	i   int
}

func (s *sliceStream) Next() (Op, bool) {
	if s.i >= len(s.ops) {
		return Op{}, false
	}
	op := s.ops[s.i]
	s.i++
	return op, true
}

// FromSlice returns a Stream over ops. The slice is not copied; it must
// not be mutated while the stream is live.
func FromSlice(ops []Op) Stream { return &sliceStream{ops: ops} }

// Collect drains a stream into a slice: the bridge back to the legacy
// slice-based API. It materializes the whole stream — use it only where
// the trace is known to be small or a slice is genuinely required.
func Collect(s Stream) []Op {
	var ops []Op
	for {
		op, ok := s.Next()
		if !ok {
			return ops
		}
		ops = append(ops, op)
	}
}

// limitStream caps a stream at n operations.
type limitStream struct {
	src  Stream
	left int
}

func (l *limitStream) Next() (Op, bool) {
	if l.left <= 0 {
		return Op{}, false
	}
	op, ok := l.src.Next()
	if !ok {
		l.left = 0
		return Op{}, false
	}
	l.left--
	return op, true
}

func (l *limitStream) Err() error { return Err(l.src) }

// Limit returns a stream that yields at most n operations from s.
func Limit(s Stream, n int) Stream { return &limitStream{src: s, left: n} }

// shiftStream offsets every timestamp by a fixed delta.
type shiftStream struct {
	src   Stream
	delta sim.Time
}

func (s *shiftStream) Next() (Op, bool) {
	op, ok := s.src.Next()
	if !ok {
		return Op{}, false
	}
	op.At += s.delta
	return op, true
}

func (s *shiftStream) Err() error { return Err(s.src) }

// Shift returns a stream whose timestamps are offset by delta — the
// streaming form of "shift the trace past the preconditioning window".
func Shift(s Stream, delta sim.Time) Stream { return &shiftStream{src: s, delta: delta} }

// mergeHead is one source's buffered head in a merge.
type mergeHead struct {
	op  Op
	src int // index into merge.srcs; breaks timestamp ties stably
}

type mergeHeap []mergeHead

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].op.At != h[j].op.At {
		return h[i].op.At < h[j].op.At
	}
	return h[i].src < h[j].src
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeHead)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// mergeStream interleaves timestamp-ordered sources into one
// timestamp-ordered stream, holding one buffered op per source.
type mergeStream struct {
	srcs  []Stream
	heads mergeHeap
	init  bool
}

func (m *mergeStream) Next() (Op, bool) {
	if !m.init {
		m.init = true
		for i, s := range m.srcs {
			if op, ok := s.Next(); ok {
				m.heads = append(m.heads, mergeHead{op: op, src: i})
			}
		}
		heap.Init(&m.heads)
	}
	if len(m.heads) == 0 {
		return Op{}, false
	}
	head := m.heads[0]
	if op, ok := m.srcs[head.src].Next(); ok {
		m.heads[0] = mergeHead{op: op, src: head.src}
		heap.Fix(&m.heads, 0)
	} else {
		heap.Pop(&m.heads)
	}
	return head.op, true
}

func (m *mergeStream) Err() error {
	for _, s := range m.srcs {
		if err := Err(s); err != nil {
			return err
		}
	}
	return nil
}

// Merge interleaves timestamp-ordered streams into one timestamp-ordered
// stream (ties go to the earlier argument). It buffers one operation per
// source — O(len(streams)) memory regardless of stream length. Use it to
// compose concurrent workloads, e.g. a foreground stream merged with a
// background scan.
func Merge(streams ...Stream) Stream { return &mergeStream{srcs: streams} }

// Modulation shapes a tenant's arrival process when its stream joins a
// multi-tenant mix: a deterministic time warp applied per op, so the
// same source stream produces the same shaped arrivals on every run.
// The warp maps the source's "virtual" time axis (scaled by Rate) onto
// wall time through a periodic rate profile: a steady tenant passes
// through linearly, a bursty tenant packs its work into a duty window
// each period, and a diurnal tenant follows a raised-cosine day/night
// cycle between a trough and a peak.
type Modulation struct {
	// Kind selects the profile: "" or "steady", "bursty", "diurnal".
	Kind string `json:"kind,omitempty"`
	// Rate scales the tenant's overall arrival rate (0 = 1.0): source
	// timestamps are divided by it before shaping, so 2.0 issues the
	// same ops twice as fast.
	Rate float64 `json:"rate,omitempty"`
	// Period is the modulation cycle length (0 = 1s). Steady ignores it.
	Period sim.Time `json:"period_ns,omitempty"`
	// Duty is the fraction of each bursty period the tenant is on
	// (0 = 0.25). Diurnal and steady ignore it.
	Duty float64 `json:"duty,omitempty"`
	// Floor is the off-window (bursty) or trough (diurnal) rate relative
	// to the peak, in [0, 1]. Bursty defaults to 0 (fully idle between
	// bursts); diurnal defaults to 0.1.
	Floor float64 `json:"floor,omitempty"`
	// Phase offsets the cycle as a fraction of a period, so tenants
	// sharing a period can burst out of step.
	Phase float64 `json:"phase,omitempty"`
}

// Validate rejects out-of-range modulation parameters.
func (m Modulation) Validate() error {
	switch m.Kind {
	case "", "steady", "bursty", "diurnal":
	default:
		return fmt.Errorf("trace: unknown modulation kind %q", m.Kind)
	}
	if m.Rate < 0 {
		return fmt.Errorf("trace: negative modulation rate %v", m.Rate)
	}
	if m.Period < 0 {
		return fmt.Errorf("trace: negative modulation period %v", m.Period)
	}
	if m.Duty < 0 || m.Duty > 1 {
		return fmt.Errorf("trace: modulation duty %v out of [0, 1]", m.Duty)
	}
	if m.Floor < 0 || m.Floor > 1 {
		return fmt.Errorf("trace: modulation floor %v out of [0, 1]", m.Floor)
	}
	if m.Phase < 0 || m.Phase >= 1 {
		return fmt.Errorf("trace: modulation phase %v out of [0, 1)", m.Phase)
	}
	return nil
}

// profile returns the per-period rate slots (relative to peak) and the
// period. A slot's rate is how fast virtual time advances per wall
// nanosecond while wall time is inside that slot.
func (m Modulation) profile() ([]float64, sim.Time) {
	period := m.Period
	if period == 0 {
		period = sim.Second
	}
	switch m.Kind {
	case "bursty":
		duty := m.Duty
		if duty == 0 {
			duty = 0.25
		}
		// Two slots: on for duty*period at peak rate, off at Floor. The
		// slot table is expressed over 16 equal slots so duty needs no
		// special casing in the inverse map.
		slots := make([]float64, 16)
		for i := range slots {
			if float64(i) < duty*16 {
				slots[i] = 1
			} else {
				slots[i] = m.Floor
			}
		}
		return slots, period
	case "diurnal":
		floor := m.Floor
		if floor == 0 {
			floor = 0.1
		}
		// Raised cosine sampled at 16 slots: peak at the cycle start,
		// trough half a period later. math.Cos is bit-reproducible for a
		// given input, so the shaped timestamps are identical every run.
		slots := make([]float64, 16)
		for i := range slots {
			c := (1 + math.Cos(2*math.Pi*float64(i)/16)) / 2 // 1 at 0, 0 at half period
			slots[i] = floor + (1-floor)*c
		}
		return slots, period
	default:
		return nil, period
	}
}

// warp maps a source timestamp onto the shaped wall clock.
type warp struct {
	rate    float64
	slots   []float64 // nil = steady
	period  sim.Time
	perSlot float64 // wall ns per slot
	cap     float64 // virtual ns capacity per period
	phase   sim.Time
}

func newWarp(m Modulation) warp {
	rate := m.Rate
	if rate == 0 {
		rate = 1
	}
	slots, period := m.profile()
	w := warp{rate: rate, slots: slots, period: period}
	if slots != nil {
		w.perSlot = float64(period) / float64(len(slots))
		for _, s := range slots {
			w.cap += s * w.perSlot
		}
	}
	w.phase = sim.Time(m.Phase * float64(period))
	return w
}

// apply warps one timestamp. It is monotone in t, so a sorted source
// stream stays sorted.
func (w warp) apply(t sim.Time) sim.Time {
	v := float64(t) / w.rate // virtual time consumed by the source
	if w.slots == nil {
		return w.phase + sim.Time(v)
	}
	periods := 0.0
	if w.cap > 0 {
		periods = float64(int64(v / w.cap))
	}
	rem := v - periods*w.cap
	wall := periods * float64(w.period)
	for _, s := range w.slots {
		if s <= 0 {
			wall += w.perSlot
			continue
		}
		slotCap := s * w.perSlot
		if rem < slotCap {
			wall += rem / s
			rem = 0
			break
		}
		rem -= slotCap
		wall += w.perSlot
	}
	// rem > 0 only if every slot rate is zero; park such ops at the
	// period boundary rather than dividing by zero.
	return w.phase + sim.Time(wall)
}

// TenantStream couples one tenant's workload with its arrival shaping
// for MergeTenants.
type TenantStream struct {
	// Tenant tags every op of this source (must be nonzero: 0 is the
	// untagged legacy default).
	Tenant uint8
	// Stream is the tenant's timestamp-ordered workload.
	Stream Stream
	// Mod shapes the tenant's arrivals; the zero value passes the
	// source timing through unchanged.
	Mod Modulation
}

// tenantTagStream tags and warps one tenant's ops.
type tenantTagStream struct {
	src    Stream
	tenant uint8
	w      warp
}

func (t *tenantTagStream) Next() (Op, bool) {
	op, ok := t.src.Next()
	if !ok {
		return Op{}, false
	}
	op.Tenant = t.tenant
	op.At = t.w.apply(op.At)
	return op, true
}

func (t *tenantTagStream) Err() error { return Err(t.src) }

// MergeTenants tags each source's ops with its tenant ID, shapes each
// tenant's arrival times under its modulation, and interleaves the
// results into one timestamp-ordered stream (ties go to the earlier
// source). It is the front door for multi-tenant workloads: per-tenant
// generators in, one schedulable mix out, at O(len(srcs)) memory.
func MergeTenants(srcs []TenantStream) (Stream, error) {
	tagged := make([]Stream, len(srcs))
	for i, src := range srcs {
		if src.Tenant == 0 {
			return nil, fmt.Errorf("trace: tenant stream %d has tenant 0 (reserved for untagged ops)", i)
		}
		if err := src.Mod.Validate(); err != nil {
			return nil, err
		}
		tagged[i] = &tenantTagStream{src: src.Stream, tenant: src.Tenant, w: newWarp(src.Mod)}
	}
	return Merge(tagged...), nil
}

// tallyStream accumulates Stats as operations pass through.
type tallyStream struct {
	src Stream
	st  *Stats
}

func (t *tallyStream) Next() (Op, bool) {
	op, ok := t.src.Next()
	if ok {
		t.st.add(op)
	}
	return op, ok
}

func (t *tallyStream) Err() error { return Err(t.src) }

// Tally returns a pass-through stream that accumulates summary statistics
// into st as operations flow by — Summarize for pipelines that never
// materialize the trace. st is complete once the stream is drained.
func Tally(s Stream, st *Stats) Stream { return &tallyStream{src: s, st: st} }
