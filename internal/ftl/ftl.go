// Package ftl implements a log-structured flash translation layer for one
// parallel element (flash package) of an SSD, following the design of
// Agrawal et al. (USENIX ATC 2008), the simulator substrate of the paper
// under reproduction: page-level logical-to-physical mapping, an
// append-only allocation log, greedy garbage collection, and
// wear-leveling. Two of the paper's proposals live here:
//
//   - Informed cleaning (§3.5): when enabled, file-system free
//     notifications invalidate mapping entries so the cleaner never copies
//     dead pages. The default FTL ignores frees, retaining "the most
//     recent version of all the logical pages, including those that have
//     been released" — exactly the paper's baseline.
//
//   - Cleaning watermarks (§3.6): the element exposes its free-page
//     fraction so the device layer can implement priority-aware cleaning
//     (clean at the low watermark only when no priority request is
//     outstanding; always clean at the critical watermark).
package ftl

import (
	"errors"
	"fmt"

	"ossd/internal/flash"
	"ossd/internal/sim"
)

// Config parameterizes one element's FTL.
type Config struct {
	// Geom and Timing describe the underlying flash package.
	Geom   flash.Geometry
	Timing flash.Timing
	// EraseBudget is the per-block endurance; zero selects the SLC default.
	EraseBudget int
	// Overprovision is the fraction of physical pages withheld from the
	// logical address space (spare area for cleaning). Typical: 0.1–0.15.
	Overprovision float64
	// Informed enables free-page knowledge: Free(lpn) invalidates the
	// mapping so cleaning skips dead pages.
	Informed bool
	// WearAware enables wear-leveling: erase counts break victim-selection
	// ties, and a cold-data migration fires when the erase-count spread
	// exceeds WearDelta.
	WearAware bool
	// CostBenefit selects cost-benefit victim selection (LFS/eNVy style:
	// maximize age*(1-u)/(1+u)) instead of pure greedy (most invalid
	// pages). Greedy is optimal under uniform traffic; cost-benefit wins
	// when hot and cold data mix, because it lets hot blocks accumulate
	// more garbage before paying to clean them.
	CostBenefit bool
	// WearDelta is the max tolerated erase-count spread (default 32).
	WearDelta int
	// WearCeiling retires a block instead of erasing it once its erase
	// count reaches this value; 0 disables retirement. A fault plan's
	// accelerated-lifetime knob: retired blocks leave the spare pool,
	// so cleaning intensifies and the element eventually hits its
	// wear-out cliff (ErrNoSpace).
	WearCeiling int
	// RemapCost is the extra latency charged per page relocated by a
	// retirement pass (the remap-table rebuild), plus one fixed unit
	// for the table update itself.
	RemapCost sim.Time
}

// Stats accumulates the cleaning and traffic counters reported in the
// paper's Table 5.
type Stats struct {
	// HostReads and HostWrites count logical page operations served.
	HostReads, HostWrites int64
	// PagesMoved counts valid pages copied by the cleaner.
	PagesMoved int64
	// Cleans counts cleaning passes (one victim block each).
	Cleans int64
	// CleanTime is the total time spent cleaning.
	CleanTime sim.Time
	// GCErases counts blocks erased by the cleaner.
	GCErases int64
	// FreesSeen counts free notifications received; FreesApplied counts
	// those that invalidated a live mapping (informed mode only).
	FreesSeen, FreesApplied int64
	// Migrations counts forced cold-data migrations (wear-leveling).
	Migrations int64
	// RetiredBlocks counts blocks retired at their wear ceiling;
	// RemappedPages counts the valid pages retirement passes relocated.
	RetiredBlocks, RemappedPages int64
}

// Page states tracked per physical page.
const (
	pageFree byte = iota
	pageValid
	pageInvalid
)

// Block states.
const (
	blockFree byte = iota
	blockActive
	blockUsed
	// blockRetired blocks hit their wear ceiling: permanently out of
	// circulation, never erased again, never picked as victims.
	blockRetired
)

// Errors returned by the element.
var (
	ErrNoSpace    = errors.New("ftl: no free space and nothing to clean")
	ErrOutOfRange = errors.New("ftl: logical page out of range")
)

const unmapped = int32(-1)

// Element is the FTL for one flash package. It is single-threaded by
// design: the device model serializes each element on the simulated clock.
type Element struct {
	cfg Config
	pkg *flash.Package

	ppb      int // pages per block
	physPage int // total physical pages
	logical  int // exported logical pages

	l2p       []int32 // logical -> physical page, unmapped if -1
	p2l       []int32 // physical -> logical page, unmapped if -1
	pageState []byte
	blkState  []byte
	validCnt  []int32 // per-block valid page count
	invalCnt  []int32 // per-block invalid page count

	freeBlocks []int
	active     int
	freePages  int
	// retiredPages counts pages stranded in retired blocks; they shrink
	// the live physical pool that FreeFraction is measured against.
	retiredPages int

	// opSeq is a logical clock (one tick per host write) used by
	// cost-benefit victim selection; blockTouch records each block's last
	// invalidation tick, so old garbage-heavy blocks look cheap.
	opSeq      int64
	blockTouch []int64

	stats Stats
}

// NewElement builds an element with a fully-erased package.
func NewElement(cfg Config) (*Element, error) {
	if err := cfg.Geom.Validate(); err != nil {
		return nil, err
	}
	if cfg.Overprovision < 0 || cfg.Overprovision >= 0.9 {
		return nil, fmt.Errorf("ftl: overprovision %v out of range [0, 0.9)", cfg.Overprovision)
	}
	if cfg.EraseBudget == 0 {
		cfg.EraseBudget = flash.EraseBudgetFor(flash.SLC)
	}
	if cfg.WearDelta == 0 {
		cfg.WearDelta = 32
	}
	if cfg.Geom.BlocksPerPackage < 3 {
		return nil, fmt.Errorf("ftl: need at least 3 blocks, got %d", cfg.Geom.BlocksPerPackage)
	}
	pkg, err := flash.NewPackage(cfg.Geom, cfg.Timing, cfg.EraseBudget)
	if err != nil {
		return nil, err
	}
	phys := cfg.Geom.Pages()
	logical := int(float64(phys) * (1 - cfg.Overprovision))
	// Keep at least one block's worth of slack so cleaning always has a
	// destination.
	if max := phys - 2*cfg.Geom.PagesPerBlock; logical > max {
		logical = max
	}
	if logical <= 0 {
		return nil, fmt.Errorf("ftl: geometry too small for overprovisioning")
	}
	el := &Element{
		cfg:        cfg,
		pkg:        pkg,
		ppb:        cfg.Geom.PagesPerBlock,
		physPage:   phys,
		logical:    logical,
		l2p:        make([]int32, logical),
		p2l:        make([]int32, phys),
		pageState:  make([]byte, phys),
		blkState:   make([]byte, cfg.Geom.BlocksPerPackage),
		validCnt:   make([]int32, cfg.Geom.BlocksPerPackage),
		invalCnt:   make([]int32, cfg.Geom.BlocksPerPackage),
		blockTouch: make([]int64, cfg.Geom.BlocksPerPackage),
		freePages:  phys,
	}
	for i := range el.l2p {
		el.l2p[i] = unmapped
	}
	for i := range el.p2l {
		el.p2l[i] = unmapped
	}
	for b := cfg.Geom.BlocksPerPackage - 1; b >= 1; b-- {
		el.freeBlocks = append(el.freeBlocks, b)
	}
	el.active = 0
	el.blkState[0] = blockActive
	return el, nil
}

// LogicalPages reports the exported logical capacity in pages.
func (el *Element) LogicalPages() int { return el.logical }

// PhysicalPages reports the raw capacity in pages.
func (el *Element) PhysicalPages() int { return el.physPage }

// PageSize reports the page size in bytes.
func (el *Element) PageSize() int { return el.cfg.Geom.PageSize }

// FreeFraction reports free (erased, unwritten) pages as a fraction of
// the live physical pages (retired blocks no longer count). The device
// layer compares this against its cleaning watermarks.
func (el *Element) FreeFraction() float64 {
	live := el.physPage - el.retiredPages
	if live <= 0 {
		return 0
	}
	return float64(el.freePages) / float64(live)
}

// FreePages reports the count of erased, writable pages.
func (el *Element) FreePages() int { return el.freePages }

// Mapped reports whether a logical page currently has a physical copy.
func (el *Element) Mapped(lpn int) bool {
	return lpn >= 0 && lpn < el.logical && el.l2p[lpn] != unmapped
}

// Stats returns a copy of the accumulated counters.
func (el *Element) Stats() Stats { return el.stats }

// Wear returns the wear summary of the underlying package.
func (el *Element) Wear() flash.WearStats { return el.pkg.Wear() }

// Package exposes the underlying flash package for inspection in tests
// and ablation benches.
func (el *Element) Package() *flash.Package { return el.pkg }

func (el *Element) ppn(block, page int) int32 { return int32(block*el.ppb + page) }

// invalidate marks a physical page dead and unlinks it from its logical
// page.
func (el *Element) invalidate(ppn int32) {
	if el.pageState[ppn] != pageValid {
		panic(fmt.Sprintf("ftl: invalidating page %d in state %d", ppn, el.pageState[ppn]))
	}
	el.pageState[ppn] = pageInvalid
	b := int(ppn) / el.ppb
	el.validCnt[b]--
	el.invalCnt[b]++
	el.blockTouch[b] = el.opSeq
	el.p2l[ppn] = unmapped
}

// advanceActive makes room for one more program in the active block,
// pulling a fresh block from the free list when the current one is full.
// Returns an error only when the free list is exhausted, which the
// cleaning invariants should make impossible.
func (el *Element) advanceActive() error {
	if el.pkg.WritePointer(el.active) < el.ppb {
		return nil
	}
	if len(el.freeBlocks) == 0 {
		return ErrNoSpace
	}
	// FIFO reuse rotates allocation across the whole free pool; LIFO would
	// concentrate wear on recently-erased blocks and strand the rest.
	el.blkState[el.active] = blockUsed
	el.active = el.freeBlocks[0]
	el.freeBlocks = el.freeBlocks[1:]
	el.blkState[el.active] = blockActive
	return nil
}

// appendPage programs the next page of the log and returns its physical
// page number and service time.
func (el *Element) appendPage() (int32, sim.Time, error) {
	if err := el.advanceActive(); err != nil {
		return 0, 0, err
	}
	page := el.pkg.WritePointer(el.active)
	d, err := el.pkg.ProgramPage(el.active, page)
	if err != nil {
		return 0, 0, err
	}
	el.freePages--
	return el.ppn(el.active, page), d, nil
}

// WritePage services a host write of one logical page: append to the log,
// remap, invalidate the prior copy. If the element is completely out of
// log space it cleans synchronously first (a safety valve; the device
// layer normally cleans at its watermarks before this point). The
// returned duration includes any such forced cleaning.
func (el *Element) WritePage(lpn int) (sim.Time, error) {
	if lpn < 0 || lpn >= el.logical {
		return 0, fmt.Errorf("%w: lpn %d of %d", ErrOutOfRange, lpn, el.logical)
	}
	var total sim.Time
	// Forced cleaning: keep two blocks of slack. A cleaning pass moves at
	// most PagesPerBlock-1 pages, and any free page outside the active
	// block implies a whole free block (non-active blocks are either full
	// or erased), so this bound guarantees relocation always has a
	// destination.
	for el.freePages <= 2*el.ppb && el.canClean() {
		d, err := el.CleanOnce()
		if err != nil {
			return total, err
		}
		total += d
	}
	ppn, d, err := el.appendPage()
	if err != nil {
		return total, err
	}
	total += d
	el.opSeq++
	if old := el.l2p[lpn]; old != unmapped {
		el.invalidate(old)
	}
	el.l2p[lpn] = ppn
	el.p2l[ppn] = int32(lpn)
	el.pageState[ppn] = pageValid
	el.validCnt[int(ppn)/el.ppb]++
	el.stats.HostWrites++
	return total, nil
}

// ReadPage services a host read of one logical page. Reading a page that
// was never written (or was freed) costs only the bus transfer: the
// controller synthesizes zeros without touching the medium.
func (el *Element) ReadPage(lpn int) (sim.Time, error) {
	if lpn < 0 || lpn >= el.logical {
		return 0, fmt.Errorf("%w: lpn %d of %d", ErrOutOfRange, lpn, el.logical)
	}
	el.stats.HostReads++
	ppn := el.l2p[lpn]
	if ppn == unmapped {
		return sim.Time(el.cfg.Geom.PageSize) * el.cfg.Timing.BusPerByte, nil
	}
	return el.pkg.ReadPage(int(ppn)/el.ppb, int(ppn)%el.ppb)
}

// Free is the file-system deallocation notification for one logical page.
// In informed mode it invalidates the mapping, so cleaning will not copy
// the page; otherwise it is deliberately ignored (the paper's default
// device, which cannot see allocation status).
func (el *Element) Free(lpn int) error {
	if lpn < 0 || lpn >= el.logical {
		return fmt.Errorf("%w: lpn %d of %d", ErrOutOfRange, lpn, el.logical)
	}
	el.stats.FreesSeen++
	if !el.cfg.Informed {
		return nil
	}
	if ppn := el.l2p[lpn]; ppn != unmapped {
		el.invalidate(ppn)
		el.l2p[lpn] = unmapped
		el.stats.FreesApplied++
	}
	return nil
}

// CanClean reports whether a cleaning pass could reclaim anything: some
// used block holds at least one invalid page. The device layer checks
// this before starting background cleaning so a fragmentation-free
// element does not spin.
func (el *Element) CanClean() bool { return el.canClean() }

// canClean reports whether a cleaning pass could reclaim anything.
func (el *Element) canClean() bool {
	for b, st := range el.blkState {
		if st == blockUsed && el.invalCnt[b] > 0 {
			return true
		}
	}
	return false
}

// pickVictim selects the cleaning victim. Greedy takes the used block
// with the most invalid pages; cost-benefit maximizes age*(1-u)/(1+u),
// where u is the block's valid fraction and age the ticks since it last
// gained garbage. With WearAware set, erase counts break greedy ties so
// lightly-worn blocks are recycled first.
func (el *Element) pickVictim() int {
	if el.cfg.CostBenefit {
		return el.pickVictimCostBenefit()
	}
	best := -1
	var bestInval int32 = -1
	bestErase := 0
	for b, st := range el.blkState {
		if st != blockUsed {
			continue
		}
		inv := el.invalCnt[b]
		if inv == 0 {
			continue
		}
		e := el.pkg.EraseCount(b)
		if inv > bestInval || (inv == bestInval && el.cfg.WearAware && e < bestErase) {
			best, bestInval, bestErase = b, inv, e
		}
	}
	return best
}

func (el *Element) pickVictimCostBenefit() int {
	best := -1
	bestScore := -1.0
	for b, st := range el.blkState {
		if st != blockUsed || el.invalCnt[b] == 0 {
			continue
		}
		u := float64(el.validCnt[b]) / float64(el.ppb)
		age := float64(el.opSeq - el.blockTouch[b] + 1)
		score := age * (1 - u) / (1 + u)
		if score > bestScore {
			best, bestScore = b, score
		}
	}
	return best
}

// relocate copies one valid physical page to the log tail, preserving the
// logical mapping, and returns the time spent.
func (el *Element) relocate(ppn int32) (sim.Time, error) {
	lpn := el.p2l[ppn]
	if lpn == unmapped || el.pageState[ppn] != pageValid {
		panic("ftl: relocating a non-valid page")
	}
	rd, err := el.pkg.ReadPage(int(ppn)/el.ppb, int(ppn)%el.ppb)
	if err != nil {
		return 0, err
	}
	dst, wd, err := el.appendPage()
	if err != nil {
		return rd, err
	}
	el.invalidate(ppn)
	el.l2p[lpn] = dst
	el.p2l[dst] = lpn
	el.pageState[dst] = pageValid
	el.validCnt[int(dst)/el.ppb]++
	el.stats.PagesMoved++
	return rd + wd, nil
}

// reclaim moves every valid page out of block b, then either erases it
// back into the free pool or — when a wear ceiling is configured and the
// block has reached it — retires it instead, permanently shrinking the
// spare area.
func (el *Element) reclaim(b int) (sim.Time, error) {
	var total sim.Time
	base := int32(b * el.ppb)
	moved := 0
	for p := int32(0); p < int32(el.ppb); p++ {
		if el.pageState[base+p] == pageValid {
			d, err := el.relocate(base + p)
			total += d
			if err != nil {
				return total, err
			}
			moved++
		}
	}
	if el.validCnt[b] != 0 {
		panic(fmt.Sprintf("ftl: block %d still has %d valid pages after relocation", b, el.validCnt[b]))
	}
	if el.cfg.WearCeiling > 0 && el.pkg.EraseCount(b) >= el.cfg.WearCeiling {
		return total + el.retire(b, moved), nil
	}
	reclaimed := el.pkg.WritePointer(b) // programmed pages become free again
	d, err := el.pkg.EraseBlock(b)
	total += d
	if err != nil {
		return total, err
	}
	for p := int32(0); p < int32(el.ppb); p++ {
		el.pageState[base+p] = pageFree
		el.p2l[base+p] = unmapped
	}
	el.freePages += reclaimed
	el.invalCnt[b] = 0
	el.blkState[b] = blockFree
	el.freeBlocks = append(el.freeBlocks, b)
	el.stats.GCErases++
	return total, nil
}

// retire pulls block b out of circulation at its wear ceiling: the block
// keeps its (all-invalid) contents, its pages leave the live pool, and
// the remap-table rebuild charges RemapCost per relocated page plus one
// fixed unit. moved is the number of valid pages the preceding
// relocation loop copied out.
func (el *Element) retire(b int, moved int) sim.Time {
	// Unprogrammed pages in the retired block were counted free; they
	// are stranded now. (Cleaning victims are always full, so this is
	// zero in practice.)
	el.freePages -= el.ppb - el.pkg.WritePointer(b)
	el.retiredPages += el.ppb
	el.blkState[b] = blockRetired
	el.stats.RetiredBlocks++
	el.stats.RemappedPages += int64(moved)
	_ = el.pkg.RetireBlock(b)
	// The caller (CleanOnce or a migration pass) folds this duration
	// into CleanTime along with the relocation traffic.
	return el.cfg.RemapCost * sim.Time(moved+1)
}

// CleanOnce performs one cleaning pass: pick a victim, relocate its valid
// pages, erase it. With wear-leveling enabled, a pass may instead migrate
// the coldest block when the wear spread exceeds the configured delta.
// Returns the total medium time consumed, which the device layer charges
// to the element's timeline.
func (el *Element) CleanOnce() (sim.Time, error) {
	var total sim.Time
	if el.cfg.WearAware {
		if d, did, err := el.maybeMigrate(); did {
			total += d
			if err != nil {
				return total, err
			}
		}
	}
	v := el.pickVictim()
	if v == -1 {
		if total > 0 {
			// The migration pass freed a block; that is progress.
			return total, nil
		}
		return 0, ErrNoSpace
	}
	d, err := el.reclaim(v)
	total += d
	if err != nil {
		return total, err
	}
	el.stats.Cleans++
	el.stats.CleanTime += total
	return total, nil
}

// maybeMigrate performs dual-pool cold-data migration when wear is
// skewed. The least-worn used block holds the coldest data (it has not
// been recycled since it was written); its contents are copied verbatim
// into the most-worn *free* block, which retires that worn block from
// circulation, and the cold block re-enters the allocation pool to absorb
// hot traffic. Copying into the shared log would not level anything: the
// cold pages would simply re-segregate.
func (el *Element) maybeMigrate() (sim.Time, bool, error) {
	ws := el.pkg.Wear()
	if ws.Max-ws.Min <= el.cfg.WearDelta {
		return 0, false, nil
	}
	coldest := -1
	coldErase := 0
	for b, st := range el.blkState {
		if st != blockUsed {
			continue
		}
		// Swap migration needs a fully-valid source so the destination
		// block is exactly filled; partially-valid cold blocks are left to
		// the greedy cleaner.
		if el.validCnt[b] != int32(el.ppb) {
			continue
		}
		e := el.pkg.EraseCount(b)
		if coldest == -1 || e < coldErase {
			coldest, coldErase = b, e
		}
	}
	// Only migrate a block that is genuinely lagging the wear curve.
	if coldest == -1 || coldErase > ws.Min+el.cfg.WearDelta/2 {
		return 0, false, nil
	}
	// Destination: the most-worn free block (excluding the active block).
	if len(el.freeBlocks) < 2 {
		return 0, false, nil
	}
	dstIdx := 0
	for i, b := range el.freeBlocks {
		if el.pkg.EraseCount(b) > el.pkg.EraseCount(el.freeBlocks[dstIdx]) {
			dstIdx = i
		}
	}
	dst := el.freeBlocks[dstIdx]
	// Migrating onto an equally-cold block would be pure churn.
	if el.pkg.EraseCount(dst) <= coldErase {
		return 0, false, nil
	}
	el.freeBlocks = append(el.freeBlocks[:dstIdx], el.freeBlocks[dstIdx+1:]...)
	el.blkState[dst] = blockUsed
	var total sim.Time
	base := int32(coldest * el.ppb)
	for p := int32(0); p < int32(el.ppb); p++ {
		src := base + p
		lpn := el.p2l[src]
		rd, err := el.pkg.ReadPage(coldest, int(p))
		total += rd
		if err != nil {
			return total, true, err
		}
		wd, err := el.pkg.ProgramPage(dst, int(p))
		total += wd
		if err != nil {
			return total, true, err
		}
		el.freePages--
		newPPN := el.ppn(dst, int(p))
		el.invalidate(src)
		el.l2p[lpn] = newPPN
		el.p2l[newPPN] = lpn
		el.pageState[newPPN] = pageValid
		el.validCnt[dst]++
		el.stats.PagesMoved++
	}
	d, err := el.reclaim(coldest)
	total += d
	if err != nil {
		return total, true, err
	}
	el.stats.Migrations++
	// CleanTime is charged by CleanOnce, which folds this duration into
	// its own total.
	return total, true, nil
}

// CheckInvariants validates internal consistency; tests call it after
// randomized operation sequences. It returns a descriptive error on the
// first violation found.
func (el *Element) CheckInvariants() error {
	free := 0
	for b := 0; b < el.cfg.Geom.BlocksPerPackage; b++ {
		var valid, invalid int32
		base := b * el.ppb
		wp := el.pkg.WritePointer(b)
		for p := 0; p < el.ppb; p++ {
			switch el.pageState[base+p] {
			case pageValid:
				valid++
				lpn := el.p2l[base+p]
				if lpn == unmapped || el.l2p[lpn] != int32(base+p) {
					return fmt.Errorf("block %d page %d: broken l2p/p2l link", b, p)
				}
				if p >= wp {
					return fmt.Errorf("block %d page %d valid but beyond write pointer %d", b, p, wp)
				}
			case pageInvalid:
				invalid++
				if p >= wp {
					return fmt.Errorf("block %d page %d invalid but beyond write pointer %d", b, p, wp)
				}
			case pageFree:
				if el.blkState[b] != blockRetired {
					free++
				}
				if p < wp {
					return fmt.Errorf("block %d page %d free but below write pointer %d", b, p, wp)
				}
			}
		}
		if valid != el.validCnt[b] || invalid != el.invalCnt[b] {
			return fmt.Errorf("block %d: counts valid %d/%d invalid %d/%d", b, valid, el.validCnt[b], invalid, el.invalCnt[b])
		}
		if el.blkState[b] == blockFree && wp != 0 {
			return fmt.Errorf("free block %d has write pointer %d", b, wp)
		}
		if el.blkState[b] == blockRetired && valid != 0 {
			return fmt.Errorf("retired block %d still holds %d valid pages", b, valid)
		}
	}
	if free != el.freePages {
		return fmt.Errorf("freePages %d, counted %d", el.freePages, free)
	}
	mapped := 0
	for lpn, ppn := range el.l2p {
		if ppn == unmapped {
			continue
		}
		mapped++
		if el.p2l[ppn] != int32(lpn) {
			return fmt.Errorf("lpn %d: p2l mismatch", lpn)
		}
	}
	return nil
}
