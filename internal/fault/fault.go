// Package fault is the deterministic failure-injection layer: a Plan is
// a declarative, JSON-able spec of media misbehavior — transient op
// errors with rate/burst modulation, permanent per-element death,
// per-block wear ceilings that retire-and-remap blocks in the FTL, and
// power-loss points that truncate a run and replay recovery — that any
// registered device can carry.
//
// Determinism is the design constraint everything else bends around: a
// plan plus the per-element operation sequence number fully determines
// every injection. Draws come from a counter-keyed hash over (plan
// seed, element, op-seq window), never from wall clock, shared RNG
// state, or iteration order, so a fault run is byte-identical at any
// worker count and shard count and fault specs stay cache-addressable
// in simsvc and dedupable in campaigns.
package fault

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	"ossd/internal/sim"
)

// ErrInjected is the transient error a plan injects into an operation;
// devices recover it with a retry, charging the plan's retry cost.
var ErrInjected = errors.New("fault: injected transient error")

// ErrElementDead is the permanent error returned by operations touching
// an element past its death point.
var ErrElementDead = errors.New("fault: element dead")

// Plan is one fault scenario. The zero value injects nothing; every
// field is optional so partial plans compose naturally with campaign
// axis substitution (e.g. an axis sweeping fault.transient.rate).
type Plan struct {
	// Seed keys the plan's hash; two plans differing only in Seed
	// inject at different op sequence numbers.
	Seed int64 `json:"seed"`
	// Transient injects recoverable per-op errors.
	Transient *Transient `json:"transient,omitempty"`
	// Deaths kill elements permanently after a per-element op count.
	Deaths []Death `json:"deaths,omitempty"`
	// WearCeiling retires a flash block (instead of erasing it) once
	// its erase count reaches this value; 0 disables retirement. Lower
	// ceilings accelerate lifetime: the spare pool shrinks as blocks
	// retire until the device hits its wear-out cliff.
	WearCeiling int `json:"wear_ceiling,omitempty"`
	// RemapCostUs is the per-relocated-page latency charged when a
	// retirement pass rebuilds the remap table (default 200us).
	RemapCostUs int64 `json:"remap_cost_us,omitempty"`
	// PowerLoss truncates the run at an op count and replays recovery.
	PowerLoss *PowerLoss `json:"power_loss,omitempty"`
}

// Transient is the recoverable-error component: each operation on an
// element faults with probability Rate, drawn per burst window so
// faults cluster in runs of Burst consecutive ops.
type Transient struct {
	// Rate is the per-op fault probability in [0, 1).
	Rate float64 `json:"rate"`
	// Burst groups consecutive ops into windows that fault together
	// (default 1: independent per-op draws).
	Burst int `json:"burst,omitempty"`
	// RetryUs is the recovery latency charged per injected fault
	// (default 500us).
	RetryUs int64 `json:"retry_us,omitempty"`
	// Kinds selects which op kinds fault: "r", "w", or "rw" (default).
	Kinds string `json:"kinds,omitempty"`
}

// Death kills one element permanently: every operation touching
// Element from its AfterOps-th op onward fails with ErrElementDead.
type Death struct {
	Element  int   `json:"element"`
	AfterOps int64 `json:"after_ops"`
}

// PowerLoss cuts power after AtOps host operations: the workload is
// truncated there and a recovery scan over ReplayFrac of the logical
// space (default 0.25) replays before metrics are read.
type PowerLoss struct {
	AtOps      int64   `json:"at_ops"`
	ReplayFrac float64 `json:"replay_frac,omitempty"`
}

// Validate checks the plan's ranges.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if t := p.Transient; t != nil {
		if t.Rate < 0 || t.Rate >= 1 {
			return fmt.Errorf("fault: transient rate %g outside [0, 1)", t.Rate)
		}
		if t.Burst < 0 {
			return fmt.Errorf("fault: transient burst %d must be >= 0", t.Burst)
		}
		if t.RetryUs < 0 {
			return fmt.Errorf("fault: transient retry_us %d must be >= 0", t.RetryUs)
		}
		switch t.Kinds {
		case "", "r", "w", "rw":
		default:
			return fmt.Errorf("fault: transient kinds %q (want r, w, or rw)", t.Kinds)
		}
	}
	for i, d := range p.Deaths {
		if d.Element < 0 {
			return fmt.Errorf("fault: death %d element %d must be >= 0", i, d.Element)
		}
		if d.AfterOps < 0 {
			return fmt.Errorf("fault: death %d after_ops %d must be >= 0", i, d.AfterOps)
		}
	}
	if p.WearCeiling < 0 {
		return fmt.Errorf("fault: wear_ceiling %d must be >= 0", p.WearCeiling)
	}
	if p.RemapCostUs < 0 {
		return fmt.Errorf("fault: remap_cost_us %d must be >= 0", p.RemapCostUs)
	}
	if pl := p.PowerLoss; pl != nil {
		if pl.AtOps <= 0 {
			return fmt.Errorf("fault: power_loss at_ops %d must be > 0", pl.AtOps)
		}
		if pl.ReplayFrac < 0 || pl.ReplayFrac > 1 {
			return fmt.Errorf("fault: power_loss replay_frac %g outside [0, 1]", pl.ReplayFrac)
		}
	}
	return nil
}

// Injects reports whether the plan injects per-op faults (transient
// errors or element deaths) — the part the generic device wrapper
// handles. Wear ceilings and power loss act elsewhere (FTL, runner).
func (p *Plan) Injects() bool {
	if p == nil {
		return false
	}
	return (p.Transient != nil && p.Transient.Rate > 0) || len(p.Deaths) > 0
}

// PowerLossPoint returns the plan's power-loss spec, nil-safely: nil
// when no plan is attached or the plan has no power-loss component.
func (p *Plan) PowerLossPoint() *PowerLoss {
	if p == nil {
		return nil
	}
	return p.PowerLoss
}

// draw hashes (seed, element, window) to a uniform float64 in [0, 1).
// splitmix64 finalization: a keyed counter mix, so draws are
// independent of evaluation order — the whole determinism story.
func (p *Plan) draw(elem int, window int64) float64 {
	z := uint64(p.Seed)*0x9E3779B97F4A7C15 ^
		(uint64(elem)+1)*0xBF58476D1CE4E5B9 ^
		(uint64(window)+1)*0x94D049BB133111EB
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// TransientAt reports whether elem's seq-th operation draws a transient
// fault. Ops group into windows of Burst; one draw decides the whole
// window, so faults arrive in bursts while the long-run per-op rate
// stays Rate.
func (p *Plan) TransientAt(elem int, seq int64, write bool) bool {
	t := p.Transient
	if t == nil || t.Rate <= 0 {
		return false
	}
	switch t.Kinds {
	case "r":
		if write {
			return false
		}
	case "w":
		if !write {
			return false
		}
	}
	burst := int64(t.Burst)
	if burst < 1 {
		burst = 1
	}
	return p.draw(elem, seq/burst) < t.Rate
}

// DeadAt reports whether elem is dead at its seq-th operation.
func (p *Plan) DeadAt(elem int, seq int64) bool {
	for _, d := range p.Deaths {
		if d.Element == elem && seq >= d.AfterOps {
			return true
		}
	}
	return false
}

// RetryCost is the recovery latency charged per transient fault.
func (p *Plan) RetryCost() sim.Time {
	if p.Transient != nil && p.Transient.RetryUs > 0 {
		return sim.Time(p.Transient.RetryUs) * sim.Microsecond
	}
	return 500 * sim.Microsecond
}

// RemapCost is the per-relocated-page latency of a retirement pass.
func (p *Plan) RemapCost() sim.Time {
	if p.RemapCostUs > 0 {
		return sim.Time(p.RemapCostUs) * sim.Microsecond
	}
	return 200 * sim.Microsecond
}

// Parse decodes a plan from JSON, rejecting unknown fields, and
// validates it.
func Parse(data []byte) (*Plan, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("fault: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load reads and parses a plan file.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}
