package experiments

import (
	"fmt"

	"ossd/internal/core"
	"ossd/internal/flash"
	"ossd/internal/runner"
	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/ssd"
	"ossd/internal/stats"
	"ossd/internal/workload"
)

// Table5Result reproduces Table 5: informed cleaning with free-page
// information. For each Postmark transaction count it reports pages
// moved and cleaning time of the informed FTL relative to the default
// (free-ignorant) FTL, plus the default's absolute numbers.
type Table5Result struct {
	Transactions []int
	// RelPagesMoved and RelCleanTime are informed/default ratios.
	RelPagesMoved, RelCleanTime []float64
	// DefaultPagesMoved and DefaultCleanSec are the baseline absolutes.
	DefaultPagesMoved  []int64
	DefaultCleanSec    []float64
	InformedPagesMoved []int64
	InformedCleanSec   []float64
}

// ID implements Result.
func (Table5Result) ID() string { return "table5" }

func (r Table5Result) String() string {
	t := stats.NewTable("Table 5: Improved Cleaning with Free-Page Information",
		"Transactions", "RelPagesMoved", "RelCleanTime", "DefaultMoved", "DefaultCleanSec")
	for i, tx := range r.Transactions {
		t.AddRow(tx, r.RelPagesMoved[i], r.RelCleanTime[i], r.DefaultPagesMoved[i], r.DefaultCleanSec[i])
	}
	t.AddNote("paper: relative pages moved 0.25-0.50, relative cleaning time 0.60-0.69")
	return t.String()
}

// Table5Options tunes the experiment.
type Table5Options struct {
	// Transactions lists the workload sizes (default 5000..8000, the
	// paper's sweep).
	Transactions []int
	// Seed drives the workloads.
	Seed int64
	// Workers caps the worker pool (0 = runner default).
	Workers int
}

func (o *Table5Options) defaults() {
	if len(o.Transactions) == 0 {
		o.Transactions = []int{5000, 6000, 7000, 8000}
	}
}

// table5Device builds the scaled 8 GB-class device: interleaved mapping,
// cleaning watermarks per the paper.
func table5Device(informed bool) (*core.SSD, error) {
	d, err := core.Open("ssd",
		core.WithSSD(ssd.Config{
			Elements:      4,
			Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 64, BlocksPerPackage: 64},
			Overprovision: 0.12,
			Layout:        ssd.Interleaved,
			Scheduler:     sched.SWTF,
			CtrlOverhead:  10 * sim.Microsecond,
			GCLow:         0.05, GCCritical: 0.02,
		}),
		core.WithInformed(informed),
	)
	if err != nil {
		return nil, err
	}
	return d.(*core.SSD), nil
}

// Table5 replays each Postmark trace on a default and an informed device
// and compares cleaning work.
func Table5(opts Table5Options) (Table5Result, error) {
	opts.defaults()
	var res Table5Result
	probe, err := table5Device(false)
	if err != nil {
		return res, err
	}
	space := probe.LogicalBytes()
	var specs []runner.Spec[ssd.GCStats]
	for _, tx := range opts.Transactions {
		// Pre-fill the file system to ~70% so churn happens against a
		// mostly-full device, the regime where cleaning matters; the
		// paper's 8 GB SSD ran Postmark against a comparably full ext3.
		// Each spec streams its own Postmark run from the shared seed, so
		// the default and informed devices replay identical traces
		// without ever materializing them.
		cfg := workload.PostmarkConfig{
			Transactions:     tx,
			InitialFiles:     1150,
			FileSizeMin:      4 << 10,
			FileSizeMax:      64 << 10,
			CapacityBytes:    space,
			MeanInterarrival: 200 * sim.Microsecond,
			Seed:             opts.Seed + int64(tx),
		}
		for _, informed := range []bool{false, true} {
			informed := informed
			specs = append(specs, runner.Spec[ssd.GCStats]{
				Name:     fmt.Sprintf("table5/tx%d/informed=%v", tx, informed),
				Workload: "postmark",
				Seed:     opts.Seed,
				Run: func() (ssd.GCStats, error) {
					d, err := table5Device(informed)
					if err != nil {
						return ssd.GCStats{}, err
					}
					stream, err := workload.Postmark(cfg)
					if err != nil {
						return ssd.GCStats{}, err
					}
					if err := d.Drive(stream); err != nil {
						return ssd.GCStats{}, err
					}
					return d.Raw.GCStats(), nil
				},
			})
		}
	}
	gcs, err := runner.Run(specs, runner.Options{Workers: opts.Workers})
	if err != nil {
		return res, err
	}
	for i, tx := range opts.Transactions {
		def, inf := gcs[i*2], gcs[i*2+1]
		res.Transactions = append(res.Transactions, tx)
		res.DefaultPagesMoved = append(res.DefaultPagesMoved, def.PagesMoved)
		res.DefaultCleanSec = append(res.DefaultCleanSec, def.CleanTime.Seconds())
		res.InformedPagesMoved = append(res.InformedPagesMoved, inf.PagesMoved)
		res.InformedCleanSec = append(res.InformedCleanSec, inf.CleanTime.Seconds())
		res.RelPagesMoved = append(res.RelPagesMoved, stats.Ratio(float64(inf.PagesMoved), float64(def.PagesMoved)))
		res.RelCleanTime = append(res.RelCleanTime, stats.Ratio(inf.CleanTime.Seconds(), def.CleanTime.Seconds()))
	}
	return res, nil
}
