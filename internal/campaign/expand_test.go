package campaign

import (
	"encoding/json"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"ossd/internal/simsvc"
	"ossd/internal/workload"
)

// template is a small, valid job template for expansion tests.
func template(ops int) simsvc.JobSpec {
	return simsvc.JobSpec{
		Profile:  "ssd",
		Workload: "synthetic",
		Params: workload.GenParams{
			Ops:                ops,
			CapacityBytes:      4 << 20,
			ReadFrac:           0.5,
			MeanInterarrivalUs: 50,
			Seed:               1,
		},
	}
}

// vals turns JSON literals into axis values.
func vals(lits ...string) []json.RawMessage {
	out := make([]json.RawMessage, len(lits))
	for i, l := range lits {
		out[i] = json.RawMessage(l)
	}
	return out
}

// TestExpandCanonicalOrder pins the cell order: axes iterate in spec
// order with the last axis varying fastest, and coordinates carry the
// substituted values in axis order.
func TestExpandCanonicalOrder(t *testing.T) {
	spec := Spec{
		Template: template(100),
		Axes: []Axis{
			{Name: "params.seed", Values: vals("1", "2", "3")},
			{Name: "options.scheduler", Values: vals(`"fcfs"`, `"swtf"`)},
		},
	}
	cells, err := Expand(spec, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(cells))
	}
	wantSeed := []int64{1, 1, 2, 2, 3, 3}
	wantSched := []string{"fcfs", "swtf", "fcfs", "swtf", "fcfs", "swtf"}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d: index %d", i, c.Index)
		}
		if c.Spec.Params.Seed != wantSeed[i] || c.Spec.Options.Scheduler != wantSched[i] {
			t.Errorf("cell %d: seed=%d sched=%q, want seed=%d sched=%q",
				i, c.Spec.Params.Seed, c.Spec.Options.Scheduler, wantSeed[i], wantSched[i])
		}
		if c.Coords[0].Name != "params.seed" || c.Coords[0].Value != strconv.FormatInt(wantSeed[i], 10) ||
			c.Coords[1].Name != "options.scheduler" || c.Coords[1].Value != wantSched[i] {
			t.Errorf("cell %d coords: %v", i, c.Coords)
		}
		// The template's untouched fields survive substitution.
		if c.Spec.Params.Ops != 100 || c.Spec.Profile != "ssd" {
			t.Errorf("cell %d lost template fields: %+v", i, c.Spec)
		}
		if c.DupOf != -1 {
			t.Errorf("cell %d: unexpected dup of %d", i, c.DupOf)
		}
	}
}

// TestExpandRange pins the integer-range convenience.
func TestExpandRange(t *testing.T) {
	spec := Spec{
		Template: template(100),
		Axes:     []Axis{{Name: "params.seed", Range: &Range{From: 1, To: 5, Step: 2}}},
	}
	cells, err := Expand(spec, 4096)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, c := range cells {
		got = append(got, c.Spec.Params.Seed)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("range expanded to %v, want [1 3 5]", got)
	}
}

// TestExpandZeroAxes: a campaign with no axes is the one-cell campaign.
func TestExpandZeroAxes(t *testing.T) {
	cells, err := Expand(Spec{Template: template(100)}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || !reflect.DeepEqual(cells[0].Spec, template(100)) {
		t.Fatalf("zero-axis expansion: %+v", cells)
	}
}

// TestExpandDupKeys: an options.shards axis produces identical cache
// keys (shards are excluded from the identity), marked as duplicates of
// the first cell.
func TestExpandDupKeys(t *testing.T) {
	spec := Spec{
		Template: template(100),
		Axes:     []Axis{{Name: "options.shards", Values: vals("1", "2", "4")}},
	}
	cells, err := Expand(spec, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("got %d cells", len(cells))
	}
	if cells[0].DupOf != -1 || cells[1].DupOf != 0 || cells[2].DupOf != 0 {
		t.Fatalf("dup marks: %d %d %d", cells[0].DupOf, cells[1].DupOf, cells[2].DupOf)
	}
	if cells[0].Key != cells[1].Key || cells[1].Key != cells[2].Key {
		t.Fatalf("keys differ: %x %x %x", cells[0].Key, cells[1].Key, cells[2].Key)
	}
}

// TestExpandErrors walks the rejection paths: every bad spec fails at
// expansion, before anything could be enqueued.
func TestExpandErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		max  int
		want string
	}{
		{"unnamed axis", Spec{Template: template(100), Axes: []Axis{{Values: vals("1")}}}, 4096, "has no name"},
		{"duplicate axis", Spec{Template: template(100), Axes: []Axis{
			{Name: "params.seed", Values: vals("1")},
			{Name: "params.seed", Values: vals("2")},
		}}, 4096, "duplicate axis"},
		{"no values", Spec{Template: template(100), Axes: []Axis{{Name: "params.seed"}}}, 4096, "has no values"},
		{"values and range", Spec{Template: template(100), Axes: []Axis{
			{Name: "params.seed", Values: vals("1"), Range: &Range{From: 1, To: 2}},
		}}, 4096, "both values and range"},
		{"empty range", Spec{Template: template(100), Axes: []Axis{
			{Name: "params.seed", Range: &Range{From: 5, To: 1}},
		}}, 4096, "empty range"},
		{"unknown field", Spec{Template: template(100), Axes: []Axis{
			{Name: "params.sed", Values: vals("1")},
		}}, 4096, "unknown field"},
		{"non-object segment", Spec{Template: template(100), Axes: []Axis{
			{Name: "profile.x", Values: vals("1")},
		}}, 4096, "is not an object"},
		{"wrong type", Spec{Template: template(100), Axes: []Axis{
			{Name: "profile", Values: vals("3")},
		}}, 4096, "cannot unmarshal"},
		{"invalid option", Spec{Template: template(100), Axes: []Axis{
			{Name: "options.scheduler", Values: vals(`"bogus"`)},
		}}, 4096, "unknown scheduler"},
		{"guard exceeded", Spec{Template: template(100), Axes: []Axis{
			{Name: "params.seed", Range: &Range{From: 1, To: 100}},
		}}, 10, "exceeds 10 cells"},
		{"spec guard lowers", Spec{Template: template(100), MaxCells: 3, Axes: []Axis{
			{Name: "params.seed", Range: &Range{From: 1, To: 10}},
		}}, 4096, "exceeds 3 cells"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Expand(tc.spec, tc.max)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestResolveTableAxes pins the table parameter defaulting shared by
// the HTTP endpoint and cmd/repro.
func TestResolveTableAxes(t *testing.T) {
	axes := []string{"params.seed", "options.scheduler"}
	rows, cols, metric, err := ResolveTableAxes(axes, "", "", "")
	if err != nil || rows != "params.seed" || cols != "options.scheduler" || metric != "write_mbps" {
		t.Fatalf("defaults: %q %q %q %v", rows, cols, metric, err)
	}
	// rows pinned to the second axis: cols defaults to the other one.
	rows, cols, _, err = ResolveTableAxes(axes, "options.scheduler", "", "")
	if err != nil || rows != "options.scheduler" || cols != "params.seed" {
		t.Fatalf("pinned rows: %q %q %v", rows, cols, err)
	}
	if _, _, _, err := ResolveTableAxes([]string{"one"}, "", "", ""); err == nil {
		t.Fatal("one-axis campaign should need explicit rows/cols")
	}
}

// TestExpandFaultAxis pins that fault-plan fields are sweepable: the
// axis path creates the intermediate fault objects even when the
// template carries no plan at all, and distinct rates are distinct
// cache identities.
func TestExpandFaultAxis(t *testing.T) {
	spec := Spec{
		Template: template(100),
		Axes: []Axis{
			{Name: "fault.transient.rate", Values: vals("0.0", "0.01", "0.05")},
		},
	}
	cells, err := Expand(spec, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(cells))
	}
	wantRate := []float64{0, 0.01, 0.05}
	keys := map[uint64]bool{}
	for i, c := range cells {
		if c.Spec.Fault == nil || c.Spec.Fault.Transient == nil {
			t.Fatalf("cell %d: axis did not create the fault plan: %+v", i, c.Spec)
		}
		if c.Spec.Fault.Transient.Rate != wantRate[i] {
			t.Errorf("cell %d: rate %v, want %v", i, c.Spec.Fault.Transient.Rate, wantRate[i])
		}
		keys[c.Spec.Key()] = true
	}
	if len(keys) != 3 {
		t.Errorf("fault rates collapsed to %d cache identities, want 3", len(keys))
	}
	// Out-of-range substituted values still reject the whole campaign.
	spec.Axes[0].Values = vals("2.0")
	if _, err := Expand(spec, 4096); err == nil {
		t.Error("out-of-range fault rate accepted")
	}
}

// TestExpandTenantWeightAxis pins that numeric path segments index into
// the template's tenants array, so per-tenant fair-share weights are
// sweepable campaign axes — the interference experiment's grid shape.
func TestExpandTenantWeightAxis(t *testing.T) {
	tmpl := template(100)
	tmpl.Tenants = []simsvc.TenantSpec{
		{Tenant: 1, Weight: 1},
		{Tenant: 2, Weight: 1},
	}
	spec := Spec{
		Template: tmpl,
		Axes: []Axis{
			{Name: "tenants.1.weight", Values: vals("1", "4", "16")},
		},
	}
	cells, err := Expand(spec, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(cells))
	}
	wantW := []float64{1, 4, 16}
	keys := map[uint64]bool{}
	for i, c := range cells {
		if len(c.Spec.Tenants) != 2 || c.Spec.Tenants[0].Weight != 1 {
			t.Fatalf("cell %d: tenants mangled: %+v", i, c.Spec.Tenants)
		}
		if c.Spec.Tenants[1].Weight != wantW[i] {
			t.Errorf("cell %d: weight %v, want %v", i, c.Spec.Tenants[1].Weight, wantW[i])
		}
		keys[c.Spec.Key()] = true
	}
	if len(keys) != 3 {
		t.Errorf("tenant weights collapsed to %d cache identities, want 3", len(keys))
	}
	// Arrays are never grown: an index past the template's elements
	// rejects the campaign rather than silently extending it.
	spec.Axes[0].Name = "tenants.2.weight"
	if _, err := Expand(spec, 4096); err == nil {
		t.Error("out-of-range tenant index accepted")
	}
	// Non-integer segments against an array are rejected too.
	spec.Axes[0].Name = "tenants.first.weight"
	if _, err := Expand(spec, 4096); err == nil {
		t.Error("non-integer array segment accepted")
	}
}
