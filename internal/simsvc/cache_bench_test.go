package simsvc

import (
	"bytes"
	"context"
	"testing"
)

// BenchmarkCacheLocalGetPut is the hot local path a warm fleet rides:
// a verified get plus a put that lands on the existing entry. CI gates
// this at 0 allocs/op — the tier must not tax the local fast path.
func BenchmarkCacheLocalGetPut(b *testing.B) {
	c := newCache(16)
	identity := []byte(`{"profile":"ssd","workload":"synthetic","bench":"get-put"}`)
	key := identityKey(identity)
	payload := bytes.Repeat([]byte("x"), 4096)
	c.put(key, identity, payload)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.get(key, identity); !ok {
			b.Fatal("warm cache missed")
		}
		c.put(key, identity, payload)
	}
}

// BenchmarkSingleFlightCollapse measures the coalescing machinery under
// a thundering herd: each iteration throws 16 identical never-seen
// specs at the manager and verifies exactly one simulation ran. The
// per-op cost is dominated by that single run — the point of the
// benchmark is the pinned collapse ratio, reported as runs/op.
func BenchmarkSingleFlightCollapse(b *testing.B) {
	const herd = 16
	m := New(Options{Workers: 4, CacheEntries: 4})
	defer m.Close()
	start := m.Stats().Run.N
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := smallSpec(5_000, int64(1_000_000+i)) // unique per iteration: never cached
		jobs := make([]*Job, 0, herd)
		for k := 0; k < herd; k++ {
			j, err := m.Submit(spec)
			if err != nil {
				b.Fatal(err)
			}
			jobs = append(jobs, j)
		}
		for _, j := range jobs {
			if v, err := j.Wait(context.Background()); err != nil || v.Status != StatusDone {
				b.Fatalf("herd job: %v %+v", err, v)
			}
		}
	}
	b.StopTimer()
	runs := m.Stats().Run.N - start
	if runs != uint64(b.N) {
		b.Fatalf("herd of %d ran %d simulations over %d iterations, want %d", herd, runs, b.N, b.N)
	}
	b.ReportMetric(float64(runs)/float64(b.N), "runs/op")
}
