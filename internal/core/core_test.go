package core

import (
	"testing"

	"ossd/internal/flash"
	"ossd/internal/hdd"
	"ossd/internal/sim"
	"ossd/internal/ssd"
	"ossd/internal/trace"
)

func smallSSD(t *testing.T) *SSD {
	t.Helper()
	d, err := NewSSD(ssd.Config{
		Elements:      2,
		Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 8, BlocksPerPackage: 32},
		Overprovision: 0.15,
		Layout:        ssd.Interleaved,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSSDWrapperRoundTrip(t *testing.T) {
	d := smallSSD(t)
	var resp sim.Time
	var gotErr error
	if err := d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 4096},
		func(r sim.Time, err error) { resp, gotErr = r, err }); err != nil {
		t.Fatal(err)
	}
	d.Engine().Run()
	if gotErr != nil || resp <= 0 {
		t.Fatalf("submit callback: %v %v", resp, gotErr)
	}
	m := d.Metrics()
	if m.Completed != 1 || m.BytesWritten != 4096 {
		t.Fatalf("metrics: %d %d", m.Completed, m.BytesWritten)
	}
	if m.MeanWriteMs <= 0 {
		t.Fatal("no write response recorded")
	}
}

func TestHDDWrapperRoundTrip(t *testing.T) {
	d, err := NewHDD(hdd.Barracuda7200())
	if err != nil {
		t.Fatal(err)
	}
	var resp sim.Time
	if err := d.Submit(trace.Op{Kind: trace.Read, Offset: 0, Size: 4096},
		func(r sim.Time, err error) { resp = r }); err != nil {
		t.Fatal(err)
	}
	d.Engine().Run()
	if resp <= 0 {
		t.Fatal("read did not complete")
	}
	if d.LogicalBytes() != hdd.Barracuda7200().CapacityBytes {
		t.Fatal("capacity mismatch")
	}
}

func TestRAIDAndMEMSWrappers(t *testing.T) {
	r, err := NewRAID(DefaultRAID())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Play([]trace.Op{{Kind: trace.Write, Offset: 0, Size: 4096}}); err != nil {
		t.Fatal(err)
	}
	if rm := r.Metrics(); rm.Completed != 1 || rm.BytesWritten != 4096 {
		t.Fatalf("raid metrics: %d %d", rm.Completed, rm.BytesWritten)
	}
	m, err := NewMEMS(DefaultMEMS())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Play([]trace.Op{{Kind: trace.Read, Offset: 0, Size: 4096}}); err != nil {
		t.Fatal(err)
	}
	if mm := m.Metrics(); mm.Completed != 1 || mm.BytesRead != 4096 {
		t.Fatalf("mems metrics: %d %d", mm.Completed, mm.BytesRead)
	}
	if m.Metrics().MeanReadMs <= 0 {
		t.Fatal("mems read mean missing")
	}
}

func TestPreconditionFull(t *testing.T) {
	d := smallSSD(t)
	if err := Precondition(d, 64<<10); err != nil {
		t.Fatal(err)
	}
	written := d.Metrics().BytesWritten
	if written != d.LogicalBytes() {
		t.Fatalf("precondition wrote %d of %d", written, d.LogicalBytes())
	}
	// Every page mapped.
	for _, el := range d.Raw.Elements() {
		for lpn := 0; lpn < el.LogicalPages(); lpn++ {
			if !el.Mapped(lpn) {
				t.Fatalf("page %d unmapped after full precondition", lpn)
			}
		}
	}
}

func TestMeasureBandwidthPatterns(t *testing.T) {
	d := smallSSD(t)
	if err := Precondition(d, 64<<10); err != nil {
		t.Fatal(err)
	}
	seq, err := MeasureBandwidth(d, BWOptions{
		Kind: trace.Read, Pattern: Sequential, ReqBytes: 8192, TotalBytes: 1 << 20, Depth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := MeasureBandwidth(d, BWOptions{
		Kind: trace.Read, Pattern: Random, ReqBytes: 4096, TotalBytes: 1 << 20, Depth: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq <= 0 || rnd <= 0 {
		t.Fatalf("bandwidths: %v %v", seq, rnd)
	}
}

func TestMeasureBandwidthWrapsSequential(t *testing.T) {
	// TotalBytes larger than the device must wrap, not error.
	d := smallSSD(t)
	if err := Precondition(d, 64<<10); err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureBandwidth(d, BWOptions{
		Kind: trace.Write, Pattern: Sequential, ReqBytes: 64 << 10,
		TotalBytes: 2 * d.LogicalBytes(), Depth: 1,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestProfilesComplete(t *testing.T) {
	names := map[string]bool{}
	for _, p := range Profiles() {
		if p.Name == "" || p.Description == "" {
			t.Fatalf("profile missing identity: %+v", p)
		}
		if names[p.Name] {
			t.Fatalf("duplicate profile %s", p.Name)
		}
		names[p.Name] = true
		if p.SeqReqBytes <= 0 || p.RandReqBytes <= 0 {
			t.Fatalf("%s: bad request sizes", p.Name)
		}
		if p.SeqReadDepth <= 0 || p.RandReadDepth <= 0 || p.SeqWriteDepth <= 0 || p.RandWriteDepth <= 0 {
			t.Fatalf("%s: missing depths", p.Name)
		}
	}
	for _, want := range []string{"HDD", "S1slc", "S2slc", "S3slc", "S4slc_sim", "S5mlc"} {
		if !names[want] {
			t.Fatalf("missing Table 2 profile %s", want)
		}
	}
}

func TestDefaultRAIDAndMEMSConfigs(t *testing.T) {
	rc := DefaultRAID()
	if rc.Disks < 3 {
		t.Fatal("default RAID too small")
	}
	mc := DefaultMEMS()
	if err := mc.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Every wrapper must report tail-latency percentiles alongside means,
// and the percentiles must be ordered and consistent with the mean's
// existence.
func TestSnapshotPercentiles(t *testing.T) {
	d := smallSSD(t)
	if err := Precondition(d, 64<<10); err != nil {
		t.Fatal(err)
	}
	var off int64
	if err := d.ClosedLoop(2, func(i int) (trace.Op, bool) {
		if i >= 200 {
			return trace.Op{}, false
		}
		kind := trace.Read
		if i%2 == 0 {
			kind = trace.Write
		}
		op := trace.Op{Kind: kind, Offset: off % d.LogicalBytes(), Size: 4096}
		off += 4096
		return op, true
	}); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.P50ReadMs <= 0 || m.P50WriteMs <= 0 {
		t.Fatalf("missing percentiles: %+v", m)
	}
	if m.P50ReadMs > m.P95ReadMs || m.P95ReadMs > m.P99ReadMs {
		t.Fatalf("read percentiles out of order: %+v", m)
	}
	if m.P50WriteMs > m.P95WriteMs || m.P95WriteMs > m.P99WriteMs {
		t.Fatalf("write percentiles out of order: %+v", m)
	}
}

// ProfileNames must enumerate exactly the registry, sorted.
func TestProfileNames(t *testing.T) {
	names := ProfileNames()
	if len(names) != len(ExtendedProfiles()) {
		t.Fatalf("ProfileNames has %d entries, registry has %d", len(names), len(ExtendedProfiles()))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
	for _, name := range names {
		if _, err := ProfileByName(name); err != nil {
			t.Fatal(err)
		}
	}
}
