package experiments

import (
	"reflect"
	"testing"
)

// The runner must never let worker count leak into results: every spec
// is an isolated simulation and assembly is ordered by spec. These tests
// pin that property on real experiments at reduced scale, comparing a
// serial run against a heavily oversubscribed one.
func TestExperimentsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	t.Run("table2", func(t *testing.T) {
		t.Parallel()
		opts := Table2Options{BytesPerTest: 4 << 20, RandBytesPerTest: 1 << 20, Seed: 5}
		opts.Workers = 1
		serial, err := Table2(opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Workers = 16
		parallel, err := Table2(opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("worker count changed the result:\n%+v\n%+v", serial, parallel)
		}
	})
	t.Run("swtf", func(t *testing.T) {
		t.Parallel()
		serial, err := SWTF(SWTFOptions{Ops: 4000, Seed: 5, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := SWTF(SWTFOptions{Ops: 4000, Seed: 5, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("worker count changed the result:\n%+v\n%+v", serial, parallel)
		}
	})
	t.Run("table5", func(t *testing.T) {
		t.Parallel()
		serial, err := Table5(Table5Options{Transactions: []int{2500}, Seed: 5, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := Table5(Table5Options{Transactions: []int{2500}, Seed: 5, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("worker count changed the result:\n%+v\n%+v", serial, parallel)
		}
	})
}
