// Package workload generates the I/O streams the paper evaluates with:
// parameterized synthetic streams (request mix, sequentiality, priority
// fraction, inter-arrival distribution) and four macro workloads —
// Postmark (run through the fsmodel allocator so deletions appear as free
// notifications), TPC-C, Exchange, and IOzone — matching each workload's
// published I/O signature.
//
// Every generator returns a trace.Stream: operations are produced on
// demand, so a million-op workload costs the same memory as a hundred-op
// one. The …Ops variants materialize the stream for callers that still
// need a slice; for a fixed seed the stream and the slice are identical
// op for op.
package workload

import (
	"fmt"

	"ossd/internal/sim"
	"ossd/internal/trace"
)

// SyntheticConfig parameterizes a synthetic stream.
type SyntheticConfig struct {
	// Ops is the number of operations to generate.
	Ops int
	// AddressSpace is the byte range targeted.
	AddressSpace int64
	// ReadFrac is the fraction of reads (the rest are writes).
	ReadFrac float64
	// SeqProb is the probability an op continues at the previous op's end
	// (the paper's "degree of sequentiality").
	SeqProb float64
	// ReqSize is the per-op size in bytes.
	ReqSize int64
	// Align constrains random offsets; zero means ReqSize alignment.
	Align int64
	// InterarrivalLo/Hi bound a uniform inter-arrival distribution.
	// Lo==Hi==0 produces all-at-zero timestamps (back-to-back arrivals).
	InterarrivalLo, InterarrivalHi sim.Time
	// PriorityFrac marks this fraction of ops as priority requests.
	PriorityFrac float64
	// Seed selects the random stream.
	Seed int64
}

// Validate checks the configuration.
func (c *SyntheticConfig) Validate() error {
	if c.Ops <= 0 {
		return fmt.Errorf("workload: Ops must be positive, got %d", c.Ops)
	}
	if c.ReqSize <= 0 || c.AddressSpace < c.ReqSize {
		return fmt.Errorf("workload: bad sizes: req %d space %d", c.ReqSize, c.AddressSpace)
	}
	if c.ReadFrac < 0 || c.ReadFrac > 1 || c.SeqProb < 0 || c.SeqProb > 1 || c.PriorityFrac < 0 || c.PriorityFrac > 1 {
		return fmt.Errorf("workload: fractions out of [0,1]")
	}
	if c.InterarrivalHi < c.InterarrivalLo {
		return fmt.Errorf("workload: inter-arrival hi < lo")
	}
	if c.Align == 0 {
		c.Align = c.ReqSize
	}
	if c.Align < 0 {
		return fmt.Errorf("workload: negative alignment")
	}
	return nil
}

// Synthetic returns the stream, generating one operation per pull.
func Synthetic(cfg SyntheticConfig) (trace.Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(cfg.Seed)
	slots := (cfg.AddressSpace - cfg.ReqSize) / cfg.Align
	if slots <= 0 {
		slots = 1
	}
	var at sim.Time
	var lastEnd int64
	i := 0
	return trace.Func(func() (trace.Op, bool) {
		if i >= cfg.Ops {
			return trace.Op{}, false
		}
		var off int64
		if i > 0 && rng.Bool(cfg.SeqProb) && lastEnd+cfg.ReqSize <= cfg.AddressSpace {
			off = lastEnd
		} else {
			off = rng.Int63n(slots) * cfg.Align
		}
		i++
		kind := trace.Write
		if rng.Bool(cfg.ReadFrac) {
			kind = trace.Read
		}
		op := trace.Op{
			At:       at,
			Kind:     kind,
			Offset:   off,
			Size:     cfg.ReqSize,
			Priority: rng.Bool(cfg.PriorityFrac),
		}
		lastEnd = op.End()
		at += rng.UniformDuration(cfg.InterarrivalLo, cfg.InterarrivalHi)
		return op, true
	}), nil
}

// SyntheticOps materializes the stream: the legacy slice API.
func SyntheticOps(cfg SyntheticConfig) ([]trace.Op, error) {
	s, err := Synthetic(cfg)
	if err != nil {
		return nil, err
	}
	return trace.Collect(s), nil
}

// SequentialWrites streams n back-to-back writes of the given size
// walking the address space from offset 0, wrapping at space. Used for
// the Figure 2 write-amplification sweep.
func SequentialWrites(n int, size, space int64) trace.Stream {
	var off int64
	i := 0
	return trace.Func(func() (trace.Op, bool) {
		if i >= n {
			return trace.Op{}, false
		}
		i++
		if off+size > space {
			off = 0
		}
		op := trace.Op{Kind: trace.Write, Offset: off, Size: size}
		off += size
		return op, true
	})
}

// SequentialWritesOps materializes SequentialWrites.
func SequentialWritesOps(n int, size, space int64) []trace.Op {
	return trace.Collect(SequentialWrites(n, size, space))
}
