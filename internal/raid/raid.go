// Package raid models a RAID-5 array over the hdd disk model, for the
// RAID column of the paper's Table 1. Two properties matter there: small
// writes are amplified by the parity read-modify-write (term 4 fails,
// "write ampliﬁcation ... happens on RAID arrays that need to update
// parity blocks"), and striping decouples logical distance from seek
// distance (term 2 fails — two far-apart LBNs usually live on different
// spindles whose heads stay put).
package raid

import (
	"fmt"

	"ossd/internal/hdd"
	"ossd/internal/sim"
	"ossd/internal/stats"
	"ossd/internal/trace"
)

// Config describes the array.
type Config struct {
	// Disks is the number of spindles (data + rotating parity). Minimum 3.
	Disks int
	// Disk is the per-spindle configuration.
	Disk hdd.Config
	// StripeUnitBytes is the per-disk chunk size (default 64 KiB).
	StripeUnitBytes int64
}

// Validate checks and fills defaults.
func (c *Config) Validate() error {
	if c.Disks < 3 {
		return fmt.Errorf("raid: RAID-5 needs at least 3 disks, got %d", c.Disks)
	}
	if c.StripeUnitBytes == 0 {
		c.StripeUnitBytes = 64 << 10
	}
	if c.StripeUnitBytes <= 0 {
		return fmt.Errorf("raid: bad stripe unit %d", c.StripeUnitBytes)
	}
	return c.Disk.Validate()
}

// Metrics accumulates array-level measurements.
type Metrics struct {
	Completed               int64
	ReadResp, WriteResp     stats.Histogram // milliseconds
	BytesRead, BytesWritten int64           // host bytes
	// DiskBytesRead/Written count spindle-level traffic, including parity
	// and read-modify-write; DiskBytesWritten/BytesWritten is the array's
	// write amplification.
	DiskBytesRead, DiskBytesWritten int64
	// Tenants breaks completed host transfers down per tenant class.
	Tenants stats.TenantSet
}

// Request mirrors the device request lifecycle.
type Request struct {
	Op                  trace.Op
	Arrive, Start, Done sim.Time
	onDone              func(*Request)
}

// Response returns completion minus arrival.
func (r *Request) Response() sim.Time { return r.Done - r.Arrive }

// Array is the RAID-5 device.
type Array struct {
	cfg   Config
	eng   *sim.Engine
	disks []*hdd.Disk
	met   Metrics
}

// New builds the array on one engine.
func New(eng *sim.Engine, cfg Config) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Array{cfg: cfg, eng: eng}
	for i := 0; i < cfg.Disks; i++ {
		d, err := hdd.New(eng, cfg.Disk)
		if err != nil {
			return nil, err
		}
		a.disks = append(a.disks, d)
	}
	return a, nil
}

// Engine returns the driving engine.
func (a *Array) Engine() *sim.Engine { return a.eng }

// LogicalBytes is the data capacity: (N-1)/N of the raw space.
func (a *Array) LogicalBytes() int64 {
	perDisk := a.cfg.Disk.CapacityBytes / a.cfg.StripeUnitBytes * a.cfg.StripeUnitBytes
	return perDisk * int64(a.cfg.Disks-1)
}

// Metrics returns a snapshot.
func (a *Array) Metrics() Metrics { return a.met }

// QueueDepth reports spindle-level operations waiting for dispatch,
// summed over the array (the array itself holds no queue: decomposed
// sub-operations queue on their disks).
func (a *Array) QueueDepth() int {
	depth := 0
	for _, d := range a.disks {
		depth += d.QueueDepth()
	}
	return depth
}

// locate maps a logical stripe unit to (disk, per-disk offset) with
// left-symmetric rotating parity.
func (a *Array) locate(unit int64) (disk int, diskOff int64, parityDisk int) {
	n := int64(a.cfg.Disks)
	row := unit / (n - 1)
	col := unit % (n - 1)
	parityDisk = int(row % n)
	d := int(col)
	if d >= parityDisk {
		d++
	}
	return d, row * a.cfg.StripeUnitBytes, parityDisk
}

// subOp is one spindle-level operation of a decomposed request.
type subOp struct {
	disk int
	op   trace.Op
}

// plan decomposes a host request into spindle operations. Reads touch
// only the covering data units; writes add the parity read-modify-write
// (read old data + old parity, write new data + new parity) per touched
// unit, or skip the reads when a whole row is overwritten.
func (a *Array) plan(op trace.Op) []subOp {
	u := a.cfg.StripeUnitBytes
	n := int64(a.cfg.Disks)
	end := op.End()
	var subs []subOp
	// Group touched units by row so full-row writes skip the RMW reads.
	firstUnit := op.Offset / u
	lastUnit := (end - 1) / u
	for row := firstUnit / (n - 1); row <= lastUnit/(n-1); row++ {
		rowStart := row * (n - 1) * u
		rowEnd := rowStart + (n-1)*u
		lo, hi := op.Offset, end
		if lo < rowStart {
			lo = rowStart
		}
		if hi > rowEnd {
			hi = rowEnd
		}
		if lo >= hi {
			continue
		}
		fullRow := lo == rowStart && hi == rowEnd
		diskOff := row * u
		_, _, parity := a.locate(row * (n - 1))
		for unit := lo / u; unit*u < hi; unit++ {
			d, dOff, _ := a.locate(unit)
			uLo, uHi := lo, hi
			if s := unit * u; uLo < s {
				uLo = s
			}
			if e := (unit + 1) * u; uHi > e {
				uHi = e
			}
			inner := uLo - unit*u
			size := uHi - uLo
			switch op.Kind {
			case trace.Read:
				subs = append(subs, subOp{d, trace.Op{Kind: trace.Read, Offset: dOff + inner, Size: size}})
			case trace.Write:
				if !fullRow {
					// Parity RMW: read old data and old parity, then
					// write both back.
					subs = append(subs, subOp{d, trace.Op{Kind: trace.Read, Offset: dOff + inner, Size: size}})
					subs = append(subs, subOp{parity, trace.Op{Kind: trace.Read, Offset: diskOff + inner, Size: size}})
					subs = append(subs, subOp{parity, trace.Op{Kind: trace.Write, Offset: diskOff + inner, Size: size}})
				}
				subs = append(subs, subOp{d, trace.Op{Kind: trace.Write, Offset: dOff + inner, Size: size}})
			}
		}
		if op.Kind == trace.Write && fullRow {
			// One parity write covers the whole row unit.
			subs = append(subs, subOp{parity, trace.Op{Kind: trace.Write, Offset: diskOff, Size: u}})
		}
	}
	return subs
}

// Submit enqueues a host request; onDone fires when every spindle
// operation completes. Frees are no-ops (disks have no TRIM here).
func (a *Array) Submit(op trace.Op, onDone func(*Request)) error {
	if err := op.Validate(); err != nil {
		return err
	}
	if op.End() > a.LogicalBytes() {
		return fmt.Errorf("raid: request [%d, +%d) beyond capacity", op.Offset, op.Size)
	}
	req := &Request{Op: op, Arrive: a.eng.Now(), onDone: onDone}
	if op.Kind == trace.Free {
		a.finish(req)
		return nil
	}
	subs := a.plan(op)
	if len(subs) == 0 {
		a.finish(req)
		return nil
	}
	// Spindle sub-ops inherit the host op's tenant so the disks'
	// per-tenant queues and metrics attribute the derived traffic
	// (including parity read-modify-write) to the tenant that caused it.
	for i := range subs {
		subs[i].op.Tenant = op.Tenant
	}
	left := len(subs)
	for _, s := range subs {
		switch s.op.Kind {
		case trace.Read:
			a.met.DiskBytesRead += s.op.Size
		case trace.Write:
			a.met.DiskBytesWritten += s.op.Size
		}
		err := a.disks[s.disk].Submit(s.op, func(*hdd.Request) {
			left--
			if left == 0 {
				a.finish(req)
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func (a *Array) finish(req *Request) {
	req.Done = a.eng.Now()
	a.met.Completed++
	ms := req.Response().Millis()
	switch req.Op.Kind {
	case trace.Read:
		a.met.ReadResp.Add(ms)
		a.met.BytesRead += req.Op.Size
		a.met.Tenants.Record(req.Op.Tenant, false, req.Op.Size, ms)
	case trace.Write:
		a.met.WriteResp.Add(ms)
		a.met.BytesWritten += req.Op.Size
		a.met.Tenants.Record(req.Op.Tenant, true, req.Op.Size, ms)
	}
	if req.onDone != nil {
		req.onDone(req)
	}
}

// Play replays a timestamped trace to completion.
func (a *Array) Play(ops []trace.Op) error {
	var firstErr error
	for _, op := range ops {
		op := op
		a.eng.At(op.At, func() {
			if err := a.Submit(op, nil); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	a.eng.Run()
	return firstErr
}

// ClosedLoop keeps depth requests outstanding from gen.
func (a *Array) ClosedLoop(depth int, gen func(i int) (trace.Op, bool)) error {
	if depth <= 0 {
		depth = 1
	}
	var firstErr error
	i := 0
	var issue func()
	issue = func() {
		op, ok := gen(i)
		if !ok {
			return
		}
		i++
		if err := a.Submit(op, func(*Request) { issue() }); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for k := 0; k < depth; k++ {
		issue()
	}
	a.eng.Run()
	return firstErr
}

// WriteAmplification reports spindle write bytes per host write byte.
func (a *Array) WriteAmplification() float64 {
	if a.met.BytesWritten == 0 {
		return 0
	}
	return float64(a.met.DiskBytesWritten) / float64(a.met.BytesWritten)
}
