package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"testing"

	"ossd/internal/core"
	"ossd/internal/experiments"
	"ossd/internal/runner"
)

// reportGoldens pins the SHA-256 of the full text report for fixed
// seeds. They were captured from the pre-indexed-scheduler build (PR 3
// tree) and must survive any refactor that claims behavioral
// equivalence; a PR that deliberately changes simulated behavior or
// report formatting updates them alongside the change.
var reportGoldens = map[int64]string{
	1: "a12634dcde61a820ce5b3e1e367c63b9e9f00259f5a0e42e702d618d3b5b50eb",
	7: "d9ecdd34d0972bd19df170af080bb45a83e961e53d29c693592718a9a8a9e44d",
}

// reportBytes regenerates the full text report exactly as `repro -seed
// N` writes it to its output.
func reportBytes(t *testing.T, seed int64) []byte {
	t.Helper()
	selected := experiments.Catalog()
	specs := make([]runner.Spec[experiments.Result], len(selected))
	for i, e := range selected {
		e := e
		specs[i] = runner.Spec[experiments.Result]{
			Name: e.ID,
			Seed: seed,
			Run:  func() (experiments.Result, error) { return e.Run(seed, 1) },
		}
	}
	outcomes := runner.RunAll(specs, runner.Options{Workers: runner.DefaultWorkers()})
	var buf bytes.Buffer
	if failed := writeText(&buf, seed, selected, outcomes); failed {
		t.Fatalf("seed %d: an experiment failed:\n%s", seed, buf.String())
	}
	return buf.Bytes()
}

// TestReportByteIdentity regenerates the whole evaluation for seeds 1
// and 7 and requires the report bytes to hash to the recorded goldens.
// The full suite takes about a minute per seed, so the test only runs
// when REPRO_GOLDEN is set (CI sets it; see .github/workflows/ci.yml).
// It runs the suite at shard counts 1, 2, and 4 against the same pinned
// hashes: the parallel dataplane's contract is that sharding never
// changes a report byte.
func TestReportByteIdentity(t *testing.T) {
	if os.Getenv("REPRO_GOLDEN") == "" {
		t.Skip("set REPRO_GOLDEN=1 to run the full-report byte-identity check (~2 min)")
	}
	for _, shards := range []int{1, 2, 4} {
		prev := core.SetDefaultShards(shards)
		for seed, want := range reportGoldens {
			sum := sha256.Sum256(reportBytes(t, seed))
			if got := hex.EncodeToString(sum[:]); got != want {
				t.Errorf("seed %d shards %d: report sha256 = %s, want %s (the simulation's observable behavior changed)", seed, shards, got, want)
			}
		}
		core.SetDefaultShards(prev)
	}
}
