package simsvc

import (
	"time"
)

// flight is one in-progress computation of a cache identity. The first
// job to miss the cache for a key becomes the flight's primary and runs
// the simulation; every identical spec submitted while it is in flight
// — a concurrent POST from another client, an overlapping campaign
// cell, a peer's GET /cache/{key}?wait=1 landing as a SubmitLocal —
// attaches as a waiter instead of burning a worker. When the primary
// resolves, every waiter receives the byte-identical payload and counts
// as a cache hit: within one node and across the fleet, N concurrent
// identical requests cost exactly one simulation.
type flight struct {
	waiters []*Job
}

// joinOrStartFlight is the submit-time cache/single-flight gate, run
// under flightMu so the three outcomes are atomic against resolution:
//
//   - the cache has the identity → complete the job now ("local" hit);
//   - a flight is computing it → attach as a waiter ("coalesced");
//   - neither → register a new flight; the caller runs the primary.
//
// It reports whether the job became the primary (the caller must
// guarantee resolveFlight runs on every terminal path).
func (m *Manager) joinOrStartFlight(job *Job) (primary, settled bool) {
	m.flightMu.Lock()
	if payload, ok := m.cache.get(job.key, job.identity); ok {
		m.flightMu.Unlock()
		m.completeCached(job, payload, "local")
		return false, true
	}
	if f, ok := m.flights[job.key]; ok {
		f.waiters = append(f.waiters, job)
		m.flightMu.Unlock()
		m.coalesced.Add(1)
		return false, false
	}
	m.flights[job.key] = &flight{}
	m.flightMu.Unlock()
	return true, false
}

// resolveFlight settles a key's flight: the payload (nil on failure) is
// delivered to every waiter. The caller has already stored a successful
// payload in the cache, so the unregister-then-deliver order closes the
// race with joinOrStartFlight — a submit that misses the flight map
// afterwards finds the cache populated instead.
func (m *Manager) resolveFlight(key uint64, payload []byte, err error) {
	m.flightMu.Lock()
	f, ok := m.flights[key]
	if ok {
		delete(m.flights, key)
	}
	m.flightMu.Unlock()
	if !ok {
		return
	}
	for _, w := range f.waiters {
		if payload != nil {
			m.completeCached(w, payload, "coalesced")
		} else {
			m.failWaiter(w, err)
		}
	}
}

// completeCached finishes a job with a memoized payload — a local cache
// hit at submit, a coalesced single-flight waiter, or a peer fetch.
// Cached completions are terminal without ever simulating, so they
// never feed the run-duration aggregate. Jobs already terminal (a
// cancelled waiter) are left alone.
func (m *Manager) completeCached(job *Job, payload []byte, source string) {
	job.mu.Lock()
	if job.status.terminal() {
		job.mu.Unlock()
		return
	}
	job.cached = true
	job.cacheSource = source
	job.result = payload
	job.status = StatusDone
	job.finished = time.Now()
	job.cond.Broadcast()
	job.mu.Unlock()
	m.completed.Add(1)
	m.tenantAdd(job.Spec.Tenant, func(c *tenantCounter) { c.completed++ })
}

// failWaiter fails a coalesced waiter with its primary's error (no-op
// if the waiter is already terminal, e.g. individually cancelled).
func (m *Manager) failWaiter(job *Job, err error) {
	job.mu.Lock()
	if job.status.terminal() {
		job.mu.Unlock()
		return
	}
	job.status = StatusFailed
	if err != nil {
		job.errMsg = err.Error()
	} else {
		job.errMsg = "simsvc: single-flight primary failed"
	}
	job.finished = time.Now()
	job.cond.Broadcast()
	job.mu.Unlock()
	m.failed.Add(1)
	m.tenantAdd(job.Spec.Tenant, func(c *tenantCounter) { c.failed++ })
}
