package experiments

import (
	"ossd/internal/core"
	"ossd/internal/runner"
	"ossd/internal/stats"
	"ossd/internal/trace"
)

// Table2Row is one device's seq/rand characterization.
type Table2Row struct {
	Device     string
	SeqRead    float64
	RandRead   float64
	ReadRatio  float64
	SeqWrite   float64
	RandWrite  float64
	WriteRatio float64
}

// Table2Result reproduces Table 2: "Ratio of Sequential to Random
// Bandwidth" for the HDD baseline and the five SSD profiles.
type Table2Result struct {
	Rows []Table2Row
}

// ID implements Result.
func (Table2Result) ID() string { return "table2" }

// Table renders the result.
func (r Table2Result) Table() *stats.Table {
	t := stats.NewTable(
		"Table 2: Ratio of Sequential to Random Bandwidth (MB/s)",
		"Device", "SeqRead", "RandRead", "Ratio", "SeqWrite", "RandWrite", "Ratio",
	)
	for _, row := range r.Rows {
		t.AddRow(row.Device, row.SeqRead, row.RandRead, row.ReadRatio,
			row.SeqWrite, row.RandWrite, row.WriteRatio)
	}
	t.AddNote("HDD seq/rand gap is two orders of magnitude; SSD read gaps are small;")
	t.AddNote("full-stripe SSDs (S2, S3) have random-write bandwidth below the HDD's.")
	return t
}

func (r Table2Result) String() string { return r.Table().String() }

// Table2Options tunes the measurement volume.
type Table2Options struct {
	// BytesPerTest bounds each measurement (default 32 MB).
	BytesPerTest int64
	// RandBytesPerTest bounds the random tests separately (default 4 MB:
	// random tests on slow devices dominate wall time).
	RandBytesPerTest int64
	// Seed drives the random patterns.
	Seed int64
	// Profiles overrides the device set (default core.Profiles()).
	Profiles []core.Profile
	// Workers caps the worker pool (0 = runner default).
	Workers int
}

func (o *Table2Options) defaults() {
	if o.BytesPerTest == 0 {
		o.BytesPerTest = 32 << 20
	}
	if o.RandBytesPerTest == 0 {
		o.RandBytesPerTest = 4 << 20
	}
	if o.Profiles == nil {
		o.Profiles = core.Profiles()
	}
}

// Table2 runs the four measurements per profile, each on a fresh,
// preconditioned device. Every (profile, test) cell is one spec, so the
// whole table fans out across the worker pool.
func Table2(opts Table2Options) (Table2Result, error) {
	opts.defaults()
	var res Table2Result
	type test struct {
		label   string
		kind    trace.Kind
		pattern core.Pattern
		req     int64
		depth   int
		total   int64
	}
	var specs []runner.Spec[float64]
	for _, p := range opts.Profiles {
		p := p
		tests := []test{
			{"seqread", trace.Read, core.Sequential, p.SeqReqBytes, p.SeqReadDepth, opts.BytesPerTest},
			{"randread", trace.Read, core.Random, p.RandReqBytes, p.RandReadDepth, opts.RandBytesPerTest},
			{"seqwrite", trace.Write, core.Sequential, p.SeqReqBytes, p.SeqWriteDepth, opts.BytesPerTest},
			{"randwrite", trace.Write, core.Random, p.RandReqBytes, p.RandWriteDepth, opts.RandBytesPerTest},
		}
		for _, tc := range tests {
			tc := tc
			specs = append(specs, runner.Spec[float64]{
				Name:    p.Name + "/" + tc.label,
				Profile: p.Name,
				Seed:    opts.Seed,
				Run: func() (float64, error) {
					d, err := preconditioned(p)
					if err != nil {
						return 0, err
					}
					total := tc.total
					if total < tc.req {
						total = tc.req
					}
					return core.MeasureBandwidth(d, core.BWOptions{
						Kind:       tc.kind,
						Pattern:    tc.pattern,
						ReqBytes:   tc.req,
						TotalBytes: total,
						Depth:      tc.depth,
						Seed:       opts.Seed + 1,
					})
				},
			})
		}
	}
	bws, err := runner.Run(specs, runner.Options{Workers: opts.Workers})
	if err != nil {
		return res, err
	}
	for i, p := range opts.Profiles {
		row := Table2Row{
			Device:    p.Name,
			SeqRead:   bws[i*4],
			RandRead:  bws[i*4+1],
			SeqWrite:  bws[i*4+2],
			RandWrite: bws[i*4+3],
		}
		row.ReadRatio = stats.Ratio(row.SeqRead, row.RandRead)
		row.WriteRatio = stats.Ratio(row.SeqWrite, row.RandWrite)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
