package simsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"ossd/internal/trace"
)

// tenantSpec is smallSpec made multi-tenant: the workload splits across
// two tenant classes with distinct seeds so each contributes real ops.
func tenantSpec(ops int, seed int64, w1, w2 float64) JobSpec {
	spec := smallSpec(ops, seed)
	p1, p2 := spec.Params, spec.Params
	p1.Seed = seed
	p2.Seed = seed + 1
	spec.Tenants = []TenantSpec{
		{Tenant: 1, Params: &p1, Weight: w1},
		{Tenant: 2, Params: &p2, Weight: w2},
	}
	return spec
}

// TestTenantJobSnapshot drives a weighted two-tenant job end to end and
// checks the result carries per-tenant sub-snapshots that sum to the
// device totals.
func TestTenantJobSnapshot(t *testing.T) {
	m := New(Options{Workers: 1, SampleEvery: 1000})
	defer m.Close()

	job, err := m.Submit(tenantSpec(40_000, 1, 1, 8))
	if err != nil {
		t.Fatal(err)
	}
	view, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusDone {
		t.Fatalf("status %s (error %q), want done", view.Status, view.Error)
	}
	var res Result
	if err := json.Unmarshal(view.Result, &res); err != nil {
		t.Fatal(err)
	}
	snap := res.Snapshot
	if len(snap.Tenants) != 2 || snap.Tenants[0].Tenant != 1 || snap.Tenants[1].Tenant != 2 {
		t.Fatalf("tenant sub-snapshots: %+v", snap.Tenants)
	}
	var ops, bytesTotal int64
	for _, ts := range snap.Tenants {
		if ts.Reads+ts.Writes == 0 {
			t.Errorf("tenant %d drove no ops", ts.Tenant)
		}
		if ts.P99ReadMs < ts.P50ReadMs {
			t.Errorf("tenant %d: implausible percentiles %+v", ts.Tenant, ts)
		}
		ops += ts.Reads + ts.Writes
		bytesTotal += ts.BytesRead + ts.BytesWritten
	}
	if ops != snap.Completed-snap.Frees {
		t.Errorf("tenant ops %d != completed-frees %d", ops, snap.Completed-snap.Frees)
	}
	if bytesTotal != snap.BytesRead+snap.BytesWritten {
		t.Errorf("tenant bytes %d != device bytes %d", bytesTotal, snap.BytesRead+snap.BytesWritten)
	}
}

// TestTenantSpecValidate pins the tenancy validation rules: weighted
// mixes need a queue-scheduling device (flash), duplicate and zero
// tenant IDs are rejected, unweighted mixes run anywhere.
func TestTenantSpecValidate(t *testing.T) {
	weightedHDD := tenantSpec(1000, 1, 1, 4)
	weightedHDD.Profile = "hdd"
	if err := weightedHDD.Validate(); err == nil {
		t.Error("weighted tenants on hdd passed validation")
	}
	unweightedHDD := tenantSpec(1000, 1, 0, 0)
	unweightedHDD.Profile = "hdd"
	if err := unweightedHDD.Validate(); err != nil {
		t.Errorf("unweighted tenants on hdd rejected: %v", err)
	}
	dup := tenantSpec(1000, 1, 1, 1)
	dup.Tenants[1].Tenant = 1
	if err := dup.Validate(); err == nil {
		t.Error("duplicate tenant ID passed validation")
	}
	zero := tenantSpec(1000, 1, 1, 1)
	zero.Tenants[0].Tenant = 0
	if err := zero.Validate(); err == nil {
		t.Error("tenant 0 in the mix passed validation")
	}
	badMod := tenantSpec(1000, 1, 1, 1)
	badMod.Tenants[0].Modulation = &trace.Modulation{Kind: "bogus"}
	if err := badMod.Validate(); err == nil {
		t.Error("bad modulation passed validation")
	}
}

// TestTenantCacheIdentity pins what tenancy does to the cache key: the
// submitting principal (JobSpec.Tenant) is an execution attribute and
// must not fragment the cache, while the tenant mix (JobSpec.Tenants)
// changes the simulated workload and must.
func TestTenantCacheIdentity(t *testing.T) {
	a := smallSpec(1000, 1)
	b := smallSpec(1000, 1)
	b.Tenant = 9
	if a.Key() != b.Key() {
		t.Error("submitting tenant fragments the cache key")
	}
	c := tenantSpec(1000, 1, 1, 1)
	d := tenantSpec(1000, 1, 1, 4)
	if c.Key() == a.Key() {
		t.Error("tenant mix does not change the cache key")
	}
	if c.Key() == d.Key() {
		t.Error("tenant weights do not change the cache key")
	}
}

// TestTenantQuota exercises the in-flight quota: with one worker and a
// quota of 1, a tenant's second concurrent job is refused with
// ErrTenantQuota (HTTP 429), and admission reopens once the first job
// is terminal. Tenants without quotas are unaffected.
func TestTenantQuota(t *testing.T) {
	m := New(Options{Workers: 1, SampleEvery: 1000, TenantQuotas: map[uint8]int{7: 1}})
	defer m.Close()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	long := smallSpec(400_000, 42)
	long.Tenant = 7
	first, err := m.Submit(long)
	if err != nil {
		t.Fatal(err)
	}

	over := smallSpec(1000, 43)
	over.Tenant = 7
	if _, err := m.Submit(over); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("second in-flight job: err %v, want ErrTenantQuota", err)
	}
	// Over HTTP the rejection is 429 Too Many Requests.
	body, _ := json.Marshal(over)
	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota rejection over HTTP: %d, want 429", resp.StatusCode)
	}
	// Another tenant (and the untenanted default) are not quotaed.
	other := smallSpec(1000, 44)
	other.Tenant = 8
	if _, err := m.Submit(other); err != nil {
		t.Fatalf("unquotaed tenant refused: %v", err)
	}
	if _, err := m.Submit(smallSpec(1000, 45)); err != nil {
		t.Fatalf("untenanted submit refused: %v", err)
	}

	if _, err := first.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Quota frees with the terminal transition: same spec resubmits as a
	// cache hit and even a fresh simulation is admitted again.
	if _, err := m.Submit(over); err != nil {
		t.Fatalf("post-completion submit refused: %v", err)
	}

	st := m.Stats()
	var t7 *TenantJobStats
	for i := range st.Tenants {
		if st.Tenants[i].Tenant == 7 {
			t7 = &st.Tenants[i]
		}
	}
	if t7 == nil {
		t.Fatalf("tenant 7 missing from stats: %+v", st.Tenants)
	}
	// One manager rejection + one HTTP rejection; the echo of the
	// configured quota rides along.
	if t7.QuotaRejected != 2 || t7.Quota != 1 {
		t.Errorf("tenant 7 stats: %+v, want quota_rejected=2 quota=1", t7)
	}
	if t7.Submitted < 2 {
		t.Errorf("tenant 7 submitted %d, want >= 2", t7.Submitted)
	}
}

// TestTenantStatsCounters checks the /statsz per-tenant counters track
// terminal outcomes and that untenanted traffic stays out of the view.
func TestTenantStatsCounters(t *testing.T) {
	m := New(Options{Workers: 2, SampleEvery: 1000})
	defer m.Close()

	if st := m.Stats(); st.Tenants != nil {
		t.Fatalf("fresh manager has tenant stats: %+v", st.Tenants)
	}
	// Untenanted jobs never create entries.
	job, err := m.Submit(smallSpec(1000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Tenants != nil {
		t.Fatalf("untenanted job created tenant stats: %+v", st.Tenants)
	}

	spec := smallSpec(1000, 2)
	spec.Tenant = 3
	job, err = m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A cache hit is a completion for its submitting tenant too.
	spec.Tenant = 3
	hit, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := hit.Wait(context.Background()); !v.Cached {
		t.Fatalf("resubmit was not a cache hit: %+v", v)
	}

	st := m.Stats()
	if len(st.Tenants) != 1 || st.Tenants[0].Tenant != 3 {
		t.Fatalf("tenant stats: %+v", st.Tenants)
	}
	got := st.Tenants[0]
	if got.Submitted != 2 || got.Completed != 2 || got.Failed != 0 || got.InFlight != 0 {
		t.Errorf("tenant 3 counters: %+v", got)
	}
}

// TestTenantStreamDeterminism pins that the merged multi-tenant stream
// is a pure function of the spec: two identical weighted jobs produce
// byte-identical results even when simulated fresh (no cache).
func TestTenantStreamDeterminism(t *testing.T) {
	spec := tenantSpec(20_000, 7, 2, 1)
	spec.Tenants[1].Workload = "synthetic"
	spec.Tenants[1].Modulation = &trace.Modulation{Kind: "bursty", Rate: 4, Period: 10_000_000, Duty: 0.25}

	run := func() []byte {
		m := New(Options{Workers: 1, SampleEvery: 1000})
		defer m.Close()
		job, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		view, err := job.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if view.Status != StatusDone {
			t.Fatalf("status %s: %s", view.Status, view.Error)
		}
		return view.Result
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatal("identical multi-tenant specs produced different payloads")
	}
}
