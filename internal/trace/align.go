package trace

import (
	"fmt"

	"ossd/internal/sim"
)

// Aligner implements the write merging-and-alignment scheme of §3.4: it
// buffers contiguous writes and re-issues them split on stripe (logical
// page) boundaries, so that full stripes reach the device as single
// aligned writes and never trigger read-modify-write amplification.
//
// The scheme is exactly what the paper argues the *device* should do
// (because the file system cannot know the stripe size); implementing it
// as a trace transformation lets the experiments compare "issue writes as
// they arrive" against "merge and align" on identical workloads.
type Aligner struct {
	stripe int64
	opts   AlignOptions

	// pending is the coalescing buffer: a single contiguous dirty range.
	// Emitted ops carry the arrival time of the write that completed
	// them: buffered data sits until a later write fills the stripe or
	// forces a flush, exactly like a hardware write buffer.
	pendingValid bool
	pendingLast  int64 // arrival of the most recent merged write (ns)
	pendingPri   bool
	pendingOff   int64
	pendingEnd   int64

	out []Op
}

// AlignOptions bound how aggressively the buffer merges, modeling a real
// write buffer rather than an oracle with unbounded hold time.
type AlignOptions struct {
	// MaxGap flushes the buffer when the next write arrives more than
	// this long after the previous buffered write (a buffer hold
	// timeout). Zero means unbounded.
	MaxGap sim.Time
	// ReadBarrier flushes the buffer on every read, overlapping or not —
	// the conservative ordering a simple device firmware would enforce.
	ReadBarrier bool
}

// NewAligner creates an aligner for the given stripe size in bytes.
func NewAligner(stripe int64) (*Aligner, error) {
	return NewAlignerOpts(stripe, AlignOptions{})
}

// NewAlignerOpts creates an aligner with merge bounds.
func NewAlignerOpts(stripe int64, opts AlignOptions) (*Aligner, error) {
	if stripe <= 0 {
		return nil, fmt.Errorf("trace: stripe must be positive, got %d", stripe)
	}
	return &Aligner{stripe: stripe, opts: opts}, nil
}

// Align transforms a whole trace: writes are merged and split on stripe
// boundaries; reads and frees flush any overlapping buffered write first
// and pass through unchanged.
func Align(ops []Op, stripe int64) ([]Op, error) {
	return AlignWith(ops, stripe, AlignOptions{})
}

// AlignWith is Align with explicit merge bounds.
func AlignWith(ops []Op, stripe int64, opts AlignOptions) ([]Op, error) {
	a, err := NewAlignerOpts(stripe, opts)
	if err != nil {
		return nil, err
	}
	for _, o := range ops {
		if err := a.Push(o); err != nil {
			return nil, err
		}
	}
	return a.Finish(), nil
}

// Push feeds one operation through the aligner.
func (a *Aligner) Push(o Op) error {
	if err := o.Validate(); err != nil {
		return err
	}
	switch o.Kind {
	case Write:
		a.pushWrite(o)
	default:
		// A read or free that touches the buffered range must observe the
		// buffered data: flush first. With ReadBarrier, any read flushes.
		overlap := a.pendingValid && o.overlaps(a.pendingOff, a.pendingEnd-a.pendingOff)
		if overlap || (a.opts.ReadBarrier && o.Kind == Read) {
			a.flush()
		}
		a.out = append(a.out, o)
	}
	return nil
}

func (a *Aligner) pushWrite(o Op) {
	if a.pendingValid && a.opts.MaxGap > 0 && int64(o.At)-a.pendingLast > int64(a.opts.MaxGap) {
		// Buffer hold timeout expired before this write arrived.
		a.flush()
	}
	if a.pendingValid && o.Offset == a.pendingEnd && o.Priority == a.pendingPri {
		// Contiguous continuation: extend the buffer.
		a.pendingEnd = o.End()
		a.pendingLast = int64(o.At)
	} else if a.pendingValid && o.overlaps(a.pendingOff, a.pendingEnd-a.pendingOff) {
		// Overlapping rewrite: flush, then start fresh.
		a.flush()
		a.open(o)
	} else if a.pendingValid {
		// Discontiguous: the run ended; flush and start a new one.
		a.flush()
		a.open(o)
	} else {
		a.open(o)
	}
	// Emit any complete stripes eagerly so the buffer holds less than one
	// stripe; this bounds buffering and keeps issue order close to
	// arrival order.
	a.drainFullStripes()
}

func (a *Aligner) open(o Op) {
	a.pendingValid = true
	a.pendingLast = int64(o.At)
	a.pendingPri = o.Priority
	a.pendingOff = o.Offset
	a.pendingEnd = o.End()
}

// drainFullStripes emits every fully-covered, stripe-aligned chunk of the
// pending range as one aligned write each.
func (a *Aligner) drainFullStripes() {
	if !a.pendingValid {
		return
	}
	first := (a.pendingOff + a.stripe - 1) / a.stripe * a.stripe // round up
	for first+a.stripe <= a.pendingEnd {
		// Any unaligned head before the first full stripe must be issued
		// (in order) before the aligned body.
		if a.pendingOff < first {
			a.emit(a.pendingOff, first-a.pendingOff)
			a.pendingOff = first
		}
		a.emit(first, a.stripe)
		a.pendingOff = first + a.stripe
		first += a.stripe
	}
	if a.pendingOff >= a.pendingEnd {
		a.pendingValid = false
	}
}

func (a *Aligner) emit(off, size int64) {
	a.out = append(a.out, Op{
		At:       sim.Time(a.pendingLast),
		Kind:     Write,
		Offset:   off,
		Size:     size,
		Priority: a.pendingPri,
	})
}

// flush emits whatever remains in the buffer, split at stripe boundaries
// (the head and tail may be partial).
func (a *Aligner) flush() {
	if !a.pendingValid {
		return
	}
	off := a.pendingOff
	for off < a.pendingEnd {
		next := (off/a.stripe + 1) * a.stripe
		if next > a.pendingEnd {
			next = a.pendingEnd
		}
		a.emit(off, next-off)
		off = next
	}
	a.pendingValid = false
}

// Finish flushes the buffer and returns the transformed trace. The
// aligner is reusable afterwards.
func (a *Aligner) Finish() []Op {
	a.flush()
	return a.take()
}

// take hands the accumulated output to the caller and resets it.
func (a *Aligner) take() []Op {
	out := a.out
	a.out = nil
	return out
}

// alignStream runs an Aligner incrementally over a source stream. The
// only state beyond the source is the aligner's single pending range and
// the handful of ops the last push emitted.
type alignStream struct {
	src  Stream
	a    *Aligner
	buf  []Op
	pos  int
	err  error
	done bool
}

func (s *alignStream) Err() error {
	if s.err != nil {
		return s.err
	}
	return Err(s.src)
}

func (s *alignStream) Next() (Op, bool) {
	for {
		if s.pos < len(s.buf) {
			op := s.buf[s.pos]
			s.pos++
			return op, true
		}
		if s.done {
			return Op{}, false
		}
		s.pos = 0
		op, ok := s.src.Next()
		if !ok {
			s.done = true
			if Err(s.src) != nil {
				// The source failed mid-stream: discard the buffered
				// writes rather than emitting them as a clean ending.
				s.buf = nil
				return Op{}, false
			}
			s.buf = s.a.Finish()
			continue
		}
		if err := s.a.Push(op); err != nil {
			s.err = err
			s.done = true
			s.buf = nil
			return Op{}, false
		}
		s.buf = s.a.take()
	}
}

// AlignStream applies the merge-and-align pass to a stream, emitting
// transformed operations as soon as the buffer releases them — the
// paper's in-device write buffer as a stream combinator.
func AlignStream(s Stream, stripe int64, opts AlignOptions) (Stream, error) {
	a, err := NewAlignerOpts(stripe, opts)
	if err != nil {
		return nil, err
	}
	return &alignStream{src: s, a: a}, nil
}
