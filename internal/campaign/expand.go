// Package campaign makes parameter sweeps a first-class object of the
// simulation service. The paper's core results are all grids — every
// device model crossed with every workload and scheduler — and the
// production workload of a deterministic what-if engine is the same
// shape: "every Table-2 device × every workload × 10 seeds × 5 queue
// depths". A Spec is a simsvc.JobSpec template plus named axes; it
// expands into a canonically ordered cartesian product of cells, each
// cell one job submitted through the existing manager. Because jobs are
// deduplicated by the content-addressed result cache, re-running a
// campaign after one axis changes only simulates the new cells, and
// cells that differ only in execution knobs (options.shards) collapse
// to one simulation.
//
// Three parts compose the package:
//
//   - expansion (this file): axes applied to the template's JSON by
//     dotted path, validated per cell before anything is enqueued;
//   - a campaign manager (manager.go): a feeder submits cells in order
//     through simsvc.Manager under a bounded in-flight window, tracks
//     per-cell outcomes, aggregates progress/ETA, streams results in
//     deterministic cell order, and cancels the remainder on demand;
//   - rendering (table.go): any two axes and a result metric become a
//     comparison table through the shared stats.Grid renderer.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"ossd/internal/simsvc"
)

// Axis is one swept parameter: a dotted path into the JobSpec JSON
// ("params.seed", "options.shards", "profile", …) and the values it
// takes. Exactly one of Values and Range must be set; Range is the
// integer convenience for seed-style sweeps.
type Axis struct {
	Name   string            `json:"name"`
	Values []json.RawMessage `json:"values,omitempty"`
	Range  *Range            `json:"range,omitempty"`
}

// Range enumerates From..To inclusive, stepping by Step (default 1).
type Range struct {
	From int64 `json:"from"`
	To   int64 `json:"to"`
	Step int64 `json:"step,omitempty"`
}

// values materializes the range as JSON values.
func (r *Range) values() ([]json.RawMessage, error) {
	step := r.Step
	if step == 0 {
		step = 1
	}
	if step < 0 {
		return nil, fmt.Errorf("campaign: range step %d must be positive", step)
	}
	if r.To < r.From {
		return nil, fmt.Errorf("campaign: empty range [%d, %d]", r.From, r.To)
	}
	var vals []json.RawMessage
	for v := r.From; v <= r.To; v += step {
		vals = append(vals, json.RawMessage(fmt.Sprintf("%d", v)))
	}
	return vals, nil
}

// Spec is a campaign request: a job template plus the axes to sweep.
// Zero axes is legal (a one-cell campaign). MaxCells, when set, lowers
// the manager's expansion guard for this campaign.
type Spec struct {
	Template simsvc.JobSpec `json:"template"`
	Axes     []Axis         `json:"axes,omitempty"`
	MaxCells int            `json:"max_cells,omitempty"`
}

// AxisValue is one coordinate of a cell: the axis name and the label of
// the value the cell took on it. Coordinates are an ordered slice (not
// a map) so every serialization lists axes in spec order.
type AxisValue struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Cell is one expanded grid point: the fully substituted job spec and
// its coordinates. Key is the spec's cache identity; DupOf is the index
// of the earliest cell with the same Key (-1 if this cell is first) —
// duplicate cells are guaranteed cache hits once their primary has run,
// which is how an options.shards axis dedups to one simulation.
type Cell struct {
	Index  int
	Spec   simsvc.JobSpec
	Coords []AxisValue
	Key    uint64
	DupOf  int
}

// label renders an axis value for coordinates and table headers:
// strings drop their quotes, everything else is the compact JSON.
func label(raw json.RawMessage) string {
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		return s
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return string(raw)
	}
	return buf.String()
}

// setPath sets a dotted path in a JSON tree, creating intermediate
// objects as needed (the template's omitempty fields may be absent).
// Numeric segments index into arrays the template already carries —
// "tenants.0.weight" sweeps the first tenant's fair-share weight — but
// arrays are never created implicitly and never grown: the template
// must list the elements the axis addresses. Wrong field names are not
// detectable here — the final decode into JobSpec with
// DisallowUnknownFields catches them.
func setPath(m map[string]any, path string, v any) error {
	segs := strings.Split(path, ".")
	var cur any = m
	for i, seg := range segs {
		if seg == "" {
			return fmt.Errorf("campaign: axis %q has an empty path segment", path)
		}
		last := i == len(segs)-1
		switch node := cur.(type) {
		case map[string]any:
			if last {
				node[seg] = v
				return nil
			}
			next, ok := node[seg]
			if !ok {
				child := map[string]any{}
				node[seg] = child
				cur = child
				continue
			}
			cur = next
		case []any:
			idx, err := strconv.Atoi(seg)
			if err != nil {
				return fmt.Errorf("campaign: axis %q: %q indexes an array but is not an integer", path, seg)
			}
			if idx < 0 || idx >= len(node) {
				return fmt.Errorf("campaign: axis %q: index %d outside the template's %d-element array", path, idx, len(node))
			}
			if last {
				node[idx] = v
				return nil
			}
			cur = node[idx]
		default:
			return fmt.Errorf("campaign: axis %q: %q is not an object or array", path, seg)
		}
	}
	return nil
}

// decodeNumeric unmarshals JSON preserving number literals verbatim
// (json.Number round-trips), so axis values and template numbers
// survive the map detour byte-for-byte.
func decodeNumeric(raw []byte, into any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	return dec.Decode(into)
}

// Expand materializes the spec's cartesian product in canonical order:
// axes iterate in spec order with the last axis varying fastest, like
// nested loops — cell index is the row-major rank of its coordinate
// vector. maxCells guards the expansion (spec.MaxCells lowers it when
// set); every cell's spec is validated before any cell is returned, so
// a bad axis value rejects the whole campaign.
func Expand(spec Spec, maxCells int) ([]*Cell, error) {
	if spec.MaxCells > 0 && spec.MaxCells < maxCells {
		maxCells = spec.MaxCells
	}
	axes := make([][]json.RawMessage, len(spec.Axes))
	seen := map[string]bool{}
	total := 1
	for i, ax := range spec.Axes {
		if ax.Name == "" {
			return nil, fmt.Errorf("campaign: axis %d has no name", i)
		}
		if seen[ax.Name] {
			return nil, fmt.Errorf("campaign: duplicate axis %q", ax.Name)
		}
		seen[ax.Name] = true
		switch {
		case len(ax.Values) > 0 && ax.Range != nil:
			return nil, fmt.Errorf("campaign: axis %q sets both values and range", ax.Name)
		case len(ax.Values) > 0:
			axes[i] = ax.Values
		case ax.Range != nil:
			vals, err := ax.Range.values()
			if err != nil {
				return nil, err
			}
			axes[i] = vals
		default:
			return nil, fmt.Errorf("campaign: axis %q has no values", ax.Name)
		}
		total *= len(axes[i])
		if total > maxCells {
			return nil, fmt.Errorf("campaign: expansion exceeds %d cells", maxCells)
		}
	}

	template, err := json.Marshal(spec.Template)
	if err != nil {
		return nil, fmt.Errorf("campaign: marshal template: %w", err)
	}

	cells := make([]*Cell, 0, total)
	primary := map[uint64]int{}
	idx := make([]int, len(spec.Axes))
	for n := 0; n < total; n++ {
		var tree map[string]any
		if err := decodeNumeric(template, &tree); err != nil {
			return nil, fmt.Errorf("campaign: decode template: %w", err)
		}
		cell := &Cell{Index: n, DupOf: -1, Coords: make([]AxisValue, len(spec.Axes))}
		for a, ax := range spec.Axes {
			raw := axes[a][idx[a]]
			var v any
			if err := decodeNumeric(raw, &v); err != nil {
				return nil, fmt.Errorf("campaign: axis %q value %s: %w", ax.Name, raw, err)
			}
			if err := setPath(tree, ax.Name, v); err != nil {
				return nil, err
			}
			cell.Coords[a] = AxisValue{Name: ax.Name, Value: label(raw)}
		}
		substituted, err := json.Marshal(tree)
		if err != nil {
			return nil, fmt.Errorf("campaign: marshal cell %d: %w", n, err)
		}
		dec := json.NewDecoder(bytes.NewReader(substituted))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cell.Spec); err != nil {
			return nil, fmt.Errorf("campaign: cell %d (%s): %w", n, coordString(cell.Coords), err)
		}
		if err := cell.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("campaign: cell %d (%s): %w", n, coordString(cell.Coords), err)
		}
		cell.Key = cell.Spec.Key()
		if p, ok := primary[cell.Key]; ok {
			cell.DupOf = p
		} else {
			primary[cell.Key] = n
		}
		cells = append(cells, cell)

		// Advance the coordinate vector: last axis fastest.
		for a := len(idx) - 1; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(axes[a]) {
				break
			}
			idx[a] = 0
		}
	}
	return cells, nil
}

// coordString renders coordinates as "a=1 b=ssd" for error messages.
func coordString(coords []AxisValue) string {
	parts := make([]string, len(coords))
	for i, c := range coords {
		parts[i] = c.Name + "=" + c.Value
	}
	return strings.Join(parts, " ")
}
