package flash

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ossd/internal/sim"
)

func testGeom() Geometry {
	return Geometry{PageSize: 4096, PagesPerBlock: 64, BlocksPerPackage: 32}
}

func newTestPackage(t *testing.T) *Package {
	t.Helper()
	p, err := NewPackage(testGeom(), TimingFor(SLC), 100)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGeometryDerived(t *testing.T) {
	g := testGeom()
	if g.BlockBytes() != 4096*64 {
		t.Fatalf("BlockBytes = %d", g.BlockBytes())
	}
	if g.PackageBytes() != 4096*64*32 {
		t.Fatalf("PackageBytes = %d", g.PackageBytes())
	}
	if g.Pages() != 64*32 {
		t.Fatalf("Pages = %d", g.Pages())
	}
}

func TestGeometryValidate(t *testing.T) {
	bad := []Geometry{
		{PageSize: 0, PagesPerBlock: 64, BlocksPerPackage: 32},
		{PageSize: 4096, PagesPerBlock: 0, BlocksPerPackage: 32},
		{PageSize: 4096, PagesPerBlock: 64, BlocksPerPackage: -1},
	}
	for _, g := range bad {
		if g.Validate() == nil {
			t.Errorf("Validate accepted %+v", g)
		}
	}
	if err := testGeom().Validate(); err != nil {
		t.Errorf("Validate rejected valid geometry: %v", err)
	}
}

func TestNewPackageRejectsBadInputs(t *testing.T) {
	if _, err := NewPackage(Geometry{}, TimingFor(SLC), 100); err == nil {
		t.Error("accepted zero geometry")
	}
	if _, err := NewPackage(testGeom(), TimingFor(SLC), 0); err == nil {
		t.Error("accepted zero erase budget")
	}
}

func TestTimingProfiles(t *testing.T) {
	slc, mlc := TimingFor(SLC), TimingFor(MLC)
	if slc.PageProgram >= mlc.PageProgram {
		t.Error("SLC program should be faster than MLC")
	}
	if slc.BlockErase >= mlc.BlockErase {
		t.Error("SLC erase should be faster than MLC")
	}
	if slc.PageRead != 25*sim.Microsecond {
		t.Errorf("SLC read = %v", slc.PageRead)
	}
	if EraseBudgetFor(SLC) != 100_000 || EraseBudgetFor(MLC) != 10_000 {
		t.Error("erase budgets wrong")
	}
	if SLC.String() != "SLC" || MLC.String() != "MLC" {
		t.Error("CellType strings wrong")
	}
}

func TestProgramReadCycle(t *testing.T) {
	p := newTestPackage(t)
	d, err := p.ProgramPage(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 200us program + 4096B * 25ns bus = 200us + 102.4us
	want := 200*sim.Microsecond + 4096*25*sim.Nanosecond
	if d != want {
		t.Fatalf("program time = %v, want %v", d, want)
	}
	rd, err := p.ReadPage(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantR := 25*sim.Microsecond + 4096*25*sim.Nanosecond
	if rd != wantR {
		t.Fatalf("read time = %v, want %v", rd, wantR)
	}
}

func TestReadUnwritten(t *testing.T) {
	p := newTestPackage(t)
	if _, err := p.ReadPage(0, 0); !errors.Is(err, ErrReadUnwritten) {
		t.Fatalf("err = %v, want ErrReadUnwritten", err)
	}
	mustProgram(t, p, 0, 0)
	if _, err := p.ReadPage(0, 1); !errors.Is(err, ErrReadUnwritten) {
		t.Fatalf("read past write pointer: err = %v", err)
	}
}

func mustProgram(t *testing.T, p *Package, block, page int) {
	t.Helper()
	if _, err := p.ProgramPage(block, page); err != nil {
		t.Fatal(err)
	}
}

func TestInOrderProgramming(t *testing.T) {
	p := newTestPackage(t)
	mustProgram(t, p, 0, 0)
	if _, err := p.ProgramPage(0, 2); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("skip-ahead program: err = %v, want ErrOutOfOrder", err)
	}
	if _, err := p.ProgramPage(0, 0); !errors.Is(err, ErrNotErased) {
		t.Fatalf("overwrite program: err = %v, want ErrNotErased", err)
	}
	mustProgram(t, p, 0, 1)
	if p.WritePointer(0) != 2 {
		t.Fatalf("write pointer = %d, want 2", p.WritePointer(0))
	}
}

func TestEraseResetsBlock(t *testing.T) {
	p := newTestPackage(t)
	for i := 0; i < 64; i++ {
		mustProgram(t, p, 3, i)
	}
	if _, err := p.ProgramPage(3, 0); err == nil {
		t.Fatal("programmed into full block")
	}
	d, err := p.EraseBlock(3)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1500*sim.Microsecond {
		t.Fatalf("erase time = %v", d)
	}
	if p.EraseCount(3) != 1 {
		t.Fatalf("erase count = %d", p.EraseCount(3))
	}
	mustProgram(t, p, 3, 0) // usable again from page 0
}

func TestWearOut(t *testing.T) {
	p, err := NewPackage(testGeom(), TimingFor(SLC), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.EraseBlock(7); err != nil {
			t.Fatalf("erase %d: %v", i, err)
		}
	}
	if _, err := p.EraseBlock(7); !errors.Is(err, ErrWornOut) {
		t.Fatalf("err = %v, want ErrWornOut", err)
	}
	// Other blocks unaffected.
	if _, err := p.EraseBlock(8); err != nil {
		t.Fatalf("unworn block erase failed: %v", err)
	}
}

func TestOutOfRange(t *testing.T) {
	p := newTestPackage(t)
	cases := []func() error{
		func() error { _, err := p.ReadPage(-1, 0); return err },
		func() error { _, err := p.ReadPage(32, 0); return err },
		func() error { _, err := p.ProgramPage(0, 64); return err },
		func() error { _, err := p.ProgramPage(0, -1); return err },
		func() error { _, err := p.EraseBlock(99); return err },
	}
	for i, f := range cases {
		if err := f(); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("case %d: err = %v, want ErrOutOfRange", i, err)
		}
	}
}

func TestCounters(t *testing.T) {
	p := newTestPackage(t)
	mustProgram(t, p, 0, 0)
	mustProgram(t, p, 0, 1)
	if _, err := p.ReadPage(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.EraseBlock(1); err != nil {
		t.Fatal(err)
	}
	r, w, e := p.Counters()
	if r != 1 || w != 2 || e != 1 {
		t.Fatalf("counters = %d %d %d, want 1 2 1", r, w, e)
	}
}

func TestWearStats(t *testing.T) {
	p := newTestPackage(t)
	for i := 0; i < 5; i++ {
		if _, err := p.EraseBlock(0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.EraseBlock(1); err != nil {
		t.Fatal(err)
	}
	ws := p.Wear()
	if ws.Min != 0 || ws.Max != 5 || ws.Total != 6 {
		t.Fatalf("wear = %+v", ws)
	}
}

// Property: any sequence of in-order programs and erases keeps the write
// pointer within [0, PagesPerBlock] and the erase count non-decreasing.
func TestPackageInvariantProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		p, err := NewPackage(Geometry{PageSize: 512, PagesPerBlock: 8, BlocksPerPackage: 4}, TimingFor(SLC), 1000)
		if err != nil {
			return false
		}
		for _, op := range ops {
			b := int(op>>2) % 4
			switch op % 3 {
			case 0: // program at write pointer (may fail when full; fine)
				wp := p.WritePointer(b)
				if wp < 8 {
					if _, err := p.ProgramPage(b, wp); err != nil {
						return false
					}
				}
			case 1:
				if _, err := p.EraseBlock(b); err != nil {
					return false
				}
			case 2:
				wp := p.WritePointer(b)
				if wp > 0 {
					if _, err := p.ReadPage(b, wp-1); err != nil {
						return false
					}
				}
			}
			if p.WritePointer(b) < 0 || p.WritePointer(b) > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}
