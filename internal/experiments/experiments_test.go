package experiments

import (
	"strings"
	"testing"

	"ossd/internal/core"
	"ossd/internal/sim"
)

// The experiment tests run reduced workloads and assert the *shape* of
// each result — who wins, monotonicity, crossover locations — which is
// the reproduction target. cmd/repro runs the full-size versions.

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	r, err := Table2(Table2Options{
		BytesPerTest:     8 << 20,
		RandBytesPerTest: 2 << 20,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Table2Row{}
	for _, row := range r.Rows {
		rows[row.Device] = row
	}
	hdd, ok := rows["HDD"]
	if !ok {
		t.Fatal("no HDD row")
	}
	// HDD: ratios two orders of magnitude.
	if hdd.ReadRatio < 50 {
		t.Errorf("HDD read ratio = %.1f, want >> 50", hdd.ReadRatio)
	}
	if hdd.WriteRatio < 20 {
		t.Errorf("HDD write ratio = %.1f, want >> 20", hdd.WriteRatio)
	}
	// Every SSD's random-read gap is far smaller than the disk's.
	for _, name := range []string{"S1slc", "S2slc", "S3slc", "S4slc_sim", "S5mlc"} {
		row, ok := rows[name]
		if !ok {
			t.Fatalf("missing row %s", name)
		}
		if row.ReadRatio >= hdd.ReadRatio/3 {
			t.Errorf("%s read ratio %.1f not well below HDD's %.1f", name, row.ReadRatio, hdd.ReadRatio)
		}
	}
	// The simulated device: both ratios near 1.
	s4 := rows["S4slc_sim"]
	if s4.ReadRatio > 1.5 || s4.WriteRatio > 2 {
		t.Errorf("S4slc_sim ratios %.2f/%.2f, want ~1", s4.ReadRatio, s4.WriteRatio)
	}
	// Full-stripe devices: random write below the HDD's random write.
	for _, name := range []string{"S2slc", "S3slc"} {
		if rows[name].RandWrite >= hdd.RandWrite {
			t.Errorf("%s random write %.2f MB/s not below HDD %.2f", name, rows[name].RandWrite, hdd.RandWrite)
		}
	}
	if !strings.Contains(r.String(), "Table 2") {
		t.Error("rendering lacks title")
	}
}

func TestSWTFBeatFCFS(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	r, err := SWTF(SWTFOptions{Ops: 15000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.SWTFMeanMs >= r.FCFSMeanMs {
		t.Fatalf("SWTF %.3f ms not better than FCFS %.3f ms", r.SWTFMeanMs, r.FCFSMeanMs)
	}
	// Paper: ~8%. Accept a broad band around it for the reduced run.
	if r.ImprovementPct < 2 || r.ImprovementPct > 30 {
		t.Fatalf("improvement %.1f%%, want ~8%%", r.ImprovementPct)
	}
	if r.ID() != "swtf" {
		t.Error("wrong ID")
	}
}

func TestFigure2SawTooth(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	r, err := Figure2(Figure2Options{MaxBytes: 3 << 20, StepBytes: 256 << 10, BytesPerPoint: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Peaks at stripe multiples must beat the troughs between them.
	if r.PeakMBps <= 1.3*r.TroughMBps {
		t.Fatalf("no saw-tooth: peak %.1f, trough %.1f", r.PeakMBps, r.TroughMBps)
	}
	// Bandwidth at 1 MB (the stripe) must be the max of the sub-stripe
	// region, and the point right after it must drop.
	find := func(mb float64) float64 {
		for i, x := range r.Series.X {
			if x > mb-0.01 && x < mb+0.01 {
				return r.Series.Y[i]
			}
		}
		t.Fatalf("missing point at %.2f MB", mb)
		return 0
	}
	atStripe := find(1.048576) // 1 MiB in decimal MB
	after := find(1.048576 + 0.262144)
	if after >= atStripe {
		t.Fatalf("no drop past the stripe: %.1f -> %.1f", atStripe, after)
	}
	small := find(0.262144)
	if small >= atStripe {
		t.Fatalf("small writes %.1f not slower than stripe-aligned %.1f", small, atStripe)
	}
	if r.ID() != "figure2" {
		t.Error("wrong ID")
	}
}

func TestTable3AlignmentImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	r, err := Table3(Table3Options{Ops: 6000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Unaligned) != 5 || len(r.Aligned) != 5 {
		t.Fatalf("row lengths: %d %d", len(r.Unaligned), len(r.Aligned))
	}
	// At p=0 the schemes coincide (nothing to merge).
	if diff := r.Aligned[0] - r.Unaligned[0]; diff > 0.2*r.Unaligned[0] {
		t.Errorf("p=0: aligned %.2f vs unaligned %.2f, want ~equal", r.Aligned[0], r.Unaligned[0])
	}
	// Aligned improves monotonically in p (within noise) and by >40% at
	// p=0.8, the paper's ">50%" result.
	last := len(r.Aligned) - 1
	if r.Aligned[last] >= r.Aligned[1] {
		t.Errorf("aligned not improving with sequentiality: %v", r.Aligned)
	}
	imp := (r.Unaligned[last] - r.Aligned[last]) / r.Unaligned[last] * 100
	if imp < 40 {
		t.Errorf("p=0.8 improvement %.1f%%, want > 40%%", imp)
	}
}

func TestTable4Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	r, err := Table4(Table4Options{Scale: 0.4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	imp := map[string]float64{}
	for i, w := range r.Workloads {
		imp[w] = r.ImprovementPct[i]
	}
	// The paper's ordering: IOzone benefits by far the most; Postmark is
	// negligible.
	if imp["IOzone"] < 20 {
		t.Errorf("IOzone improvement %.1f%%, want large (paper 36.5%%)", imp["IOzone"])
	}
	if imp["IOzone"] <= imp["Exchange"] || imp["IOzone"] <= imp["TPCC"] || imp["IOzone"] <= imp["Postmark"] {
		t.Errorf("IOzone not the largest: %v", imp)
	}
	if imp["Postmark"] > 5 || imp["Postmark"] < -5 {
		t.Errorf("Postmark improvement %.1f%%, want negligible (paper 1.15%%)", imp["Postmark"])
	}
}

func TestTable5InformedCleaning(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	r, err := Table5(Table5Options{Transactions: []int{4000}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.RelPagesMoved) != 1 {
		t.Fatal("missing row")
	}
	if r.DefaultPagesMoved[0] == 0 {
		t.Fatal("default FTL never cleaned; workload too small")
	}
	// Informed cleaning moves strictly fewer pages and spends less time,
	// in the paper's band (rel pages 0.25-0.5, rel time < 1).
	if r.RelPagesMoved[0] >= 0.9 {
		t.Errorf("relative pages moved %.2f, want well below 1", r.RelPagesMoved[0])
	}
	if r.RelCleanTime[0] >= 0.9 {
		t.Errorf("relative cleaning time %.2f, want well below 1", r.RelCleanTime[0])
	}
}

func TestFigure3PriorityAware(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	r, err := Figure3(Figure3Options{Ops: 60000, Seed: 1, WritePcts: []int{20, 50, 80}})
	if err != nil {
		t.Fatal(err)
	}
	// At 20% writes cleaning is rare: no meaningful improvement.
	if r.ImprovementPct[0] > 5 {
		t.Errorf("improvement at 20%% writes = %.1f%%, want ~0", r.ImprovementPct[0])
	}
	// At 50%+ writes the aware scheme helps the foreground.
	if r.ImprovementPct[1] < 2 {
		t.Errorf("improvement at 50%% writes = %.1f%%, want noticeable", r.ImprovementPct[1])
	}
	if r.ImprovementPct[2] < 5 {
		t.Errorf("improvement at 80%% writes = %.1f%%, want ~10%%", r.ImprovementPct[2])
	}
	// Foreground responses rise with write share under both policies.
	if r.FgAgnostic[2] <= r.FgAgnostic[0] {
		t.Errorf("agnostic foreground response not increasing with writes: %v", r.FgAgnostic)
	}
}

func TestContractVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	r, err := Contract(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("want 6 contract terms, got %d", len(r.Rows))
	}
	// Paper's Table 1 columns (Disk, RAID, MEMS, SSD). SSD term 3 is T
	// for today's homogeneous devices, failing only once SLC+MLC mix.
	wantDisk := []bool{true, true, false, true, true, true}
	wantRAID := []bool{true, false, false, false, true, true}
	wantMEMS := []bool{true, true, true, true, true, true}
	wantSSD := []bool{false, false, true, false, false, false}
	for i, row := range r.Rows {
		if row.Disk != wantDisk[i] {
			t.Errorf("term %d disk = %v, want %v (%s)", i+1, row.Disk, wantDisk[i], row.Evidence)
		}
		if row.RAID != wantRAID[i] {
			t.Errorf("term %d raid = %v, want %v (%s)", i+1, row.RAID, wantRAID[i], row.Evidence)
		}
		if row.MEMS != wantMEMS[i] {
			t.Errorf("term %d mems = %v, want %v (%s)", i+1, row.MEMS, wantMEMS[i], row.Evidence)
		}
		if row.SSD != wantSSD[i] {
			t.Errorf("term %d ssd = %v, want %v (%s)", i+1, row.SSD, wantSSD[i], row.Evidence)
		}
	}
}

func TestProfilesInstantiable(t *testing.T) {
	for _, p := range core.Profiles() {
		d, err := p.NewDevice()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if d.LogicalBytes() <= 0 {
			t.Fatalf("%s: no capacity", p.Name)
		}
	}
	if _, err := core.ProfileByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestResultIDs(t *testing.T) {
	ids := []Result{Table2Result{}, SWTFResult{}, Figure2Result{}, Table3Result{}, Table4Result{}, Table5Result{}, Figure3Result{}, ContractResult{}}
	want := []string{"table2", "swtf", "figure2", "table3", "table4", "table5", "figure3", "contract"}
	for i, r := range ids {
		if r.ID() != want[i] {
			t.Errorf("result %d ID = %q, want %q", i, r.ID(), want[i])
		}
	}
}

func TestMeasureBandwidthValidation(t *testing.T) {
	p, err := core.ProfileByName("S4slc_sim")
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.NewDevice()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.MeasureBandwidth(d, core.BWOptions{ReqBytes: 0, TotalBytes: 1}); err == nil {
		t.Error("accepted zero request size")
	}
	if _, err := core.MeasureBandwidth(d, core.BWOptions{ReqBytes: d.LogicalBytes() * 2, TotalBytes: d.LogicalBytes() * 2}); err == nil {
		t.Error("accepted request larger than device")
	}
}

func TestPreconditionFracValidation(t *testing.T) {
	p, _ := core.ProfileByName("S4slc_sim")
	d, _ := p.NewDevice()
	if err := core.PreconditionFrac(d, 1<<20, 0); err == nil {
		t.Error("accepted zero fraction")
	}
	if err := core.PreconditionFrac(d, 1<<20, 1.5); err == nil {
		t.Error("accepted fraction > 1")
	}
}

func TestPreconditionMapsRegion(t *testing.T) {
	p, _ := core.ProfileByName("S4slc_sim")
	d, _ := p.NewDevice()
	if err := core.PreconditionFrac(d, 1<<20, 0.5); err != nil {
		t.Fatal(err)
	}
	sd := d.(*core.SSD)
	written := d.Metrics().BytesWritten
	if written < d.LogicalBytes()/2-(1<<20) {
		t.Fatalf("precondition wrote %d of %d", written, d.LogicalBytes()/2)
	}
	// Spot-check: a page in the filled half is mapped.
	el := sd.Raw.Elements()[0]
	if !el.Mapped(0) {
		t.Error("first page unmapped after precondition")
	}
	if d.Engine().Now() == sim.Time(0) {
		t.Error("precondition consumed no simulated time")
	}
}

func TestSchemesOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	r, err := Schemes(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Schemes) != 3 {
		t.Fatalf("want 3 schemes, got %d", len(r.Schemes))
	}
	// Random-write bandwidth: page > hybrid > block; amplification the
	// reverse.
	if !(r.RandWrite[0] > r.RandWrite[1] && r.RandWrite[1] > r.RandWrite[2]) {
		t.Fatalf("random-write ordering wrong: %v", r.RandWrite)
	}
	if !(r.WriteAmp[0] < r.WriteAmp[1] && r.WriteAmp[1] < r.WriteAmp[2]) {
		t.Fatalf("amplification ordering wrong: %v", r.WriteAmp)
	}
	// Sequential writes stay within the same order of magnitude on all
	// schemes (replacement blocks keep block mapping competitive).
	if r.SeqWrite[2] < r.SeqWrite[0]/3 {
		t.Fatalf("block-mapped sequential collapsed: %v", r.SeqWrite)
	}
}

func TestLifetimeOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	r, err := Lifetime(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Configs) != 3 {
		t.Fatalf("want 3 configs, got %d", len(r.Configs))
	}
	// Wear-leveling must extend life; the 1/10-budget MLC device must die
	// far earlier.
	if r.HostMB[1] <= r.HostMB[0] {
		t.Fatalf("wear-leveling did not extend life: %v", r.HostMB)
	}
	if r.HostMB[2] >= r.HostMB[1]/4 {
		t.Fatalf("MLC outlived its 1/10 budget: %v", r.HostMB)
	}
	// Leveling also narrows the spread at death.
	if r.WearSpread[1] >= r.WearSpread[0] {
		t.Fatalf("wear spread not reduced: %v", r.WearSpread)
	}
}
