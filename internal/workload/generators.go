package workload

import (
	"fmt"
	"sort"

	"ossd/internal/sim"
	"ossd/internal/trace"
)

// GenParams is the unified parameter block every named generator accepts:
// one JSON-friendly struct instead of six config types, so callers that
// select generators by name (cmd/tracegen, cmd/ssdsim, the simsvc API)
// need no per-generator switch. Each generator reads the fields that
// apply to it and falls back to its usual defaults for the rest.
type GenParams struct {
	// Ops is the operation count (synthetic, tpcc, exchange, seqwrites).
	Ops int `json:"ops,omitempty"`
	// Transactions is the transaction count (postmark).
	Transactions int `json:"transactions,omitempty"`
	// CapacityBytes is the address space / file-system capacity targeted
	// (synthetic, postmark, tpcc, exchange, seqwrites).
	CapacityBytes int64 `json:"capacity_bytes,omitempty"`
	// ReqBytes is the per-op request size (synthetic, seqwrites;
	// default 4096 for synthetic, 1 MiB for seqwrites).
	ReqBytes int64 `json:"req_bytes,omitempty"`
	// ReadFrac is the read fraction (synthetic).
	ReadFrac float64 `json:"read_frac,omitempty"`
	// SeqProb is the sequentiality probability (synthetic).
	SeqProb float64 `json:"seq_prob,omitempty"`
	// PriorityFrac marks this fraction of ops as priority (synthetic).
	PriorityFrac float64 `json:"priority_frac,omitempty"`
	// FileBytes is the test file size (iozone).
	FileBytes int64 `json:"file_bytes,omitempty"`
	// RecordBytes is the I/O unit (iozone; default 128 KiB).
	RecordBytes int64 `json:"record_bytes,omitempty"`
	// MeanInterarrivalUs is the mean inter-arrival time in microseconds;
	// 0 means back-to-back. The synthetic generator draws uniformly from
	// [0, 2·mean]; the macro generators draw exponentially — exactly what
	// cmd/tracegen always did for each.
	MeanInterarrivalUs int64 `json:"mean_interarrival_us,omitempty"`
	// Seed selects the random stream.
	Seed int64 `json:"seed,omitempty"`
}

// mean returns the configured mean inter-arrival as a sim duration.
func (p GenParams) mean() sim.Time { return sim.Time(p.MeanInterarrivalUs) * sim.Microsecond }

// generators maps workload names to stream constructors: the lookup
// table behind Generators and NewStream.
var generators = map[string]func(GenParams) (trace.Stream, error){
	"synthetic": func(p GenParams) (trace.Stream, error) {
		if p.ReqBytes == 0 {
			p.ReqBytes = 4096
		}
		return Synthetic(SyntheticConfig{
			Ops:            p.Ops,
			AddressSpace:   p.CapacityBytes,
			ReadFrac:       p.ReadFrac,
			SeqProb:        p.SeqProb,
			ReqSize:        p.ReqBytes,
			InterarrivalLo: 0,
			InterarrivalHi: 2 * p.mean(),
			PriorityFrac:   p.PriorityFrac,
			Seed:           p.Seed,
		})
	},
	"postmark": func(p GenParams) (trace.Stream, error) {
		return Postmark(PostmarkConfig{
			Transactions:     p.Transactions,
			CapacityBytes:    p.CapacityBytes,
			MeanInterarrival: p.mean(),
			Seed:             p.Seed,
		})
	},
	"tpcc": func(p GenParams) (trace.Stream, error) {
		return TPCC(OLTPConfig{
			Ops:              p.Ops,
			CapacityBytes:    p.CapacityBytes,
			MeanInterarrival: p.mean(),
			Seed:             p.Seed,
		})
	},
	"exchange": func(p GenParams) (trace.Stream, error) {
		return Exchange(ExchangeConfig{
			Ops:              p.Ops,
			CapacityBytes:    p.CapacityBytes,
			MeanInterarrival: p.mean(),
			Seed:             p.Seed,
		})
	},
	"iozone": func(p GenParams) (trace.Stream, error) {
		return IOzone(IOzoneConfig{
			FileBytes:        p.FileBytes,
			RecordBytes:      p.RecordBytes,
			MeanInterarrival: p.mean(),
			Seed:             p.Seed,
		})
	},
	"seqwrites": func(p GenParams) (trace.Stream, error) {
		if p.Ops <= 0 || p.CapacityBytes <= 0 {
			return nil, fmt.Errorf("workload: seqwrites needs ops and capacity")
		}
		if p.ReqBytes == 0 {
			p.ReqBytes = 1 << 20
		}
		return SequentialWrites(p.Ops, p.ReqBytes, p.CapacityBytes), nil
	},
}

// Generators returns the registered workload names, sorted.
func Generators() []string {
	names := make([]string, 0, len(generators))
	for name := range generators {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewStream builds the named generator's stream from the unified
// parameter block.
func NewStream(name string, p GenParams) (trace.Stream, error) {
	gen, ok := generators[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown generator %q (have %v)", name, Generators())
	}
	return gen(p)
}
