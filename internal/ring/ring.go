// Package ring implements consistent hashing over a static set of
// peers — the ownership map of the fleet's sharded result-cache tier.
// Every simd instance is configured with the same member set (its own
// address plus its peers), so every instance derives the same ring and
// agrees on which node owns any cache key without coordination. Virtual
// nodes smooth the ownership distribution, and consistent hashing keeps
// remapping minimal when the fleet grows: adding one member moves only
// the keys that member takes over, never keys between existing members.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-member virtual-node count when New is
// given a non-positive one. 128 points per member keeps the ownership
// spread within a few percent of uniform for small fleets while the
// ring stays tiny (a handful of KB).
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring. Build one with New; all
// methods are safe for concurrent use.
type Ring struct {
	self    string
	members []string // sorted, deduplicated
	points  []point  // sorted by hash
}

// point is one virtual node: a position on the ring and the member that
// owns the arc ending there.
type point struct {
	hash   uint64
	member string
}

// New builds a ring over self plus peers with vnodes virtual nodes per
// member (<= 0: DefaultVirtualNodes). Duplicate addresses collapse to
// one member, so passing self in peers too is harmless. Member strings
// are compared literally — "http://a:8080" and "http://A:8080" are
// different members, and every instance in a fleet must be configured
// with byte-identical address spellings to agree on ownership.
func New(self string, peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := map[string]bool{}
	var members []string
	for _, m := range append([]string{self}, peers...) {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		members = append(members, m)
	}
	sort.Strings(members)
	r := &Ring{self: self, members: members, points: make([]point, 0, len(members)*vnodes)}
	for _, m := range members {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: pointHash(m, i), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Colliding points tie-break on member so every instance sorts
		// identically regardless of input order.
		return a.member < b.member
	})
	return r
}

// pointHash places virtual node i of member m on the ring.
func pointHash(member string, i int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|vnode-%d", member, i)
	return h.Sum64()
}

// Self reports the address this instance was built with.
func (r *Ring) Self() string { return r.self }

// Members reports the deduplicated, sorted member set.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Owner reports the member owning key: the member of the first virtual
// node at or clockwise of the key's position, wrapping at the top. A
// ring with no members owns nothing and returns "".
func (r *Ring) Owner(key uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// IsSelf reports whether this instance owns key.
func (r *Ring) IsSelf(key uint64) bool { return r.Owner(key) == r.self }
