package experiments

import (
	"fmt"

	"ossd/internal/core"
	"ossd/internal/flash"
	"ossd/internal/runner"
	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/ssd"
	"ossd/internal/stats"
	"ossd/internal/trace"
	"ossd/internal/workload"
)

// Figure3Result reproduces Figure 3 and Table 6: foreground (priority)
// and background response times under priority-aware vs. priority-
// agnostic cleaning, across write percentages.
type Figure3Result struct {
	WritePcts []int
	// Mean response times in ms per write percentage.
	FgAgnostic, BgAgnostic []float64
	FgAware, BgAware       []float64
	// ImprovementPct is Table 6: foreground improvement from awareness.
	ImprovementPct []float64
}

// ID implements Result.
func (Figure3Result) ID() string { return "figure3" }

func (r Figure3Result) String() string {
	t := stats.NewTable("Figure 3: Priority-Aware Cleaning (mean response, ms)",
		"Writes(%)", "Fg:Agnostic", "Fg:Aware", "Bg:Agnostic", "Bg:Aware")
	for i, w := range r.WritePcts {
		t.AddRow(w, r.FgAgnostic[i], r.FgAware[i], r.BgAgnostic[i], r.BgAware[i])
	}
	t6 := stats.NewTable("Table 6: Response Time Improvement From Priority-Aware Cleaning",
		"Writes(%)", "Improvement(%)")
	for i, w := range r.WritePcts {
		t6.AddRow(w, r.ImprovementPct[i])
	}
	t6.AddNote("paper: ~0%% at 20%% writes (little cleaning), ~10%% at 40-80%%")
	return t.String() + "\n" + t6.String()
}

// Figure3Options tunes the experiment.
type Figure3Options struct {
	// Ops per point (default 120000).
	Ops int
	// PriorityFrac is the foreground fraction (default 0.10, the paper's).
	PriorityFrac float64
	// WritePcts lists the sweep points (default 20..80, the paper's).
	WritePcts []int
	// Seed drives the workloads.
	Seed int64
	// Workers caps the worker pool (0 = runner default).
	Workers int
}

func (o *Figure3Options) defaults() {
	if o.Ops == 0 {
		o.Ops = 120000
	}
	if o.PriorityFrac == 0 {
		o.PriorityFrac = 0.10
	}
	if len(o.WritePcts) == 0 {
		o.WritePcts = []int{20, 40, 50, 60, 80}
	}
}

// figure3Device builds the scaled 32 GB-class device with the paper's
// watermarks (low 5%, critical 2%).
func figure3Device(aware bool) (*core.SSD, error) {
	d, err := core.Open("ssd",
		core.WithSSD(ssd.Config{
			Elements:      16,
			Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 64, BlocksPerPackage: 96},
			Overprovision: 0.10,
			Layout:        ssd.Interleaved,
			Scheduler:     sched.SWTF,
			CtrlOverhead:  10 * sim.Microsecond,
			GCLow:         0.05, GCCritical: 0.02,
		}),
		core.WithPriorityAware(aware),
	)
	if err != nil {
		return nil, err
	}
	return d.(*core.SSD), nil
}

// figure3Point is one (write percentage, policy) simulation's output.
type figure3Point struct {
	fg, bg float64
}

// Figure3 runs both cleaning policies at each write percentage, one spec
// per (write percentage, policy) pair. Requests arrive with
// inter-arrival times uniform in [0, 0.1 ms] and 10% are priority, per
// the paper.
func Figure3(opts Figure3Options) (Figure3Result, error) {
	opts.defaults()
	var res Figure3Result
	run := func(wp int, aware bool) (figure3Point, error) {
		var pt figure3Point
		d, err := figure3Device(aware)
		if err != nil {
			return pt, err
		}
		// Two sequential passes over 75% of a 16-element device: the
		// first maps the region, the second drains the free pool to
		// the 5% watermark, so the measurement starts in the steady
		// state where cleaning interferes with foreground traffic
		// (the regime Figure 3 studies) while staying stable.
		for pass := 0; pass < 2; pass++ {
			if err := core.PreconditionFrac(d, 1<<20, 0.75); err != nil {
				return pt, err
			}
		}
		stream, err := workload.Synthetic(workload.SyntheticConfig{
			Ops:            opts.Ops,
			AddressSpace:   int64(float64(d.LogicalBytes()) * 0.75),
			ReadFrac:       1 - float64(wp)/100,
			ReqSize:        4096,
			InterarrivalLo: 0,
			InterarrivalHi: 100 * sim.Microsecond,
			PriorityFrac:   opts.PriorityFrac,
			Seed:           opts.Seed + int64(wp),
		})
		if err != nil {
			return pt, err
		}
		base := d.Engine().Now()
		if err := d.Drive(trace.Shift(stream, base)); err != nil {
			return pt, err
		}
		m := d.Raw.Metrics()
		return figure3Point{fg: m.PriResp.Mean(), bg: bgMeanExcludingPrecondition(m, base)}, nil
	}
	var specs []runner.Spec[figure3Point]
	for _, wp := range opts.WritePcts {
		wp := wp
		for _, aware := range []bool{false, true} {
			aware := aware
			specs = append(specs, runner.Spec[figure3Point]{
				Name: fmt.Sprintf("figure3/w%d/aware=%v", wp, aware),
				Seed: opts.Seed,
				Run:  func() (figure3Point, error) { return run(wp, aware) },
			})
		}
	}
	pts, err := runner.Run(specs, runner.Options{Workers: opts.Workers})
	if err != nil {
		return res, err
	}
	for i, wp := range opts.WritePcts {
		agn, aw := pts[i*2], pts[i*2+1]
		res.WritePcts = append(res.WritePcts, wp)
		res.FgAgnostic = append(res.FgAgnostic, agn.fg)
		res.BgAgnostic = append(res.BgAgnostic, agn.bg)
		res.FgAware = append(res.FgAware, aw.fg)
		res.BgAware = append(res.BgAware, aw.bg)
		res.ImprovementPct = append(res.ImprovementPct, stats.Improvement(agn.fg, aw.fg))
	}
	return res, nil
}

// bgMeanExcludingPrecondition approximates the background-request mean.
// Preconditioning writes are non-priority and land in BgResp; they are
// sequential 1 MB writes, few in number relative to the trace, so the
// histogram mean is dominated by the trace. Kept as a helper so a future
// refactor can snapshot-and-subtract exactly like Table 3 does.
func bgMeanExcludingPrecondition(m ssd.Metrics, _ sim.Time) float64 {
	return m.BgResp.Mean()
}
