// Package flash models the NAND flash medium underneath the FTL: package
// geometry, SLC/MLC timing and endurance, and the physical constraints
// the translation layer must respect — erase-before-program, strictly
// in-order page programming within a block, and a finite erase budget per
// block. Timing numbers follow the Samsung SLC part used by Agrawal et
// al.'s simulator (the substrate of the paper under reproduction) and a
// contemporaneous MLC part.
package flash

import (
	"errors"
	"fmt"

	"ossd/internal/sim"
)

// CellType selects the memory technology of a package.
type CellType int

const (
	// SLC stores one bit per cell: fast, durable, small.
	SLC CellType = iota
	// MLC stores multiple bits per cell: dense, slower writes and erases,
	// an order of magnitude fewer erase cycles.
	MLC
)

func (c CellType) String() string {
	if c == MLC {
		return "MLC"
	}
	return "SLC"
}

// Timing holds the latency parameters of a flash package.
type Timing struct {
	// PageRead is the cell-array-to-register read latency.
	PageRead sim.Time
	// PageProgram is the register-to-cell-array program latency.
	PageProgram sim.Time
	// BlockErase is the block erase latency.
	BlockErase sim.Time
	// BusPerByte is the serial transfer cost per byte between the
	// controller and the package register (shared-bus cost).
	BusPerByte sim.Time
}

// TimingFor returns the canonical timing for a cell type.
//
// SLC: 25 us read, 200 us program, 1.5 ms erase (Samsung K9XXG08UXM).
// MLC: 50 us read, 800 us program, 3.3 ms erase.
// Both use a 40 MB/s package bus (25 ns/byte).
func TimingFor(c CellType) Timing {
	switch c {
	case MLC:
		return Timing{
			PageRead:    50 * sim.Microsecond,
			PageProgram: 800 * sim.Microsecond,
			BlockErase:  3300 * sim.Microsecond,
			BusPerByte:  25 * sim.Nanosecond,
		}
	default:
		return Timing{
			PageRead:    25 * sim.Microsecond,
			PageProgram: 200 * sim.Microsecond,
			BlockErase:  1500 * sim.Microsecond,
			BusPerByte:  25 * sim.Nanosecond,
		}
	}
}

// EraseBudgetFor returns the endurance (erase cycles per block) of a cell
// type: 100 K for SLC, 10 K for MLC.
func EraseBudgetFor(c CellType) int {
	if c == MLC {
		return 10_000
	}
	return 100_000
}

// Geometry describes the physical layout of one flash package.
type Geometry struct {
	// PageSize in bytes (typically 4096).
	PageSize int
	// PagesPerBlock (typically 64).
	PagesPerBlock int
	// BlocksPerPackage across all dies and planes.
	BlocksPerPackage int
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.PageSize <= 0 || g.PagesPerBlock <= 0 || g.BlocksPerPackage <= 0 {
		return fmt.Errorf("flash: invalid geometry %+v", g)
	}
	return nil
}

// BlockBytes returns the bytes in one erase block.
func (g Geometry) BlockBytes() int64 {
	return int64(g.PageSize) * int64(g.PagesPerBlock)
}

// PackageBytes returns the raw capacity of one package.
func (g Geometry) PackageBytes() int64 {
	return g.BlockBytes() * int64(g.BlocksPerPackage)
}

// Pages returns the total number of physical pages in a package.
func (g Geometry) Pages() int { return g.PagesPerBlock * g.BlocksPerPackage }

// Errors surfaced by the medium. The FTL treats all of these as
// programming bugs except ErrWornOut, which is a genuine device lifetime
// event used by the failure-injection tests.
var (
	ErrOutOfRange    = errors.New("flash: address out of range")
	ErrNotErased     = errors.New("flash: programming a non-erased page")
	ErrOutOfOrder    = errors.New("flash: pages must be programmed in order within a block")
	ErrWornOut       = errors.New("flash: block exceeded its erase budget")
	ErrReadUnwritten = errors.New("flash: reading an unwritten page")
)

// Package is one flash package: the unit of parallelism in the SSD. It
// enforces NAND programming constraints and tracks per-block wear.
type Package struct {
	geom        Geometry
	timing      Timing
	eraseBudget int

	// writePtr[b] is the next programmable page index in block b;
	// a block with writePtr == PagesPerBlock is full.
	writePtr []int32
	erases   []int32
	// retired[b] marks blocks taken out of circulation by the FTL's
	// wear-ceiling retirement; they keep their erase counts but no
	// longer participate in wear statistics.
	retired    []bool
	retiredCnt int

	reads    int64
	programs int64
	eraseOps int64
}

// NewPackage builds a fully-erased package.
func NewPackage(geom Geometry, timing Timing, eraseBudget int) (*Package, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if eraseBudget <= 0 {
		return nil, fmt.Errorf("flash: erase budget must be positive, got %d", eraseBudget)
	}
	return &Package{
		geom:        geom,
		timing:      timing,
		eraseBudget: eraseBudget,
		writePtr:    make([]int32, geom.BlocksPerPackage),
		erases:      make([]int32, geom.BlocksPerPackage),
		retired:     make([]bool, geom.BlocksPerPackage),
	}, nil
}

// Geometry returns the package geometry.
func (p *Package) Geometry() Geometry { return p.geom }

// Timing returns the package timing parameters.
func (p *Package) Timing() Timing { return p.timing }

func (p *Package) checkBlock(block int) error {
	if block < 0 || block >= p.geom.BlocksPerPackage {
		return fmt.Errorf("%w: block %d of %d", ErrOutOfRange, block, p.geom.BlocksPerPackage)
	}
	return nil
}

func (p *Package) checkPage(block, page int) error {
	if err := p.checkBlock(block); err != nil {
		return err
	}
	if page < 0 || page >= p.geom.PagesPerBlock {
		return fmt.Errorf("%w: page %d of %d", ErrOutOfRange, page, p.geom.PagesPerBlock)
	}
	return nil
}

// busTime is the serial transfer cost for n bytes.
func (p *Package) busTime(n int) sim.Time {
	return sim.Time(n) * p.timing.BusPerByte
}

// ReadPage returns the service time of reading one physical page,
// including bus transfer. Reading a page that was never programmed since
// the last erase returns ErrReadUnwritten: the FTL should never do it.
func (p *Package) ReadPage(block, page int) (sim.Time, error) {
	if err := p.checkPage(block, page); err != nil {
		return 0, err
	}
	if int32(page) >= p.writePtr[block] {
		return 0, fmt.Errorf("%w: block %d page %d", ErrReadUnwritten, block, page)
	}
	p.reads++
	return p.timing.PageRead + p.busTime(p.geom.PageSize), nil
}

// ProgramPage programs the next page of a block and returns its service
// time including bus transfer. NAND constraint: the page index must be
// exactly the block's write pointer.
func (p *Package) ProgramPage(block, page int) (sim.Time, error) {
	if err := p.checkPage(block, page); err != nil {
		return 0, err
	}
	wp := p.writePtr[block]
	if int32(page) < wp {
		return 0, fmt.Errorf("%w: block %d page %d already programmed", ErrNotErased, block, page)
	}
	if int32(page) > wp {
		return 0, fmt.Errorf("%w: block %d page %d, expected %d", ErrOutOfOrder, block, page, wp)
	}
	p.writePtr[block] = wp + 1
	p.programs++
	return p.timing.PageProgram + p.busTime(p.geom.PageSize), nil
}

// EraseBlock erases a block and returns its service time. Erasing beyond
// the budget returns ErrWornOut and leaves the block unusable (its state
// is not reset), modeling permanent wear-out.
func (p *Package) EraseBlock(block int) (sim.Time, error) {
	if err := p.checkBlock(block); err != nil {
		return 0, err
	}
	if int(p.erases[block]) >= p.eraseBudget {
		return 0, fmt.Errorf("%w: block %d at %d cycles", ErrWornOut, block, p.erases[block])
	}
	p.erases[block]++
	p.writePtr[block] = 0
	p.eraseOps++
	return p.timing.BlockErase, nil
}

// RetireBlock marks a block retired: the FTL pulled it from circulation
// at its wear ceiling. The block keeps its erase count and write pointer
// (its contents are simply abandoned) and drops out of Wear statistics.
func (p *Package) RetireBlock(block int) error {
	if err := p.checkBlock(block); err != nil {
		return err
	}
	if !p.retired[block] {
		p.retired[block] = true
		p.retiredCnt++
	}
	return nil
}

// Retired reports how many blocks have been retired.
func (p *Package) Retired() int { return p.retiredCnt }

// WritePointer reports the next programmable page index of a block.
func (p *Package) WritePointer(block int) int { return int(p.writePtr[block]) }

// EraseCount reports the erase cycles consumed by a block.
func (p *Package) EraseCount(block int) int { return int(p.erases[block]) }

// EraseBudget reports the per-block endurance limit.
func (p *Package) EraseBudget() int { return p.eraseBudget }

// Counters reports cumulative operation counts (reads, programs, erases).
func (p *Package) Counters() (reads, programs, erases int64) {
	return p.reads, p.programs, p.eraseOps
}

// WearStats summarizes wear across blocks: min/max/total erase counts.
type WearStats struct {
	Min, Max int
	Total    int64
}

// Wear computes the package wear summary over blocks still in
// circulation; retired blocks sit at their ceiling and would otherwise
// pin Max (and mislead wear-aware victim selection) forever.
func (p *Package) Wear() WearStats {
	ws := WearStats{Min: int(^uint(0) >> 1)}
	live := 0
	for b, e := range p.erases {
		if p.retired[b] {
			continue
		}
		live++
		v := int(e)
		if v < ws.Min {
			ws.Min = v
		}
		if v > ws.Max {
			ws.Max = v
		}
		ws.Total += int64(v)
	}
	if live == 0 {
		ws.Min = 0
	}
	return ws
}
