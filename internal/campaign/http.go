package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// writeJSON serves v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError serves an error as {"error": ...}.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// Register mounts the campaign API on mux, alongside the job service's
// routes:
//
//	POST   /campaigns                submit a Spec, get its progress view
//	GET    /campaigns                progress of every retained campaign
//	GET    /campaigns/{id}           progress (+ ?wait=1 to block until terminal)
//	DELETE /campaigns/{id}           cancel the remaining cells
//	GET    /campaigns/{id}/stream    NDJSON cell results in deterministic cell order
//	GET    /campaigns/{id}/table     text comparison table (?rows=&cols=&metric=)
func (m *Manager) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("campaign: bad spec: %w", err))
			return
		}
		c, err := m.Submit(spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, m.Progress(c))
	})

	mux.HandleFunc("GET /campaigns", func(w http.ResponseWriter, r *http.Request) {
		m.mu.Lock()
		ids := append([]string(nil), m.order...)
		m.mu.Unlock()
		views := make([]Progress, 0, len(ids))
		for _, id := range ids {
			if c, ok := m.Campaign(id); ok {
				views = append(views, m.Progress(c))
			}
		}
		writeJSON(w, http.StatusOK, views)
	})

	mux.HandleFunc("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if r.URL.Query().Get("wait") != "" {
			p, err := m.Wait(r.Context(), id)
			if err != nil {
				writeError(w, http.StatusNotFound, err)
				return
			}
			writeJSON(w, http.StatusOK, p)
			return
		}
		c, ok := m.Campaign(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("campaign: no campaign %q", id))
			return
		}
		writeJSON(w, http.StatusOK, m.Progress(c))
	})

	mux.HandleFunc("DELETE /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		cancelled, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"cancelled": cancelled})
	})

	mux.HandleFunc("GET /campaigns/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		err := m.StreamResults(r.Context(), r.PathValue("id"), func(res CellResult) error {
			if err := enc.Encode(res); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})
		if err != nil && r.Context().Err() == nil && !errors.Is(err, ErrCampaignEvicted) {
			// Only the ID-lookup error arrives before any bytes are out;
			// an eviction mid-tail just ends the NDJSON stream.
			writeError(w, http.StatusNotFound, err)
		}
	})

	mux.HandleFunc("GET /campaigns/{id}/table", func(w http.ResponseWriter, r *http.Request) {
		c, ok := m.Campaign(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("campaign: no campaign %q", r.PathValue("id")))
			return
		}
		q := r.URL.Query()
		rows, cols, metric, err := ResolveTableAxes(m.Progress(c).Axes, q.Get("rows"), q.Get("cols"), q.Get("metric"))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		title := fmt.Sprintf("Campaign %s: %s by %s x %s", c.ID, metric, rows, cols)
		g, err := Table(title, c.Results(), rows, cols, metric)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(g.String()))
	})
}

// ResolveTableAxes applies the table endpoint's defaulting, shared with
// cmd/repro: empty rows/cols fall back to the campaign's first two
// axes, an empty metric to write_mbps.
func ResolveTableAxes(axes []string, rows, cols, metric string) (string, string, string, error) {
	if rows == "" || cols == "" {
		if len(axes) < 2 {
			return "", "", "", fmt.Errorf("campaign: table needs two axes (campaign has %d); pass rows= and cols=", len(axes))
		}
		if rows == "" {
			rows = axes[0]
		}
		if cols == "" {
			for _, ax := range axes {
				if ax != rows {
					cols = ax
					break
				}
			}
		}
	}
	if metric == "" {
		metric = "write_mbps"
	}
	return rows, cols, metric, nil
}
