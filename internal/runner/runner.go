// Package runner executes independent simulation specs on a worker pool.
// Every sim.Engine is single-threaded, but distinct engines share
// nothing, so a batch of experiments — one device, one workload, one
// seed each — is embarrassingly parallel. The runner fans specs out
// across GOMAXPROCS goroutines and returns results in spec order, never
// completion order, so a batch's output is byte-identical regardless of
// worker count.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Spec describes one independent simulation: identity metadata (name,
// device profile, workload, seed) plus the closure that builds and runs
// it. Run must not share mutable state with any other spec; it typically
// constructs a fresh device on a fresh engine, drives a workload, and
// returns the measurement.
type Spec[T any] struct {
	// Name identifies the spec in errors and progress output.
	Name string
	// Profile and Workload label the device profile and workload driven,
	// for reporting; the runner does not interpret them.
	Profile, Workload string
	// Seed is the random seed the spec runs with, for reporting.
	Seed int64
	// Run executes the simulation.
	Run func() (T, error)
}

// Outcome pairs a spec with what happened when it ran.
type Outcome[T any] struct {
	// Name echoes the spec's Name.
	Name string
	// Value is the spec's result; zero if Err is set.
	Value T
	// Err is the spec's failure, if any.
	Err error
	// Elapsed is wall-clock execution time (diagnostic only; simulated
	// time lives inside Value).
	Elapsed time.Duration
}

// Options configures a batch.
type Options struct {
	// Workers caps concurrency; <= 0 means DefaultWorkers().
	Workers int
	// OnStart, if set, is called as each spec begins executing. It runs
	// on worker goroutines and must be safe for concurrent use.
	OnStart func(name string)
}

// defaultWorkers overrides the GOMAXPROCS default when positive.
var defaultWorkers atomic.Int32

// DefaultWorkers reports the worker count used when Options.Workers is
// unset: SetDefaultWorkers' value if positive, else GOMAXPROCS.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetDefaultWorkers sets the process-wide default worker count; n <= 0
// restores the GOMAXPROCS default.
func SetDefaultWorkers(n int) { defaultWorkers.Store(int32(n)) }

// RunAll executes every spec and returns one Outcome per spec, index-
// aligned with the input. Specs are claimed in order but may finish in
// any order; the returned slice's order never depends on timing.
func RunAll[T any](specs []Spec[T], opts Options) []Outcome[T] {
	workers := opts.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	out := make([]Outcome[T], len(specs))
	if len(specs) == 0 {
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				s := specs[i]
				if opts.OnStart != nil {
					opts.OnStart(s.Name)
				}
				start := time.Now()
				v, err := s.Run()
				if err != nil {
					// Enforce the zero-on-error contract even when Run
					// returns a partial value alongside its error.
					var zero T
					v = zero
				}
				out[i] = Outcome[T]{Name: s.Name, Value: v, Err: err, Elapsed: time.Since(start)}
			}
		}()
	}
	wg.Wait()
	return out
}

// describe renders a spec's identity for error messages.
func (s *Spec[T]) describe() string {
	out := fmt.Sprintf("%q", s.Name)
	if s.Profile != "" {
		out += " profile=" + s.Profile
	}
	if s.Workload != "" {
		out += " workload=" + s.Workload
	}
	return fmt.Sprintf("%s seed=%d", out, s.Seed)
}

// Run executes every spec and returns the values in spec order. If any
// spec fails, it returns the first failure by spec order (deterministic
// even when a later-indexed spec fails first in wall time), identified
// by the spec's name, profile, workload, and seed.
func Run[T any](specs []Spec[T], opts Options) ([]T, error) {
	outs := RunAll(specs, opts)
	vals := make([]T, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			return nil, fmt.Errorf("runner: spec %s: %w", specs[i].describe(), o.Err)
		}
		vals[i] = o.Value
	}
	return vals, nil
}
