package experiments

import (
	"ossd/internal/core"
	"ossd/internal/runner"
	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/stats"
	"ossd/internal/trace"
	"ossd/internal/workload"
)

// SWTFResult reproduces the §3.2 scheduling analysis: SWTF vs FCFS on a
// random workload with 2/3 reads and 1/3 writes. The paper reports an ~8%
// response-time improvement.
type SWTFResult struct {
	FCFSMeanMs, SWTFMeanMs float64
	ImprovementPct         float64
}

// ID implements Result.
func (SWTFResult) ID() string { return "swtf" }

func (r SWTFResult) String() string {
	t := stats.NewTable("Section 3.2: SWTF vs FCFS scheduling",
		"Scheduler", "MeanResponse(ms)")
	t.AddRow("FCFS", r.FCFSMeanMs)
	t.AddRow("SWTF", r.SWTFMeanMs)
	t.AddNote("SWTF improvement: %.2f%% (paper: ~8%%)", r.ImprovementPct)
	return t.String()
}

// SWTFOptions tunes the experiment.
type SWTFOptions struct {
	// Ops is the number of requests (default 60000).
	Ops int
	// MeanInterarrival controls load (default 110 us: the highest load at
	// which strict in-order dispatch is still stable on the 8-element
	// device, which is where the FCFS/SWTF contrast is sharpest without
	// queue blow-up).
	MeanInterarrival sim.Time
	// Seed drives the workload.
	Seed int64
	// Workers caps the worker pool (0 = runner default).
	Workers int
}

func (o *SWTFOptions) defaults() {
	if o.Ops == 0 {
		o.Ops = 60000
	}
	if o.MeanInterarrival == 0 {
		o.MeanInterarrival = 110 * sim.Microsecond
	}
}

func swtfDevice(policy sched.Policy) (*core.SSD, error) {
	d, err := core.Open("S4slc_sim", core.WithScheduler(policy))
	if err != nil {
		return nil, err
	}
	return d.(*core.SSD), nil
}

// SWTF runs the comparison: identical trace, fresh preconditioned device
// per scheduler.
func SWTF(opts SWTFOptions) (SWTFResult, error) {
	opts.defaults()
	var res SWTFResult
	run := func(policy sched.Policy) (float64, error) {
		d, err := swtfDevice(policy)
		if err != nil {
			return 0, err
		}
		// 70% fill: the scheduling comparison wants queueing contrast, not
		// garbage-collection interference (§3.2 predates the cleaning
		// analysis; the paper studies the schedulers in isolation).
		if err := core.PreconditionFrac(d, 1<<20, 0.7); err != nil {
			return 0, err
		}
		stream, err := workload.Synthetic(workload.SyntheticConfig{
			Ops:            opts.Ops,
			AddressSpace:   int64(float64(d.LogicalBytes()) * 0.7),
			ReadFrac:       2.0 / 3,
			ReqSize:        4096,
			InterarrivalLo: 0,
			InterarrivalHi: 2 * opts.MeanInterarrival,
			Seed:           opts.Seed,
		})
		if err != nil {
			return 0, err
		}
		// Offset timestamps past the precondition window.
		if err := d.Drive(trace.Shift(stream, d.Engine().Now())); err != nil {
			return 0, err
		}
		m := d.Raw.Metrics()
		// Overall mean across reads and writes, excluding preconditioning
		// (preconditioning used a fresh device; its writes are counted in
		// the same histogram, so weigh them out by sampling only the
		// trace's volume — the precondition ops are sequential 1 MB
		// writes; their count is small relative to Ops).
		total := float64(m.ReadResp.N())*m.ReadResp.Mean() + float64(m.WriteResp.N())*m.WriteResp.Mean()
		return total / float64(m.ReadResp.N()+m.WriteResp.N()), nil
	}
	specs := []runner.Spec[float64]{
		{Name: "swtf/fcfs", Profile: "S4slc_sim", Seed: opts.Seed,
			Run: func() (float64, error) { return run(sched.FCFS) }},
		{Name: "swtf/swtf", Profile: "S4slc_sim", Seed: opts.Seed,
			Run: func() (float64, error) { return run(sched.SWTF) }},
	}
	means, err := runner.Run(specs, runner.Options{Workers: opts.Workers})
	if err != nil {
		return res, err
	}
	res.FCFSMeanMs, res.SWTFMeanMs = means[0], means[1]
	res.ImprovementPct = stats.Improvement(res.FCFSMeanMs, res.SWTFMeanMs)
	return res, nil
}
