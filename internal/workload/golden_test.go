package workload

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"

	"ossd/internal/sim"
	"ossd/internal/trace"
)

// opsHash fingerprints a trace so the stream redesign can be pinned to
// the exact sequences the slice-era generators produced.
func opsHash(ops []trace.Op) uint64 {
	h := fnv.New64a()
	for _, o := range ops {
		fmt.Fprintf(h, "%d|%d|%d|%d|%v\n", int64(o.At), o.Kind, o.Offset, o.Size, o.Priority)
	}
	return h.Sum64()
}

// The golden counts and FNV-1a hashes below were captured from the
// legacy slice-returning generators immediately before the stream
// redesign. They pin both properties the migration promised: the
// streams produce op-for-op what the slices did, and the …Ops adapters
// are exact.
func TestGeneratorsMatchLegacyGolden(t *testing.T) {
	cases := []struct {
		name   string
		stream func() (trace.Stream, error)
		ops    int
		hash   uint64
	}{
		{
			name: "synthetic",
			stream: func() (trace.Stream, error) {
				return Synthetic(SyntheticConfig{
					Ops: 5000, AddressSpace: 1 << 24, ReqSize: 4096, ReadFrac: 0.66,
					SeqProb: 0.3, PriorityFrac: 0.1,
					InterarrivalLo: 0, InterarrivalHi: 100 * sim.Microsecond, Seed: 42,
				})
			},
			ops:  5000,
			hash: 0x1af91677686111ac,
		},
		{
			name: "postmark",
			stream: func() (trace.Stream, error) {
				return Postmark(PostmarkConfig{
					Transactions: 3000, InitialFiles: 100, CapacityBytes: 64 << 20,
					MeanInterarrival: 200 * sim.Microsecond, Seed: 42,
				})
			},
			ops:  7444,
			hash: 0x133f255a51170293,
		},
		{
			name: "tpcc",
			stream: func() (trace.Stream, error) {
				return TPCC(OLTPConfig{
					Ops: 4000, CapacityBytes: 128 << 20,
					MeanInterarrival: 50 * sim.Microsecond, Seed: 42,
				})
			},
			ops:  5025,
			hash: 0xeae119e8537b7994,
		},
		{
			name: "exchange",
			stream: func() (trace.Stream, error) {
				return Exchange(ExchangeConfig{
					Ops: 4000, CapacityBytes: 128 << 20,
					MeanInterarrival: 50 * sim.Microsecond, Seed: 42,
				})
			},
			ops:  4612,
			hash: 0xa34dea3dff86cc71,
		},
		{
			name: "iozone",
			stream: func() (trace.Stream, error) {
				return IOzone(IOzoneConfig{
					FileBytes: 8 << 20, RecordBytes: 128 << 10,
					MeanInterarrival: 100 * sim.Microsecond, Seed: 42,
				})
			},
			ops:  256,
			hash: 0xd8d7f6e662d7b9e7,
		},
		{
			name: "seqwrites",
			stream: func() (trace.Stream, error) {
				return SequentialWrites(500, 1<<20, 64<<20), nil
			},
			ops:  500,
			hash: 0xa6c748873bb4dc7,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := tc.stream()
			if err != nil {
				t.Fatal(err)
			}
			got := trace.Collect(s)
			if len(got) != tc.ops {
				t.Fatalf("stream produced %d ops, legacy produced %d", len(got), tc.ops)
			}
			if h := opsHash(got); h != tc.hash {
				t.Fatalf("stream hash %#x, legacy hash %#x — sequence diverged", h, tc.hash)
			}
		})
	}
}

// The …Ops adapters must be exactly Collect(stream) for the same config.
func TestOpsAdaptersEqualCollectedStreams(t *testing.T) {
	syn := SyntheticConfig{
		Ops: 1000, AddressSpace: 1 << 22, ReqSize: 4096, ReadFrac: 0.5,
		SeqProb: 0.4, InterarrivalHi: 50 * sim.Microsecond, Seed: 9,
	}
	s1, err := Synthetic(syn)
	if err != nil {
		t.Fatal(err)
	}
	o1, err := SyntheticOps(syn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trace.Collect(s1), o1) {
		t.Fatal("synthetic adapter diverged from stream")
	}

	pm := PostmarkConfig{Transactions: 800, InitialFiles: 30, CapacityBytes: 32 << 20, Seed: 9}
	s2, err := Postmark(pm)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := PostmarkOps(pm)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trace.Collect(s2), o2) {
		t.Fatal("postmark adapter diverged from stream")
	}

	oc := OLTPConfig{Ops: 800, CapacityBytes: 64 << 20, Seed: 9}
	s3, err := TPCC(oc)
	if err != nil {
		t.Fatal(err)
	}
	o3, err := TPCCOps(oc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trace.Collect(s3), o3) {
		t.Fatal("tpcc adapter diverged from stream")
	}

	ec := ExchangeConfig{Ops: 800, CapacityBytes: 64 << 20, Seed: 9}
	s4, err := Exchange(ec)
	if err != nil {
		t.Fatal(err)
	}
	o4, err := ExchangeOps(ec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trace.Collect(s4), o4) {
		t.Fatal("exchange adapter diverged from stream")
	}

	ic := IOzoneConfig{FileBytes: 2 << 20, Seed: 9}
	s5, err := IOzone(ic)
	if err != nil {
		t.Fatal(err)
	}
	o5, err := IOzoneOps(ic)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trace.Collect(s5), o5) {
		t.Fatal("iozone adapter diverged from stream")
	}

	if !reflect.DeepEqual(trace.Collect(SequentialWrites(40, 1<<20, 8<<20)), SequentialWritesOps(40, 1<<20, 8<<20)) {
		t.Fatal("seqwrites adapter diverged from stream")
	}
}

// Pulling a stream twice must not re-run generation: streams are
// single-use and exhausted streams stay exhausted.
func TestStreamsAreSingleUse(t *testing.T) {
	s, err := Synthetic(SyntheticConfig{Ops: 10, AddressSpace: 1 << 20, ReqSize: 4096, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := trace.Collect(s); len(got) != 10 {
		t.Fatalf("first drain: %d", len(got))
	}
	if got := trace.Collect(s); len(got) != 0 {
		t.Fatalf("second drain yielded %d ops", len(got))
	}
}
