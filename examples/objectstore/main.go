// Objectstore: the paper's proposal in action. An object-based interface
// in front of the SSD lets the device do block management: object writes
// are allocated stripe-aligned (no read-modify-write), and object deletes
// release pages to the FTL so cleaning skips dead data.
//
// The demo stores a churn of small "mailbox" objects, deletes half of
// them, then drives the device into cleaning and shows how much less work
// the informed cleaner does compared to a device that never learns about
// the deletions.
package main

import (
	"fmt"
	"log"

	"ossd/internal/core"
	"ossd/internal/flash"
	"ossd/internal/osd"
	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/ssd"
)

func buildStore(informed bool) (*core.SSD, *osd.Store) {
	d, err := core.Open("ssd",
		core.WithSSD(ssd.Config{
			Elements:      4,
			Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 64, BlocksPerPackage: 64},
			Overprovision: 0.12,
			Layout:        ssd.FullStripe,
			StripeBytes:   4 * 4096,
			Scheduler:     sched.SWTF,
			CtrlOverhead:  10 * sim.Microsecond,
			GCLow:         0.05,
			GCCritical:    0.02,
		}),
		core.WithInformed(informed),
	)
	if err != nil {
		log.Fatal(err)
	}
	dev := d.(*core.SSD)
	store, err := osd.New(dev.Raw)
	if err != nil {
		log.Fatal(err)
	}
	return dev, store
}

// churn fills the store with objects, deletes every other one, and then
// rewrites survivors until the device has to clean.
func churn(dev *core.SSD, store *osd.Store) {
	eng := dev.Engine()
	objSize := 4 * store.AllocationUnit()
	n := int(dev.LogicalBytes() / objSize * 8 / 10)
	ids := make([]osd.ObjectID, 0, n)
	for i := 0; i < n; i++ {
		id := store.Create(osd.Attributes{})
		if err := store.Write(id, 0, objSize, nil); err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}
	eng.Run()
	// Delete half: with an object interface the device learns exactly
	// which pages died.
	for i := 0; i < n; i += 2 {
		if err := store.Delete(ids[i]); err != nil {
			log.Fatal(err)
		}
	}
	eng.Run()
	// Rewrite the survivors a few times to force cleaning.
	for round := 0; round < 6; round++ {
		for i := 1; i < n; i += 2 {
			if err := store.Write(ids[i], 0, objSize, nil); err != nil {
				log.Fatal(err)
			}
		}
		eng.Run()
	}
}

func main() {
	for _, informed := range []bool{false, true} {
		dev, store := buildStore(informed)
		churn(dev, store)
		g := dev.Raw.GCStats()
		st := store.Stats()
		mode := "block-device (frees ignored)"
		if informed {
			mode = "object-based (informed cleaning)"
		}
		fmt.Printf("%-34s objects=%d deleted=%d\n", mode, st.Objects, st.Deleted)
		fmt.Printf("  cleaning: %d passes, %d pages moved, %v spent\n",
			g.Cleans, g.PagesMoved, g.CleanTime)
		fmt.Printf("  rmw reads during writes: %d (stripe-aligned allocation keeps this at 0)\n\n",
			g.HostPageReads)
	}
	fmt.Println("the informed device moves fewer pages for the same workload —")
	fmt.Println("that is Table 5 of the paper, driven through the OSD interface.")
}
