package fsmodel

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func newFS(t *testing.T, blocks int64) *FS {
	t.Helper()
	fs, err := New(blocks*4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4096); err == nil {
		t.Error("accepted zero capacity")
	}
	if _, err := New(4096, 0); err == nil {
		t.Error("accepted zero block size")
	}
	fs := newFS(t, 100)
	if fs.Blocks() != 100 || fs.FreeBlocks() != 100 || fs.BlockSize() != 4096 {
		t.Fatalf("geometry: %d %d %d", fs.Blocks(), fs.FreeBlocks(), fs.BlockSize())
	}
}

func TestCreateAppendDelete(t *testing.T) {
	fs := newFS(t, 100)
	id := fs.Create()
	if !fs.Exists(id) {
		t.Fatal("created file missing")
	}
	got, err := fs.Append(id, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Count != 10 {
		t.Fatalf("fresh FS should allocate one extent: %v", got)
	}
	if fs.FreeBlocks() != 90 {
		t.Fatalf("free = %d", fs.FreeBlocks())
	}
	sz, err := fs.SizeBlocks(id)
	if err != nil || sz != 10 {
		t.Fatalf("size = %d, %v", sz, err)
	}
	freed, err := fs.Delete(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(freed) != 1 || freed[0].Count != 10 {
		t.Fatalf("freed extents: %v", freed)
	}
	if fs.FreeBlocks() != 100 || fs.Exists(id) {
		t.Fatal("delete did not reclaim")
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	fs := newFS(t, 10)
	if _, err := fs.Append(999, 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("append missing file: %v", err)
	}
	if _, err := fs.Delete(999); !errors.Is(err, ErrNotFound) {
		t.Errorf("delete missing file: %v", err)
	}
	id := fs.Create()
	if _, err := fs.Append(id, 0); !errors.Is(err, ErrBadRequest) {
		t.Errorf("zero append: %v", err)
	}
	if _, err := fs.Append(id, 11); !errors.Is(err, ErrNoSpace) {
		t.Errorf("oversized append: %v", err)
	}
	if _, err := fs.Extents(999); !errors.Is(err, ErrNotFound) {
		t.Errorf("extents missing file: %v", err)
	}
	if _, err := fs.SizeBlocks(999); !errors.Is(err, ErrNotFound) {
		t.Errorf("size missing file: %v", err)
	}
}

func TestFragmentedAllocation(t *testing.T) {
	fs := newFS(t, 12)
	a := fs.Create()
	b := fs.Create()
	// Interleave allocations so deleting a leaves holes.
	for i := 0; i < 3; i++ {
		if _, err := fs.Append(a, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Append(b, 2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs.Delete(a); err != nil {
		t.Fatal(err)
	}
	c := fs.Create()
	got, err := fs.Append(c, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 2 {
		t.Fatalf("expected fragmented allocation, got %v", got)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNextFitRotates(t *testing.T) {
	fs := newFS(t, 100)
	a := fs.Create()
	fs.Append(a, 10)
	fs.Delete(a)
	b := fs.Create()
	got, err := fs.Append(b, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Next-fit resumes past the first allocation instead of reusing it
	// immediately.
	if got[0].Start == 0 {
		t.Fatalf("next-fit reused blocks immediately: %v", got)
	}
}

func TestMergeExtents(t *testing.T) {
	in := []Extent{{Start: 10, Count: 5}, {Start: 0, Count: 5}, {Start: 5, Count: 5}, {Start: 20, Count: 1}}
	want := []Extent{{Start: 0, Count: 15}, {Start: 20, Count: 1}}
	if got := MergeExtents(in); !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeExtents = %v, want %v", got, want)
	}
	if MergeExtents(nil) != nil {
		t.Fatal("empty merge not nil")
	}
	// Overlapping extents collapse.
	over := []Extent{{Start: 0, Count: 10}, {Start: 5, Count: 3}}
	if got := MergeExtents(over); len(got) != 1 || got[0].Count != 10 {
		t.Fatalf("overlap merge = %v", got)
	}
}

func TestExtentBytes(t *testing.T) {
	off, size := Extent{Start: 3, Count: 2}.Bytes(4096)
	if off != 3*4096 || size != 2*4096 {
		t.Fatalf("Bytes = %d, %d", off, size)
	}
}

// Property: any sequence of create/append/delete keeps the bitmap, free
// count, and extent ownership consistent, and blocks are never shared.
func TestFSInvariantProperty(t *testing.T) {
	prop := func(ops []uint16) bool {
		fs, err := New(256*4096, 4096)
		if err != nil {
			return false
		}
		var ids []FileID
		for _, op := range ops {
			switch op % 3 {
			case 0:
				ids = append(ids, fs.Create())
			case 1:
				if len(ids) == 0 {
					continue
				}
				id := ids[int(op>>2)%len(ids)]
				n := int64(op>>8)%8 + 1
				if _, err := fs.Append(id, n); err != nil &&
					!errors.Is(err, ErrNoSpace) && !errors.Is(err, ErrNotFound) {
					return false
				}
			case 2:
				if len(ids) == 0 {
					continue
				}
				i := int(op>>2) % len(ids)
				if _, err := fs.Delete(ids[i]); err != nil && !errors.Is(err, ErrNotFound) {
					return false
				}
				ids = append(ids[:i], ids[i+1:]...)
			}
		}
		return fs.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(23))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Append returns extents whose total equals the request, and
// they are disjoint from all other live extents.
func TestAppendExactProperty(t *testing.T) {
	prop := func(sizes []uint8) bool {
		fs, err := New(1024*4096, 4096)
		if err != nil {
			return false
		}
		owned := map[int64]bool{}
		for _, s := range sizes {
			n := int64(s)%16 + 1
			id := fs.Create()
			got, err := fs.Append(id, n)
			if errors.Is(err, ErrNoSpace) {
				return true
			}
			if err != nil {
				return false
			}
			var total int64
			for _, e := range got {
				total += e.Count
				for b := e.Start; b < e.Start+e.Count; b++ {
					if owned[b] {
						return false
					}
					owned[b] = true
				}
			}
			if total != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(29))}); err != nil {
		t.Fatal(err)
	}
}
