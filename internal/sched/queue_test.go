package sched

import (
	"math/rand"
	"testing"

	"ossd/internal/sim"
)

func TestQueueFCFSOrderAndBlocking(t *testing.T) {
	q := NewQueue(FCFS, 2)
	a := q.Push([]int{0}, "a")
	b := q.Push([]int{1}, "b")
	if a != 1 || b != 2 {
		t.Fatalf("seqs = %d, %d, want 1, 2", a, b)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	// Head targets a busy element: FCFS must stall even though the
	// second request's element is idle.
	q.SetBusy(0, 100)
	if data, ok := q.Pop(10); ok {
		t.Fatalf("FCFS dispatched %v past a blocked head", data)
	}
	// Head clears: both dispatch, in arrival order.
	if data, ok := q.Pop(100); !ok || data != "a" {
		t.Fatalf("Pop = %v, %v, want a", data, ok)
	}
	if data, ok := q.Pop(100); !ok || data != "b" {
		t.Fatalf("Pop = %v, %v, want b", data, ok)
	}
	if _, ok := q.Pop(100); ok || q.Len() != 0 {
		t.Fatal("queue not empty after draining")
	}
}

func TestQueueSWTFBypassAndTieBreak(t *testing.T) {
	q := NewQueue(SWTF, 2)
	q.SetBusy(0, 100)
	q.Push([]int{0}, "blocked")
	q.Push([]int{1}, "bypass")
	// SWTF bypasses the blocked head to the idle element.
	if data, ok := q.Pop(10); !ok || data != "bypass" {
		t.Fatalf("Pop = %v, %v, want bypass", data, ok)
	}
	if _, ok := q.Pop(10); ok {
		t.Fatal("dispatched onto a busy element")
	}
	// Element 0 clears; the parked request dispatches.
	if data, ok := q.Pop(100); !ok || data != "blocked" {
		t.Fatalf("Pop = %v, %v, want blocked", data, ok)
	}

	// Equal waits tie-break by arrival order.
	q2 := NewQueue(SWTF, 2)
	q2.Push([]int{1}, "first")
	q2.Push([]int{0}, "second")
	if data, ok := q2.Pop(0); !ok || data != "first" {
		t.Fatalf("tie Pop = %v, %v, want first", data, ok)
	}
}

func TestQueueSetBusyMonotone(t *testing.T) {
	q := NewQueue(SWTF, 1)
	q.SetBusy(0, 50)
	q.SetBusy(0, 30) // horizons only grow
	if got := q.Busy(0); got != 50 {
		t.Fatalf("Busy = %v, want 50", got)
	}
	if q.Idle(0, 49) || !q.Idle(0, 50) {
		t.Fatal("Idle threshold wrong")
	}
}

func TestQueueMultiElementParking(t *testing.T) {
	q := NewQueue(SWTF, 3)
	q.SetBusy(1, 30)
	q.Push([]int{0, 1, 2}, "striped")
	q.Push([]int{2}, "single")
	// The striped request waits on element 1; the single dispatches.
	if data, ok := q.Pop(0); !ok || data != "single" {
		t.Fatalf("Pop = %v, %v, want single", data, ok)
	}
	// Element 2 now busy from... no, Pop does not mark busy; mark it.
	q.SetBusy(2, 60)
	// At 30 element 1 clears but 2 is busy: striped re-parks.
	if _, ok := q.Pop(30); ok {
		t.Fatal("striped dispatched with element 2 busy")
	}
	if data, ok := q.Pop(60); !ok || data != "striped" {
		t.Fatalf("Pop = %v, %v, want striped", data, ok)
	}
}

// legacyQueue replays the scan-era dispatch machinery exactly: a pending
// slice re-scanned with Pick and compacted by index on every dispatch.
type legacyQueue struct {
	policy    Policy
	pending   []*Entry
	data      map[uint64]int // seq -> pushed id
	busyUntil []sim.Time
	seq       uint64
}

func newLegacy(policy Policy, elements int) *legacyQueue {
	return &legacyQueue{
		policy:    policy,
		data:      map[uint64]int{},
		busyUntil: make([]sim.Time, elements),
	}
}

func (l *legacyQueue) push(elems []int, id int) {
	l.seq++
	l.pending = append(l.pending, &Entry{Elems: append([]int(nil), elems...), Seq: l.seq})
	l.data[l.seq] = id
}

func (l *legacyQueue) pop(now sim.Time) (int, bool) {
	idx := Pick(l.policy, l.pending, l.busyUntil, now)
	if idx < 0 {
		return 0, false
	}
	e := l.pending[idx]
	l.pending = append(l.pending[:idx], l.pending[idx+1:]...)
	return l.data[e.Seq], true
}

// serviceTime is the deterministic per-(request, element) busy duration
// both models apply on dispatch.
func serviceTime(id, elem int) sim.Time {
	return sim.Time(1 + (id*31+elem*7)%53)
}

// TestQueueEquivalence drives the indexed Queue and the legacy Pick scan
// through identical randomized workloads — both policies, a mix of
// single- and multi-element requests over several elements, interleaved
// arrivals, dispatches, and time advances — and requires the dispatch
// sequences to match op-for-op. This is the refactor's determinism
// contract: the index may change the complexity, never the schedule.
func TestQueueEquivalence(t *testing.T) {
	const elements = 4
	for _, policy := range []Policy{FCFS, SWTF} {
		t.Run(policy.String(), func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				rng := rand.New(rand.NewSource(int64(trial)*100 + int64(policy)))
				q := NewQueue(policy, elements)
				l := newLegacy(policy, elements)
				elemsOf := map[int][]int{} // id -> element set
				now := sim.Time(0)
				id := 0
				for step := 0; step < 400; step++ {
					// Arrivals: 0..3 requests with 1..3 distinct elements.
					for n := rng.Intn(4); n > 0; n-- {
						k := 1 + rng.Intn(3)
						perm := rng.Perm(elements)[:k]
						elemsOf[id] = perm
						q.Push(perm, id)
						l.push(perm, id)
						id++
					}
					// Dispatch everything dispatchable, applying identical
					// busy horizons on both sides after each dispatch.
					for {
						got, ok := q.Pop(now)
						wid, wok := l.pop(now)
						if ok != wok {
							t.Fatalf("trial %d step %d: queue ok=%v legacy ok=%v", trial, step, ok, wok)
						}
						if !ok {
							break
						}
						if got.(int) != wid {
							t.Fatalf("trial %d step %d: queue dispatched %v, legacy %d", trial, step, got, wid)
						}
						for _, e := range elemsOf[got.(int)] {
							until := now + serviceTime(got.(int), e)
							q.SetBusy(e, until)
							if until > l.busyUntil[e] {
								l.busyUntil[e] = until
							}
						}
					}
					// Advance time: small step or jump to the next horizon.
					if rng.Intn(3) == 0 {
						var next sim.Time
						for e := 0; e < elements; e++ {
							if b := l.busyUntil[e]; b > now && (next == 0 || b < next) {
								next = b
							}
						}
						if next > now {
							now = next
							continue
						}
					}
					now += sim.Time(1 + rng.Intn(20))
				}
				if q.Len() != len(l.pending) {
					t.Fatalf("trial %d: queue len %d, legacy %d", trial, q.Len(), len(l.pending))
				}
			}
		})
	}
}

// TestQueuePopAllocFree pins the tentpole's allocation contract: a
// steady-state dispatch cycle (pop one, mark busy, push a replacement)
// allocates nothing once the item pool is warm.
func TestQueuePopAllocFree(t *testing.T) {
	const elements = 8
	type req struct{ elem int }
	q := NewQueue(SWTF, elements)
	elems := make([][]int, elements)
	reqs := make([]*req, elements)
	for e := 0; e < elements; e++ {
		elems[e] = []int{e}
		reqs[e] = &req{elem: e}
	}
	for i := 0; i < 1024; i++ {
		q.Push(elems[i%elements], reqs[i%elements])
	}
	now := sim.Time(0)
	i := 1024
	allocs := testing.AllocsPerRun(10000, func() {
		data, ok := q.Pop(now)
		if !ok {
			t.Fatal("steady-state pop failed")
		}
		e := data.(*req).elem
		q.SetBusy(e, now+1)
		q.Push(elems[i%elements], reqs[i%elements])
		i++
		now++
	})
	// The candidate heap and wake heap reach a steady size during warmup;
	// after that the cycle must be allocation-free.
	if allocs > 0 {
		t.Fatalf("dispatch cycle allocates %.1f times per op, want 0", allocs)
	}
}

// TestQueueDrain checks that Drain visits every queued request — ready,
// parked, and head-of-line blocked alike — in arrival order, empties the
// queue, and leaves busy horizons intact for the successor queue to copy.
func TestQueueDrain(t *testing.T) {
	for _, policy := range []Policy{FCFS, SWTF} {
		t.Run(policy.String(), func(t *testing.T) {
			q := NewQueue(policy, 4)
			q.SetBusy(1, 100) // park/block some of the requests below
			type req struct{ id int }
			var seqs []uint64
			for i := 0; i < 6; i++ {
				seqs = append(seqs, q.Push([]int{i % 4}, &req{id: i}))
			}
			if policy == SWTF {
				// Force parking: pops at time 0 dispatch the idle-element
				// requests' predecessors... actually just exercise the
				// index so items land in ready/blocked lists.
				q.Pop(0)
			}
			// Re-fill what the exercise popped.
			for q.Len() < 6 {
				seqs = append(seqs, q.Push([]int{1}, &req{id: 100 + q.Len()}))
			}
			var got []uint64
			var ids []int
			q.Drain(func(seq uint64, elems []int, data any) {
				got = append(got, seq)
				ids = append(ids, data.(*req).id)
			})
			if q.Len() != 0 {
				t.Fatalf("queue holds %d items after Drain", q.Len())
			}
			for i := 1; i < len(got); i++ {
				if got[i] <= got[i-1] {
					t.Fatalf("Drain out of order: seqs %v", got)
				}
			}
			if q.Busy(1) != 100 {
				t.Fatalf("Drain disturbed busy horizon: %v", q.Busy(1))
			}
			if _, ok := q.Pop(1000); ok {
				t.Fatal("drained queue still dispatches")
			}
			// The queue must remain usable after a drain.
			q.Push([]int{0}, &req{id: 7})
			if data, ok := q.Pop(1000); !ok || data.(*req).id != 7 {
				t.Fatal("post-drain push/pop broken")
			}
		})
	}
}
