// Command repro regenerates every table and figure from the paper's
// evaluation section. Experiments execute concurrently on a worker pool
// (and fan their own independent simulations out further); the report is
// assembled in experiment order, so its bytes are identical for a fixed
// seed regardless of worker count. With no flags it runs the full suite
// and prints each result in the paper's format; -run selects a subset;
// -json emits the machine-readable encoding instead of text tables.
//
// With -campaign it becomes a sweep client instead: the spec file (a
// JobSpec template plus axes) is POSTed to a running simd, progress is
// reported until the grid completes, and the results render as a
// comparison table across two axes — the same renderer the server's
// /table endpoint uses.
//
//	repro                  # everything
//	repro -run table2,figure3
//	repro -list            # show available experiments
//	repro -seed 7 -workers 4 -o report.txt
//	repro -run table2 -json -o report.json
//	repro -campaign sweep.json -addr localhost:8080 -rows params.seed -cols options.scheduler -metric write_mbps
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"ossd/internal/core"
	"ossd/internal/experiments"
	"ossd/internal/fault"
	"ossd/internal/runner"
	"ossd/internal/simsvc"
)

func main() {
	var (
		runList   = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		list      = flag.Bool("list", false, "list experiments and exit")
		seed      = flag.Int64("seed", 1, "random seed for workloads")
		workers   = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		outPath   = flag.String("o", "", "write the report to this file (default stdout)")
		asJSON    = flag.Bool("json", false, "emit machine-readable JSON results instead of text tables")
		shards    = flag.Int("shards", 0, "run shardable flash devices across this many engines (same report bytes; 0 = single-engine)")
		faultPath = flag.String("fault", "", "apply a fault plan (JSON file) to every device the experiments build")

		campaignSpec = flag.String("campaign", "", "drive a remote sweep: path to a campaign spec file (template + axes)")
		addr         = flag.String("addr", "localhost:8080", "simd address for -campaign")
		rows         = flag.String("rows", "", "table rows axis for -campaign (default: first axis)")
		cols         = flag.String("cols", "", "table cols axis for -campaign (default: second axis)")
		metric       = flag.String("metric", "", "table metric for -campaign, a dotted result path (default: write_mbps)")
	)
	flag.Parse()

	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "invalid -shards %d\n", *shards)
		os.Exit(2)
	}
	// Experiments build their devices internally, so the shard count
	// travels as the process default; non-shardable configurations fall
	// back to the single engine and the report bytes are identical
	// either way.
	core.SetDefaultShards(*shards)
	// A fault plan travels the same way: as the process default, picked up
	// by every device built without an explicit plan. Unlike -shards this
	// changes the report bytes — faults are simulation, not execution.
	if *faultPath != "" {
		plan, err := fault.Load(*faultPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		core.SetDefaultFault(plan)
	}

	cat := experiments.Catalog()
	if *list {
		for _, e := range cat {
			fmt.Printf("%-10s %s\n", e.ID, e.Description)
		}
		return
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	if *campaignSpec != "" {
		failed, err := runCampaign(out, campaignFlags{
			specPath: *campaignSpec,
			addr:     *addr,
			rows:     *rows,
			cols:     *cols,
			metric:   *metric,
			asJSON:   *asJSON,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	all := *runList == "all"
	for _, id := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(id)] = true
	}

	if !all {
		for id := range want {
			if id == "" {
				continue
			}
			if _, ok := experiments.CatalogEntryByID(id); !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
		}
	}

	var selected []experiments.CatalogEntry
	for _, e := range cat {
		if all || want[e.ID] {
			selected = append(selected, e)
		}
	}

	// Split the worker budget across the two fan-out levels so peak
	// concurrency stays bounded by the budget: up to `outer` experiments
	// run at once, each fanning its own specs across `inner` workers.
	// One experiment selected -> all workers go to its specs; many
	// selected -> experiments parallelize and their insides serialize.
	budget := *workers
	if budget <= 0 {
		budget = runner.DefaultWorkers()
	}
	outer := budget
	if outer > len(selected) {
		outer = len(selected)
	}
	if outer < 1 {
		outer = 1
	}
	inner := budget / outer
	if inner < 1 {
		inner = 1
	}
	var mu sync.Mutex
	specs := make([]runner.Spec[experiments.Result], len(selected))
	for i, e := range selected {
		e := e
		specs[i] = runner.Spec[experiments.Result]{
			Name: e.ID,
			Seed: *seed,
			Run:  func() (experiments.Result, error) { return e.Run(*seed, inner) },
		}
	}
	outcomes := runner.RunAll(specs, runner.Options{
		Workers: outer,
		OnStart: func(name string) {
			mu.Lock()
			fmt.Fprintf(os.Stderr, "running %s ...\n", name)
			mu.Unlock()
		},
	})

	// Timing goes to stderr only: the report must be byte-identical for a
	// fixed seed regardless of worker count or machine speed. Failures get
	// their own stderr line so they are visible even when the report goes
	// to a file (-o); the report body marks them too, and the process
	// exits non-zero below.
	for _, o := range outcomes {
		if o.Err != nil {
			fmt.Fprintf(os.Stderr, "%-10s FAILED after %.1fs: %v\n", o.Name, o.Elapsed.Seconds(), o.Err)
			continue
		}
		fmt.Fprintf(os.Stderr, "%-10s finished in %.1fs\n", o.Name, o.Elapsed.Seconds())
	}

	var failed bool
	if *asJSON {
		var err error
		failed, err = writeJSON(out, *seed, selected, outcomes)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		failed = writeText(out, *seed, selected, outcomes)
	}
	if failed {
		os.Exit(1)
	}
}

// writeText renders the report in the paper's text format. It reports
// whether any experiment failed. The byte-identity golden test hashes
// this writer's output, so the bytes for a fixed seed are a compatibility
// surface: change them deliberately, updating the goldens.
func writeText(out io.Writer, seed int64, selected []experiments.CatalogEntry, outcomes []runner.Outcome[experiments.Result]) bool {
	failed := false
	fmt.Fprintf(out, "Block Management in Solid-State Devices — reproduction report\n")
	fmt.Fprintf(out, "seed=%d\n\n", seed)
	for i, o := range outcomes {
		if o.Err != nil {
			fmt.Fprintf(out, "== %s FAILED: %v\n\n", o.Name, o.Err)
			failed = true
			continue
		}
		fmt.Fprintf(out, "== %s (%s)\n%s\n", o.Name, selected[i].Description, o.Value.String())
	}
	return failed
}

// writeJSON renders the machine-readable report (simsvc's encoding).
func writeJSON(out io.Writer, seed int64, selected []experiments.CatalogEntry, outcomes []runner.Outcome[experiments.Result]) (failed bool, err error) {
	results := make([]simsvc.ExperimentResult, len(outcomes))
	for i, o := range outcomes {
		results[i] = simsvc.ExperimentResult{
			Name:        selected[i].ID,
			Description: selected[i].Description,
			Seed:        seed,
		}
		if o.Err != nil {
			results[i].Error = o.Err.Error()
			failed = true
			continue
		}
		results[i].Report = o.Value.String()
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return failed, enc.Encode(results)
}
