package sched

import (
	"sort"

	"ossd/internal/sim"
)

// Queue is the stateful, indexed successor of the stateless Pick scan: a
// dispatch queue that knows each parallel element's busy horizon and
// answers "what dispatches now?" in O(log n) instead of rescanning (and
// reallocating) the whole pending set on every decision.
//
// The legacy Pick contract is preserved exactly — the equivalence test in
// queue_test.go pins the dispatch sequence op-for-op against Pick on
// randomized workloads:
//
//   - FCFS dispatches strictly in arrival order; if the head's elements
//     are busy nothing dispatches (head-of-line blocking). The index is an
//     intrusive FIFO: Pop inspects only the head.
//   - SWTF dispatches the request with the shortest wait, tie-broken by
//     arrival Seq, and only when that wait is zero. Since ties break by
//     Seq and dispatch happens only at wait zero, the winner is always
//     the lowest-Seq request whose elements are all idle; the index is a
//     Seq-keyed min-heap of dispatch candidates plus, per element, a list
//     of requests parked until that element's busy horizon passes. Pop
//     lazily re-parks stale candidates, so each request moves between
//     index structures O(1) times per element-release that concerns it.
//
// A Queue owns the busy horizons of its elements (the busyUntil vector
// the scan-era device kept by hand): media models mark elements busy with
// SetBusy and the queue wakes parked requests as the clock passes their
// horizons. Items are pooled and their payload slots cleared on Pop, so
// the queue neither allocates on the dispatch path nor pins completed
// requests for the garbage collector.
//
// Queues are not safe for concurrent use; like the sim.Engine that drives
// them, a queue belongs to a single simulation.
type Queue struct {
	policy    Policy
	busyUntil []sim.Time
	seq       uint64
	length    int

	// FCFS: intrusive doubly-linked arrival-order list.
	head, tail *item

	// SWTF: Seq-keyed min-heap of dispatch candidates, per-element parked
	// lists, and a min-heap of (horizon, element) wake records.
	ready   []*item
	blocked []*item // head of each element's parked list
	wakes   []wake

	// free is the item pool (singly linked through next).
	free *item
}

// item is one queued request: its element set, arrival sequence number,
// and the caller's payload, plus the intrusive index links.
type item struct {
	elems []int
	seq   uint64
	data  any

	prev, next *item // FIFO list (FCFS) or parked list (SWTF)
	heapIdx    int   // position in the ready heap; -1 when not in it
	parkedOn   int   // element this item waits on; -1 when a candidate
}

// wake records that an element's busy horizon ends at `at`; processing it
// then releases the element's parked requests. Horizons only move while
// an element is idle, so the record matching the current horizon is
// always present (stale records are skipped, never trusted).
type wake struct {
	at   sim.Time
	elem int
}

// NewQueue returns an empty queue dispatching under policy over the given
// number of parallel elements, all idle.
func NewQueue(policy Policy, elements int) *Queue {
	return &Queue{
		policy:    policy,
		busyUntil: make([]sim.Time, elements),
		blocked:   make([]*item, elements),
	}
}

// Policy reports the dispatch discipline.
func (q *Queue) Policy() Policy { return q.policy }

// Len reports the number of queued (not yet dispatched) requests.
func (q *Queue) Len() int { return q.length }

// Busy reports element e's busy horizon: the time at which it becomes
// available again (in the past or present when idle).
func (q *Queue) Busy(e int) sim.Time { return q.busyUntil[e] }

// Idle reports whether element e is available at now.
func (q *Queue) Idle(e int, now sim.Time) bool { return q.busyUntil[e] <= now }

// SetBusy marks element e busy until the given horizon. Horizons only
// grow: marking an element busy until a time before its current horizon
// is a no-op.
func (q *Queue) SetBusy(e int, until sim.Time) {
	if until <= q.busyUntil[e] {
		return
	}
	q.busyUntil[e] = until
	if q.policy == SWTF {
		q.pushWake(wake{at: until, elem: e})
	}
}

// Push enqueues a request occupying the given elements and returns its
// arrival sequence number. The element slice is copied into a pooled
// item; the caller may reuse it.
func (q *Queue) Push(elems []int, data any) uint64 {
	it := q.take()
	it.elems = append(it.elems[:0], elems...)
	q.seq++
	it.seq = q.seq
	it.data = data
	q.length++
	switch q.policy {
	case SWTF:
		// New arrivals enter as candidates; Pop demotes them lazily if
		// their elements turn out busy.
		q.heapPush(it)
	default: // FCFS: append to the arrival-order list.
		it.prev = q.tail
		if q.tail != nil {
			q.tail.next = it
		} else {
			q.head = it
		}
		q.tail = it
	}
	return it.seq
}

// wait is the legacy Entry.Wait over the queue's own busy horizons.
func (q *Queue) wait(it *item, now sim.Time) sim.Time {
	var w sim.Time
	for _, e := range it.elems {
		if b := q.busyUntil[e] - now; b > w {
			w = b
		}
	}
	return w
}

// Pop removes and returns the payload of the next dispatchable request,
// or (nil, false) if nothing may dispatch at now. It never allocates.
func (q *Queue) Pop(now sim.Time) (any, bool) {
	if q.policy == SWTF {
		return q.popSWTF(now)
	}
	it := q.head
	if it == nil || q.wait(it, now) != 0 {
		return nil, false
	}
	q.head = it.next
	if q.head != nil {
		q.head.prev = nil
	} else {
		q.tail = nil
	}
	return q.finishPop(it)
}

func (q *Queue) popSWTF(now sim.Time) (any, bool) {
	q.release(now)
	for len(q.ready) > 0 {
		it := q.ready[0]
		w := q.wait(it, now)
		if w == 0 {
			q.heapRemove(it)
			return q.finishPop(it)
		}
		// Stale candidate: park it on its latest-busy element; the wake
		// record for that element's horizon brings it back.
		q.heapRemove(it)
		q.park(it, now)
	}
	return nil, false
}

// finishPop detaches the payload and recycles the item.
func (q *Queue) finishPop(it *item) (any, bool) {
	data := it.data
	q.length--
	q.put(it)
	return data, true
}

// park attaches a non-dispatchable item to the busy element it must wait
// longest for.
func (q *Queue) park(it *item, now sim.Time) {
	worst, horizon := -1, sim.Time(0)
	for _, e := range it.elems {
		if b := q.busyUntil[e]; b > now && b > horizon {
			worst, horizon = e, b
		}
	}
	// wait > 0 guaranteed a busy element exists.
	it.parkedOn = worst
	it.prev = nil
	it.next = q.blocked[worst]
	if it.next != nil {
		it.next.prev = it
	}
	q.blocked[worst] = it
}

// release processes due wake records: every element whose horizon has
// passed gets its parked requests promoted back to candidates.
func (q *Queue) release(now sim.Time) {
	for len(q.wakes) > 0 && q.wakes[0].at <= now {
		w := q.popWake()
		if q.busyUntil[w.elem] > now {
			// Stale record: the element was re-marked busy; the newer
			// record carries its current horizon.
			continue
		}
		for it := q.blocked[w.elem]; it != nil; {
			next := it.next
			it.prev, it.next = nil, nil
			it.parkedOn = -1
			q.heapPush(it)
			it = next
		}
		q.blocked[w.elem] = nil
	}
}

// Drain removes every queued request — dispatchable or not — and visits
// each in arrival (Seq) order, ignoring busy horizons. The horizons
// themselves are left untouched. It exists for the sharded device's
// merge transition: a shard queue's contents are re-enqueued onto the
// gang-wide queue in global arrival order, so Drain is a rare-path
// operation and may allocate.
func (q *Queue) Drain(visit func(seq uint64, elems []int, data any)) {
	var items []*item
	for it := q.head; it != nil; it = it.next {
		items = append(items, it)
	}
	q.head, q.tail = nil, nil
	items = append(items, q.ready...)
	for i := range q.ready {
		q.ready[i] = nil
	}
	q.ready = q.ready[:0]
	for e, it := range q.blocked {
		for ; it != nil; it = it.next {
			items = append(items, it)
		}
		q.blocked[e] = nil
	}
	q.wakes = q.wakes[:0]
	sort.Slice(items, func(i, j int) bool { return items[i].seq < items[j].seq })
	for _, it := range items {
		visit(it.seq, it.elems, it.data)
		q.length--
		q.put(it)
	}
}

// ---- item pool ----

func (q *Queue) take() *item {
	if it := q.free; it != nil {
		q.free = it.next
		it.next = nil
		return it
	}
	return &item{heapIdx: -1, parkedOn: -1}
}

func (q *Queue) put(it *item) {
	it.data = nil // release the payload to the collector
	it.prev = nil
	it.heapIdx = -1
	it.parkedOn = -1
	it.next = q.free
	q.free = it
}

// ---- Seq-keyed candidate heap ----

func (q *Queue) heapPush(it *item) {
	it.heapIdx = len(q.ready)
	q.ready = append(q.ready, it)
	q.siftUp(it.heapIdx)
}

func (q *Queue) heapRemove(it *item) {
	i := it.heapIdx
	last := len(q.ready) - 1
	q.ready[i] = q.ready[last]
	q.ready[i].heapIdx = i
	q.ready[last] = nil
	q.ready = q.ready[:last]
	if i < last {
		q.siftDown(i)
		q.siftUp(i)
	}
	it.heapIdx = -1
}

func (q *Queue) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if q.ready[p].seq <= q.ready[i].seq {
			return
		}
		q.ready[p], q.ready[i] = q.ready[i], q.ready[p]
		q.ready[p].heapIdx, q.ready[i].heapIdx = p, i
		i = p
	}
}

func (q *Queue) siftDown(i int) {
	n := len(q.ready)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.ready[l].seq < q.ready[min].seq {
			min = l
		}
		if r < n && q.ready[r].seq < q.ready[min].seq {
			min = r
		}
		if min == i {
			return
		}
		q.ready[i], q.ready[min] = q.ready[min], q.ready[i]
		q.ready[i].heapIdx, q.ready[min].heapIdx = i, min
		i = min
	}
}

// ---- (horizon, element) wake heap ----

func (q *Queue) pushWake(w wake) {
	q.wakes = append(q.wakes, w)
	i := len(q.wakes) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q.wakes[p].at <= q.wakes[i].at {
			break
		}
		q.wakes[p], q.wakes[i] = q.wakes[i], q.wakes[p]
		i = p
	}
}

func (q *Queue) popWake() wake {
	w := q.wakes[0]
	last := len(q.wakes) - 1
	q.wakes[0] = q.wakes[last]
	q.wakes = q.wakes[:last]
	i, n := 0, last
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.wakes[l].at < q.wakes[min].at {
			min = l
		}
		if r < n && q.wakes[r].at < q.wakes[min].at {
			min = r
		}
		if min == i {
			break
		}
		q.wakes[i], q.wakes[min] = q.wakes[min], q.wakes[i]
		i = min
	}
	return w
}
