package ssd

import (
	"errors"
	"testing"

	"ossd/internal/fault"
	"ossd/internal/sim"
	"ossd/internal/trace"
)

// runGangFault mirrors runGang with a fault plan attached to the config.
func runGangFault(t *testing.T, shards int, plan *fault.Plan, ops []trace.Op) *Device {
	t.Helper()
	cfg := gangConfig()
	cfg.Fault = plan
	d, err := New(sim.NewEngine(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if shards >= 2 {
		if err := d.EnableSharding(shards); err != nil {
			t.Fatal(err)
		}
	}
	var off int64
	space := d.LogicalBytes() * 6 / 10
	err = d.ClosedLoop(1, func(int) (trace.Op, bool) {
		if off >= space {
			return trace.Op{}, false
		}
		op := trace.Op{Kind: trace.Write, Offset: off, Size: 1 << 16}
		off += 1 << 16
		return op, true
	})
	if err != nil {
		t.Fatal(err)
	}
	if shards >= 2 {
		err = d.DriveStream(trace.FromSlice(ops))
	} else {
		err = driveOps(d, ops)
	}
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// Injections are keyed by (seed, element, op-seq), never iteration
// order, so a fault-plan replay — transient errors, a mid-run element
// death, and wear-ceiling retirement all active — must match the single
// engine exactly at every shard count, including the fault counters.
func TestFaultShardEquivalence(t *testing.T) {
	logical := func() int64 {
		d, err := New(sim.NewEngine(), gangConfig())
		if err != nil {
			t.Fatal(err)
		}
		return d.LogicalBytes()
	}()
	plan := &fault.Plan{
		Seed:        99,
		Transient:   &fault.Transient{Rate: 0.01, Burst: 4, RetryUs: 400},
		Deaths:      []fault.Death{{Element: 5, AfterOps: 200}},
		WearCeiling: 1,
		RemapCostUs: 300,
	}
	for _, seed := range []int64{1, 7} {
		ops := gangWorkload(seed, 3000, logical, false)
		single := runGangFault(t, 1, plan, ops)
		sm := single.Metrics()
		if sm.FaultsInjected == 0 {
			t.Fatalf("seed %d: plan injected nothing", seed)
		}
		if sm.Errors == 0 {
			t.Fatalf("seed %d: element death produced no errors", seed)
		}
		if sm.RetiredBlocks == 0 {
			t.Fatalf("seed %d: wear ceiling retired nothing", seed)
		}
		for _, shards := range []int{2, 4, 8} {
			sharded := runGangFault(t, shards, plan, ops)
			t.Logf("seed %d shards %d", seed, shards)
			compareDevices(t, single, sharded)
			bm := sharded.Metrics()
			if sm.FaultsInjected != bm.FaultsInjected || sm.FaultRetries != bm.FaultRetries {
				t.Errorf("fault counters diverge: single %d/%d sharded %d/%d",
					sm.FaultsInjected, sm.FaultRetries, bm.FaultsInjected, bm.FaultRetries)
			}
			if sm.RetiredBlocks != bm.RetiredBlocks || sm.RemappedPages != bm.RemappedPages {
				t.Errorf("retirement counters diverge: single %d/%d sharded %d/%d",
					sm.RetiredBlocks, sm.RemappedPages, bm.RetiredBlocks, bm.RemappedPages)
			}
		}
	}
}

// A dead element fails every request that touches it, immediately and
// deterministically, while the rest of the gang keeps serving.
func TestElementDeathFailsRequests(t *testing.T) {
	cfg := gangConfig()
	cfg.Fault = &fault.Plan{Deaths: []fault.Death{{Element: 3, AfterOps: 0}}}
	d, err := New(sim.NewEngine(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var gotErr error
	// Page 3 lives on element 3 (interleaved: l mod 8).
	err = d.Submit(trace.Op{Kind: trace.Write, Offset: 3 * 4096, Size: 4096}, func(r *Request) {
		gotErr = r.Err
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Engine().Run()
	if !errors.Is(gotErr, fault.ErrElementDead) {
		t.Fatalf("request on dead element returned %v", gotErr)
	}
	m := d.Metrics()
	if m.Errors != 1 || m.Completed != 1 {
		t.Fatalf("errors %d completed %d, want 1/1", m.Errors, m.Completed)
	}
	// A healthy element still serves.
	gotErr = errors.New("callback never ran")
	err = d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 4096}, func(r *Request) {
		gotErr = r.Err
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Engine().Run()
	if gotErr != nil {
		t.Fatalf("healthy element failed: %v", gotErr)
	}
}

// Transient faults slow ops down (the retry cost) without failing them.
func TestTransientFaultsAddLatencyNotErrors(t *testing.T) {
	run := func(plan *fault.Plan) Metrics {
		cfg := gangConfig()
		cfg.Fault = plan
		d, err := New(sim.NewEngine(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			op := trace.Op{Kind: trace.Write, Offset: int64(i%64) * 4096, Size: 4096}
			if err := d.Submit(op, nil); err != nil {
				t.Fatal(err)
			}
			d.Engine().Run()
		}
		return d.Metrics()
	}
	clean := run(nil)
	faulty := run(&fault.Plan{Seed: 5, Transient: &fault.Transient{Rate: 0.05, RetryUs: 800}})
	if faulty.FaultsInjected == 0 {
		t.Fatalf("no faults injected at 5%% rate")
	}
	if faulty.Errors != 0 {
		t.Fatalf("transient faults produced %d hard errors", faulty.Errors)
	}
	if faulty.FaultRetries != faulty.FaultsInjected {
		t.Fatalf("retries %d != injected %d", faulty.FaultRetries, faulty.FaultsInjected)
	}
	if faulty.WriteResp.Mean() <= clean.WriteResp.Mean() {
		t.Fatalf("retry cost invisible: faulty mean %v <= clean %v",
			faulty.WriteResp.Mean(), clean.WriteResp.Mean())
	}
	if clean.FaultsInjected != 0 || clean.RetiredBlocks != 0 {
		t.Fatalf("clean run reports fault counters: %+v", clean)
	}
}
