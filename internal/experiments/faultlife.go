package experiments

import (
	"fmt"

	"ossd/internal/core"
	"ossd/internal/fault"
	"ossd/internal/flash"
	"ossd/internal/runner"
	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/ssd"
	"ossd/internal/stats"
	"ossd/internal/trace"
)

// FaultLife is an extension experiment for the fault subsystem: an
// accelerated-lifetime sweep. Each configuration attaches a fault plan
// with a progressively lower wear ceiling and drives the same skewed
// overwrite workload in segments, checkpointing the device between
// segments. Low ceilings retire blocks as cleaning crosses them; every
// retirement shrinks the spare pool, which intensifies cleaning, which
// retires more blocks — the wear-out cliff, visible as a monotonically
// growing retired-block count and degrading write tails, while the
// no-ceiling baseline stays flat.

// FaultLifePoint is one checkpoint of one configuration's run.
type FaultLifePoint struct {
	Ops        int64   // host writes driven so far
	Retired    int64   // blocks retired so far
	Remapped   int64   // pages relocated off retired blocks so far
	Errors     int64   // failed host ops so far (the cliff, once spare is gone)
	P99WriteMs float64 // write tail at this checkpoint
}

// FaultLifeResult is the sweep's outcome: per configuration, one point
// per checkpoint.
type FaultLifeResult struct {
	Configs []string
	Points  [][]FaultLifePoint
}

// ID implements Result.
func (FaultLifeResult) ID() string { return "faultlife" }

func (r FaultLifeResult) String() string {
	t := stats.NewTable("Extension: accelerated lifetime under wear ceilings (fault plans)",
		"Config", "Ops", "Retired", "Remapped", "Errors", "P99Write(ms)")
	for i := range r.Configs {
		for _, p := range r.Points[i] {
			t.AddRow(r.Configs[i], p.Ops, p.Retired, p.Remapped, p.Errors, p.P99WriteMs)
		}
	}
	t.AddNote("each retirement shrinks the spare pool and intensifies cleaning: the")
	t.AddNote("wear-out cliff accelerates as the ceiling drops; no ceiling stays flat.")
	return t.String()
}

// faultLifeDevice builds the sweep's device: small, interleaved, and
// shard-decomposable, with the configuration's wear ceiling carried on a
// fault plan (low-rate transient faults included, so the plan exercises
// both injection paths at once).
func faultLifeDevice(seed int64, ceiling int) (core.Device, error) {
	cfg := ssd.Config{
		Elements:      4,
		Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 32, BlocksPerPackage: 64},
		Overprovision: 0.25,
		Layout:        ssd.Interleaved,
		Scheduler:     sched.SWTF,
		CtrlOverhead:  5 * sim.Microsecond,
		GCLow:         0.06, GCCritical: 0.03,
	}
	plan := &fault.Plan{
		Seed:        seed,
		Transient:   &fault.Transient{Rate: 0.002, Burst: 4, RetryUs: 400},
		WearCeiling: ceiling,
		RemapCostUs: 300,
	}
	return core.Open("ssd", core.WithSSD(cfg), core.WithFault(plan))
}

// faultLifeRun preconditions the device, then drives segments splits of
// a skewed single-page overwrite workload, checkpointing after each.
// Segment boundaries are Drive-call boundaries — the engine is drained
// there, so the checkpoints are identical at any shard count.
func faultLifeRun(d core.Device, seed int64, segments, opsPerSegment int) ([]FaultLifePoint, error) {
	if err := core.PreconditionFrac(d, 1<<20, 0.8); err != nil {
		return nil, err
	}
	space := int64(float64(d.LogicalBytes()) * 0.8)
	hot := space / 10
	rng := sim.NewRNG(seed)
	points := make([]FaultLifePoint, 0, segments)
	var driven int64
	for s := 0; s < segments; s++ {
		ops := make([]trace.Op, opsPerSegment)
		for i := range ops {
			region := hot
			if rng.Bool(0.1) {
				region = space
			}
			ops[i] = trace.Op{Kind: trace.Write, Offset: rng.Int63n(region/4096) * 4096, Size: 4096}
		}
		if err := d.Drive(trace.FromSlice(ops)); err != nil {
			return nil, err
		}
		driven += int64(opsPerSegment)
		m := d.Metrics()
		points = append(points, FaultLifePoint{
			Ops:        driven,
			Retired:    m.RetiredBlocks,
			Remapped:   m.RemappedPages,
			Errors:     m.Errors,
			P99WriteMs: m.P99WriteMs,
		})
	}
	return points, nil
}

// FaultLifeOptions sizes the sweep.
type FaultLifeOptions struct {
	// Seed keys the workload and the fault plans.
	Seed int64
	// Segments is the checkpoint count (default 6).
	Segments int
	// OpsPerSegment is the host writes per segment (default 4000).
	OpsPerSegment int
	// Workers caps the pool (0 = runner default).
	Workers int
}

// FaultLife runs the accelerated-lifetime sweep, one spec per ceiling.
func FaultLife(o FaultLifeOptions) (FaultLifeResult, error) {
	if o.Segments <= 0 {
		o.Segments = 6
	}
	if o.OpsPerSegment <= 0 {
		o.OpsPerSegment = 4000
	}
	ceilings := []int{0, 6, 4, 2}
	var res FaultLifeResult
	specs := make([]runner.Spec[[]FaultLifePoint], len(ceilings))
	for i, c := range ceilings {
		c := c
		name := fmt.Sprintf("ceiling %d", c)
		if c == 0 {
			name = "no ceiling"
		}
		res.Configs = append(res.Configs, name)
		specs[i] = runner.Spec[[]FaultLifePoint]{
			Name: "faultlife/" + name,
			Seed: o.Seed,
			Run: func() ([]FaultLifePoint, error) {
				d, err := faultLifeDevice(o.Seed, c)
				if err != nil {
					return nil, err
				}
				return faultLifeRun(d, o.Seed, o.Segments, o.OpsPerSegment)
			},
		}
	}
	pts, err := runner.Run(specs, runner.Options{Workers: o.Workers})
	if err != nil {
		return res, err
	}
	res.Points = pts
	return res, nil
}
