package runner

import (
	"errors"
	"sync"
)

// Pool is the service-lifetime counterpart to the batch RunAll: a fixed
// set of workers draining an ongoing task queue. Tasks carry their own
// cancellation (typically a context captured in the closure); the pool
// bounds concurrency and backlog and drains gracefully on Close.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed = errors.New("runner: pool closed")

// ErrPoolSaturated is returned by Submit when the backlog is full —
// callers shed load (e.g. HTTP 503) instead of blocking.
var ErrPoolSaturated = errors.New("runner: pool backlog full")

// NewPool starts workers goroutines draining a backlog-deep task queue.
// workers <= 0 means DefaultWorkers(); backlog <= 0 means 256.
func NewPool(workers, backlog int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if backlog <= 0 {
		backlog = 256
	}
	p := &Pool{tasks: make(chan func(), backlog)}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// Submit enqueues a task for execution. It never blocks: a full backlog
// returns ErrPoolSaturated, a closed pool ErrPoolClosed.
func (p *Pool) Submit(task func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.tasks <- task:
		return nil
	default:
		return ErrPoolSaturated
	}
}

// Close stops accepting tasks and waits until every queued task has
// run. Tasks that honor a cancelled context finish promptly, so callers
// wanting a fast shutdown cancel their jobs first, then Close.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}
