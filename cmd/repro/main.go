// Command repro regenerates every table and figure from the paper's
// evaluation section. With no flags it runs the full suite and prints
// each result in the paper's format; -run selects a subset.
//
//	repro                  # everything
//	repro -run table2,figure3
//	repro -list            # show available experiments
//	repro -seed 7 -o report.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ossd/internal/experiments"
)

type runner struct {
	id, desc string
	run      func(seed int64) (experiments.Result, error)
}

func runners() []runner {
	return []runner{
		{"contract", "Table 1: unwritten-contract terms probed on disk, RAID, MEMS, and SSD", func(seed int64) (experiments.Result, error) {
			return experiments.Contract(seed)
		}},
		{"table2", "Table 2: sequential vs random bandwidth across device profiles", func(seed int64) (experiments.Result, error) {
			return experiments.Table2(experiments.Table2Options{Seed: seed})
		}},
		{"swtf", "Section 3.2: SWTF vs FCFS scheduling", func(seed int64) (experiments.Result, error) {
			return experiments.SWTF(experiments.SWTFOptions{Seed: seed})
		}},
		{"figure2", "Figure 2: write-amplification saw-tooth (bandwidth vs write size)", func(seed int64) (experiments.Result, error) {
			return experiments.Figure2(experiments.Figure2Options{MaxBytes: 9 << 20})
		}},
		{"table3", "Table 3: aligned vs unaligned writes across sequentiality", func(seed int64) (experiments.Result, error) {
			return experiments.Table3(experiments.Table3Options{Seed: seed})
		}},
		{"table4", "Table 4: alignment improvement on macro workloads", func(seed int64) (experiments.Result, error) {
			return experiments.Table4(experiments.Table4Options{Seed: seed})
		}},
		{"table5", "Table 5: informed cleaning with free-page information", func(seed int64) (experiments.Result, error) {
			return experiments.Table5(experiments.Table5Options{Seed: seed})
		}},
		{"figure3", "Figure 3 + Table 6: priority-aware cleaning", func(seed int64) (experiments.Result, error) {
			return experiments.Figure3(experiments.Figure3Options{Seed: seed})
		}},
		{"schemes", "Extension: page/hybrid/block FTL mapping schemes compared", func(seed int64) (experiments.Result, error) {
			return experiments.Schemes(seed)
		}},
		{"lifetime", "Extension: endurance under skewed writes (wear-leveling, SLC vs MLC)", func(seed int64) (experiments.Result, error) {
			return experiments.Lifetime(seed)
		}},
	}
}

func main() {
	var (
		runList = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		seed    = flag.Int64("seed", 1, "random seed for workloads")
		outPath = flag.String("o", "", "write the report to this file (default stdout)")
	)
	flag.Parse()

	rs := runners()
	if *list {
		for _, r := range rs {
			fmt.Printf("%-10s %s\n", r.id, r.desc)
		}
		return
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	want := map[string]bool{}
	all := *runList == "all"
	for _, id := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(id)] = true
	}

	known := map[string]bool{}
	for _, r := range rs {
		known[r.id] = true
	}
	if !all {
		for id := range want {
			if id != "" && !known[id] {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
		}
	}

	fmt.Fprintf(out, "Block Management in Solid-State Devices — reproduction report\n")
	fmt.Fprintf(out, "seed=%d\n\n", *seed)
	failed := false
	for _, r := range rs {
		if !all && !want[r.id] {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s ...\n", r.id)
		start := time.Now()
		res, err := r.run(*seed)
		if err != nil {
			fmt.Fprintf(out, "== %s FAILED: %v\n\n", r.id, err)
			failed = true
			continue
		}
		fmt.Fprintf(out, "== %s (%s) [%.1fs]\n%s\n", r.id, r.desc, time.Since(start).Seconds(), res.String())
	}
	if failed {
		os.Exit(1)
	}
}
