package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ossd/internal/runner"
	"ossd/internal/simsvc"
	"ossd/internal/stats"
)

// Options configures a Manager.
type Options struct {
	// MaxCells guards expansion (<= 0: 4096). A Spec.MaxCells can lower
	// it per campaign but never raise it.
	MaxCells int
	// MaxInFlight bounds how many of one campaign's cells are
	// outstanding in the job manager at once (<= 0: 32), so a large
	// campaign feeds the shared pool instead of flooding its backlog.
	MaxInFlight int
	// Retain bounds the campaign table (<= 0: 64): once full, each
	// submit evicts the oldest terminal campaigns. Cell results live on
	// in the job manager's cache; only the campaign handle expires.
	Retain int
}

// CellResult is one cell's observable outcome, the per-cell payload of
// GET /campaigns/{id}/stream. Result holds the job's payload verbatim
// (a simsvc.Result), so equal specs yield byte-identical result fields.
type CellResult struct {
	Index  int             `json:"index"`
	Coords []AxisValue     `json:"coords"`
	JobID  string          `json:"job_id,omitempty"`
	Status simsvc.Status   `json:"status"`
	Cached bool            `json:"cached"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// cellState is a Cell plus everything learned while running it.
type cellState struct {
	*Cell
	job     *simsvc.Job // nil until submitted
	settled bool
	status  simsvc.Status
	cached  bool
	errMsg  string
	result  []byte
}

// result snapshots the cell as a CellResult (campaign lock held).
func (c *cellState) resultView() CellResult {
	r := CellResult{
		Index:  c.Index,
		Coords: c.Coords,
		Status: c.status,
		Cached: c.cached,
		Error:  c.errMsg,
		Result: json.RawMessage(c.result),
	}
	if c.job != nil {
		r.JobID = c.job.ID
	}
	return r
}

// Campaign is one submitted sweep. All mutable state is guarded by mu;
// cond broadcasts whenever a cell settles, the campaign is cancelled,
// or the handle is evicted, so progress waiters and stream tails wake
// without spinning.
type Campaign struct {
	ID      string
	spec    Spec
	axes    []string
	created time.Time

	mu        sync.Mutex
	cond      *sync.Cond
	cells     []*cellState
	settled   int
	done      int
	failed    int
	cacheHits int
	cancelled bool
	evicted   bool
	finished  time.Time
	// shed counts submit attempts the job manager rejected in shed
	// mode; the feeder retried them, so cells still complete, but the
	// count is the campaign's view of fleet overload.
	shed int
	// runDur accumulates observed wall-clock run durations of the
	// campaign's simulated (non-cached) cells, feeding the ETA.
	runDur stats.Mean
}

// terminalLocked reports whether the campaign has finished: every cell
// settled AND the feeder ran finish(), so the finished timestamp and
// manager counters are in place before waiters observe the terminal
// state (mu held).
func (c *Campaign) terminalLocked() bool { return !c.finished.IsZero() }

// allSettledLocked reports whether every cell has settled (mu held).
// True slightly before terminalLocked: the feeder stamps finished after
// the last settle.
func (c *Campaign) allSettledLocked() bool { return c.settled == len(c.cells) }

// isCancelled reports whether cancellation was requested.
func (c *Campaign) isCancelled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cancelled
}

// Progress is a campaign's aggregate state (GET /campaigns/{id}).
// CacheHits counts done cells served from the result cache (a subset of
// Done). ETASeconds extrapolates from the mean observed run duration of
// the campaign's simulated cells across the job manager's workers; it
// is zero until the first simulated cell completes.
type Progress struct {
	ID             string   `json:"id"`
	Status         string   `json:"status"` // running | done | cancelled
	Axes           []string `json:"axes"`
	Total          int      `json:"total"`
	Queued         int      `json:"queued"`
	Running        int      `json:"running"`
	Done           int      `json:"done"`
	Failed         int      `json:"failed"`
	CacheHits      int      `json:"cache_hits"`
	Shed           int      `json:"shed,omitempty"`
	ElapsedSeconds float64  `json:"elapsed_seconds"`
	ETASeconds     float64  `json:"eta_seconds,omitempty"`
}

// Manager owns the campaign table and feeds cells through the job
// manager.
type Manager struct {
	jobs *simsvc.Manager
	opts Options

	mu        sync.Mutex
	campaigns map[string]*Campaign
	order     []string // campaign IDs in submission order, for eviction
	seq       int64

	submitted   atomic.Int64
	completed   atomic.Int64
	cancelledCt atomic.Int64
	cellsTotal  atomic.Int64
	cellsDone   atomic.Int64
	cellsFailed atomic.Int64
	cellsCached atomic.Int64
	cellsShed   atomic.Int64
}

// New builds a Manager over the job manager and registers its counters
// under "campaigns" in the job manager's /statsz.
func New(jobs *simsvc.Manager, opts Options) *Manager {
	if opts.MaxCells <= 0 {
		opts.MaxCells = 4096
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 32
	}
	if opts.Retain <= 0 {
		opts.Retain = 64
	}
	m := &Manager{opts: opts, jobs: jobs, campaigns: map[string]*Campaign{}}
	jobs.SetCampaignStats(func() any { return m.Stats() })
	return m
}

// Submit expands the spec and starts the campaign's feeder. Expansion
// errors (bad axis, guard exceeded, invalid cell spec) reject the whole
// campaign; after Submit returns, cells fail only individually.
func (m *Manager) Submit(spec Spec) (*Campaign, error) {
	cells, err := Expand(spec, m.opts.MaxCells)
	if err != nil {
		return nil, err
	}
	c := &Campaign{spec: spec, created: time.Now(), cells: make([]*cellState, len(cells))}
	c.cond = sync.NewCond(&c.mu)
	for _, ax := range spec.Axes {
		c.axes = append(c.axes, ax.Name)
	}
	for i, cell := range cells {
		c.cells[i] = &cellState{Cell: cell, status: simsvc.StatusQueued}
	}

	m.mu.Lock()
	m.seq++
	c.ID = fmt.Sprintf("campaign-%d", m.seq)
	m.campaigns[c.ID] = c
	m.order = append(m.order, c.ID)
	m.evictLocked()
	m.mu.Unlock()
	m.submitted.Add(1)
	m.cellsTotal.Add(int64(len(cells)))

	go m.run(c)
	return c, nil
}

// evictLocked (m.mu held) drops the oldest terminal campaigns while the
// table exceeds its bound, waking their stream tails.
func (m *Manager) evictLocked() {
	excess := len(m.campaigns) - m.opts.Retain
	if excess <= 0 {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		c, ok := m.campaigns[id]
		if !ok {
			continue
		}
		evict := false
		if excess > 0 {
			c.mu.Lock()
			evict = c.terminalLocked()
			c.mu.Unlock()
		}
		if evict {
			delete(m.campaigns, id)
			excess--
			c.mu.Lock()
			c.evicted = true
			c.cond.Broadcast()
			c.mu.Unlock()
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// run is the campaign's feeder: submit cells in canonical order under
// the in-flight window, settling each as its job terminates. A cell
// whose Key duplicates an earlier cell waits for that primary to settle
// first, so its submission is a guaranteed cache hit — one simulation
// per distinct cell no matter how the duplicated axis (e.g.
// options.shards) is ordered.
func (m *Manager) run(c *Campaign) {
	sem := make(chan struct{}, m.opts.MaxInFlight)
	var wg sync.WaitGroup
	for i := range c.cells {
		cell := c.cells[i]
		if cell.DupOf >= 0 {
			c.waitSettled(cell.DupOf)
		}
		if c.isCancelled() {
			m.failFrom(c, i, "campaign cancelled")
			break
		}
		sem <- struct{}{}
		job, err := m.jobs.Submit(cell.Spec)
		for err != nil && (errors.Is(err, runner.ErrPoolSaturated) || errors.Is(err, simsvc.ErrShed)) && !c.isCancelled() {
			// The shared backlog is full (other clients own the slots):
			// back off briefly and retry rather than failing the cell.
			// In shed mode the rejection is explicit (429); the feeder
			// is an internal batch client, so it counts every shed —
			// surfaced in progress and /statsz so operators see the
			// pressure — and keeps backing off.
			if errors.Is(err, simsvc.ErrShed) {
				c.mu.Lock()
				c.shed++
				c.mu.Unlock()
				m.cellsShed.Add(1)
			}
			time.Sleep(5 * time.Millisecond)
			job, err = m.jobs.Submit(cell.Spec)
		}
		if err != nil {
			<-sem
			m.settle(c, i, simsvc.JobView{Status: simsvc.StatusFailed, Error: err.Error()})
			if c.isCancelled() {
				m.failFrom(c, i+1, "campaign cancelled")
				break
			}
			continue
		}
		c.mu.Lock()
		cell.job = job
		c.mu.Unlock()
		if c.isCancelled() {
			// DELETE raced the submit: it could not see this job yet, so
			// cancel it here; the watcher settles the cell as failed.
			_, _ = m.jobs.Cancel(job.ID)
		}
		wg.Add(1)
		go func(i int, job *simsvc.Job) {
			defer wg.Done()
			defer func() { <-sem }()
			view, _ := job.Wait(context.Background())
			m.settle(c, i, view)
		}(i, job)
	}
	wg.Wait()
	m.finish(c)
}

// settle records a cell's terminal outcome and wakes waiters.
func (m *Manager) settle(c *Campaign, i int, view simsvc.JobView) {
	c.mu.Lock()
	cell := c.cells[i]
	if cell.settled {
		c.mu.Unlock()
		return
	}
	cell.settled = true
	cell.status = view.Status
	cell.cached = view.Cached
	cell.errMsg = view.Error
	cell.result = []byte(view.Result)
	c.settled++
	switch {
	case view.Status == simsvc.StatusDone && view.Cached:
		c.done++
		c.cacheHits++
		m.cellsDone.Add(1)
		m.cellsCached.Add(1)
	case view.Status == simsvc.StatusDone:
		c.done++
		m.cellsDone.Add(1)
		if view.RunMs > 0 {
			c.runDur.Add(view.RunMs)
		}
	default:
		c.failed++
		m.cellsFailed.Add(1)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// failFrom settles every not-yet-submitted cell from index i on as
// failed with the given cause (used on cancellation).
func (m *Manager) failFrom(c *Campaign, i int, cause string) {
	for ; i < len(c.cells); i++ {
		c.mu.Lock()
		pending := c.cells[i].job == nil && !c.cells[i].settled
		c.mu.Unlock()
		if pending {
			m.settle(c, i, simsvc.JobView{Status: simsvc.StatusFailed, Error: cause})
		}
	}
}

// waitSettled blocks until cell p settles or the campaign is cancelled.
func (c *Campaign) waitSettled(p int) {
	c.mu.Lock()
	for !c.cells[p].settled && !c.cancelled {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// finish marks the campaign terminal.
func (m *Manager) finish(c *Campaign) {
	c.mu.Lock()
	c.finished = time.Now()
	cancelled := c.cancelled
	c.cond.Broadcast()
	c.mu.Unlock()
	if cancelled {
		m.cancelledCt.Add(1)
	} else {
		m.completed.Add(1)
	}
}

// Campaign looks a campaign up by ID.
func (m *Manager) Campaign(id string) (*Campaign, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.campaigns[id]
	return c, ok
}

// Progress snapshots the campaign's aggregate state. Unsettled cells
// with a submitted job report that job's live status; cells the feeder
// has not reached yet count as queued.
func (m *Manager) Progress(c *Campaign) Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := Progress{
		ID:        c.ID,
		Axes:      append([]string(nil), c.axes...),
		Total:     len(c.cells),
		Done:      c.done,
		Failed:    c.failed,
		CacheHits: c.cacheHits,
		Shed:      c.shed,
	}
	for _, cell := range c.cells {
		if cell.settled {
			continue
		}
		status := simsvc.StatusQueued
		if cell.job != nil {
			status = cell.job.View().Status
		}
		if status == simsvc.StatusRunning {
			p.Running++
		} else {
			p.Queued++
		}
	}
	switch {
	case !c.terminalLocked():
		p.Status = "running"
		p.ElapsedSeconds = time.Since(c.created).Seconds()
		if remaining := p.Total - c.settled; c.runDur.N() > 0 && remaining > 0 {
			workers := m.jobs.Workers()
			if workers < 1 {
				workers = 1
			}
			p.ETASeconds = float64(remaining) * c.runDur.Mean() / 1000 / float64(workers)
		}
	case c.cancelled:
		p.Status = "cancelled"
		p.ElapsedSeconds = c.finished.Sub(c.created).Seconds()
	default:
		p.Status = "done"
		p.ElapsedSeconds = c.finished.Sub(c.created).Seconds()
	}
	return p
}

// Cancel requests cancellation: the feeder stops submitting new cells
// (they settle as failed), and every in-flight cell's job is cancelled
// through the job manager. Cancelling a terminal campaign is a no-op
// reporting false.
func (m *Manager) Cancel(id string) (bool, error) {
	c, ok := m.Campaign(id)
	if !ok {
		return false, fmt.Errorf("campaign: no campaign %q", id)
	}
	c.mu.Lock()
	if c.allSettledLocked() {
		c.mu.Unlock()
		return false, nil
	}
	c.cancelled = true
	var jobIDs []string
	for _, cell := range c.cells {
		if cell.job != nil && !cell.settled {
			jobIDs = append(jobIDs, cell.job.ID)
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, id := range jobIDs {
		_, _ = m.jobs.Cancel(id) // terminal or evicted jobs: no-op
	}
	return true, nil
}

// CancelAll cancels every live campaign (graceful shutdown).
func (m *Manager) CancelAll() {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	for _, id := range ids {
		_, _ = m.Cancel(id)
	}
}

// Wait blocks until the campaign is terminal (or ctx ends) and returns
// its progress.
func (m *Manager) Wait(ctx context.Context, id string) (Progress, error) {
	c, ok := m.Campaign(id)
	if !ok {
		return Progress{}, fmt.Errorf("campaign: no campaign %q", id)
	}
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	c.mu.Lock()
	for !c.terminalLocked() && ctx.Err() == nil {
		c.cond.Wait()
	}
	c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return Progress{}, err
	}
	return m.Progress(c), nil
}

// ErrCampaignEvicted terminates a result stream whose campaign handle
// was evicted from the table while the stream was attached.
var ErrCampaignEvicted = errors.New("campaign: campaign evicted while streaming")

// StreamResults delivers cell results in deterministic cell order —
// cell i is delivered once settled, after cells 0..i-1 — replaying
// settled cells first and then tailing the live remainder. It returns
// nil once every cell is delivered, fn's error if it fails (client
// gone), ctx's error, or ErrCampaignEvicted.
func (m *Manager) StreamResults(ctx context.Context, id string, fn func(CellResult) error) error {
	c, ok := m.Campaign(id)
	if !ok {
		return fmt.Errorf("campaign: no campaign %q", id)
	}
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	for i := 0; i < len(c.cells); i++ {
		c.mu.Lock()
		for !c.cells[i].settled && !c.evicted && ctx.Err() == nil {
			c.cond.Wait()
		}
		settled := c.cells[i].settled
		evicted := c.evicted
		var res CellResult
		if settled {
			res = c.cells[i].resultView()
		}
		c.mu.Unlock()
		if err := ctx.Err(); err != nil {
			return err
		}
		if !settled && evicted {
			return ErrCampaignEvicted
		}
		if err := fn(res); err != nil {
			return err
		}
	}
	return nil
}

// Results snapshots every settled cell's result in cell order (unsettled
// cells are skipped) — the input to Table.
func (c *Campaign) Results() []CellResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CellResult, 0, len(c.cells))
	for _, cell := range c.cells {
		if cell.settled {
			out = append(out, cell.resultView())
		}
	}
	return out
}

// Stats is the subsystem's aggregate state, surfaced under "campaigns"
// in the job service's /statsz.
type Stats struct {
	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Cancelled   int64 `json:"cancelled"`
	Retained    int   `json:"retained"`
	CellsTotal  int64 `json:"cells_total"`
	CellsDone   int64 `json:"cells_done"`
	CellsFailed int64 `json:"cells_failed"`
	CellsCached int64 `json:"cells_cached"`
	// CellsShed counts feeder submit attempts rejected by shed mode
	// (each was retried; cells still complete).
	CellsShed int64 `json:"cells_shed"`
}

// Stats reports the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	retained := len(m.campaigns)
	m.mu.Unlock()
	return Stats{
		Submitted:   m.submitted.Load(),
		Completed:   m.completed.Load(),
		Cancelled:   m.cancelledCt.Load(),
		Retained:    retained,
		CellsTotal:  m.cellsTotal.Load(),
		CellsDone:   m.cellsDone.Load(),
		CellsFailed: m.cellsFailed.Load(),
		CellsCached: m.cellsCached.Load(),
		CellsShed:   m.cellsShed.Load(),
	}
}
