package ssd

// Sharded parallel dataplane: one large gang simulated across CPU cores,
// byte-identical to the single-engine replay.
//
// The partition follows the element groups: shard k owns elements
// [k*gs, (k+1)*gs) and runs them on a private sim.Engine with a private
// sched.Queue and metrics, under conservative parallel discrete-event
// simulation (sim.ShardGroup). The open-loop arrival stream provides the
// lookahead: the router clamps each arrival's timestamp exactly as the
// single-engine drive loop would (a running max over the stream), posts
// it to the owning shard's inbox, and runs a parallel window up to the
// next arrival's clamped time whenever an inbox fills — no future event
// can land inside a window that its horizon did not already announce.
//
// Exactness rests on three properties:
//
//   - Requests touching one element group interact only through that
//     group's busy horizons and FTL state, all shard-private; a shard's
//     event order is (time, seq) exactly as in the single engine.
//   - Same-instant arrival-vs-completion interleavings commute: an
//     element is "idle" whenever its horizon is <= now, whether or not
//     the completion event at now has run, completions mutate no queue
//     or FTL state, and the dispatch pump runs to a fixpoint either way.
//   - Response-time histograms use Welford accumulation, which is
//     order-sensitive, so shards log (done, start, ms) samples instead
//     of folding their own; window barriers replay the merged log in
//     global completion order into the gang-level histograms.
//
// A request spanning multiple element groups would couple the shards, so
// it triggers the one-way merge transition: run every shard to the
// spanning arrival's time, move pending events and queued requests onto
// the gang's own engine and queue (in global arrival order), copy the
// busy horizons, and continue the rest of the stream on the literal
// single-engine code path — exact by construction.

import (
	"fmt"
	"sort"

	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/trace"
)

// shardInboxCap bounds each shard's arrival inbox; a full inbox forces a
// parallel window, so it is also the router's batch size.
const shardInboxCap = 1024

// gang is the sharded dataplane attached to a Device by EnableSharding.
type gang struct {
	group     *sim.ShardGroup
	subs      []*Device
	groupSize int

	// Arrival-node pool: nodes posted since the last window are in
	// flight; a window consumes them all, after which the pool rewinds.
	nodes    []*arrivalNode
	nodeUsed int

	// merged scratch for the per-window sample sort.
	scratch []completionSample
}

// arrivalNode carries one posted arrival into a shard: the operation,
// its global sequence number, and the shard sub-device to submit to.
type arrivalNode struct {
	dev  *Device
	op   trace.Op
	gseq uint64
}

// shardArriveEvent is the pooled arrival callback delivered inside a
// shard's window. Submission cannot fail: the router admitted the op
// against the same capacity before posting.
func shardArriveEvent(a any) {
	n := a.(*arrivalNode)
	n.dev.nextGseq = n.gseq
	_ = n.dev.submit(n.op, nil, true)
}

// ShardableConfig reports whether a device built from cfg supports an
// n-way sharded dataplane. The constraints are exactly the couplings
// that would make element groups interact outside their own state:
// FullStripe writes touch every element, FCFS blocks head-of-line across
// the whole gang, the host link and write buffer are device-global
// serial resources, heterogeneous layouts split pages unevenly, and
// priority-aware cleaning consults the gang-wide outstanding count.
func ShardableConfig(cfg Config, n int) error {
	if n < 2 {
		return fmt.Errorf("ssd: sharding needs at least 2 shards, got %d", n)
	}
	if cfg.Elements%n != 0 {
		return fmt.Errorf("ssd: %d elements do not divide into %d shards", cfg.Elements, n)
	}
	if cfg.Layout != Interleaved {
		return fmt.Errorf("ssd: sharding requires the Interleaved layout")
	}
	if cfg.Scheduler != sched.SWTF {
		return fmt.Errorf("ssd: sharding requires the SWTF scheduler")
	}
	if cfg.MLCElements != 0 {
		return fmt.Errorf("ssd: sharding requires homogeneous media")
	}
	if cfg.InterfaceMBps != 0 {
		return fmt.Errorf("ssd: sharding is incompatible with a host-link cap")
	}
	if cfg.WriteBufferBytes != 0 {
		return fmt.Errorf("ssd: sharding is incompatible with a write buffer")
	}
	if cfg.PriorityAware {
		return fmt.Errorf("ssd: sharding is incompatible with priority-aware cleaning")
	}
	if len(cfg.TenantWeights) != 0 {
		return fmt.Errorf("ssd: sharding is incompatible with tenant-weighted dispatch")
	}
	return nil
}

// EnableSharding attaches an n-way parallel dataplane to a fresh device.
// Open-loop Drive traffic (core's unbounded Drive/Play) then runs across
// n engines; every other entry point — Submit, ClosedLoop, bounded
// Drive — keeps using the device's own engine unchanged. Reports built
// from the device are byte-identical at every shard count.
func (d *Device) EnableSharding(n int) error {
	if err := ShardableConfig(d.cfg, n); err != nil {
		return err
	}
	if d.shard != nil {
		return fmt.Errorf("ssd: sharding already enabled")
	}
	if d.eng.Now() != 0 || d.met.Requests != 0 {
		return fmt.Errorf("ssd: sharding must be enabled before any traffic")
	}
	g := &gang{
		group:     sim.NewShardGroup(n, shardInboxCap),
		groupSize: d.cfg.Elements / n,
	}
	for i := 0; i < n; i++ {
		lo, hi := i*g.groupSize, (i+1)*g.groupSize
		sd, err := newWithBackends(g.group.Engine(i), d.cfg, d.elems, lo, hi)
		if err != nil {
			return err
		}
		sd.recording = true
		// Fault clocks are shared, not copied: element e's sequence
		// numbers advance only on its owning shard, in that shard's
		// dispatch order, which is the single-engine order restricted to
		// the shard — so injections are shard-invariant.
		sd.flt = d.flt
		g.subs = append(g.subs, sd)
	}
	d.shard = g
	return nil
}

// Sharded reports whether the parallel dataplane is attached.
func (d *Device) Sharded() bool { return d.shard != nil }

// Shards reports the shard count (1 when not sharded).
func (d *Device) Shards() int {
	if d.shard == nil {
		return 1
	}
	return d.shard.group.N()
}

// route returns the shard whose element group covers every page of op,
// or -1 when the operation spans groups. O(1): under the homogeneous
// Interleaved layout page l lives on element l mod E, so a run of p
// pages starting at element e0 covers elements [e0, e0+p-1] (spanning
// if it wraps or p >= E).
func (g *gang) route(d *Device, op trace.Op) int {
	ps := int64(d.cfg.Geom.PageSize)
	l0 := op.Offset / ps
	l1 := (op.End() - 1) / ps
	e := int64(d.cfg.Elements)
	npages := l1 - l0 + 1
	if npages >= e {
		return -1
	}
	e0 := l0 % e
	e1 := e0 + npages - 1
	if e1 >= e {
		return -1 // wraps around the gang
	}
	gs := int64(g.groupSize)
	if e0/gs != e1/gs {
		return -1
	}
	return int(e0 / gs)
}

func (g *gang) takeNode() *arrivalNode {
	if g.nodeUsed < len(g.nodes) {
		n := g.nodes[g.nodeUsed]
		g.nodeUsed++
		return n
	}
	n := &arrivalNode{}
	g.nodes = append(g.nodes, n)
	g.nodeUsed++
	return n
}

// window runs one parallel window up to and including horizon h (every
// posted arrival is consumed), then folds the shards' counters and
// replays their completion samples in merged order.
func (d *Device) window(h sim.Time) {
	g := d.shard
	g.group.RunWindow(h)
	g.nodeUsed = 0
	d.flushShardStats()
}

// flushShardStats folds the shards' counter deltas into the gang-level
// metrics and replays their response-time samples in global completion
// order. Windows partition simulated time, so per-window merged order
// concatenates into the global completion order.
func (d *Device) flushShardStats() {
	g := d.shard
	g.scratch = g.scratch[:0]
	for _, sd := range g.subs {
		foldCounters(&d.met, &sd.met)
		g.scratch = append(g.scratch, sd.samples...)
		sd.samples = sd.samples[:0]
	}
	sort.SliceStable(g.scratch, func(i, j int) bool {
		a, b := &g.scratch[i], &g.scratch[j]
		if a.done != b.done {
			return a.done < b.done
		}
		return a.start < b.start
	})
	for i := range g.scratch {
		s := &g.scratch[i]
		switch s.kind {
		case trace.Read:
			d.met.ReadResp.Add(s.ms)
		case trace.Write:
			d.met.WriteResp.Add(s.ms)
		}
		if s.pri {
			d.met.PriResp.Add(s.ms)
		} else {
			d.met.BgResp.Add(s.ms)
		}
		d.met.Tenants.Record(s.tenant, s.kind == trace.Write, s.size, s.ms)
	}
}

// foldCounters moves src's integer counters into dst. The histograms
// travel separately as ordered samples.
func foldCounters(dst, src *Metrics) {
	dst.Requests += src.Requests
	dst.Completed += src.Completed
	dst.BytesRead += src.BytesRead
	dst.BytesWritten += src.BytesWritten
	dst.Frees += src.Frees
	dst.Errors += src.Errors
	dst.BackgroundCleans += src.BackgroundCleans
	dst.BufferedWrites += src.BufferedWrites
	dst.BufferBypass += src.BufferBypass
	*src = Metrics{}
}

// DriveStream replays an open-loop workload stream across the shards.
// It is the sharded analogue of core's unbounded Drive: each arrival is
// clamped to a nondecreasing timeline and submitted with no completion
// callback, and DriveStream returns only after every in-flight request
// has completed, with the device clock at the single-engine final time.
func (d *Device) DriveStream(s trace.Stream) error {
	g := d.shard
	if g == nil {
		return fmt.Errorf("ssd: DriveStream requires sharding")
	}
	g.group.Start()
	defer g.group.Stop()
	// The clamp seed is the device clock, exactly as the single-engine
	// drive loop clamps arrivals to its engine's now.
	clamped := d.eng.Now()
	var gseq uint64
	for {
		op, ok := s.Next()
		if !ok {
			d.drainShards()
			return trace.Err(s)
		}
		if op.At > clamped {
			clamped = op.At
		}
		if err := d.admit(op); err != nil {
			// Match the single-engine contract: a submit error stops the
			// pull loop but everything in flight still drains.
			d.drainShards()
			return err
		}
		k := g.route(d, op)
		if k < 0 {
			return d.merge(s, op, clamped)
		}
		if g.group.InboxFree(k) == 0 {
			// The next posting is at clamped, so clamped is a valid
			// conservative lookahead horizon.
			d.window(clamped)
		}
		gseq++
		n := g.takeNode()
		n.dev = g.subs[k]
		n.op = op
		n.gseq = gseq
		g.group.Post(k, clamped, shardArriveEvent, n)
	}
}

// drainShards runs the shards dry, folds their stats, and advances the
// device clock to the latest shard clock — the time of the globally last
// event, which is where the single engine's Run() would have stopped.
func (d *Device) drainShards() {
	g := d.shard
	g.group.RunWindow(sim.MaxTime)
	g.nodeUsed = 0
	d.flushShardStats()
	if t := g.group.MaxNow(); t > d.eng.Now() {
		d.eng.RunUntil(t)
	}
}

// mergedLoop continues a stream on the device's own engine after the
// merge transition, replicating core's unbounded drive loop shape.
type mergedLoop struct {
	d   *Device
	s   trace.Stream
	op  trace.Op
	err error
}

func mergedArriveEvent(a any) {
	dl := a.(*mergedLoop)
	if err := dl.d.Submit(dl.op, nil); err != nil {
		dl.err = err
		return
	}
	op, ok := dl.s.Next()
	if !ok {
		return
	}
	at := op.At
	if now := dl.d.eng.Now(); at < now {
		at = now
	}
	dl.op = op
	dl.d.eng.CallAt(at, mergedArriveEvent, dl)
}

// merge is the one-way transition from parallel windows to single-engine
// execution, taken when op (arriving at time at) spans element groups.
// It reconstructs on the device's own engine exactly the state the
// single engine would hold at time at: pending events in (time, shard,
// scheduling order), queued requests re-pushed in global arrival order,
// and the per-element busy horizons — then replays the rest of the
// stream on the ordinary single-engine path.
func (d *Device) merge(s trace.Stream, op trace.Op, at sim.Time) error {
	g := d.shard
	// Run every shard up to the spanning arrival's time; pending events
	// are strictly later than at.
	d.window(at)
	g.group.Stop()
	// In-service priority counts move wholesale: the in-flight requests'
	// completions will decrement the gang-level count from now on.
	var queued []*Request
	for _, sd := range g.subs {
		d.outstandingPri += sd.outstandingPri
		sd.outstandingPri = 0
		sd.q.Drain(func(_ uint64, _ []int, data any) {
			queued = append(queued, data.(*Request))
		})
	}
	// Busy horizons live in each element's owning shard queue.
	for e := 0; e < d.cfg.Elements; e++ {
		d.q.SetBusy(e, g.subs[e/g.groupSize].q.Busy(e))
	}
	// Re-enqueue in global arrival order; Push re-assigns queue sequence
	// numbers in that order, preserving every SWTF tie-break.
	sort.Slice(queued, func(i, j int) bool { return queued[i].gseq < queued[j].gseq })
	for _, req := range queued {
		req.dev = d
		d.q.PushT(d.elemsFor(req.Op), req, req.Op.Tenant, req.Op.Size)
	}
	g.group.Transfer(d.eng, func(arg any) any {
		switch v := arg.(type) {
		case *Request:
			v.dev = d
			return v
		case *sched.Driver:
			return d.drv
		}
		return arg
	})
	// The spanning arrival runs first (pending events are later than
	// at), then the stream continues exactly like core's drive loop.
	dl := &mergedLoop{d: d, s: s, op: op}
	d.eng.CallAt(at, mergedArriveEvent, dl)
	d.eng.Run()
	if dl.err == nil {
		dl.err = trace.Err(s)
	}
	return dl.err
}
