package core

import (
	"fmt"
	"sync/atomic"

	"ossd/internal/fault"
	"ossd/internal/flash"
	"ossd/internal/hdd"
	"ossd/internal/mems"
	"ossd/internal/raid"
	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/ssd"
)

// Kind selects which media model a profile instantiates.
type Kind int

const (
	// KindSSD is the flash device (the default).
	KindSSD Kind = iota
	// KindHDD is the disk model.
	KindHDD
	// KindMEMS is the MEMS-storage model.
	KindMEMS
	// KindRAID is the RAID-5 array model.
	KindRAID
	// KindOSD is the flash device fronted by the object store (§3.7).
	KindOSD
)

func (k Kind) String() string {
	switch k {
	case KindSSD:
		return "ssd"
	case KindHDD:
		return "hdd"
	case KindMEMS:
		return "mems"
	case KindRAID:
		return "raid"
	case KindOSD:
		return "osd"
	default:
		return "?"
	}
}

// Profile is a named device configuration plus the measurement settings
// (request sizes, queue depths) its class of device would be benchmarked
// with. The paper anonymizes its engineering samples as S1slc..S5mlc and
// characterizes them only through Table 2; each profile here is a
// simulator parameterization chosen to reproduce that characterization's
// shape.
type Profile struct {
	// Name matches the paper's device label.
	Name string
	// Description summarizes the device class.
	Description string
	// Kind selects the media model; the matching config field applies.
	Kind Kind
	// HDD, SSD, MEMS, and RAID hold the respective configurations (SSD
	// also parameterizes KindOSD).
	HDD  hdd.Config
	SSD  ssd.Config
	MEMS mems.Config
	RAID raid.Config
	// SeqReqBytes/RandReqBytes are the benchmark request sizes.
	SeqReqBytes, RandReqBytes int64
	// Per-test queue depths: real devices are benchmarked at the depth
	// their firmware is designed for (e.g. deep NCQ write queues on
	// high-end parts).
	SeqReadDepth, RandReadDepth, SeqWriteDepth, RandWriteDepth int
	// Seed is the profile's default measurement seed: metadata for
	// callers that look it up via ProfileByName (zero means unset; no
	// built-in profile sets one).
	Seed int64
	// MaxPending bounds the requests outstanding while the device is
	// driven open loop (Drive/Play): admission control against arrival
	// storms. 0 means unbounded (see WithMaxPending).
	MaxPending int
	// Shards requests the parallel dataplane on flash devices: open-loop
	// Drive/Play runs across this many engines, one per element group,
	// byte-identical to the single-engine replay (see WithShards). 0
	// falls back to the process default (SetDefaultShards); 1 forces
	// single-engine. Configurations the dataplane cannot decompose
	// (non-interleaved layouts, FCFS, host-link caps, write buffers,
	// heterogeneous media, priority-aware cleaning, non-flash kinds) run
	// single-engine silently, so a shard count can be applied suite-wide.
	Shards int
	// Fault is the device's fault plan (see internal/fault): deterministic
	// transient errors, element deaths, and wear ceilings, applied to any
	// media kind. Flash devices inject per-element inside their dispatch
	// path; other media are wrapped by the generic per-op injector. nil
	// falls back to the process default (SetDefaultFault); leaving both
	// unset runs fault-free.
	Fault *fault.Plan
}

// defaultShards is the process-wide shard-count fallback for profiles
// that do not set one (see SetDefaultShards).
var defaultShards atomic.Int64

// SetDefaultShards sets the process-wide shard count applied to every
// flash device built without an explicit Profile.Shards — the hook the
// command-line -shards flags use, since experiments construct their
// devices internally. n <= 1 restores single-engine execution. It
// returns the previous default.
func SetDefaultShards(n int) int {
	return int(defaultShards.Swap(int64(n)))
}

// defaultFault is the process-wide fault-plan fallback for profiles that
// do not set one (see SetDefaultFault).
var defaultFault atomic.Pointer[fault.Plan]

// SetDefaultFault sets the process-wide fault plan applied to every
// device built without an explicit Profile.Fault — the hook the
// command-line -fault flags use, since experiments construct their
// devices internally. nil restores fault-free execution. It returns the
// previous default.
func SetDefaultFault(p *fault.Plan) *fault.Plan {
	return defaultFault.Swap(p)
}

// NewDevice instantiates the profile's device on a fresh engine.
func (p *Profile) NewDevice() (Device, error) {
	plan := p.Fault
	if plan == nil {
		plan = defaultFault.Load()
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	var (
		d   Device
		err error
	)
	switch p.Kind {
	case KindHDD:
		d, err = NewHDD(p.HDD)
	case KindMEMS:
		d, err = NewMEMS(p.MEMS)
	case KindRAID:
		d, err = NewRAID(p.RAID)
	case KindOSD:
		cfg := p.SSD
		cfg.Fault = plan
		d, err = NewOSD(cfg)
	default:
		cfg := p.SSD
		cfg.Fault = plan
		d, err = NewSSD(cfg)
	}
	if err != nil {
		return nil, err
	}
	// Non-flash media get the generic per-op injector; the wrapper embeds
	// driveConfig, so the MaxPending hook below lands on the outermost
	// layer (admission control sees the faulted device).
	if p.Kind == KindHDD || p.Kind == KindMEMS || p.Kind == KindRAID {
		d = WrapFault(d, plan)
	}
	if p.MaxPending > 0 {
		mp, ok := d.(interface{ setMaxPending(int) })
		if !ok {
			// Fail loudly (like every other inapplicable option) instead
			// of silently dropping the bound on a wrapper that does not
			// embed driveConfig.
			return nil, fmt.Errorf("core: %s device does not support MaxPending", p.Kind)
		}
		mp.setMaxPending(p.MaxPending)
	}
	// Attach the parallel dataplane where the configuration decomposes;
	// everything else keeps the single engine (same reports either way).
	shards := p.Shards
	if shards == 0 {
		shards = int(defaultShards.Load())
	}
	if shards > 1 && p.Kind == KindSSD {
		if s, ok := d.(*SSD); ok && ssd.ShardableConfig(s.Raw.Config(), shards) == nil {
			if err := s.Raw.EnableSharding(shards); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

// geometry helper: pageSize 4 KB, 64 pages/block.
func geom(blocksPerPackage int) flash.Geometry {
	return flash.Geometry{PageSize: 4096, PagesPerBlock: 64, BlocksPerPackage: blocksPerPackage}
}

// Profiles returns the Table 2 device set. SSD capacities are scaled to
// ~256 MB per device (geometry ratios preserved) so the full suite runs
// in seconds; bandwidth depends on timing and layout, not capacity.
func Profiles() []Profile {
	slc := flash.TimingFor(flash.SLC)
	mlc := flash.TimingFor(flash.MLC)
	return []Profile{
		{
			Name:        "HDD",
			Description: "Seagate Barracuda 7200.11 class disk",
			Kind:        KindHDD,
			HDD:         hdd.Barracuda7200(),
			SeqReqBytes: 1 << 20, RandReqBytes: 4096,
			SeqReadDepth: 1, RandReadDepth: 1, SeqWriteDepth: 1, RandWriteDepth: 1,
		},
		{
			Name:        "S1slc",
			Description: "high-end SLC: wide interleaving, deep write queues",
			SSD: ssd.Config{
				Elements:      16,
				Geom:          geom(64),
				Timing:        flash.Timing{PageRead: slc.PageRead, PageProgram: slc.PageProgram, BlockErase: slc.BlockErase, BusPerByte: 60 * sim.Nanosecond},
				Overprovision: 0.10,
				Layout:        ssd.Interleaved,
				Scheduler:     sched.SWTF,
				CtrlOverhead:  25 * sim.Microsecond,
				InterfaceMBps: 210,
				GCLow:         0.05, GCCritical: 0.02,
			},
			SeqReqBytes: 1 << 20, RandReqBytes: 4096,
			SeqReadDepth: 1, RandReadDepth: 2, SeqWriteDepth: 1, RandWriteDepth: 8,
		},
		{
			Name:        "S2slc",
			Description: "low-end SLC: 1 MB stripe, no write merging",
			SSD: ssd.Config{
				Elements:      8,
				Geom:          geom(128),
				Timing:        flash.Timing{PageRead: slc.PageRead, PageProgram: slc.PageProgram, BlockErase: slc.BlockErase, BusPerByte: 200 * sim.Nanosecond},
				Overprovision: 0.10,
				Layout:        ssd.FullStripe,
				Scheduler:     sched.SWTF,
				StripeBytes:   1 << 20,
				CtrlOverhead:  100 * sim.Microsecond,
				GCLow:         0.05, GCCritical: 0.02,
			},
			SeqReqBytes: 1 << 20, RandReqBytes: 4096,
			SeqReadDepth: 1, RandReadDepth: 1, SeqWriteDepth: 1, RandWriteDepth: 1,
		},
		{
			Name:        "S3slc",
			Description: "mid-range SLC: 256 KB stripe, fast reads, interface-capped",
			SSD: ssd.Config{
				Elements:      8,
				Geom:          geom(128),
				Timing:        flash.Timing{PageRead: slc.PageRead, PageProgram: slc.PageProgram, BlockErase: slc.BlockErase, BusPerByte: 60 * sim.Nanosecond},
				Overprovision: 0.10,
				Layout:        ssd.FullStripe,
				Scheduler:     sched.SWTF,
				StripeBytes:   256 << 10,
				CtrlOverhead:  15 * sim.Microsecond,
				InterfaceMBps: 76,
				// The real S3 had a 16 MB write cache the paper found
				// "ineffective in masking the write amplifications".
				WriteBufferBytes: 16 << 20,
				GCLow:            0.05, GCCritical: 0.02,
			},
			SeqReqBytes: 256 << 10, RandReqBytes: 4096,
			SeqReadDepth: 1, RandReadDepth: 2, SeqWriteDepth: 1, RandWriteDepth: 1,
		},
		{
			Name:        "S4slc_sim",
			Description: "the paper's simulated SSD: page mapping, seq/rand ratio near 1",
			SSD: ssd.Config{
				Elements:      8,
				Geom:          geom(128),
				Timing:        flash.Timing{PageRead: slc.PageRead, PageProgram: slc.PageProgram, BlockErase: slc.BlockErase, BusPerByte: 25 * sim.Nanosecond},
				Overprovision: 0.10,
				Layout:        ssd.Interleaved,
				Scheduler:     sched.SWTF,
				CtrlOverhead:  10 * sim.Microsecond,
				GCLow:         0.05, GCCritical: 0.02,
			},
			SeqReqBytes: 4096, RandReqBytes: 4096,
			SeqReadDepth: 1, RandReadDepth: 1, SeqWriteDepth: 2, RandWriteDepth: 2,
		},
		{
			Name:        "S5mlc",
			Description: "MLC device: slower writes, modest parallelism",
			SSD: ssd.Config{
				Elements:      8,
				Geom:          geom(128),
				Timing:        flash.Timing{PageRead: mlc.PageRead, PageProgram: mlc.PageProgram, BlockErase: mlc.BlockErase, BusPerByte: 80 * sim.Nanosecond},
				EraseBudget:   flash.EraseBudgetFor(flash.MLC),
				Overprovision: 0.10,
				Layout:        ssd.Interleaved,
				Scheduler:     sched.SWTF,
				CtrlOverhead:  20 * sim.Microsecond,
				InterfaceMBps: 68,
				GCLow:         0.05, GCCritical: 0.02,
			},
			SeqReqBytes: 256 << 10, RandReqBytes: 4096,
			SeqReadDepth: 1, RandReadDepth: 2, SeqWriteDepth: 1, RandWriteDepth: 4,
		},
	}
}

// BaseSSDConfig is the generic small flash device behind the "ssd" and
// "osd" base profiles (and the examples and benchmarks): 8 interleaved
// packages, 4 KB pages, SWTF dispatch, cleaning watermarks at 5%/2%.
func BaseSSDConfig() ssd.Config {
	return ssd.Config{
		Elements:      8,
		Geom:          geom(64),
		Overprovision: 0.10,
		Layout:        ssd.Interleaved,
		Scheduler:     sched.SWTF,
		CtrlOverhead:  10 * sim.Microsecond,
		GCLow:         0.05, GCCritical: 0.02,
	}
}

// init populates the registry: the Table 2 set, the extended Table 1
// classes, and a generic base profile per media kind so Open("ssd") and
// friends always resolve.
func init() {
	for _, p := range Profiles() {
		mustRegister(p)
	}
	var s4 ssd.Config
	for _, p := range Profiles() {
		if p.Name == "S4slc_sim" {
			s4 = p.SSD
		}
	}
	// The object front exists to carry allocation knowledge to the FTL
	// (§3.5): its device runs with informed cleaning on.
	s4.Informed = true
	mustRegister(Profile{
		Name:        "MEMS",
		Description: "MEMS storage (Schlosser & Ganger's G2)",
		Kind:        KindMEMS,
		MEMS:        DefaultMEMS(),
		SeqReqBytes: 1 << 20, RandReqBytes: 4096,
		SeqReadDepth: 1, RandReadDepth: 1, SeqWriteDepth: 1, RandWriteDepth: 1,
	})
	mustRegister(Profile{
		Name:        "RAID",
		Description: "RAID-5 array of five Barracuda-class spindles",
		Kind:        KindRAID,
		RAID:        DefaultRAID(),
		SeqReqBytes: 1 << 20, RandReqBytes: 4096,
		SeqReadDepth: 1, RandReadDepth: 1, SeqWriteDepth: 1, RandWriteDepth: 1,
	})
	mustRegister(Profile{
		Name:        "OSD",
		Description: "object-fronted S4-class SSD (block ops via the object store)",
		Kind:        KindOSD,
		SSD:         s4,
		SeqReqBytes: 4096, RandReqBytes: 4096,
		SeqReadDepth: 1, RandReadDepth: 1, SeqWriteDepth: 2, RandWriteDepth: 2,
	})
	// Generic per-kind bases: the starting point for option-built devices.
	mustRegister(Profile{
		Name:        "ssd",
		Description: "generic small SSD (base profile for option-built devices)",
		Kind:        KindSSD,
		SSD:         BaseSSDConfig(),
		SeqReqBytes: 1 << 20, RandReqBytes: 4096,
		SeqReadDepth: 1, RandReadDepth: 1, SeqWriteDepth: 1, RandWriteDepth: 1,
	})
	mustRegister(Profile{
		Name:        "hdd",
		Description: "generic Barracuda-class disk (base profile)",
		Kind:        KindHDD,
		HDD:         hdd.Barracuda7200(),
		SeqReqBytes: 1 << 20, RandReqBytes: 4096,
		SeqReadDepth: 1, RandReadDepth: 1, SeqWriteDepth: 1, RandWriteDepth: 1,
	})
	mustRegister(Profile{
		Name:        "mems",
		Description: "generic G2 MEMS device (base profile)",
		Kind:        KindMEMS,
		MEMS:        DefaultMEMS(),
		SeqReqBytes: 1 << 20, RandReqBytes: 4096,
		SeqReadDepth: 1, RandReadDepth: 1, SeqWriteDepth: 1, RandWriteDepth: 1,
	})
	mustRegister(Profile{
		Name:        "raid",
		Description: "generic five-spindle RAID-5 array (base profile)",
		Kind:        KindRAID,
		RAID:        DefaultRAID(),
		SeqReqBytes: 1 << 20, RandReqBytes: 4096,
		SeqReadDepth: 1, RandReadDepth: 1, SeqWriteDepth: 1, RandWriteDepth: 1,
	})
	osdBase := BaseSSDConfig()
	osdBase.Informed = true
	mustRegister(Profile{
		Name:        "osd",
		Description: "generic object-fronted SSD (base profile)",
		Kind:        KindOSD,
		SSD:         osdBase,
		SeqReqBytes: 4096, RandReqBytes: 4096,
		SeqReadDepth: 1, RandReadDepth: 1, SeqWriteDepth: 2, RandWriteDepth: 2,
	})
}
