// Package core is the public facade of the library: a unified Device
// interface over the simulated SSD (ossd/internal/ssd) and HDD
// (ossd/internal/hdd), the bandwidth-measurement harness used by the
// paper's Table 2, and the named device profiles the experiments run
// against. Examples, command-line tools, and benchmarks consume this
// package; the internal substrates stay swappable behind it.
package core

import (
	"fmt"

	"ossd/internal/hdd"
	"ossd/internal/sim"
	"ossd/internal/ssd"
	"ossd/internal/trace"
)

// Device is the block-level view shared by the SSD and HDD models: submit
// timed operations, replay traces, or drive a closed loop, all on a
// simulated clock.
type Device interface {
	// Submit enqueues an operation at the current simulated time; onDone
	// (optional) receives the response time when it completes.
	Submit(op trace.Op, onDone func(resp sim.Time, err error)) error
	// Play replays a timestamped trace to completion.
	Play(ops []trace.Op) error
	// ClosedLoop keeps depth ops outstanding, drawing from gen until it
	// returns false, then runs to completion.
	ClosedLoop(depth int, gen func(i int) (trace.Op, bool)) error
	// Engine returns the simulation engine.
	Engine() *sim.Engine
	// LogicalBytes reports the usable capacity.
	LogicalBytes() int64
	// Counters reports completed ops and host bytes moved.
	Counters() (completed int64, bytesRead, bytesWritten int64)
	// MeanResponseMs reports mean read and write response times.
	MeanResponseMs() (read, write float64)
}

// SSD wraps the flash device as a core.Device while keeping the rich
// internal API reachable via Raw.
type SSD struct {
	Raw *ssd.Device
}

// NewSSD builds a flash device on a fresh engine.
func NewSSD(cfg ssd.Config) (*SSD, error) {
	dev, err := ssd.New(sim.NewEngine(), cfg)
	if err != nil {
		return nil, err
	}
	return &SSD{Raw: dev}, nil
}

// Submit implements Device.
func (s *SSD) Submit(op trace.Op, onDone func(sim.Time, error)) error {
	var cb func(*ssd.Request)
	if onDone != nil {
		cb = func(r *ssd.Request) { onDone(r.Response(), r.Err) }
	}
	return s.Raw.Submit(op, cb)
}

// Play implements Device.
func (s *SSD) Play(ops []trace.Op) error { return s.Raw.Play(ops) }

// ClosedLoop implements Device.
func (s *SSD) ClosedLoop(depth int, gen func(int) (trace.Op, bool)) error {
	return s.Raw.ClosedLoop(depth, gen)
}

// Engine implements Device.
func (s *SSD) Engine() *sim.Engine { return s.Raw.Engine() }

// LogicalBytes implements Device.
func (s *SSD) LogicalBytes() int64 { return s.Raw.LogicalBytes() }

// Counters implements Device.
func (s *SSD) Counters() (int64, int64, int64) {
	m := s.Raw.Metrics()
	return m.Completed, m.BytesRead, m.BytesWritten
}

// MeanResponseMs implements Device.
func (s *SSD) MeanResponseMs() (float64, float64) {
	m := s.Raw.Metrics()
	return m.ReadResp.Mean(), m.WriteResp.Mean()
}

// HDD wraps the disk model as a core.Device.
type HDD struct {
	Raw *hdd.Disk
}

// NewHDD builds a disk on a fresh engine.
func NewHDD(cfg hdd.Config) (*HDD, error) {
	d, err := hdd.New(sim.NewEngine(), cfg)
	if err != nil {
		return nil, err
	}
	return &HDD{Raw: d}, nil
}

// Submit implements Device.
func (h *HDD) Submit(op trace.Op, onDone func(sim.Time, error)) error {
	var cb func(*hdd.Request)
	if onDone != nil {
		cb = func(r *hdd.Request) { onDone(r.Response(), nil) }
	}
	return h.Raw.Submit(op, cb)
}

// Play implements Device.
func (h *HDD) Play(ops []trace.Op) error { return h.Raw.Play(ops) }

// ClosedLoop implements Device.
func (h *HDD) ClosedLoop(depth int, gen func(int) (trace.Op, bool)) error {
	return h.Raw.ClosedLoop(depth, gen)
}

// Engine implements Device.
func (h *HDD) Engine() *sim.Engine { return h.Raw.Engine() }

// LogicalBytes implements Device.
func (h *HDD) LogicalBytes() int64 { return h.Raw.LogicalBytes() }

// Counters implements Device.
func (h *HDD) Counters() (int64, int64, int64) {
	m := h.Raw.Metrics()
	return m.Completed, m.BytesRead, m.BytesWritten
}

// MeanResponseMs implements Device.
func (h *HDD) MeanResponseMs() (float64, float64) {
	m := h.Raw.Metrics()
	return m.ReadResp.Mean(), m.WriteResp.Mean()
}

// Compile-time interface checks.
var (
	_ Device = (*SSD)(nil)
	_ Device = (*HDD)(nil)
)

// Precondition sequentially writes the whole device once so that every
// logical page is mapped: reads hit real media and overwrites trigger
// read-modify-write and cleaning, which is the steady state the paper's
// measurements reflect.
func Precondition(d Device, chunk int64) error {
	return PreconditionFrac(d, chunk, 1.0)
}

// PreconditionFrac fills only the first frac of the address space. Device
// utilization governs garbage-collection cost (victim blocks at u
// utilization are ~u full, so cleaning one block reclaims ~(1-u) of it);
// experiments choose the utilization their workload represents instead of
// always paying the worst case.
func PreconditionFrac(d Device, chunk int64, frac float64) error {
	if chunk <= 0 {
		chunk = 1 << 20
	}
	if frac <= 0 || frac > 1 {
		return fmt.Errorf("core: precondition fraction %v out of (0, 1]", frac)
	}
	space := int64(float64(d.LogicalBytes()) * frac)
	var off int64
	return d.ClosedLoop(1, func(int) (trace.Op, bool) {
		if off >= space {
			return trace.Op{}, false
		}
		size := chunk
		if off+size > space {
			size = space - off
		}
		op := trace.Op{Kind: trace.Write, Offset: off, Size: size}
		off += size
		return op, true
	})
}

// Pattern selects the access pattern of a bandwidth measurement.
type Pattern int

const (
	// Sequential walks the address space in order.
	Sequential Pattern = iota
	// Random draws uniform aligned offsets.
	Random
)

// BWOptions configures a bandwidth measurement.
type BWOptions struct {
	// Kind is trace.Read or trace.Write.
	Kind trace.Kind
	// Pattern is Sequential or Random.
	Pattern Pattern
	// ReqBytes is the request size.
	ReqBytes int64
	// TotalBytes bounds the bytes moved by the measurement.
	TotalBytes int64
	// Depth is the closed-loop queue depth.
	Depth int
	// Seed drives the random pattern.
	Seed int64
}

// MeasureBandwidth runs a closed-loop scan and returns MB/s over the
// measurement window (first submission to last completion).
func MeasureBandwidth(d Device, o BWOptions) (float64, error) {
	if o.ReqBytes <= 0 || o.TotalBytes < o.ReqBytes {
		return 0, fmt.Errorf("core: bad measurement sizes: req %d total %d", o.ReqBytes, o.TotalBytes)
	}
	space := d.LogicalBytes()
	if o.ReqBytes > space {
		return 0, fmt.Errorf("core: request larger than device")
	}
	rng := sim.NewRNG(o.Seed)
	slots := space / o.ReqBytes
	n := int(o.TotalBytes / o.ReqBytes)
	start := d.Engine().Now()
	var off int64
	i := 0
	err := d.ClosedLoop(o.Depth, func(int) (trace.Op, bool) {
		if i >= n {
			return trace.Op{}, false
		}
		i++
		var o2 int64
		switch o.Pattern {
		case Sequential:
			if off+o.ReqBytes > space {
				off = 0
			}
			o2 = off
			off += o.ReqBytes
		case Random:
			o2 = rng.Int63n(slots) * o.ReqBytes
		}
		return trace.Op{Kind: o.Kind, Offset: o2, Size: o.ReqBytes}, true
	})
	if err != nil {
		return 0, err
	}
	elapsed := (d.Engine().Now() - start).Seconds()
	if elapsed <= 0 {
		return 0, fmt.Errorf("core: measurement window empty")
	}
	return float64(int64(n)*o.ReqBytes) / 1e6 / elapsed, nil
}
