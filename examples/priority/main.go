// Priority: quality-of-service via priority-aware cleaning (§3.6). Two
// identical devices serve the same mixed workload — 10% foreground
// (priority) requests, 90% background — but one postpones low-watermark
// cleaning while priority requests are outstanding. The foreground class
// sees better response times on the aware device.
package main

import (
	"fmt"
	"log"

	"ossd/internal/core"
	"ossd/internal/flash"
	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/ssd"
	"ossd/internal/trace"
	"ossd/internal/workload"
)

func run(aware bool) (fgMs, bgMs float64, cleans int64) {
	d, err := core.Open("ssd",
		core.WithSSD(ssd.Config{
			Elements:      16,
			Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 64, BlocksPerPackage: 64},
			Overprovision: 0.10,
			Layout:        ssd.Interleaved,
			Scheduler:     sched.SWTF,
			CtrlOverhead:  10 * sim.Microsecond,
			GCLow:         0.05,
			GCCritical:    0.02,
		}),
		core.WithPriorityAware(aware),
	)
	if err != nil {
		log.Fatal(err)
	}
	dev := d.(*core.SSD)
	// Fill to 75% twice: the second pass drains the free pool so cleaning
	// is active from the start.
	for i := 0; i < 2; i++ {
		if err := core.PreconditionFrac(dev, 1<<20, 0.75); err != nil {
			log.Fatal(err)
		}
	}
	// The workload is a stream: generated op by op as the device pulls
	// it, shifted past the preconditioning window.
	stream, err := workload.Synthetic(workload.SyntheticConfig{
		Ops:            40000,
		AddressSpace:   int64(float64(dev.LogicalBytes()) * 0.75),
		ReadFrac:       0.4,
		ReqSize:        4096,
		InterarrivalHi: 100 * sim.Microsecond,
		PriorityFrac:   0.10,
		Seed:           42,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := dev.Drive(trace.Shift(stream, dev.Engine().Now())); err != nil {
		log.Fatal(err)
	}
	m := dev.Raw.Metrics()
	return m.PriResp.Mean(), m.BgResp.Mean(), m.BackgroundCleans
}

func main() {
	fgA, bgA, cleansA := run(false)
	fgP, bgP, cleansP := run(true)
	fmt.Printf("priority-agnostic: foreground %.3f ms, background %.3f ms (%d cleans)\n", fgA, bgA, cleansA)
	fmt.Printf("priority-aware:    foreground %.3f ms, background %.3f ms (%d cleans)\n", fgP, bgP, cleansP)
	if fgA > 0 {
		fmt.Printf("foreground improvement from awareness: %.1f%%\n", (fgA-fgP)/fgA*100)
	}
	fmt.Println("\nthe aware device defers low-watermark cleaning while priority")
	fmt.Println("requests are queued, cleaning at the critical watermark instead —")
	fmt.Println("Figure 3 / Table 6 of the paper.")
}
