package ring

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// testKey derives a deterministic key stream for distribution tests.
func testKey(i int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "key-%d", i)
	return h.Sum64()
}

func TestDeterministicAcrossInputOrder(t *testing.T) {
	// Every instance must derive the same ownership map from the same
	// member set, no matter how its flags order the peers or which
	// member it is.
	a := New("http://a:8080", []string{"http://b:8080", "http://c:8080"}, 64)
	b := New("http://b:8080", []string{"http://c:8080", "http://a:8080"}, 64)
	c := New("http://c:8080", []string{"http://a:8080", "http://b:8080", "http://c:8080"}, 64)
	for i := 0; i < 10_000; i++ {
		k := testKey(i)
		if a.Owner(k) != b.Owner(k) || a.Owner(k) != c.Owner(k) {
			t.Fatalf("key %d: owners disagree: %q %q %q", i, a.Owner(k), b.Owner(k), c.Owner(k))
		}
	}
}

func TestSingleMemberOwnsEverything(t *testing.T) {
	r := New("http://only:8080", nil, 0)
	for i := 0; i < 1000; i++ {
		if !r.IsSelf(testKey(i)) {
			t.Fatalf("single-member ring does not own key %d", i)
		}
	}
}

func TestEmptyAndDuplicateMembers(t *testing.T) {
	r := New("http://a:8080", []string{"", "http://a:8080", "http://b:8080", "http://b:8080"}, 8)
	if got := r.Members(); len(got) != 2 {
		t.Fatalf("members = %v, want the 2 distinct addresses", got)
	}
}

func TestBalance(t *testing.T) {
	// With virtual nodes, ownership over many keys must be roughly
	// uniform: every member within 2x of the fair share in either
	// direction (the default vnode count keeps real spread far tighter;
	// the loose bound keeps the test hash-function-agnostic).
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1", "http://e:1"}
	r := New(members[0], members[1:], 0)
	const keys = 50_000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Owner(testKey(i))]++
	}
	fair := keys / len(members)
	for _, m := range members {
		if counts[m] < fair/2 || counts[m] > fair*2 {
			t.Fatalf("member %s owns %d of %d keys (fair share %d): distribution too skewed: %v",
				m, counts[m], keys, fair, counts)
		}
	}
}

func TestMinimalRemappingOnGrowth(t *testing.T) {
	// Consistent hashing's contract: adding one member to an n-member
	// ring moves only the keys the new member takes over — about
	// 1/(n+1) of them — and a key that moves always moves TO the new
	// member, never between surviving members.
	old := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	grown := append(append([]string(nil), old...), "http://e:1")
	before := New(old[0], old[1:], 0)
	after := New(grown[0], grown[1:], 0)
	const keys = 50_000
	moved := 0
	for i := 0; i < keys; i++ {
		k := testKey(i)
		was, is := before.Owner(k), after.Owner(k)
		if was == is {
			continue
		}
		moved++
		if is != "http://e:1" {
			t.Fatalf("key %d moved %q -> %q: remapping between surviving members", i, was, is)
		}
	}
	// Expect ~1/5 of keys to move; 2/5 bounds hash-function variance.
	if moved == 0 || moved > keys*2/5 {
		t.Fatalf("%d of %d keys moved on growth, want ~%d", moved, keys, keys/5)
	}
}

func TestOwnerWraparound(t *testing.T) {
	r := New("http://a:1", []string{"http://b:1"}, 4)
	// A key past the highest point wraps to the first point's member.
	top := r.points[len(r.points)-1].hash
	if top < ^uint64(0) {
		if got, want := r.Owner(top+1), r.points[0].member; got != want {
			t.Fatalf("wraparound owner %q, want %q", got, want)
		}
	}
	if got, want := r.Owner(r.points[0].hash), r.points[0].member; got != want {
		t.Fatalf("exact-hit owner %q, want %q", got, want)
	}
}

func BenchmarkOwner(b *testing.B) {
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1", "http://e:1"}
	r := New(members[0], members[1:], 0)
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = testKey(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(keys[i&1023])
	}
}
