// Quickstart: build a simulated SSD, issue block I/O against it, and read
// back the device statistics. This is the smallest useful program against
// the library's block-level API.
package main

import (
	"fmt"
	"log"

	"ossd/internal/core"
	"ossd/internal/flash"
	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/ssd"
	"ossd/internal/trace"
)

func main() {
	// A small SSD: 8 flash packages, 4 KB pages, 64-page blocks,
	// page-interleaved mapping, cleaning watermarks at 5%/2%.
	dev, err := core.NewSSD(ssd.Config{
		Elements:      8,
		Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 64, BlocksPerPackage: 64},
		Overprovision: 0.10,
		Layout:        ssd.Interleaved,
		Scheduler:     sched.SWTF,
		CtrlOverhead:  10 * sim.Microsecond,
		GCLow:         0.05,
		GCCritical:    0.02,
		Informed:      true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device capacity: %d MB\n", dev.LogicalBytes()>>20)

	// Write 4 MB sequentially, then read it back, then overwrite part of
	// it randomly. Submit queues work; the simulation engine runs it.
	var ops []trace.Op
	var at sim.Time
	for off := int64(0); off < 4<<20; off += 64 << 10 {
		ops = append(ops, trace.Op{At: at, Kind: trace.Write, Offset: off, Size: 64 << 10})
		at += 500 * sim.Microsecond
	}
	for off := int64(0); off < 4<<20; off += 64 << 10 {
		ops = append(ops, trace.Op{At: at, Kind: trace.Read, Offset: off, Size: 64 << 10})
		at += 500 * sim.Microsecond
	}
	// Tell the device a range is dead (the TRIM/OSD-delete signal); the
	// informed FTL drops the mapping so cleaning never copies it.
	ops = append(ops, trace.Op{At: at, Kind: trace.Free, Offset: 1 << 20, Size: 1 << 20})

	if err := dev.Play(ops); err != nil {
		log.Fatal(err)
	}

	m := dev.Metrics()
	fmt.Printf("completed:       %d requests in %v simulated\n", m.Completed, dev.Engine().Now())
	fmt.Printf("moved:           %d MB written, %d MB read\n", m.BytesWritten>>20, m.BytesRead>>20)
	fmt.Printf("mean response:   read %.3f ms, write %.3f ms\n", m.MeanReadMs, m.MeanWriteMs)

	g := dev.Raw.GCStats()
	fmt.Printf("free notices:    %d pages dropped from the FTL\n", g.FreesApplied)
	fmt.Printf("write amp:       %.2fx\n", dev.Raw.WriteAmplification())
}
