// Package fsmodel is a minimal file-system block allocator: a block
// bitmap with next-fit extent allocation and per-file extent lists. It
// stands in for the paper's ext3-aware pseudo-device driver (§3.5): the
// Postmark workload generator runs file create/write/read/delete
// operations through it to obtain a block-level trace in which deletions
// appear as free notifications at the exact block ranges the file
// occupied.
package fsmodel

import (
	"errors"
	"fmt"
	"sort"
)

// FileID names a file within the model.
type FileID int64

// Extent is a contiguous run of blocks.
type Extent struct {
	// Start is the first block; Count the run length.
	Start, Count int64
}

// Bytes converts the extent to a byte range for a given block size.
func (e Extent) Bytes(blockSize int64) (off, size int64) {
	return e.Start * blockSize, e.Count * blockSize
}

// Errors.
var (
	ErrNoSpace    = errors.New("fsmodel: file system full")
	ErrNotFound   = errors.New("fsmodel: no such file")
	ErrBadRequest = errors.New("fsmodel: invalid request")
)

// FS is the allocator state. Not safe for concurrent use.
type FS struct {
	blockSize int64
	nblocks   int64
	bitmap    []uint64
	free      int64
	hint      int64 // next-fit cursor
	files     map[FileID][]Extent
	nextID    FileID
}

// New builds an empty file system over capacity bytes.
func New(capacity, blockSize int64) (*FS, error) {
	if blockSize <= 0 || capacity < blockSize {
		return nil, fmt.Errorf("%w: capacity %d blockSize %d", ErrBadRequest, capacity, blockSize)
	}
	n := capacity / blockSize
	return &FS{
		blockSize: blockSize,
		nblocks:   n,
		bitmap:    make([]uint64, (n+63)/64),
		free:      n,
		files:     make(map[FileID][]Extent),
	}, nil
}

// BlockSize returns the block size in bytes.
func (fs *FS) BlockSize() int64 { return fs.blockSize }

// Blocks returns the total block count.
func (fs *FS) Blocks() int64 { return fs.nblocks }

// FreeBlocks returns the number of unallocated blocks.
func (fs *FS) FreeBlocks() int64 { return fs.free }

// Files returns the number of live files.
func (fs *FS) Files() int { return len(fs.files) }

func (fs *FS) isSet(b int64) bool { return fs.bitmap[b/64]&(1<<(uint(b)%64)) != 0 }
func (fs *FS) set(b int64)        { fs.bitmap[b/64] |= 1 << (uint(b) % 64) }
func (fs *FS) clear(b int64)      { fs.bitmap[b/64] &^= 1 << (uint(b) % 64) }

// Create registers a new empty file and returns its ID.
func (fs *FS) Create() FileID {
	fs.nextID++
	fs.files[fs.nextID] = nil
	return fs.nextID
}

// Exists reports whether a file is live.
func (fs *FS) Exists(id FileID) bool {
	_, ok := fs.files[id]
	return ok
}

// Extents returns a copy of a file's extent list.
func (fs *FS) Extents(id FileID) ([]Extent, error) {
	ex, ok := fs.files[id]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]Extent(nil), ex...), nil
}

// SizeBlocks returns a file's length in blocks.
func (fs *FS) SizeBlocks(id FileID) (int64, error) {
	ex, ok := fs.files[id]
	if !ok {
		return 0, ErrNotFound
	}
	var n int64
	for _, e := range ex {
		n += e.Count
	}
	return n, nil
}

// Append allocates n blocks to a file with next-fit placement and
// returns the newly-allocated extents (possibly several when free space
// is fragmented).
func (fs *FS) Append(id FileID, n int64) ([]Extent, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: append %d blocks", ErrBadRequest, n)
	}
	ex, ok := fs.files[id]
	if !ok {
		return nil, ErrNotFound
	}
	if n > fs.free {
		return nil, ErrNoSpace
	}
	var got []Extent
	remaining := n
	cursor := fs.hint
	scanned := int64(0)
	var run Extent
	flushRun := func() {
		if run.Count > 0 {
			got = append(got, run)
			run = Extent{}
		}
	}
	for remaining > 0 && scanned < fs.nblocks {
		b := cursor % fs.nblocks
		if !fs.isSet(b) {
			fs.set(b)
			fs.free--
			remaining--
			if run.Count > 0 && run.Start+run.Count == b {
				run.Count++
			} else {
				flushRun()
				run = Extent{Start: b, Count: 1}
			}
		} else if run.Count > 0 {
			flushRun()
		}
		cursor++
		scanned++
	}
	flushRun()
	fs.hint = cursor % fs.nblocks
	if remaining > 0 {
		// Roll back: free counter said there was room, so this is a bug.
		panic("fsmodel: free-count/bitmap mismatch")
	}
	fs.files[id] = append(ex, got...)
	return got, nil
}

// Delete removes a file and returns its extents (now free), merged and
// sorted, ready to become free notifications.
func (fs *FS) Delete(id FileID) ([]Extent, error) {
	ex, ok := fs.files[id]
	if !ok {
		return nil, ErrNotFound
	}
	delete(fs.files, id)
	for _, e := range ex {
		for b := e.Start; b < e.Start+e.Count; b++ {
			if !fs.isSet(b) {
				panic(fmt.Sprintf("fsmodel: double free of block %d", b))
			}
			fs.clear(b)
			fs.free++
		}
	}
	return MergeExtents(ex), nil
}

// MergeExtents sorts and coalesces adjacent or overlapping extents.
func MergeExtents(ex []Extent) []Extent {
	if len(ex) == 0 {
		return nil
	}
	out := append([]Extent(nil), ex...)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	merged := out[:1]
	for _, e := range out[1:] {
		last := &merged[len(merged)-1]
		if e.Start <= last.Start+last.Count {
			if end := e.Start + e.Count; end > last.Start+last.Count {
				last.Count = end - last.Start
			}
		} else {
			merged = append(merged, e)
		}
	}
	return merged
}

// CheckInvariants validates bitmap/extent consistency.
func (fs *FS) CheckInvariants() error {
	used := make(map[int64]FileID)
	for id, ex := range fs.files {
		for _, e := range ex {
			if e.Start < 0 || e.Count <= 0 || e.Start+e.Count > fs.nblocks {
				return fmt.Errorf("file %d: extent %+v out of range", id, e)
			}
			for b := e.Start; b < e.Start+e.Count; b++ {
				if owner, dup := used[b]; dup {
					return fmt.Errorf("block %d owned by files %d and %d", b, owner, id)
				}
				used[b] = id
				if !fs.isSet(b) {
					return fmt.Errorf("file %d block %d not marked in bitmap", id, b)
				}
			}
		}
	}
	var setCount int64
	for b := int64(0); b < fs.nblocks; b++ {
		if fs.isSet(b) {
			setCount++
		}
	}
	if setCount != int64(len(used)) {
		return fmt.Errorf("bitmap has %d set blocks, files own %d", setCount, len(used))
	}
	if fs.free != fs.nblocks-setCount {
		return fmt.Errorf("free count %d, want %d", fs.free, fs.nblocks-setCount)
	}
	return nil
}
