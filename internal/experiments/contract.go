package experiments

import (
	"fmt"

	"ossd/internal/core"
	"ossd/internal/runner"
	"ossd/internal/sim"
	"ossd/internal/stats"
	"ossd/internal/trace"
)

// ContractRow is one term of the unwritten contract with the verdicts
// for all four device classes of the paper's Table 1 and the measured
// evidence.
type ContractRow struct {
	Term     string
	Disk     bool
	RAID     bool
	MEMS     bool
	SSD      bool
	Evidence string
}

// ContractResult reproduces Table 1 empirically: each term of the
// unwritten contract is probed on the disk, RAID, MEMS, and SSD models,
// and the verdicts are compared against the paper's T/F entries.
type ContractResult struct {
	Rows []ContractRow
}

// ID implements Result.
func (ContractResult) ID() string { return "contract" }

func (r ContractResult) String() string {
	tf := func(b bool) string {
		if b {
			return "T"
		}
		return "F"
	}
	t := stats.NewTable("Table 1: Unwritten Contract (probed empirically)",
		"Term", "Disk", "RAID", "MEMS", "SSD", "Evidence")
	for _, row := range r.Rows {
		t.AddRow(row.Term, tf(row.Disk), tf(row.RAID), tf(row.MEMS), tf(row.SSD), row.Evidence)
	}
	t.AddNote("paper: Disk T/T/F/T/T/T, RAID T/F/F/F/T/T, MEMS all T, SSD all F")
	t.AddNote("(term 3 on today's homogeneous SSDs measures T; it fails once SLC+MLC mix)")
	return t.String()
}

// deviceClass bundles a Table 1 column: a factory plus class-specific
// probes for amplification, wear, and background activity.
type deviceClass struct {
	name string
	mk   func() (core.Device, error)
	// seqReq is the request size for sequential probes.
	seqReq int64
	// writeAmp measures spindle/media write bytes per host byte over a
	// random-write phase.
	writeAmp func(d core.Device, seed int64) (float64, error)
	// wearAndBackground reports erase cycles consumed and self-initiated
	// background passes after a churn phase.
	wearAndBackground func(d core.Device, seed int64) (int64, int64, error)
}

func contractClasses() []deviceClass {
	passive := func(core.Device, int64) (int64, int64, error) { return 0, 0, nil }
	return []deviceClass{
		{
			name:   "Disk",
			mk:     func() (core.Device, error) { return core.Open("HDD") },
			seqReq: 1 << 20,
			writeAmp: func(d core.Device, seed int64) (float64, error) {
				return 1, nil // one platter write per host write
			},
			wearAndBackground: passive,
		},
		{
			name:   "RAID",
			mk:     func() (core.Device, error) { return core.Open("RAID") },
			seqReq: 1 << 20,
			writeAmp: func(d core.Device, seed int64) (float64, error) {
				r := d.(*core.RAID)
				if err := randomWrites(d, 2<<20, seed); err != nil {
					return 0, err
				}
				return r.Raw.WriteAmplification(), nil
			},
			wearAndBackground: passive,
		},
		{
			name:   "MEMS",
			mk:     func() (core.Device, error) { return core.Open("MEMS") },
			seqReq: 1 << 20,
			writeAmp: func(d core.Device, seed int64) (float64, error) {
				return 1, nil // in-place media writes
			},
			wearAndBackground: passive,
		},
		{
			name: "SSD",
			mk: func() (core.Device, error) {
				d, err := core.Open("S4slc_sim")
				if err != nil {
					return nil, err
				}
				return d, core.Precondition(d, 1<<20)
			},
			seqReq: 4096,
			writeAmp: func(d core.Device, seed int64) (float64, error) {
				// Use the full-stripe profile, where amplification is at
				// its most visible (the paper's own §3.4 example).
				p, err := core.ProfileByName("S2slc")
				if err != nil {
					return 0, err
				}
				s2, err := preconditioned(p)
				if err != nil {
					return 0, err
				}
				sd := s2.(*core.SSD)
				gB, mB := sd.Raw.GCStats(), sd.Raw.Metrics()
				if err := randomWrites(s2, 1<<20, seed); err != nil {
					return 0, err
				}
				gA, mA := sd.Raw.GCStats(), sd.Raw.Metrics()
				media := float64(gA.HostPageWrites + gA.PagesMoved - gB.HostPageWrites - gB.PagesMoved)
				host := float64(mA.BytesWritten-mB.BytesWritten) / 4096
				return media / host, nil
			},
			wearAndBackground: func(d core.Device, seed int64) (int64, int64, error) {
				sd := d.(*core.SSD)
				if err := randomWrites(d, 32<<20, seed); err != nil {
					return 0, 0, err
				}
				var erases int64
				for _, el := range sd.Raw.Elements() {
					erases += el.Wear().Total
				}
				return erases, sd.Raw.Metrics().BackgroundCleans, nil
			},
		},
	}
}

// randomWrites drives total bytes of 4 KB random writes at depth 4.
func randomWrites(d core.Device, total int64, seed int64) error {
	rng := sim.NewRNG(seed)
	n := int(total / 4096)
	space := d.LogicalBytes() / 4096
	i := 0
	return d.ClosedLoop(4, func(int) (trace.Op, bool) {
		if i >= n {
			return trace.Op{}, false
		}
		i++
		return trace.Op{Kind: trace.Write, Offset: rng.Int63n(space) * 4096, Size: 4096}, true
	})
}

// classMeasurements holds the per-class probe outputs.
type classMeasurements struct {
	seqRandRatio float64
	farNearRatio float64
	regionRatio  float64
	writeAmp     float64
	erases       int64
	background   int64
}

func measureClass(c deviceClass, seed int64) (classMeasurements, error) {
	var m classMeasurements

	// Probe 1: sequential vs random read bandwidth.
	d, err := c.mk()
	if err != nil {
		return m, err
	}
	if _, ok := d.(*core.SSD); !ok {
		// Non-SSD devices need no preconditioning but profit from warmup.
	}
	seq, err := core.MeasureBandwidth(d, core.BWOptions{
		Kind: trace.Read, Pattern: core.Sequential,
		ReqBytes: c.seqReq, TotalBytes: 16 << 20, Depth: 1, Seed: seed,
	})
	if err != nil {
		return m, err
	}
	rnd, err := core.MeasureBandwidth(d, core.BWOptions{
		Kind: trace.Read, Pattern: core.Random,
		ReqBytes: 4096, TotalBytes: 2 << 20, Depth: 1, Seed: seed,
	})
	if err != nil {
		return m, err
	}
	m.seqRandRatio = stats.Ratio(seq, rnd)

	// Probe 2: alternate reads between offset 0 and a target, near vs
	// far. On striped arrays the two spots live on different spindles
	// whose heads stay put, so distance stops predicting latency.
	lat := func(dist int64) (float64, error) {
		d, err := c.mk()
		if err != nil {
			return 0, err
		}
		toggle := false
		i := 0
		err = d.ClosedLoop(1, func(int) (trace.Op, bool) {
			if i >= 40 {
				return trace.Op{}, false
			}
			i++
			off := int64(0)
			if toggle {
				off = dist
			}
			toggle = !toggle
			return trace.Op{Kind: trace.Read, Offset: off, Size: 4096}, true
		})
		if err != nil {
			return 0, err
		}
		return d.Metrics().MeanReadMs, nil
	}
	span := d.LogicalBytes() - 4096
	near, err := lat(1 << 20)
	if err != nil {
		return m, err
	}
	far, err := lat(span)
	if err != nil {
		return m, err
	}
	m.farNearRatio = far / near

	// Probe 3: sequential bandwidth at the two ends of the address space.
	region := func(tail bool) (float64, error) {
		d, err := c.mk()
		if err != nil {
			return 0, err
		}
		space := d.LogicalBytes()
		req := c.seqReq
		regionLen := space / 10 / req * req
		if regionLen < req {
			regionLen = req
		}
		base := int64(0)
		if tail {
			base = (space - regionLen) / req * req
		}
		var off int64
		n := int(16 << 20 / req)
		if n == 0 {
			n = 1
		}
		i := 0
		start := d.Engine().Now()
		err = d.ClosedLoop(1, func(int) (trace.Op, bool) {
			if i >= n {
				return trace.Op{}, false
			}
			i++
			if off+req > regionLen {
				off = 0
			}
			op := trace.Op{Kind: trace.Read, Offset: base + off, Size: req}
			off += req
			return op, true
		})
		if err != nil {
			return 0, err
		}
		return float64(int64(n)*req) / 1e6 / (d.Engine().Now() - start).Seconds(), nil
	}
	outer, err := region(false)
	if err != nil {
		return m, err
	}
	inner, err := region(true)
	if err != nil {
		return m, err
	}
	m.regionRatio = outer / inner

	// Probe 4: write amplification.
	d4, err := c.mk()
	if err != nil {
		return m, err
	}
	m.writeAmp, err = c.writeAmp(d4, seed)
	if err != nil {
		return m, err
	}

	// Probes 5/6: wear and background activity.
	d5, err := c.mk()
	if err != nil {
		return m, err
	}
	m.erases, m.background, err = c.wearAndBackground(d5, seed)
	return m, err
}

// Contract runs all probes on all four device classes, one spec per
// class (each class's probes build their own fresh devices). workers
// caps the pool (0 = runner default).
func Contract(seed int64, workers int) (ContractResult, error) {
	var res ContractResult
	classes := contractClasses()
	specs := make([]runner.Spec[classMeasurements], len(classes))
	for i, c := range classes {
		c := c
		specs[i] = runner.Spec[classMeasurements]{
			Name:    "contract/" + c.name,
			Profile: c.name,
			Seed:    seed,
			Run:     func() (classMeasurements, error) { return measureClass(c, seed) },
		}
	}
	ms, err := runner.Run(specs, runner.Options{Workers: workers})
	if err != nil {
		return res, err
	}
	disk, rd, mm, ssd := ms[0], ms[1], ms[2], ms[3]

	res.Rows = append(res.Rows, ContractRow{
		Term: "1. Sequential >> random",
		Disk: disk.seqRandRatio > 10, RAID: rd.seqRandRatio > 10,
		MEMS: mm.seqRandRatio > 10, SSD: ssd.seqRandRatio > 10,
		Evidence: fmt.Sprintf("seq/rand: disk %.0fx raid %.0fx mems %.0fx ssd %.1fx",
			disk.seqRandRatio, rd.seqRandRatio, mm.seqRandRatio, ssd.seqRandRatio),
	})
	res.Rows = append(res.Rows, ContractRow{
		Term: "2. Distant LBNs cost more",
		Disk: disk.farNearRatio > 1.3, RAID: rd.farNearRatio > 1.3,
		MEMS: mm.farNearRatio > 1.3, SSD: ssd.farNearRatio > 1.3,
		Evidence: fmt.Sprintf("far/near: disk %.1fx raid %.2fx mems %.2fx ssd %.2fx",
			disk.farNearRatio, rd.farNearRatio, mm.farNearRatio, ssd.farNearRatio),
	})
	uniform := func(r float64) bool { return r < 1.2 && r > 0.8 }
	res.Rows = append(res.Rows, ContractRow{
		Term: "3. Address space interchangeable",
		Disk: uniform(disk.regionRatio), RAID: uniform(rd.regionRatio),
		MEMS: uniform(mm.regionRatio), SSD: uniform(ssd.regionRatio),
		Evidence: fmt.Sprintf("outer/inner BW: disk %.2fx raid %.2fx mems %.2fx ssd %.2fx",
			disk.regionRatio, rd.regionRatio, mm.regionRatio, ssd.regionRatio),
	})
	res.Rows = append(res.Rows, ContractRow{
		Term: "4. Data written == data issued",
		Disk: disk.writeAmp < 1.5, RAID: rd.writeAmp < 1.5,
		MEMS: mm.writeAmp < 1.5, SSD: ssd.writeAmp < 1.5,
		Evidence: fmt.Sprintf("write amp: disk %.0fx raid %.1fx (parity) mems %.0fx ssd %.0fx (stripe RMW)",
			disk.writeAmp, rd.writeAmp, mm.writeAmp, ssd.writeAmp),
	})
	res.Rows = append(res.Rows, ContractRow{
		Term: "5. Media does not wear",
		Disk: disk.erases == 0, RAID: rd.erases == 0,
		MEMS: mm.erases == 0, SSD: ssd.erases == 0,
		Evidence: fmt.Sprintf("ssd consumed %d erase cycles under churn; others none", ssd.erases),
	})
	res.Rows = append(res.Rows, ContractRow{
		Term: "6. Storage is passive",
		Disk: disk.background == 0, RAID: rd.background == 0,
		MEMS: mm.background == 0, SSD: ssd.background == 0,
		Evidence: fmt.Sprintf("ssd ran %d cleaning passes on its own; others none", ssd.background),
	})
	return res, nil
}
