package ssd

import (
	"testing"

	"ossd/internal/sim"
	"ossd/internal/trace"
)

func hetConfig() Config {
	c := testConfig()
	c.Elements = 4
	c.MLCElements = 2
	return c
}

func TestHetConfigValidation(t *testing.T) {
	c := hetConfig()
	c.Layout = FullStripe
	c.StripeBytes = 0
	if _, err := New(sim.NewEngine(), c); err == nil {
		t.Error("accepted heterogeneous full-stripe device")
	}
	c = hetConfig()
	c.MLCElements = 4
	if _, err := New(sim.NewEngine(), c); err == nil {
		t.Error("accepted all-MLC MLCElements == Elements")
	}
	c = hetConfig()
	c.MLCElements = -1
	if _, err := New(sim.NewEngine(), c); err == nil {
		t.Error("accepted negative MLCElements")
	}
}

func TestRegionBoundary(t *testing.T) {
	_, d := newDevice(t, hetConfig())
	b := d.RegionBoundary()
	if b != d.LogicalBytes()/2 {
		t.Fatalf("boundary = %d, want half of %d", b, d.LogicalBytes())
	}
	_, homo := newDevice(t, testConfig())
	if homo.RegionBoundary() != 0 {
		t.Fatal("homogeneous device reports a boundary")
	}
}

func TestPageHomeSplitsRegions(t *testing.T) {
	_, d := newDevice(t, hetConfig())
	ps := int64(4096)
	slcPages := d.RegionBoundary() / ps
	// SLC region pages live on elements 0..1; MLC region on 2..3.
	for l := int64(0); l < slcPages; l += slcPages / 7 {
		if e, _ := d.pageHome(l); e >= 2 {
			t.Fatalf("slc page %d on element %d", l, e)
		}
	}
	total := d.LogicalBytes() / ps
	for l := slcPages; l < total; l += (total - slcPages) / 7 {
		if e, _ := d.pageHome(l); e < 2 {
			t.Fatalf("mlc page %d on element %d", l, e)
		}
	}
}

func TestPageHomeBijective(t *testing.T) {
	_, d := newDevice(t, hetConfig())
	total := d.LogicalBytes() / 4096
	seen := make(map[[2]int]bool)
	for l := int64(0); l < total; l++ {
		e, elpn := d.pageHome(l)
		if e < 0 || e >= 4 {
			t.Fatalf("page %d: element %d", l, e)
		}
		if elpn < 0 || elpn >= d.elems[e].LogicalPages() {
			t.Fatalf("page %d: elpn %d of %d", l, elpn, d.elems[e].LogicalPages())
		}
		key := [2]int{e, elpn}
		if seen[key] {
			t.Fatalf("page %d collides at element %d page %d", l, e, elpn)
		}
		seen[key] = true
	}
}

func TestMLCRegionSlower(t *testing.T) {
	eng, d := newDevice(t, hetConfig())
	var slc, mlc *Request
	// One 4 KB write in each region.
	d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 4096}, func(r *Request) { slc = r })
	d.Submit(trace.Op{Kind: trace.Write, Offset: d.RegionBoundary(), Size: 4096}, func(r *Request) { mlc = r })
	eng.Run()
	if slc == nil || mlc == nil {
		t.Fatal("writes did not complete")
	}
	// MLC program is 4x the SLC program time.
	if mlc.Response() <= 2*slc.Response() {
		t.Fatalf("mlc write %v not much slower than slc %v", mlc.Response(), slc.Response())
	}
}

func TestHetViolatesInterchangeability(t *testing.T) {
	// The §3.3 claim: on a heterogeneous device the address space is no
	// longer uniform. Sequential write bandwidth differs across regions.
	measure := func(base int64) sim.Time {
		eng, d := newDevice(t, hetConfig())
		n := 64
		var last *Request
		for i := 0; i < n; i++ {
			d.Submit(trace.Op{Kind: trace.Write, Offset: base + int64(i)*4096, Size: 4096},
				func(r *Request) { last = r })
		}
		eng.Run()
		return last.Done
	}
	slcTime := measure(0)
	mlcTime := measure(measureBoundary(t))
	if mlcTime <= slcTime*3/2 {
		t.Fatalf("mlc region (%v) not clearly slower than slc region (%v)", mlcTime, slcTime)
	}
}

func measureBoundary(t *testing.T) int64 {
	t.Helper()
	_, d := newDevice(t, hetConfig())
	return d.RegionBoundary()
}

// ---- write buffer tests ----

func bufConfig(buf int64) Config {
	c := testConfig()
	c.WriteBufferBytes = buf
	c.CtrlOverhead = 10 * sim.Microsecond
	return c
}

func TestWriteBufferMasksLatency(t *testing.T) {
	eng, d := newDevice(t, bufConfig(1<<20))
	var r *Request
	d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 4096}, func(x *Request) { r = x })
	eng.Run()
	if r == nil {
		t.Fatal("write never completed")
	}
	// Host sees only the buffer-insert latency, far below the ~300us
	// program time.
	if r.Response() > 50*sim.Microsecond {
		t.Fatalf("buffered write response = %v, want ~ctrl overhead", r.Response())
	}
	m := d.Metrics()
	if m.BufferedWrites != 1 || m.BufferBypass != 0 {
		t.Fatalf("buffer counters: %+v", m)
	}
	// The media work still happened.
	if g := d.GCStats(); g.HostPageWrites != 1 {
		t.Fatalf("drain did not write media: %+v", g)
	}
	if d.bufOccupancy != 0 {
		t.Fatalf("buffer not released: %d", d.bufOccupancy)
	}
}

func TestWriteBufferFullBypasses(t *testing.T) {
	eng, d := newDevice(t, bufConfig(8192))
	// Three 4 KB writes: the first two fit, the third bypasses.
	var resp []sim.Time
	for i := 0; i < 3; i++ {
		d.Submit(trace.Op{Kind: trace.Write, Offset: int64(i) * 4096, Size: 4096},
			func(r *Request) { resp = append(resp, r.Response()) })
	}
	eng.Run()
	m := d.Metrics()
	if m.BufferedWrites != 2 || m.BufferBypass != 1 {
		t.Fatalf("buffer counters: buffered=%d bypass=%d", m.BufferedWrites, m.BufferBypass)
	}
}

func TestWriteBufferDoesNotChangeSustainedBandwidth(t *testing.T) {
	// The paper's S3 observation: the cache cannot mask sustained random
	// writes — drain throughput equals media throughput.
	run := func(buf int64) sim.Time {
		eng, d := newDevice(t, bufConfig(buf))
		n := int(d.LogicalBytes()/4096) * 2
		rng := sim.NewRNG(3)
		i := 0
		d.ClosedLoop(8, func(int) (trace.Op, bool) {
			if i >= n {
				return trace.Op{}, false
			}
			i++
			return trace.Op{Kind: trace.Write, Offset: rng.Int63n(d.LogicalBytes()/4096) * 4096, Size: 4096}, true
		})
		eng.Run()
		return eng.Now()
	}
	without := run(0)
	with := run(1 << 20)
	ratio := float64(with) / float64(without)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("buffer changed sustained write time by %.2fx", ratio)
	}
}

func TestWriteBufferPriorityBalance(t *testing.T) {
	// Buffered priority writes must not leak the outstanding-priority
	// counter (it gates priority-aware cleaning).
	eng, d := newDevice(t, bufConfig(1<<20))
	for i := 0; i < 10; i++ {
		d.Submit(trace.Op{Kind: trace.Write, Offset: int64(i) * 4096, Size: 4096, Priority: true}, nil)
	}
	eng.Run()
	if d.outstandingPri != 0 {
		t.Fatalf("outstanding priority leaked: %d", d.outstandingPri)
	}
}
