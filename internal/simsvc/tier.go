package simsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ossd/internal/ring"
)

// TierConfig wires a Manager into a fleet-wide cache tier: the
// content-addressed result cache is consistent-hashed across a static
// set of simd instances so the whole fleet deduplicates work globally.
// Determinism makes every node's answer interchangeable — a payload
// fetched from a peer is byte-identical to one computed locally — so
// the tier is purely an optimization: any peer failure degrades to
// local compute, never to an error.
type TierConfig struct {
	// Self is this instance's advertised base URL (e.g.
	// "http://a:8080"); it must appear spelled identically in every
	// peer's configuration.
	Self string
	// Peers are the other instances' base URLs.
	Peers []string
	// VirtualNodes per member (<= 0: ring.DefaultVirtualNodes).
	VirtualNodes int
	// FetchTimeout bounds one owner fetch, including the time spent
	// coalesced behind the owner's in-flight simulation of the same key
	// (<= 0: 2m). On timeout the requester computes locally.
	FetchTimeout time.Duration
	// BreakerFailures is the consecutive-failure count that opens a
	// peer's circuit breaker (<= 0: 3).
	BreakerFailures int
	// BreakerCooldown is how long an open breaker skips a peer before
	// probing it again (<= 0: 5s).
	BreakerCooldown time.Duration
}

func (c TierConfig) withDefaults() TierConfig {
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 2 * time.Minute
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	return c
}

// breaker is one peer's circuit breaker: consecutive failures open it,
// a cooldown later the next fetch probes it again (half-open), and one
// success closes it. It exists so a dead peer costs one timed-out probe
// per cooldown instead of one per request.
type breaker struct {
	mu        sync.Mutex
	failures  int
	openUntil time.Time
}

// allow reports whether a fetch may be attempted now.
func (b *breaker) allow(now time.Time, threshold int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failures < threshold || !now.Before(b.openUntil)
}

// observe records a fetch outcome.
func (b *breaker) observe(ok bool, now time.Time, cooldown time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.failures = 0
		return
	}
	b.failures++
	b.openUntil = now.Add(cooldown)
}

// tier is the Manager's view of the fleet: the ownership ring, one
// breaker per peer, an HTTP client, and the statsz counters.
type tier struct {
	cfg    TierConfig
	ring   *ring.Ring
	client *http.Client

	mu       sync.Mutex
	breakers map[string]*breaker

	peerHits   atomic.Uint64 // owner fetches that returned a payload
	peerMisses atomic.Uint64 // owner answered but had nothing usable
	peerErrors atomic.Uint64 // owner unreachable, timed out, or errored
	peerServes atomic.Uint64 // GET /cache requests this node answered with a payload
	peerStores atomic.Uint64 // PUT /cache entries accepted from non-owners
}

func newTier(cfg TierConfig) *tier {
	cfg = cfg.withDefaults()
	return &tier{
		cfg:      cfg,
		ring:     ring.New(cfg.Self, cfg.Peers, cfg.VirtualNodes),
		client:   &http.Client{Timeout: cfg.FetchTimeout},
		breakers: map[string]*breaker{},
	}
}

// breakerFor returns (creating if needed) the peer's breaker.
func (t *tier) breakerFor(peer string) *breaker {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.breakers[peer]
	if !ok {
		b = &breaker{}
		t.breakers[peer] = b
	}
	return b
}

// owner reports the peer owning key, or "" when this node does (or the
// tier is trivial).
func (t *tier) owner(key uint64) string {
	o := t.ring.Owner(key)
	if o == t.ring.Self() {
		return ""
	}
	return o
}

// cacheURL is the internal endpoint for key on peer.
func cacheURL(peer string, key uint64) string {
	return fmt.Sprintf("%s/cache/%016x", strings.TrimSuffix(peer, "/"), key)
}

// fetch asks key's owner for the payload, coalescing onto the owner's
// in-flight simulation of the same identity (?wait=1): if the owner has
// the entry it serves it, if it is computing it the request blocks
// until the byte-identical payload exists, and if it evicted it the
// owner recomputes. Returns (payload, true) on a fleet hit and (nil,
// false) on anything else — a down or shedding owner is a counted
// degradation to local compute, never an error.
func fetch(ctx context.Context, t *tier, owner string, key uint64, identity []byte) ([]byte, bool) {
	br := t.breakerFor(owner)
	if !br.allow(time.Now(), t.cfg.BreakerFailures) {
		return nil, false
	}
	ctx, cancel := context.WithTimeout(ctx, t.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cacheURL(owner, key)+"?wait=1", bytes.NewReader(identity))
	if err != nil {
		return nil, false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client.Do(req)
	if err != nil {
		t.peerErrors.Add(1)
		br.observe(false, time.Now(), t.cfg.BreakerCooldown)
		return nil, false
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		payload, err := io.ReadAll(resp.Body)
		if err != nil || len(payload) == 0 {
			t.peerErrors.Add(1)
			br.observe(false, time.Now(), t.cfg.BreakerCooldown)
			return nil, false
		}
		t.peerHits.Add(1)
		br.observe(true, time.Now(), t.cfg.BreakerCooldown)
		return payload, true
	case resp.StatusCode == http.StatusNotFound, resp.StatusCode == http.StatusConflict,
		resp.StatusCode == http.StatusTooManyRequests, resp.StatusCode == http.StatusServiceUnavailable:
		// The owner is alive but has nothing for us (no entry and no
		// spec to recompute from, a key collision, or it is shedding):
		// compute locally. Alive answers close the breaker.
		t.peerMisses.Add(1)
		br.observe(true, time.Now(), t.cfg.BreakerCooldown)
		return nil, false
	default:
		t.peerErrors.Add(1)
		br.observe(false, time.Now(), t.cfg.BreakerCooldown)
		return nil, false
	}
}

// pushEnvelope is the PUT /cache/{key} body: a computed payload plus
// the identity it answers, pushed by a non-owner that had to compute
// locally (the owner was shedding or briefly unreachable) so the tier
// still converges on owner-holds-the-entry.
type pushEnvelope struct {
	Identity json.RawMessage `json:"identity"`
	Payload  json.RawMessage `json:"payload"`
}

// push offers a locally computed payload to key's owner, best-effort:
// failures only feed the breaker. Called on a non-owner's local-compute
// completion so the next node asking the owner hits.
func push(t *tier, owner string, key uint64, identity, payload []byte) {
	br := t.breakerFor(owner)
	if !br.allow(time.Now(), t.cfg.BreakerFailures) {
		return
	}
	body, err := json.Marshal(pushEnvelope{Identity: identity, Payload: payload})
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), t.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, cacheURL(owner, key), bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client.Do(req)
	if err != nil {
		br.observe(false, time.Now(), t.cfg.BreakerCooldown)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	br.observe(resp.StatusCode < 500, time.Now(), t.cfg.BreakerCooldown)
}

// TierStats is the tier's observable state (GET /statsz). PeerHits and
// Coalesced are the fleet's dedup dividend: work some other request
// already paid for.
type TierStats struct {
	Self       string   `json:"self"`
	Peers      []string `json:"peers"`
	PeerHits   uint64   `json:"peer_hits"`
	PeerMisses uint64   `json:"peer_misses"`
	PeerErrors uint64   `json:"peer_errors"`
	PeerServes uint64   `json:"peer_serves"`
	PeerStores uint64   `json:"peer_stores"`
	// BreakersOpen lists peers whose circuit is currently open.
	BreakersOpen []string `json:"breakers_open,omitempty"`
}

func (t *tier) stats() TierStats {
	s := TierStats{
		Self:       t.ring.Self(),
		Peers:      t.ring.Members(),
		PeerHits:   t.peerHits.Load(),
		PeerMisses: t.peerMisses.Load(),
		PeerErrors: t.peerErrors.Load(),
		PeerServes: t.peerServes.Load(),
		PeerStores: t.peerStores.Load(),
	}
	now := time.Now()
	t.mu.Lock()
	for peer, b := range t.breakers {
		if !b.allow(now, t.cfg.BreakerFailures) {
			s.BreakersOpen = append(s.BreakersOpen, peer)
		}
	}
	t.mu.Unlock()
	return s
}
