// Package trace defines the block-level trace representation shared by
// the workload generators, the devices, and the experiment harness: timed
// read, write, and free (deallocation) operations over a byte address
// space. It also implements the paper's §3.4 write merging-and-alignment
// pass and a plain-text codec so traces can be saved and replayed with
// cmd/tracegen and cmd/ssdsim.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ossd/internal/sim"
)

// Kind is the operation type.
type Kind uint8

const (
	// Read transfers data from the device.
	Read Kind = iota
	// Write transfers data to the device.
	Write
	// Free tells the device a range no longer holds live data (a file
	// deletion, the TRIM/OSD-delete signal of §3.5).
	Free
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "R"
	case Write:
		return "W"
	case Free:
		return "F"
	default:
		return "?"
	}
}

// Op is one trace record.
type Op struct {
	// At is the arrival time.
	At sim.Time
	// Kind is the operation type.
	Kind Kind
	// Tenant identifies the workload stream the op belongs to. Zero is
	// the legacy single-tenant default; MergeTenants tags interleaved
	// per-tenant streams 1..N. The scheduler's fair-share layer and the
	// per-tenant metrics key on it.
	Tenant uint8
	// Offset and Size delimit the byte range.
	Offset, Size int64
	// Priority marks a foreground (high-priority) request (§3.6).
	Priority bool
}

// Class is the op's scheduling class: the tenant ID shifted left one
// with the priority flag folded into the low bit, so a single small
// integer distinguishes every (tenant, priority) combination. Tenant-0
// non-priority ops — the legacy default — are class 0.
func (o Op) Class() int {
	c := int(o.Tenant) << 1
	if o.Priority {
		c |= 1
	}
	return c
}

// End returns the first byte past the operation's range.
func (o Op) End() int64 { return o.Offset + o.Size }

// overlaps reports whether two byte ranges intersect.
func (o Op) overlaps(off, size int64) bool {
	return o.Offset < off+size && off < o.End()
}

// Validate reports structural problems with an op.
func (o Op) Validate() error {
	if o.Offset < 0 || o.Size <= 0 {
		return fmt.Errorf("trace: bad range [%d, +%d)", o.Offset, o.Size)
	}
	if o.At < 0 {
		return fmt.Errorf("trace: negative timestamp %d", o.At)
	}
	if o.Kind > Free {
		return fmt.Errorf("trace: unknown kind %d", o.Kind)
	}
	return nil
}

// Stats summarizes a trace. The JSON tags are the service serialization
// (internal/simsvc); Duration counts simulated nanoseconds.
type Stats struct {
	Ops         int      `json:"ops"`
	Reads       int      `json:"reads"`
	Writes      int      `json:"writes"`
	Frees       int      `json:"frees"`
	ReadBytes   int64    `json:"read_bytes"`
	WriteBytes  int64    `json:"write_bytes"`
	FreedBytes  int64    `json:"freed_bytes"`
	Duration    sim.Time `json:"duration_ns"`
	MaxOffset   int64    `json:"max_offset"`
	PriorityOps int      `json:"priority_ops"`
	// Tenants breaks the tagged (nonzero-tenant) portion of the trace
	// down per tenant, sorted by tenant ID. Untagged legacy ops (tenant
	// 0) appear only in the totals above, so a single-tenant trace
	// summarizes exactly as it always did.
	Tenants []TenantStats `json:"tenants,omitempty"`
}

// TenantStats is one tenant's slice of a Stats summary.
type TenantStats struct {
	Tenant     int   `json:"tenant"`
	Ops        int   `json:"ops"`
	Reads      int   `json:"reads"`
	Writes     int   `json:"writes"`
	ReadBytes  int64 `json:"read_bytes"`
	WriteBytes int64 `json:"write_bytes"`
}

// tenant returns the entry for t, inserting it in sorted position.
func (s *Stats) tenant(t uint8) *TenantStats {
	i := 0
	for i < len(s.Tenants) && s.Tenants[i].Tenant < int(t) {
		i++
	}
	if i < len(s.Tenants) && s.Tenants[i].Tenant == int(t) {
		return &s.Tenants[i]
	}
	s.Tenants = append(s.Tenants, TenantStats{})
	copy(s.Tenants[i+1:], s.Tenants[i:])
	s.Tenants[i] = TenantStats{Tenant: int(t)}
	return &s.Tenants[i]
}

// add folds one operation into the summary.
func (s *Stats) add(o Op) {
	s.Ops++
	switch o.Kind {
	case Read:
		s.Reads++
		s.ReadBytes += o.Size
	case Write:
		s.Writes++
		s.WriteBytes += o.Size
	case Free:
		s.Frees++
		s.FreedBytes += o.Size
	}
	if o.Tenant != 0 {
		ts := s.tenant(o.Tenant)
		ts.Ops++
		switch o.Kind {
		case Read:
			ts.Reads++
			ts.ReadBytes += o.Size
		case Write:
			ts.Writes++
			ts.WriteBytes += o.Size
		}
	}
	if o.Priority {
		s.PriorityOps++
	}
	if o.At > s.Duration {
		s.Duration = o.At
	}
	if o.End() > s.MaxOffset {
		s.MaxOffset = o.End()
	}
}

// Summarize scans a trace.
func Summarize(ops []Op) Stats {
	var s Stats
	for _, o := range ops {
		s.add(o)
	}
	return s
}

// Encoder writes operations incrementally in the text format (v2), one
// per line:
//
//	<at_ns> <R|W|F> <offset> <size> [P] [T<tenant>]
//
// The trailing flags are emitted only when set, so a legacy
// (non-priority, tenant-0) trace encodes byte-identically to the v1
// format and every v1 trace still decodes. Writes are buffered; call
// Flush when done.
type Encoder struct {
	bw *bufio.Writer
}

// NewEncoder returns an encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{bw: bufio.NewWriter(w)} }

// Write encodes one operation.
func (e *Encoder) Write(o Op) error {
	if err := o.Validate(); err != nil {
		return err
	}
	flags := ""
	if o.Priority {
		flags = " P"
	}
	if o.Tenant != 0 {
		flags += fmt.Sprintf(" T%d", o.Tenant)
	}
	_, err := fmt.Fprintf(e.bw, "%d %s %d %d%s\n", int64(o.At), o.Kind, o.Offset, o.Size, flags)
	return err
}

// Comment writes a '#' comment line (skipped by the decoder).
func (e *Encoder) Comment(format string, args ...any) error {
	_, err := fmt.Fprintf(e.bw, "# "+format+"\n", args...)
	return err
}

// Flush writes any buffered output to the underlying writer.
func (e *Encoder) Flush() error { return e.bw.Flush() }

// Copy drains a stream into the encoder at constant memory and returns
// the number of operations written. The encoder stays usable (and
// unflushed) afterwards.
func (e *Encoder) Copy(s Stream) (int, error) {
	n := 0
	for {
		op, ok := s.Next()
		if !ok {
			break
		}
		if err := e.Write(op); err != nil {
			return n, err
		}
		n++
	}
	return n, Err(s)
}

// Encode writes ops in the text format.
func Encode(w io.Writer, ops []Op) error {
	_, err := Copy(w, FromSlice(ops))
	return err
}

// Copy drains a stream into w in the text format, at constant memory,
// and returns the number of operations written.
func Copy(w io.Writer, s Stream) (int, error) {
	enc := NewEncoder(w)
	n, err := enc.Copy(s)
	if err != nil {
		return n, err
	}
	return n, enc.Flush()
}

// Decoder reads the text format incrementally: a Stream over a trace
// file that never materializes it. Blank lines and lines starting with
// '#' are skipped. After Next returns false, Err reports whether the
// stream ended by exhaustion or by a parse/IO error.
type Decoder struct {
	sc   *bufio.Scanner
	line int
	err  error
	done bool
}

// NewDecoder returns a decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	return &Decoder{sc: sc}
}

// Err implements ErrStream.
func (d *Decoder) Err() error { return d.err }

// Next implements Stream.
func (d *Decoder) Next() (Op, bool) {
	if d.done {
		return Op{}, false
	}
	for d.sc.Scan() {
		d.line++
		text := strings.TrimSpace(d.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		op, err := d.parse(text)
		if err != nil {
			d.err = err
			d.done = true
			return Op{}, false
		}
		return op, true
	}
	d.err = d.sc.Err()
	d.done = true
	return Op{}, false
}

// parse decodes one non-comment line.
func (d *Decoder) parse(text string) (Op, error) {
	f := strings.Fields(text)
	if len(f) < 4 || len(f) > 6 {
		return Op{}, fmt.Errorf("trace: line %d: want 4 to 6 fields, got %d", d.line, len(f))
	}
	at, err := strconv.ParseInt(f[0], 10, 64)
	if err != nil {
		return Op{}, fmt.Errorf("trace: line %d: bad timestamp: %v", d.line, err)
	}
	var kind Kind
	switch f[1] {
	case "R":
		kind = Read
	case "W":
		kind = Write
	case "F":
		kind = Free
	default:
		return Op{}, fmt.Errorf("trace: line %d: bad kind %q", d.line, f[1])
	}
	off, err := strconv.ParseInt(f[2], 10, 64)
	if err != nil {
		return Op{}, fmt.Errorf("trace: line %d: bad offset: %v", d.line, err)
	}
	size, err := strconv.ParseInt(f[3], 10, 64)
	if err != nil {
		return Op{}, fmt.Errorf("trace: line %d: bad size: %v", d.line, err)
	}
	op := Op{At: sim.Time(at), Kind: kind, Offset: off, Size: size}
	for _, flag := range f[4:] {
		switch {
		case flag == "P" && !op.Priority:
			op.Priority = true
		case len(flag) > 1 && flag[0] == 'T' && op.Tenant == 0:
			t, err := strconv.ParseUint(flag[1:], 10, 8)
			if err != nil || t == 0 {
				return Op{}, fmt.Errorf("trace: line %d: bad tenant flag %q", d.line, flag)
			}
			op.Tenant = uint8(t)
		default:
			return Op{}, fmt.Errorf("trace: line %d: bad flag %q", d.line, flag)
		}
	}
	if err := op.Validate(); err != nil {
		return Op{}, fmt.Errorf("trace: line %d: %v", d.line, err)
	}
	return op, nil
}

// Decode parses the text format produced by Encode.
func Decode(r io.Reader) ([]Op, error) {
	d := NewDecoder(r)
	ops := Collect(d)
	if err := d.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}
