package runner

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func squares(n int) []Spec[int] {
	specs := make([]Spec[int], n)
	for i := range specs {
		i := i
		specs[i] = Spec[int]{
			Name: fmt.Sprintf("sq%d", i),
			Run:  func() (int, error) { return i * i, nil },
		}
	}
	return specs
}

func TestRunOrderIndependentOfWorkers(t *testing.T) {
	want, err := Run(squares(37), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 100} {
		got, err := Run(squares(37), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: %v != %v", workers, got, want)
		}
	}
}

func TestRunActuallyParallel(t *testing.T) {
	var inFlight, peak atomic.Int32
	var mu sync.Mutex
	specs := make([]Spec[int], 8)
	for i := range specs {
		specs[i] = Spec[int]{Name: "p", Run: func() (int, error) {
			n := inFlight.Add(1)
			mu.Lock()
			if n > peak.Load() {
				peak.Store(n)
			}
			mu.Unlock()
			time.Sleep(20 * time.Millisecond)
			inFlight.Add(-1)
			return 0, nil
		}}
	}
	if _, err := Run(specs, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency %d, want > 1", peak.Load())
	}
}

func TestRunReturnsFirstErrorBySpecOrder(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	specs := []Spec[int]{
		{Name: "ok", Run: func() (int, error) { return 1, nil }},
		// The earlier-indexed failure is slower; Run must still report it.
		{Name: "slow-fail", Run: func() (int, error) {
			time.Sleep(30 * time.Millisecond)
			return 0, errA
		}},
		{Name: "fast-fail", Run: func() (int, error) { return 0, errB }},
	}
	_, err := Run(specs, Options{Workers: 3})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want wrapped %v", err, errA)
	}
}

func TestRunAllRecordsEverySpec(t *testing.T) {
	boom := errors.New("boom")
	specs := []Spec[string]{
		{Name: "x", Run: func() (string, error) { return "vx", nil }},
		{Name: "y", Run: func() (string, error) { return "", boom }},
		{Name: "z", Run: func() (string, error) { return "vz", nil }},
	}
	outs := RunAll(specs, Options{Workers: 2})
	if len(outs) != 3 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	if outs[0].Value != "vx" || outs[2].Value != "vz" {
		t.Fatalf("values out of order: %+v", outs)
	}
	if !errors.Is(outs[1].Err, boom) || outs[1].Name != "y" {
		t.Fatalf("middle outcome: %+v", outs[1])
	}
}

func TestRunEmptyAndOnStart(t *testing.T) {
	if vals, err := Run([]Spec[int]{}, Options{}); err != nil || len(vals) != 0 {
		t.Fatalf("empty batch: %v %v", vals, err)
	}
	var mu sync.Mutex
	started := map[string]bool{}
	specs := squares(5)
	if _, err := Run(specs, Options{Workers: 2, OnStart: func(name string) {
		mu.Lock()
		started[name] = true
		mu.Unlock()
	}}); err != nil {
		t.Fatal(err)
	}
	if len(started) != 5 {
		t.Fatalf("OnStart saw %d specs, want 5", len(started))
	}
}

func TestDefaultWorkersOverride(t *testing.T) {
	orig := DefaultWorkers()
	if orig < 1 {
		t.Fatalf("default workers %d", orig)
	}
	SetDefaultWorkers(3)
	if DefaultWorkers() != 3 {
		t.Fatalf("override ignored: %d", DefaultWorkers())
	}
	SetDefaultWorkers(0)
	if DefaultWorkers() != orig {
		t.Fatalf("reset ignored: %d", DefaultWorkers())
	}
}
