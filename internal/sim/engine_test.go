package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineZeroValue(t *testing.T) {
	var e Engine
	if e.Now() != 0 {
		t.Fatalf("zero engine Now = %v, want 0", e.Now())
	}
	if e.Step() {
		t.Fatal("Step on empty engine reported an event")
	}
}

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events ran out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v after run, want 30", e.Now())
	}
}

func TestEngineStableTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not in scheduling order: %v", got)
		}
	}
}

func TestEngineAfterNesting(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.After(10, func() {
		times = append(times, e.Now())
		e.After(5, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("nested After produced %v, want [10 15]", times)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	e.At(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Fatalf("RunUntil(20) ran %d events, want 2", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	// RunUntil past the end advances the clock even with no events.
	e.RunUntil(100)
	if e.Now() != 100 || e.Pending() != 0 {
		t.Fatalf("after RunUntil(100): now=%v pending=%d", e.Now(), e.Pending())
	}
}

func TestEnginePanicsOnPastSchedule(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineProcessedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 17; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Processed() != 17 {
		t.Fatalf("Processed = %d, want 17", e.Processed())
	}
}

// Property: for any set of scheduled times, events fire in sorted order
// and the clock is monotone.
func TestEngineSortedProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		want := make([]Time, len(raw))
		for i, r := range raw {
			want[i] = Time(r)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{4 * Second, "4.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if s := (2 * Second).Seconds(); s != 2 {
		t.Errorf("Seconds = %v, want 2", s)
	}
	if ms := (Millisecond + 500*Microsecond).Millis(); ms != 1.5 {
		t.Errorf("Millis = %v, want 1.5", ms)
	}
	if us := (3 * Microsecond).Micros(); us != 3 {
		t.Errorf("Micros = %v, want 3", us)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	// Forking with different keys must give distinct streams; forking must
	// not depend on consumption interleaving of the child.
	g := NewRNG(7)
	c1 := g.Fork(1)
	c2 := g.Fork(2)
	same := 0
	for i := 0; i < 50; i++ {
		if c1.Intn(1000) == c2.Intn(1000) {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("forked streams look identical: %d/50 collisions", same)
	}
}

func TestRNGUniformDuration(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		d := g.UniformDuration(10, 20)
		if d < 10 || d >= 20 {
			t.Fatalf("UniformDuration out of range: %v", d)
		}
	}
	if d := g.UniformDuration(5, 5); d != 5 {
		t.Fatalf("degenerate UniformDuration = %v, want 5", d)
	}
}

func TestRNGExponentialMean(t *testing.T) {
	g := NewRNG(2)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(g.Exponential(1000))
	}
	mean := sum / n
	if mean < 900 || mean > 1100 {
		t.Fatalf("exponential mean = %v, want ~1000", mean)
	}
}

func TestRNGBoolProbability(t *testing.T) {
	g := NewRNG(3)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("Bool(0.3) hit rate = %v", frac)
	}
}

func TestRNGZipfSkew(t *testing.T) {
	g := NewRNG(4)
	z := g.Zipf(1.2, 1000)
	counts := make(map[uint64]int)
	for i := 0; i < 10000; i++ {
		counts[z.Uint64()]++
	}
	// Rank 0 must dominate a mid-rank value under Zipf.
	if counts[0] <= counts[100] {
		t.Fatalf("zipf not skewed: rank0=%d rank100=%d", counts[0], counts[100])
	}
}

func TestEngineRunFor(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10, func() { ran++ })
	e.At(25, func() { ran++ })
	e.RunFor(15)
	if ran != 1 {
		t.Fatalf("RunFor(15) ran %d events, want 1", ran)
	}
	if e.Now() != 15 {
		t.Fatalf("Now = %v, want 15", e.Now())
	}
	// A second slice picks up where the first left off.
	e.RunFor(15)
	if ran != 2 || e.Now() != 30 {
		t.Fatalf("after second RunFor: ran=%d now=%v", ran, e.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative RunFor did not panic")
		}
	}()
	e.RunFor(-1)
}
