// Package simsvc is the simulation-as-a-service subsystem: it turns the
// library's deterministic what-if engine — any registered device profile
// driven by any named workload generator — into an on-demand job service.
// Three parts compose it:
//
//   - a job manager (Manager): submit a JobSpec, get a job ID; jobs fan
//     out over a bounded worker pool (internal/runner.Pool) with context
//     cancellation, per-job status, and graceful shutdown;
//   - a content-addressed result cache: the canonical JSON encoding of a
//     JobSpec is FNV-hashed and completed result payloads are memoized
//     under an LRU bound, so identical requests are served from memory
//     byte-for-byte — sound because simulations are deterministic;
//   - a telemetry stream: while a job runs, a sampler observes the
//     device every N operations and emits core.Snapshot samples, served
//     as NDJSON over GET /jobs/{id}/stream.
//
// cmd/simd wraps the HTTP handler (see Manager.Handler) in a server.
package simsvc

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"ossd/internal/core"
	"ossd/internal/fault"
	"ossd/internal/ftl"
	"ossd/internal/sched"
	"ossd/internal/trace"
	"ossd/internal/workload"
)

// Status is a job's lifecycle state.
type Status string

const (
	// StatusQueued means the job is waiting for a worker.
	StatusQueued Status = "queued"
	// StatusRunning means a worker is driving the simulation.
	StatusRunning Status = "running"
	// StatusDone means the job completed and its result is available.
	StatusDone Status = "done"
	// StatusFailed means the job errored or was cancelled.
	StatusFailed Status = "failed"
)

// terminal reports whether a job in this state will never change again.
func (s Status) terminal() bool { return s == StatusDone || s == StatusFailed }

// ProfileOptions is the JSON-friendly subset of the registry's
// functional options a job may apply to its device profile.
type ProfileOptions struct {
	// CapacityBytes scales the device (core.WithCapacity).
	CapacityBytes int64 `json:"capacity_bytes,omitempty"`
	// QueueDepth sets all four benchmark depths (core.WithQueueDepth).
	QueueDepth int `json:"queue_depth,omitempty"`
	// Scheme selects the FTL mapping: "page", "block", or "hybrid".
	Scheme string `json:"scheme,omitempty"`
	// StripeBytes selects full-stripe layout / RAID stripe unit.
	StripeBytes int64 `json:"stripe_bytes,omitempty"`
	// Scheduler selects the dispatch policy: "fcfs" or "swtf".
	Scheduler string `json:"scheduler,omitempty"`
	// Informed enables informed cleaning (§3.5).
	Informed bool `json:"informed,omitempty"`
	// PriorityAware enables priority-aware cleaning (§3.6).
	PriorityAware bool `json:"priority_aware,omitempty"`
	// MaxPending bounds outstanding requests while the job's workload is
	// driven (core.WithMaxPending): admission control so an open-loop
	// arrival storm paces to the device instead of accumulating
	// unbounded queue state on a worker.
	MaxPending int `json:"max_pending,omitempty"`
	// Shards runs shardable flash profiles across this many engines
	// (core.WithShards): same result bytes, less worker wall clock.
	// Because sharding never changes a result, it is excluded from the
	// cache identity — specs differing only in Shards share one cache
	// entry.
	Shards int `json:"shards,omitempty"`
}

// build translates the JSON options into registry options.
func (o ProfileOptions) build() ([]core.Option, error) {
	var opts []core.Option
	if o.CapacityBytes > 0 {
		opts = append(opts, core.WithCapacity(o.CapacityBytes))
	}
	if o.QueueDepth > 0 {
		opts = append(opts, core.WithQueueDepth(o.QueueDepth))
	}
	switch o.Scheme {
	case "":
	case "page":
		opts = append(opts, core.WithScheme(ftl.PageMapped))
	case "block":
		opts = append(opts, core.WithScheme(ftl.BlockMapped))
	case "hybrid":
		opts = append(opts, core.WithScheme(ftl.HybridLog))
	default:
		return nil, fmt.Errorf("simsvc: unknown scheme %q", o.Scheme)
	}
	if o.StripeBytes > 0 {
		opts = append(opts, core.WithStripe(o.StripeBytes))
	}
	switch o.Scheduler {
	case "":
	case "fcfs":
		opts = append(opts, core.WithScheduler(sched.FCFS))
	case "swtf":
		opts = append(opts, core.WithScheduler(sched.SWTF))
	default:
		return nil, fmt.Errorf("simsvc: unknown scheduler %q", o.Scheduler)
	}
	if o.Informed {
		opts = append(opts, core.WithInformed(true))
	}
	if o.PriorityAware {
		opts = append(opts, core.WithPriorityAware(true))
	}
	if o.MaxPending < 0 {
		return nil, fmt.Errorf("simsvc: negative max pending %d", o.MaxPending)
	}
	if o.MaxPending > 0 {
		opts = append(opts, core.WithMaxPending(o.MaxPending))
	}
	if o.Shards < 0 {
		return nil, fmt.Errorf("simsvc: negative shard count %d", o.Shards)
	}
	if o.Shards > 0 {
		opts = append(opts, core.WithShards(o.Shards))
	}
	return opts, nil
}

// TenantSpec is one tenant's share of a multi-tenant simulation: which
// generator drives it, how its arrivals are shaped, and how much of the
// device's dispatch bandwidth it is entitled to.
type TenantSpec struct {
	// Tenant is the class ID (1-255; 0 is reserved for untagged ops).
	Tenant uint8 `json:"tenant"`
	// Workload names this tenant's generator; empty inherits the job's.
	Workload string `json:"workload,omitempty"`
	// Params parameterizes the tenant's generator; nil inherits the
	// job's. Give tenants distinct seeds for independent streams.
	Params *workload.GenParams `json:"params,omitempty"`
	// Weight is the tenant's fair-share dispatch weight. Any positive
	// weight in the array engages weighted deficit-round-robin on the
	// device queue (flash profiles only; tenants left at 0 weigh 1);
	// all-zero weights leave dispatch in legacy single-tenant mode.
	Weight float64 `json:"weight,omitempty"`
	// Modulation shapes the tenant's arrivals (bursty, diurnal, or a
	// plain rate scale); nil passes the generator's timing through.
	Modulation *trace.Modulation `json:"modulation,omitempty"`
}

// JobSpec is one simulation request: which device, how it is tuned,
// which workload drives it, and how far. Specs are the cache identity —
// two equal specs produce byte-identical results.
type JobSpec struct {
	// Profile names a registered device profile (GET /profiles).
	Profile string `json:"profile"`
	// Options tunes the profile before the device is built.
	Options ProfileOptions `json:"options"`
	// Workload names a registered generator (GET /workloads).
	Workload string `json:"workload"`
	// Params parameterizes the generator, including the seed.
	Params workload.GenParams `json:"params"`
	// Tenant is the submitting tenant class (0 = untenanted): the service
	// counts this tenant's jobs in /statsz and enforces its in-flight
	// quota (Options.TenantQuotas) at submit. Like Shards, it is an
	// execution knob, not a simulation parameter, so it is excluded from
	// the cache identity — tenants share byte-identical cached results.
	Tenant uint8 `json:"tenant,omitempty"`
	// Tenants, when non-empty, makes the simulated workload multi-tenant:
	// each entry's stream is tagged with its tenant ID, shaped by its
	// modulation, and interleaved into one timestamp-ordered arrival
	// stream (trace.MergeTenants). Positive weights additionally engage
	// fair-share dispatch on the device queue. Empty runs the legacy
	// single-stream workload.
	Tenants []TenantSpec `json:"tenants,omitempty"`
	// OpLimit caps the stream (0 = drive it to exhaustion).
	OpLimit int `json:"op_limit,omitempty"`
	// PreconditionFrac fills this fraction of the device before the
	// measured run (0 = start on a fresh device).
	PreconditionFrac float64 `json:"precondition_frac,omitempty"`
	// Fault attaches a fault plan (see internal/fault) to the device:
	// deterministic transient errors, element deaths, wear ceilings, and
	// power-loss points. A power-loss point truncates the measured run at
	// its op count and replays recovery before the snapshot is taken.
	// The plan is part of the cache identity: faulted and fault-free runs
	// of the same workload never share a result.
	Fault *fault.Plan `json:"fault,omitempty"`
}

// Validate checks that the spec names things that exist and that its
// knobs are in range, so bad requests fail at submit, not on a worker.
// The campaign subsystem also calls it per expanded cell, so a bad axis
// value rejects the whole campaign before anything is enqueued.
func (s *JobSpec) Validate() error {
	prof, err := core.ProfileByName(s.Profile)
	if err != nil {
		return err
	}
	if !knownWorkload(s.Workload) {
		return fmt.Errorf("simsvc: unknown workload %q (have %v)", s.Workload, workload.Generators())
	}
	if _, err := s.Options.build(); err != nil {
		return err
	}
	seen := map[uint8]bool{}
	weighted := false
	for i, ts := range s.Tenants {
		if ts.Tenant == 0 {
			return fmt.Errorf("simsvc: tenants[%d] has tenant 0 (reserved for untagged ops)", i)
		}
		if seen[ts.Tenant] {
			return fmt.Errorf("simsvc: duplicate tenant %d", ts.Tenant)
		}
		seen[ts.Tenant] = true
		if ts.Workload != "" && !knownWorkload(ts.Workload) {
			return fmt.Errorf("simsvc: tenant %d: unknown workload %q", ts.Tenant, ts.Workload)
		}
		if ts.Weight < 0 {
			return fmt.Errorf("simsvc: tenant %d: negative weight %v", ts.Tenant, ts.Weight)
		}
		if ts.Weight > 0 {
			weighted = true
		}
		if ts.Modulation != nil {
			if err := ts.Modulation.Validate(); err != nil {
				return fmt.Errorf("simsvc: tenant %d: %w", ts.Tenant, err)
			}
		}
	}
	if weighted && prof.Kind != core.KindSSD && prof.Kind != core.KindOSD {
		return fmt.Errorf("simsvc: tenant weights need a flash profile, %q is %s", s.Profile, prof.Kind)
	}
	if s.OpLimit < 0 {
		return fmt.Errorf("simsvc: negative op limit %d", s.OpLimit)
	}
	if s.PreconditionFrac < 0 || s.PreconditionFrac > 1 {
		return fmt.Errorf("simsvc: precondition fraction %v out of [0, 1]", s.PreconditionFrac)
	}
	if err := s.Fault.Validate(); err != nil {
		return err
	}
	return nil
}

// knownWorkload reports whether name is a registered generator.
func knownWorkload(name string) bool {
	for _, have := range workload.Generators() {
		if have == name {
			return true
		}
	}
	return false
}

// tenantWeights collects the spec's positive fair-share weights; nil
// when no tenant sets one (legacy dispatch).
func (s JobSpec) tenantWeights() map[uint8]float64 {
	var w map[uint8]float64
	for _, ts := range s.Tenants {
		if ts.Weight > 0 {
			if w == nil {
				w = map[uint8]float64{}
			}
			w[ts.Tenant] = ts.Weight
		}
	}
	return w
}

// tenantStream builds the multi-tenant arrival stream: one generator
// stream per tenant, tagged, shaped, and merged in timestamp order.
func (s JobSpec) tenantStream() (trace.Stream, error) {
	srcs := make([]trace.TenantStream, 0, len(s.Tenants))
	for _, ts := range s.Tenants {
		name := ts.Workload
		if name == "" {
			name = s.Workload
		}
		params := s.Params
		if ts.Params != nil {
			params = *ts.Params
		}
		st, err := workload.NewStream(name, params)
		if err != nil {
			return nil, err
		}
		src := trace.TenantStream{Tenant: ts.Tenant, Stream: st}
		if ts.Modulation != nil {
			src.Mod = *ts.Modulation
		}
		srcs = append(srcs, src)
	}
	return trace.MergeTenants(srcs)
}

// Canonical is the spec's cache identity: its canonical JSON encoding
// (struct fields marshal in declaration order, so equal specs encode
// equally). The identity bytes — not the 64-bit hash of them — are what
// two specs must share to share a cache entry; they are stored with
// each entry, compared on every hit, and shipped to peers so the owner
// of a key can verify (or recompute) exactly the spec being asked for.
func (s JobSpec) Canonical() []byte {
	// Sharding is an execution knob, not a simulation parameter: the
	// parallel dataplane is byte-identical to the single engine, so a
	// spec's identity must not depend on it (a sharded run warms the
	// cache for single-engine requests and vice versa). The submitting
	// tenant is likewise an admission-control identity, not a simulation
	// parameter, so tenants share cached results. s is a copy.
	s.Options.Shards = 0
	s.Tenant = 0
	canonical, err := json.Marshal(s)
	if err != nil {
		// Specs are plain data; Marshal cannot fail on them.
		panic(fmt.Sprintf("simsvc: marshal spec: %v", err))
	}
	return canonical
}

// Key is the spec's content address: FNV-1a over Canonical, matching
// the fingerprint style of the golden workload tests. The key indexes;
// Canonical identifies (see cache.get).
func (s JobSpec) Key() uint64 {
	h := fnv.New64a()
	h.Write(s.Canonical())
	return h.Sum64()
}

// Result is a completed job's payload: the spec it answers, the final
// device snapshot (with tail-latency percentiles), the workload summary,
// and window bandwidths over the driven (post-precondition) phase.
type Result struct {
	Spec             JobSpec       `json:"spec"`
	Snapshot         core.Snapshot `json:"snapshot"`
	Workload         trace.Stats   `json:"workload"`
	SimulatedSeconds float64       `json:"simulated_seconds"`
	ReadMBps         float64       `json:"read_mbps"`
	WriteMBps        float64       `json:"write_mbps"`
}

// Sample is one telemetry observation taken while a job runs.
type Sample struct {
	// Ops counts operations pulled from the workload stream so far.
	Ops int64 `json:"ops"`
	// SimulatedSeconds is the device clock at observation time.
	SimulatedSeconds float64 `json:"simulated_seconds"`
	// Snapshot is the device's metrics at observation time.
	Snapshot core.Snapshot `json:"snapshot"`
}

// ExperimentResult is the service (and cmd/repro -json) encoding of one
// paper experiment's run.
type ExperimentResult struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Seed        int64  `json:"seed"`
	// Report is the experiment's rendering in the paper's format.
	Report string `json:"report,omitempty"`
	Error  string `json:"error,omitempty"`
}
