package ssd

import (
	"math"
	"testing"

	"ossd/internal/flash"
	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/trace"
)

// gangConfig builds an 8-element interleaved SWTF device that satisfies
// the sharding gate, with watermarks low enough that the randomized
// workloads trigger cleaning.
func gangConfig() Config {
	return Config{
		Elements:      8,
		Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 8, BlocksPerPackage: 32},
		Overprovision: 0.15,
		Layout:        Interleaved,
		Scheduler:     sched.SWTF,
		CtrlOverhead:  20 * sim.Microsecond,
		GCLow:         0.12,
		GCCritical:    0.03,
	}
}

// driveOps replays ops on the device's own engine with the exact shape
// of core's unbounded drive loop: each arrival at max(op.At, now), one
// pending arrival at a time.
func driveOps(d *Device, ops []trace.Op) error {
	s := trace.FromSlice(ops)
	op, ok := s.Next()
	if !ok {
		return nil
	}
	at := op.At
	if now := d.eng.Now(); at < now {
		at = now
	}
	dl := &mergedLoop{d: d, s: s, op: op}
	d.eng.CallAt(at, mergedArriveEvent, dl)
	d.eng.Run()
	if dl.err == nil {
		dl.err = trace.Err(s)
	}
	return dl.err
}

// gangWorkload synthesizes a mixed open-loop trace: mostly single-page
// random reads/writes with bursts of duplicate timestamps, single-page
// frees, and (when span is true) one gang-wide write ~70% in that forces
// the merge transition on every shard count.
func gangWorkload(seed int64, n int, logical int64, span bool) []trace.Op {
	rng := sim.NewRNG(seed)
	pages := logical / 4096
	ops := make([]trace.Op, 0, n)
	var at sim.Time
	for i := 0; i < n; i++ {
		// ~1/4 of arrivals share the previous timestamp: cross-shard
		// completions and arrivals collide on equal clocks.
		if rng.Int63n(4) != 0 {
			at += sim.Time(rng.Int63n(200)) * sim.Microsecond
		}
		op := trace.Op{At: at, Offset: rng.Int63n(pages) * 4096, Size: 4096}
		switch rng.Int63n(10) {
		case 0:
			op.Kind = trace.Free
		case 1, 2, 3:
			op.Kind = trace.Read
		default:
			op.Kind = trace.Write
		}
		if span && i == n*7/10 {
			// Eight pages starting at page 0: touches every element, so
			// it spans groups at any shard count >= 2.
			op = trace.Op{At: at, Kind: trace.Write, Offset: 0, Size: 8 * 4096}
		}
		ops = append(ops, op)
	}
	return ops
}

// runGang builds a device, preconditions 60% of it through the control
// path, replays ops (sharded when shards >= 2), and returns the device.
func runGang(t *testing.T, shards int, ops []trace.Op) *Device {
	t.Helper()
	d, err := New(sim.NewEngine(), gangConfig())
	if err != nil {
		t.Fatal(err)
	}
	if shards >= 2 {
		if err := d.EnableSharding(shards); err != nil {
			t.Fatal(err)
		}
	}
	// Precondition on the control engine (exactly what core.Precondition
	// does), so the parallel phase starts from a mapped, GC-active state.
	var off int64
	space := d.LogicalBytes() * 6 / 10
	err = d.ClosedLoop(1, func(int) (trace.Op, bool) {
		if off >= space {
			return trace.Op{}, false
		}
		op := trace.Op{Kind: trace.Write, Offset: off, Size: 1 << 16}
		off += 1 << 16
		return op, true
	})
	if err != nil {
		t.Fatal(err)
	}
	if shards >= 2 {
		err = d.DriveStream(trace.FromSlice(ops))
	} else {
		err = driveOps(d, ops)
	}
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// sameFloat requires bit-level equality: the merged sample replay feeds
// the histograms in the single engine's completion order, so even the
// order-sensitive Welford accumulators must match exactly on these
// workloads.
func sameFloat(t *testing.T, what string, a, b float64) {
	t.Helper()
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Errorf("%s: single %v sharded %v", what, a, b)
	}
}

func compareDevices(t *testing.T, single, sharded *Device) {
	t.Helper()
	a, b := single.Metrics(), sharded.Metrics()
	if a.Requests != b.Requests || a.Completed != b.Completed {
		t.Errorf("requests/completed: single %d/%d sharded %d/%d", a.Requests, a.Completed, b.Requests, b.Completed)
	}
	if a.BytesRead != b.BytesRead || a.BytesWritten != b.BytesWritten {
		t.Errorf("bytes: single %d/%d sharded %d/%d", a.BytesRead, a.BytesWritten, b.BytesRead, b.BytesWritten)
	}
	if a.Frees != b.Frees || a.Errors != b.Errors || a.BackgroundCleans != b.BackgroundCleans {
		t.Errorf("frees/errors/cleans: single %d/%d/%d sharded %d/%d/%d",
			a.Frees, a.Errors, a.BackgroundCleans, b.Frees, b.Errors, b.BackgroundCleans)
	}
	for _, h := range []struct {
		name string
		a, b interface {
			N() uint64
			Mean() float64
			Min() float64
			Max() float64
			Std() float64
			Percentile(float64) float64
		}
	}{
		{"read", a.ReadResp, b.ReadResp},
		{"write", a.WriteResp, b.WriteResp},
		{"bg", a.BgResp, b.BgResp},
	} {
		if h.a.N() != h.b.N() {
			t.Errorf("%s N: single %d sharded %d", h.name, h.a.N(), h.b.N())
			continue
		}
		sameFloat(t, h.name+" mean", h.a.Mean(), h.b.Mean())
		sameFloat(t, h.name+" std", h.a.Std(), h.b.Std())
		sameFloat(t, h.name+" min", h.a.Min(), h.b.Min())
		sameFloat(t, h.name+" max", h.a.Max(), h.b.Max())
		sameFloat(t, h.name+" p99", h.a.Percentile(99), h.b.Percentile(99))
	}
	ga, gb := single.GCStats(), sharded.GCStats()
	if ga != gb {
		t.Errorf("gc stats diverge:\nsingle  %+v\nsharded %+v", ga, gb)
	}
	if na, nb := single.Engine().Now(), sharded.Engine().Now(); na != nb {
		t.Errorf("final clock: single %v sharded %v", na, nb)
	}
}

// TestShardEquivalence is the correctness bar of the sharded dataplane:
// for mixed randomized workloads — with and without a mid-stream
// gang-spanning request forcing the merge transition — every metric the
// report can observe is identical to the single-engine run at shard
// counts 2, 4, and 8.
func TestShardEquivalence(t *testing.T) {
	logical := func() int64 {
		d, err := New(sim.NewEngine(), gangConfig())
		if err != nil {
			t.Fatal(err)
		}
		return d.LogicalBytes()
	}()
	for _, span := range []bool{false, true} {
		name := map[bool]string{false: "parallel-only", true: "with-merge"}[span]
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{1, 7, 42} {
				ops := gangWorkload(seed, 3000, logical, span)
				single := runGang(t, 1, ops)
				for _, shards := range []int{2, 4, 8} {
					sharded := runGang(t, shards, ops)
					t.Logf("seed %d shards %d", seed, shards)
					compareDevices(t, single, sharded)
				}
			}
		})
	}
}

// TestShardableConfigGate pins the couplings that must refuse to shard.
func TestShardableConfigGate(t *testing.T) {
	base := gangConfig()
	if err := ShardableConfig(base, 4); err != nil {
		t.Fatalf("base config must shard: %v", err)
	}
	mutate := map[string]func(*Config){
		"fcfs":       func(c *Config) { c.Scheduler = sched.FCFS },
		"fullstripe": func(c *Config) { c.Layout = FullStripe; c.StripeBytes = 8 * 4096 },
		"mlc":        func(c *Config) { c.MLCElements = 2 },
		"link":       func(c *Config) { c.InterfaceMBps = 100 },
		"buffer":     func(c *Config) { c.WriteBufferBytes = 1 << 20 },
		"priority":   func(c *Config) { c.PriorityAware = true },
	}
	for name, fn := range mutate {
		c := base
		fn(&c)
		if err := ShardableConfig(c, 4); err == nil {
			t.Errorf("%s: config must not shard", name)
		}
	}
	if err := ShardableConfig(base, 3); err == nil {
		t.Error("8 elements into 3 shards must not shard")
	}
	if err := ShardableConfig(base, 1); err == nil {
		t.Error("1 shard must be rejected (use the plain device)")
	}
}

// TestSubmitBatchEquivalence checks the batch fast path reaches the same
// state as per-op submission: same-instant enqueues followed by one pump
// dispatch identically to interleaved pumps.
func TestSubmitBatchEquivalence(t *testing.T) {
	mkOps := func() []trace.Op {
		rng := sim.NewRNG(9)
		ops := make([]trace.Op, 64)
		for i := range ops {
			kind := trace.Write
			if rng.Int63n(3) == 0 {
				kind = trace.Read
			}
			ops[i] = trace.Op{Kind: kind, Offset: rng.Int63n(200) * 4096, Size: 4096}
		}
		return ops
	}
	one, err := New(sim.NewEngine(), gangConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range mkOps() {
		if err := one.Submit(op, nil); err != nil {
			t.Fatal(err)
		}
	}
	one.eng.Run()

	batch, err := New(sim.NewEngine(), gangConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := batch.SubmitBatch(mkOps(), nil); err != nil {
		t.Fatal(err)
	}
	batch.eng.Run()
	compareDevices(t, one, batch)
}

// TestRequestFreelistSteadyState pins the satellite allocation contract:
// once warm, the submit/complete cycle reuses pooled requests.
func TestRequestFreelistSteadyState(t *testing.T) {
	d, err := New(sim.NewEngine(), gangConfig())
	if err != nil {
		t.Fatal(err)
	}
	var off int64
	// Warm the pool and the FTL mappings.
	for i := 0; i < 64; i++ {
		if err := d.Submit(trace.Op{Kind: trace.Write, Offset: off, Size: 4096}, nil); err != nil {
			t.Fatal(err)
		}
		off += 4096
		d.eng.Run()
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := d.Submit(trace.Op{Kind: trace.Write, Offset: off % (1 << 20), Size: 4096}, nil); err != nil {
			t.Fatal(err)
		}
		off += 4096
		d.eng.Run()
	})
	if allocs > 0 {
		t.Fatalf("submit/complete cycle allocates %.1f per op, want 0", allocs)
	}
}
