package simsvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ossd/internal/core"
	"ossd/internal/runner"
	"ossd/internal/stats"
	"ossd/internal/trace"
	"ossd/internal/workload"
)

// Options configures a Manager.
type Options struct {
	// Workers bounds concurrent simulations (<= 0: runner default).
	Workers int
	// Backlog bounds queued jobs; submits past it are shed (<= 0: 256).
	Backlog int
	// CacheEntries bounds the result cache (<= 0: 1024).
	CacheEntries int
	// SampleEvery sets the telemetry cadence in operations (<= 0: 1000).
	SampleEvery int
	// RetainJobs bounds the job table (<= 0: 1024): once it is full,
	// each submit evicts the oldest terminal job (and its telemetry).
	// Results live on in the cache; only the job-ID handle expires.
	RetainJobs int
	// Shed switches full-backlog submits from ErrPoolSaturated (HTTP
	// 503, clients typically retry) to a counted ErrShed (HTTP 429):
	// under overload the service sheds explicitly instead of letting
	// callers trade latency for a slot.
	Shed bool
	// Tier, when set, joins this manager to a fleet-wide cache tier:
	// cache keys are consistent-hashed across the configured peers, a
	// miss on a key another node owns is fetched (and coalesced) from
	// that owner, and payloads stay byte-identical no matter which node
	// answers. Nil runs the cache single-process as before.
	Tier *TierConfig
	// TenantQuotas caps how many jobs each submitting tenant class
	// (JobSpec.Tenant) may have occupying the worker pool — queued or
	// running — at once. A submit past the tenant's quota is rejected
	// with ErrTenantQuota (HTTP 429) and counted in /statsz, so one
	// tenant's burst cannot monopolize the pool. Tenants absent from the
	// map (including tenant 0) are unquotaed. Cached completions never
	// occupy the pool, so they are admitted regardless.
	TenantQuotas map[uint8]int
}

// Job is one submitted simulation and everything observable about it.
// All mutable fields are guarded by mu; cond broadcasts on every state
// or sample change so pollers and stream readers wake without spinning.
type Job struct {
	ID   string
	Spec JobSpec
	// key and identity are the spec's content address, computed once at
	// submit: identity is the canonical spec JSON, key its FNV-1a hash.
	key      uint64
	identity []byte
	// noPeer pins the job to local compute (SubmitLocal): set for jobs
	// the /cache handler recomputes on an owner, so a misconfigured
	// ring can never forward a request in a loop.
	noPeer bool

	mu     sync.Mutex
	cond   *sync.Cond
	status Status
	cached bool
	// cacheSource says where a cached payload came from: "local" (this
	// node's cache at submit), "coalesced" (a single-flight waiter), or
	// "peer" (fetched from the key's owner).
	cacheSource string
	errMsg      string
	result      []byte // marshaled Result, set when status == StatusDone
	samples     []Sample
	cancel      context.CancelFunc
	// Lifecycle timestamps (wall clock): submitted is set at Submit,
	// started when a worker picks the job up (zero for cache hits, which
	// never run), finished at the terminal transition.
	submitted time.Time
	started   time.Time
	finished  time.Time
	// evicted is set when the job's handle leaves the table (RetainJobs
	// eviction). Attached stream tails terminate on it instead of
	// outliving the job they can no longer be looked up by.
	evicted bool
}

// JobView is a job's serialized state (GET /jobs/{id}). Result holds the
// cached payload verbatim, so identical specs yield byte-identical
// result fields. The lifecycle timestamps are wall clock (not simulated
// time): StartedAt is zero for cache hits, which complete without ever
// running; QueueWaitMs and RunMs are derived conveniences (zero until
// the phase they measure has completed).
type JobView struct {
	ID          string          `json:"id"`
	Status      Status          `json:"status"`
	Cached      bool            `json:"cached"`
	CacheSource string          `json:"cache_source,omitempty"`
	Error       string          `json:"error,omitempty"`
	Samples     int             `json:"samples"`
	SubmittedAt time.Time       `json:"submitted_at,omitzero"`
	StartedAt   time.Time       `json:"started_at,omitzero"`
	FinishedAt  time.Time       `json:"finished_at,omitzero"`
	QueueWaitMs float64         `json:"queue_wait_ms,omitempty"`
	RunMs       float64         `json:"run_ms,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
}

// View snapshots the job under its lock.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.ID,
		Status:      j.status,
		Cached:      j.cached,
		CacheSource: j.cacheSource,
		Error:       j.errMsg,
		Samples:     len(j.samples),
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
		Result:      json.RawMessage(j.result),
	}
	if !j.started.IsZero() {
		v.QueueWaitMs = float64(j.started.Sub(j.submitted)) / float64(time.Millisecond)
		if !j.finished.IsZero() {
			v.RunMs = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
		}
	}
	return v
}

// fail marks the job failed with the given cause.
func (j *Job) fail(err error) {
	j.mu.Lock()
	j.status = StatusFailed
	j.errMsg = err.Error()
	j.finished = time.Now()
	j.cond.Broadcast()
	j.mu.Unlock()
}

// addSample appends one telemetry observation.
func (j *Job) addSample(s Sample) {
	j.mu.Lock()
	j.samples = append(j.samples, s)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// Manager owns the job table, the worker pool, and the result cache —
// and, when a TierConfig is set, this node's membership in the fleet's
// sharded cache tier.
type Manager struct {
	opts  Options
	pool  *runner.Pool
	cache *cache
	tier  *tier // nil outside a fleet

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // job IDs in submission order, for eviction
	seq   int64

	// flightMu guards flights, the single-flight table: one entry per
	// cache key currently being computed (see flight.go).
	flightMu sync.Mutex
	flights  map[uint64]*flight

	// expSem serializes POST /experiments runs: experiments fan out
	// internally and are far heavier than jobs, so concurrent requests
	// past the bound are shed instead of stacking on handler goroutines.
	expSem chan struct{}

	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	running   atomic.Int64
	coalesced atomic.Uint64 // single-flight waiters collapsed onto a primary
	shedCt    atomic.Uint64 // submits rejected by shed mode

	// tenantMu guards tenantCt, the per-tenant job counters surfaced in
	// /statsz. Only nonzero tenants are tracked: tenant 0 is the legacy
	// untenanted default and stays out of the per-tenant view, the same
	// convention trace.Stats uses.
	tenantMu sync.Mutex
	tenantCt map[uint8]*tenantCounter

	// aggMu guards the duration aggregates: queue wait is recorded when
	// a worker picks a job up, run duration when a simulation completes.
	// Cache hits never run, so they appear in neither.
	aggMu     sync.Mutex
	queueWait stats.Mean
	runDur    stats.Mean

	// campaignStats, when set, is folded into Stats under "campaigns" —
	// the hook the campaign subsystem uses to surface its counters in
	// /statsz without simsvc importing it.
	campaignStats func() any
}

// New builds a Manager and starts its worker pool.
func New(opts Options) *Manager {
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = 1000
	}
	if opts.Workers <= 0 {
		opts.Workers = runner.DefaultWorkers()
	}
	if opts.RetainJobs <= 0 {
		opts.RetainJobs = 1024
	}
	m := &Manager{
		opts:     opts,
		pool:     runner.NewPool(opts.Workers, opts.Backlog),
		cache:    newCache(opts.CacheEntries),
		jobs:     map[string]*Job{},
		flights:  map[uint64]*flight{},
		expSem:   make(chan struct{}, 1),
		tenantCt: map[uint8]*tenantCounter{},
	}
	if opts.Tier != nil {
		m.tier = newTier(*opts.Tier)
	}
	return m
}

// ErrShed is returned by Submit in shed mode when the pool backlog is
// full: the service rejects explicitly (HTTP 429) instead of letting
// the caller queue behind the overload. Counted in /statsz.
var ErrShed = errors.New("simsvc: shedding load (pool backlog full)")

// ErrTenantQuota is returned by Submit when the spec's tenant already
// has its quota of jobs occupying the worker pool (Options.TenantQuotas).
// Counted per tenant in /statsz.
var ErrTenantQuota = errors.New("simsvc: tenant quota exceeded")

// tenantCounter accumulates one tenant's job counters.
type tenantCounter struct {
	submitted, completed, failed, quotaRejected int64
}

// tenantAdd applies f to tenant t's counter. Tenant 0 (untenanted) is
// not tracked.
func (m *Manager) tenantAdd(t uint8, f func(*tenantCounter)) {
	if t == 0 {
		return
	}
	m.tenantMu.Lock()
	c := m.tenantCt[t]
	if c == nil {
		c = &tenantCounter{}
		m.tenantCt[t] = c
	}
	f(c)
	m.tenantMu.Unlock()
}

// tenantInFlight counts tenant t's jobs occupying the pool: submitted
// and not yet terminal. Cached completions are terminal at submit and
// never counted.
func (m *Manager) tenantInFlight(t uint8) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, job := range m.jobs {
		if job.Spec.Tenant != t {
			continue
		}
		job.mu.Lock()
		if !job.status.terminal() {
			n++
		}
		job.mu.Unlock()
	}
	return n
}

// Submit validates a spec and enqueues it, returning the job record. A
// cache hit completes the job immediately — no worker, no simulation —
// with the memoized payload; a spec identical to one already in flight
// (here or, via the tier, on the key's owner) coalesces onto that
// computation instead of repeating it.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	return m.submit(spec, true)
}

// SubmitLocal is Submit pinned to this node: the job never consults the
// peer tier. The /cache handler uses it to recompute owned keys, so a
// misconfigured ring can never bounce a request between nodes.
func (m *Manager) SubmitLocal(spec JobSpec) (*Job, error) {
	return m.submit(spec, false)
}

func (m *Manager) submit(spec JobSpec, allowPeer bool) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if q, ok := m.opts.TenantQuotas[spec.Tenant]; ok && q > 0 {
		if n := m.tenantInFlight(spec.Tenant); n >= q {
			m.tenantAdd(spec.Tenant, func(c *tenantCounter) { c.quotaRejected++ })
			return nil, fmt.Errorf("%w: tenant %d has %d jobs in flight (quota %d)",
				ErrTenantQuota, spec.Tenant, n, q)
		}
	}
	identity := spec.Canonical()
	job := &Job{
		Spec:      spec,
		key:       identityKey(identity),
		identity:  identity,
		noPeer:    !allowPeer,
		status:    StatusQueued,
		submitted: time.Now(),
	}
	job.cond = sync.NewCond(&job.mu)

	m.mu.Lock()
	m.seq++
	job.ID = fmt.Sprintf("job-%d", m.seq)
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	m.evictLocked()
	m.mu.Unlock()
	m.submitted.Add(1)
	m.tenantAdd(spec.Tenant, func(c *tenantCounter) { c.submitted++ })

	primary, settled := m.joinOrStartFlight(job)
	if settled || !primary {
		// A cache hit completed the job; a coalesced waiter completes
		// when its primary resolves. Neither needs a worker.
		return job, nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	job.mu.Lock()
	job.cancel = cancel
	job.mu.Unlock()
	if err := m.pool.Submit(func() { m.run(ctx, job) }); err != nil {
		if errors.Is(err, runner.ErrPoolSaturated) && m.opts.Shed {
			m.shedCt.Add(1)
			err = ErrShed
		}
		// Shed: the caller never learns this job's ID, so drop the
		// record too — a rejection must not grow the job table. Any
		// waiter that coalesced onto us in the window above fails with
		// the same error.
		cancel()
		m.resolveFlight(job.key, nil, err)
		m.mu.Lock()
		delete(m.jobs, job.ID)
		for i := len(m.order) - 1; i >= 0; i-- { // ours is at or near the end
			if m.order[i] == job.ID {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
		m.mu.Unlock()
		m.failed.Add(1)
		m.tenantAdd(spec.Tenant, func(c *tenantCounter) { c.failed++ })
		return nil, err
	}
	return job, nil
}

// evictLocked (m.mu held) drops the oldest terminal jobs while the
// table exceeds its bound. Live jobs are never evicted, so the table
// can exceed the bound transiently by the number of in-flight jobs
// (itself bounded by workers + backlog).
func (m *Manager) evictLocked() {
	excess := len(m.jobs) - m.opts.RetainJobs
	if excess <= 0 {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		job, ok := m.jobs[id]
		if !ok {
			continue
		}
		evict := false
		if excess > 0 {
			job.mu.Lock()
			evict = job.status.terminal()
			job.mu.Unlock()
		}
		if evict {
			delete(m.jobs, id)
			excess--
			// Wake any attached stream tails: the handle is gone, so
			// they must terminate instead of tailing an unreachable job.
			job.mu.Lock()
			job.evicted = true
			job.cond.Broadcast()
			job.mu.Unlock()
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// run executes one job on a worker. In a fleet, a key owned by another
// node is first fetched from that owner (coalescing onto the owner's
// in-flight computation if one exists); only if the owner has nothing
// — or is down, timing out, or shedding — does this worker build the
// device, precondition, and drive the sampled workload itself. Either
// way the payload lands in the local cache and resolves this node's
// single-flight waiters.
func (m *Manager) run(ctx context.Context, job *Job) {
	job.mu.Lock()
	if job.status.terminal() {
		// Cancelled while still queued: Cancel already failed the job
		// (and counted it); the worker has nothing to do — but any
		// coalesced waiters must learn their primary died.
		job.mu.Unlock()
		m.resolveFlight(job.key, nil, context.Canceled)
		return
	}
	job.status = StatusRunning
	job.started = time.Now()
	wait := job.started.Sub(job.submitted)
	job.cond.Broadcast()
	job.mu.Unlock()
	m.aggMu.Lock()
	m.queueWait.Add(float64(wait) / float64(time.Millisecond))
	m.aggMu.Unlock()
	m.running.Add(1)
	defer m.running.Add(-1)

	var owner string
	if !job.noPeer && m.tier != nil {
		owner = m.tier.owner(job.key)
	}
	if owner != "" {
		if payload, ok := fetch(ctx, m.tier, owner, job.key, job.identity); ok {
			// Fleet hit: keep an L1 copy so repeats are local, settle
			// waiters, and finish the job as a cached completion —
			// byte-identical to what the owner (or any node) serves.
			m.cache.put(job.key, job.identity, payload)
			m.resolveFlight(job.key, payload, nil)
			m.completeCached(job, payload, "peer")
			return
		}
	}

	res, err := m.simulate(ctx, job)
	if err != nil {
		job.fail(err)
		m.failed.Add(1)
		m.tenantAdd(job.Spec.Tenant, func(c *tenantCounter) { c.failed++ })
		m.resolveFlight(job.key, nil, err)
		return
	}
	payload, err := json.Marshal(res)
	if err != nil {
		job.fail(err)
		m.failed.Add(1)
		m.tenantAdd(job.Spec.Tenant, func(c *tenantCounter) { c.failed++ })
		m.resolveFlight(job.key, nil, err)
		return
	}
	m.cache.put(job.key, job.identity, payload)
	m.resolveFlight(job.key, payload, nil)
	if owner != "" {
		// Computed locally for a key someone else owns (the owner was
		// down or shedding): push the payload so the tier converges on
		// owner-holds-the-entry. Best-effort and off the worker.
		go push(m.tier, owner, job.key, job.identity, payload)
	}
	job.mu.Lock()
	job.result = payload
	job.status = StatusDone
	job.finished = time.Now()
	run := job.finished.Sub(job.started)
	job.cond.Broadcast()
	job.mu.Unlock()
	m.aggMu.Lock()
	m.runDur.Add(float64(run) / float64(time.Millisecond))
	m.aggMu.Unlock()
	m.completed.Add(1)
	m.tenantAdd(job.Spec.Tenant, func(c *tenantCounter) { c.completed++ })
}

// simulate is the deterministic part of run: everything that feeds the
// result payload depends only on the spec.
func (m *Manager) simulate(ctx context.Context, job *Job) (Result, error) {
	spec := job.Spec
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	opts, err := spec.Options.build()
	if err != nil {
		return Result{}, err
	}
	if spec.Fault != nil {
		opts = append(opts, core.WithFault(spec.Fault))
	}
	if w := spec.tenantWeights(); w != nil {
		opts = append(opts, core.WithTenantWeights(w))
	}
	dev, err := core.Open(spec.Profile, opts...)
	if err != nil {
		return Result{}, err
	}
	if spec.PreconditionFrac > 0 {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		if err := core.PreconditionFrac(dev, 1<<20, spec.PreconditionFrac); err != nil {
			return Result{}, err
		}
	}
	var stream trace.Stream
	if len(spec.Tenants) > 0 {
		stream, err = spec.tenantStream()
	} else {
		stream, err = workload.NewStream(spec.Workload, spec.Params)
	}
	if err != nil {
		return Result{}, err
	}
	if spec.OpLimit > 0 {
		stream = trace.Limit(stream, spec.OpLimit)
	}
	// A power-loss point truncates the measured run at its op count: the
	// stream simply ends there (the in-flight tail drains, the rest of
	// the workload is never issued), then recovery replays below.
	if pl := spec.Fault.PowerLossPoint(); pl != nil {
		if spec.OpLimit == 0 || int64(spec.OpLimit) > pl.AtOps {
			stream = trace.Limit(stream, int(pl.AtOps))
		}
	}
	// Shift trace timestamps past the preconditioning window and tally
	// the workload summary as ops flow by.
	var wl trace.Stats
	stream = trace.Tally(trace.Shift(stream, dev.Engine().Now()), &wl)

	start := dev.Engine().Now()
	before := dev.Metrics()
	if _, err := DriveSampled(ctx, dev, stream, m.opts.SampleEvery, job.addSample); err != nil {
		return Result{}, err
	}
	// After a power loss the device comes back and replays recovery: a
	// sequential scan whose reads land on the same metrics, so the
	// snapshot below reflects the truncated run plus the remount cost.
	if pl := spec.Fault.PowerLossPoint(); pl != nil {
		if err := core.ReplayRecovery(dev, pl.ReplayFrac); err != nil {
			return Result{}, err
		}
	}
	elapsed := (dev.Engine().Now() - start).Seconds()
	after := dev.Metrics()
	return Result{
		Spec:             spec,
		Snapshot:         after,
		Workload:         wl,
		SimulatedSeconds: elapsed,
		ReadMBps:         stats.Bandwidth(after.BytesRead-before.BytesRead, elapsed),
		WriteMBps:        stats.Bandwidth(after.BytesWritten-before.BytesWritten, elapsed),
	}, nil
}

// Job looks a job up by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a queued or running job. A running
// job transitions to failed (context.Canceled) at its next op boundary;
// a job still waiting for a worker fails immediately — its waiters and
// stream tails would otherwise stay blocked until a worker got around
// to noticing the dead context, which behind a long backlog can be
// arbitrarily far in the future. Cancelling a terminal job is a no-op
// reporting false.
func (m *Manager) Cancel(id string) (bool, error) {
	job, ok := m.Job(id)
	if !ok {
		return false, fmt.Errorf("simsvc: no job %q", id)
	}
	job.mu.Lock()
	cancel := job.cancel
	live := !job.status.terminal()
	if live && job.status == StatusQueued {
		job.status = StatusFailed
		job.errMsg = context.Canceled.Error()
		job.finished = time.Now()
		job.cond.Broadcast()
		m.failed.Add(1)
		m.tenantAdd(job.Spec.Tenant, func(c *tenantCounter) { c.failed++ })
	}
	job.mu.Unlock()
	if !live {
		return false, nil
	}
	if cancel != nil {
		cancel()
	}
	return true, nil
}

// Wait blocks until the job reaches a terminal state (or ctx ends) and
// returns its view. Holding the *Job keeps Wait valid even after the
// job's handle is evicted from the manager's table.
func (j *Job) Wait(ctx context.Context) (JobView, error) {
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	j.mu.Lock()
	for !j.status.terminal() && ctx.Err() == nil {
		j.cond.Wait()
	}
	j.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return JobView{}, err
	}
	return j.View(), nil
}

// Wait blocks until the job reaches a terminal state (or ctx ends) and
// returns its view.
func (m *Manager) Wait(ctx context.Context, id string) (JobView, error) {
	job, ok := m.Job(id)
	if !ok {
		return JobView{}, fmt.Errorf("simsvc: no job %q", id)
	}
	return job.Wait(ctx)
}

// ErrJobEvicted terminates a sample stream whose job was evicted from
// the table while the stream was attached: the handle is gone, so the
// tail ends instead of outliving the job indefinitely.
var ErrJobEvicted = errors.New("simsvc: job evicted while streaming")

// StreamSamples replays the job's telemetry from the beginning and then
// tails it live, calling fn for each sample in order, until the job is
// terminal and fully delivered, fn errors (client gone), ctx ends, or
// the job is evicted from the table (ErrJobEvicted). A subscriber that
// connects after the job finished still receives every retained sample.
func (m *Manager) StreamSamples(ctx context.Context, id string, fn func(Sample) error) error {
	job, ok := m.Job(id)
	if !ok {
		return fmt.Errorf("simsvc: no job %q", id)
	}
	stop := context.AfterFunc(ctx, func() {
		job.mu.Lock()
		job.cond.Broadcast()
		job.mu.Unlock()
	})
	defer stop()
	i := 0
	for {
		job.mu.Lock()
		for i >= len(job.samples) && !job.status.terminal() && !job.evicted && ctx.Err() == nil {
			job.cond.Wait()
		}
		pending := job.samples[i:]
		done := job.status.terminal()
		evicted := job.evicted
		job.mu.Unlock()
		if err := ctx.Err(); err != nil {
			return err
		}
		// Retained samples are never discarded: deliver what was
		// snapshotted before acting on eviction, and a stream that has
		// fully delivered a finished job completes cleanly even if the
		// handle was evicted while the last batch was on the wire.
		for _, s := range pending {
			if err := fn(s); err != nil {
				return err
			}
			i++
		}
		if done && len(pending) == 0 {
			return nil
		}
		if evicted {
			return ErrJobEvicted
		}
	}
}

// DurationAgg summarizes a population of wall-clock durations in
// milliseconds (GET /statsz).
type DurationAgg struct {
	N      uint64  `json:"n"`
	MeanMs float64 `json:"mean_ms"`
	MinMs  float64 `json:"min_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// durationAgg snapshots a stats.Mean of millisecond samples.
func durationAgg(m stats.Mean) DurationAgg {
	return DurationAgg{N: m.N(), MeanMs: m.Mean(), MinMs: m.Min(), MaxMs: m.Max()}
}

// Stats is the service's aggregate state (GET /statsz). QueueWait
// covers every job a worker picked up (submit → start); Run covers
// completed simulations (start → done); cache hits appear in neither.
type Stats struct {
	Workers       int   `json:"workers"`
	SampleEvery   int   `json:"sample_every"`
	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsRunning   int64 `json:"jobs_running"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	// JobsShed counts submits rejected by shed mode (HTTP 429); zero
	// unless the manager runs with Options.Shed.
	JobsShed uint64 `json:"jobs_shed"`
	// Coalesced counts single-flight waiters: jobs that attached to an
	// identical in-flight computation instead of simulating.
	Coalesced uint64      `json:"coalesced"`
	QueueWait DurationAgg `json:"queue_wait"`
	Run       DurationAgg `json:"run"`
	Cache     CacheStats  `json:"cache"`
	// Tier is the fleet cache tier's counters when this node is peered
	// (Options.Tier), absent otherwise.
	Tier *TierStats `json:"tier,omitempty"`
	// Campaigns is the campaign subsystem's counters when one is
	// attached (SetCampaignStats), absent otherwise.
	Campaigns any `json:"campaigns,omitempty"`
	// Tenants are the per-tenant job counters, in tenant order, one entry
	// per nonzero tenant class that has submitted (or been quota-rejected)
	// since startup. Absent while every job is untenanted, so the legacy
	// /statsz payload is unchanged.
	Tenants []TenantJobStats `json:"tenants,omitempty"`
}

// TenantJobStats is one tenant class's job counters (GET /statsz).
type TenantJobStats struct {
	Tenant    int   `json:"tenant"`
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	// InFlight counts the tenant's jobs currently occupying the pool
	// (queued or running) — the number the tenant's quota bounds.
	InFlight int `json:"in_flight"`
	// QuotaRejected counts submits refused with ErrTenantQuota.
	QuotaRejected int64 `json:"quota_rejected"`
	// Quota echoes the tenant's configured in-flight cap (0 = none).
	Quota int `json:"quota,omitempty"`
}

// Stats reports the manager's counters.
func (m *Manager) Stats() Stats {
	m.aggMu.Lock()
	queueWait, runDur := m.queueWait, m.runDur
	m.aggMu.Unlock()
	s := Stats{
		Workers:       m.opts.Workers,
		SampleEvery:   m.opts.SampleEvery,
		JobsSubmitted: m.submitted.Load(),
		JobsRunning:   m.running.Load(),
		JobsCompleted: m.completed.Load(),
		JobsFailed:    m.failed.Load(),
		JobsShed:      m.shedCt.Load(),
		Coalesced:     m.coalesced.Load(),
		QueueWait:     durationAgg(queueWait),
		Run:           durationAgg(runDur),
		Cache:         m.cache.stats(),
	}
	if m.tier != nil {
		tierStats := m.tier.stats()
		s.Tier = &tierStats
	}
	m.mu.Lock()
	campaigns := m.campaignStats
	m.mu.Unlock()
	if campaigns != nil {
		s.Campaigns = campaigns()
	}
	s.Tenants = m.tenantStats()
	return s
}

// tenantStats snapshots the per-tenant counters in tenant order.
func (m *Manager) tenantStats() []TenantJobStats {
	m.tenantMu.Lock()
	ids := make([]int, 0, len(m.tenantCt))
	for t := range m.tenantCt {
		ids = append(ids, int(t))
	}
	sort.Ints(ids)
	out := make([]TenantJobStats, 0, len(ids))
	for _, id := range ids {
		c := m.tenantCt[uint8(id)]
		out = append(out, TenantJobStats{
			Tenant:        id,
			Submitted:     c.submitted,
			Completed:     c.completed,
			Failed:        c.failed,
			QuotaRejected: c.quotaRejected,
			Quota:         m.opts.TenantQuotas[uint8(id)],
		})
	}
	m.tenantMu.Unlock()
	for i := range out {
		out[i].InFlight = m.tenantInFlight(uint8(out[i].Tenant))
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Workers reports the worker-pool size, the fan-out a campaign's ETA
// divides its remaining work across.
func (m *Manager) Workers() int { return m.opts.Workers }

// SetCampaignStats attaches the campaign subsystem's counters to
// /statsz. fn must be safe for concurrent use.
func (m *Manager) SetCampaignStats(fn func() any) {
	m.mu.Lock()
	m.campaignStats = fn
	m.mu.Unlock()
}

// CancelAll cancels every queued and running job: each stops at its
// next op boundary and reports failed, waking its waiters and stream
// subscribers. Called ahead of HTTP shutdown so blocked ?wait=1 and
// /stream handlers complete with responses instead of being cut off.
func (m *Manager) CancelAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, job := range m.jobs {
		job.mu.Lock()
		if cancel := job.cancel; cancel != nil && !job.status.terminal() {
			cancel()
		}
		job.mu.Unlock()
	}
}

// Close shuts the manager down gracefully: in-flight jobs are cancelled
// (they stop at their next op boundary and report failed), the queue
// drains, and the workers exit.
func (m *Manager) Close() {
	m.CancelAll()
	m.pool.Close()
}
