package simsvc

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"ossd/internal/fault"
)

// Fault plans are part of the cache identity: identical faulted specs
// share one entry; a faulted and a fault-free run of the same workload
// never do.
func TestFaultJobCacheIdentity(t *testing.T) {
	m := New(Options{Workers: 1})
	defer m.Close()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	spec := smallSpec(20_000, 7)
	spec.Fault = &fault.Plan{
		Seed:      3,
		Transient: &fault.Transient{Rate: 0.01, Burst: 4, RetryUs: 400},
	}
	first := postJob(t, srv, spec)
	firstDone := waitJob(t, srv, first.ID)
	if firstDone.Status != StatusDone || firstDone.Cached {
		t.Fatalf("first faulted run: %+v", firstDone)
	}
	var res Result
	if err := json.Unmarshal(firstDone.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.FaultsInjected == 0 || res.Snapshot.FaultRetries == 0 {
		t.Fatalf("faulted run injected nothing: %+v", res.Snapshot)
	}

	second := postJob(t, srv, spec)
	if !second.Cached {
		t.Fatalf("identical faulted spec missed the cache: %+v", second)
	}
	if !bytes.Equal(firstDone.Result, second.Result) {
		t.Fatal("cached faulted payload differs")
	}

	// The same workload without the plan is a different content address.
	clean := postJob(t, srv, smallSpec(20_000, 7))
	if clean.Cached {
		t.Fatal("fault-free spec hit the faulted cache entry")
	}
	cleanDone := waitJob(t, srv, clean.ID)
	if cleanDone.Status != StatusDone {
		t.Fatalf("clean run: %+v", cleanDone)
	}
	if err := json.Unmarshal(cleanDone.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.FaultsInjected != 0 {
		t.Fatalf("clean run reports injections: %+v", res.Snapshot)
	}
}

// A power-loss point truncates the measured run at its op count and the
// recovery scan's reads land on the final snapshot.
func TestPowerLossTruncatesAndRecovers(t *testing.T) {
	m := New(Options{Workers: 1})
	defer m.Close()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	spec := smallSpec(20_000, 5)
	spec.Fault = &fault.Plan{
		PowerLoss: &fault.PowerLoss{AtOps: 4000, ReplayFrac: 0.5},
	}
	view := waitJob(t, srv, postJob(t, srv, spec).ID)
	if view.Status != StatusDone {
		t.Fatalf("power-loss run: %+v", view)
	}
	var res Result
	if err := json.Unmarshal(view.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Workload.Ops != 4000 {
		t.Fatalf("workload drove %d ops past the power-loss point, want 4000", res.Workload.Ops)
	}
	if res.Snapshot.BytesRead <= res.Workload.ReadBytes {
		t.Fatalf("recovery scan invisible: device read %d, workload read %d",
			res.Snapshot.BytesRead, res.Workload.ReadBytes)
	}
}

// Bad plans are rejected at submit, not on a worker.
func TestFaultSpecValidation(t *testing.T) {
	m := New(Options{Workers: 1})
	defer m.Close()
	spec := smallSpec(1000, 1)
	spec.Fault = &fault.Plan{Transient: &fault.Transient{Rate: 1.5}}
	if _, err := m.Submit(spec); err == nil {
		t.Fatal("out-of-range transient rate accepted")
	}
	spec.Fault = &fault.Plan{PowerLoss: &fault.PowerLoss{AtOps: -1}}
	if _, err := m.Submit(spec); err == nil {
		t.Fatal("negative power-loss point accepted")
	}
}
