// Package mems models a MEMS-based storage device in the style of
// Griffin et al. (OSDI 2000) and Schlosser & Ganger (FAST 2004): a probe
// array over a spring-mounted media sled that seeks in X/Y and streams
// while sweeping. The paper's Table 1 includes this device class because
// it is the counter-example: MEMS storage *satisfies* the unwritten
// contract (sequential beats random, distance costs time, the address
// space is uniform, no amplification, no wear, no background activity),
// so the block interface fits it — unlike SSDs.
package mems

import (
	"fmt"
	"math"

	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/stats"
	"ossd/internal/trace"
)

// Config describes the device.
type Config struct {
	// CapacityBytes is the media capacity.
	CapacityBytes int64
	// StreamMBps is the sustained streaming rate while sweeping.
	StreamMBps float64
	// Settle is the post-seek oscillation settling time.
	Settle sim.Time
	// FullStroke is the X-displacement time across the whole sled.
	FullStroke sim.Time
	// Tracks is the number of sweep columns (defines the X coordinate of
	// an LBA).
	Tracks int
}

// G2 returns the second-generation device parameters used by Schlosser &
// Ganger: ~3.5 GB, ~76 MB/s streaming, sub-millisecond seeks.
func G2() Config {
	return Config{
		CapacityBytes: 3584 << 20,
		StreamMBps:    76,
		Settle:        200 * sim.Microsecond,
		FullStroke:    800 * sim.Microsecond,
		Tracks:        10000,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.CapacityBytes <= 0 || c.StreamMBps <= 0 || c.Tracks <= 0 {
		return fmt.Errorf("mems: invalid config %+v", *c)
	}
	return nil
}

// Metrics accumulates measurements.
type Metrics struct {
	Completed               int64
	ReadResp, WriteResp     stats.Histogram // ms
	BytesRead, BytesWritten int64
	Seeks                   int64
	// Tenants breaks completed host transfers down per tenant class.
	Tenants stats.TenantSet
}

// Request mirrors the device request lifecycle.
type Request struct {
	Op                  trace.Op
	Arrive, Start, Done sim.Time
	onDone              func(*Request)
	// dev lets the pooled engine callback reach the model without a
	// closure per event.
	dev *Device
}

// Response returns completion minus arrival.
func (r *Request) Response() sim.Time { return r.Done - r.Arrive }

// Device is the MEMS store. Single actuator: one request at a time,
// FCFS, dispatched through the shared indexed queue.
type Device struct {
	cfg Config
	eng *sim.Engine

	track   int   // sled X position
	lastEnd int64 // for sequential detection
	q       *sched.Queue
	drv     *sched.Driver
	met     Metrics
}

// sled is the element set of every access: the one media sled.
var sled = []int{0}

// New builds a device.
func New(eng *sim.Engine, cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{cfg: cfg, eng: eng}
	d.q = sched.NewQueue(sched.FCFS, 1)
	d.drv = sched.NewDriver(eng, d.q, d.serve)
	return d, nil
}

// Engine returns the driving engine.
func (d *Device) Engine() *sim.Engine { return d.eng }

// LogicalBytes reports the capacity.
func (d *Device) LogicalBytes() int64 { return d.cfg.CapacityBytes }

// Metrics returns a snapshot.
func (d *Device) Metrics() Metrics { return d.met }

// trackOf maps an offset to its sweep column.
func (d *Device) trackOf(off int64) int {
	return int(float64(off) / float64(d.cfg.CapacityBytes) * float64(d.cfg.Tracks))
}

// seekTime is the sled displacement cost: square-root-of-distance spring
// dynamics plus a constant settle, per Griffin et al.
func (d *Device) seekTime(from, to int) sim.Time {
	if from == to {
		return 0
	}
	frac := math.Abs(float64(from-to)) / float64(d.cfg.Tracks)
	d.met.Seeks++
	return d.cfg.Settle + sim.Time(float64(d.cfg.FullStroke)*math.Sqrt(frac))
}

// serviceTime is one access: seek (skipped for sequential continuation)
// plus streaming transfer.
func (d *Device) serviceTime(op trace.Op) sim.Time {
	xfer := sim.Time(float64(op.Size) / (d.cfg.StreamMBps * 1e6) * 1e9)
	if op.Offset == d.lastEnd {
		d.lastEnd = op.End()
		d.track = d.trackOf(op.End())
		return xfer
	}
	seek := d.seekTime(d.track, d.trackOf(op.Offset))
	d.track = d.trackOf(op.End())
	d.lastEnd = op.End()
	return seek + xfer
}

// Submit enqueues a request; the single actuator serves FIFO.
func (d *Device) Submit(op trace.Op, onDone func(*Request)) error {
	if err := op.Validate(); err != nil {
		return err
	}
	if op.End() > d.cfg.CapacityBytes {
		return fmt.Errorf("mems: request [%d, +%d) beyond capacity", op.Offset, op.Size)
	}
	req := &Request{Op: op, Arrive: d.eng.Now(), onDone: onDone, dev: d}
	if op.Kind == trace.Free {
		d.finish(req)
		return nil
	}
	d.q.PushT(sled, req, op.Tenant, op.Size)
	d.drv.Pump()
	return nil
}

// QueueDepth reports requests waiting for the sled.
func (d *Device) QueueDepth() int { return d.q.Len() }

// servedEvent is the pooled engine callback for a finished sled access:
// complete the request and pump the dispatch loop.
func servedEvent(a any) {
	req := a.(*Request)
	req.dev.finish(req)
	req.dev.drv.Pump()
}

// serve starts one access on the sled.
func (d *Device) serve(data any, now sim.Time) {
	req := data.(*Request)
	req.Start = now
	dur := d.serviceTime(req.Op)
	d.q.SetBusy(0, now+dur)
	d.eng.Call(dur, servedEvent, req)
}

func (d *Device) finish(req *Request) {
	req.Done = d.eng.Now()
	d.met.Completed++
	ms := req.Response().Millis()
	switch req.Op.Kind {
	case trace.Read:
		d.met.ReadResp.Add(ms)
		d.met.BytesRead += req.Op.Size
		d.met.Tenants.Record(req.Op.Tenant, false, req.Op.Size, ms)
	case trace.Write:
		d.met.WriteResp.Add(ms)
		d.met.BytesWritten += req.Op.Size
		d.met.Tenants.Record(req.Op.Tenant, true, req.Op.Size, ms)
	}
	if req.onDone != nil {
		req.onDone(req)
	}
}

// Play replays a timestamped trace.
func (d *Device) Play(ops []trace.Op) error {
	var firstErr error
	for _, op := range ops {
		op := op
		d.eng.At(op.At, func() {
			if err := d.Submit(op, nil); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	d.eng.Run()
	return firstErr
}

// ClosedLoop keeps depth requests outstanding from gen.
func (d *Device) ClosedLoop(depth int, gen func(i int) (trace.Op, bool)) error {
	if depth <= 0 {
		depth = 1
	}
	var firstErr error
	i := 0
	var issue func()
	// One completion callback for the whole loop, not one per op.
	reissue := func(*Request) { issue() }
	issue = func() {
		op, ok := gen(i)
		if !ok {
			return
		}
		i++
		if err := d.Submit(op, reissue); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for k := 0; k < depth; k++ {
		issue()
	}
	d.eng.Run()
	return firstErr
}
