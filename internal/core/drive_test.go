package core

import (
	"testing"

	"ossd/internal/sim"
	"ossd/internal/trace"
)

// stormStream emits n writes all timestamped zero: the open-loop arrival
// storm admission control exists to absorb.
func stormStream(n int, size int64, space int64) trace.Stream {
	i := 0
	return trace.Func(func() (trace.Op, bool) {
		if i >= n {
			return trace.Op{}, false
		}
		off := (int64(i) * size) % space
		i++
		return trace.Op{Kind: trace.Write, Offset: off, Size: size}, true
	})
}

// TestDriveMaxPendingBoundsBacklog pins the WithMaxPending contract: a
// storm the device cannot absorb keeps at most maxPending requests
// outstanding (so the device queue never grows past the bound), every
// operation still completes, and the run remains deterministic.
func TestDriveMaxPendingBoundsBacklog(t *testing.T) {
	const (
		ops   = 2000
		bound = 16
	)
	d, err := Open("ssd", WithMaxPending(bound))
	if err != nil {
		t.Fatal(err)
	}
	space := d.LogicalBytes()
	maxDepth := 0
	inner := stormStream(ops, 4096, space)
	depthProbe := trace.Func(func() (trace.Op, bool) {
		if q := d.QueueDepth(); q > maxDepth {
			maxDepth = q
		}
		return inner.Next()
	})
	if err := d.Drive(depthProbe); err != nil {
		t.Fatal(err)
	}
	if got := d.Metrics().Completed; got < ops {
		t.Fatalf("completed %d of %d: admission control shed work", got, ops)
	}
	if maxDepth > bound {
		t.Fatalf("queue depth peaked at %d, bound %d", maxDepth, bound)
	}
	if maxDepth == 0 {
		t.Fatal("storm never queued: the probe is not observing anything")
	}

	// Determinism: a second identical run finishes at the identical
	// simulated time with identical metrics.
	d2, err := Open("ssd", WithMaxPending(bound))
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Drive(stormStream(ops, 4096, d2.LogicalBytes())); err != nil {
		t.Fatal(err)
	}
	if d.Engine().Now() != d2.Engine().Now() {
		t.Fatalf("paced runs diverged: %v vs %v", d.Engine().Now(), d2.Engine().Now())
	}
	if d.Metrics() != d2.Metrics() {
		t.Fatalf("paced runs diverged: %+v vs %+v", d.Metrics(), d2.Metrics())
	}
}

// TestDriveMaxPendingAllKinds drives a short storm against every media
// kind with a bound, checking completion and the bound on each.
func TestDriveMaxPendingAllKinds(t *testing.T) {
	for _, name := range []string{"ssd", "hdd", "mems", "raid", "osd"} {
		t.Run(name, func(t *testing.T) {
			d, err := Open(name, WithMaxPending(4))
			if err != nil {
				t.Fatal(err)
			}
			const ops = 64
			maxDepth := 0
			inner := stormStream(ops, 4096, 1<<20)
			probe := trace.Func(func() (trace.Op, bool) {
				if q := d.QueueDepth(); q > maxDepth {
					maxDepth = q
				}
				return inner.Next()
			})
			if err := d.Drive(probe); err != nil {
				t.Fatal(err)
			}
			if got := d.Metrics().Completed; got < ops {
				t.Fatalf("completed %d of %d", got, ops)
			}
			// RAID decomposes each host op into several spindle sub-ops,
			// so its media-level depth may exceed the host-level bound by
			// the per-op fan-out; every other kind queues host requests.
			if name != "raid" && maxDepth > 4 {
				t.Fatalf("queue depth peaked at %d, bound 4", maxDepth)
			}
		})
	}
}

// TestDriveUnboundedUnchanged guards the legacy open-loop path: without
// a bound, a paced workload completes with timestamps honored (the same
// motion as before the admission-control refactor).
func TestDriveUnboundedUnchanged(t *testing.T) {
	d, err := Open("ssd")
	if err != nil {
		t.Fatal(err)
	}
	ops := []trace.Op{
		{At: 0, Kind: trace.Write, Offset: 0, Size: 4096},
		{At: 5 * sim.Millisecond, Kind: trace.Read, Offset: 0, Size: 4096},
	}
	if err := d.Drive(trace.FromSlice(ops)); err != nil {
		t.Fatal(err)
	}
	if got := d.Metrics().Completed; got != 2 {
		t.Fatalf("completed %d, want 2", got)
	}
	if now := d.Engine().Now(); now < 5*sim.Millisecond {
		t.Fatalf("engine finished at %v, before the last arrival", now)
	}
}
