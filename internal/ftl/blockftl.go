package ftl

import (
	"fmt"

	"ossd/internal/flash"
	"ossd/internal/sim"
)

// Block is a block-mapped FTL: the mapping table has one entry per
// logical *block* (PagesPerBlock pages), which is why early, cheap
// controllers used it — the table fits in tiny SRAM. The cost is the
// paper's §3.4 "read-modify-erase-write cycle": any write that does not
// extend the block sequentially rewrites the whole block into a fresh
// erase unit.
type Block struct {
	cfg Config
	pkg *flash.Package

	ppb     int
	logical int // logical pages

	blockMap []int32 // lbn -> physical block, -1 unmapped
	// written marks logical pages the host has stored (merges program
	// padding pages to satisfy in-order constraints; those must not read
	// back as live data). dead marks informed-freed pages.
	written, dead []bool

	// repl holds open replacement blocks: a sequential overwrite starting
	// at page 0 appends to a fresh block, and a "switch merge" retires
	// the old block when the replacement completes (or is closed). This
	// is what keeps sequential overwrites cheap on block-mapped FTLs.
	repl      map[int]int32 // lbn -> physical block
	replOrder []int         // open order, for bounded-pool eviction

	freeBlocks []int
	stats      Stats
}

// maxReplacementBlocks bounds concurrently open replacement blocks, like
// the small SRAM-tracked set a real controller keeps.
const maxReplacementBlocks = 4

// NewBlock builds a block-mapped FTL over a fresh package.
func NewBlock(cfg Config) (*Block, error) {
	if err := cfg.Geom.Validate(); err != nil {
		return nil, err
	}
	if cfg.EraseBudget == 0 {
		cfg.EraseBudget = flash.EraseBudgetFor(flash.SLC)
	}
	if cfg.Geom.BlocksPerPackage < 3 {
		return nil, fmt.Errorf("ftl: need at least 3 blocks, got %d", cfg.Geom.BlocksPerPackage)
	}
	pkg, err := flash.NewPackage(cfg.Geom, cfg.Timing, cfg.EraseBudget)
	if err != nil {
		return nil, err
	}
	// One spare block for the merge destination; the rest are logical.
	logicalBlocks := cfg.Geom.BlocksPerPackage - 1
	if op := int(float64(cfg.Geom.BlocksPerPackage) * cfg.Overprovision); op > 1 {
		logicalBlocks = cfg.Geom.BlocksPerPackage - op
	}
	b := &Block{
		cfg:      cfg,
		pkg:      pkg,
		ppb:      cfg.Geom.PagesPerBlock,
		logical:  logicalBlocks * cfg.Geom.PagesPerBlock,
		blockMap: make([]int32, logicalBlocks),
		written:  make([]bool, logicalBlocks*cfg.Geom.PagesPerBlock),
		dead:     make([]bool, logicalBlocks*cfg.Geom.PagesPerBlock),
		repl:     make(map[int]int32),
	}
	for i := range b.blockMap {
		b.blockMap[i] = -1
	}
	for pb := cfg.Geom.BlocksPerPackage - 1; pb >= 0; pb-- {
		b.freeBlocks = append(b.freeBlocks, pb)
	}
	return b, nil
}

// LogicalPages implements Backend.
func (b *Block) LogicalPages() int { return b.logical }

// PageSize implements Backend.
func (b *Block) PageSize() int { return b.cfg.Geom.PageSize }

// FreeFraction implements Backend.
func (b *Block) FreeFraction() float64 {
	free := len(b.freeBlocks) * b.ppb
	for _, rp := range b.repl {
		free += b.ppb - b.pkg.WritePointer(int(rp))
	}
	return float64(free) / float64(b.cfg.Geom.Pages())
}

// Mapped implements Backend.
func (b *Block) Mapped(lpn int) bool {
	return lpn >= 0 && lpn < b.logical && b.written[lpn] && !b.dead[lpn]
}

// Stats implements Backend.
func (b *Block) Stats() Stats { return b.stats }

// Wear implements Backend.
func (b *Block) Wear() flash.WearStats { return b.pkg.Wear() }

// CanClean implements Backend: block mapping merges inline, there is no
// deferred garbage.
func (b *Block) CanClean() bool { return false }

// CleanOnce implements Backend.
func (b *Block) CleanOnce() (sim.Time, error) { return 0, ErrNoSpace }

func (b *Block) checkLPN(lpn int) error {
	if lpn < 0 || lpn >= b.logical {
		return fmt.Errorf("%w: lpn %d of %d", ErrOutOfRange, lpn, b.logical)
	}
	return nil
}

func (b *Block) allocBlock() (int, error) {
	if len(b.freeBlocks) == 0 {
		return 0, ErrNoSpace
	}
	pb := b.freeBlocks[0]
	b.freeBlocks = b.freeBlocks[1:]
	return pb, nil
}

// ReadPage implements Backend.
func (b *Block) ReadPage(lpn int) (sim.Time, error) {
	if err := b.checkLPN(lpn); err != nil {
		return 0, err
	}
	b.stats.HostReads++
	if !b.Mapped(lpn) {
		return sim.Time(b.cfg.Geom.PageSize) * b.cfg.Timing.BusPerByte, nil
	}
	lbn, off := lpn/b.ppb, lpn%b.ppb
	// The replacement block holds the newest copies of its prefix.
	if rp, ok := b.repl[lbn]; ok && off < b.pkg.WritePointer(int(rp)) {
		return b.pkg.ReadPage(int(rp), off)
	}
	return b.pkg.ReadPage(int(b.blockMap[lbn]), off)
}

// WritePage implements Backend. Sequential extension programs in place;
// anything else is a full-block read-merge-write into a fresh block.
func (b *Block) WritePage(lpn int) (sim.Time, error) {
	if err := b.checkLPN(lpn); err != nil {
		return 0, err
	}
	b.stats.HostWrites++
	b.written[lpn] = true
	b.dead[lpn] = false
	lbn, off := lpn/b.ppb, lpn%b.ppb
	// Append to an open replacement block when the write continues it.
	if rp, ok := b.repl[lbn]; ok {
		if b.pkg.WritePointer(int(rp)) == off {
			d, err := b.pkg.ProgramPage(int(rp), off)
			if err != nil {
				return d, err
			}
			if off == b.ppb-1 {
				d2, err := b.closeReplacement(lbn)
				return d + d2, err
			}
			return d, nil
		}
		// Out-of-order against the replacement: close it, then retry the
		// write against the merged block.
		d, err := b.closeReplacement(lbn)
		if err != nil {
			return d, err
		}
		b.stats.HostWrites-- // the recursive call re-counts
		d2, err := b.WritePage(lpn)
		return d + d2, err
	}
	pb := b.blockMap[lbn]
	if pb != -1 && b.pkg.WritePointer(int(pb)) == off {
		return b.pkg.ProgramPage(int(pb), off)
	}
	// A rewrite starting at page 0 of a mapped block opens a replacement
	// block: sequential overwrites then cost one program per page.
	if pb != -1 && off == 0 {
		d, err := b.openReplacement(lbn)
		if err != nil {
			return d, err
		}
		d2, err := b.pkg.ProgramPage(int(b.repl[lbn]), 0)
		return d + d2, err
	}
	if pb == -1 {
		if off == 0 {
			npb, err := b.allocBlock()
			if err != nil {
				return 0, err
			}
			d, err := b.pkg.ProgramPage(npb, 0)
			if err != nil {
				return d, err
			}
			b.blockMap[lbn] = int32(npb)
			return d, nil
		}
		// First write lands mid-block: allocate and fill the gap with
		// padding programs (the controller writes zeros to satisfy
		// in-order programming).
		npb, err := b.allocBlock()
		if err != nil {
			return 0, err
		}
		var total sim.Time
		for k := 0; k <= off; k++ {
			d, err := b.pkg.ProgramPage(npb, k)
			total += d
			if err != nil {
				return total, err
			}
		}
		b.blockMap[lbn] = int32(npb)
		return total, nil
	}
	return b.merge(lbn, off)
}

// openReplacement allocates a replacement block for lbn, evicting the
// oldest open replacement when the pool is full.
func (b *Block) openReplacement(lbn int) (sim.Time, error) {
	var total sim.Time
	// Keep the pool bounded AND leave at least one free block as the
	// merge spare; otherwise a random write could find no destination.
	for len(b.replOrder) > 0 && (len(b.replOrder) >= maxReplacementBlocks || len(b.freeBlocks) < 2) {
		d, err := b.closeReplacement(b.replOrder[0])
		total += d
		if err != nil {
			return total, err
		}
	}
	if len(b.freeBlocks) < 2 {
		return total, ErrNoSpace
	}
	npb, err := b.allocBlock()
	if err != nil {
		return total, err
	}
	b.repl[lbn] = int32(npb)
	b.replOrder = append(b.replOrder, lbn)
	return total, nil
}

// closeReplacement finalizes lbn's replacement block: pages beyond its
// write pointer are copied from the old block (a partial merge; a full
// replacement is a free "switch merge"), the old block is erased, and
// the replacement becomes the data block.
func (b *Block) closeReplacement(lbn int) (sim.Time, error) {
	rp, ok := b.repl[lbn]
	if !ok {
		return 0, nil
	}
	delete(b.repl, lbn)
	for i, l := range b.replOrder {
		if l == lbn {
			b.replOrder = append(b.replOrder[:i], b.replOrder[i+1:]...)
			break
		}
	}
	old := b.blockMap[lbn]
	wp := b.pkg.WritePointer(int(rp))
	oldWP := 0
	if old != -1 {
		oldWP = b.pkg.WritePointer(int(old))
	}
	var total sim.Time
	copied := false
	for k := wp; k < oldWP; k++ {
		lpn := lbn*b.ppb + k
		if b.written[lpn] && !b.dead[lpn] {
			d, err := b.pkg.ReadPage(int(old), k)
			total += d
			if err != nil {
				return total, err
			}
			b.stats.PagesMoved++
			copied = true
		}
		// Program regardless to keep the block in-order up to oldWP.
		d, err := b.pkg.ProgramPage(int(rp), k)
		total += d
		if err != nil {
			return total, err
		}
	}
	if old != -1 {
		d, err := b.pkg.EraseBlock(int(old))
		total += d
		if err != nil {
			return total, err
		}
		b.freeBlocks = append(b.freeBlocks, int(old))
		b.stats.GCErases++
	}
	b.blockMap[lbn] = rp
	if copied || old != -1 {
		b.stats.Cleans++
		b.stats.CleanTime += total
	}
	return total, nil
}

// merge rewrites logical block lbn into a fresh physical block with page
// `off` replaced by new data, then erases the old block. The extra page
// copies and the erase are charged as cleaning work.
func (b *Block) merge(lbn, off int) (sim.Time, error) {
	old := int(b.blockMap[lbn])
	oldWP := b.pkg.WritePointer(old)
	top := oldWP
	if off+1 > top {
		top = off + 1
	}
	npb, err := b.allocBlock()
	if err != nil {
		return 0, err
	}
	var total sim.Time
	for k := 0; k < top; k++ {
		lpn := lbn*b.ppb + k
		if k != off && k < oldWP && b.written[lpn] && !b.dead[lpn] {
			d, err := b.pkg.ReadPage(old, k)
			total += d
			if err != nil {
				return total, err
			}
			b.stats.PagesMoved++
		}
		d, err := b.pkg.ProgramPage(npb, k)
		total += d
		if err != nil {
			return total, err
		}
	}
	d, err := b.pkg.EraseBlock(old)
	total += d
	if err != nil {
		return total, err
	}
	b.freeBlocks = append(b.freeBlocks, old)
	b.blockMap[lbn] = int32(npb)
	b.stats.Cleans++
	b.stats.GCErases++
	// The host page itself is not cleaning work; the rest of the merge is.
	b.stats.CleanTime += total - b.cfg.Timing.PageProgram
	return total, nil
}

// Free implements Backend. Informed mode marks pages dead so merges skip
// them; whole-dead blocks are reclaimed immediately.
func (b *Block) Free(lpn int) error {
	if err := b.checkLPN(lpn); err != nil {
		return err
	}
	b.stats.FreesSeen++
	if !b.cfg.Informed {
		return nil
	}
	if !b.Mapped(lpn) {
		return nil
	}
	b.dead[lpn] = true
	b.stats.FreesApplied++
	lbn := lpn / b.ppb
	for k := 0; k < b.ppb; k++ {
		if b.Mapped(lbn*b.ppb + k) {
			return nil
		}
	}
	// Every live page of the block is dead: release the data block and
	// any open replacement.
	if rp, ok := b.repl[lbn]; ok {
		delete(b.repl, lbn)
		for i, l := range b.replOrder {
			if l == lbn {
				b.replOrder = append(b.replOrder[:i], b.replOrder[i+1:]...)
				break
			}
		}
		if _, err := b.pkg.EraseBlock(int(rp)); err != nil {
			return err
		}
		b.freeBlocks = append(b.freeBlocks, int(rp))
		b.stats.GCErases++
	}
	if old := b.blockMap[lbn]; old != -1 {
		if _, err := b.pkg.EraseBlock(int(old)); err != nil {
			return err
		}
		b.freeBlocks = append(b.freeBlocks, int(old))
		b.blockMap[lbn] = -1
		b.stats.GCErases++
		for k := 0; k < b.ppb; k++ {
			b.written[lbn*b.ppb+k] = false
			b.dead[lbn*b.ppb+k] = false
		}
	}
	return nil
}

// CheckInvariants implements Backend.
func (b *Block) CheckInvariants() error {
	seen := make(map[int]bool)
	if len(b.repl) != len(b.replOrder) {
		return fmt.Errorf("replacement map/order out of sync: %d vs %d", len(b.repl), len(b.replOrder))
	}
	for lbn, rp := range b.repl {
		if seen[int(rp)] {
			return fmt.Errorf("replacement block %d claimed twice", rp)
		}
		seen[int(rp)] = true
		if b.blockMap[lbn] == rp {
			return fmt.Errorf("lbn %d: replacement equals data block", lbn)
		}
	}
	for lbn, pb := range b.blockMap {
		if pb == -1 {
			continue
		}
		if seen[int(pb)] {
			return fmt.Errorf("physical block %d mapped twice", pb)
		}
		seen[int(pb)] = true
		if int(pb) < 0 || int(pb) >= b.cfg.Geom.BlocksPerPackage {
			return fmt.Errorf("lbn %d maps out of range: %d", lbn, pb)
		}
	}
	for _, pb := range b.freeBlocks {
		if seen[pb] {
			return fmt.Errorf("block %d both mapped and free", pb)
		}
		if b.pkg.WritePointer(pb) != 0 {
			return fmt.Errorf("free block %d not erased", pb)
		}
		seen[pb] = true
	}
	return nil
}
