package sim

import "math/rand"

// RNG wraps a seeded math/rand source with the distributions the workload
// generators need. Every experiment threads an explicit RNG so that runs
// are reproducible from the seed alone.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent generator, keyed so that adding a consumer
// does not perturb the streams of existing consumers.
func (g *RNG) Fork(key int64) *RNG {
	return NewRNG(g.r.Int63() ^ key*0x61c8864680b583eb)
}

// Float64 returns a uniform float in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform int64 in [0, n).
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// UniformDuration returns a duration uniform in [lo, hi).
func (g *RNG) UniformDuration(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(g.r.Int63n(int64(hi-lo)))
}

// Exponential returns a duration exponentially distributed with the given
// mean. Used for open-loop Poisson arrival processes.
func (g *RNG) Exponential(mean Time) Time {
	d := Time(g.r.ExpFloat64() * float64(mean))
	if d < 0 {
		d = 0
	}
	return d
}

// Zipf returns a generator of Zipfian values in [0, n) with skew s > 1.
// Used for hot/cold data locality in macro workloads.
func (g *RNG) Zipf(s float64, n uint64) *rand.Zipf {
	return rand.NewZipf(g.r, s, 1, n-1)
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements via swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
