package experiments

import (
	"reflect"
	"testing"
)

// The accelerated-lifetime sweep must show the wear-out story: the
// no-ceiling baseline never retires a block, every ceiling retires a
// monotonically growing count with a degrading write tail, and the
// lowest ceiling hits its cliff (host-visible errors) first.
func TestFaultLifeWearOutCliff(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	r, err := FaultLife(FaultLifeOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Configs) != len(r.Points) || len(r.Configs) < 2 {
		t.Fatalf("malformed result: %d configs, %d point series", len(r.Configs), len(r.Points))
	}
	firstRetired := func(pts []FaultLifePoint) int {
		for i, p := range pts {
			if p.Retired > 0 {
				return i
			}
		}
		return len(pts)
	}
	for i, name := range r.Configs {
		pts := r.Points[i]
		for j := 1; j < len(pts); j++ {
			if pts[j].Retired < pts[j-1].Retired || pts[j].Remapped < pts[j-1].Remapped ||
				pts[j].Errors < pts[j-1].Errors {
				t.Errorf("%s: counters regressed at checkpoint %d: %+v -> %+v", name, j, pts[j-1], pts[j])
			}
		}
		last := pts[len(pts)-1]
		if i == 0 {
			if last.Retired != 0 || last.Errors != 0 {
				t.Errorf("baseline retired %d blocks, failed %d ops; want 0/0", last.Retired, last.Errors)
			}
			continue
		}
		if last.Retired == 0 {
			t.Errorf("%s: ceiling retired nothing", name)
		}
		if last.P99WriteMs <= pts[0].P99WriteMs {
			t.Errorf("%s: no tail degradation: p99 %v at first checkpoint, %v at last",
				name, pts[0].P99WriteMs, last.P99WriteMs)
		}
	}
	// Lower ceilings retire earlier and hit the cliff.
	lowest := r.Points[len(r.Points)-1]
	if firstRetired(lowest) > firstRetired(r.Points[1]) {
		t.Errorf("lowest ceiling retired later (checkpoint %d) than highest (%d)",
			firstRetired(lowest), firstRetired(r.Points[1]))
	}
	if lowest[len(lowest)-1].Errors == 0 {
		t.Error("lowest ceiling never hit the wear-out cliff")
	}
}

// Worker count must not leak into the sweep (same contract as the rest
// of the experiment suite).
func TestFaultLifeDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	opts := FaultLifeOptions{Seed: 5, Segments: 3, OpsPerSegment: 2000}
	opts.Workers = 1
	serial, err := FaultLife(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	parallel, err := FaultLife(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("worker count changed the result:\n%+v\n%+v", serial, parallel)
	}
}
