package stats

// TenantSet is a keyed multi-histogram: a family of per-tenant response
// accumulators (operation counts, bytes moved, and one latency Histogram
// per direction) indexed by a small integer key. Entries are created
// lazily on a tenant's first recorded completion — a Histogram is ~4 KB,
// so eagerly sizing 256 of them per device would dwarf the device — and
// the record path after that first sight is allocation-free, which keeps
// the per-tenant metrics inside the devices' zero-alloc steady state.
//
// A TenantSet value copies as a small header sharing its entries; treat
// copies as read-only snapshots, the way device Metrics are consumed.
type TenantSet struct {
	ents []*TenantAcc // sorted by tenant ID
}

// TenantAcc accumulates one tenant's completions.
type TenantAcc struct {
	// Tenant is the key (0 = untagged legacy ops).
	Tenant uint8
	// Reads and Writes count completed host transfers by direction.
	Reads, Writes int64
	// BytesRead and BytesWritten count host data moved.
	BytesRead, BytesWritten int64
	// ReadResp and WriteResp are response-time histograms in milliseconds.
	ReadResp, WriteResp Histogram
}

// Acc returns tenant t's accumulator, creating it on first sight.
func (s *TenantSet) Acc(t uint8) *TenantAcc {
	i := 0
	for i < len(s.ents) && s.ents[i].Tenant < t {
		i++
	}
	if i < len(s.ents) && s.ents[i].Tenant == t {
		return s.ents[i]
	}
	a := &TenantAcc{Tenant: t}
	s.ents = append(s.ents, nil)
	copy(s.ents[i+1:], s.ents[i:])
	s.ents[i] = a
	return a
}

// Record folds one completed transfer into tenant t's accumulator.
func (s *TenantSet) Record(t uint8, write bool, bytes int64, ms float64) {
	a := s.Acc(t)
	if write {
		a.Writes++
		a.BytesWritten += bytes
		a.WriteResp.Add(ms)
	} else {
		a.Reads++
		a.BytesRead += bytes
		a.ReadResp.Add(ms)
	}
}

// Entries returns the accumulators in tenant-ID order. The slice and its
// entries are live; callers must not mutate them.
func (s TenantSet) Entries() []*TenantAcc { return s.ents }

// Len reports the number of tenants seen.
func (s TenantSet) Len() int { return len(s.ents) }
