package ftl

import (
	"errors"
	"testing"

	"ossd/internal/sim"
)

// hammer overwrites logical pages round-robin until the element errors
// or n writes complete, returning the first error.
func hammer(el *Element, n int) error {
	for i := 0; i < n; i++ {
		if _, err := el.WritePage(i % el.LogicalPages()); err != nil {
			return err
		}
	}
	return nil
}

// A wear ceiling retires blocks during cleaning: retired counts grow,
// the live pool shrinks, invariants hold throughout, and sustained
// traffic eventually hits the wear-out cliff (ErrNoSpace) long before
// the flash erase budget would have surfaced ErrWornOut.
func TestWearCeilingRetiresBlocks(t *testing.T) {
	cfg := smallConfig()
	cfg.WearCeiling = 4
	cfg.RemapCost = 300 * sim.Microsecond
	el := newElement(t, cfg)

	var lastRetired int64
	var sawCliff bool
	for round := 0; round < 400; round++ {
		if err := hammer(el, 64); err != nil {
			if !errors.Is(err, ErrNoSpace) {
				t.Fatalf("round %d: unexpected error %v", round, err)
			}
			sawCliff = true
			break
		}
		st := el.Stats()
		if st.RetiredBlocks < lastRetired {
			t.Fatalf("retired blocks went backwards: %d -> %d", lastRetired, st.RetiredBlocks)
		}
		lastRetired = st.RetiredBlocks
		if err := el.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if !sawCliff {
		t.Fatalf("never hit the wear-out cliff (retired %d blocks)", lastRetired)
	}
	st := el.Stats()
	if st.RetiredBlocks == 0 {
		t.Fatalf("cliff without any retirement")
	}
	if el.Package().Retired() != int(st.RetiredBlocks) {
		t.Fatalf("package retired %d, stats %d", el.Package().Retired(), st.RetiredBlocks)
	}
	if err := el.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Without a ceiling nothing retires and FreeFraction's denominator is
// the full physical pool.
func TestNoCeilingNoRetirement(t *testing.T) {
	el := newElement(t, smallConfig())
	if err := hammer(el, 2000); err != nil {
		t.Fatal(err)
	}
	if st := el.Stats(); st.RetiredBlocks != 0 || st.RemappedPages != 0 {
		t.Fatalf("retirement without a ceiling: %+v", st)
	}
}

// Retirement charges the remap cost: an element with a ceiling and a
// nonzero RemapCost accumulates more CleanTime than the same traffic
// with free remaps.
func TestRemapCostCharged(t *testing.T) {
	run := func(cost sim.Time) (Stats, error) {
		cfg := smallConfig()
		cfg.WearCeiling = 6
		cfg.RemapCost = cost
		el := newElement(t, cfg)
		err := hammer(el, 4000)
		return el.Stats(), err
	}
	cheap, err1 := run(0)
	costly, err2 := run(500 * sim.Microsecond)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("remap cost changed the op outcome: %v vs %v", err1, err2)
	}
	if cheap.RetiredBlocks == 0 {
		t.Fatalf("test traffic never retired a block")
	}
	if costly.RetiredBlocks != cheap.RetiredBlocks || costly.RemappedPages != cheap.RemappedPages {
		t.Fatalf("remap cost changed retirement counts: %+v vs %+v", cheap, costly)
	}
	if costly.CleanTime <= cheap.CleanTime {
		t.Fatalf("remap cost not charged: %v <= %v", costly.CleanTime, cheap.CleanTime)
	}
}
