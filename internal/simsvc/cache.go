package simsvc

import (
	"bytes"
	"container/list"
	"hash/fnv"
	"sync"
)

// cache is the content-addressed result cache: completed result payloads
// keyed by the FNV-1a hash of their canonical identity bytes (a job
// spec's canonical JSON, an experiment's key string), bounded by LRU
// eviction. Payloads are stored as the exact marshaled bytes served to
// clients, so a hit is byte-identical to the run that populated it.
//
// The 64-bit key alone is NOT the identity: two distinct specs can
// collide. Every entry therefore carries its identity bytes, get
// verifies them on every hit, and a mismatch is served as a miss (and
// counted) rather than as another spec's payload — the cache can never
// lie, only forget.
type cache struct {
	mu         sync.Mutex
	cap        int
	ll         *list.List // front = most recently used
	byKey      map[uint64]*list.Element
	hits       uint64
	misses     uint64
	evicted    uint64
	collisions uint64
}

// cacheEntry is one memoized payload plus the identity that hashes to
// its key.
type cacheEntry struct {
	key      uint64
	identity []byte
	payload  []byte
}

// identityKey is the one hash everything content-addressed goes
// through: FNV-1a over the identity bytes. The invariant "key ==
// identityKey(identity)" holds for every cache entry, so peers can
// verify a pushed entry and owners can verify a requested one.
func identityKey(identity []byte) uint64 {
	h := fnv.New64a()
	h.Write(identity)
	return h.Sum64()
}

func newCache(capacity int) *cache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &cache{cap: capacity, ll: list.New(), byKey: map[uint64]*list.Element{}}
}

// get returns the payload for key, refreshing its recency. The stored
// identity must match the caller's: a colliding key is a counted miss,
// never another identity's payload. The returned slice must not be
// mutated.
func (c *cache) get(key uint64, identity []byte) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if !bytes.Equal(ent.identity, identity) {
		c.collisions++
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return ent.payload, true
}

// put memoizes a payload under its identity, evicting the least
// recently used entry past capacity. Concurrent identical jobs may both
// put; last write wins with an identical payload, so the race is
// benign. A colliding put (same key, different identity) is counted and
// replaces the incumbent — both specs stay correct, each serving the
// other's hits as misses.
func (c *cache) put(key uint64, identity, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*cacheEntry)
		if !bytes.Equal(ent.identity, identity) {
			c.collisions++
			ent.identity = identity
		}
		ent.payload = payload
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, identity: identity, payload: payload})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.evicted++
	}
}

// CacheStats is the cache's observable state (GET /statsz).
// KeyCollisions counts lookups and stores whose 64-bit key matched an
// entry holding a different identity — served as misses, never as
// wrong payloads.
type CacheStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evicted       uint64 `json:"evicted"`
	KeyCollisions uint64 `json:"cache_key_collisions"`
	Entries       int    `json:"entries"`
	Capacity      int    `json:"capacity"`
}

func (c *cache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evicted: c.evicted,
		KeyCollisions: c.collisions, Entries: c.ll.Len(), Capacity: c.cap,
	}
}
