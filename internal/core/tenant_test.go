package core

import (
	"testing"

	"ossd/internal/fault"
	"ossd/internal/trace"
)

// tenantMixLoop drives n closed-loop ops spread across tenants 0, 1, and
// 3, alternating reads and writes, plus one free notification at the end.
func tenantMixLoop(t *testing.T, d Device, n int) {
	t.Helper()
	tenants := []uint8{0, 1, 3}
	i := 0
	err := d.ClosedLoop(2, func(int) (trace.Op, bool) {
		if i >= n {
			return trace.Op{}, false
		}
		op := trace.Op{
			Kind:   trace.Write,
			Offset: int64(i%256) * 4096,
			Size:   4096,
			Tenant: tenants[i%len(tenants)],
		}
		if i%2 == 1 {
			op.Kind = trace.Read
		}
		i++
		return op, true
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Free(0, 4096); err != nil {
		t.Fatal(err)
	}
	d.Engine().Run()
}

// auditTenants checks the Snapshot invariant the per-tenant view
// guarantees: entries arrive in tenant order and, for every
// tenant-attributed statistic, sum to the top-level totals (frees and
// errors are device-global and excluded).
func auditTenants(t *testing.T, s Snapshot) {
	t.Helper()
	var ops, br, bw int64
	last := -1
	for _, ts := range s.Tenants {
		if ts.Tenant <= last {
			t.Fatalf("tenants out of order: %+v", s.Tenants)
		}
		last = ts.Tenant
		ops += ts.Reads + ts.Writes
		br += ts.BytesRead
		bw += ts.BytesWritten
	}
	if want := s.Completed - s.Frees; ops != want {
		t.Fatalf("tenant ops sum %d, want completed-frees %d", ops, want)
	}
	if br != s.BytesRead || bw != s.BytesWritten {
		t.Fatalf("tenant bytes sum %d/%d, totals %d/%d", br, bw, s.BytesRead, s.BytesWritten)
	}
}

// Every device kind attributes completions to tenants the same way: one
// entry per tenant seen, in order, summing to the host totals.
func TestSnapshotTenantsSumAcrossKinds(t *testing.T) {
	for _, name := range []string{"ssd", "hdd", "mems", "raid", "osd"} {
		t.Run(name, func(t *testing.T) {
			d, err := Open(name)
			if err != nil {
				t.Fatal(err)
			}
			tenantMixLoop(t, d, 120)
			s := d.Metrics()
			if len(s.Tenants) != 3 {
				t.Fatalf("saw %d tenants, want 3: %+v", len(s.Tenants), s.Tenants)
			}
			for i, want := range []int{0, 1, 3} {
				if s.Tenants[i].Tenant != want {
					t.Fatalf("tenant[%d] = %d, want %d", i, s.Tenants[i].Tenant, want)
				}
			}
			auditTenants(t, s)
		})
	}
}

// The generic fault injector reconciles the per-tenant view exactly like
// the totals: retries are not double-counted, dead ops count for their
// tenant but move no bytes, and the per-tenant entries still sum to the
// reconciled host counters.
func TestFaultDeviceTenantAudit(t *testing.T) {
	clean, err := Open("hdd")
	if err != nil {
		t.Fatal(err)
	}
	tenantMixLoop(t, clean, 200)

	plan := &fault.Plan{Seed: 11, Transient: &fault.Transient{Rate: 0.05, RetryUs: 20000}}
	faulty, err := Open("hdd", WithFault(plan))
	if err != nil {
		t.Fatal(err)
	}
	tenantMixLoop(t, faulty, 200)

	cm, fm := clean.Metrics(), faulty.Metrics()
	if fm.FaultRetries == 0 {
		t.Fatal("no retries injected at 5% rate")
	}
	auditTenants(t, fm)
	if len(fm.Tenants) != len(cm.Tenants) {
		t.Fatalf("faulty saw %d tenants, clean %d", len(fm.Tenants), len(cm.Tenants))
	}
	for i := range fm.Tenants {
		f, c := fm.Tenants[i], cm.Tenants[i]
		if f.Reads != c.Reads || f.Writes != c.Writes ||
			f.BytesRead != c.BytesRead || f.BytesWritten != c.BytesWritten {
			t.Fatalf("tenant %d drifted under retries: faulty %+v clean %+v", f.Tenant, f, c)
		}
	}

	// Deaths: failed ops count for their tenant but move no bytes.
	dplan := &fault.Plan{Deaths: []fault.Death{{Element: 0, AfterOps: 50}}}
	dead, err := Open("mems", WithFault(dplan))
	if err != nil {
		t.Fatal(err)
	}
	tenantMixLoop(t, dead, 200)
	dm := dead.Metrics()
	if dm.Errors == 0 {
		t.Fatal("death plan injected nothing")
	}
	auditTenants(t, dm)
}
