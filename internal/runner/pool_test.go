package runner

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEverySubmittedTask(t *testing.T) {
	p := NewPool(4, 128)
	var done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := p.Submit(func() { done.Add(1); wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	p.Close()
	if done.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", done.Load())
	}
}

func TestPoolCloseDrainsQueue(t *testing.T) {
	p := NewPool(1, 128)
	var done atomic.Int64
	for i := 0; i < 20; i++ {
		if err := p.Submit(func() { done.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	p.Close() // must wait for every queued task
	if done.Load() != 20 {
		t.Fatalf("after Close: %d tasks ran, want 20", done.Load())
	}
	if err := p.Submit(func() {}); err != ErrPoolClosed {
		t.Fatalf("Submit after Close: %v, want ErrPoolClosed", err)
	}
}

func TestPoolShedsLoadWhenSaturated(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(func() { close(started); <-block }); err != nil {
		t.Fatal(err)
	}
	<-started // the worker is busy; the backlog (depth 1) is free
	if err := p.Submit(func() {}); err != nil {
		t.Fatalf("backlog submit: %v", err)
	}
	if err := p.Submit(func() {}); err != ErrPoolSaturated {
		t.Fatalf("saturated submit: %v, want ErrPoolSaturated", err)
	}
	close(block)
	p.Close()
}
