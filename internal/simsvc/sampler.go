package simsvc

import (
	"context"

	"ossd/internal/core"
	"ossd/internal/trace"
)

// sampledStream wraps a workload stream so the device is observed while
// it is driven: every `every` operations pulled, it snapshots the
// device's metrics and clock and hands the Sample to emit. It is also
// the cancellation point — ctx is checked on every pull, so a cancelled
// job stops with per-op granularity without touching the engine.
//
// Next runs on the engine's goroutine (core's drive loop pulls one op at
// a time), so reading Metrics here is race-free; emit must do its own
// synchronization if it publishes elsewhere.
type sampledStream struct {
	ctx   context.Context
	dev   core.Device
	src   trace.Stream
	every int64
	emit  func(Sample)
	n     int64
	err   error
}

func (s *sampledStream) Next() (trace.Op, bool) {
	if s.err != nil {
		return trace.Op{}, false
	}
	if err := s.ctx.Err(); err != nil {
		s.err = err
		return trace.Op{}, false
	}
	op, ok := s.src.Next()
	if !ok {
		return trace.Op{}, false
	}
	s.n++
	if s.every > 0 && s.n%s.every == 0 {
		s.sample()
	}
	return op, true
}

// sample takes one observation now.
func (s *sampledStream) sample() {
	s.emit(Sample{
		Ops:              s.n,
		SimulatedSeconds: s.dev.Engine().Now().Seconds(),
		Snapshot:         s.dev.Metrics(),
	})
}

// Err implements trace.ErrStream: cancellation surfaces as the stream's
// iteration error, which Device.Drive returns.
func (s *sampledStream) Err() error {
	if s.err != nil {
		return s.err
	}
	return trace.Err(s.src)
}

// DriveSampled drives d with src to completion (or cancellation),
// emitting a telemetry Sample every `every` operations plus one final
// sample after the device drains — so even a short job yields at least
// one observation. It returns ctx's error if the job was cancelled
// mid-stream, and the number of ops pulled either way.
func DriveSampled(ctx context.Context, d core.Device, src trace.Stream, every int, emit func(Sample)) (int64, error) {
	ss := &sampledStream{ctx: ctx, dev: d, src: src, every: int64(every), emit: emit}
	err := d.Drive(ss)
	ss.sample()
	return ss.n, err
}
