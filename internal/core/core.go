// Package core is the public facade of the library: one Device interface
// spanning every simulated substrate — SSD, HDD, MEMS, RAID, and the
// object-fronted SSD — plus the device registry (Open, Build, Register),
// the bandwidth-measurement harness used by the paper's Table 2, and the
// named device profiles the experiments run against. Examples,
// command-line tools, and benchmarks consume this package; the internal
// substrates stay swappable behind it.
package core

import (
	"fmt"
	"math"

	"ossd/internal/hdd"
	"ossd/internal/sim"
	"ossd/internal/ssd"
	"ossd/internal/stats"
	"ossd/internal/trace"
)

// Device is the block-level view shared by all media models: submit timed
// operations, send free (TRIM/delete) notifications, drive a workload
// stream or a closed loop, and snapshot metrics, all on a simulated
// clock. A Device owns its engine; device instances are independent
// simulations and may run concurrently with each other (never
// individually shared across goroutines).
type Device interface {
	// Submit enqueues an operation at the current simulated time; onDone
	// (optional) receives the response time when it completes.
	Submit(op trace.Op, onDone func(resp sim.Time, err error)) error
	// SubmitBatch enqueues a run of operations, all arriving at the
	// current simulated time, equivalent to submitting them in order.
	// Media with a batch fast path (the SSD) amortize their dispatch
	// pump over the run; the rest fall back to per-op submission. It
	// stops at the first submission error.
	SubmitBatch(ops []trace.Op, onDone func(resp sim.Time, err error)) error
	// Free tells the device a byte range no longer holds live data (the
	// TRIM/OSD-delete signal of §3.5). Devices without block management
	// complete it as a metadata-only no-op.
	Free(off, size int64) error
	// Drive replays a workload stream to completion, open loop: each
	// operation arrives at its trace timestamp. Timestamps must be
	// nondecreasing (every generator and the §3.4 aligner satisfy this);
	// an op whose timestamp is in the past is submitted immediately, so
	// out-of-order traces replay in stream order, not timestamp order.
	// Operations are pulled one at a time, so memory stays constant in
	// the stream's length. A mid-stream Submit error stops the replay,
	// but Drive still drains the device before returning it: every
	// completion already in flight has fired by the time Drive returns.
	// Devices built with WithMaxPending additionally apply admission
	// control: once that many requests are outstanding, further arrivals
	// are paced to completions instead of piling up unbounded queue
	// state.
	Drive(s trace.Stream) error
	// Play replays a timestamped trace to completion. Equivalent to
	// Drive(trace.FromSlice(ops)), including the nondecreasing-timestamp
	// contract; kept as the slice-era adapter.
	Play(ops []trace.Op) error
	// ClosedLoop keeps depth ops outstanding, drawing from gen until it
	// returns false, then runs to completion.
	ClosedLoop(depth int, gen func(i int) (trace.Op, bool)) error
	// Engine returns the simulation engine.
	Engine() *sim.Engine
	// LogicalBytes reports the usable capacity.
	LogicalBytes() int64
	// QueueDepth reports requests accepted by the device but not yet
	// dispatched to media — the backlog admission control bounds.
	QueueDepth() int
	// Metrics reports a device-independent snapshot of activity so far.
	Metrics() Snapshot
}

// Snapshot is the metrics view common to every Device. Substrate-specific
// detail (GC stats, seek counts, parity traffic) stays on the wrapped
// model, reachable through each wrapper's Raw field. The JSON tags are
// the service serialization (internal/simsvc, cmd/repro -json).
type Snapshot struct {
	// Completed counts finished requests, including frees.
	Completed int64 `json:"completed"`
	// BytesRead and BytesWritten count host data moved.
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	// Frees counts completed free notifications. Every wrapper counts
	// them, whether or not the medium acts on them: on media without
	// block management a free completes as a metadata no-op but still
	// increments this field.
	Frees int64 `json:"frees"`
	// Errors counts failed requests (flash wear-out; zero elsewhere).
	Errors int64 `json:"errors"`
	// MeanReadMs and MeanWriteMs are mean response times in milliseconds.
	MeanReadMs  float64 `json:"mean_read_ms"`
	MeanWriteMs float64 `json:"mean_write_ms"`
	// P50/P95/P99 read and write response-time percentiles in
	// milliseconds, estimated from each substrate's log-bucketed
	// response histograms (stats.Histogram): tail latency, not just
	// means, on every medium.
	P50ReadMs  float64 `json:"p50_read_ms"`
	P95ReadMs  float64 `json:"p95_read_ms"`
	P99ReadMs  float64 `json:"p99_read_ms"`
	P50WriteMs float64 `json:"p50_write_ms"`
	P95WriteMs float64 `json:"p95_write_ms"`
	P99WriteMs float64 `json:"p99_write_ms"`
	// FaultsInjected and FaultRetries count injected fault events and the
	// in-device retries they triggered; RetiredBlocks and RemappedPages
	// count wear-ceiling retirements and the pages relocated off retired
	// blocks. All four are zero on devices built without a fault plan.
	// None of the Snapshot fields use omitempty: every device kind
	// serializes the same key set, faulted or not, so reports and campaign
	// cells stay column-stable.
	FaultsInjected int64 `json:"faults_injected"`
	FaultRetries   int64 `json:"fault_retries"`
	RetiredBlocks  int64 `json:"retired_blocks"`
	RemappedPages  int64 `json:"remapped_pages"`
	// Tenants breaks read/write activity down per tenant class, in tenant
	// order, one entry per tenant that completed at least one transfer
	// (single-tenant runs report one entry for tenant 0; a device that saw
	// no reads or writes reports none). Populated uniformly by all five
	// wrappers. Frees and errors are device-global and stay on the top
	// level; for every tenant-attributed statistic the entries sum to the
	// totals above.
	Tenants []TenantSnapshot `json:"tenants"`
}

// TenantSnapshot is one tenant's slice of the device activity: the
// count/bytes/latency view of Snapshot, scoped to the ops tagged with
// that tenant ID.
type TenantSnapshot struct {
	Tenant       int     `json:"tenant"`
	Reads        int64   `json:"reads"`
	Writes       int64   `json:"writes"`
	BytesRead    int64   `json:"bytes_read"`
	BytesWritten int64   `json:"bytes_written"`
	MeanReadMs   float64 `json:"mean_read_ms"`
	MeanWriteMs  float64 `json:"mean_write_ms"`
	P50ReadMs    float64 `json:"p50_read_ms"`
	P95ReadMs    float64 `json:"p95_read_ms"`
	P99ReadMs    float64 `json:"p99_read_ms"`
	P50WriteMs   float64 `json:"p50_write_ms"`
	P95WriteMs   float64 `json:"p95_write_ms"`
	P99WriteMs   float64 `json:"p99_write_ms"`
}

// tenantSnapshots converts a per-tenant accumulator set into the
// Snapshot's serialized form — one implementation for all five wrappers,
// with the same non-finite guard as the top-level latency fields.
func tenantSnapshots(ts stats.TenantSet) []TenantSnapshot {
	if ts.Len() == 0 {
		return nil
	}
	out := make([]TenantSnapshot, 0, ts.Len())
	for _, a := range ts.Entries() {
		out = append(out, TenantSnapshot{
			Tenant:       int(a.Tenant),
			Reads:        a.Reads,
			Writes:       a.Writes,
			BytesRead:    a.BytesRead,
			BytesWritten: a.BytesWritten,
			MeanReadMs:   latencyMs(a.ReadResp.Mean()),
			MeanWriteMs:  latencyMs(a.WriteResp.Mean()),
			P50ReadMs:    latencyMs(a.ReadResp.Percentile(50)),
			P95ReadMs:    latencyMs(a.ReadResp.Percentile(95)),
			P99ReadMs:    latencyMs(a.ReadResp.Percentile(99)),
			P50WriteMs:   latencyMs(a.WriteResp.Percentile(50)),
			P95WriteMs:   latencyMs(a.WriteResp.Percentile(95)),
			P99WriteMs:   latencyMs(a.WriteResp.Percentile(99)),
		})
	}
	return out
}

// fillLatency populates the mean and percentile response-time fields
// from the two response histograms every substrate keeps in its submit
// path — one implementation of the latency view for all five wrappers.
// Every field passes through latencyMs: a device that saw no reads (or
// no writes) reports 0 for that side, never NaN or ±Inf — encoding/json
// rejects both, and one poisoned field fails an entire simsvc payload.
func (s *Snapshot) fillLatency(read, write stats.Histogram) {
	s.MeanReadMs = latencyMs(read.Mean())
	s.MeanWriteMs = latencyMs(write.Mean())
	s.P50ReadMs = latencyMs(read.Percentile(50))
	s.P95ReadMs = latencyMs(read.Percentile(95))
	s.P99ReadMs = latencyMs(read.Percentile(99))
	s.P50WriteMs = latencyMs(write.Percentile(50))
	s.P95WriteMs = latencyMs(write.Percentile(95))
	s.P99WriteMs = latencyMs(write.Percentile(99))
}

// latencyMs guards a serialized latency statistic against non-finite
// values from empty or degenerate histograms.
func latencyMs(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// freeOp builds the trace record for a Free notification.
func freeOp(off, size int64) trace.Op {
	return trace.Op{Kind: trace.Free, Offset: off, Size: size}
}

// submitEach is the SubmitBatch fallback for media without a batch fast
// path: a plain loop over Submit, stopping at the first error.
func submitEach(d Device, ops []trace.Op, onDone func(sim.Time, error)) error {
	for _, op := range ops {
		if err := d.Submit(op, onDone); err != nil {
			return err
		}
	}
	return nil
}

// driveConfig carries the Drive-time knobs every wrapper embeds; the
// shared setter is how Profile.NewDevice applies WithMaxPending to any
// wrapper without per-type plumbing.
type driveConfig struct {
	// MaxPending bounds the requests outstanding during Drive/Play; 0
	// means unbounded (see WithMaxPending).
	MaxPending int
}

func (c *driveConfig) setMaxPending(n int) { c.MaxPending = n }

// ---- shared workload loops ----
//
// Every wrapper implements Drive, Play, and ClosedLoop through the three
// functions below, in terms of nothing but Submit and the engine: one
// replay implementation for all five substrates.

// driveLoop is the arrival pump behind drive and driveBounded. One
// driveLoop is allocated per Drive call and then pumps the whole stream
// through the engine's pooled event path: the next arrival is always
// scheduled as (arrive, loop) — a package-level function plus this
// pointer — so replay costs zero allocations per operation. Only one
// pending arrival (op) exists at any moment, which also keeps memory
// constant in the stream's length.
type driveLoop struct {
	d      Device
	eng    *sim.Engine
	s      trace.Stream
	arrive func(any) // arriveEvent or arriveBoundedEvent
	op     trace.Op  // the scheduled (or held) arrival

	// Admission-control state (driveBounded only).
	maxPending  int
	outstanding int
	held        bool
	onDone      func(sim.Time, error) // one shared completion callback

	err error
}

// next pulls one operation and schedules its arrival at its trace
// timestamp, clamped to now.
func (dl *driveLoop) next() {
	op, ok := dl.s.Next()
	if !ok {
		return
	}
	at := op.At
	if now := dl.eng.Now(); at < now {
		at = now
	}
	dl.op = op
	dl.eng.CallAt(at, dl.arrive, dl)
}

// arriveEvent is the unbounded arrival: submit, then pull the next op.
// Submission precedes the next pull so a mid-stream error stops the
// stream at the failing op; the engine run then drains whatever is
// already in flight before drive returns.
func arriveEvent(a any) {
	dl := a.(*driveLoop)
	if err := dl.d.Submit(dl.op, nil); err != nil {
		dl.err = err
		return
	}
	dl.next()
}

// arriveBoundedEvent is the admission-controlled arrival: a full window
// parks the op (held) until a completion frees a slot.
func arriveBoundedEvent(a any) {
	dl := a.(*driveLoop)
	if dl.outstanding >= dl.maxPending {
		dl.held = true
		return
	}
	if dl.submit() {
		dl.next()
	}
}

// submit issues the current op, maintaining the outstanding window. It
// reports whether the pull loop should continue; a Submit error stops
// the stream (the engine still drains in-flight completions).
func (dl *driveLoop) submit() bool {
	dl.outstanding++
	if err := dl.d.Submit(dl.op, dl.onDone); err != nil {
		dl.outstanding--
		if dl.err == nil {
			dl.err = err
		}
		return false
	}
	return true
}

// finish drains the engine and folds in the stream's own error. Running
// the engine after the pull loop stops — on exhaustion or on a Submit
// error — guarantees every in-flight completion callback has fired
// before Drive returns, so callbacks never run against a caller that
// has already moved on.
func (dl *driveLoop) finish() error {
	dl.eng.Run()
	if dl.err == nil {
		dl.err = trace.Err(dl.s)
	}
	return dl.err
}

// drive pulls operations from s one at a time, scheduling each arrival
// at its trace timestamp (clamped to now — timestamps are treated as
// nondecreasing), and runs the engine until the device drains. A
// mid-stream Submit error stops the pull loop, but the engine still
// drains: Drive returns the first error only after every completion
// already in flight has run.
//
// maxPending > 0 enables admission control: once that many requests are
// outstanding (submitted, not yet completed), the next arrival is held
// and submitted at the completion that frees a slot — an open-loop storm
// the device cannot absorb degrades into pacing instead of unbounded
// queue growth. Ops are never shed; with a bound, arrivals can complete
// later than their trace timestamps. maxPending <= 0 is the unbounded
// legacy behavior.
func drive(d Device, s trace.Stream, maxPending int) error {
	if maxPending > 0 {
		return driveBounded(d, s, maxPending)
	}
	dl := &driveLoop{d: d, eng: d.Engine(), s: s, arrive: arriveEvent}
	dl.next()
	return dl.finish()
}

// driveBounded is drive with admission control. Every op is submitted
// with one shared completion callback that maintains the outstanding
// count; when an arrival finds the window full, it parks (held) until a
// completion drains the window below the bound, then resumes the pull
// loop. Determinism is preserved: completions are simulation events, so
// the paced arrival times are a pure function of the workload.
func driveBounded(d Device, s trace.Stream, maxPending int) error {
	dl := &driveLoop{d: d, eng: d.Engine(), s: s, arrive: arriveBoundedEvent, maxPending: maxPending}
	dl.onDone = func(sim.Time, error) {
		dl.outstanding--
		if dl.err != nil {
			// The stream already stopped on an error; keep draining
			// completions without submitting more work.
			return
		}
		if dl.held && dl.outstanding < dl.maxPending {
			dl.held = false
			if dl.submit() {
				dl.next()
			}
		}
	}
	dl.next()
	return dl.finish()
}

// closedLoop keeps depth requests outstanding, drawing operations from
// gen until it returns false; each op's At field is ignored.
func closedLoop(d Device, depth int, gen func(i int) (trace.Op, bool)) error {
	if depth <= 0 {
		depth = 1
	}
	eng := d.Engine()
	var firstErr error
	i := 0
	var issue func()
	// One completion callback for the whole loop, not one per op.
	onDone := func(sim.Time, error) { issue() }
	issue = func() {
		op, ok := gen(i)
		if !ok {
			return
		}
		i++
		if err := d.Submit(op, onDone); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for k := 0; k < depth; k++ {
		issue()
	}
	eng.Run()
	return firstErr
}

// SSD wraps the flash device as a core.Device while keeping the rich
// internal API reachable via Raw.
type SSD struct {
	Raw *ssd.Device
	driveConfig
}

// NewSSD builds a flash device on a fresh engine. Prefer Open or Build;
// this remains for callers holding a raw ssd.Config.
func NewSSD(cfg ssd.Config) (*SSD, error) {
	dev, err := ssd.New(sim.NewEngine(), cfg)
	if err != nil {
		return nil, err
	}
	return &SSD{Raw: dev}, nil
}

// Submit implements Device.
func (s *SSD) Submit(op trace.Op, onDone func(sim.Time, error)) error {
	var cb func(*ssd.Request)
	if onDone != nil {
		cb = func(r *ssd.Request) { onDone(r.Response(), r.Err) }
	}
	return s.Raw.Submit(op, cb)
}

// SubmitBatch implements Device through the flash device's batch fast
// path: one dispatch pump for the whole same-instant run.
func (s *SSD) SubmitBatch(ops []trace.Op, onDone func(sim.Time, error)) error {
	var cb func(*ssd.Request)
	if onDone != nil {
		cb = func(r *ssd.Request) { onDone(r.Response(), r.Err) }
	}
	return s.Raw.SubmitBatch(ops, cb)
}

// Free implements Device: the FTL drops the mapped pages.
func (s *SSD) Free(off, size int64) error { return s.Raw.Submit(freeOp(off, size), nil) }

// Drive implements Device. On a device built with shards (WithShards),
// unbounded open-loop replay runs on the parallel dataplane — multiple
// cores inside this one simulation, byte-identical to the single-engine
// replay. Admission-controlled replay (WithMaxPending) paces arrivals to
// completions, a feedback loop that belongs on one engine.
func (s *SSD) Drive(st trace.Stream) error {
	if s.MaxPending == 0 && s.Raw.Sharded() {
		return s.Raw.DriveStream(st)
	}
	return drive(s, st, s.MaxPending)
}

// Play implements Device.
func (s *SSD) Play(ops []trace.Op) error { return s.Drive(trace.FromSlice(ops)) }

// ClosedLoop implements Device.
func (s *SSD) ClosedLoop(depth int, gen func(int) (trace.Op, bool)) error {
	return closedLoop(s, depth, gen)
}

// Engine implements Device.
func (s *SSD) Engine() *sim.Engine { return s.Raw.Engine() }

// LogicalBytes implements Device.
func (s *SSD) LogicalBytes() int64 { return s.Raw.LogicalBytes() }

// QueueDepth implements Device.
func (s *SSD) QueueDepth() int { return s.Raw.QueueDepth() }

// ssdSnapshot converts the flash device's metrics; shared by the SSD
// and OSD wrappers, which front the same model.
func ssdSnapshot(m ssd.Metrics) Snapshot {
	s := Snapshot{
		Completed:      m.Completed,
		BytesRead:      m.BytesRead,
		BytesWritten:   m.BytesWritten,
		Frees:          m.Frees,
		Errors:         m.Errors,
		FaultsInjected: m.FaultsInjected,
		FaultRetries:   m.FaultRetries,
		RetiredBlocks:  m.RetiredBlocks,
		RemappedPages:  m.RemappedPages,
		Tenants:        tenantSnapshots(m.Tenants),
	}
	s.fillLatency(m.ReadResp, m.WriteResp)
	return s
}

// Metrics implements Device.
func (s *SSD) Metrics() Snapshot { return ssdSnapshot(s.Raw.Metrics()) }

// HDD wraps the disk model as a core.Device.
type HDD struct {
	Raw *hdd.Disk
	driveConfig
	// frees counts completed free notifications; the disk model itself
	// has no TRIM, so the wrapper keeps the Snapshot field uniform.
	frees int64
}

// NewHDD builds a disk on a fresh engine. Prefer Open or Build; this
// remains for callers holding a raw hdd.Config.
func NewHDD(cfg hdd.Config) (*HDD, error) {
	d, err := hdd.New(sim.NewEngine(), cfg)
	if err != nil {
		return nil, err
	}
	return &HDD{Raw: d}, nil
}

// Submit implements Device.
func (h *HDD) Submit(op trace.Op, onDone func(sim.Time, error)) error {
	var cb func(*hdd.Request)
	if isFree := op.Kind == trace.Free; isFree || onDone != nil {
		cb = func(r *hdd.Request) {
			if isFree {
				h.frees++
			}
			if onDone != nil {
				onDone(r.Response(), nil)
			}
		}
	}
	return h.Raw.Submit(op, cb)
}

// SubmitBatch implements Device (per-op fallback).
func (h *HDD) SubmitBatch(ops []trace.Op, onDone func(sim.Time, error)) error {
	return submitEach(h, ops, onDone)
}

// Free implements Device: disks have no TRIM; the request completes as a
// metadata no-op (and is counted in Snapshot.Frees).
func (h *HDD) Free(off, size int64) error { return h.Submit(freeOp(off, size), nil) }

// Drive implements Device.
func (h *HDD) Drive(st trace.Stream) error { return drive(h, st, h.MaxPending) }

// Play implements Device.
func (h *HDD) Play(ops []trace.Op) error { return drive(h, trace.FromSlice(ops), h.MaxPending) }

// ClosedLoop implements Device.
func (h *HDD) ClosedLoop(depth int, gen func(int) (trace.Op, bool)) error {
	return closedLoop(h, depth, gen)
}

// Engine implements Device.
func (h *HDD) Engine() *sim.Engine { return h.Raw.Engine() }

// LogicalBytes implements Device.
func (h *HDD) LogicalBytes() int64 { return h.Raw.LogicalBytes() }

// QueueDepth implements Device.
func (h *HDD) QueueDepth() int { return h.Raw.QueueDepth() }

// Metrics implements Device.
func (h *HDD) Metrics() Snapshot {
	m := h.Raw.Metrics()
	s := Snapshot{
		Completed:    m.Completed,
		BytesRead:    m.BytesRead,
		BytesWritten: m.BytesWritten,
		Frees:        h.frees,
		Tenants:      tenantSnapshots(m.Tenants),
	}
	s.fillLatency(m.ReadResp, m.WriteResp)
	return s
}

// Compile-time interface checks.
var (
	_ Device = (*SSD)(nil)
	_ Device = (*HDD)(nil)
)

// Precondition sequentially writes the whole device once so that every
// logical page is mapped: reads hit real media and overwrites trigger
// read-modify-write and cleaning, which is the steady state the paper's
// measurements reflect.
func Precondition(d Device, chunk int64) error {
	return PreconditionFrac(d, chunk, 1.0)
}

// PreconditionFrac fills only the first frac of the address space. Device
// utilization governs garbage-collection cost (victim blocks at u
// utilization are ~u full, so cleaning one block reclaims ~(1-u) of it);
// experiments choose the utilization their workload represents instead of
// always paying the worst case.
func PreconditionFrac(d Device, chunk int64, frac float64) error {
	if chunk <= 0 {
		chunk = 1 << 20
	}
	if frac <= 0 || frac > 1 {
		return fmt.Errorf("core: precondition fraction %v out of (0, 1]", frac)
	}
	space := int64(float64(d.LogicalBytes()) * frac)
	var off int64
	return d.ClosedLoop(1, func(int) (trace.Op, bool) {
		if off >= space {
			return trace.Op{}, false
		}
		size := chunk
		if off+size > space {
			size = space - off
		}
		op := trace.Op{Kind: trace.Write, Offset: off, Size: size}
		off += size
		return op, true
	})
}

// Pattern selects the access pattern of a bandwidth measurement.
type Pattern int

const (
	// Sequential walks the address space in order.
	Sequential Pattern = iota
	// Random draws uniform aligned offsets.
	Random
)

// BWOptions configures a bandwidth measurement.
type BWOptions struct {
	// Kind is trace.Read or trace.Write.
	Kind trace.Kind
	// Pattern is Sequential or Random.
	Pattern Pattern
	// ReqBytes is the request size.
	ReqBytes int64
	// TotalBytes bounds the bytes moved by the measurement.
	TotalBytes int64
	// Depth is the closed-loop queue depth.
	Depth int
	// Seed drives the random pattern.
	Seed int64
}

// MeasureBandwidth runs a closed-loop scan and returns MB/s over the
// measurement window (first submission to last completion).
func MeasureBandwidth(d Device, o BWOptions) (float64, error) {
	if o.ReqBytes <= 0 || o.TotalBytes < o.ReqBytes {
		return 0, fmt.Errorf("core: bad measurement sizes: req %d total %d", o.ReqBytes, o.TotalBytes)
	}
	space := d.LogicalBytes()
	if o.ReqBytes > space {
		return 0, fmt.Errorf("core: request larger than device")
	}
	rng := sim.NewRNG(o.Seed)
	slots := space / o.ReqBytes
	n := int(o.TotalBytes / o.ReqBytes)
	start := d.Engine().Now()
	var off int64
	i := 0
	err := d.ClosedLoop(o.Depth, func(int) (trace.Op, bool) {
		if i >= n {
			return trace.Op{}, false
		}
		i++
		var o2 int64
		switch o.Pattern {
		case Sequential:
			if off+o.ReqBytes > space {
				off = 0
			}
			o2 = off
			off += o.ReqBytes
		case Random:
			o2 = rng.Int63n(slots) * o.ReqBytes
		}
		return trace.Op{Kind: o.Kind, Offset: o2, Size: o.ReqBytes}, true
	})
	if err != nil {
		return 0, err
	}
	elapsed := (d.Engine().Now() - start).Seconds()
	if elapsed <= 0 {
		return 0, fmt.Errorf("core: measurement window empty")
	}
	return float64(int64(n)*o.ReqBytes) / 1e6 / elapsed, nil
}
