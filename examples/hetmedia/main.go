// Hetmedia: the paper's §3.3 future device — an SSD built from both SLC
// and MLC flash. The third term of the unwritten contract ("LBN spaces
// can be interchanged") breaks: half the address space is fast SLC, half
// is slow MLC. A block-interface file system cannot see the difference;
// the object interface can — the store co-locates hot (priority) objects
// in SLC, exactly the placement the paper proposes for "a root object".
package main

import (
	"fmt"
	"log"

	"ossd/internal/core"
	"ossd/internal/flash"
	"ossd/internal/osd"
	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/ssd"
	"ossd/internal/trace"
)

func main() {
	d, err := core.Open("ssd", core.WithSSD(ssd.Config{
		Elements:      8,
		MLCElements:   4, // half the gang is MLC
		Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 64, BlocksPerPackage: 64},
		Overprovision: 0.10,
		Layout:        ssd.Interleaved,
		Scheduler:     sched.SWTF,
		CtrlOverhead:  10 * sim.Microsecond,
		GCLow:         0.05,
		GCCritical:    0.02,
		Informed:      true,
	}))
	if err != nil {
		log.Fatal(err)
	}
	dev := d.(*core.SSD)
	fmt.Printf("capacity %d MB; SLC region [0, %d MB), MLC region beyond\n",
		dev.LogicalBytes()>>20, dev.Raw.RegionBoundary()>>20)

	// Part 1: the contract violation. Identical sequential writes to the
	// two halves of the LBN space take very different time.
	measure := func(base int64) float64 {
		dd, _ := core.Open("ssd", core.WithSSD(dev.Raw.Config()))
		d2 := dd.(*core.SSD)
		eng := d2.Engine()
		for i := 0; i < 256; i++ {
			d2.Raw.Submit(trace.Op{Kind: trace.Write, Offset: base + int64(i)*4096, Size: 4096}, nil)
		}
		eng.Run()
		return d2.Metrics().MeanWriteMs
	}
	slcMs := measure(0)
	mlcMs := measure(dev.Raw.RegionBoundary())
	fmt.Printf("\nblock interface, same write, different half of the LBN space:\n")
	fmt.Printf("  SLC half: %.3f ms/write   MLC half: %.3f ms/write (%.1fx slower)\n",
		slcMs, mlcMs, mlcMs/slcMs)
	fmt.Println("  -> term 3 of the unwritten contract is violated (paper §3.3)")

	// Part 2: the OSD exploits what the block interface cannot express.
	store, err := osd.New(dev.Raw)
	if err != nil {
		log.Fatal(err)
	}
	hot := store.Create(osd.Attributes{Priority: true})
	cold := store.Create(osd.Attributes{})
	hotReg, _ := store.Region(hot)
	coldReg, _ := store.Region(cold)
	fmt.Printf("\nobject interface: hot object placed in region %d (SLC), cold in region %d (MLC)\n",
		hotReg, coldReg)

	eng := dev.Engine()
	store.Write(hot, 0, 256<<10, nil)
	store.Write(cold, 0, 256<<10, nil)
	eng.Run()
	m := dev.Raw.Metrics()
	fmt.Printf("hot-object writes (SLC): %.3f ms mean; cold-object writes (MLC): %.3f ms mean\n",
		m.PriResp.Mean(), m.BgResp.Mean())
	fmt.Println("\nthe device used the object attribute to co-locate hot data in SLC —")
	fmt.Println("the placement the paper says only an expressive interface enables.")
}
