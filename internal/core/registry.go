package core

import (
	"fmt"
	"sort"
	"sync"

	"ossd/internal/fault"
	"ossd/internal/ftl"
	"ossd/internal/hdd"
	"ossd/internal/mems"
	"ossd/internal/raid"
	"ossd/internal/sched"
	"ossd/internal/ssd"
)

// The device registry maps profile names to Profiles, so every substrate
// is constructed through one door: Open(name, opts...). The built-in
// entries are the Table 2 device set, the extended Table 1 classes
// (MEMS, RAID, OSD), and one generic base profile per media kind
// ("ssd", "hdd", "mems", "raid", "osd"); Register adds more.
var registry = struct {
	sync.RWMutex
	order  []string
	byName map[string]Profile
}{byName: map[string]Profile{}}

// Register adds a named profile to the registry. Registering a name
// twice is an error: profiles are identities, not settings.
func Register(p Profile) error {
	if p.Name == "" {
		return fmt.Errorf("core: profile needs a name")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[p.Name]; dup {
		return fmt.Errorf("core: profile %q already registered", p.Name)
	}
	registry.order = append(registry.order, p.Name)
	registry.byName[p.Name] = p
	return nil
}

// mustRegister is Register for the built-in set.
func mustRegister(p Profile) {
	if err := Register(p); err != nil {
		panic(err)
	}
}

// ProfileByName looks a profile up in the registry.
func ProfileByName(name string) (Profile, error) {
	registry.RLock()
	defer registry.RUnlock()
	p, ok := registry.byName[name]
	if !ok {
		names := make([]string, len(registry.order))
		copy(names, registry.order)
		sort.Strings(names)
		return Profile{}, fmt.Errorf("core: unknown profile %q (have %v)", name, names)
	}
	return p, nil
}

// ProfileNames returns every registered profile name, sorted — the
// enumeration API behind ssdsim -list and the service's GET /profiles.
func ProfileNames() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, len(registry.order))
	copy(names, registry.order)
	sort.Strings(names)
	return names
}

// ExtendedProfiles returns every registered profile in registration
// order: the Table 2 set, the other Table 1 device classes (MEMS, RAID),
// the object-fronted SSD, the generic per-kind base profiles, and
// anything added with Register. Table 2 itself keeps using Profiles():
// the paper characterizes only the disk and the SSDs there.
func ExtendedProfiles() []Profile {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Profile, 0, len(registry.order))
	for _, name := range registry.order {
		out = append(out, registry.byName[name])
	}
	return out
}

// Option is a functional option applied to a Profile before its device
// is built: the one mechanism for customizing any substrate through the
// registry.
type Option func(*Profile) error

// Open builds the named profile's device with the options applied — the
// single constructor replacing the per-substrate NewSSD/NewHDD/NewMEMS/
// NewRAID/NewOSD call sites.
func Open(name string, opts ...Option) (Device, error) {
	p, err := ProfileByName(name)
	if err != nil {
		return nil, err
	}
	return Build(p, opts...)
}

// Build constructs a device from an explicit profile (registered or
// ad hoc) with the options applied. The profile is copied; options never
// mutate the registry.
func Build(p Profile, opts ...Option) (Device, error) {
	for _, opt := range opts {
		if err := opt(&p); err != nil {
			return nil, err
		}
	}
	return p.NewDevice()
}

// WithCapacity scales the device to approximately bytes of logical
// capacity, rounded to the media's natural granularity (flash geometry,
// RAID stripes).
func WithCapacity(bytes int64) Option {
	return func(p *Profile) error {
		if bytes <= 0 {
			return fmt.Errorf("core: capacity %d must be positive", bytes)
		}
		switch p.Kind {
		case KindHDD:
			p.HDD.CapacityBytes = bytes
		case KindMEMS:
			p.MEMS.CapacityBytes = bytes
		case KindRAID:
			if p.RAID.Disks < 3 {
				return fmt.Errorf("core: raid profile incomplete")
			}
			p.RAID.Disk.CapacityBytes = bytes / int64(p.RAID.Disks-1)
		default: // SSD and OSD share the flash config.
			g := p.SSD.Geom
			perBlock := int64(g.PageSize) * int64(g.PagesPerBlock)
			if p.SSD.Elements <= 0 || perBlock <= 0 {
				return fmt.Errorf("core: ssd profile incomplete")
			}
			spare := 1 - p.SSD.Overprovision
			if spare <= 0 {
				return fmt.Errorf("core: overprovision %v leaves no capacity", p.SSD.Overprovision)
			}
			raw := int64(float64(bytes) / spare)
			blocks := (raw + int64(p.SSD.Elements)*perBlock - 1) / (int64(p.SSD.Elements) * perBlock)
			if blocks < 4 {
				blocks = 4
			}
			p.SSD.Geom.BlocksPerPackage = int(blocks)
		}
		return nil
	}
}

// WithQueueDepth sets the profile's benchmark queue depth for all four
// measurement classes.
func WithQueueDepth(depth int) Option {
	return func(p *Profile) error {
		if depth <= 0 {
			return fmt.Errorf("core: queue depth %d must be positive", depth)
		}
		p.SeqReadDepth, p.RandReadDepth = depth, depth
		p.SeqWriteDepth, p.RandWriteDepth = depth, depth
		return nil
	}
}

// WithMaxPending bounds the number of requests outstanding while the
// device is driven open loop (Drive/Play): once n requests are in
// flight, further arrivals are paced to completions instead of piling
// unbounded queue state — backpressure for arrival storms the device
// cannot absorb. It applies to every media kind; 0 restores the
// unbounded default.
func WithMaxPending(n int) Option {
	return func(p *Profile) error {
		if n < 0 {
			return fmt.Errorf("core: max pending %d must be non-negative", n)
		}
		p.MaxPending = n
		return nil
	}
}

// WithShards asks flash devices to run the open-loop dataplane across n
// engines, one per element group — same reports, less wall clock (see
// Profile.Shards). It is safe to apply suite-wide: media kinds and
// configurations the parallel dataplane cannot decompose run
// single-engine silently. 1 forces single-engine; 0 restores the
// process default (SetDefaultShards).
func WithShards(n int) Option {
	return func(p *Profile) error {
		if n < 0 {
			return fmt.Errorf("core: shard count %d must be non-negative", n)
		}
		p.Shards = n
		return nil
	}
}

// WithFault attaches a fault plan (see internal/fault) to the profile:
// deterministic transient errors, element deaths, wear ceilings, and
// power-loss points. It applies to every media kind — flash devices
// inject per-element inside their dispatch path, other media are wrapped
// by the generic per-op injector. nil restores the process default
// (SetDefaultFault).
func WithFault(plan *fault.Plan) Option {
	return func(p *Profile) error {
		if err := plan.Validate(); err != nil {
			return err
		}
		p.Fault = plan
		return nil
	}
}

// WithSeed sets the profile's default measurement seed. The seed is
// metadata carried on the Profile for callers that read it back via
// ProfileByName (no built-in profile sets one; the devices themselves
// are deterministic and take no seed).
func WithSeed(seed int64) Option {
	return func(p *Profile) error {
		p.Seed = seed
		return nil
	}
}

// WithScheme selects the FTL mapping scheme (page, block, hybrid) on
// flash-backed profiles.
func WithScheme(s ftl.Scheme) Option {
	return func(p *Profile) error {
		if err := needFlash(p, "scheme"); err != nil {
			return err
		}
		p.SSD.Scheme = s
		return nil
	}
}

// WithStripe configures striping: on flash-backed profiles it selects
// the full-stripe layout with the given logical page size; on RAID it
// sets the per-disk stripe unit.
func WithStripe(bytes int64) Option {
	return func(p *Profile) error {
		if bytes <= 0 {
			return fmt.Errorf("core: stripe %d must be positive", bytes)
		}
		switch p.Kind {
		case KindRAID:
			p.RAID.StripeUnitBytes = bytes
		case KindHDD, KindMEMS:
			return fmt.Errorf("core: %s profiles have no stripe", p.Kind)
		default:
			p.SSD.Layout = ssd.FullStripe
			p.SSD.StripeBytes = bytes
		}
		return nil
	}
}

// WithScheduler selects the dispatch policy (FCFS, SWTF) on flash-backed
// profiles.
func WithScheduler(policy sched.Policy) Option {
	return func(p *Profile) error {
		if err := needFlash(p, "scheduler"); err != nil {
			return err
		}
		p.SSD.Scheduler = policy
		return nil
	}
}

// WithTenantWeights engages weighted fair-share dispatch on flash-backed
// profiles: the device queue deficit-round-robins across tenant classes
// with the given scheduler weights (tenants absent from the map weigh 1).
// An empty or nil map restores legacy single-tenant dispatch. Weighted
// devices always run single-engine: cross-tenant arbitration is global,
// so the sharded dataplane refuses to decompose it (see
// ssd.ShardableConfig).
func WithTenantWeights(weights map[uint8]float64) Option {
	return func(p *Profile) error {
		if err := needFlash(p, "tenant weights"); err != nil {
			return err
		}
		for t, w := range weights {
			if w <= 0 {
				return fmt.Errorf("core: tenant %d weight %v must be positive", t, w)
			}
		}
		if len(weights) == 0 {
			p.SSD.TenantWeights = nil
			return nil
		}
		m := make(map[uint8]float64, len(weights))
		for t, w := range weights {
			m[t] = w
		}
		p.SSD.TenantWeights = m
		return nil
	}
}

// WithInformed toggles informed cleaning (§3.5 free-page knowledge) on
// flash-backed profiles.
func WithInformed(on bool) Option {
	return func(p *Profile) error {
		if err := needFlash(p, "informed cleaning"); err != nil {
			return err
		}
		p.SSD.Informed = on
		return nil
	}
}

// WithPriorityAware toggles priority-aware cleaning (§3.6) on
// flash-backed profiles.
func WithPriorityAware(on bool) Option {
	return func(p *Profile) error {
		if err := needFlash(p, "priority-aware cleaning"); err != nil {
			return err
		}
		p.SSD.PriorityAware = on
		return nil
	}
}

// WithSSD replaces the flash configuration wholesale (for callers that
// already hold an ssd.Config, e.g. a copied-and-tweaked profile).
func WithSSD(cfg ssd.Config) Option {
	return func(p *Profile) error {
		if err := needFlash(p, "ssd config"); err != nil {
			return err
		}
		p.SSD = cfg
		return nil
	}
}

// WithHDD replaces the disk configuration wholesale.
func WithHDD(cfg hdd.Config) Option {
	return func(p *Profile) error {
		if p.Kind != KindHDD {
			return fmt.Errorf("core: hdd config on %s profile", p.Kind)
		}
		p.HDD = cfg
		return nil
	}
}

// WithMEMS replaces the MEMS configuration wholesale.
func WithMEMS(cfg mems.Config) Option {
	return func(p *Profile) error {
		if p.Kind != KindMEMS {
			return fmt.Errorf("core: mems config on %s profile", p.Kind)
		}
		p.MEMS = cfg
		return nil
	}
}

// WithRAID replaces the array configuration wholesale.
func WithRAID(cfg raid.Config) Option {
	return func(p *Profile) error {
		if p.Kind != KindRAID {
			return fmt.Errorf("core: raid config on %s profile", p.Kind)
		}
		p.RAID = cfg
		return nil
	}
}

// needFlash guards SSD-only options: SSD and OSD profiles share the
// flash config; other media reject the option loudly instead of
// silently ignoring it.
func needFlash(p *Profile, what string) error {
	if p.Kind != KindSSD && p.Kind != KindOSD {
		return fmt.Errorf("core: %s option on %s profile", what, p.Kind)
	}
	return nil
}
