package mems

import (
	"math/rand"
	"testing"

	"ossd/internal/sim"
	"ossd/internal/stats"
	"ossd/internal/trace"
)

func newDevice(t *testing.T) (*sim.Engine, *Device) {
	t.Helper()
	eng := sim.NewEngine()
	d, err := New(eng, G2())
	if err != nil {
		t.Fatal(err)
	}
	return eng, d
}

func TestConfigValidate(t *testing.T) {
	c := G2()
	c.CapacityBytes = 0
	if _, err := New(sim.NewEngine(), c); err == nil {
		t.Error("accepted zero capacity")
	}
	c = G2()
	c.StreamMBps = 0
	if _, err := New(sim.NewEngine(), c); err == nil {
		t.Error("accepted zero stream rate")
	}
}

func TestSeekGrowsWithDistance(t *testing.T) {
	_, d := newDevice(t)
	short := d.seekTime(0, 10)
	long := d.seekTime(0, d.cfg.Tracks-1)
	if short <= 0 || long <= short {
		t.Fatalf("seek curve: short %v long %v", short, long)
	}
	if s := d.seekTime(5, 5); s != 0 {
		t.Fatalf("zero-distance seek = %v", s)
	}
}

func TestSequentialStreamsAtMediaRate(t *testing.T) {
	eng, d := newDevice(t)
	const req = 1 << 20
	const n = 32
	i := 0
	err := d.ClosedLoop(1, func(int) (trace.Op, bool) {
		if i >= n {
			return trace.Op{}, false
		}
		op := trace.Op{Kind: trace.Read, Offset: int64(i) * req, Size: req}
		i++
		return op, true
	})
	if err != nil {
		t.Fatal(err)
	}
	bw := stats.Bandwidth(n*req, eng.Now().Seconds())
	if bw < 0.85*d.cfg.StreamMBps || bw > 1.1*d.cfg.StreamMBps {
		t.Fatalf("sequential bandwidth = %.1f, want ~%.0f", bw, d.cfg.StreamMBps)
	}
}

func TestRandomSlowerButNotDisklike(t *testing.T) {
	eng, d := newDevice(t)
	rng := rand.New(rand.NewSource(1))
	const n = 500
	i := 0
	err := d.ClosedLoop(1, func(int) (trace.Op, bool) {
		if i >= n {
			return trace.Op{}, false
		}
		i++
		return trace.Op{Kind: trace.Read, Offset: rng.Int63n(d.LogicalBytes()/4096) * 4096, Size: 4096}, true
	})
	if err != nil {
		t.Fatal(err)
	}
	mean := d.Metrics().ReadResp.Mean()
	// Sub-millisecond seeks: far faster than a disk's ~12 ms, far slower
	// than streaming.
	if mean > 2 || mean < 0.05 {
		t.Fatalf("random 4K read mean = %.3f ms", mean)
	}
	bw := stats.Bandwidth(d.Metrics().BytesRead, eng.Now().Seconds())
	if bw >= d.cfg.StreamMBps/5 {
		t.Fatalf("random bandwidth %.1f too close to streaming %.0f", bw, d.cfg.StreamMBps)
	}
}

func TestSingleActuatorSerializes(t *testing.T) {
	eng, d := newDevice(t)
	var r1, r2 *Request
	d.Submit(trace.Op{Kind: trace.Read, Offset: 0, Size: 1 << 20}, func(r *Request) { r1 = r })
	d.Submit(trace.Op{Kind: trace.Read, Offset: 1 << 30, Size: 1 << 20}, func(r *Request) { r2 = r })
	eng.Run()
	if r2.Start < r1.Done {
		t.Fatal("second request started before first finished")
	}
}

func TestWriteAndFree(t *testing.T) {
	eng, d := newDevice(t)
	var w, f *Request
	d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 8192}, func(r *Request) { w = r })
	d.Submit(trace.Op{Kind: trace.Free, Offset: 0, Size: 8192}, func(r *Request) { f = r })
	eng.Run()
	if w == nil || d.Metrics().BytesWritten != 8192 {
		t.Fatal("write not accounted")
	}
	if f == nil || f.Response() != 0 {
		t.Fatal("free not immediate no-op")
	}
}

func TestSubmitValidation(t *testing.T) {
	_, d := newDevice(t)
	if err := d.Submit(trace.Op{Kind: trace.Read, Offset: -1, Size: 4096}, nil); err == nil {
		t.Error("accepted negative offset")
	}
	if err := d.Submit(trace.Op{Kind: trace.Read, Offset: d.LogicalBytes(), Size: 4096}, nil); err == nil {
		t.Error("accepted op beyond capacity")
	}
}

func TestPlay(t *testing.T) {
	_, d := newDevice(t)
	if err := d.Play([]trace.Op{
		{At: 0, Kind: trace.Write, Offset: 0, Size: 65536},
		{At: sim.Millisecond, Kind: trace.Read, Offset: 1 << 28, Size: 65536},
	}); err != nil {
		t.Fatal(err)
	}
	if d.Metrics().Completed != 2 {
		t.Fatalf("completed = %d", d.Metrics().Completed)
	}
}

func TestUniformAddressSpace(t *testing.T) {
	// Unlike the zoned disk, streaming rate is identical at both ends of
	// the address space.
	measure := func(base int64) float64 {
		eng, d := newDevice(t)
		const req = 1 << 20
		i := 0
		if err := d.ClosedLoop(1, func(int) (trace.Op, bool) {
			if i >= 16 {
				return trace.Op{}, false
			}
			op := trace.Op{Kind: trace.Read, Offset: base + int64(i)*req, Size: req}
			i++
			return op, true
		}); err != nil {
			t.Fatal(err)
		}
		return stats.Bandwidth(16*req, eng.Now().Seconds())
	}
	outer := measure(0)
	inner := measure(3 << 30)
	if ratio := outer / inner; ratio > 1.05 || ratio < 0.95 {
		t.Fatalf("address space not uniform: outer/inner = %.3f", ratio)
	}
}
