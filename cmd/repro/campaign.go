package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"ossd/internal/campaign"
)

// campaignFlags carries the -campaign client mode's knobs.
type campaignFlags struct {
	specPath string
	addr     string
	rows     string
	cols     string
	metric   string
	asJSON   bool
}

// getJSON decodes a JSON GET response into v.
func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, bytes.TrimSpace(b))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// runCampaign drives a remote sweep: POST the spec file to simd, poll
// progress to stderr until the campaign is terminal, then stream every
// cell result and render either the NDJSON results (-json) or a
// comparison table across two axes — through campaign.Table, the same
// renderer behind the server's /table endpoint. It returns whether any
// cell failed.
func runCampaign(out io.Writer, f campaignFlags) (failed bool, err error) {
	specBytes, err := os.ReadFile(f.specPath)
	if err != nil {
		return false, err
	}
	base := strings.TrimSuffix(f.addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	resp, err := http.Post(base+"/campaigns", "application/json", bytes.NewReader(specBytes))
	if err != nil {
		return false, err
	}
	var prog campaign.Progress
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return false, fmt.Errorf("POST /campaigns: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	if err := json.Unmarshal(body, &prog); err != nil {
		return false, err
	}
	fmt.Fprintf(os.Stderr, "campaign %s: %d cells over axes %s\n",
		prog.ID, prog.Total, strings.Join(prog.Axes, ", "))

	for prog.Status == "running" {
		time.Sleep(500 * time.Millisecond)
		if err := getJSON(base+"/campaigns/"+prog.ID, &prog); err != nil {
			return false, err
		}
		shed := ""
		if prog.Shed > 0 {
			shed = fmt.Sprintf(", %d shed", prog.Shed)
		}
		fmt.Fprintf(os.Stderr, "%s: %d/%d settled (%d cached, %d failed, %d running%s) eta %.0fs\n",
			prog.ID, prog.Done+prog.Failed, prog.Total, prog.CacheHits, prog.Failed, prog.Running, shed, prog.ETASeconds)
	}
	if prog.Shed > 0 {
		fmt.Fprintf(os.Stderr, "%s: server shed %d submit attempts (all retried)\n", prog.ID, prog.Shed)
	}

	sresp, err := http.Get(base + "/campaigns/" + prog.ID + "/stream")
	if err != nil {
		return false, err
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(sresp.Body)
		return false, fmt.Errorf("GET /stream: %s: %s", sresp.Status, bytes.TrimSpace(b))
	}
	var cells []campaign.CellResult
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var cr campaign.CellResult
		if err := json.Unmarshal(sc.Bytes(), &cr); err != nil {
			return false, err
		}
		cells = append(cells, cr)
	}
	if err := sc.Err(); err != nil {
		return false, err
	}

	if f.asJSON {
		enc := json.NewEncoder(out)
		for _, cr := range cells {
			if err := enc.Encode(cr); err != nil {
				return false, err
			}
		}
		return prog.Failed > 0, nil
	}

	rows, cols, metric, err := campaign.ResolveTableAxes(prog.Axes, f.rows, f.cols, f.metric)
	if err != nil {
		return false, err
	}
	title := fmt.Sprintf("Campaign %s: %s by %s x %s", prog.ID, metric, rows, cols)
	grid, err := campaign.Table(title, cells, rows, cols, metric)
	if err != nil {
		return false, err
	}
	fmt.Fprint(out, grid.String())
	return prog.Failed > 0, nil
}
