// Package stats provides the measurement primitives shared by every
// experiment: streaming mean/variance, log-bucketed latency histograms
// with percentile estimation, bandwidth accounting, and plain-text table
// rendering in the style of the paper's tables.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean accumulates a streaming mean and variance (Welford's algorithm).
// The zero value is an empty accumulator.
type Mean struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds a sample into the accumulator.
func (m *Mean) Add(x float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N reports the number of samples.
func (m Mean) N() uint64 { return m.n }

// Mean reports the sample mean (0 if empty).
func (m Mean) Mean() float64 { return m.mean }

// Min reports the smallest sample (0 if empty).
func (m Mean) Min() float64 { return m.min }

// Max reports the largest sample (0 if empty).
func (m Mean) Max() float64 { return m.max }

// Var reports the sample variance (0 with fewer than two samples).
func (m Mean) Var() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// Std reports the sample standard deviation.
func (m Mean) Std() float64 { return math.Sqrt(m.Var()) }

// Histogram is a log-bucketed histogram for positive values. Buckets grow
// geometrically, giving ~4% relative error on percentile estimates with
// bounded memory regardless of sample count — the standard shape for
// latency distributions that span nanoseconds to seconds.
type Histogram struct {
	acc     Mean
	buckets [512]uint64
}

// N reports the number of samples.
func (h Histogram) N() uint64 { return h.acc.N() }

// Mean reports the sample mean.
func (h Histogram) Mean() float64 { return h.acc.Mean() }

// Min reports the smallest sample.
func (h Histogram) Min() float64 { return h.acc.Min() }

// Max reports the largest sample.
func (h Histogram) Max() float64 { return h.acc.Max() }

// Std reports the sample standard deviation.
func (h Histogram) Std() float64 { return h.acc.Std() }

// bucketFor maps a positive value to a bucket index. Values are bucketed
// by log base 2^(1/8): 8 sub-buckets per octave.
func bucketFor(x float64) int {
	if x < 1 {
		return 0
	}
	b := int(math.Log2(x) * 8)
	if b < 0 {
		b = 0
	}
	if b > 511 {
		b = 511
	}
	return b
}

// bucketValue returns the representative (geometric mid) value of bucket b.
func bucketValue(b int) float64 {
	return math.Pow(2, (float64(b)+0.5)/8)
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	h.acc.Add(x)
	h.buckets[bucketFor(x)]++
}

// Percentile estimates the p-th percentile, p in [0, 100].
func (h Histogram) Percentile(p float64) float64 {
	if h.acc.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.acc.min
	}
	if p >= 100 {
		return h.acc.max
	}
	target := uint64(math.Ceil(float64(h.acc.n) * p / 100))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b, c := range h.buckets {
		cum += c
		if cum >= target {
			v := bucketValue(b)
			if v < h.acc.min {
				v = h.acc.min
			}
			if v > h.acc.max {
				v = h.acc.max
			}
			return v
		}
	}
	return h.acc.max
}

// Median is Percentile(50).
func (h Histogram) Median() float64 { return h.Percentile(50) }

// Bandwidth converts bytes moved over a duration (seconds) to MB/s, using
// the paper's decimal-megabyte convention.
func Bandwidth(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / seconds
}

// Ratio returns a/b, or +Inf when b is zero and a is not, matching how the
// paper reports seq/rand ratios for devices whose random performance
// rounds to zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return a / b
}

// Improvement returns the percentage improvement of 'new' over 'old' for a
// lower-is-better metric such as response time.
func Improvement(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (old - new) / old * 100
}

// Table renders aligned plain-text tables for experiment output.
type Table struct {
	Title  string
	header []string
	rows   [][]string
	notes  []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a free-text footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.4f", v)
	case math.Abs(v) < 10:
		return fmt.Sprintf("%.2f", v)
	case math.Abs(v) < 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	ncol := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var out []byte
	if t.Title != "" {
		out = append(out, t.Title...)
		out = append(out, '\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			out = append(out, fmt.Sprintf("%-*s", widths[i]+2, c)...)
		}
		// Trim trailing spaces for clean diffs.
		for len(out) > 0 && out[len(out)-1] == ' ' {
			out = out[:len(out)-1]
		}
		out = append(out, '\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	for _, n := range t.notes {
		out = append(out, "  note: "...)
		out = append(out, n...)
		out = append(out, '\n')
	}
	return string(out)
}

// Grid accumulates a two-axis comparison table: samples keyed by
// (row, col) label, with rows and columns ordered by first insertion and
// duplicate (row, col) samples averaged through Mean — the shape of
// every "metric across axis A × axis B" rendering (the paper's tables,
// campaign comparison tables). It is the one renderer behind the
// campaign table endpoint and cmd/repro's client-side tables.
type Grid struct {
	Title  string
	Corner string // header of the row-label column
	rows   []string
	cols   []string
	cells  map[string]map[string]*Mean
	notes  []string
}

// NewGrid creates an empty grid.
func NewGrid(title, corner string) *Grid {
	return &Grid{Title: title, Corner: corner, cells: map[string]map[string]*Mean{}}
}

// Add folds one sample into the (row, col) cell, creating the row and
// column on first sight.
func (g *Grid) Add(row, col string, v float64) {
	byCol, ok := g.cells[row]
	if !ok {
		byCol = map[string]*Mean{}
		g.cells[row] = byCol
		g.rows = append(g.rows, row)
	}
	cell, ok := byCol[col]
	if !ok {
		cell = &Mean{}
		byCol[col] = cell
		found := false
		for _, c := range g.cols {
			if c == col {
				found = true
				break
			}
		}
		if !found {
			g.cols = append(g.cols, col)
		}
	}
	cell.Add(v)
}

// AddNote appends a footnote rendered under the grid.
func (g *Grid) AddNote(format string, args ...any) {
	g.notes = append(g.notes, fmt.Sprintf(format, args...))
}

// MaxN reports the largest sample count in any cell: > 1 means some
// cell is an average, worth a footnote.
func (g *Grid) MaxN() uint64 {
	var n uint64
	for _, byCol := range g.cells {
		for _, cell := range byCol {
			if cell.N() > n {
				n = cell.N()
			}
		}
	}
	return n
}

// Table renders the grid as a Table: one row per row label, one column
// per column label, empty cells as "-".
func (g *Grid) Table() *Table {
	header := append([]string{g.Corner}, g.cols...)
	t := NewTable(g.Title, header...)
	for _, row := range g.rows {
		cells := make([]any, 0, len(g.cols)+1)
		cells = append(cells, row)
		for _, col := range g.cols {
			if cell, ok := g.cells[row][col]; ok {
				cells = append(cells, cell.Mean())
			} else {
				cells = append(cells, "-")
			}
		}
		t.AddRow(cells...)
	}
	for _, n := range g.notes {
		t.AddNote("%s", n)
	}
	return t
}

// String renders the grid with aligned columns.
func (g *Grid) String() string { return g.Table().String() }

// Series is a named (x, y) sequence used for figure-style outputs.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// String renders the series as two aligned columns.
func (s *Series) String() string {
	out := fmt.Sprintf("# %s\n", s.Name)
	for i := range s.X {
		out += fmt.Sprintf("%12.4f %12.4f\n", s.X[i], s.Y[i])
	}
	return out
}

// Summarize returns min/median/max of a float slice (sorting a copy).
func Summarize(xs []float64) (min, median, max float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return c[0], c[len(c)/2], c[len(c)-1]
}
