package experiments

// CatalogEntry names one runnable experiment: its paper artifact ID, a
// one-line description, and a runner taking the workload seed and the
// worker budget for its internal fan-out.
type CatalogEntry struct {
	ID          string
	Description string
	Run         func(seed int64, workers int) (Result, error)
}

// Catalog returns every experiment in report order — the one list
// behind cmd/repro and the service's /experiments endpoints.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{"contract", "Table 1: unwritten-contract terms probed on disk, RAID, MEMS, and SSD", func(seed int64, workers int) (Result, error) {
			return Contract(seed, workers)
		}},
		{"table2", "Table 2: sequential vs random bandwidth across device profiles", func(seed int64, workers int) (Result, error) {
			return Table2(Table2Options{Seed: seed, Workers: workers})
		}},
		{"swtf", "Section 3.2: SWTF vs FCFS scheduling", func(seed int64, workers int) (Result, error) {
			return SWTF(SWTFOptions{Seed: seed, Workers: workers})
		}},
		{"figure2", "Figure 2: write-amplification saw-tooth (bandwidth vs write size)", func(seed int64, workers int) (Result, error) {
			return Figure2(Figure2Options{MaxBytes: 9 << 20, Workers: workers})
		}},
		{"table3", "Table 3: aligned vs unaligned writes across sequentiality", func(seed int64, workers int) (Result, error) {
			return Table3(Table3Options{Seed: seed, Workers: workers})
		}},
		{"table4", "Table 4: alignment improvement on macro workloads", func(seed int64, workers int) (Result, error) {
			return Table4(Table4Options{Seed: seed, Workers: workers})
		}},
		{"table5", "Table 5: informed cleaning with free-page information", func(seed int64, workers int) (Result, error) {
			return Table5(Table5Options{Seed: seed, Workers: workers})
		}},
		{"figure3", "Figure 3 + Table 6: priority-aware cleaning", func(seed int64, workers int) (Result, error) {
			return Figure3(Figure3Options{Seed: seed, Workers: workers})
		}},
		{"schemes", "Extension: page/hybrid/block FTL mapping schemes compared", func(seed int64, workers int) (Result, error) {
			return Schemes(seed, workers)
		}},
		{"lifetime", "Extension: endurance under skewed writes (wear-leveling, SLC vs MLC)", func(seed int64, workers int) (Result, error) {
			return Lifetime(seed, workers)
		}},
		{"faultlife", "Extension: accelerated lifetime under wear ceilings (fault plans)", func(seed int64, workers int) (Result, error) {
			return FaultLife(FaultLifeOptions{Seed: seed, Workers: workers})
		}},
		{"interference", "Extension: multi-tenant interference and fair-share isolation", func(seed int64, workers int) (Result, error) {
			return Interference(InterferenceOptions{Seed: seed, Workers: workers})
		}},
	}
}

// CatalogEntryByID looks an experiment up by its artifact ID.
func CatalogEntryByID(id string) (CatalogEntry, bool) {
	for _, e := range Catalog() {
		if e.ID == id {
			return e, true
		}
	}
	return CatalogEntry{}, false
}
