// Command repro regenerates every table and figure from the paper's
// evaluation section. Experiments execute concurrently on a worker pool
// (and fan their own independent simulations out further); the report is
// assembled in experiment order, so its bytes are identical for a fixed
// seed regardless of worker count. With no flags it runs the full suite
// and prints each result in the paper's format; -run selects a subset.
//
//	repro                  # everything
//	repro -run table2,figure3
//	repro -list            # show available experiments
//	repro -seed 7 -workers 4 -o report.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"ossd/internal/experiments"
	"ossd/internal/runner"
)

type experiment struct {
	id, desc string
	run      func(seed int64, workers int) (experiments.Result, error)
}

func catalog() []experiment {
	return []experiment{
		{"contract", "Table 1: unwritten-contract terms probed on disk, RAID, MEMS, and SSD", func(seed int64, workers int) (experiments.Result, error) {
			return experiments.Contract(seed, workers)
		}},
		{"table2", "Table 2: sequential vs random bandwidth across device profiles", func(seed int64, workers int) (experiments.Result, error) {
			return experiments.Table2(experiments.Table2Options{Seed: seed, Workers: workers})
		}},
		{"swtf", "Section 3.2: SWTF vs FCFS scheduling", func(seed int64, workers int) (experiments.Result, error) {
			return experiments.SWTF(experiments.SWTFOptions{Seed: seed, Workers: workers})
		}},
		{"figure2", "Figure 2: write-amplification saw-tooth (bandwidth vs write size)", func(seed int64, workers int) (experiments.Result, error) {
			return experiments.Figure2(experiments.Figure2Options{MaxBytes: 9 << 20, Workers: workers})
		}},
		{"table3", "Table 3: aligned vs unaligned writes across sequentiality", func(seed int64, workers int) (experiments.Result, error) {
			return experiments.Table3(experiments.Table3Options{Seed: seed, Workers: workers})
		}},
		{"table4", "Table 4: alignment improvement on macro workloads", func(seed int64, workers int) (experiments.Result, error) {
			return experiments.Table4(experiments.Table4Options{Seed: seed, Workers: workers})
		}},
		{"table5", "Table 5: informed cleaning with free-page information", func(seed int64, workers int) (experiments.Result, error) {
			return experiments.Table5(experiments.Table5Options{Seed: seed, Workers: workers})
		}},
		{"figure3", "Figure 3 + Table 6: priority-aware cleaning", func(seed int64, workers int) (experiments.Result, error) {
			return experiments.Figure3(experiments.Figure3Options{Seed: seed, Workers: workers})
		}},
		{"schemes", "Extension: page/hybrid/block FTL mapping schemes compared", func(seed int64, workers int) (experiments.Result, error) {
			return experiments.Schemes(seed, workers)
		}},
		{"lifetime", "Extension: endurance under skewed writes (wear-leveling, SLC vs MLC)", func(seed int64, workers int) (experiments.Result, error) {
			return experiments.Lifetime(seed, workers)
		}},
	}
}

func main() {
	var (
		runList = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		seed    = flag.Int64("seed", 1, "random seed for workloads")
		workers = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		outPath = flag.String("o", "", "write the report to this file (default stdout)")
	)
	flag.Parse()

	cat := catalog()
	if *list {
		for _, e := range cat {
			fmt.Printf("%-10s %s\n", e.id, e.desc)
		}
		return
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	want := map[string]bool{}
	all := *runList == "all"
	for _, id := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(id)] = true
	}

	known := map[string]bool{}
	for _, e := range cat {
		known[e.id] = true
	}
	if !all {
		for id := range want {
			if id != "" && !known[id] {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
		}
	}

	var selected []experiment
	for _, e := range cat {
		if all || want[e.id] {
			selected = append(selected, e)
		}
	}

	// Split the worker budget across the two fan-out levels so peak
	// concurrency stays bounded by the budget: up to `outer` experiments
	// run at once, each fanning its own specs across `inner` workers.
	// One experiment selected -> all workers go to its specs; many
	// selected -> experiments parallelize and their insides serialize.
	budget := *workers
	if budget <= 0 {
		budget = runner.DefaultWorkers()
	}
	outer := budget
	if outer > len(selected) {
		outer = len(selected)
	}
	if outer < 1 {
		outer = 1
	}
	inner := budget / outer
	if inner < 1 {
		inner = 1
	}
	var mu sync.Mutex
	specs := make([]runner.Spec[experiments.Result], len(selected))
	for i, e := range selected {
		e := e
		specs[i] = runner.Spec[experiments.Result]{
			Name: e.id,
			Seed: *seed,
			Run:  func() (experiments.Result, error) { return e.run(*seed, inner) },
		}
	}
	outcomes := runner.RunAll(specs, runner.Options{
		Workers: outer,
		OnStart: func(name string) {
			mu.Lock()
			fmt.Fprintf(os.Stderr, "running %s ...\n", name)
			mu.Unlock()
		},
	})

	// Timing goes to stderr only: the report must be byte-identical for a
	// fixed seed regardless of worker count or machine speed.
	fmt.Fprintf(out, "Block Management in Solid-State Devices — reproduction report\n")
	fmt.Fprintf(out, "seed=%d\n\n", *seed)
	failed := false
	for i, o := range outcomes {
		fmt.Fprintf(os.Stderr, "%-10s finished in %.1fs\n", o.Name, o.Elapsed.Seconds())
		if o.Err != nil {
			fmt.Fprintf(out, "== %s FAILED: %v\n\n", o.Name, o.Err)
			failed = true
			continue
		}
		fmt.Fprintf(out, "== %s (%s)\n%s\n", o.Name, selected[i].desc, o.Value.String())
	}
	if failed {
		os.Exit(1)
	}
}
