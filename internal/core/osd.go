package core

import (
	"fmt"

	"ossd/internal/osd"
	"ossd/internal/sim"
	"ossd/internal/ssd"
	"ossd/internal/trace"
)

// OSD is the paper's §3.7 proposal as a core.Device: an object store
// fronting the flash device, with the device's address space exposed
// through a single pre-reserved volume object. Block reads and writes
// travel the object path — stripe-aligned extents allocated inside the
// device — and Free notifications reach the FTL as the §3.5 informed-
// cleaning signal. The store and device stay reachable via Store and Raw
// for object-level use (Create/Delete/attributes).
type OSD struct {
	Raw   *ssd.Device
	Store *osd.Store
	driveConfig
	vol   osd.ObjectID
	bytes int64
}

// NewOSD builds a flash device on a fresh engine, fronts it with an
// object store, and reserves one volume object spanning the store's
// first region (the whole device on homogeneous media, the SLC region on
// heterogeneous ones).
func NewOSD(cfg ssd.Config) (*OSD, error) {
	dev, err := ssd.New(sim.NewEngine(), cfg)
	if err != nil {
		return nil, err
	}
	st, err := osd.New(dev)
	if err != nil {
		return nil, err
	}
	space := dev.LogicalBytes()
	if b := dev.RegionBoundary(); b > 0 {
		space = b
	}
	// Create with Priority so heterogeneous stores place the volume in
	// region 0 (SLC) — the span reserved below — then drop the attribute
	// so block I/O is not priority-tagged. Placement is fixed at create.
	vol := st.Create(osd.Attributes{Priority: true})
	if err := st.SetAttributes(vol, osd.Attributes{}); err != nil {
		return nil, err
	}
	if err := st.Reserve(vol, space); err != nil {
		return nil, fmt.Errorf("core: reserve %d-byte volume: %w", space, err)
	}
	return &OSD{Raw: dev, Store: st, vol: vol, bytes: space}, nil
}

// Volume returns the backing volume object's ID.
func (o *OSD) Volume() osd.ObjectID { return o.vol }

// Submit implements Device: reads, writes, and frees all go through the
// object store's extent mapping, so frees land on exactly the device
// pages backing the volume bytes (TRIM through the object interface).
func (o *OSD) Submit(op trace.Op, onDone func(sim.Time, error)) error {
	if err := op.Validate(); err != nil {
		return err
	}
	if op.End() > o.bytes {
		return fmt.Errorf("core: osd request [%d, +%d) beyond %d-byte volume", op.Offset, op.Size, o.bytes)
	}
	start := o.Raw.Engine().Now()
	var done func(error)
	if onDone != nil {
		done = func(err error) { onDone(o.Raw.Engine().Now()-start, err) }
	}
	switch op.Kind {
	case trace.Read:
		return o.Store.ReadAs(o.vol, op.Offset, op.Size, op.Tenant, done)
	case trace.Free:
		return o.Store.FreeRange(o.vol, op.Offset, op.Size, done)
	default:
		return o.Store.WriteAs(o.vol, op.Offset, op.Size, op.Tenant, done)
	}
}

// SubmitBatch implements Device (per-op fallback: the object path does
// per-extent mapping work the flash batch pump cannot amortize).
func (o *OSD) SubmitBatch(ops []trace.Op, onDone func(sim.Time, error)) error {
	return submitEach(o, ops, onDone)
}

// Free implements Device: the notification travels the object path and
// the FTL drops the backing pages.
func (o *OSD) Free(off, size int64) error { return o.Store.FreeRange(o.vol, off, size, nil) }

// Drive implements Device.
func (o *OSD) Drive(st trace.Stream) error { return drive(o, st, o.MaxPending) }

// Play implements Device.
func (o *OSD) Play(ops []trace.Op) error { return drive(o, trace.FromSlice(ops), o.MaxPending) }

// ClosedLoop implements Device.
func (o *OSD) ClosedLoop(depth int, gen func(int) (trace.Op, bool)) error {
	return closedLoop(o, depth, gen)
}

// Engine implements Device.
func (o *OSD) Engine() *sim.Engine { return o.Raw.Engine() }

// LogicalBytes implements Device: the volume's span, not the raw
// device's (they differ on heterogeneous media).
func (o *OSD) LogicalBytes() int64 { return o.bytes }

// QueueDepth implements Device.
func (o *OSD) QueueDepth() int { return o.Raw.QueueDepth() }

// Metrics implements Device.
func (o *OSD) Metrics() Snapshot { return ssdSnapshot(o.Raw.Metrics()) }

var _ Device = (*OSD)(nil)
