package trace_test

import (
	"fmt"
	"os"

	"ossd/internal/trace"
)

// ExampleAlign shows the §3.4 merge-and-align pass: eight contiguous
// 4 KB writes become one stripe-aligned 32 KB write.
func ExampleAlign() {
	var ops []trace.Op
	for i := int64(0); i < 8; i++ {
		ops = append(ops, trace.Op{At: 0, Kind: trace.Write, Offset: i * 4096, Size: 4096})
	}
	aligned, err := trace.Align(ops, 32<<10)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d ops in, %d out: %v bytes at offset %d\n",
		len(ops), len(aligned), aligned[0].Size, aligned[0].Offset)
	// Output: 8 ops in, 1 out: 32768 bytes at offset 0
}

// ExampleStream shows the pull-based workload pipeline: a stream built
// from combinators, transformed by the streaming aligner, and drained at
// constant memory while Tally gathers statistics.
func ExampleStream() {
	var ops []trace.Op
	for i := int64(0); i < 16; i++ {
		ops = append(ops, trace.Op{Kind: trace.Write, Offset: i * 4096, Size: 4096})
	}
	s, err := trace.AlignStream(trace.Limit(trace.FromSlice(ops), 8), 32<<10, trace.AlignOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	var st trace.Stats
	out := trace.Collect(trace.Tally(s, &st))
	fmt.Printf("%d ops out, %d bytes written\n", st.Ops, st.WriteBytes)
	fmt.Printf("first: %v bytes at offset %d\n", out[0].Size, out[0].Offset)
	// Output:
	// 1 ops out, 32768 bytes written
	// first: 32768 bytes at offset 0
}

// ExampleEncode shows the text trace format.
func ExampleEncode() {
	ops := []trace.Op{
		{At: 1000, Kind: trace.Write, Offset: 4096, Size: 8192},
		{At: 2000, Kind: trace.Free, Offset: 4096, Size: 8192, Priority: true},
	}
	if err := trace.Encode(os.Stdout, ops); err != nil {
		fmt.Println(err)
	}
	// Output:
	// 1000 W 4096 8192
	// 2000 F 4096 8192 P
}
