package sched

import (
	"sort"

	"ossd/internal/sim"
)

// Queue is the stateful, indexed successor of the stateless Pick scan: a
// dispatch queue that knows each parallel element's busy horizon and
// answers "what dispatches now?" in O(log n) instead of rescanning (and
// reallocating) the whole pending set on every decision.
//
// The legacy Pick contract is preserved exactly — the equivalence test in
// queue_test.go pins the dispatch sequence op-for-op against Pick on
// randomized workloads:
//
//   - FCFS dispatches strictly in arrival order; if the head's elements
//     are busy nothing dispatches (head-of-line blocking). The index is an
//     intrusive FIFO: Pop inspects only the head.
//   - SWTF dispatches the request with the shortest wait, tie-broken by
//     arrival Seq, and only when that wait is zero. Since ties break by
//     Seq and dispatch happens only at wait zero, the winner is always
//     the lowest-Seq request whose elements are all idle; the index is a
//     Seq-keyed min-heap of dispatch candidates plus, per element, a list
//     of requests parked until that element's busy horizon passes. Pop
//     lazily re-parks stale candidates, so each request moves between
//     index structures O(1) times per element-release that concerns it.
//
// A Queue owns the busy horizons of its elements (the busyUntil vector
// the scan-era device kept by hand): media models mark elements busy with
// SetBusy and the queue wakes parked requests as the clock passes their
// horizons. Items are pooled and their payload slots cleared on Pop, so
// the queue neither allocates on the dispatch path nor pins completed
// requests for the garbage collector.
//
// A Queue optionally layers weighted fair-share dispatch across tenant
// classes on top of either policy: SetTenantWeight switches it into
// deficit-round-robin mode, where each tenant keeps its own sub-queue
// (arrival list or candidate heap plus parked lists) ordered by the base
// policy, and a DRR pointer with per-tenant byte-deficit counters picks
// which tenant's dispatchable head goes next. Until SetTenantWeight is
// called the fair-share layer does not exist — every code path is the
// single-tenant one, so legacy runs are byte-identical to the
// pre-tenancy queue.
//
// Queues are not safe for concurrent use; like the sim.Engine that drives
// them, a queue belongs to a single simulation.
type Queue struct {
	policy    Policy
	busyUntil []sim.Time
	seq       uint64
	length    int

	// FCFS: intrusive doubly-linked arrival-order list.
	head, tail *item

	// SWTF: Seq-keyed min-heap of dispatch candidates, per-element parked
	// lists, and a min-heap of (horizon, element) wake records.
	ready   []*item
	blocked []*item // head of each element's parked list
	wakes   []wake

	// Weighted fair-share (DRR) state; engaged by SetTenantWeight. tens
	// is the tenant ring, sorted by tenant ID; rr is the round-robin
	// pointer into it.
	fair bool
	tens []*tenantQ
	rr   int

	// free is the item pool (singly linked through next).
	free *item
}

// drrQuantum is the base deficit refill in bytes; a tenant's refill is
// drrQuantum times its weight.
const drrQuantum = 64 << 10

// tenantQ is one tenant's sub-queue in weighted fair-share mode. It
// mirrors the single-tenant index structures: an arrival-order FIFO
// under FCFS, a Seq-keyed candidate heap plus per-element parked lists
// under SWTF.
type tenantQ struct {
	id      uint8
	weight  float64
	deficit float64
	length  int

	head, tail *item   // FCFS arrival list
	ready      []*item // SWTF candidate heap
	blocked    []*item // SWTF per-element parked lists
}

// item is one queued request: its element set, arrival sequence number,
// and the caller's payload, plus the intrusive index links.
type item struct {
	elems []int
	seq   uint64
	data  any
	cost  float64  // DRR dispatch cost (bytes); 1 when untracked
	tq    *tenantQ // owning tenant sub-queue; nil in single-tenant mode

	prev, next *item // FIFO list (FCFS) or parked list (SWTF)
	heapIdx    int   // position in the ready heap; -1 when not in it
	parkedOn   int   // element this item waits on; -1 when a candidate
}

// wake records that an element's busy horizon ends at `at`; processing it
// then releases the element's parked requests. Horizons only move while
// an element is idle, so the record matching the current horizon is
// always present (stale records are skipped, never trusted).
type wake struct {
	at   sim.Time
	elem int
}

// NewQueue returns an empty queue dispatching under policy over the given
// number of parallel elements, all idle.
func NewQueue(policy Policy, elements int) *Queue {
	return &Queue{
		policy:    policy,
		busyUntil: make([]sim.Time, elements),
		blocked:   make([]*item, elements),
	}
}

// Policy reports the dispatch discipline.
func (q *Queue) Policy() Policy { return q.policy }

// Len reports the number of queued (not yet dispatched) requests.
func (q *Queue) Len() int { return q.length }

// Busy reports element e's busy horizon: the time at which it becomes
// available again (in the past or present when idle).
func (q *Queue) Busy(e int) sim.Time { return q.busyUntil[e] }

// Idle reports whether element e is available at now.
func (q *Queue) Idle(e int, now sim.Time) bool { return q.busyUntil[e] <= now }

// SetBusy marks element e busy until the given horizon. Horizons only
// grow: marking an element busy until a time before its current horizon
// is a no-op.
func (q *Queue) SetBusy(e int, until sim.Time) {
	if until <= q.busyUntil[e] {
		return
	}
	q.busyUntil[e] = until
	if q.policy == SWTF {
		q.pushWake(wake{at: until, elem: e})
	}
}

// SetTenantWeight switches the queue into weighted fair-share mode and
// sets one tenant's scheduler weight (> 0; larger shares dispatch more
// bytes). Call it at device construction time, before any Push: tenants
// seen later without an explicit weight default to 1. Without any call,
// the fair-share layer is absent and dispatch is exactly the legacy
// single-tenant policy.
func (q *Queue) SetTenantWeight(tenant uint8, weight float64) {
	if weight <= 0 {
		weight = 1
	}
	q.fair = true
	q.tenantFor(tenant).weight = weight
}

// Fair reports whether weighted fair-share dispatch is engaged.
func (q *Queue) Fair() bool { return q.fair }

// tenantFor returns tenant t's sub-queue, inserting it into the ring in
// sorted position on first sight.
func (q *Queue) tenantFor(t uint8) *tenantQ {
	i := 0
	for i < len(q.tens) && q.tens[i].id < t {
		i++
	}
	if i < len(q.tens) && q.tens[i].id == t {
		return q.tens[i]
	}
	tq := &tenantQ{id: t, weight: 1, blocked: make([]*item, len(q.busyUntil))}
	q.tens = append(q.tens, nil)
	copy(q.tens[i+1:], q.tens[i:])
	q.tens[i] = tq
	if i <= q.rr && len(q.tens) > 1 {
		q.rr++ // keep the DRR pointer on the tenant it was on
	}
	return tq
}

// Push enqueues a request occupying the given elements and returns its
// arrival sequence number. The element slice is copied into a pooled
// item; the caller may reuse it. Ops pushed this way are untagged
// (tenant 0, unit cost); media models that know the op use PushT.
func (q *Queue) Push(elems []int, data any) uint64 {
	return q.PushT(elems, data, 0, 1)
}

// PushT is Push with the op's tenant class and dispatch cost (bytes; 0
// is treated as 1). In single-tenant mode both are ignored and the push
// is exactly the legacy one; in weighted mode the request joins its
// tenant's sub-queue.
func (q *Queue) PushT(elems []int, data any, tenant uint8, cost int64) uint64 {
	it := q.take()
	it.elems = append(it.elems[:0], elems...)
	q.seq++
	it.seq = q.seq
	it.data = data
	if cost <= 0 {
		cost = 1
	}
	it.cost = float64(cost)
	q.length++
	if q.fair {
		tq := q.tenantFor(tenant)
		it.tq = tq
		tq.length++
		switch q.policy {
		case SWTF:
			heapPushTo(&tq.ready, it)
		default:
			it.prev = tq.tail
			if tq.tail != nil {
				tq.tail.next = it
			} else {
				tq.head = it
			}
			tq.tail = it
		}
		return it.seq
	}
	switch q.policy {
	case SWTF:
		// New arrivals enter as candidates; Pop demotes them lazily if
		// their elements turn out busy.
		q.heapPush(it)
	default: // FCFS: append to the arrival-order list.
		it.prev = q.tail
		if q.tail != nil {
			q.tail.next = it
		} else {
			q.head = it
		}
		q.tail = it
	}
	return it.seq
}

// wait is the legacy Entry.Wait over the queue's own busy horizons.
func (q *Queue) wait(it *item, now sim.Time) sim.Time {
	var w sim.Time
	for _, e := range it.elems {
		if b := q.busyUntil[e] - now; b > w {
			w = b
		}
	}
	return w
}

// Pop removes and returns the payload of the next dispatchable request,
// or (nil, false) if nothing may dispatch at now. It never allocates.
func (q *Queue) Pop(now sim.Time) (any, bool) {
	if q.fair {
		return q.popFair(now)
	}
	if q.policy == SWTF {
		return q.popSWTF(now)
	}
	it := q.head
	if it == nil || q.wait(it, now) != 0 {
		return nil, false
	}
	q.head = it.next
	if q.head != nil {
		q.head.prev = nil
	} else {
		q.tail = nil
	}
	return q.finishPop(it)
}

// popFair is the weighted deficit-round-robin dispatch: visit tenants in
// ring order from the DRR pointer, dispatch the first whose policy head
// is dispatchable and whose deficit covers its cost; when every
// dispatchable head is deficit-blocked, refill each such tenant by
// quantum x weight and rescan. The refill loop terminates because
// weights are positive, and it returns false only when no tenant has a
// dispatchable head — the Driver contract. Never allocates.
func (q *Queue) popFair(now sim.Time) (any, bool) {
	if q.policy == SWTF {
		q.releaseFair(now)
	}
	n := len(q.tens)
	if n == 0 {
		return nil, false
	}
	for {
		blockedOnDeficit := false
		for i := 0; i < n; i++ {
			idx := q.rr + i
			if idx >= n {
				idx -= n
			}
			tq := q.tens[idx]
			it := q.headFair(tq, now)
			if it == nil {
				continue
			}
			if tq.deficit >= it.cost {
				tq.deficit -= it.cost
				q.rr = idx // keep serving this tenant while its deficit lasts
				q.removeFair(tq, it)
				if tq.length == 0 {
					tq.deficit = 0 // classic DRR: no credit hoarding while idle
				}
				return q.finishPop(it)
			}
			blockedOnDeficit = true
		}
		if !blockedOnDeficit {
			return nil, false
		}
		for _, tq := range q.tens {
			if q.headFair(tq, now) != nil {
				tq.deficit += drrQuantum * tq.weight
			}
		}
	}
}

// headFair returns tenant tq's dispatchable head at now, or nil. Under
// SWTF it lazily re-parks stale candidates exactly like popSWTF; under
// FCFS the tenant's arrival head blocks only its own tenant.
func (q *Queue) headFair(tq *tenantQ, now sim.Time) *item {
	if q.policy == SWTF {
		for len(tq.ready) > 0 {
			it := tq.ready[0]
			if q.wait(it, now) == 0 {
				return it
			}
			heapRemoveFrom(&tq.ready, it)
			q.parkFair(tq, it, now)
		}
		return nil
	}
	if it := tq.head; it != nil && q.wait(it, now) == 0 {
		return it
	}
	return nil
}

// removeFair detaches a dispatched item from its tenant's index.
func (q *Queue) removeFair(tq *tenantQ, it *item) {
	tq.length--
	if q.policy == SWTF {
		heapRemoveFrom(&tq.ready, it)
		return
	}
	if it.prev != nil {
		it.prev.next = it.next
	} else {
		tq.head = it.next
	}
	if it.next != nil {
		it.next.prev = it.prev
	} else {
		tq.tail = it.prev
	}
}

// parkFair parks a non-dispatchable item on its tenant's parked list for
// the busy element it must wait longest for.
func (q *Queue) parkFair(tq *tenantQ, it *item, now sim.Time) {
	worst, horizon := -1, sim.Time(0)
	for _, e := range it.elems {
		if b := q.busyUntil[e]; b > now && b > horizon {
			worst, horizon = e, b
		}
	}
	it.parkedOn = worst
	it.prev = nil
	it.next = tq.blocked[worst]
	if it.next != nil {
		it.next.prev = it
	}
	tq.blocked[worst] = it
}

// releaseFair processes due wake records across every tenant's parked
// lists.
func (q *Queue) releaseFair(now sim.Time) {
	for len(q.wakes) > 0 && q.wakes[0].at <= now {
		w := q.popWake()
		if q.busyUntil[w.elem] > now {
			continue
		}
		for _, tq := range q.tens {
			for it := tq.blocked[w.elem]; it != nil; {
				next := it.next
				it.prev, it.next = nil, nil
				it.parkedOn = -1
				heapPushTo(&tq.ready, it)
				it = next
			}
			tq.blocked[w.elem] = nil
		}
	}
}

func (q *Queue) popSWTF(now sim.Time) (any, bool) {
	q.release(now)
	for len(q.ready) > 0 {
		it := q.ready[0]
		w := q.wait(it, now)
		if w == 0 {
			q.heapRemove(it)
			return q.finishPop(it)
		}
		// Stale candidate: park it on its latest-busy element; the wake
		// record for that element's horizon brings it back.
		q.heapRemove(it)
		q.park(it, now)
	}
	return nil, false
}

// finishPop detaches the payload and recycles the item.
func (q *Queue) finishPop(it *item) (any, bool) {
	data := it.data
	q.length--
	q.put(it)
	return data, true
}

// park attaches a non-dispatchable item to the busy element it must wait
// longest for.
func (q *Queue) park(it *item, now sim.Time) {
	worst, horizon := -1, sim.Time(0)
	for _, e := range it.elems {
		if b := q.busyUntil[e]; b > now && b > horizon {
			worst, horizon = e, b
		}
	}
	// wait > 0 guaranteed a busy element exists.
	it.parkedOn = worst
	it.prev = nil
	it.next = q.blocked[worst]
	if it.next != nil {
		it.next.prev = it
	}
	q.blocked[worst] = it
}

// release processes due wake records: every element whose horizon has
// passed gets its parked requests promoted back to candidates.
func (q *Queue) release(now sim.Time) {
	for len(q.wakes) > 0 && q.wakes[0].at <= now {
		w := q.popWake()
		if q.busyUntil[w.elem] > now {
			// Stale record: the element was re-marked busy; the newer
			// record carries its current horizon.
			continue
		}
		for it := q.blocked[w.elem]; it != nil; {
			next := it.next
			it.prev, it.next = nil, nil
			it.parkedOn = -1
			q.heapPush(it)
			it = next
		}
		q.blocked[w.elem] = nil
	}
}

// Drain removes every queued request — dispatchable or not — and visits
// each in arrival (Seq) order, ignoring busy horizons. The horizons
// themselves are left untouched. It exists for the sharded device's
// merge transition: a shard queue's contents are re-enqueued onto the
// gang-wide queue in global arrival order, so Drain is a rare-path
// operation and may allocate.
func (q *Queue) Drain(visit func(seq uint64, elems []int, data any)) {
	var items []*item
	for it := q.head; it != nil; it = it.next {
		items = append(items, it)
	}
	q.head, q.tail = nil, nil
	items = append(items, q.ready...)
	for i := range q.ready {
		q.ready[i] = nil
	}
	q.ready = q.ready[:0]
	for e, it := range q.blocked {
		for ; it != nil; it = it.next {
			items = append(items, it)
		}
		q.blocked[e] = nil
	}
	for _, tq := range q.tens {
		for it := tq.head; it != nil; it = it.next {
			items = append(items, it)
		}
		tq.head, tq.tail = nil, nil
		items = append(items, tq.ready...)
		for i := range tq.ready {
			tq.ready[i] = nil
		}
		tq.ready = tq.ready[:0]
		for e, it := range tq.blocked {
			for ; it != nil; it = it.next {
				items = append(items, it)
			}
			tq.blocked[e] = nil
		}
		tq.length = 0
		tq.deficit = 0
	}
	q.wakes = q.wakes[:0]
	sort.Slice(items, func(i, j int) bool { return items[i].seq < items[j].seq })
	for _, it := range items {
		visit(it.seq, it.elems, it.data)
		q.length--
		q.put(it)
	}
}

// ---- item pool ----

func (q *Queue) take() *item {
	if it := q.free; it != nil {
		q.free = it.next
		it.next = nil
		return it
	}
	return &item{heapIdx: -1, parkedOn: -1}
}

func (q *Queue) put(it *item) {
	it.data = nil // release the payload to the collector
	it.tq = nil
	it.cost = 0
	it.prev = nil
	it.heapIdx = -1
	it.parkedOn = -1
	it.next = q.free
	q.free = it
}

// ---- Seq-keyed candidate heap ----
//
// The heap functions operate on any candidate slice so the single-tenant
// queue and every tenant sub-queue share one implementation.

func (q *Queue) heapPush(it *item)   { heapPushTo(&q.ready, it) }
func (q *Queue) heapRemove(it *item) { heapRemoveFrom(&q.ready, it) }

func heapPushTo(h *[]*item, it *item) {
	it.heapIdx = len(*h)
	*h = append(*h, it)
	siftUp(*h, it.heapIdx)
}

func heapRemoveFrom(h *[]*item, it *item) {
	ready := *h
	i := it.heapIdx
	last := len(ready) - 1
	ready[i] = ready[last]
	ready[i].heapIdx = i
	ready[last] = nil
	*h = ready[:last]
	if i < last {
		siftDown(ready[:last], i)
		siftUp(ready[:last], i)
	}
	it.heapIdx = -1
}

func siftUp(ready []*item, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if ready[p].seq <= ready[i].seq {
			return
		}
		ready[p], ready[i] = ready[i], ready[p]
		ready[p].heapIdx, ready[i].heapIdx = p, i
		i = p
	}
}

func siftDown(ready []*item, i int) {
	n := len(ready)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && ready[l].seq < ready[min].seq {
			min = l
		}
		if r < n && ready[r].seq < ready[min].seq {
			min = r
		}
		if min == i {
			return
		}
		ready[i], ready[min] = ready[min], ready[i]
		ready[i].heapIdx, ready[min].heapIdx = i, min
		i = min
	}
}

// ---- (horizon, element) wake heap ----

func (q *Queue) pushWake(w wake) {
	q.wakes = append(q.wakes, w)
	i := len(q.wakes) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q.wakes[p].at <= q.wakes[i].at {
			break
		}
		q.wakes[p], q.wakes[i] = q.wakes[i], q.wakes[p]
		i = p
	}
}

func (q *Queue) popWake() wake {
	w := q.wakes[0]
	last := len(q.wakes) - 1
	q.wakes[0] = q.wakes[last]
	q.wakes = q.wakes[:last]
	i, n := 0, last
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.wakes[l].at < q.wakes[min].at {
			min = l
		}
		if r < n && q.wakes[r].at < q.wakes[min].at {
			min = r
		}
		if min == i {
			break
		}
		q.wakes[i], q.wakes[min] = q.wakes[min], q.wakes[i]
		i = min
	}
	return w
}
